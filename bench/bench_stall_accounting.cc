/**
 * @file
 * Stall attribution — where the frontend's fetch slots go, per
 * prefetcher, as the BTB shrinks from 8K to 1K entries.
 *
 * This is the cycle-accounting companion to the paper's starvation
 * argument (Sec. IV): FDIP's win comes from removing *fetch-side*
 * stall cycles, so the interesting question is not just "how many
 * cycles stalled" but "which stalls remain". Every post-warmup cycle
 * is charged to exactly one leaf bucket (src/obs/cycle_account.h), so
 * each row below is a complete, stacked 100% breakdown: base
 * (decode fed), backend back-pressure, and the five fetch-side stall
 * classes. Shrinking the BTB should migrate cycles into the
 * FTQ-empty/BTB-miss and L1I-miss buckets for weak prefetchers, while
 * stronger ones hold the L1I share down.
 *
 * All (config, workload) pairs are batched into one campaign so they
 * run in parallel under FDIP_JOBS and spool-cache under FDIP_SPOOL.
 */

#include "bench/bench_common.h"

#include "core/cycle_stats.h"

namespace
{

using namespace fdip;

/** Suite-wide bucket fractions: per-bucket cycle sums over all runs,
 *  normalized by total post-warmup cycles. */
struct BucketShares
{
    double frac[kCycleBucketCount] = {};
};

BucketShares
bucketShares(const SuiteResult &r)
{
    BucketShares out;
    std::uint64_t cycles = 0;
    std::uint64_t sums[kCycleBucketCount] = {};
    for (const RunResult &run : r.runs) {
        cycles += run.stats.cycles;
        for (std::size_t b = 0; b < kCycleBucketCount; ++b)
            sums[b] += run.stats.*kCycleBucketField[b];
    }
    for (std::size_t b = 0; b < kCycleBucketCount; ++b) {
        out.frac[b] = cycles == 0 ? 0.0
                                  : static_cast<double>(sums[b]) /
                                        static_cast<double>(cycles);
    }
    return out;
}

} // namespace

int
main()
{
    using namespace fdip::bench;

    banner("Stall attribution: cycle accounting by prefetcher and BTB",
           "Per-config stacked breakdown; every column sums to 100%.");

    const auto workloads = suite(400000);

    struct Pf
    {
        const char *label;
        const char *name; ///< nullptr: FDP alone, no L1I prefetcher.
    };
    const Pf pfs[] = {
        {"FDP", nullptr},
        {"FDP+NL1", "nl1"},
        {"FDP+EIP-27KB", "eip-27"},
    };
    const unsigned btbs[] = {1024u, 2048u, 4096u, 8192u};

    struct Row
    {
        std::size_t idx;
        std::string name;
    };

    Campaign c(workloads);
    std::vector<Row> rows;
    for (const Pf &pf : pfs) {
        for (unsigned entries : btbs) {
            CoreConfig cfg = paperBaselineConfig();
            cfg.bpu.btb.numEntries = entries;
            const std::string label =
                std::string(pf.label) + "@" + std::to_string(entries);
            const std::size_t idx =
                pf.name == nullptr
                    ? c.add(label, cfg, noPrefetcher())
                    : c.add(label, cfg, prefetcher(pf.name), pf.name);
            rows.push_back({idx, label});
        }
    }

    const auto results =
        runTimed(c, workloads.size(), "stall_accounting");

    std::vector<std::string> header = {"configuration"};
    for (std::size_t b = 0; b < kCycleBucketCount; ++b)
        header.emplace_back(kCycleBucketName[b]);
    TextTable t(header);
    for (const Row &row : rows) {
        const BucketShares s = bucketShares(results[row.idx]);
        std::vector<std::string> cells = {row.name};
        double sum = 0.0;
        for (std::size_t b = 0; b < kCycleBucketCount; ++b) {
            cells.push_back(TextTable::num(100.0 * s.frac[b], 1) + "%");
            sum += s.frac[b];
        }
        t.addRow(cells);
        // The conservation law, end-to-end: the stacked row covers
        // every post-warmup cycle (FDIP_CHECKed per tick in Core::run;
        // re-asserted here over the aggregated report path).
        if (sum < 0.999 || sum > 1.001) {
            std::fprintf(stderr,
                         "stall accounting: %s buckets sum to %.4f, "
                         "not 1.0\n",
                         row.name.c_str(), sum);
            return 1;
        }
    }
    t.print();
    return 0;
}
