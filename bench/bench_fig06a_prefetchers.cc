/**
 * @file
 * Fig. 6a — Instruction-prefetching performance with and without FDP.
 *
 * Paper results (speedup over no-FDP/no-prefetch baseline):
 *   NL1 10.6%, EIP-27KB 32.4% (without FDP); FDP alone 41.0%;
 *   FDP + perfect BTB +3.4%; FDP + EIP-128KB +4.3%;
 *   FDP + Perfect +5.4%; FDP + perfect BTB + perfect prefetch 46.9%.
 *
 * All configurations are batched into one campaign so the
 * (config, workload) pairs run in parallel under FDIP_JOBS.
 */

#include "bench/bench_common.h"

int
main()
{
    using namespace fdip;
    using namespace fdip::bench;

    banner("Fig. 6a: prefetching with and without FDP",
           "Speedup over the no-FDP, no-prefetch baseline (geomean).");

    const auto workloads = suite(600000);

    struct Pf
    {
        const char *label;
        const char *name;
        const char *paperNoFdp;
        const char *paperFdp;
    };
    const Pf pfs[] = {
        {"NL1", "nl1", "+10.6%", "-"},
        {"FNL+MMA", "fnl+mma", "~+28%", "~FDP+1%"},
        {"D-JOLT", "d-jolt", "~+28%", "~FDP+1%"},
        {"EIP-27KB", "eip-27", "+32.4%", "~FDP+3%"},
        {"EIP-128KB", "eip-128", "~+33%", "FDP+4.3%"},
    };

    struct Row
    {
        std::size_t idx;
        std::string name;
        const char *paper;
    };

    Campaign c(workloads);
    const std::size_t base =
        c.add("baseline", noFdpConfig(), noPrefetcher());

    std::vector<Row> rows;
    for (const Pf &pf : pfs) {
        rows.push_back({c.add(pf.label, noFdpConfig(), prefetcher(pf.name),
                              pf.name),
                        std::string(pf.label) + " (no FDP)", pf.paperNoFdp});
    }
    {
        CoreConfig cfg = noFdpConfig();
        cfg.perfectPrefetch = true;
        rows.push_back({c.add("perfect", cfg, noPrefetcher()),
                        "Perfect prefetch (no FDP)", "+30.6%"});
    }
    rows.push_back({c.add("FDP", paperBaselineConfig(), noPrefetcher()),
                    "FDP alone", "+41.0%"});
    for (const Pf &pf : pfs) {
        rows.push_back({c.add(std::string("FDP+") + pf.label,
                              paperBaselineConfig(), prefetcher(pf.name),
                              pf.name),
                        std::string("FDP + ") + pf.label, pf.paperFdp});
    }
    {
        CoreConfig cfg = paperBaselineConfig();
        cfg.perfectPrefetch = true;
        rows.push_back({c.add("FDP+perfect", cfg, noPrefetcher()),
                        "FDP + perfect prefetch", "FDP+5.4%"});
    }
    {
        CoreConfig cfg = paperBaselineConfig();
        cfg.bpu.perfectBtb = true;
        rows.push_back({c.add("FDP+perfBTB", cfg, noPrefetcher()),
                        "FDP + perfect BTB", "FDP+3.4%"});
    }
    {
        CoreConfig cfg = paperBaselineConfig();
        cfg.bpu.perfectBtb = true;
        cfg.perfectPrefetch = true;
        rows.push_back({c.add("FDP+perfBTB+perfPf", cfg, noPrefetcher()),
                        "FDP + perfect BTB + perfect prefetch", "+46.9%"});
    }

    const auto results = runTimed(c, workloads.size(), "fig06a_prefetchers");

    TextTable t({"configuration", "speedup", "MPKI", "paper"});
    for (const Row &row : rows) {
        const SuiteResult &r = results[row.idx];
        t.addRow({row.name, speedupStr(r.speedupOver(results[base])),
                  TextTable::num(r.meanMpki()), row.paper});
    }
    t.print();
    return 0;
}
