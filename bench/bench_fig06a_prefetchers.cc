/**
 * @file
 * Fig. 6a — Instruction-prefetching performance with and without FDP.
 *
 * Paper results (speedup over no-FDP/no-prefetch baseline):
 *   NL1 10.6%, EIP-27KB 32.4% (without FDP); FDP alone 41.0%;
 *   FDP + perfect BTB +3.4%; FDP + EIP-128KB +4.3%;
 *   FDP + Perfect +5.4%; FDP + perfect BTB + perfect prefetch 46.9%.
 */

#include "bench/bench_common.h"

int
main()
{
    using namespace fdip;
    using namespace fdip::bench;

    banner("Fig. 6a: prefetching with and without FDP",
           "Speedup over the no-FDP, no-prefetch baseline (geomean).");

    const auto workloads = suite(600000);
    const SuiteResult base = runSuite("baseline", noFdpConfig(),
                                      workloads, noPrefetcher());

    TextTable t({"configuration", "speedup", "MPKI", "paper"});

    struct Pf
    {
        const char *label;
        const char *name;
        const char *paperNoFdp;
        const char *paperFdp;
    };
    const Pf pfs[] = {
        {"NL1", "nl1", "+10.6%", "-"},
        {"FNL+MMA", "fnl+mma", "~+28%", "~FDP+1%"},
        {"D-JOLT", "d-jolt", "~+28%", "~FDP+1%"},
        {"EIP-27KB", "eip-27", "+32.4%", "~FDP+3%"},
        {"EIP-128KB", "eip-128", "~+33%", "FDP+4.3%"},
    };

    for (const Pf &pf : pfs) {
        const SuiteResult r = runSuite(pf.label, noFdpConfig(), workloads,
                                       prefetcher(pf.name));
        t.addRow({std::string(pf.label) + " (no FDP)",
                  speedupStr(r.speedupOver(base)),
                  TextTable::num(r.meanMpki()), pf.paperNoFdp});
    }
    {
        CoreConfig cfg = noFdpConfig();
        cfg.perfectPrefetch = true;
        const SuiteResult r =
            runSuite("perfect", cfg, workloads, noPrefetcher());
        t.addRow({"Perfect prefetch (no FDP)",
                  speedupStr(r.speedupOver(base)),
                  TextTable::num(r.meanMpki()), "+30.6%"});
    }

    const SuiteResult fdp = runSuite("FDP", paperBaselineConfig(),
                                     workloads, noPrefetcher());
    t.addRow({"FDP alone", speedupStr(fdp.speedupOver(base)),
              TextTable::num(fdp.meanMpki()), "+41.0%"});

    for (const Pf &pf : pfs) {
        const SuiteResult r = runSuite(pf.label, paperBaselineConfig(),
                                       workloads, prefetcher(pf.name));
        t.addRow({std::string("FDP + ") + pf.label,
                  speedupStr(r.speedupOver(base)),
                  TextTable::num(r.meanMpki()), pf.paperFdp});
    }
    {
        CoreConfig cfg = paperBaselineConfig();
        cfg.perfectPrefetch = true;
        const SuiteResult r =
            runSuite("FDP+perfect", cfg, workloads, noPrefetcher());
        t.addRow({"FDP + perfect prefetch",
                  speedupStr(r.speedupOver(base)),
                  TextTable::num(r.meanMpki()), "FDP+5.4%"});
    }
    {
        CoreConfig cfg = paperBaselineConfig();
        cfg.bpu.perfectBtb = true;
        const SuiteResult r =
            runSuite("FDP+perfBTB", cfg, workloads, noPrefetcher());
        t.addRow({"FDP + perfect BTB", speedupStr(r.speedupOver(base)),
                  TextTable::num(r.meanMpki()), "FDP+3.4%"});
    }
    {
        CoreConfig cfg = paperBaselineConfig();
        cfg.bpu.perfectBtb = true;
        cfg.perfectPrefetch = true;
        const SuiteResult r =
            runSuite("FDP+perfBTB+perfPf", cfg, workloads, noPrefetcher());
        t.addRow({"FDP + perfect BTB + perfect prefetch",
                  speedupStr(r.speedupOver(base)),
                  TextTable::num(r.meanMpki()), "+46.9%"});
    }

    t.print();
    return 0;
}
