/**
 * @file
 * Fig. 13 — Prediction bandwidth and BTB latency sensitivity.
 *
 * Paper: halving bandwidth (B6) costs 0.6%; B18 adds nothing over B12;
 * allowing multiple taken predictions per cycle (B18m) adds 0.2%;
 * 4-cycle BTB latency costs 1.8% vs the 2-cycle baseline.
 */

#include "bench/bench_common.h"

int
main()
{
    using namespace fdip;
    using namespace fdip::bench;

    banner("Fig. 13: prediction bandwidth / BTB latency",
           "FDP frontend; speedup relative to the B12, 2-cycle baseline.");

    const auto workloads = suite(500000);
    const SuiteResult baseline = runSuite(
        "B12", paperBaselineConfig(), workloads, noPrefetcher());

    {
        TextTable t({"bandwidth", "vs B12", "paper"});
        struct Bw
        {
            const char *label;
            unsigned width;
            unsigned taken;
            const char *paper;
        };
        const Bw bws[] = {
            {"B6 (half)", 6, 1, "-0.6%"},
            {"B12 (baseline)", 12, 1, "0%"},
            {"B18 (1.5x)", 18, 1, "~0%"},
            {"B18m (2 takens)", 18, 2, "+0.2%"},
        };
        for (const Bw &bw : bws) {
            CoreConfig cfg = paperBaselineConfig();
            cfg.predictBandwidth = bw.width;
            cfg.maxTakenPerCycle = bw.taken;
            const SuiteResult r =
                runSuite(bw.label, cfg, workloads, noPrefetcher());
            t.addRow({bw.label, speedupStr(r.speedupOver(baseline)),
                      bw.paper});
        }
        t.print();
    }

    {
        std::printf("\n");
        TextTable t({"BTB latency", "vs 2-cycle", "paper"});
        for (unsigned lat : {1u, 2u, 3u, 4u}) {
            CoreConfig cfg = paperBaselineConfig();
            cfg.btbLatency = lat;
            const SuiteResult r = runSuite(
                "lat", cfg, workloads, noPrefetcher());
            const char *paper = lat == 4 ? "-1.8%"
                                : lat == 2 ? "0%"
                                           : "-";
            t.addRow({std::to_string(lat),
                      speedupStr(r.speedupOver(baseline)), paper});
        }
        t.print();
    }
    return 0;
}
