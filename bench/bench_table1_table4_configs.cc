/**
 * @file
 * Tables I, III & IV — static configuration tables: the
 * academia-vs-industry BTB capacity gap, the FTQ hardware cost, and
 * the common core parameters, as instantiated by this implementation.
 */

#include "bench/bench_common.h"

#include "bpu/bpu.h"
#include "core/ftq.h"

int
main()
{
    using namespace fdip;
    using namespace fdip::bench;

    banner("Tables I / III / IV: configuration inventory",
           "Static tables; values as instantiated by fdipsim.");

    {
        std::printf("\nTable I: BTB capacity gap (entries)\n");
        TextTable t({"academia", "BTB", "industry", "BTB"});
        t.addRow({"Shotgun [12]", "2.1K", "AMD Zen2 [29]", "7K"});
        t.addRow({"Confluence [10]", "1.5K", "Samsung Exynos M3 [27]",
                  "16K"});
        t.addRow({"Divide&Conquer [13]", "2K", "Arm Neoverse N1 [26]",
                  "6K"});
        t.print();
    }

    {
        std::printf("\nTable III: FTQ entry fields and hardware cost\n");
        TextTable t({"field", "bits"});
        t.addRow({"Start address", "48"});
        t.addRow({"Block predicted taken", "1"});
        t.addRow({"Block termination offset", "3"});
        t.addRow({"I-cache way", "3"});
        t.addRow({"State", "2"});
        t.addRow({"Direction hint", "8"});
        t.print();
        Ftq ftq(24);
        std::printf("total (24-entry): %llu bytes  [paper: 195 bytes]\n",
                    static_cast<unsigned long long>(
                        ftq.archStorageBytes()));
    }

    {
        std::printf("\nTable IV: common core parameters\n");
        const CoreConfig cfg = paperBaselineConfig();
        Bpu bpu(cfg.bpu);
        TextTable t({"parameter", "value"});
        t.addRow({"FTQ", std::to_string(cfg.ftqEntries) + " entries (" +
                             std::to_string(cfg.ftqEntries * 8) +
                             " insts)"});
        t.addRow({"prediction bandwidth",
                  std::to_string(cfg.predictBandwidth) + " inst/cycle"});
        t.addRow({"fetch bandwidth",
                  std::to_string(cfg.fetchBandwidth) + " inst/cycle"});
        t.addRow({"BTB", std::to_string(cfg.bpu.btb.numEntries) +
                             " entries, " +
                             std::to_string(cfg.bpu.btb.ways) + "-way, " +
                             std::to_string(cfg.btbLatency) + "-cycle"});
        t.addRow({"direction predictor",
                  "TAGE " + std::to_string(cfg.bpu.tageKilobytes) +
                      "KB, 260-event history"});
        t.addRow({"predictor storage (TAGE+ITTAGE)",
                  std::to_string(bpu.predictorStorageBits() / 8 / 1024) +
                      " KB"});
        t.addRow({"L1I", "32KB 8-way, " +
                             std::to_string(cfg.l1iHitLatency) +
                             "-cycle pipe, " +
                             std::to_string(cfg.l1iMshrs) + " MSHRs"});
        t.addRow({"L2/LLC/DRAM",
                  "512KB/" + std::to_string(cfg.mem.l2Latency) +
                      "c, 2MB/" + std::to_string(cfg.mem.llcLatency) +
                      "c, DRAM " + std::to_string(cfg.mem.dramLatency) +
                      "c"});
        t.addRow({"ROB / decode queue",
                  std::to_string(cfg.robEntries) + " / " +
                      std::to_string(cfg.decodeQueueEntries)});
        t.addRow({"commit width", std::to_string(cfg.commitWidth)});
        t.print();
    }
    return 0;
}
