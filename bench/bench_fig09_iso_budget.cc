/**
 * @file
 * Fig. 9 — ISO-storage-budget comparison.
 *
 * A BTB entry costs ~7 bytes (Exynos M3 data), so EIP-27KB's metadata
 * equals a 4K-entry BTB. Compared on top of FDP:
 *   (1) 8K-entry BTB, (2) 4K-entry BTB + EIP-27KB, (3) 4K-entry BTB.
 * Paper: (1) 41.0% vs (2) 40.6%; (1) has 12% fewer mispredictions;
 * (2) has 13.5% fewer starvation cycles but ~3.5x more I-cache tag
 * accesses.
 */

#include "bench/bench_common.h"

int
main()
{
    using namespace fdip;
    using namespace fdip::bench;

    banner("Fig. 9: ISO-budget comparison (BTB capacity vs EIP-27KB)",
           "All configurations run FDP with PFC enabled.");

    const auto workloads = suite(600000);
    const SuiteResult base = runSuite("base", noFdpConfig(), workloads,
                                      noPrefetcher());

    struct Config
    {
        const char *label;
        unsigned btbEntries;
        const char *pf;
        const char *paper;
    };
    const Config configs[] = {
        {"8K BTB", 8192, "none", "+41.0%"},
        {"4K BTB + EIP-27KB", 4096, "eip-27", "+40.6%"},
        {"4K BTB (reference)", 4096, "none", "lower"},
    };

    TextTable t({"configuration", "speedup", "MPKI", "starvation/KI",
                 "tag accesses/KI", "paper"});
    for (const Config &c : configs) {
        CoreConfig cfg = paperBaselineConfig();
        cfg.bpu.btb.numEntries = c.btbEntries;
        const SuiteResult r =
            runSuite(c.label, cfg, workloads, prefetcher(c.pf));
        t.addRow({c.label, speedupStr(r.speedupOver(base)),
                  TextTable::num(r.meanMpki()),
                  TextTable::num(r.meanStarvationPerKi(), 1),
                  TextTable::num(r.meanTagAccessesPerKi(), 1), c.paper});
    }
    t.print();
    std::printf("\nPaper checks: 8K-BTB ~12%% fewer mispredicts; EIP "
                "~13.5%% fewer starvation cycles, ~3.5x tag accesses.\n");
    return 0;
}
