/**
 * @file
 * Fig. 9 — ISO-storage-budget comparison.
 *
 * A BTB entry costs ~7 bytes (Exynos M3 data), so EIP-27KB's metadata
 * equals a 4K-entry BTB. Compared on top of FDP:
 *   (1) 8K-entry BTB, (2) 4K-entry BTB + EIP-27KB, (3) 4K-entry BTB.
 * Paper: (1) 41.0% vs (2) 40.6%; (1) has 12% fewer mispredictions;
 * (2) has 13.5% fewer starvation cycles but ~3.5x more I-cache tag
 * accesses.
 *
 * The baseline and all three configurations run as one campaign under
 * FDIP_JOBS.
 */

#include "bench/bench_common.h"

int
main()
{
    using namespace fdip;
    using namespace fdip::bench;

    banner("Fig. 9: ISO-budget comparison (BTB capacity vs EIP-27KB)",
           "All configurations run FDP with PFC enabled.");

    const auto workloads = suite(600000);

    struct Config
    {
        const char *label;
        unsigned btbEntries;
        const char *pf;
        const char *paper;
    };
    const Config configs[] = {
        {"8K BTB", 8192, "none", "+41.0%"},
        {"4K BTB + EIP-27KB", 4096, "eip-27", "+40.6%"},
        {"4K BTB (reference)", 4096, "none", "lower"},
    };

    Campaign c(workloads);
    const std::size_t base = c.add("base", noFdpConfig(), noPrefetcher());
    std::vector<std::size_t> indices;
    for (const Config &cc : configs) {
        CoreConfig cfg = paperBaselineConfig();
        cfg.bpu.btb.numEntries = cc.btbEntries;
        indices.push_back(c.add(cc.label, cfg, prefetcher(cc.pf), cc.pf));
    }

    const auto results = runTimed(c, workloads.size(), "fig09_iso_budget");

    TextTable t({"configuration", "speedup", "MPKI", "starvation/KI",
                 "tag accesses/KI", "paper"});
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const SuiteResult &r = results[indices[i]];
        t.addRow({configs[i].label,
                  speedupStr(r.speedupOver(results[base])),
                  TextTable::num(r.meanMpki()),
                  TextTable::num(r.meanStarvationPerKi(), 1),
                  TextTable::num(r.meanTagAccessesPerKi(), 1),
                  configs[i].paper});
    }
    t.print();
    std::printf("\nPaper checks: 8K-BTB ~12%% fewer mispredicts; EIP "
                "~13.5%% fewer starvation cycles, ~3.5x tag accesses.\n");
    return 0;
}
