/**
 * @file
 * Ablations beyond the paper's figures (DESIGN.md section 5):
 *  - PFC restricted to unconditional branches (the pre-existing scheme
 *    the paper extends) vs full PFC vs no PFC;
 *  - taken-only vs all-branch BTB allocation under THR;
 *  - next-line prefetch degree;
 *  - L1I replacement policy (LRU vs random).
 */

#include "bench/bench_common.h"

#include "prefetch/next_line.h"

int
main()
{
    using namespace fdip;
    using namespace fdip::bench;

    banner("Ablations: PFC scope, BTB allocation, NL degree, L1I repl",
           "Speedup over the no-FDP baseline.");

    const auto workloads = suite(400000);
    const SuiteResult base = runSuite("base", noFdpConfig(), workloads,
                                      noPrefetcher());

    {
        std::printf("\n-- PFC scope (2K-entry BTB to stress it) --\n");
        TextTable t({"PFC mode", "speedup", "MPKI", "PFC fires/KI"});
        struct Mode
        {
            const char *label;
            bool enabled;
            bool uncondOnly;
        };
        for (const Mode m : {Mode{"off", false, false},
                             Mode{"unconditional-only", true, true},
                             Mode{"full (paper)", true, false}}) {
            CoreConfig cfg = paperBaselineConfig();
            cfg.bpu.btb.numEntries = 2048;
            cfg.pfcEnabled = m.enabled;
            cfg.pfcUnconditionalOnly = m.uncondOnly;
            const SuiteResult r =
                runSuite(m.label, cfg, workloads, noPrefetcher());
            double fires = 0;
            double insts = 0;
            for (const auto &run : r.runs) {
                fires += static_cast<double>(run.stats.pfcFires);
                insts += static_cast<double>(run.stats.committedInsts);
            }
            t.addRow({m.label, speedupStr(r.speedupOver(base)),
                      TextTable::num(r.meanMpki()),
                      TextTable::num(1000.0 * fires / insts)});
        }
        t.print();
    }

    {
        std::printf("\n-- BTB allocation policy under THR --\n");
        TextTable t({"allocation", "speedup", "MPKI", "BTB hit rate"});
        for (bool taken_only : {true, false}) {
            CoreConfig cfg = paperBaselineConfig();
            cfg.bpu.btb.allocateTakenOnly = taken_only;
            // Note: applyHistoryScheme would overwrite this, so use the
            // raw config path via a scheme that matches, then override.
            cfg.historyScheme = HistoryScheme::kThr;
            SuiteResult r;
            {
                // Run manually to bypass the scheme re-application.
                r.label = taken_only ? "taken-only" : "all-branch";
                for (const auto &entry : workloads) {
                    CoreConfig c = cfg;
                    c.applyHistoryScheme();
                    c.bpu.btb.allocateTakenOnly = taken_only;
                    Core core(c, entry.trace, makePrefetcher("none"));
                    RunResult run;
                    run.workload = entry.name;
                    run.stats = core.run(entry.trace.size() / 5);
                    r.runs.push_back(std::move(run));
                }
            }
            double hit_rate = 0;
            for (const auto &run : r.runs) {
                hit_rate += static_cast<double>(run.stats.btbHits) /
                            static_cast<double>(
                                std::max<std::uint64_t>(
                                    run.stats.btbLookups, 1));
            }
            hit_rate /= static_cast<double>(r.runs.size());
            t.addRow({taken_only ? "taken-only (paper)" : "all-branch",
                      speedupStr(r.speedupOver(base)),
                      TextTable::num(r.meanMpki()),
                      TextTable::pct(hit_rate)});
        }
        t.print();
    }

    {
        std::printf("\n-- Next-line prefetch degree (no FDP) --\n");
        TextTable t({"degree", "speedup", "tag accesses/KI"});
        for (unsigned degree : {1u, 2u, 4u}) {
            const SuiteResult r = runSuite(
                "nl", noFdpConfig(), workloads,
                [degree](const Trace &) {
                    return std::make_unique<NextLinePrefetcher>(degree);
                });
            t.addRow({std::to_string(degree),
                      speedupStr(r.speedupOver(base)),
                      TextTable::num(r.meanTagAccessesPerKi(), 1)});
        }
        t.print();
    }

    {
        std::printf("\n-- L1I replacement policy (FDP) --\n");
        TextTable t({"policy", "speedup"});
        for (ReplacementPolicy repl :
             {ReplacementPolicy::kLru, ReplacementPolicy::kRandom}) {
            CoreConfig cfg = paperBaselineConfig();
            cfg.l1i.replacement = repl;
            const SuiteResult r =
                runSuite("repl", cfg, workloads, noPrefetcher());
            t.addRow({repl == ReplacementPolicy::kLru ? "LRU" : "random",
                      speedupStr(r.speedupOver(base))});
        }
        t.print();
    }
    return 0;
}
