/**
 * @file
 * Fig. 11 — BTB capacity sensitivity with and without FDP.
 *
 * Paper: with FDP (PFC on), small BTBs are well tolerated; without
 * FDP, gains from BTB capacity are moderate with the largest jump at
 * 16K entries (branch footprint fits); FDP wins at every capacity
 * because it hides BTB and I-cache access latencies.
 */

#include "bench/bench_common.h"

int
main()
{
    using namespace fdip;
    using namespace fdip::bench;

    banner("Fig. 11: BTB capacity sensitivity",
           "Speedup over the no-FDP baseline with its default 8K BTB.");

    const auto workloads = suite(500000);
    const SuiteResult base = runSuite("base", noFdpConfig(), workloads,
                                      noPrefetcher());

    TextTable t({"BTB entries", "no FDP", "MPKI", "FDP", "MPKI(FDP)"});
    for (unsigned entries : {1024u, 2048u, 4096u, 8192u, 16384u, 32768u}) {
        // The no-FDP configuration models the academic baselines: no
        // run-ahead and no post-fetch correction, so BTB capacity is
        // fully exposed.
        CoreConfig no_fdp = noFdpConfig();
        no_fdp.bpu.btb.numEntries = entries;
        no_fdp.pfcEnabled = false;
        CoreConfig fdp = paperBaselineConfig();
        fdp.bpu.btb.numEntries = entries;

        const SuiteResult r_no =
            runSuite("noFDP", no_fdp, workloads, noPrefetcher());
        const SuiteResult r_fdp =
            runSuite("FDP", fdp, workloads, noPrefetcher());
        t.addRow({std::to_string(entries),
                  speedupStr(r_no.speedupOver(base)),
                  TextTable::num(r_no.meanMpki()),
                  speedupStr(r_fdp.speedupOver(base)),
                  TextTable::num(r_fdp.meanMpki())});
    }
    t.print();
    return 0;
}
