/**
 * @file
 * Fig. 14 — FTQ size sensitivity and cache-miss exposure.
 *
 * Paper: speedup grows from +23.7% (4-entry) to +39.5% (12-entry) and
 * is marginal beyond; with a 2-entry FTQ, 76% of misses are fully or
 * partially exposed, and a 24-entry FTQ removes 90.6% of those exposed
 * misses.
 *
 * The whole FTQ sweep is one campaign, parallelized under FDIP_JOBS;
 * with FDIP_SPOOL set it drains through the content-addressed result
 * spool (resumable, dedup'd — see docs/CAMPAIGN.md).
 */

#include "bench/bench_common.h"

int
main()
{
    using namespace fdip;
    using namespace fdip::bench;

    banner("Fig. 14: FTQ size sweep and miss-exposure classification",
           "Speedup normalized to the 2-entry FTQ (no FDP).");

    const auto workloads = suite(500000);
    const unsigned sizes[] = {2u, 4u, 8u, 12u, 16u, 24u, 32u};

    Campaign c(workloads);
    const std::size_t base = c.add("ftq2", noFdpConfig(), noPrefetcher());
    std::vector<std::size_t> indices;
    for (unsigned entries : sizes) {
        CoreConfig cfg = paperBaselineConfig();
        cfg.ftqEntries = entries;
        indices.push_back(c.add("ftq-" + std::to_string(entries), cfg,
                                noPrefetcher()));
    }

    const auto results = runTimed(c, workloads.size(), "fig14_ftq_size");

    TextTable t({"FTQ entries", "speedup", "fully exposed", "partial",
                 "covered", "exposed frac", "paper"});

    double exposed_at_2 = 0;
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const unsigned entries = sizes[i];
        const SuiteResult &r = results[indices[i]];

        double fully = 0;
        double partial = 0;
        double covered = 0;
        for (const auto &run : r.runs) {
            fully += static_cast<double>(run.stats.missFullyExposed);
            partial +=
                static_cast<double>(run.stats.missPartiallyExposed);
            covered += static_cast<double>(run.stats.missCovered);
        }
        const double total = fully + partial + covered;
        const double exposed = fully + partial;
        if (entries == 2)
            exposed_at_2 = exposed;

        const char *paper = entries == 4    ? "+23.7%"
                            : entries == 12 ? "+39.5%"
                            : entries == 24 ? "marginal gain"
                                            : "-";
        t.addRow({std::to_string(entries),
                  speedupStr(r.speedupOver(results[base])),
                  TextTable::num(fully, 0), TextTable::num(partial, 0),
                  TextTable::num(covered, 0),
                  total > 0 ? TextTable::pct(exposed / total) : "-",
                  paper});

        if (entries == 24 && exposed_at_2 > 0) {
            std::printf("exposed misses removed by 24-entry FTQ vs "
                        "2-entry: %.1f%%  [paper: 90.6%%]\n",
                        100.0 * (1.0 - exposed / exposed_at_2));
        }
    }
    t.print();
    return 0;
}
