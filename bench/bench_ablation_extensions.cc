/**
 * @file
 * Ablations of the optional extensions beyond the paper's evaluated
 * design: the two-level BTB hierarchy, the loop predictor, the
 * perceptron direction predictor, and the RDIP prefetcher (the
 * pre-IPC-1 ancestor of D-JOLT).
 */

#include "bench/bench_common.h"

int
main()
{
    using namespace fdip;
    using namespace fdip::bench;

    banner("Ablations: two-level BTB, loop predictor, perceptron, RDIP",
           "Speedup over the no-FDP baseline; FDP frontend otherwise.");

    const auto workloads = suite(400000);
    const SuiteResult base = runSuite("base", noFdpConfig(), workloads,
                                      noPrefetcher());
    const SuiteResult fdp = runSuite("fdp", paperBaselineConfig(),
                                     workloads, noPrefetcher());

    TextTable t({"configuration", "speedup", "MPKI", "note"});
    t.addRow({"FDP baseline", speedupStr(fdp.speedupOver(base)),
              TextTable::num(fdp.meanMpki()), "single-level 8K BTB"});

    {
        // Two-level BTB: tiny fast L1 in front of the 8K main BTB,
        // paying a bubble on L2-served taken re-steers.
        CoreConfig cfg = paperBaselineConfig();
        cfg.bpu.btbHierarchy.enabled = true;
        cfg.bpu.btbHierarchy.l1Entries = 1024;
        cfg.bpu.btbHierarchy.l2ExtraLatency = 2;
        const SuiteResult r =
            runSuite("2lvl", cfg, workloads, noPrefetcher());
        t.addRow({"FDP + 2-level BTB (1K L1)",
                  speedupStr(r.speedupOver(base)),
                  TextTable::num(r.meanMpki()),
                  "L2 takens pay a 2-cycle bubble"});
    }
    {
        CoreConfig cfg = paperBaselineConfig();
        cfg.bpu.useLoopPredictor = true;
        const SuiteResult r =
            runSuite("loop", cfg, workloads, noPrefetcher());
        t.addRow({"FDP + loop predictor",
                  speedupStr(r.speedupOver(base)),
                  TextTable::num(r.meanMpki()),
                  "overrides TAGE on loop exits"});
    }
    {
        CoreConfig cfg = paperBaselineConfig();
        cfg.bpu.direction = DirectionPredictorKind::kPerceptron;
        const SuiteResult r =
            runSuite("perceptron", cfg, workloads, noPrefetcher());
        t.addRow({"FDP + perceptron (instead of TAGE)",
                  speedupStr(r.speedupOver(base)),
                  TextTable::num(r.meanMpki()),
                  "academic baseline [22]"});
    }
    {
        const SuiteResult r = runSuite("rdip", noFdpConfig(), workloads,
                                       prefetcher("rdip"));
        t.addRow({"RDIP (no FDP)", speedupStr(r.speedupOver(base)),
                  TextTable::num(r.meanMpki()),
                  "MICRO'13 RAS-directed prefetch"});
    }
    {
        const SuiteResult r = runSuite(
            "rdip+fdp", paperBaselineConfig(), workloads,
            prefetcher("rdip"));
        t.addRow({"FDP + RDIP", speedupStr(r.speedupOver(base)),
                  TextTable::num(r.meanMpki()), "-"});
    }
    {
        // Original-FDP prefetch buffer: prefetches land in a 32-line
        // side buffer instead of the L1I (pollution isolation).
        CoreConfig direct = noFdpConfig();
        CoreConfig buffered = noFdpConfig();
        buffered.usePrefetchBuffer = true;
        const SuiteResult rd = runSuite("eip-direct", direct, workloads,
                                        prefetcher("eip-27"));
        const SuiteResult rb = runSuite("eip-buffered", buffered,
                                        workloads, prefetcher("eip-27"));
        t.addRow({"EIP-27 -> L1I (no FDP)",
                  speedupStr(rd.speedupOver(base)),
                  TextTable::num(rd.meanMpki()),
                  "prefetch fills pollute L1I"});
        t.addRow({"EIP-27 -> prefetch buffer (no FDP)",
                  speedupStr(rb.speedupOver(base)),
                  TextTable::num(rb.meanMpki()),
                  "original FDP [8] side buffer"});
    }

    t.print();
    return 0;
}
