/**
 * @file
 * Shared scaffolding for the per-figure bench binaries: suite
 * construction, labeled runs, and table output with the paper's
 * reported values alongside the measured ones.
 *
 * Every bench honours:
 *   FDIP_SIM_INSTRS  dynamic instructions per trace (default per bench)
 *   FDIP_SUITE=small reduced 3-workload suite
 */

#ifndef FDIP_BENCH_BENCH_COMMON_H_
#define FDIP_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "prefetch/factory.h"
#include "sim/experiment.h"
#include "util/table.h"

namespace fdip::bench
{

/** Builds the bench suite with a per-bench default sizing. */
inline std::vector<SuiteEntry>
suite(std::size_t default_insts)
{
    std::fprintf(stderr, "building workload suite...\n");
    return benchSuite(default_insts);
}

/** Factory adapter for named prefetchers. */
inline PrefetcherFactory
prefetcher(const std::string &name)
{
    return [name](const Trace &) { return makePrefetcher(name); };
}

/** Formats a speedup fraction as "+41.0%". */
inline std::string
speedupStr(double ratio)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", (ratio - 1.0) * 100.0);
    return buf;
}

/** Prints the standard bench banner. */
inline void
banner(const char *experiment, const char *description)
{
    std::printf("=============================================================\n");
    std::printf("%s\n", experiment);
    std::printf("%s\n", description);
    std::printf("=============================================================\n");
}

} // namespace fdip::bench

#endif // FDIP_BENCH_BENCH_COMMON_H_
