/**
 * @file
 * Shared scaffolding for the per-figure bench binaries: suite
 * construction, labeled campaign runs, and table output with the
 * paper's reported values alongside the measured ones.
 *
 * Every bench honours:
 *   FDIP_SIM_INSTRS  dynamic instructions per trace (default per bench)
 *   FDIP_SUITE=small reduced 3-workload suite
 *   FDIP_JOBS        parallel worker threads (default: all cores;
 *                    1 = exact serial execution). Results are
 *                    bit-identical for any value.
 */

#ifndef FDIP_BENCH_BENCH_COMMON_H_
#define FDIP_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "prefetch/factory.h"
#include "sim/campaign_store.h"
#include "sim/experiment.h"
#include "sim/parallel.h"
#include "util/table.h"

namespace fdip::bench
{

/** Builds the bench suite with a per-bench default sizing. */
inline std::vector<SuiteEntry>
suite(std::size_t default_insts)
{
    std::fprintf(stderr, "building workload suite...\n");
    return benchSuite(default_insts);
}

/** Factory adapter for named prefetchers. */
inline PrefetcherFactory
prefetcher(const std::string &name)
{
    return [name](const Trace &) { return makePrefetcher(name); };
}

/** JSON string escaping for labels woven into bench summaries. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) >= 0x20)
            out.push_back(c);
    }
    return out;
}

/** Formats a speedup fraction as "+41.0%". */
inline std::string
speedupStr(double ratio)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", (ratio - 1.0) * 100.0);
    return buf;
}

/** Prints the standard bench banner. */
inline void
banner(const char *experiment, const char *description)
{
    std::printf("=============================================================\n");
    std::printf("%s\n", experiment);
    std::printf("%s\n", description);
    std::printf("=============================================================\n");
}

/** Bench-summary schema version. v2: labels are JSON-escaped, the
 *  version is explicit, and summaries carry hostPhaseBreakdown when
 *  the tick-phase profiler sampled anything (tools/bench_trend.py and
 *  tools/perf_gate.py validate this schema). v1 files have no
 *  schemaVersion key. */
inline constexpr int kBenchJsonSchemaVersion = 2;

/**
 * Writes a machine-readable bench summary to BENCH_<name>.json: one
 * entry per configuration (label + geomean IPC) plus host throughput
 * and, when profiling sampled any tick, the merged host tick-phase
 * breakdown — so CI and plotting scripts can diff bench output
 * without scraping the human-readable tables. FDIP_BENCH_JSON_DIR
 * overrides the output directory (default: current directory);
 * FDIP_BENCH_JSON=0 disables.
 */
inline void
writeBenchJson(const char *bench_name,
               const std::vector<SuiteResult> &results, unsigned jobs,
               double elapsed_seconds, double host_insts_per_second)
{
    const char *toggle = std::getenv("FDIP_BENCH_JSON");
    if (toggle != nullptr && std::string(toggle) == "0")
        return;
    std::string path = "BENCH_" + std::string(bench_name) + ".json";
    if (const char *dir = std::getenv("FDIP_BENCH_JSON_DIR")) {
        if (*dir != '\0')
            path = std::string(dir) + "/" + path;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"%s\",\n  \"schemaVersion\": %d,\n"
                 "  \"jobs\": %u,\n"
                 "  \"elapsedSeconds\": %.3f,\n"
                 "  \"hostInstrsPerSecond\": %.0f,\n  \"results\": [\n",
                 jsonEscape(bench_name).c_str(),
                 kBenchJsonSchemaVersion, jobs, elapsed_seconds,
                 host_insts_per_second);
    for (std::size_t i = 0; i < results.size(); ++i) {
        std::fprintf(f, "    {\"label\": \"%s\", \"geomeanIpc\": %.6f}%s\n",
                     jsonEscape(results[i].label).c_str(),
                     results[i].geomeanIpc(),
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]");

    TickProfile merged;
    for (const SuiteResult &r : results)
        for (const RunResult &run : r.runs)
            merged.merge(run.hostPhases);
    if (merged.sampledTicks > 0) {
        std::fprintf(f,
                     ",\n  \"hostPhaseBreakdown\": {\n"
                     "    \"interval\": %llu, \"sampledTicks\": %llu, "
                     "\"totalTicks\": %llu,\n    \"phases\": {",
                     static_cast<unsigned long long>(merged.interval),
                     static_cast<unsigned long long>(merged.sampledTicks),
                     static_cast<unsigned long long>(merged.totalTicks));
        for (std::size_t i = 0; i < kTickPhaseCount; ++i) {
            std::fprintf(
                f, "%s\"%s\": %.6f", i == 0 ? "" : ", ",
                kTickPhaseName[i],
                merged.fraction(static_cast<TickPhase>(i)));
        }
        std::fprintf(f, "}\n  }");
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "bench: wrote %s\n", path.c_str());
}

/**
 * Runs a campaign and prints engine telemetry: worker count, elapsed
 * wall-clock vs. the summed per-run core time (their ratio is the
 * effective parallel speedup), and simulated-instruction throughput.
 * When @p bench_name is given, also writes BENCH_<name>.json (see
 * writeBenchJson).
 *
 * With FDIP_SPOOL set, the campaign drains through the
 * content-addressed result spool (sim/campaign_store.h): completed
 * runs are cache hits, a killed bench resumes where it stopped, and
 * re-running a finished bench re-simulates nothing. Results are
 * bit-identical either way.
 */
inline std::vector<SuiteResult>
runTimed(const Campaign &campaign, std::size_t suite_size,
         const char *bench_name = nullptr)
{
    const unsigned jobs = jobsFromEnv();
    const std::string spool = spoolFromEnv();
    // Benches self-profile by default (every 64th tick; ~1.5% sample
    // rate keeps the hot loop honest) so BENCH_*.json always carries a
    // host phase breakdown; an explicit FDIP_PROFILE (including 0)
    // wins. Architecturally invisible — sim_determinism_test pins it.
    ::setenv("FDIP_PROFILE", "64", /*overwrite=*/0);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<SuiteResult> results;
    if (!spool.empty()) {
        SpoolOptions options;
        options.spoolDir = spool;
        options.warmupFraction = campaign.warmupFraction();
        options.jobs = jobs;
        // A bench re-run after a crash is the resume case; claims of
        // live sibling processes are still never touched.
        options.reclaimDeadClaims = true;
        SpoolSummary summary;
        results = runCampaignSpooled(campaign.entries(),
                                     campaign.suite(), options,
                                     &summary);
        std::fprintf(stderr,
                     "spool: %s: %zu runs, %zu simulated, %zu cached, "
                     "%zu claimed elsewhere, %zu quarantined, %s\n",
                     spool.c_str(), summary.totalRuns,
                     summary.simulated, summary.cacheHits,
                     summary.claimedElsewhere, summary.quarantined,
                     summary.complete ? "complete" : "incomplete");
    } else {
        results = campaign.run(jobs);
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double elapsed = std::chrono::duration<double>(t1 - t0).count();

    double core_seconds = 0.0;
    double insts = 0.0;
    for (const auto &r : results) {
        for (const auto &run : r.runs) {
            core_seconds += run.stats.hostWallSeconds;
            insts += static_cast<double>(run.stats.committedInsts);
        }
    }
    std::fprintf(stderr,
                 "engine: %zu runs (%zu configs x %zu workloads), "
                 "jobs=%u, %.2fs elapsed, %.2fs core time "
                 "(%.2fx), %.2f Minst/s\n",
                 campaign.size() * suite_size, campaign.size(), suite_size,
                 jobs, elapsed, core_seconds,
                 elapsed > 0 ? core_seconds / elapsed : 0.0,
                 elapsed > 0 ? insts / elapsed / 1e6 : 0.0);
    if (bench_name != nullptr) {
        writeBenchJson(bench_name, results, jobs, elapsed,
                       elapsed > 0 ? insts / elapsed : 0.0);
    }
    return results;
}

} // namespace fdip::bench

#endif // FDIP_BENCH_BENCH_COMMON_H_
