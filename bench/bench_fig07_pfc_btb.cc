/**
 * @file
 * Fig. 7 — Post-fetch correction benefit vs BTB size.
 *
 * Paper: PFC gives +9.3% at a 1K-entry BTB and +2.4% at 8K entries
 * (from 75.0% / 25.2% misprediction reductions); at 32K entries PFC is
 * roughly neutral (+0.1%) and *increases* mispredictions by 1.5%
 * because never-taken branches are mis-resteered.
 */

#include "bench/bench_common.h"

int
main()
{
    using namespace fdip;
    using namespace fdip::bench;

    banner("Fig. 7: PFC benefit across BTB sizes",
           "FDP frontend; PFC on vs off per BTB capacity.");

    const auto workloads = suite(500000);

    TextTable t({"BTB entries", "PFC speedup", "MPKI off", "MPKI on",
                 "MPKI delta", "paper speedup"});
    struct Ref
    {
        unsigned entries;
        const char *paper;
    };
    const Ref refs[] = {
        {1024, "+9.3%"},  {2048, "~+6%"},  {4096, "~+4%"},
        {8192, "+2.4%"},  {16384, "~+1%"}, {32768, "+0.1%"},
    };

    for (const Ref &ref : refs) {
        CoreConfig off = paperBaselineConfig();
        off.bpu.btb.numEntries = ref.entries;
        off.pfcEnabled = false;
        CoreConfig on = off;
        on.pfcEnabled = true;

        const SuiteResult r_off =
            runSuite("off", off, workloads, noPrefetcher());
        const SuiteResult r_on =
            runSuite("on", on, workloads, noPrefetcher());

        const double delta =
            (r_on.meanMpki() - r_off.meanMpki()) / r_off.meanMpki();
        t.addRow({std::to_string(ref.entries),
                  speedupStr(r_on.speedupOver(r_off)),
                  TextTable::num(r_off.meanMpki()),
                  TextTable::num(r_on.meanMpki()),
                  TextTable::pct(delta), ref.paper});
    }
    t.print();
    return 0;
}
