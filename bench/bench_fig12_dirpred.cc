/**
 * @file
 * Fig. 12 — Direction-predictor sensitivity.
 *
 * Paper: gshare-8KB 31.4% vs similarly-sized TAGE 37.1%; PFC *hurts*
 * gshare by 6.0% (inaccurate taken predictions mis-resteer BTB-miss
 * never-taken branches); perfect direction makes PFC more effective
 * (+4.6%); perfect direction + targets reaches 49.4%.
 */

#include "bench/bench_common.h"

int
main()
{
    using namespace fdip;
    using namespace fdip::bench;

    banner("Fig. 12: direction-predictor sensitivity",
           "FDP frontend; speedup over the no-FDP baseline.");

    const auto workloads = suite(500000);
    const SuiteResult base = runSuite("base", noFdpConfig(), workloads,
                                      noPrefetcher());

    struct Pred
    {
        const char *label;
        DirectionPredictorKind kind;
        unsigned tageKb;
        bool perfectAll;
        const char *paper;
    };
    const Pred preds[] = {
        {"Gshare 8KB", DirectionPredictorKind::kGshare, 18, false,
         "+31.4% (PFC -6.0%)"},
        {"TAGE 9KB", DirectionPredictorKind::kTage, 9, false, "~+35%"},
        {"TAGE 18KB (base)", DirectionPredictorKind::kTage, 18, false,
         "+37.1%... +41% w/ PFC"},
        {"TAGE 36KB", DirectionPredictorKind::kTage, 36, false, "~+42%"},
        {"Perfect direction", DirectionPredictorKind::kPerfect, 18,
         false, "PFC +4.6%"},
        {"Perfect all", DirectionPredictorKind::kPerfect, 18, true,
         "+49.4%"},
    };

    TextTable t({"predictor", "PFC off", "PFC on", "PFC delta", "MPKI",
                 "paper"});
    for (const Pred &p : preds) {
        CoreConfig cfg = paperBaselineConfig();
        cfg.bpu.direction = p.kind;
        cfg.bpu.tageKilobytes = p.tageKb;
        if (p.perfectAll) {
            cfg.bpu.perfectBtb = true;
            cfg.bpu.perfectIndirect = true;
        }
        CoreConfig off = cfg;
        off.pfcEnabled = false;
        CoreConfig on = cfg;
        on.pfcEnabled = true;

        const SuiteResult r_off =
            runSuite("off", off, workloads, noPrefetcher());
        const SuiteResult r_on =
            runSuite("on", on, workloads, noPrefetcher());
        t.addRow({p.label, speedupStr(r_off.speedupOver(base)),
                  speedupStr(r_on.speedupOver(base)),
                  speedupStr(r_on.speedupOver(r_off)),
                  TextTable::num(r_on.meanMpki()), p.paper});
    }
    t.print();
    return 0;
}
