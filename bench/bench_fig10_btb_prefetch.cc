/**
 * @file
 * Fig. 10 — BTB prefetching (Divide-and-Conquer) under different BTB
 * sizes, history schemes, and PFC settings.
 *
 * Paper: PFC beats BTB prefetching; THR always beats GHR; BTB
 * prefetching helps small (2K) BTBs with GHR (+8.8%) but *hurts* an
 * 8K-entry BTB under THR (pollution from never-taken branches).
 */

#include "bench/bench_common.h"

int
main()
{
    using namespace fdip;
    using namespace fdip::bench;

    banner("Fig. 10: SN4L+Dis with/without BTB prefetching",
           "FDP frontend; speedup over the no-FDP baseline.");

    const auto workloads = suite(400000);
    const SuiteResult base = runSuite("base", noFdpConfig(), workloads,
                                      noPrefetcher());

    TextTable t({"BTB", "history", "PFC", "SN4L+Dis", "SN4L+Dis+BTBpf",
                 "BTBpf delta"});

    struct BtbSetting
    {
        const char *label;
        unsigned entries;
        bool perfect;
    };
    const BtbSetting btbs[] = {
        {"1K", 1024, false}, // Extra point: heavier capacity misses.
        {"2K", 2048, false},
        {"8K", 8192, false},
        {"perfect", 8192, true},
    };

    for (const BtbSetting &btb : btbs) {
        for (HistoryScheme scheme :
             {HistoryScheme::kThr, HistoryScheme::kGhr3}) {
            for (bool pfc : {true, false}) {
                CoreConfig cfg = paperBaselineConfig();
                cfg.bpu.btb.numEntries = btb.entries;
                cfg.bpu.perfectBtb = btb.perfect;
                cfg.historyScheme = scheme;
                cfg.pfcEnabled = pfc;

                const SuiteResult without = runSuite(
                    "snd", cfg, workloads, prefetcher("sn4l+dis"));
                const SuiteResult with = runSuite(
                    "sndb", cfg, workloads, prefetcher("sn4l+dis+btb"));
                t.addRow({btb.label, historySchemeName(scheme),
                          pfc ? "on" : "off",
                          speedupStr(without.speedupOver(base)),
                          speedupStr(with.speedupOver(base)),
                          speedupStr(with.speedupOver(without))});
            }
        }
    }
    t.print();
    std::printf("\nPaper checks: BTB prefetch +8.8%% @2K/GHR, +3.2%% "
                "@8K/GHR, negative @8K/THR; THR > GHR everywhere.\n");
    return 0;
}
