/**
 * @file
 * Fig. 1 — Prefetching limit study in the IPC-1-like framework.
 *
 * All mechanisms use perfect branch prediction (direction + BTB +
 * indirect targets), as in the paper's limit study. The baseline is a
 * shallow-FTQ frontend (no FDP run-ahead); "FDP" enables the
 * 192-instruction FTQ. Paper result: the top-3 IPC-1 prefetchers give
 * >28% (close to perfect's 30.6%), while FDP alone with a larger FTQ
 * gives 30.2%, and prefetchers on top of FDP add little.
 */

#include "bench/bench_common.h"

namespace fdip
{
namespace
{

CoreConfig
perfectBpConfig(bool fdp)
{
    CoreConfig cfg = fdp ? paperBaselineConfig() : noFdpConfig();
    cfg.bpu.direction = DirectionPredictorKind::kPerfect;
    cfg.bpu.perfectBtb = true;
    cfg.bpu.perfectIndirect = true;
    return cfg;
}

} // namespace
} // namespace fdip

int
main()
{
    using namespace fdip;
    using namespace fdip::bench;

    banner("Fig. 1: prefetching limit study (perfect branch prediction)",
           "Speedup over the no-FDP, no-prefetch baseline.");

    const auto workloads = suite(600000);
    const SuiteResult base = runSuite("baseline", perfectBpConfig(false),
                                      workloads, noPrefetcher());

    struct Row
    {
        const char *label;
        const char *pf;
        const char *paperNoFdp;
        const char *paperFdp;
    };
    const Row rows[] = {
        {"NL1", "nl1", "~11%", "-"},
        {"FNL+MMA", "fnl+mma", ">28%", "~30%"},
        {"D-JOLT", "d-jolt", ">28%", "~30%"},
        {"EIP-128KB", "eip-128", ">28%", "~30%"},
        {"Perfect", "perfect", "30.6%", "~31%"},
    };

    TextTable t({"prefetcher", "no FDP", "with FDP", "paper no-FDP",
                 "paper FDP"});

    // FDP alone (the paper's "simplistic FDP with 192-inst FTQ").
    const SuiteResult fdp_alone = runSuite(
        "fdp", perfectBpConfig(true), workloads, noPrefetcher());
    t.addRow({"FDP alone", "-", speedupStr(fdp_alone.speedupOver(base)),
              "-", "30.2%"});

    for (const Row &row : rows) {
        CoreConfig no_fdp = perfectBpConfig(false);
        CoreConfig with_fdp = perfectBpConfig(true);
        PrefetcherFactory factory = noPrefetcher();
        if (std::string(row.pf) == "perfect") {
            no_fdp.perfectPrefetch = true;
            with_fdp.perfectPrefetch = true;
        } else {
            factory = prefetcher(row.pf);
        }
        const SuiteResult r_no =
            runSuite(row.label, no_fdp, workloads, factory);
        const SuiteResult r_yes =
            runSuite(row.label, with_fdp, workloads, factory);
        t.addRow({row.label, speedupStr(r_no.speedupOver(base)),
                  speedupStr(r_yes.speedupOver(base)), row.paperNoFdp,
                  row.paperFdp});
    }

    t.print();
    std::printf("\nTakeaway check: prefetchers on top of FDP should add "
                "little over FDP alone.\n");
    return 0;
}
