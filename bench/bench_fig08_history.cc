/**
 * @file
 * Fig. 8 / Tables II & V — Branch history management policies.
 *
 * Policies (Table V): Ideal (oracle direction history), THR
 * (taken-only target history, taken-only BTB allocation), GHR0/1 (no
 * fixup; taken-only / all-branch allocation), GHR2/3 (pre-decode fixup
 * flushes; taken-only / all-branch allocation).
 *
 * Paper: THR ~= Ideal; GHR2 is 23.7% below Ideal (flush cost); GHR0
 * has 19.5% more mispredictions and 1.5% lower performance than Ideal;
 * PFC helps every configuration.
 */

#include "bench/bench_common.h"

int
main()
{
    using namespace fdip;
    using namespace fdip::bench;

    banner("Fig. 8: history-management policies (Table V)",
           "Speedup over the no-FDP baseline; MPKI; fixup flushes/KI.");

    const auto workloads = suite(500000);
    const SuiteResult base = runSuite("base", noFdpConfig(), workloads,
                                      noPrefetcher());

    struct Policy
    {
        HistoryScheme scheme;
        const char *paperNote;
    };
    const Policy policies[] = {
        {HistoryScheme::kIdeal, "reference"},
        {HistoryScheme::kThr, "~= Ideal (paper headline)"},
        {HistoryScheme::kGhr0, "-1.5% vs Ideal, +19.5% MPKI"},
        {HistoryScheme::kGhr1, "between GHR0 and Ideal"},
        {HistoryScheme::kGhr2, "-23.7% vs Ideal (flushes)"},
        {HistoryScheme::kGhr3, "better than GHR2, BTB pressure"},
    };

    for (bool pfc : {true, false}) {
        std::printf("\n--- PFC %s ---\n", pfc ? "ON" : "OFF");
        TextTable t({"policy", "speedup", "MPKI", "fixups/KI", "paper"});
        for (const Policy &p : policies) {
            CoreConfig cfg = paperBaselineConfig();
            cfg.historyScheme = p.scheme;
            cfg.pfcEnabled = pfc;
            const SuiteResult r = runSuite(historySchemeName(p.scheme),
                                           cfg, workloads, noPrefetcher());
            double fixups = 0;
            double insts = 0;
            for (const auto &run : r.runs) {
                fixups += static_cast<double>(run.stats.ghrFixups);
                insts += static_cast<double>(run.stats.committedInsts);
            }
            t.addRow({historySchemeName(p.scheme),
                      speedupStr(r.speedupOver(base)),
                      TextTable::num(r.meanMpki()),
                      TextTable::num(1000.0 * fixups / insts),
                      p.paperNote});
        }
        t.print();
    }
    return 0;
}
