/**
 * @file
 * Fig. 8 / Tables II & V — Branch history management policies.
 *
 * Policies (Table V): Ideal (oracle direction history), THR
 * (taken-only target history, taken-only BTB allocation), GHR0/1 (no
 * fixup; taken-only / all-branch allocation), GHR2/3 (pre-decode fixup
 * flushes; taken-only / all-branch allocation).
 *
 * Paper: THR ~= Ideal; GHR2 is 23.7% below Ideal (flush cost); GHR0
 * has 19.5% more mispredictions and 1.5% lower performance than Ideal;
 * PFC helps every configuration.
 *
 * All 13 configurations (baseline + 6 policies x PFC on/off) are one
 * campaign, parallelized under FDIP_JOBS; with FDIP_SPOOL set the
 * campaign drains through the content-addressed result spool, so an
 * interrupted sweep resumes and a finished one re-simulates nothing.
 */

#include "bench/bench_common.h"

int
main()
{
    using namespace fdip;
    using namespace fdip::bench;

    banner("Fig. 8: history-management policies (Table V)",
           "Speedup over the no-FDP baseline; MPKI; fixup flushes/KI.");

    const auto workloads = suite(500000);

    struct Policy
    {
        HistoryScheme scheme;
        const char *paperNote;
    };
    const Policy policies[] = {
        {HistoryScheme::kIdeal, "reference"},
        {HistoryScheme::kThr, "~= Ideal (paper headline)"},
        {HistoryScheme::kGhr0, "-1.5% vs Ideal, +19.5% MPKI"},
        {HistoryScheme::kGhr1, "between GHR0 and Ideal"},
        {HistoryScheme::kGhr2, "-23.7% vs Ideal (flushes)"},
        {HistoryScheme::kGhr3, "better than GHR2, BTB pressure"},
    };

    Campaign c(workloads);
    const std::size_t base = c.add("base", noFdpConfig(), noPrefetcher());

    // indices[pfc on=0/off=1][policy]
    std::size_t indices[2][6];
    for (int p = 0; p < 2; ++p) {
        const bool pfc = p == 0;
        for (std::size_t i = 0; i < 6; ++i) {
            CoreConfig cfg = paperBaselineConfig();
            cfg.historyScheme = policies[i].scheme;
            cfg.pfcEnabled = pfc;
            indices[p][i] = c.add(historySchemeName(policies[i].scheme),
                                  cfg, noPrefetcher());
        }
    }

    const auto results = runTimed(c, workloads.size(), "fig08_history");

    for (int p = 0; p < 2; ++p) {
        std::printf("\n--- PFC %s ---\n", p == 0 ? "ON" : "OFF");
        TextTable t({"policy", "speedup", "MPKI", "fixups/KI", "paper"});
        for (std::size_t i = 0; i < 6; ++i) {
            const SuiteResult &r = results[indices[p][i]];
            double fixups = 0;
            double insts = 0;
            for (const auto &run : r.runs) {
                fixups += static_cast<double>(run.stats.ghrFixups);
                insts += static_cast<double>(run.stats.committedInsts);
            }
            t.addRow({historySchemeName(policies[i].scheme),
                      speedupStr(r.speedupOver(results[base])),
                      TextTable::num(r.meanMpki()),
                      TextTable::num(1000.0 * fixups / insts),
                      policies[i].paperNote});
        }
        t.print();
    }
    return 0;
}
