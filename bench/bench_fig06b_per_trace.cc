/**
 * @file
 * Fig. 6b — Per-trace performance improvement of EIP-128KB with FDP on
 * and off, plotted against each trace's branch MPKI.
 *
 * Paper: without FDP, EIP reaches up to 2.01x on high-MPKI traces;
 * with FDP the max falls to 14.8% and a couple of traces degrade
 * slightly — FDP already covers most I-cache misses.
 */

#include "bench/bench_common.h"

int
main()
{
    using namespace fdip;
    using namespace fdip::bench;

    banner("Fig. 6b: per-trace EIP-128KB improvement vs branch MPKI",
           "Each workload: speedup of adding EIP-128KB, with FDP off/on.");

    const auto workloads = suite(600000);

    const SuiteResult base_no =
        runSuite("noFDP", noFdpConfig(), workloads, noPrefetcher());
    const SuiteResult eip_no = runSuite("noFDP+EIP", noFdpConfig(),
                                        workloads, prefetcher("eip-128"));
    const SuiteResult base_fdp = runSuite(
        "FDP", paperBaselineConfig(), workloads, noPrefetcher());
    const SuiteResult eip_fdp =
        runSuite("FDP+EIP", paperBaselineConfig(), workloads,
                 prefetcher("eip-128"));

    TextTable t({"workload", "branch MPKI", "EIP gain (no FDP)",
                 "EIP gain (FDP)"});
    double max_no = 0;
    double max_fdp = 0;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const double gain_no = eip_no.runs[i].stats.ipc() /
                               base_no.runs[i].stats.ipc();
        const double gain_fdp = eip_fdp.runs[i].stats.ipc() /
                                base_fdp.runs[i].stats.ipc();
        max_no = std::max(max_no, gain_no);
        max_fdp = std::max(max_fdp, gain_fdp);
        t.addRow({workloads[i].name,
                  TextTable::num(base_fdp.runs[i].stats.branchMpki()),
                  speedupStr(gain_no), speedupStr(gain_fdp)});
    }
    t.print();
    std::printf("\nmax EIP gain without FDP: %s  [paper: up to +101%%]\n",
                speedupStr(max_no).c_str());
    std::printf("max EIP gain with FDP:    %s  [paper: +14.8%%]\n",
                speedupStr(max_fdp).c_str());
    return 0;
}
