/**
 * @file
 * Google-benchmark microbenchmarks of the core structures: TAGE
 * prediction/update, BTB lookup, history push/snapshot, cache access,
 * FTQ operations, and end-to-end simulated instruction throughput.
 */

#include <benchmark/benchmark.h>

#include "bpu/bpu.h"
#include "cache/cache.h"
#include "core/core.h"
#include "core/ftq.h"
#include "prefetch/factory.h"
#include "trace/suite.h"
#include "util/rng.h"

namespace fdip
{
namespace
{

void
BM_TagePredictUpdate(benchmark::State &state)
{
    BranchHistory hist(HistoryPolicy::kTargetHistory);
    Tage tage(TageConfig::sized(18), hist);
    Rng rng(1);
    Addr pc = 0x400000;
    for (auto _ : state) {
        TagePrediction meta;
        const bool pred = tage.predict(pc, meta);
        benchmark::DoNotOptimize(pred);
        const bool taken = (rng.next() & 3) != 0;
        tage.update(pc, taken, meta);
        hist.pushBranch(pc, pc ^ 0x40, taken);
        pc = 0x400000 + (rng.next() & 0xffff) * 4;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagePredictUpdate);

void
BM_BtbLookup(benchmark::State &state)
{
    BtbConfig cfg;
    cfg.numEntries = static_cast<unsigned>(state.range(0));
    Btb btb(cfg);
    Rng rng(2);
    for (unsigned i = 0; i < cfg.numEntries; ++i)
        btb.install(0x400000 + i * 8, InstClass::kJumpDirect, 0x9000,
                   true);
    for (auto _ : state) {
        const Addr pc = 0x400000 + (rng.next() % (cfg.numEntries)) * 8;
        benchmark::DoNotOptimize(btb.lookup(pc));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtbLookup)->Arg(1024)->Arg(8192)->Arg(32768);

void
BM_HistoryPushSnapshot(benchmark::State &state)
{
    BranchHistory hist(HistoryPolicy::kTargetHistory);
    // Register the fold population of TAGE + ITTAGE.
    for (int i = 0; i < 54; ++i)
        hist.registerFold(8 + i * 9, 10);
    Rng rng(3);
    for (auto _ : state) {
        hist.pushBranch(rng.next(), rng.next(), true);
        benchmark::DoNotOptimize(hist.snapshot());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistoryPushSnapshot);

void
BM_CacheAccess(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.sizeBytes = 32 * 1024;
    cfg.ways = 8;
    Cache cache(cfg);
    Rng rng(4);
    for (auto _ : state) {
        const Addr line = (rng.next() & 0xfff) * kCacheLineBytes;
        if (!cache.access(line).has_value())
            cache.fill(line);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_FtqPushPop(benchmark::State &state)
{
    Ftq ftq(24);
    std::uint64_t seq = 0;
    for (auto _ : state) {
        while (!ftq.full()) {
            FtqEntry e;
            e.seq = seq++;
            ftq.push(std::move(e));
        }
        while (!ftq.empty())
            ftq.popHead();
    }
    state.SetItemsProcessed(state.iterations() * 24);
}
BENCHMARK(BM_FtqPushPop);

void
BM_EndToEndSimulation(benchmark::State &state)
{
    WorkloadSpec s = specCpuSpec("micro", 55);
    s.numFunctions = 48;
    auto wl = std::make_shared<Workload>(buildWorkload(s));
    const Trace trace = generateTrace(wl, 50000);
    CoreConfig cfg = paperBaselineConfig();
    for (auto _ : state) {
        Core core(cfg, trace, makePrefetcher("none"));
        benchmark::DoNotOptimize(core.run(0).cycles);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_EndToEndSimulation)->Unit(benchmark::kMillisecond);

void
BM_TraceGeneration(benchmark::State &state)
{
    WorkloadSpec s = clientSpec("micro", 66);
    s.numFunctions = 60;
    auto wl = std::make_shared<Workload>(buildWorkload(s));
    for (auto _ : state) {
        const Trace t = generateTrace(wl, 100000);
        benchmark::DoNotOptimize(t.insts.data());
    }
    state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace fdip

BENCHMARK_MAIN();
