/**
 * @file
 * ChampSim interchange example: export a synthetic workload to the
 * ChampSim record format, import it back through the renormalizing
 * reader, and simulate both — demonstrating that externally produced
 * ChampSim traces (e.g. the IPC-1 set) can be replayed on this
 * frontend.
 *
 * Usage: champsim_convert [num_insts] [path]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/core.h"
#include "prefetch/factory.h"
#include "trace/champsim.h"
#include "trace/workload.h"

namespace
{

fdip::SimStats
simulate(const fdip::Trace &trace)
{
    using namespace fdip;
    CoreConfig cfg = paperBaselineConfig();
    Core core(cfg, trace, makePrefetcher("none"));
    return core.run(trace.size() / 5);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fdip;

    const std::size_t n =
        argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 400000;
    const std::string path =
        argc > 2 ? argv[2] : "/tmp/fdipsim_export.champsim.trace";

    auto workload = std::make_shared<Workload>(
        buildWorkload(clientSpec("convert", 5)));
    const Trace native = generateTrace(workload, n);

    if (!writeChampSimTrace(path, native)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::printf("exported %zu records (%zu MB) to %s\n", native.size(),
                native.size() * sizeof(ChampSimRecord) >> 20,
                path.c_str());

    Trace imported;
    if (!readChampSimTrace(path, 0, imported)) {
        std::fprintf(stderr, "cannot import %s\n", path.c_str());
        return 1;
    }
    std::printf("imported %zu records; image %zu KB\n\n",
                imported.size(),
                imported.image().footprintBytes() / 1024);

    const SimStats a = simulate(native);
    const SimStats b = simulate(imported);
    std::printf("%-22s %10s %10s\n", "", "native", "imported");
    std::printf("%-22s %10.3f %10.3f\n", "IPC", a.ipc(), b.ipc());
    std::printf("%-22s %10.2f %10.2f\n", "branch MPKI", a.branchMpki(),
                b.branchMpki());
    std::printf("%-22s %10.2f %10.2f\n", "L1I miss / KI", a.l1iMpki(),
                b.l1iMpki());
    std::printf("\nThe two runs agree up to address renormalization "
                "(same stream, remapped image).\n");
    std::remove(path.c_str());
    return 0;
}
