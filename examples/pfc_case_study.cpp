/**
 * @file
 * Post-fetch correction case study (paper Section III-B / Fig. 3):
 * runs the same workload across BTB sizes with PFC on and off, showing
 * how PFC converts execute-time misprediction flushes from BTB-miss
 * taken branches into cheap pre-decode re-steers — and how the benefit
 * evaporates (and can misfire) once the BTB holds the branch footprint.
 */

#include <cstdio>
#include <memory>

#include "core/core.h"
#include "prefetch/factory.h"
#include "trace/trace_gen.h"
#include "trace/workload.h"

int
main()
{
    using namespace fdip;

    auto workload = std::make_shared<Workload>(
        buildWorkload(serverSpec("pfc-study", 21)));
    const Trace trace = generateTrace(workload, 800000);

    std::printf("%8s | %12s %12s | %9s %9s %9s | %10s\n", "BTB", "IPC off",
                "IPC on", "fires", "correct", "misfires", "PFC gain");
    std::printf("---------+---------------------------+------------------"
                "-------------+-----------\n");

    for (unsigned entries : {1024u, 2048u, 8192u, 32768u}) {
        CoreConfig off = paperBaselineConfig();
        off.bpu.btb.numEntries = entries;
        off.pfcEnabled = false;
        CoreConfig on = off;
        on.pfcEnabled = true;

        Core core_off(off, trace, makePrefetcher("none"));
        const SimStats s_off = core_off.run(trace.size() / 5);
        Core core_on(on, trace, makePrefetcher("none"));
        const SimStats s_on = core_on.run(trace.size() / 5);

        std::printf("%8u | %12.3f %12.3f | %9llu %9llu %9llu | %+9.1f%%\n",
                    entries, s_off.ipc(), s_on.ipc(),
                    static_cast<unsigned long long>(s_on.pfcFires),
                    static_cast<unsigned long long>(s_on.pfcCorrect),
                    static_cast<unsigned long long>(s_on.pfcWrong),
                    100.0 * (s_on.ipc() / s_off.ipc() - 1.0));
    }

    std::printf("\nReading the table: small BTBs miss many taken "
                "branches, so PFC fires often\nand pays off; at large "
                "sizes only cold/never-taken branches remain, where\n"
                "misfires (direction predictor says taken, branch is "
                "never taken) can hurt.\n");
    return 0;
}
