/**
 * @file
 * Design-space sweep with machine-readable output: runs the FTQ-size
 * sweep of Fig. 14 over a reduced suite through the parallel campaign
 * engine (FDIP_JOBS workers) and writes JSON + CSV reports for
 * external plotting.
 *
 * Usage: sweep_report [out_prefix]   (default /tmp/fdipsim_sweep)
 */

#include <cstdio>
#include <string>

#include "sim/parallel.h"
#include "sim/report.h"

int
main(int argc, char **argv)
{
    using namespace fdip;

    const std::string prefix =
        argc > 1 ? argv[1] : "/tmp/fdipsim_sweep";

    const auto suite = buildStandardSuite(300000, /*small=*/true);

    Campaign campaign(suite);
    for (unsigned ftq : {2u, 4u, 8u, 12u, 24u, 32u}) {
        CoreConfig cfg = paperBaselineConfig();
        cfg.ftqEntries = ftq;
        campaign.add("ftq-" + std::to_string(ftq), cfg, noPrefetcher());
    }

    const std::vector<SuiteResult> results = campaign.run();
    for (const SuiteResult &r : results) {
        std::printf("%-8s geomean IPC %.3f  mean MPKI %.2f\n",
                    r.label.c_str(), r.geomeanIpc(), r.meanMpki());
    }

    const std::string json = prefix + ".json";
    const std::string csv = prefix + ".csv";
    if (!writeSuiteResultsJson(json, results) ||
        !writeSuiteResultsCsv(csv, results)) {
        std::fprintf(stderr, "failed to write reports\n");
        return 1;
    }
    std::printf("\nwrote %s and %s\n", json.c_str(), csv.c_str());
    return 0;
}
