/**
 * @file
 * Trace tooling example: generate a trace, serialize it to disk, read
 * it back, and print footprint / instruction-mix / control-flow
 * statistics — the checks used to validate that synthetic workloads
 * look like the paper's trace classes.
 *
 * Usage: trace_inspect [srv|clt|spec] [num_insts] [outfile]
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "trace/trace_gen.h"
#include "trace/trace_io.h"
#include "trace/workload.h"

int
main(int argc, char **argv)
{
    using namespace fdip;

    const std::string cls = argc > 1 ? argv[1] : "srv";
    const std::size_t n =
        argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 500000;
    const std::string outfile =
        argc > 3 ? argv[3] : "/tmp/fdipsim_example.trace";

    WorkloadSpec spec = cls == "clt"    ? clientSpec("inspect", 3)
                        : cls == "spec" ? specCpuSpec("inspect", 3)
                                        : serverSpec("inspect", 3);
    auto workload = std::make_shared<Workload>(buildWorkload(spec));
    const Trace trace = generateTrace(workload, n);

    // Serialize and reload (round-trip through the binary format).
    if (!writeTraceFile(outfile, trace.insts)) {
        std::fprintf(stderr, "cannot write %s\n", outfile.c_str());
        return 1;
    }
    std::vector<DynInst> reloaded;
    if (!readTraceFile(outfile, reloaded) ||
        reloaded.size() != trace.size()) {
        std::fprintf(stderr, "round-trip failed\n");
        return 1;
    }
    std::printf("wrote and reloaded %zu records via %s\n\n",
                reloaded.size(), outfile.c_str());

    // Static footprint.
    std::printf("-- static image --\n");
    std::printf("code footprint      %zu KB (%zu insts, %zu functions)\n",
                workload->image.footprintBytes() / 1024,
                workload->image.numInsts(),
                workload->image.functions().size());
    std::printf("static branches     %zu (%zu likely-taken)\n\n",
                workload->image.numBranches(),
                workload->image.numLikelyTakenBranches());

    // Dynamic mix.
    std::map<InstClass, std::size_t> mix;
    std::size_t taken = 0;
    std::size_t branches = 0;
    std::map<std::uint32_t, std::size_t> touched;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const StaticInst &s = trace.staticOf(i);
        ++mix[s.cls];
        touched[trace.insts[i].staticIndex]++;
        if (isBranch(s.cls)) {
            ++branches;
            if (trace.insts[i].taken)
                ++taken;
        }
    }

    std::printf("-- dynamic mix --\n");
    for (const auto &kv : mix) {
        std::printf("%-8s %10zu (%5.1f%%)\n", instClassName(kv.first),
                    kv.second,
                    100.0 * static_cast<double>(kv.second) /
                        static_cast<double>(trace.size()));
    }
    std::printf("\nbranch rate         %.1f%%, taken/branch %.1f%%\n",
                100.0 * static_cast<double>(branches) /
                    static_cast<double>(trace.size()),
                100.0 * static_cast<double>(taken) /
                    static_cast<double>(branches));
    std::printf("dynamic footprint   %zu distinct insts (%zu KB)\n",
                touched.size(), touched.size() * kInstBytes / 1024);
    std::printf("(the paper selects workloads whose footprints pressure "
                "a 32KB L1I)\n");
    std::remove(outfile.c_str());
    return 0;
}
