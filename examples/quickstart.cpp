/**
 * @file
 * Quickstart: build a synthetic server-like workload, run the paper's
 * FDP frontend against the no-FDP baseline, and print the headline
 * comparison. Start here.
 */

#include <cstdio>
#include <memory>

#include "core/core.h"
#include "prefetch/factory.h"
#include "trace/trace_gen.h"
#include "trace/workload.h"

int
main()
{
    using namespace fdip;

    // 1. Synthesize a workload with a large instruction footprint.
    const WorkloadSpec spec = serverSpec("quickstart", /*seed=*/1);
    auto workload = std::make_shared<Workload>(buildWorkload(spec));
    std::printf("workload: %zu KB of code, %zu static branches\n",
                workload->image.footprintBytes() / 1024,
                workload->image.numBranches());

    // 2. Execute it into a committed-path trace.
    const Trace trace = generateTrace(workload, 1000000);
    std::printf("trace: %zu dynamic instructions\n\n", trace.size());

    // 3. Simulate the no-FDP baseline (2-entry FTQ, no prefetching).
    CoreConfig baseline_cfg = noFdpConfig();
    Core baseline(baseline_cfg, trace, makePrefetcher("none"));
    const SimStats base = baseline.run(trace.size() / 5);

    // 4. Simulate the paper's FDP frontend (24-entry FTQ, PFC,
    //    taken-only target history).
    CoreConfig fdp_cfg = paperBaselineConfig();
    Core fdp_core(fdp_cfg, trace, makePrefetcher("none"));
    const SimStats fdp = fdp_core.run(trace.size() / 5);

    // 5. Report.
    std::printf("%-28s %10s %10s\n", "", "baseline", "FDP");
    std::printf("%-28s %10.3f %10.3f\n", "IPC", base.ipc(), fdp.ipc());
    std::printf("%-28s %10.2f %10.2f\n", "branch MPKI", base.branchMpki(),
                fdp.branchMpki());
    std::printf("%-28s %10.1f %10.1f\n", "starvation cycles / KI",
                base.starvationPerKi(), fdp.starvationPerKi());
    std::printf("%-28s %10.2f %10.2f\n", "L1I miss / KI", base.l1iMpki(),
                fdp.l1iMpki());
    std::printf("\nFDP speedup: %+.1f%%  (paper headline: +41.0%% "
                "geomean over its suite)\n",
                100.0 * (fdp.ipc() / base.ipc() - 1.0));
    return 0;
}
