/**
 * @file
 * Frontend design-space explorer: a small CLI for the questions the
 * paper's evaluation asks. Pick a workload class, FTQ depth, BTB size,
 * history scheme, PFC setting and prefetcher, and get the full metric
 * readout.
 *
 * Usage:
 *   frontend_explorer [class] [ftq] [btb] [scheme] [pfc] [prefetcher]
 *     class      srv | clt | spec          (default srv)
 *     ftq        FTQ entries               (default 24)
 *     btb        BTB entries               (default 8192)
 *     scheme     thr|ghr0|ghr1|ghr2|ghr3|ideal (default thr)
 *     pfc        on | off                  (default on)
 *     prefetcher none|nl1|fnl+mma|d-jolt|eip-27|eip-128|sn4l+dis[+btb]
 *
 * Example:
 *   frontend_explorer srv 24 2048 thr on eip-27
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/core.h"
#include "prefetch/factory.h"
#include "trace/trace_gen.h"
#include "trace/workload.h"
#include "util/log.h"

namespace
{

fdip::HistoryScheme
parseScheme(const std::string &s)
{
    using fdip::HistoryScheme;
    if (s == "thr")
        return HistoryScheme::kThr;
    if (s == "ghr0")
        return HistoryScheme::kGhr0;
    if (s == "ghr1")
        return HistoryScheme::kGhr1;
    if (s == "ghr2")
        return HistoryScheme::kGhr2;
    if (s == "ghr3")
        return HistoryScheme::kGhr3;
    if (s == "ideal")
        return HistoryScheme::kIdeal;
    fdip_fatal("unknown history scheme '%s'", s.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fdip;

    const std::string cls = argc > 1 ? argv[1] : "srv";
    const unsigned ftq = argc > 2 ? std::atoi(argv[2]) : 24;
    const unsigned btb = argc > 3 ? std::atoi(argv[3]) : 8192;
    const std::string scheme = argc > 4 ? argv[4] : "thr";
    const bool pfc = argc > 5 ? std::strcmp(argv[5], "off") != 0 : true;
    const std::string pf = argc > 6 ? argv[6] : "none";

    WorkloadSpec spec = cls == "clt"    ? clientSpec("explore", 7)
                        : cls == "spec" ? specCpuSpec("explore", 7)
                                        : serverSpec("explore", 7);
    auto workload = std::make_shared<Workload>(buildWorkload(spec));
    const Trace trace = generateTrace(workload, 800000);

    CoreConfig cfg = paperBaselineConfig();
    cfg.ftqEntries = ftq;
    cfg.bpu.btb.numEntries = btb;
    cfg.historyScheme = parseScheme(scheme);
    cfg.pfcEnabled = pfc;
    cfg.applyHistoryScheme();

    std::printf("config: class=%s ftq=%u btb=%u scheme=%s pfc=%s pf=%s\n",
                cls.c_str(), ftq, btb,
                historySchemeName(cfg.historyScheme), pfc ? "on" : "off",
                pf.c_str());

    Core core(cfg, trace, makePrefetcher(pf));
    const SimStats s = core.run(trace.size() / 5);

    std::printf("\n-- performance --\n");
    std::printf("IPC                      %.3f\n", s.ipc());
    std::printf("cycles                   %llu\n",
                static_cast<unsigned long long>(s.cycles));
    std::printf("starvation cycles / KI   %.1f\n", s.starvationPerKi());

    std::printf("\n-- branches --\n");
    std::printf("cond branches            %llu\n",
                static_cast<unsigned long long>(s.condBranches));
    std::printf("branch MPKI              %.2f\n", s.branchMpki());
    std::printf("  direction              %llu\n",
                static_cast<unsigned long long>(s.mispredictsCondDir));
    std::printf("  BTB-miss taken         %llu\n",
                static_cast<unsigned long long>(
                    s.mispredictsBtbMissTaken));
    std::printf("  wrong target           %llu\n",
                static_cast<unsigned long long>(s.mispredictsTarget));
    std::printf("  PFC misfires           %llu\n",
                static_cast<unsigned long long>(
                    s.mispredictsPfcMisfire));
    std::printf("BTB hit rate             %.1f%%\n",
                100.0 * static_cast<double>(s.btbHits) /
                    static_cast<double>(std::max<std::uint64_t>(
                        s.btbLookups, 1)));
    std::printf("PFC fires                %llu (correct %llu, wrong "
                "%llu)\n",
                static_cast<unsigned long long>(s.pfcFires),
                static_cast<unsigned long long>(s.pfcCorrect),
                static_cast<unsigned long long>(s.pfcWrong));
    std::printf("GHR fixup flushes        %llu\n",
                static_cast<unsigned long long>(s.ghrFixups));

    std::printf("\n-- instruction supply --\n");
    std::printf("L1I demand miss / KI     %.2f\n", s.l1iMpki());
    std::printf("L1I tag accesses / KI    %.1f\n", s.tagAccessesPerKi());
    std::printf("prefetches issued        %llu (redundant %llu, useful "
                "%llu)\n",
                static_cast<unsigned long long>(s.prefetchesIssued),
                static_cast<unsigned long long>(s.prefetchesRedundant),
                static_cast<unsigned long long>(s.prefetchesUseful));
    std::printf("miss exposure            fully %llu / partial %llu / "
                "covered %llu\n",
                static_cast<unsigned long long>(s.missFullyExposed),
                static_cast<unsigned long long>(s.missPartiallyExposed),
                static_cast<unsigned long long>(s.missCovered));
    std::printf("wrong-path insts         %llu\n",
                static_cast<unsigned long long>(s.wrongPathDelivered));
    return 0;
}
