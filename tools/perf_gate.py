#!/usr/bin/env python3
"""Host-throughput regression gate for the bench campaigns.

The hot-path discipline (src/util/hotpath.h, check_hotpath.py, the
steady-state allocation test) exists to protect one number: simulated
instructions per host second, which bounds how many figure campaigns
the lab can run. This gate closes the loop by measuring it.

Usage:
    perf_gate.py [BENCH_fig06a_prefetchers.json]
        [--baseline tests/data/perf_baseline.json]
        [--max-drop 0.10] [--update]

Compares hostInstrsPerSecond in the bench JSON (written by
bench_common.h's writeBenchJson) against the checked-in baseline and
fails when throughput dropped by more than the allowed fraction
(default 10%, overridable by the baseline file's maxDropFraction or
--max-drop). Also cross-checks that the benchmark still ran the same
configuration labels, so a gutted campaign cannot "pass" by doing
less work.

Because absolute throughput depends on the host, the baseline records
the environment knobs it was measured under (FDIP_SIM_INSTRS etc.);
CI re-measures under identical knobs on comparable runners. A faster
result never fails; refresh the baseline with --update when a genuine
improvement (or a hardware change) moves the reference point, and
commit the result.

Exit status: 0 pass, 1 regression/mismatch, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
DEFAULT_BENCH = Path("BENCH_fig06a_prefetchers.json")
DEFAULT_BASELINE = REPO / "tests" / "data" / "perf_baseline.json"
DEFAULT_MAX_DROP = 0.10


def load(path: Path) -> dict:
    try:
        with path.open() as f:
            return json.load(f)
    except OSError as e:
        sys.exit(f"perf_gate: cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"perf_gate: {path} is not valid JSON: {e}")


def update_baseline(bench: dict, baseline_path: Path,
                    max_drop: float) -> int:
    baseline = {
        "bench": bench["bench"],
        "hostInstrsPerSecond": bench["hostInstrsPerSecond"],
        "maxDropFraction": max_drop,
        "jobs": bench.get("jobs"),
        "labels": sorted(r["label"] for r in bench["results"]),
        "note": ("Reference host throughput for perf_gate.py. "
                 "Regenerate with: FDIP_SIM_INSTRS=50000 "
                 "FDIP_SUITE=small FDIP_JOBS=2 "
                 "bench_fig06a_prefetchers && perf_gate.py --update"),
    }
    baseline_path.parent.mkdir(parents=True, exist_ok=True)
    with baseline_path.open("w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"perf_gate: baseline updated -> {baseline_path} "
          f"({baseline['hostInstrsPerSecond']:.0f} instrs/s)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_json", nargs="?", type=Path,
                    default=DEFAULT_BENCH,
                    help="bench output (default: %(default)s)")
    ap.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                    help="checked-in reference (default: %(default)s)")
    ap.add_argument("--max-drop", type=float, default=None,
                    help="allowed fractional drop (default: the "
                         "baseline's maxDropFraction, else "
                         f"{DEFAULT_MAX_DROP})")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from this bench run")
    args = ap.parse_args()

    bench = load(args.bench_json)
    for key in ("bench", "hostInstrsPerSecond", "results"):
        if key not in bench:
            sys.exit(f"perf_gate: {args.bench_json} has no '{key}' "
                     "field; was it written by writeBenchJson?")
    schema = bench.get("schemaVersion")
    if schema is not None and schema != 2:
        sys.exit(f"perf_gate: {args.bench_json} has schemaVersion "
                 f"{schema}; this gate understands version 2 "
                 "(bench_common.h kBenchJsonSchemaVersion)")

    if args.update:
        return update_baseline(bench, args.baseline,
                               args.max_drop if args.max_drop is not None
                               else DEFAULT_MAX_DROP)

    baseline = load(args.baseline)
    max_drop = args.max_drop
    if max_drop is None:
        max_drop = baseline.get("maxDropFraction", DEFAULT_MAX_DROP)

    problems: list[str] = []

    if bench["bench"] != baseline.get("bench"):
        problems.append(
            f"bench name mismatch: ran '{bench['bench']}', baseline "
            f"is for '{baseline.get('bench')}'")

    ran = sorted(r["label"] for r in bench["results"])
    expected = sorted(baseline.get("labels", []))
    if expected and ran != expected:
        problems.append(
            f"configuration labels changed: ran {ran}, baseline "
            f"expects {expected} (a smaller campaign cannot pass the "
            "gate; refresh the baseline deliberately with --update)")

    ref = float(baseline["hostInstrsPerSecond"])
    got = float(bench["hostInstrsPerSecond"])
    floor = ref * (1.0 - max_drop)
    ratio = got / ref if ref > 0 else float("inf")
    print(f"perf_gate: {got:,.0f} instrs/s vs baseline {ref:,.0f} "
          f"({ratio:.2%}); floor {floor:,.0f} "
          f"(-{max_drop:.0%} allowed)")
    if got < floor:
        problems.append(
            f"host throughput regressed: {got:,.0f} < {floor:,.0f} "
            f"instrs/s ({ratio:.2%} of baseline, allowed drop "
            f"{max_drop:.0%})")

    if problems:
        print(f"perf_gate: FAIL ({len(problems)} problem(s))",
              file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print("perf_gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
