#!/usr/bin/env python3
"""Determinism lint: worker-path sources must be replayable.

The simulator guarantees bit-identical results for identical (config,
seed) pairs — the determinism test suite replays whole experiments and
diffs every stat. That only holds if no worker-path code consults an
ambient source of nondeterminism. This lint bans, in all of src/:

  1. libc randomness   rand()/srand()/std::random_device; all
                       randomness must flow through util/rng.h
                       (seedable, replayable).
  2. wall-clock reads  time()/clock()/clock_gettime()/gettimeofday()
                       and std::chrono::{system,steady,high_resolution}
                       _clock — simulated time is the only clock the
                       model may read.
  3. environment reads getenv() — configuration must arrive through
                       explicit config structs, not ambient state.

Coordinating-thread files that legitimately touch the host (experiment
timing for throughput reports, env-var opt-ins parsed once before the
workers fork) are allowlisted by exact path below; everything else is a
finding.

The lint runs against the repository by default; --root (plus the
allowlist parameters of collect_findings) points it at any tree with
the same src/ layout, which is how the fixture suite in
tools/lint/tests/ exercises it.

Exit status: 0 when clean, 1 with findings listed on stderr.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lintlib import (REPO, make_parser, rel, report, source_files,
                     stale_allowlist_findings, strip_comments_and_strings)

# Seedable-RNG implementation: the one place libc-style primitives and
# entropy sources may appear.
RNG_ALLOWLIST = {"src/util/rng.h"}

# Coordinating-thread wall-clock use: host-time measurement around a
# whole experiment (throughput reporting, never simulated state), plus
# the tick-phase self-profiler's single clock site (host telemetry
# only; sim_determinism_test pins that profiling on vs. off is
# architecturally bit-identical).
WALLCLOCK_ALLOWLIST = {
    "src/sim/experiment.cc",
    "src/obs/tick_profiler.cc",
}

# Env-var opt-ins read once on the coordinating thread, before any
# worker runs (observability toggles and suite sizing).
GETENV_ALLOWLIST = {
    "src/sim/campaign_store.cc",
    "src/sim/parallel.cc",
    "src/obs/obs_config.cc",
    "src/obs/heartbeat.cc",
    "src/trace/suite.cc",
}


def build_rules(rng: set[str], wallclock: set[str], getenv: set[str]
                ) -> list[tuple[re.Pattern[str], set[str], str]]:
    return [
        (re.compile(r"(?<![\w:.])s?rand\s*\("), rng,
         "libc rand()/srand() is banned; use util/rng.h"),
        (re.compile(r"random_device"), rng,
         "std::random_device is nondeterministic; use util/rng.h"),
        (re.compile(r"(?<![\w:.])time\s*\("), wallclock,
         "wall-clock time() is banned in worker-path code"),
        (re.compile(r"(?<![\w:.])clock\s*\("), wallclock,
         "wall-clock clock() is banned in worker-path code"),
        (re.compile(r"clock_gettime|gettimeofday"), wallclock,
         "wall-clock syscalls are banned in worker-path code"),
        (re.compile(r"(?:system|steady|high_resolution)_clock"),
         wallclock,
         "std::chrono host clocks are banned in worker-path code"),
        (re.compile(r"(?<![\w:.])getenv\s*\("), getenv,
         "getenv() is banned in worker-path code; plumb explicit config"),
    ]


def collect_findings(root: Path = REPO,
                     rng_allowlist: set[str] | None = None,
                     wallclock_allowlist: set[str] | None = None,
                     getenv_allowlist: set[str] | None = None) -> list[str]:
    """Runs the lint over <root>/src and returns the findings."""
    rng = RNG_ALLOWLIST if rng_allowlist is None else rng_allowlist
    wallclock = (WALLCLOCK_ALLOWLIST if wallclock_allowlist is None
                 else wallclock_allowlist)
    getenv = (GETENV_ALLOWLIST if getenv_allowlist is None
              else getenv_allowlist)
    rules = build_rules(rng, wallclock, getenv)

    findings: list[str] = []
    for path in source_files(root):
        name = rel(path, root)
        text = strip_comments_and_strings(path.read_text())
        for lineno, line in enumerate(text.splitlines(), 1):
            for pattern, allowlist, message in rules:
                if name not in allowlist and pattern.search(line):
                    findings.append(f"{name}:{lineno}: {message}")

    findings.extend(stale_allowlist_findings(root, rng, wallclock, getenv))
    return findings


def main() -> int:
    args = make_parser(__doc__).parse_args()
    return report("check_determinism",
                  collect_findings(args.root.resolve()))


if __name__ == "__main__":
    sys.exit(main())
