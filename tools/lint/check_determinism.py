#!/usr/bin/env python3
"""Determinism lint: worker-path sources must be replayable.

The simulator guarantees bit-identical results for identical (config,
seed) pairs — the determinism test suite replays whole experiments and
diffs every stat. That only holds if no worker-path code consults an
ambient source of nondeterminism. This lint bans, in all of src/:

  1. libc randomness   rand()/srand()/std::random_device; all
                       randomness must flow through util/rng.h
                       (seedable, replayable).
  2. wall-clock reads  time()/clock()/clock_gettime()/gettimeofday()
                       and std::chrono::{system,steady,high_resolution}
                       _clock — simulated time is the only clock the
                       model may read.
  3. environment reads getenv() — configuration must arrive through
                       explicit config structs, not ambient state.

Coordinating-thread files that legitimately touch the host (experiment
timing for throughput reports, env-var opt-ins parsed once before the
workers fork) are allowlisted by exact path below; everything else is a
finding.

Exit status: 0 when clean, 1 with findings listed on stderr.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from check_sources import REPO, SRC, rel, strip_comments_and_strings

# Seedable-RNG implementation: the one place libc-style primitives and
# entropy sources may appear.
RNG_ALLOWLIST = {"src/util/rng.h"}

# Coordinating-thread wall-clock use: host-time measurement around a
# whole experiment (throughput reporting, never simulated state).
WALLCLOCK_ALLOWLIST = {"src/sim/experiment.cc"}

# Env-var opt-ins read once on the coordinating thread, before any
# worker runs (observability toggles and suite sizing).
GETENV_ALLOWLIST = {
    "src/sim/parallel.cc",
    "src/obs/obs_config.cc",
    "src/obs/heartbeat.cc",
    "src/trace/suite.cc",
}

RULES: list[tuple[re.Pattern[str], set[str], str]] = [
    (re.compile(r"(?<![\w:.])s?rand\s*\("), RNG_ALLOWLIST,
     "libc rand()/srand() is banned; use util/rng.h"),
    (re.compile(r"random_device"), RNG_ALLOWLIST,
     "std::random_device is nondeterministic; use util/rng.h"),
    (re.compile(r"(?<![\w:.])time\s*\("), WALLCLOCK_ALLOWLIST,
     "wall-clock time() is banned in worker-path code"),
    (re.compile(r"(?<![\w:.])clock\s*\("), WALLCLOCK_ALLOWLIST,
     "wall-clock clock() is banned in worker-path code"),
    (re.compile(r"clock_gettime|gettimeofday"), WALLCLOCK_ALLOWLIST,
     "wall-clock syscalls are banned in worker-path code"),
    (re.compile(r"(?:system|steady|high_resolution)_clock"),
     WALLCLOCK_ALLOWLIST,
     "std::chrono host clocks are banned in worker-path code"),
    (re.compile(r"(?<![\w:.])getenv\s*\("), GETENV_ALLOWLIST,
     "getenv() is banned in worker-path code; plumb explicit config"),
]


def main() -> int:
    findings: list[str] = []
    files = sorted(SRC.rglob("*.h")) + sorted(SRC.rglob("*.cc"))
    for path in files:
        name = rel(path)
        text = strip_comments_and_strings(path.read_text())
        for lineno, line in enumerate(text.splitlines(), 1):
            for pattern, allowlist, message in RULES:
                if name not in allowlist and pattern.search(line):
                    findings.append(f"{name}:{lineno}: {message}")

    # A stale allowlist silently widens the escape hatch: every listed
    # file must still exist.
    for listed in sorted(RNG_ALLOWLIST | WALLCLOCK_ALLOWLIST |
                         GETENV_ALLOWLIST):
        if not (REPO / listed).is_file():
            findings.append(f"{listed}: allowlisted file does not exist")

    if findings:
        print(f"check_determinism: {len(findings)} finding(s)",
              file=sys.stderr)
        for f in findings:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("check_determinism: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
