"""Architectural-state audit over the program index.

Every audited class — one that declares a StorageSchema or carries at
least one FDIP_STATE_* annotation (src/util/state.h) — is reduced to a
member census: each data member's classification (arch / micro /
host), the schema fields the arch members claim, and the reset /
construction coverage of every deterministic member. Three rule
families run over that census plus the hotgraph call graph:

  ghost state        every member classified; every FDIP_STATE_ARCH
                     field claim matches a declared schema field;
                     every schema field is backed by a member; arch
                     state never lives in a schema-less class
  reset coverage     every arch/micro scalar member is initialized by
                     an NSDMI, the constructor (init-list or body), or
                     the class's reset() closure (call-graph BFS with
                     hotgraph's conservative resolution)
  host/arch taint    FDIP_STATE_HOST members are never touched by a
                     function on the architectural hot-path closure
                     outside obs/trace-ranked modules

The census is emitted as a `state-audit-v1` JSON report and
cross-checked against the budget-certificate golden
(tests/data/budget_certificate.golden.json), which
tests/check_certify_test.cc already ties to storageBits(): source
annotations, schema declarations, certificate fields, and the
modeled bit totals must all agree.

The frontends are hotgraph's (textual by default, libclang in CI);
the census itself is always extracted textually because the
annotations compile away — libclang never sees them. Offsets are
shared with the raw file via the length-preserving stripper.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from .model import (AllowEntry, Finding, FunctionInfo, ProgramIndex,
                    module_of)
from .analysis import Analysis
from .textual import (Token, match_brace_span, line_of, tokenize,
                      _type_head)

# --------------------------------------------------------------------
# Rules.
# --------------------------------------------------------------------

RULE_UNCLASSIFIED = "state-unclassified"
RULE_GHOST = "state-ghost"
RULE_ORPHAN = "state-schema-orphan"
RULE_UNRESET = "state-unreset"
RULE_HOST_TAINT = "state-host-taint"
RULE_CENSUS = "state-census"
RULE_STALE_ALLOW = "state-stale-allowlist"

STATE_MACROS = ("FDIP_STATE_ARCH", "FDIP_STATE_MICRO",
                "FDIP_STATE_HOST")

#: Modules whose functions may touch FDIP_STATE_HOST members even on
#: the hot closure: observability is their whole job, and nothing
#: they produce feeds back into architectural state (the determinism
#: suite pins that).
HOST_EXEMPT_MODULES = frozenset({"obs", "trace"})

#: Schema-declaring method names a class may use.
SCHEMA_METHODS = ("storageSchema", "storageSchemaFor")

#: Free schema functions that account for a specific class's members
#: (the decode queue's schema lives beside the queue, not in it).
FREE_SCHEMA_OWNERS: dict[str, str] = {
    "decodeQueueStorageSchema": "fdip::Backend",
}

#: Scalar type heads that are indeterminate without an explicit
#: initializer (the reset rule's "must cover" set). Class types are
#: value-initialized by their own constructors — their internals are
#: audited in their own class — so they are exempt here.
_SCALAR_RE = re.compile(
    r"^(bool|char|short|int|long|unsigned|signed|float|double"
    r"|u?int(8|16|32|64|ptr)?_t|size_t|ptrdiff_t)$")

#: Repo value typedefs that alias integers (util/types.h).
SCALAR_ALIASES = frozenset({"Addr", "Cycle", "InstSeq", "Tick"})

_QUALS = frozenset({"const", "constexpr", "mutable", "volatile",
                    "typename", "inline"})

#: Statements that are never member declarations.
_NON_MEMBER = frozenset({"using", "typedef", "friend", "static",
                         "public", "private", "protected", "template",
                         "operator", "enum", "class", "struct",
                         "union"})

_ADD_RE = re.compile(r'\.\s*add\s*\(\s*"([^"]*)"\s*(\+?)')

#: member [.|->] clear/fill/assign/reset/resize(  — bulk re-init.
_REINIT_METHODS = r"(clear|fill|assign|reset|resize|seed)"


# --------------------------------------------------------------------
# Allowlist. Every entry needs a written justification here and in
# docs/ANALYSIS.md section 9; an entry that suppresses nothing is
# itself a staleness finding.
# --------------------------------------------------------------------

STATE_ALLOWLIST: list[AllowEntry] = [
    # The tick-phase self-profiler is host telemetry by design: the
    # tick loop stamps phase begin/end markers on it, and nothing it
    # accumulates is ever read back into architectural state
    # (sim_determinism_test pins bit-identical stats with the
    # profiler on and off). The member is classified HOST so any NEW
    # reader on the hot path is a finding; these two entries excuse
    # exactly the designed begin/end stamping sites.
    AllowEntry(RULE_HOST_TAINT, "src/core/core.cc",
               "fdip::Core::profiler_",
               "host phase stamps in the tick loop; write-only, "
               "never read back (determinism suite pins it)"),
    AllowEntry(RULE_HOST_TAINT, "src/core/frontend.cc",
               "fdip::Frontend::profiler_",
               "host phase stamps around fetch/predict; write-only, "
               "never read back (determinism suite pins it)"),
]


# --------------------------------------------------------------------
# Census records.
# --------------------------------------------------------------------


@dataclass
class MemberInfo:
    """One data member of an audited class."""

    name: str
    line: int
    kind: str | None = None         #: 'arch' | 'micro' | 'host' | None
    fields: list[str] = field(default_factory=list)  #: arch claims
    type_head: str = ""             #: CamelCase class head, if any
    needs_init: bool = False        #: scalar/pointer/array member
    has_nsdmi: bool = False
    is_ref: bool = False
    covered_by: str | None = None   #: how the reset rule was satisfied


@dataclass
class SchemaField:
    name: str                       #: literal, or prefix when dynamic
    dynamic: bool = False           #: name built at runtime

    def matches(self, claim: str) -> bool:
        """True when the annotation argument @p claim covers this
        field. A claim ending in `...` is a prefix wildcard."""
        if claim.endswith("..."):
            prefix = claim[:-3]
            return (self.name.startswith(prefix)
                    or prefix.startswith(self.name))
        return not self.dynamic and self.name == claim


@dataclass
class AuditClass:
    """One audited class and its member census."""

    qname: str
    name: str
    file: str
    line: int
    body_start: int
    body_end: int
    members: dict[str, MemberInfo] = field(default_factory=dict)
    schema: list[SchemaField] | None = None  #: None = schema-less
    schema_fn: str | None = None    #: qname of the declaring function
    certificate_structure: str | None = None
    certificate_bits: int | None = None


# --------------------------------------------------------------------
# Class-body member scanning (textual, annotation-aware).
# --------------------------------------------------------------------

_CLASS_RE = re.compile(r"\b(class|struct)\s+([A-Za-z_]\w*)")


def _find_class_bodies(text: str) -> list[tuple[str, int, int, int]]:
    """(name, decl_pos, body_start, body_end) for every class/struct
    *definition* in stripped @p text, including nested ones."""
    out = []
    for m in _CLASS_RE.finditer(text):
        # Walk past the optional final/base clause to '{'; bail at
        # ';' (forward declaration), '(' / '=' (expression), or a
        # bare '>' / ',' (a `template <class T, ...>` parameter).
        i = m.end()
        depth = 0
        while i < len(text):
            c = text[i]
            if c == "<":
                depth += 1
            elif c == ">" and depth > 0:
                depth -= 1
            elif depth == 0 and c == "{":
                break
            elif depth == 0 and c in ";()=>,":
                i = -1
                break
            i += 1
        if i < 0 or i >= len(text):
            continue
        end = match_brace_span(text, i)
        if end is None:
            continue
        out.append((m.group(2), m.start(), i, end))
    return out


def _split_statements(toks: list[Token],
                      text: str) -> list[tuple[list[Token], bool]]:
    """Top-level statements of a class body as (tokens, had_block).
    Brace blocks (method bodies, nested types, NSDMI braces) are
    consumed but not included in the token list."""
    stmts: list[tuple[list[Token], bool]] = []
    cur: list[Token] = []
    had_block = False
    i = 0
    while i < len(toks):
        t = toks[i]
        v = t.value
        if v == ";":
            if cur:
                stmts.append((cur, had_block))
            cur, had_block = [], False
            i += 1
            continue
        if v == "{":
            end = match_brace_span(text, t.pos)
            if end is None:
                break
            had_block = True
            while i < len(toks) and toks[i].pos < end:
                i += 1
            # Method definitions and nested types end at '}' with no
            # ';'; NSDMI braces continue to the ';'. Close now unless
            # the next token keeps the statement going.
            if i < len(toks) and toks[i].value in (";", ","):
                continue
            values = [x.value for x in cur]
            if "(" in values or (values and values[0] in
                                 ("class", "struct", "enum", "union")):
                cur, had_block = [], False
            continue
        if v == ":" and cur and cur[-1].value in ("public", "private",
                                                  "protected"):
            cur, had_block = [], False
            i += 1
            continue
        cur.append(t)
        i += 1
    if cur:
        stmts.append((cur, had_block))
    return stmts


def _split_args(toks: list[Token]) -> list[str]:
    """Macro argument list tokens -> joined argument strings."""
    args: list[str] = []
    cur: list[str] = []
    depth = 0
    for t in toks:
        if t.value in "<([{":
            depth += 1
        elif t.value in ">)]}":
            depth -= 1
        if t.value == "," and depth == 0:
            args.append("".join(cur))
            cur = []
        else:
            cur.append(t.value)
    if cur:
        args.append("".join(cur))
    return [a for a in args if a]


def _parse_member(stmt: list[Token], had_block: bool,
                  text: str) -> MemberInfo | None:
    """MemberInfo for one class-body statement, or None when the
    statement is not a data member declaration."""
    kind: str | None = None
    fields: list[str] = []
    toks = list(stmt)

    if toks and toks[0].value in STATE_MACROS:
        macro = toks.pop(0).value
        kind = macro.rsplit("_", 1)[-1].lower()
        if toks and toks[0].value == "(":
            depth = 0
            j = 0
            for j, t in enumerate(toks):
                if t.value == "(":
                    depth += 1
                elif t.value == ")":
                    depth -= 1
                    if depth == 0:
                        break
            fields = _split_args(toks[1:j])
            toks = toks[j + 1:]

    values = [t.value for t in toks]
    if not toks or "(" in values:
        return None
    if values[0] in _NON_MEMBER or "static" in values:
        return None

    # Cut the initializer (`= ...`) / bit-field (`: n`) tail.
    cut = len(values)
    has_nsdmi = had_block
    angle = 0
    for k, v in enumerate(values):
        if v == "<":
            angle += 1
        elif v == ">":
            angle = max(0, angle - 1)
        elif angle == 0 and v in ("=", ":"):
            has_nsdmi = has_nsdmi or v == "="
            cut = k
            break
    decl = toks[:cut]
    idents = [t for t in decl if t.is_ident]
    if len(idents) < 2:
        return None
    # Declared name: last identifier outside array brackets
    # (`ring_[kRingWords]` declares ring_, not kRingWords).
    name_tok = None
    bracket = 0
    for t in reversed(decl):
        if t.value == "]":
            bracket += 1
        elif t.value == "[":
            bracket -= 1
        elif t.is_ident and bracket == 0:
            name_tok = t
            break
    if name_tok is None:
        return None

    decl_values = [t.value for t in decl]
    is_ref = "&" in decl_values or "&&" in decl_values
    is_ptr = "*" in decl_values
    is_carray = "[" in decl_values[decl_values.index(name_tok.value):]

    # Scalar heuristic for the reset rule: the first type identifier
    # run after qualifiers.
    head = ""
    for t in decl:
        if t is name_tok:
            break
        if t.is_ident and t.value not in _QUALS \
                and t.value != "std":
            head = t.value
            break
    is_scalar = bool(_SCALAR_RE.match(head)) or head in SCALAR_ALIASES
    needs_init = ((is_scalar or is_ptr or is_carray
                   or head == "array") and not is_ref)

    type_head, _dyn = _type_head(decl, name_tok.value)
    return MemberInfo(name=name_tok.value,
                      line=line_of(text, name_tok.pos),
                      kind=kind, fields=fields, type_head=type_head,
                      needs_init=needs_init, has_nsdmi=has_nsdmi,
                      is_ref=is_ref)


# --------------------------------------------------------------------
# The audit.
# --------------------------------------------------------------------


class StateAudit:
    """Runs the three statespace rule families over a ProgramIndex.

    @p root is the tree the index was built from (raw file access for
    schema field strings, which the stripper blanks); @p certificate
    is the parsed budget-certificate golden, or None to skip the
    census/bits cross-check.
    """

    def __init__(self, prog: ProgramIndex, root: Path,
                 allowlist: list[AllowEntry] | None = None,
                 certificate: dict | None = None,
                 cert_classes: dict[str, str] | None = None):
        self.prog = prog
        self.root = Path(root)
        self.allowlist = (STATE_ALLOWLIST if allowlist is None
                          else allowlist)
        self.certificate = certificate
        self.cert_classes = (CLASS_TO_CERT if cert_classes is None
                             else cert_classes)
        self.analysis = Analysis(prog, allowlist=[],
                                 include_exceptions=[])
        self.findings: list[Finding] = []
        self._used_allow: set[int] = set()
        self.classes: dict[str, AuditClass] = {}
        self.classes_by_name: dict[str, AuditClass] = {}

    # ---- census construction ----------------------------------------

    def _class_qname(self, file: str, name: str, decl_pos: int) -> str:
        fi = self.prog.files.get(file)
        if fi is not None:
            line = line_of(fi.text, decl_pos)
            for c in fi.classes:
                if c.name == name and abs(c.line - line) <= 1:
                    return c.qname
        return name

    def _collect_classes(self) -> None:
        for path, fi in sorted(self.prog.files.items()):
            if not path.startswith("src/"):
                continue
            bodies = _find_class_bodies(fi.text)
            nested = [(s, e) for _, _, s, e in bodies]
            for name, decl_pos, start, end in bodies:
                toks = [t for t in tokenize(fi.text[start + 1:end - 1])]
                # Re-anchor token offsets to the file.
                for t in toks:
                    t.pos += start + 1
                # Drop tokens inside nested class bodies.
                toks = [t for t in toks
                        if not any(s < t.pos < e for s, e in nested
                                   if (s, e) != (start, end)
                                   and start < s and e < end)]
                members: dict[str, MemberInfo] = {}
                for stmt, had_block in _split_statements(toks, fi.text):
                    mi = _parse_member(stmt, had_block, fi.text)
                    if mi is not None:
                        members[mi.name] = mi
                qname = self._class_qname(path, name, decl_pos)
                ac = AuditClass(qname=qname, name=name, file=path,
                                line=line_of(fi.text, decl_pos),
                                body_start=start, body_end=end,
                                members=members)
                self._attach_schema(ac)
                annotated = any(m.kind for m in members.values())
                if ac.schema is not None or annotated:
                    self.classes[qname] = ac

    def _raw_text(self, path: str) -> str:
        try:
            return (self.root / path).read_text(errors="replace")
        except OSError:
            return ""

    def _schema_fields_of(self, fn: FunctionInfo) -> list[SchemaField]:
        raw = self._raw_text(fn.file)
        body = raw[fn.body_start:fn.body_end]
        fields: list[SchemaField] = []
        seen: set[tuple[str, bool]] = set()
        for m in _ADD_RE.finditer(body):
            name, dynamic = m.group(1), m.group(2) == "+"
            if (name, dynamic) not in seen:
                seen.add((name, dynamic))
                fields.append(SchemaField(name, dynamic))
        return fields

    def _attach_schema(self, ac: AuditClass) -> None:
        # Union over every declaring function: a thin storageSchema()
        # wrapper delegating to storageSchemaFor(cfg) contributes no
        # fields of its own.
        fields: list[SchemaField] = []
        seen: set[str] = set()
        for fn in self.analysis.funcs:
            own = (fn.class_qname == ac.qname
                   and fn.name in SCHEMA_METHODS)
            free = (fn.class_qname is None
                    and FREE_SCHEMA_OWNERS.get(fn.name) == ac.qname)
            if not (own or free) or fn.body_end <= fn.body_start:
                continue
            if ac.schema is None:
                ac.schema = fields
            got = self._schema_fields_of(fn)
            for f in got:
                if f.name not in seen:
                    seen.add(f.name)
                    fields.append(f)
            if got and ac.schema_fn is None:
                ac.schema_fn = fn.qname

    # ---- rule 1: ghost state / schema completeness --------------------

    def _check_ghost(self, ac: AuditClass) -> None:
        for m in ac.members.values():
            if m.kind is None:
                self._finding(Finding(
                    RULE_UNCLASSIFIED, ac.file, m.line,
                    f"{ac.qname}::{m.name}",
                    f"{ac.qname}::{m.name} carries no FDIP_STATE_* "
                    "classification (audited class: "
                    + ("declares a StorageSchema"
                       if ac.schema is not None
                       else "has annotated members") + ")"))
                continue
            if m.kind != "arch":
                continue
            if m.fields == ["sub"]:
                sub = self.classes_by_name.get(m.type_head)
                if sub is None:
                    self._finding(Finding(
                        RULE_GHOST, ac.file, m.line,
                        f"{ac.qname}::{m.name}",
                        f"{ac.qname}::{m.name} delegates its storage "
                        f"accounting to type {m.type_head or '?'}, "
                        "which is not an audited class (no schema, no "
                        "annotations)"))
                continue
            if ac.schema is None:
                self._finding(Finding(
                    RULE_GHOST, ac.file, m.line,
                    f"{ac.qname}::{m.name}",
                    f"{ac.qname}::{m.name} is FDIP_STATE_ARCH but "
                    f"{ac.qname} declares no StorageSchema: the state "
                    "is invisible to the budget accounting"))
                continue
            if not m.fields:
                self._finding(Finding(
                    RULE_GHOST, ac.file, m.line,
                    f"{ac.qname}::{m.name}",
                    f"{ac.qname}::{m.name} is FDIP_STATE_ARCH but "
                    "names no schema fields"))
                continue
            for claim in m.fields:
                if not any(f.matches(claim) for f in ac.schema):
                    self._finding(Finding(
                        RULE_GHOST, ac.file, m.line,
                        f"{ac.qname}::{m.name}",
                        f"{ac.qname}::{m.name} claims schema field "
                        f"'{claim}' but {ac.qname}'s StorageSchema "
                        f"({ac.schema_fn}) declares no such field: "
                        "ghost state outside the accounted budget"))
        if ac.schema is not None:
            claims = [c for m in ac.members.values()
                      if m.kind == "arch" for c in m.fields
                      if c != "sub"]
            for f in ac.schema:
                if not any(f.matches(c) for c in claims):
                    self._finding(Finding(
                        RULE_ORPHAN, ac.file, ac.line, ac.qname,
                        f"schema field '{f.name}'"
                        + (" (dynamic)" if f.dynamic else "")
                        + f" of {ac.qname} ({ac.schema_fn}) is not "
                        "backed by any FDIP_STATE_ARCH member: "
                        "orphaned accounting"))

    # ---- rule 2: reset / construction coverage ------------------------

    def _ctor_initlist_names(self, fn: FunctionInfo) -> set[str]:
        """Members named in @p fn's constructor init list: scan
        forward from the definition line to the parameter list, skip
        it, then collect `name(..)` / `name{..}` initializers between
        the ':' and the body brace."""
        fi = self.prog.files.get(fn.file)
        if fi is None or fn.body_start <= 0:
            return set()
        text = fi.text
        # Offset of the definition line (fn.line is 1-based).
        pos = 0
        for _ in range(fn.line - 1):
            nl = text.find("\n", pos)
            if nl < 0:
                return set()
            pos = nl + 1
        # First '(' at/after the name opens the parameter list.
        popen = text.find("(", pos, fn.body_start)
        if popen < 0:
            return set()
        depth = 0
        i = popen
        while i < fn.body_start:
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        seg = text[i + 1:fn.body_start]
        colon = -1
        for k, c in enumerate(seg):
            if c == ":" and not (seg[k - 1:k] == ":"
                                 or seg[k + 1:k + 2] == ":"):
                colon = k
                break
        if colon < 0:
            return set()
        names: set[str] = set()
        for m in re.finditer(r"([A-Za-z_]\w*)\s*[({]", seg[colon:]):
            names.add(m.group(1))
        return names

    def _closure_from(self, seeds: list[FunctionInfo],
                      limit: int = 200) -> list[FunctionInfo]:
        """Conservative call-graph closure (hotgraph resolution)."""
        visited: dict[tuple[str, int], FunctionInfo] = {}
        queue = list(seeds)
        while queue and len(visited) < limit:
            fn = queue.pop()
            key = (fn.file, fn.line)
            if key in visited:
                continue
            visited[key] = fn
            for call in self.analysis._calls_by_file.get(fn.file, []):
                if call.caller != fn.qname:
                    continue
                if not fn.body_start <= call.pos < fn.body_end:
                    continue
                res = self.analysis.resolve(call, fn)
                queue.extend(res.targets)
        return list(visited.values())

    def _assigned_members(self, ac: AuditClass,
                          fns: list[FunctionInfo]) -> set[str]:
        """Member names of @p ac assigned/re-initialized in the
        bodies of @p fns (own-class methods only)."""
        out: set[str] = set()
        for fn in fns:
            if fn.class_qname != ac.qname:
                continue
            fi = self.prog.files.get(fn.file)
            if fi is None:
                continue
            body = fi.text[fn.body_start:fn.body_end]
            for name, m in ac.members.items():
                if name in out:
                    continue
                if re.search(r"\b%s\b\s*(=(?!=)|\.\s*%s\s*\()"
                             % (re.escape(name), _REINIT_METHODS),
                             body):
                    out.add(name)
                elif re.search(r"\b(fill|memset|iota)\s*\([^;)]*\b%s\b"
                               % re.escape(name), body):
                    out.add(name)
        return out

    def _check_reset(self, ac: AuditClass) -> None:
        targets = [m for m in ac.members.values()
                   if m.kind in ("arch", "micro") and m.needs_init
                   and not m.has_nsdmi and not m.is_ref]
        for m in targets:
            m.covered_by = None
        if not targets:
            return
        ctors = [f for f in self.analysis.funcs
                 if f.class_qname == ac.qname and f.name == ac.name]
        resets = [f for f in self.analysis.funcs
                  if f.class_qname == ac.qname and f.name == "reset"]
        init_names: set[str] = set()
        for c in ctors:
            init_names |= self._ctor_initlist_names(c)
        closure = self._closure_from(ctors + resets)
        assigned = self._assigned_members(ac, closure)
        for m in targets:
            if m.name in init_names:
                m.covered_by = "ctor-init-list"
            elif m.name in assigned:
                m.covered_by = "ctor/reset closure"
            else:
                self._finding(Finding(
                    RULE_UNRESET, ac.file, m.line,
                    f"{ac.qname}::{m.name}",
                    f"{ac.qname}::{m.name} is FDIP_STATE_"
                    f"{m.kind.upper()} but has no NSDMI, no "
                    "constructor init-list entry, and no assignment "
                    "in the constructor/reset() closure: stale state "
                    "across runs"))

    # ---- rule 3: host/arch taint separation ---------------------------

    def _check_host_taint(self) -> None:
        host: list[tuple[AuditClass, MemberInfo]] = []
        for ac in self.classes.values():
            for m in ac.members.values():
                if m.kind == "host":
                    host.append((ac, m))
        if not host:
            return
        # Hot contexts: every function in the hot closure, plus every
        # FDIP_HOT_REGION span (the closure walk only enqueues the
        # region's *callees*, not the enclosing cold function whose
        # text the span lives in).
        contexts: list[tuple[str, int, int, str, str | None]] = [
            (fn.file, fn.body_start, fn.body_end, fn.qname,
             fn.class_qname)
            for fn in self.analysis.reachable_functions]
        for region in self.prog.all_regions():
            ctx = self.analysis._enclosing_function(region.file,
                                                    region.start)
            contexts.append(
                (region.file, region.start, region.end,
                 f"hot region '{region.name}'"
                 + (f" in {ctx.qname}" if ctx else ""),
                 ctx.class_qname if ctx else None))
        for file, start, end, label, owner in contexts:
            mod = module_of(file)
            if mod in HOST_EXEMPT_MODULES:
                continue
            fi = self.prog.files.get(file)
            if fi is None:
                continue
            body = fi.text[start:end]
            for ac, m in host:
                pat = (r"\b%s\b" % re.escape(m.name)
                       if owner == ac.qname
                       else r"(\.|->)\s*%s\b" % re.escape(m.name))
                mm = re.search(pat, body)
                if mm is None:
                    continue
                self._finding(Finding(
                    RULE_HOST_TAINT, file,
                    line_of(fi.text, start + mm.start()),
                    f"{ac.qname}::{m.name}",
                    f"{label} is on the architectural hot-path "
                    f"closure (module '{mod}') but touches "
                    f"FDIP_STATE_HOST member {ac.qname}::{m.name}: "
                    "host telemetry must stay out of architectural "
                    "code (or move the access into obs/trace)"))

    # ---- census / certificate cross-check -----------------------------

    def _check_certificate(self) -> None:
        if not self.certificate:
            return
        configs = {c["name"]: c
                   for c in self.certificate.get("configs", [])}
        base = configs.get("paper-baseline")
        if base is None:
            return
        structures = {s["name"]: s for s in base["structures"]}
        for qname, struct_name in self.cert_classes.items():
            ac = self.classes.get(qname)
            st = structures.get(struct_name)
            if ac is None or ac.schema is None or st is None:
                continue
            ac.certificate_structure = struct_name
            ac.certificate_bits = st["bits"]
            for f in st["fields"]:
                cert_field = f["field"]
                if not any(sf.name == cert_field
                           or (sf.dynamic
                               and cert_field.startswith(sf.name))
                           for sf in ac.schema):
                    self._finding(Finding(
                        RULE_CENSUS, ac.file, ac.line, qname,
                        f"certificate structure '{struct_name}' "
                        f"charges field '{cert_field}' but the parsed "
                        f"schema declaration of {qname} "
                        f"({ac.schema_fn}) has no such field: census "
                        "and certificate disagree"))

    # ---- staleness / plumbing -----------------------------------------

    def _finding(self, finding: Finding) -> None:
        for i, a in enumerate(self.allowlist):
            if (a.rule == finding.rule and a.file == finding.file
                    and a.symbol == finding.symbol):
                self._used_allow.add(i)
                return
        self.findings.append(finding)

    def _check_stale_allowlist(self) -> None:
        for i, a in enumerate(self.allowlist):
            if i not in self._used_allow:
                self.findings.append(Finding(
                    RULE_STALE_ALLOW, a.file, 0, a.symbol,
                    f"allowlist entry ({a.rule}, {a.symbol}) "
                    "suppressed nothing: remove it (reason given "
                    f"was: {a.why})"))

    # ---- entry point --------------------------------------------------

    def run(self) -> list[Finding]:
        self.analysis.run()     # hot closure; its findings are
        # check_hotgraph's business, not ours
        self._collect_classes()
        self.classes_by_name = {ac.name: ac
                                for ac in self.classes.values()}
        for ac in self.classes.values():
            self._check_ghost(ac)
            self._check_reset(ac)
        self._check_host_taint()
        self._check_certificate()
        self._check_stale_allowlist()
        self.findings.sort(key=lambda f: (f.file, f.line, f.rule,
                                          f.symbol))
        return self.findings

    # ---- reports ------------------------------------------------------

    def census(self) -> dict:
        """Deterministic per-class member census (the golden-diffed
        state-space inventory)."""
        out: dict = {}
        for qname in sorted(self.classes):
            ac = self.classes[qname]
            out[qname] = {
                "file": ac.file,
                "schema": ([{"field": f.name, "dynamic": f.dynamic}
                            for f in ac.schema]
                           if ac.schema is not None else None),
                "schemaFn": ac.schema_fn,
                "certificateStructure": ac.certificate_structure,
                "certificateBits": ac.certificate_bits,
                "members": {
                    m.name: {
                        "kind": m.kind,
                        **({"fields": m.fields}
                           if m.kind == "arch" else {}),
                    }
                    for m in sorted(ac.members.values(),
                                    key=lambda m: m.name)
                },
            }
        return out

    def to_json(self) -> dict:
        census = self.census()
        kinds = {"arch": 0, "micro": 0, "host": 0, None: 0}
        for ac in self.classes.values():
            for m in ac.members.values():
                kinds[m.kind] = kinds.get(m.kind, 0) + 1
        return {
            "schema": "state-audit-v1",
            "backend": self.prog.backend,
            "auditedClasses": len(self.classes),
            "members": sum(len(ac.members)
                           for ac in self.classes.values()),
            "membersByKind": {
                "arch": kinds["arch"], "micro": kinds["micro"],
                "host": kinds["host"],
                "unclassified": kinds[None]},
            "findings": len(self.findings),
            "findingList": [
                {"rule": f.rule, "file": f.file, "line": f.line,
                 "symbol": f.symbol, "message": f.message}
                for f in self.findings],
            "census": census,
        }


#: Audited class -> budget-certificate structure (paper-baseline
#: config). check_certify_test.cc ties certificate bits to
#: storageBits(); this map ties the source schema declarations (and
#: through them the FDIP_STATE_ARCH census) to the certificate, so
#: census <-> certificate <-> storageBits() is one closed chain.
CLASS_TO_CERT: dict[str, str] = {
    "fdip::Btb": "BTB",
    "fdip::Tage": "TAGE",
    "fdip::Ittage": "ITTAGE",
    "fdip::BranchHistory": "history",
    "fdip::Ras": "RAS",
    "fdip::Ftq": "FTQ(arch)",
    "fdip::Cache": "L1I",
    "fdip::Backend": "decode queue",
}
