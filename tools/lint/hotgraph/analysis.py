"""Closure analysis over the hot-path call graph.

Consumes the neutral ProgramIndex a frontend produced and enforces
four properties:

  1. every function reachable from a FDIP_HOT_PATH root (or a
     FDIP_HOT_REGION span) is itself annotated FDIP_HOT_PATH,
  2. no function in the closure contains a banned operation (the
     exact BAN_RULES check_hotpath.py applies to annotated bodies,
     now applied through callees),
  3. no call in the closure can dispatch virtually unless the
     receiver's static type or the method is `final` (or the site is
     an allowlisted designed dispatch point),
  4. the include graph respects the module layering DAG
     (util -> check -> obs/trace -> bpu/cache -> prefetch -> core ->
     sim -> harness), with justified exceptions carried per edge.

Resolution is deliberately conservative: a call the frontend cannot
bind to a definition in the index produces no edge (std:: calls,
macro invocations, calls through locals the textual frontend cannot
type). [[noreturn]] callees are excluded from the closure — they are
the cold failure path, executed at most once per process, and they
are *supposed* to format strings and throw.
"""

from __future__ import annotations

import re
import sys
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from .model import (ALLOWLIST, INCLUDE_EXCEPTIONS, MODULE_RANK,
                    RULE_BANNED_OP, RULE_LAYERING, RULE_STALE_ALLOW,
                    RULE_STRUCTURE, RULE_UNANNOTATED, RULE_VIRTUAL,
                    AllowEntry, CallSite, ClassInfo, Finding,
                    FunctionInfo, IncludeException, ProgramIndex,
                    module_of)

# The banned-operation rules are check_hotpath.py's, imported so the
# two enforcement layers can never drift apart.
_LINT_DIR = str(Path(__file__).resolve().parents[1])
if _LINT_DIR not in sys.path:
    sys.path.insert(0, _LINT_DIR)
from check_hotpath import BAN_RULES  # noqa: E402

#: Short allowlist keys for BAN_RULES, index-aligned. A banned-op
#: finding's symbol is "<function qname>/<key>" so an exception names
#: both the function and the specific ban it excuses.
BAN_KEYS = ("new", "make-smart", "container-grow", "string",
            "std-function", "throw", "io", "lock")
assert len(BAN_KEYS) == len(BAN_RULES), \
    "BAN_KEYS must stay index-aligned with check_hotpath.BAN_RULES"

#: Modules at or above this rank are the harness (tools, bench,
#: tests, examples): they sit at the top of the DAG and may include
#: anything, including each other.
HARNESS_RANK = MODULE_RANK["tools"]

#: Line-level pragma that exempts the next line from closure rules.
#: Kept deliberately absent: exceptions go in model.ALLOWLIST with a
#: written justification, not in the source margin.


@dataclass
class Resolution:
    """Targets of one call site plus the dispatch facts."""

    targets: list[FunctionInfo] = field(default_factory=list)
    #: receiver static class when the call is a method call
    receiver_class: ClassInfo | None = None
    #: the site may dispatch virtually (receiver held by ptr/ref, the
    #: method is virtual, and neither the class nor the method is final)
    devirt_hole: bool = False
    #: qname the virtual finding reports (base-most is the static type)
    virtual_symbol: str = ""


class Analysis:
    """One run of the closure analysis over a ProgramIndex."""

    def __init__(self, prog: ProgramIndex,
                 allowlist: list[AllowEntry] | None = None,
                 include_exceptions: list[IncludeException] | None = None):
        self.prog = prog
        self.allowlist = ALLOWLIST if allowlist is None else allowlist
        self.include_exceptions = (INCLUDE_EXCEPTIONS
                                   if include_exceptions is None
                                   else include_exceptions)
        self.findings: list[Finding] = []
        self._used_allow: set[int] = set()      # indices into allowlist
        self._used_inc_exc: set[int] = set()
        #: hot-closure members discovered by run(), for downstream
        #: consumers (check_statespace's host/arch taint rule)
        self.reachable_functions: list[FunctionInfo] = []

        # ---- lookup tables ------------------------------------------
        self.funcs = prog.all_functions()
        self.by_qname: dict[str, list[FunctionInfo]] = {}
        self.free_by_name: dict[str, list[FunctionInfo]] = {}
        for f in self.funcs:
            self.by_qname.setdefault(f.qname, []).append(f)
            if f.class_qname is None:
                self.free_by_name.setdefault(f.name, []).append(f)

        self.classes = prog.all_classes()
        self.class_by_name: dict[str, list[ClassInfo]] = {}
        for c in self.classes:
            self.class_by_name.setdefault(c.name, []).append(c)

        #: unqualified class name -> direct subclasses
        self.derived: dict[str, list[ClassInfo]] = {}
        for c in self.classes:
            for b in c.bases:
                self.derived.setdefault(b, []).append(c)

        #: method definitions grouped by (unqualified class, name)
        self.method_defs: dict[tuple[str, str], list[FunctionInfo]] = {}
        for f in self.funcs:
            if f.class_qname is not None:
                cls = f.class_qname.split("::")[-1]
                self.method_defs.setdefault((cls, f.name), []).append(f)

        #: names declared or defined [[noreturn]] anywhere
        self.noreturn_names: set[str] = set()
        for fi in prog.files.values():
            self.noreturn_names |= fi.noreturn_decls
        for f in self.funcs:
            if f.is_noreturn:
                self.noreturn_names.add(f.name)

        #: classes whose every subclass-override chain terminates final
        self._final_cache: dict[str, bool] = {}

        # region -> enclosing function (for this/member resolution)
        self._calls_by_file: dict[str, list[CallSite]] = {}
        for c in prog.all_calls():
            self._calls_by_file.setdefault(c.file, []).append(c)

    # ------------------------------------------------------------------
    # Class facts.
    # ------------------------------------------------------------------

    def _class(self, name: str) -> ClassInfo | None:
        """The unique class of unqualified @p name, else None."""
        cands = self.class_by_name.get(name.split("::")[-1], [])
        return cands[0] if len(cands) == 1 else None

    def _bases_chain(self, cls: ClassInfo) -> list[ClassInfo]:
        """@p cls followed by its transitive bases (cycle-safe)."""
        out, seen = [], set()
        stack = [cls]
        while stack:
            c = stack.pop()
            if c.qname in seen:
                continue
            seen.add(c.qname)
            out.append(c)
            for b in c.bases:
                bc = self._class(b)
                if bc is not None:
                    stack.append(bc)
        return out

    def _derived_chain(self, cls: ClassInfo) -> list[ClassInfo]:
        """@p cls followed by its transitive subclasses."""
        out, seen = [], set()
        stack = [cls]
        while stack:
            c = stack.pop()
            if c.qname in seen:
                continue
            seen.add(c.qname)
            out.append(c)
            for d in self.derived.get(c.name, []):
                stack.append(d)
        return out

    def _method_is_virtual(self, cls: ClassInfo, name: str) -> bool:
        """True when @p name is virtual in @p cls or any base."""
        for c in self._bases_chain(cls):
            md = c.methods.get(name)
            if md is not None and md.is_virtual:
                return True
        return False

    def _method_is_final(self, cls: ClassInfo, name: str) -> bool:
        md = cls.methods.get(name)
        return md is not None and md.is_final

    def _method_targets(self, cls: ClassInfo, name: str,
                        virtual: bool) -> list[FunctionInfo]:
        """Definitions a call to @p cls::@p name can land on: the
        static type's own chain, plus every override below when the
        dispatch is virtual."""
        targets: list[FunctionInfo] = []
        for c in self._bases_chain(cls):
            targets += self.method_defs.get((c.name, name), [])
            if targets:
                break       # nearest definition up the chain wins
        if virtual:
            for d in self._derived_chain(cls)[1:]:
                targets += self.method_defs.get((d.name, name), [])
        return targets

    # ------------------------------------------------------------------
    # Receiver typing (textual frontend).
    # ------------------------------------------------------------------

    def _receiver_type(self, call: CallSite,
                       ctx: FunctionInfo | None
                       ) -> tuple[ClassInfo | None, bool]:
        """(static class, dynamic) of @p call's receiver expression."""
        recv = call.receiver
        if call.receiver_class:
            return self._class(call.receiver_class), call.dynamic
        if recv is None or ctx is None:
            return None, False
        if recv == "this":
            cls = (self._class(ctx.class_qname)
                   if ctx.class_qname else None)
            # calls through `this` dispatch dynamically
            return cls, True
        if recv in ctx.params:
            tname, dyn = ctx.params[recv]
            return self._class(tname), dyn
        if ctx.class_qname:
            cls = self._class(ctx.class_qname)
            if cls is not None:
                for c in self._bases_chain(cls):
                    if recv in c.members:
                        tname, dyn = c.members[recv]
                        return self._class(tname), dyn
        return None, False

    # ------------------------------------------------------------------
    # Call resolution.
    # ------------------------------------------------------------------

    def resolve(self, call: CallSite,
                ctx: FunctionInfo | None) -> Resolution:
        res = Resolution()

        # Frontend-resolved reference (clang): exact.
        if call.resolved_qname is not None:
            res.targets = list(self.by_qname.get(call.resolved_qname, []))
            if call.is_virtual_call:
                cls_q = call.resolved_qname.rsplit("::", 1)[0]
                cls = self._class(cls_q)
                if cls is not None:
                    if not (cls.is_final
                            or self._method_is_final(cls, call.callee)
                            or self._subtree_sealed(cls, call.callee)):
                        res.devirt_hole = True
                        res.virtual_symbol = call.resolved_qname
                        res.receiver_class = cls
                    res.targets = self._method_targets(
                        cls, call.callee, virtual=True) or res.targets
            return res

        # Explicitly qualified call: A::B::name(...). No dispatch.
        if call.qualifier:
            suffix = f"{call.qualifier}::{call.callee}"
            # a qualified name matches on its tail so `Btb::lookup`
            # finds `fdip::Btb::lookup`
            for qn, defs in self.by_qname.items():
                if qn == suffix or qn.endswith("::" + suffix):
                    res.targets += defs
            return res

        # Method call through a receiver ('x.f()', 'p->f()', 'f()'
        # inside a method of a class that has f).
        cls, dynamic = self._receiver_type(call, ctx)
        if cls is None and call.receiver is None and ctx is not None \
                and ctx.class_qname:
            own = self._class(ctx.class_qname)
            if own is not None and any(
                    call.callee in c.methods
                    or (c.name, call.callee) in self.method_defs
                    for c in self._bases_chain(own)):
                cls, dynamic = own, True    # implicit this-call

        if cls is not None:
            virtual = self._method_is_virtual(cls, call.callee)
            res.receiver_class = cls
            res.targets = self._method_targets(cls, call.callee, virtual)
            if virtual and dynamic \
                    and not (cls.is_final
                             or self._method_is_final(cls, call.callee)
                             or self._subtree_sealed(cls, call.callee)):
                res.devirt_hole = True
                res.virtual_symbol = f"{cls.qname}::{call.callee}"
            return res

        # Unreceivered call: free function(s) of that name.
        if call.receiver is None:
            res.targets = list(self.free_by_name.get(call.callee, []))
            return res

        # Receiver we cannot type (local variable, chained call).
        # Conservative fallback: when exactly one class in the whole
        # index defines a method of this name, bind there — this keeps
        # container helpers in the closure without risking cross-class
        # confusion. Ambiguous names produce no edge.
        owners = {key[0] for key in self.method_defs
                  if key[1] == call.callee}
        if len(owners) == 1:
            cls = self._class(next(iter(owners)))
            if cls is not None:
                virtual = self._method_is_virtual(cls, call.callee)
                res.targets = self._method_targets(
                    cls, call.callee, virtual)
        return res

    def _subtree_sealed(self, cls: ClassInfo, method: str) -> bool:
        """True when every concrete subclass that can be the dynamic
        type either is final or declares the override final AND the
        static class itself cannot be instantiated around an
        un-final override. We only accept the simple sound case:
        every class in the subtree (including @p cls) is final or
        carries a final override."""
        for c in self._derived_chain(cls):
            if c.is_final or self._method_is_final(c, method):
                continue
            return False
        return True

    # ------------------------------------------------------------------
    # The closure walk.
    # ------------------------------------------------------------------

    def run(self) -> list[Finding]:
        self._check_structure()
        self._check_layering()

        roots: list[tuple[FunctionInfo | None, str]] = []
        for f in self.funcs:
            if f.is_hot:
                roots.append((f, f.qname))

        #: function-identity key -> chain from its discovering root
        visited: dict[tuple[str, int], tuple[str, ...]] = {}
        queue: deque[tuple[FunctionInfo, tuple[str, ...]]] = deque()

        def enqueue(fn: FunctionInfo, chain: tuple[str, ...]) -> None:
            key = (fn.file, fn.line)
            if key in visited:
                return
            if fn.name in self.noreturn_names or fn.is_noreturn:
                return      # cold failure path
            visited[key] = chain
            self.reachable_functions.append(fn)
            queue.append((fn, chain))

        for f, label in roots:
            enqueue(f, (label,))

        # Hot regions: roots whose call sites are the enclosing cold
        # function's calls that fall inside the span.
        for region in self.prog.all_regions():
            label = f"region:{region.file}:{region.name}"
            ctx = self._enclosing_function(region.file, region.start)
            for call in self._calls_by_file.get(region.file, []):
                if not region.start <= call.pos < region.end:
                    continue
                self._visit_call(call, ctx, (label,), enqueue)
            fi = self.prog.files[region.file]
            self._scan_banned(fi.text, region.start, region.end,
                              region.file, label, (label,))

        while queue:
            fn, chain = queue.popleft()
            if not fn.is_hot:
                self._finding(Finding(
                    RULE_UNANNOTATED, fn.file, fn.line, fn.qname,
                    f"{fn.qname} is reachable from a hot root but its "
                    "definition lacks FDIP_HOT_PATH",
                    chain))
            fi = self.prog.files[fn.file]
            self._scan_banned(fi.text, fn.body_start + 1, fn.body_end - 1,
                              fn.file, fn.qname, chain)
            for call in self._calls_by_file.get(fn.file, []):
                if call.caller != fn.qname:
                    continue
                if not fn.body_start <= call.pos < fn.body_end:
                    continue
                self._visit_call(call, fn, chain, enqueue)

        self._check_stale_allowlist()
        self.findings.sort(key=lambda f: (f.file, f.line, f.rule,
                                          f.symbol))
        self._reachable = len(visited)
        self._roots = len(roots) + len(self.prog.all_regions())
        return self.findings

    def _visit_call(self, call: CallSite, ctx: FunctionInfo | None,
                    chain: tuple[str, ...], enqueue) -> None:
        res = self.resolve(call, ctx)
        if res.devirt_hole:
            self._finding(Finding(
                RULE_VIRTUAL, call.file, call.line, res.virtual_symbol,
                f"call to {res.virtual_symbol} may dispatch virtually: "
                f"static type {res.receiver_class.qname} is not final "
                "and the method has a non-final override path; mark the "
                "receiver type (or every override) final, or allowlist "
                "the designed dispatch point",
                chain))
        for target in res.targets:
            if target.name in self.noreturn_names or target.is_noreturn:
                continue
            enqueue(target, chain + (target.qname,))

    def _enclosing_function(self, file: str,
                            pos: int) -> FunctionInfo | None:
        fi = self.prog.files.get(file)
        if fi is None:
            return None
        best: FunctionInfo | None = None
        for f in fi.functions:
            if f.body_start <= pos < f.body_end:
                if best is None or f.body_start > best.body_start:
                    best = f
        return best

    # ------------------------------------------------------------------
    # Rules.
    # ------------------------------------------------------------------

    def _scan_banned(self, text: str, start: int, end: int,
                     file: str, symbol: str,
                     chain: tuple[str, ...]) -> None:
        for key, (pattern, message) in zip(BAN_KEYS, BAN_RULES):
            for m in pattern.finditer(text, start, end):
                line = text.count("\n", 0, m.start()) + 1
                self._finding(Finding(
                    RULE_BANNED_OP, file, line, f"{symbol}/{key}",
                    message, chain))

    def _check_structure(self) -> None:
        for fi in self.prog.files.values():
            for line, msg in fi.problems:
                self._finding(Finding(
                    RULE_STRUCTURE, fi.path, line, fi.path, msg))

    def _check_layering(self) -> None:
        for inc in self.prog.all_includes():
            fmod = module_of(inc.file)
            tmod = module_of("src/" + inc.target)
            if fmod is None or tmod is None or fmod == tmod:
                continue
            frank, trank = MODULE_RANK[fmod], MODULE_RANK[tmod]
            if frank >= HARNESS_RANK:
                continue    # harness sits at the top; includes freely
            if trank < frank:
                continue    # downward include: fine
            exc = self._include_exception(inc.file, tmod)
            if exc is not None:
                self._used_inc_exc.add(exc)
                continue
            kind = ("upward" if trank > frank
                    else "same-rank cross-module")
            self._finding(Finding(
                RULE_LAYERING, inc.file, inc.line, tmod,
                f'{kind} include "{inc.target}": {fmod} (rank {frank}) '
                f"must not depend on {tmod} (rank {trank}); invert the "
                "dependency or carry an IncludeException with a written "
                "justification"))

    def _include_exception(self, file: str, tmod: str) -> int | None:
        for k, exc in enumerate(self.include_exceptions):
            if exc.file == file and exc.target_module == tmod:
                return k
        return None

    def _check_stale_allowlist(self) -> None:
        for k, entry in enumerate(self.allowlist):
            if k in self._used_allow:
                continue
            self._finding(Finding(
                RULE_STALE_ALLOW, entry.file, 0,
                f"{entry.rule}:{entry.symbol}",
                f"allowlist entry ({entry.rule}, {entry.file}, "
                f"{entry.symbol}) suppressed nothing; delete it so the "
                "escape hatch cannot outlive the code it excused"))
        for k, exc in enumerate(self.include_exceptions):
            if k in self._used_inc_exc:
                continue
            self._finding(Finding(
                RULE_STALE_ALLOW, exc.file, 0,
                f"include:{exc.target_module}",
                f"include exception ({exc.file} -> {exc.target_module}) "
                "matched no include edge; delete it"))

    def _finding(self, finding: Finding) -> None:
        for k, entry in enumerate(self.allowlist):
            if entry.rule == finding.rule and entry.file == finding.file \
                    and entry.symbol == finding.symbol:
                self._used_allow.add(k)
                return
        self.findings.append(finding)

    # ------------------------------------------------------------------
    # Report data.
    # ------------------------------------------------------------------

    def summary(self) -> dict:
        hot = sum(1 for f in self.funcs if f.is_hot)
        return {
            "schema": "hot-callgraph-v1",
            "backend": self.prog.backend,
            "files": len(self.prog.files),
            "functions": len(self.funcs),
            "classes": len(self.classes),
            "hotRoots": hot,
            "hotRegions": len(self.prog.all_regions()),
            "reachable": getattr(self, "_reachable", 0),
            "findings": len(self.findings),
        }

    def to_json(self) -> dict:
        return {
            **self.summary(),
            "moduleRanks": dict(sorted(MODULE_RANK.items(),
                                       key=lambda kv: (kv[1], kv[0]))),
            "allowlist": [
                {"rule": a.rule, "file": a.file, "symbol": a.symbol,
                 "why": a.why} for a in self.allowlist],
            "includeExceptions": [
                {"file": e.file, "targetModule": e.target_module,
                 "why": e.why} for e in self.include_exceptions],
            "findingList": [
                {"rule": f.rule, "file": f.file, "line": f.line,
                 "symbol": f.symbol, "message": f.message,
                 "chain": list(f.chain)} for f in self.findings],
        }


_TABLE_RE = re.compile(r"[^A-Za-z0-9_.:/-]")


def human_table(analysis: Analysis) -> str:
    """Compact per-module table of closure coverage."""
    per_module: dict[str, list[int]] = {}
    for f in analysis.funcs:
        mod = module_of(f.file) or "?"
        row = per_module.setdefault(mod, [0, 0])
        row[0] += 1
        row[1] += 1 if f.is_hot else 0
    lines = [f"{'module':<10} {'functions':>9} {'hot':>5}"]
    for mod in sorted(per_module,
                      key=lambda m: MODULE_RANK.get(m, 99)):
        total, hot = per_module[mod]
        lines.append(f"{_TABLE_RE.sub('', mod):<10} {total:>9} {hot:>5}")
    s = analysis.summary()
    lines.append(f"{'total':<10} {s['functions']:>9} {s['hotRoots']:>5}"
                 f"   ({s['hotRegions']} region(s), "
                 f"{s['reachable']} reachable, backend={s['backend']})")
    return "\n".join(lines)
