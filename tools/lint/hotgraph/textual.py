"""Built-in structural C++ indexer (no dependencies beyond stdlib).

libclang gives exact answers but is not available everywhere this
repo builds (the CI hotgraph job installs it; developer containers
often have only gcc). This frontend is the always-available fallback:
a single-pass structural scanner over comment/string/preprocessor-
stripped source that extracts the facts the closure analysis needs —
function definitions with body extents, class virtual/final facts,
member/parameter types for receiver inference, call sites, includes,
and the FDIP_HOT_PATH / FDIP_HOT_REGION annotations.

It is deliberately conservative rather than complete: constructs it
cannot classify produce no edges (documented in docs/ANALYSIS.md §8),
and the fixture suite pins that both frontends agree on every seeded
violation class. The repo's clang-format style (no K&R surprises, no
macros that open braces) is part of the contract that keeps this
parser honest.
"""

from __future__ import annotations

import re
from pathlib import Path

from .model import (CallSite, ClassInfo, FileIndex, FunctionInfo,
                    HotRegion, Include, MethodDecl, ProgramIndex)

# --------------------------------------------------------------------
# Length-preserving stripping (offsets into the stripped text are
# offsets into the raw file, so line numbers stay exact).
# --------------------------------------------------------------------

INCLUDE_RE = re.compile(r'^[ \t]*#[ \t]*include[ \t]*"([^"]+)"',
                        re.MULTILINE)


def _blank(text: str, start: int, end: int) -> list[str]:
    """The text span with every non-newline replaced by a space."""
    return [c if c == "\n" else " " for c in text[start:end]]


def strip_code(text: str) -> str:
    """Blanks comments, string/char literals, and preprocessor
    directives, preserving both length and line structure."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.extend(_blank(text, i, j))
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            out.extend(_blank(text, i, j + 2))
            i = j + 2
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            out.extend(_blank(text, i, min(j + 1, n)))
            i = j + 1
        else:
            out.append(c)
            i += 1
    stripped = "".join(out)

    # Blank preprocessor directives (and their continuations) with
    # spaces so tokens never cross a directive.
    lines = stripped.split("\n")
    in_directive = False
    for k, line in enumerate(lines):
        starts = line.lstrip().startswith("#")
        if in_directive or starts:
            in_directive = line.rstrip().endswith("\\")
            lines[k] = " " * len(line)
        else:
            in_directive = False
    return "\n".join(lines)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def match_brace_span(text: str, open_pos: int) -> int | None:
    """End offset (exclusive) of the brace block opening at open_pos;
    None if it never closes. @p text must be stripped."""
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return None


# --------------------------------------------------------------------
# Tokenizer.
# --------------------------------------------------------------------

TOKEN_RE = re.compile(r"[A-Za-z_]\w*|::|->|\[\[|\]\]|&&|\S")

#: Keywords that can immediately precede '(' without being a call or
#: a declarator name.
CONTROL_KEYWORDS = frozenset({
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "alignof", "decltype", "static_assert", "noexcept", "throw",
    "alignas", "case", "new", "delete", "do", "else", "co_return",
    "co_await", "co_yield", "__attribute__", "requires", "assert",
})

#: Built-in type names: `unsigned(x)` is a cast, `void (*f)(...)` is
#: a function-pointer declarator — never a function we should index.
TYPE_KEYWORDS = frozenset({
    "void", "bool", "char", "short", "int", "long", "float", "double",
    "signed", "unsigned", "auto", "wchar_t", "char8_t", "char16_t",
    "char32_t", "size_t", "int8_t", "int16_t", "int32_t", "int64_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t",
})

CAST_KEYWORDS = frozenset({
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
})

MACRO_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")

ACCESS_SPECIFIERS = frozenset({"public", "private", "protected"})

IDENT_RE = re.compile(r"[A-Za-z_]\w*$")

HOT_TOKEN = "FDIP_HOT_PATH"
REGION_BEGIN_RE = re.compile(r"\bFDIP_HOT_REGION_BEGIN\s*\(\s*(\w+)\s*\)")
REGION_END_RE = re.compile(r"\bFDIP_HOT_REGION_END\s*\(\s*(\w+)\s*\)")


def find_regions(fi: FileIndex) -> None:
    """Populate @p fi.regions (and pairing problems) from the
    FDIP_HOT_REGION markers in its stripped text. Shared by both
    frontends so region spans never depend on the parser in use."""
    marks = sorted(
        [(m.start(), m.end(), "begin", m.group(1))
         for m in REGION_BEGIN_RE.finditer(fi.text)] +
        [(m.start(), m.end(), "end", m.group(1))
         for m in REGION_END_RE.finditer(fi.text)])
    stack: list[tuple[int, str]] = []
    for start, end, kind, name in marks:
        if kind == "begin":
            stack.append((end, name))
        elif not stack:
            fi.problems.append(
                (line_of(fi.text, start),
                 f"FDIP_HOT_REGION_END({name}) without BEGIN"))
        else:
            open_end, open_name = stack.pop()
            if open_name != name:
                fi.problems.append(
                    (line_of(fi.text, start),
                     f"FDIP_HOT_REGION_END({name}) closes "
                     f"FDIP_HOT_REGION_BEGIN({open_name})"))
            fi.regions.append(HotRegion(fi.path, open_name, open_end, start))
    for open_end, name in stack:
        fi.problems.append(
            (line_of(fi.text, open_end),
             f"FDIP_HOT_REGION_BEGIN({name}) is never closed"))

CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")


def _is_macro(name: str) -> bool:
    return bool(MACRO_RE.match(name)) and (len(name) > 2 or "_" in name)


class Token:
    __slots__ = ("value", "pos", "is_ident")

    def __init__(self, value: str, pos: int):
        self.value = value
        self.pos = pos
        self.is_ident = bool(IDENT_RE.match(value))


def tokenize(text: str) -> list[Token]:
    return [Token(m.group(0), m.start()) for m in TOKEN_RE.finditer(text)]


# --------------------------------------------------------------------
# The structural parser.
# --------------------------------------------------------------------


class _Scope:
    __slots__ = ("kind", "name", "cls")

    def __init__(self, kind: str, name: str = "",
                 cls: ClassInfo | None = None):
        self.kind = kind        # 'ns' | 'class' | 'block'
        self.name = name
        self.cls = cls


class TextualFileParser:
    """Parses one stripped source file into a FileIndex."""

    def __init__(self, relpath: str, raw: str):
        self.path = relpath
        self.text = strip_code(raw)
        self.index = FileIndex(path=relpath, text=self.text)
        for m in INCLUDE_RE.finditer(raw):
            self.index.includes.append(
                Include(relpath, line_of(raw, m.start()), m.group(1)))
        self.tokens = tokenize(self.text)
        self.scopes: list[_Scope] = []
        self.i = 0
        #: tokens accumulated since the last declaration boundary
        self.decl: list[Token] = []

    # ---------------- scope helpers ----------------

    def _ns_path(self) -> list[str]:
        return [s.name for s in self.scopes
                if s.kind in ("ns", "class") and s.name]

    def _enclosing_class(self) -> ClassInfo | None:
        for s in reversed(self.scopes):
            if s.kind == "class":
                return s.cls
        return None

    # ---------------- token helpers ----------------

    def _peek(self, k: int = 0) -> Token | None:
        j = self.i + k
        return self.tokens[j] if j < len(self.tokens) else None

    def _skip_balanced(self, open_ch: str, close_ch: str) -> None:
        """Advances past a balanced group; self.i is at the opener."""
        depth = 0
        while self.i < len(self.tokens):
            v = self.tokens[self.i].value
            if v == open_ch:
                depth += 1
            elif v == close_ch:
                depth -= 1
                if depth == 0:
                    self.i += 1
                    return
            self.i += 1

    def _skip_angles(self) -> None:
        """Advances past a balanced <...> group (template args)."""
        depth = 0
        while self.i < len(self.tokens):
            v = self.tokens[self.i].value
            if v == "<":
                depth += 1
            elif v == ">":
                depth -= 1
                if depth == 0:
                    self.i += 1
                    return
            elif v in (";", "{"):
                return      # malformed; bail without consuming
            self.i += 1

    def _skip_to_semicolon(self) -> None:
        depth = 0
        while self.i < len(self.tokens):
            v = self.tokens[self.i].value
            if v in "({[":
                depth += 1
            elif v in ")}]":
                depth -= 1
            elif v == ";" and depth <= 0:
                self.i += 1
                return
            self.i += 1

    # ---------------- main loop ----------------

    def parse(self) -> FileIndex:
        self._find_regions()
        n = len(self.tokens)
        while self.i < n:
            tok = self.tokens[self.i]
            v = tok.value

            if v == "template":
                self.i += 1
                if self._peek() and self._peek().value == "<":
                    self._skip_angles()
                self.decl.append(tok)
                continue
            if v == "namespace":
                self._parse_namespace()
                continue
            if v == "enum":
                self._parse_enum()
                continue
            if v in ("using", "typedef", "friend"):
                self.i += 1
                self._skip_to_semicolon()
                self.decl.clear()
                continue
            if v in ("class", "struct"):
                if self._parse_class():
                    continue
                # fall through: elaborated type in a declaration
                self.decl.append(tok)
                self.i += 1
                continue
            if v == "{":
                self._parse_stray_brace()
                continue
            if v == "}":
                if self.scopes:
                    self.scopes.pop()
                self.i += 1
                self.decl.clear()
                continue
            if v == ";":
                self._end_of_declaration()
                self.i += 1
                self.decl.clear()
                continue
            if (tok.is_ident and v in ACCESS_SPECIFIERS
                    and self._peek(1) and self._peek(1).value == ":"):
                self.i += 2
                self.decl.clear()
                continue
            if tok.is_ident and self._peek(1) \
                    and self._peek(1).value == "(":
                if self._parse_declarator(tok):
                    continue
            if v == "operator":
                self._parse_operator()
                continue

            self.decl.append(tok)
            self.i += 1
        return self.index

    # ---------------- regions ----------------

    def _find_regions(self) -> None:
        find_regions(self.index)

    # ---------------- namespaces / enums / classes ----------------

    def _parse_namespace(self) -> None:
        self.i += 1
        names: list[str] = []
        while self.i < len(self.tokens):
            t = self.tokens[self.i]
            if t.is_ident:
                names.append(t.value)
                self.i += 1
            elif t.value == "::":
                self.i += 1
            elif t.value == "{":
                self.i += 1
                if not names:
                    names = [""]    # anonymous namespace
                for nm in names:
                    self.scopes.append(_Scope("ns", nm))
                # nested names share one closing brace; model extras
                # as unnamed blocks is wrong — instead collapse:
                for _ in names[1:]:
                    self.scopes.pop()
                self.scopes[-1].name = "::".join(n for n in names if n)
                self.decl.clear()
                return
            elif t.value == "=":        # namespace alias
                self._skip_to_semicolon()
                self.decl.clear()
                return
            else:
                self.i += 1
                self.decl.clear()
                return

    def _parse_enum(self) -> None:
        self.i += 1
        while self.i < len(self.tokens):
            v = self.tokens[self.i].value
            if v == "{":
                self._skip_balanced("{", "}")
                self._skip_to_semicolon()
                break
            if v == ";":
                self.i += 1
                break
            self.i += 1
        self.decl.clear()

    def _parse_class(self) -> bool:
        """Parses a class/struct definition head. Returns False when
        this is an elaborated type use, not a definition."""
        start = self.i
        j = self.i + 1
        name = ""
        is_final = False
        bases: list[str] = []
        # Scan the head up to '{', ';' or something that proves this
        # is not a definition.
        angle = 0
        colon_at = -1
        while j < len(self.tokens):
            t = self.tokens[j]
            v = t.value
            if v == "<":
                angle += 1
            elif v == ">":
                angle = max(0, angle - 1)
            elif angle == 0:
                if v == "{":
                    break
                if v in (";", ")", ",", "=", "&", "*"):
                    return False    # fwd decl / param / elaborated use
                if v == "final":
                    is_final = True
                elif v == ":" and colon_at < 0:
                    colon_at = j
                elif t.is_ident and colon_at < 0 \
                        and not _is_macro(v) and v != "alignas":
                    name = v
            j += 1
        if j >= len(self.tokens):
            return False
        # Base list between ':' and '{'.
        if colon_at >= 0:
            seg: list[Token] = []
            angle = 0
            for k in range(colon_at + 1, j):
                t = self.tokens[k]
                if t.value == "<":
                    angle += 1
                elif t.value == ">":
                    angle = max(0, angle - 1)
                elif angle == 0 and t.value == ",":
                    if seg:
                        bases.append(self._base_name(seg))
                        seg = []
                    continue
                if angle == 0:
                    seg.append(t)
            if seg:
                bases.append(self._base_name(seg))
        if not name:
            name = f"<anon@{line_of(self.text, self.tokens[start].pos)}>"
        qname = "::".join(self._ns_path() + [name])
        cls = ClassInfo(qname=qname, name=name, file=self.path,
                        line=line_of(self.text,
                                     self.tokens[start].pos),
                        bases=[b for b in bases if b],
                        is_final=is_final)
        self.index.classes.append(cls)
        self.scopes.append(_Scope("class", name, cls))
        self.i = j + 1
        self.decl.clear()
        return True

    @staticmethod
    def _base_name(seg: list[Token]) -> str:
        ids = [t.value for t in seg if t.is_ident
               and t.value not in ACCESS_SPECIFIERS
               and t.value != "virtual"]
        return ids[-1] if ids else ""

    # ---------------- stray braces ----------------

    def _parse_stray_brace(self) -> None:
        prev = self.decl[-1].value if self.decl else ""
        if prev == "extern" or not self.decl:
            self.scopes.append(_Scope("block"))
            self.i += 1
        else:
            # brace initializer (`Foo x{...};`, `= {...}`, lambda).
            pos = self.tokens[self.i].pos
            end = match_brace_span(self.text, pos)
            if end is None:
                self.i = len(self.tokens)
                return
            while self.i < len(self.tokens) \
                    and self.tokens[self.i].pos < end:
                self.i += 1
        self.decl.clear()

    # ---------------- declarations ----------------

    def _end_of_declaration(self) -> None:
        """Handles a ';' ending a parenless declaration: in a class
        body this is a member-variable candidate."""
        cls = self._enclosing_class()
        if cls is None or not self.decl \
                or self.scopes[-1].kind != "class":
            return
        values = [t.value for t in self.decl]
        if "(" in values or "using" in values or "friend" in values \
                or "typedef" in values or "static" in values:
            return
        self._record_member(cls, self.decl)

    def _record_member(self, cls: ClassInfo, toks: list[Token]) -> None:
        # Cut initializer (`= ...`) and bit-field (`: n`) tails.
        cut = len(toks)
        angle = 0
        for k, t in enumerate(toks):
            if t.value == "<":
                angle += 1
            elif t.value == ">":
                angle = max(0, angle - 1)
            elif angle == 0 and t.value in ("=", "{", ":"):
                cut = k
                break
        toks = toks[:cut]
        idents = [t for t in toks if t.is_ident]
        if len(idents) < 2:
            return
        # Variable name: last identifier (arrays put '[N]' after it,
        # which tokenizes as non-identifier tokens).
        name = None
        for t in reversed(toks):
            if t.is_ident:
                name = t.value
                break
            if t.value not in ("]", "["):
                # trailing attribute macros etc. — walk past them
                continue
        if not name:
            return
        type_cls, dynamic = _type_head(toks, name)
        if type_cls:
            cls.members[name] = (type_cls, dynamic)

    def _parse_operator(self) -> None:
        """Skips an operator declaration/definition conservatively:
        consumes through the parameter list, then lets the normal
        specifier walk classify body vs declaration. Operator bodies
        are indexed (so check_hotpath-style bans still apply via the
        annotation lint) but produce no named call edges."""
        start = self.i
        self.i += 1
        # operator symbol tokens up to the parameter '('; operator()
        # has '()' before the parameter list.
        if self._peek() and self._peek().value == "(" \
                and self._peek(1) and self._peek(1).value == ")":
            self.i += 2
        else:
            while self.i < len(self.tokens) \
                    and self.tokens[self.i].value != "(":
                if self.tokens[self.i].value in (";", "{", "}"):
                    self.decl.clear()
                    return
                self.i += 1
        if self.i >= len(self.tokens) \
                or self.tokens[self.i].value != "(":
            self.decl.clear()
            return
        name_tok = self.tokens[start]
        self._finish_declarator(name_tok, "operator", [])

    def _parse_declarator(self, name_tok: Token) -> bool:
        """Token at self.i is an identifier followed by '('. Returns
        True when it consumed a declaration/definition."""
        name = name_tok.value
        if name in CONTROL_KEYWORDS or name in CAST_KEYWORDS:
            self.i += 1
            if self._peek() and self._peek().value == "(":
                self._skip_balanced("(", ")")
            self.decl.clear() if name == "static_assert" else None
            return True
        if name in TYPE_KEYWORDS:
            # `void (*fp)(...)` or a cast — consume the parens.
            self.i += 1
            self._skip_balanced("(", ")")
            self.decl.append(name_tok)
            return True
        if _is_macro(name):
            # Attribute/check macro at declaration scope.
            self.decl.append(name_tok)
            self.i += 1
            self._skip_balanced("(", ")")
            return True

        # Explicit qualifier (Class::name) and destructor '~name'.
        quals: list[str] = []
        k = len(self.decl) - 1
        if k >= 0 and self.decl[k].value == "~":
            name = "~" + name
            k -= 1
        while k - 1 >= 0 and self.decl[k].value == "::" \
                and self.decl[k - 1].is_ident:
            quals.insert(0, self.decl[k - 1].value)
            k -= 2

        return self._finish_declarator(name_tok, name, quals)

    def _finish_declarator(self, name_tok: Token, name: str,
                           quals: list[str]) -> bool:
        """Consumes '(params)' + specifiers and classifies the result
        as definition / declaration / something else."""
        # Parameter list span.
        self.i += 1 if self.tokens[self.i] is name_tok else 0
        while self.tokens[self.i].value != "(":
            self.i += 1
        paren_open = self.tokens[self.i].pos
        self._skip_balanced("(", ")")
        paren_close = self.tokens[self.i - 1].pos \
            if self.i - 1 < len(self.tokens) else paren_open

        # Specifier walk.
        saw_final = False
        ctor_inits = False
        while self.i < len(self.tokens):
            t = self.tokens[self.i]
            v = t.value
            if v in ("const", "noexcept", "override", "mutable",
                     "volatile", "&", "&&", "throw", "try",
                     "FDIP_HOT_NOEXCEPT"):
                saw_final |= False
                self.i += 1
                if self._peek() and self._peek().value == "(" \
                        and v in ("noexcept", "throw"):
                    self._skip_balanced("(", ")")
                continue
            if v == "final":
                saw_final = True
                self.i += 1
                continue
            if v == "[[":
                while self.i < len(self.tokens) \
                        and self.tokens[self.i].value != "]]":
                    self.i += 1
                self.i += 1
                continue
            if t.is_ident and _is_macro(v):
                self.i += 1
                if self._peek() and self._peek().value == "(":
                    self._skip_balanced("(", ")")
                continue
            if v == "->":       # trailing return type
                self.i += 1
                while self.i < len(self.tokens) and \
                        self.tokens[self.i].value not in ("{", ";", "="):
                    if self.tokens[self.i].value == "<":
                        self._skip_angles()
                    else:
                        self.i += 1
                continue
            if v == ":":        # constructor initializer list
                ctor_inits = True
                self.i += 1
                depth = 0
                while self.i < len(self.tokens):
                    w = self.tokens[self.i].value
                    if w in ("(", "{") :
                        if w == "{" and depth == 0:
                            break       # the body
                        depth += 1
                    elif w in (")", "}"):
                        depth -= 1
                    elif w == ";" and depth == 0:
                        break           # was a bit-field/label — bail
                    self.i += 1
                continue
            break

        if self.i >= len(self.tokens):
            return True
        terminator = self.tokens[self.i].value

        if terminator == "{":
            self._record_definition(name_tok, name, quals,
                                    paren_open, paren_close,
                                    saw_final)
            return True
        if terminator in (";", "=", ","):
            # Declaration (possibly pure virtual / = default) or a
            # variable with a parenthesized initializer.
            if terminator == "=":
                self._skip_to_semicolon()
            elif terminator == ",":
                self._skip_to_semicolon()
            else:
                self.i += 1
            self._record_declaration(name, saw_final, ctor_inits)
            self.decl.clear()
            return True
        # Unclassifiable: give up on this token run.
        self.i += 1
        self.decl.clear()
        return True

    # ---------------- recording ----------------

    def _decl_has(self, value: str) -> bool:
        return any(t.value == value for t in self.decl)

    def _record_declaration(self, name: str, saw_final: bool,
                            ctor_inits: bool) -> None:
        del ctor_inits
        if self._decl_has("noreturn"):
            self.index.noreturn_decls.add(name)
        cls = self._enclosing_class()
        if cls is None or self.scopes[-1].kind != "class":
            return
        md = cls.methods.setdefault(name, MethodDecl(name))
        md.is_virtual |= self._decl_has("virtual")
        md.is_final |= saw_final

    def _record_definition(self, name_tok: Token, name: str,
                           quals: list[str], paren_open: int,
                           paren_close: int, saw_final: bool) -> None:
        body_open = self.tokens[self.i].pos
        body_end = match_brace_span(self.text, body_open)
        if body_end is None:
            self.index.problems.append(
                (line_of(self.text, body_open),
                 f"unbalanced braces in {name}"))
            self.i = len(self.tokens)
            return

        in_class = (self.scopes and self.scopes[-1].kind == "class")
        cls = self._enclosing_class() if in_class else None
        ns = self._ns_path()
        if cls is not None and not quals:
            class_qname = cls.qname
            qname = "::".join([class_qname, name])
        elif quals:
            class_qname = "::".join(ns + quals)
            qname = "::".join(ns + quals + [name])
        else:
            class_qname = None
            qname = "::".join(ns + [name]) if ns else name

        is_virtual = self._decl_has("virtual")
        fn = FunctionInfo(
            qname=qname, name=name, file=self.path,
            line=line_of(self.text, name_tok.pos),
            body_start=body_open, body_end=body_end,
            class_qname=class_qname,
            is_hot=self._decl_has(HOT_TOKEN),
            is_virtual=is_virtual, is_final=saw_final,
            is_noreturn=self._decl_has("noreturn"),
            params=_parse_params(
                self.text[paren_open + 1:paren_close]))
        self.index.functions.append(fn)
        if cls is not None and not quals:
            md = cls.methods.setdefault(name, MethodDecl(name))
            md.is_virtual |= is_virtual
            md.is_final |= saw_final

        extract_calls(self.index, fn)

        # Skip the body.
        while self.i < len(self.tokens) \
                and self.tokens[self.i].pos < body_end:
            self.i += 1
        self.decl.clear()


# --------------------------------------------------------------------
# Types, parameters, calls.
# --------------------------------------------------------------------

_SMART_PTRS = ("unique_ptr", "shared_ptr")

_QUAL_FILTER = frozenset({
    "const", "constexpr", "inline", "static", "mutable", "volatile",
    "typename", "class", "struct", "register", "explicit", "virtual",
})


def _type_head(toks: list[Token], varname: str) -> tuple[str, bool]:
    """(class name, dynamic) of the declared type in @p toks, where
    @p varname is the declared variable. Returns ("", False) when the
    head is not a plausible class name."""
    values = [t.value for t in toks]
    dynamic = "*" in values or "&" in values
    # Head qualified-id: first identifier run (skipping qualifiers),
    # descending into unique_ptr/shared_ptr template args.
    ids: list[str] = []
    k = 0
    while k < len(toks):
        t = toks[k]
        # Attribute/annotation macros (FDIP_STATE_*, FDIP_GUARDED_BY)
        # precede the type on a member declaration; they are not the
        # type head.
        if t.is_ident and t.value not in _QUAL_FILTER \
                and not _is_macro(t.value):
            ids.append(t.value)
            # absorb the '::' chain
            while k + 2 < len(toks) and toks[k + 1].value == "::" \
                    and toks[k + 2].is_ident:
                ids.append(toks[k + 2].value)
                k += 2
            break
        k += 1
    if not ids:
        return "", False
    head = ids[-1]
    if head == varname:
        return "", False
    if head in _SMART_PTRS:
        dynamic = True
        # first identifier inside the template args
        depth = 0
        inner: list[str] = []
        for t in toks[k + 1:]:
            if t.value == "<":
                depth += 1
            elif t.value == ">":
                if depth == 1 and inner:
                    break
                depth = max(0, depth - 1)
            elif depth >= 1 and t.is_ident \
                    and t.value not in _QUAL_FILTER:
                inner.append(t.value)
        head = inner[-1] if inner else ""
    if not head or head in TYPE_KEYWORDS or head[0].islower():
        # Repo classes are CamelCase; lowercase heads are value
        # typedefs (Addr, Cycle are CamelCase but alias integers and
        # simply never match a class in the index).
        if head not in _SMART_PTRS and (not head or head[0].islower()):
            return "", False
    return head, dynamic


def _parse_params(param_text: str) -> dict[str, tuple[str, bool]]:
    """name -> (type class, dynamic) for a parameter list body."""
    params: dict[str, tuple[str, bool]] = {}
    if not param_text.strip():
        return params
    # Split on top-level commas.
    depth = 0
    seg_start = 0
    segments: list[str] = []
    for k, c in enumerate(param_text):
        if c in "<([{":
            depth += 1
        elif c in ">)]}":
            depth -= 1
        elif c == "," and depth == 0:
            segments.append(param_text[seg_start:k])
            seg_start = k + 1
    segments.append(param_text[seg_start:])
    for seg in segments:
        toks = tokenize(seg)
        # cut default argument
        for k, t in enumerate(toks):
            if t.value == "=":
                toks = toks[:k]
                break
        idents = [t for t in toks if t.is_ident]
        if len(idents) < 2:
            continue        # unnamed, or just a type
        name = idents[-1].value
        type_cls, dynamic = _type_head(toks, name)
        if type_cls:
            params[name] = (type_cls, dynamic)
    return params


def extract_calls(index: FileIndex, fn: FunctionInfo) -> None:
    """Records every call expression inside @p fn's body."""
    text = index.text
    for m in CALL_RE.finditer(text, fn.body_start + 1,
                              fn.body_end - 1):
        name = m.group(1)
        if name in CONTROL_KEYWORDS or name in CAST_KEYWORDS \
                or name in TYPE_KEYWORDS or _is_macro(name):
            continue
        pos = m.start(1)
        j = pos - 1
        while j >= 0 and text[j] in " \t\n":
            j -= 1
        qualifier: str | None = None
        receiver: str | None = None
        accessor = ""
        if j >= 1 and text[j - 1:j + 1] == "::":
            # Qualified call A::B::name(...)
            parts: list[str] = []
            k = j - 1
            while True:
                k -= 1
                end = k + 1
                while k >= 0 and (text[k].isalnum() or text[k] == "_"):
                    k -= 1
                part = text[k + 1:end]
                if not part:
                    break
                parts.insert(0, part)
                while k >= 0 and text[k] in " \t\n":
                    k -= 1
                if k >= 1 and text[k - 1:k + 1] == "::":
                    k -= 1
                    continue
                break
            qualifier = "::".join(parts) if parts else None
        elif j >= 0 and text[j] == ".":
            accessor = "."
            j -= 1
        elif j >= 1 and text[j - 1:j + 1] == "->":
            accessor = "->"
            j -= 2
        if accessor:
            while j >= 0 and text[j] in " \t\n":
                j -= 1
            end = j + 1
            while j >= 0 and (text[j].isalnum() or text[j] == "_"):
                j -= 1
            tokv = text[j + 1:end]
            receiver = tokv if tokv else None

        index.calls.append(CallSite(
            caller=fn.qname, file=index.path,
            line=line_of(text, pos), pos=pos, callee=name,
            qualifier=qualifier, receiver=receiver,
            # '->' through a raw/smart pointer and '.' both land here;
            # dynamic-ness is resolved against the receiver's
            # declaration during analysis.
            dynamic=False))


# --------------------------------------------------------------------
# Tree walking.
# --------------------------------------------------------------------

#: Modules scanned for includes only (layering), not for functions.
INCLUDE_ONLY_DIRS = ("tools", "bench", "tests", "examples")


def index_tree(root: Path) -> ProgramIndex:
    """Indexes <root>/src fully and the include-only trees for
    layering. Returns the merged ProgramIndex."""
    prog = ProgramIndex(backend="builtin")
    src = root / "src"
    files = sorted(src.rglob("*.h")) + sorted(src.rglob("*.cc"))
    for path in files:
        rel = path.relative_to(root).as_posix()
        prog.add(TextualFileParser(
            rel, path.read_text(errors="replace")).parse())
    for sub in INCLUDE_ONLY_DIRS:
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.h")) + sorted(
                base.rglob("*.cc")):
            rel = path.relative_to(root).as_posix()
            raw = path.read_text(errors="replace")
            fi = FileIndex(path=rel, text="")
            for m in INCLUDE_RE.finditer(raw):
                fi.includes.append(
                    Include(rel, line_of(raw, m.start()), m.group(1)))
            prog.add(fi)
    return prog
