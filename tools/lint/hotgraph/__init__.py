"""Semantic hot-path verifier: whole-call-graph closure analysis.

check_hotpath.py enforces the tick-loop discipline *inside* annotated
bodies; this package closes the loop *across calls*. It indexes the
C++ sources (via libclang when available, via a built-in structural
indexer otherwise), constructs the static call graph rooted at every
FDIP_HOT_PATH definition and FDIP_HOT_REGION span, computes the
transitive closure, and reports:

  1. reachable repo functions whose definition lacks FDIP_HOT_PATH,
  2. allocation/throw/lock/std::function/iostream sites anywhere in
     the closure (the same contract check_hotpath enforces, now
     enforced through callees),
  3. virtual call sites whose static receiver type is not final
     (devirtualization holes), and
  4. module-layering back-edges over the include graph
     (util -> check -> obs/trace -> bpu/cache -> prefetch -> core ->
     sim -> tools/bench).

The CLI lives in tools/lint/check_hotgraph.py; it follows the shared
lint contract (--root, exit 0 clean / 1 with findings) and emits a
machine-readable `hot-callgraph-v1` JSON report.
"""

from __future__ import annotations

#: Version tag stamped into the JSON report schema.
SCHEMA = "hot-callgraph-v1"
