"""libclang frontend: exact call edges from the build's own AST.

Parses the translation units compile_commands.json names (with the
build's own flags), so the analyzed program is the shipped program.
The AST contributes what regexes cannot get right — resolved callee
references, virtual-dispatch facts, class finality — while the
length-preserving text layer (hot annotations, region spans, include
edges, banned-op scanning) stays byte-identical with the builtin
frontend: both emit the same neutral FileIndex model, and the fixture
suite pins that they agree on every seeded violation class.

Calls the AST cannot bind (dependent expressions inside uninstantiated
templates) degrade to unresolved textual call sites, which the
analysis then resolves structurally — never silently dropped.

Importing this module raises ImportError when clang.cindex is not
installed; check_hotgraph.py treats that as "frontend unavailable".
"""

from __future__ import annotations

import os
from pathlib import Path

import clang.cindex as ci

from .compile_db import clang_args, load_compile_db
from .model import (CallSite, ClassInfo, FileIndex, FunctionInfo,
                    Include, MethodDecl, ProgramIndex)
from .textual import (INCLUDE_RE, TextualFileParser, find_regions,
                      line_of, strip_code)

#: Candidate libclang locations probed when the default loading fails.
_LIBCLANG_CANDIDATES = (
    "/usr/lib/llvm-18/lib/libclang-18.so.1",
    "/usr/lib/llvm-18/lib/libclang.so.1",
    "/usr/lib/llvm-17/lib/libclang-17.so.1",
    "/usr/lib/llvm-16/lib/libclang-16.so.1",
    "/usr/lib/llvm-14/lib/libclang-14.so.1",
    "/usr/lib/x86_64-linux-gnu/libclang-18.so.1",
)

_configured = False


def _configure(libclang: str | None) -> None:
    global _configured
    if _configured:
        return
    explicit = libclang or os.environ.get("FDIP_LIBCLANG")
    if explicit:
        ci.Config.set_library_file(explicit)
    else:
        try:
            ci.Index.create()
            _configured = True
            return
        except ci.LibclangError:
            for cand in _LIBCLANG_CANDIDATES:
                if Path(cand).exists():
                    ci.Config.set_library_file(cand)
                    break
    ci.Index.create()       # raises LibclangError when still unusable
    _configured = True


_FUNC_KINDS = frozenset({
    ci.CursorKind.FUNCTION_DECL,
    ci.CursorKind.CXX_METHOD,
    ci.CursorKind.CONSTRUCTOR,
    ci.CursorKind.DESTRUCTOR,
    ci.CursorKind.CONVERSION_FUNCTION,
    ci.CursorKind.FUNCTION_TEMPLATE,
})

_CLASS_KINDS = frozenset({
    ci.CursorKind.CLASS_DECL,
    ci.CursorKind.STRUCT_DECL,
    ci.CursorKind.CLASS_TEMPLATE,
})

_SCOPE_KINDS = _CLASS_KINDS | frozenset({
    ci.CursorKind.NAMESPACE,
    ci.CursorKind.TRANSLATION_UNIT,
})


def _qname(cursor) -> str:
    """fdip::Class::name — matches the textual frontend's spelling."""
    parts: list[str] = []
    c = cursor
    while c is not None and c.kind != ci.CursorKind.TRANSLATION_UNIT:
        if c.kind in _SCOPE_KINDS or c.kind in _FUNC_KINDS:
            if c.spelling:
                parts.append(c.spelling)
        c = c.semantic_parent
    return "::".join(reversed(parts))


def _class_qname(cursor) -> str | None:
    c = cursor.semantic_parent
    while c is not None and c.kind == ci.CursorKind.NAMESPACE \
            and not c.spelling:
        c = c.semantic_parent
    if c is not None and c.kind in _CLASS_KINDS:
        return _qname(c)
    return None


def _has_final(cursor) -> bool:
    return any(ch.kind == ci.CursorKind.CXX_FINAL_ATTR
               for ch in cursor.get_children())


def _is_virtual(cursor) -> bool:
    try:
        return cursor.is_virtual_method() or cursor.is_pure_virtual_method()
    except Exception:  # noqa: BLE001 — non-method kinds
        return False


class _TreeIndexer:
    """Accumulates FileIndex records across every parsed TU."""

    def __init__(self, root: Path):
        self.root = root.resolve()
        self.prog = ProgramIndex(backend="clang")
        self.raw: dict[str, str] = {}       # relpath -> raw text
        self._seen_funcs: set[tuple[str, int, str]] = set()
        self._seen_classes: set[str] = set()

    # -- file plumbing -------------------------------------------------

    def _relpath(self, file) -> str | None:
        if file is None:
            return None
        try:
            p = Path(str(file.name)).resolve()
            rel = p.relative_to(self.root).as_posix()
        except ValueError:
            return None
        if not (rel.endswith(".h") or rel.endswith(".cc")):
            return None
        return rel if rel.startswith("src/") else None

    def _file_index(self, rel: str) -> FileIndex:
        fi = self.prog.files.get(rel)
        if fi is None:
            raw = (self.root / rel).read_text(errors="replace")
            self.raw[rel] = raw
            fi = FileIndex(path=rel, text=strip_code(raw))
            for m in INCLUDE_RE.finditer(raw):
                fi.includes.append(
                    Include(rel, line_of(raw, m.start()), m.group(1)))
            find_regions(fi)
            self.prog.add(fi)
        return fi

    # -- cursor walk ---------------------------------------------------

    def visit(self, cursor) -> None:
        for ch in cursor.get_children():
            rel = self._relpath(ch.location.file)
            if rel is None:
                # still descend into namespaces rooted in other files
                if ch.kind == ci.CursorKind.NAMESPACE:
                    self.visit(ch)
                continue
            if ch.kind in _CLASS_KINDS and ch.is_definition():
                self._record_class(ch, rel)
                self.visit(ch)
            elif ch.kind in _FUNC_KINDS and ch.is_definition():
                self._record_function(ch, rel)
            elif ch.kind in (ci.CursorKind.NAMESPACE,
                             ci.CursorKind.LINKAGE_SPEC,
                             ci.CursorKind.UNEXPOSED_DECL):
                self.visit(ch)
            elif ch.kind in _FUNC_KINDS:
                self._record_declaration(ch, rel)

    def _decl_slice(self, cursor, rel: str,
                    end_offset: int | None = None) -> str:
        """Raw text of the declaration head (with one line of
        lookback, so an annotation on the preceding line counts)."""
        raw = self.raw[rel]
        start = cursor.extent.start.offset
        start = raw.rfind("\n", 0, max(0, raw.rfind("\n", 0, start)))
        start = 0 if start < 0 else start
        end = end_offset if end_offset is not None \
            else cursor.extent.end.offset
        return raw[start:end]

    def _record_declaration(self, cursor, rel: str) -> None:
        fi = self._file_index(rel)
        head = self._decl_slice(cursor, rel)
        if "noreturn" in head:
            fi.noreturn_decls.add(cursor.spelling)

    def _record_class(self, cursor, rel: str) -> None:
        qname = _qname(cursor)
        if qname in self._seen_classes:
            return
        self._seen_classes.add(qname)
        fi = self._file_index(rel)
        cls = ClassInfo(
            qname=qname, name=cursor.spelling or "<anon>", file=rel,
            line=cursor.location.line, is_final=_has_final(cursor))
        for ch in cursor.get_children():
            if ch.kind == ci.CursorKind.CXX_BASE_SPECIFIER:
                base = ch.type.spelling.split("<")[0].split("::")[-1]
                cls.bases.append(base.strip())
            elif ch.kind in (ci.CursorKind.CXX_METHOD,
                             ci.CursorKind.FUNCTION_TEMPLATE,
                             ci.CursorKind.CONSTRUCTOR,
                             ci.CursorKind.DESTRUCTOR):
                md = cls.methods.setdefault(ch.spelling,
                                            MethodDecl(ch.spelling))
                md.is_virtual |= _is_virtual(ch)
                md.is_final |= _has_final(ch)
        fi.classes.append(cls)

    def _record_function(self, cursor, rel: str) -> None:
        body = None
        for ch in cursor.get_children():
            if ch.kind == ci.CursorKind.COMPOUND_STMT:
                body = ch
        if body is None:
            return
        qname = _qname(cursor)
        line = cursor.location.line
        key = (rel, line, qname)
        if key in self._seen_funcs:
            return
        self._seen_funcs.add(key)
        fi = self._file_index(rel)

        body_start = body.extent.start.offset
        body_end = body.extent.end.offset
        head = self._decl_slice(cursor, rel, body_start)
        fn = FunctionInfo(
            qname=qname, name=cursor.spelling, file=rel, line=line,
            body_start=body_start, body_end=body_end,
            class_qname=_class_qname(cursor),
            is_hot="FDIP_HOT_PATH" in head,
            is_virtual=_is_virtual(cursor),
            is_final=_has_final(cursor),
            is_noreturn="noreturn" in head)
        fi.functions.append(fn)
        self._walk_calls(body, fn, fi)

    def _walk_calls(self, node, fn: FunctionInfo, fi: FileIndex) -> None:
        for ch in node.get_children():
            if ch.kind == ci.CursorKind.CALL_EXPR:
                self._record_call(ch, fn, fi)
            self._walk_calls(ch, fn, fi)

    def _record_call(self, cursor, fn: FunctionInfo,
                     fi: FileIndex) -> None:
        callee = cursor.referenced
        raw = self.raw[fi.path]
        start = cursor.extent.start.offset
        end = cursor.extent.end.offset
        site_text = raw[start:end + 1]
        name = callee.spelling if callee is not None else cursor.spelling
        if not name or not name[0].isalpha() and name[0] != "_":
            return      # operator call / conversion
        if name not in site_text:
            return      # generated by a macro expansion; cold contract
        pos = start + site_text.index(name)

        if callee is None:
            # Dependent call inside a template: leave unresolved for
            # the structural resolver.
            fi.calls.append(CallSite(
                caller=fn.qname, file=fi.path,
                line=line_of(raw, pos), pos=pos, callee=name))
            return
        if callee.kind not in _FUNC_KINDS:
            return
        virtual = _is_virtual(callee)
        if virtual:
            # An explicitly qualified call (Base::f()) devirtualizes.
            before = raw[max(0, pos - 2):pos]
            if before.endswith("::"):
                virtual = False
        fi.calls.append(CallSite(
            caller=fn.qname, file=fi.path,
            line=line_of(raw, pos), pos=pos, callee=name,
            resolved_qname=_qname(callee),
            is_virtual_call=virtual))


def index_tree(root: Path, db_path: Path | None,
               libclang: str | None = None) -> ProgramIndex:
    """ProgramIndex over <root>/src via libclang.

    With a compile database, parses exactly the TUs the build
    compiles. Without one, parses every src/ file with minimal flags
    (-std=c++20 -I<root>/src), which is how the fixture trees run.
    """
    _configure(libclang)
    index = ci.Index.create()
    indexer = _TreeIndexer(root)

    jobs: list[tuple[Path, list[str]]] = []
    if db_path is not None:
        for cmd in load_compile_db(db_path, root):
            jobs.append((cmd.file, clang_args(cmd)))
    else:
        base = ["-x", "c++", "-std=c++20", f"-I{root / 'src'}",
                "-DFDIP_ENABLE_CHECKS=1", "-DFDIP_ENABLE_TRACING=1"]
        for path in sorted((root / "src").rglob("*.cc")):
            jobs.append((path, list(base)))

    for path, args in jobs:
        tu = index.parse(str(path), args=args)
        fatal = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal:
            raise RuntimeError(
                f"libclang failed to parse {path}: {fatal[0].spelling}")
        indexer.visit(tu.cursor)

    # Headers never reached by any TU (none in a healthy tree) plus
    # uninstantiated template bodies are indexed structurally so the
    # closure never loses files the builtin frontend would see.
    for path in sorted((root / "src").rglob("*.h")):
        rel = path.relative_to(root).as_posix()
        if rel in indexer.prog.files:
            continue
        indexer.prog.add(
            TextualFileParser(rel, path.read_text(errors="replace"))
            .parse())
    indexer.prog.backend = "clang"
    return indexer.prog
