"""Data model shared by the hotgraph frontends and the analysis.

A frontend (textual.py or clang_frontend.py) reduces every source
file to the same neutral index — functions with body extents, classes
with virtual/final facts, call sites, includes — so the closure
analysis, the findings rules, and the report never care which parser
produced the facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# --------------------------------------------------------------------
# Module layering.
#
# The repo's module DAG, lowest layer first. A file in module M may
# include headers from modules of *strictly lower* rank (or from M
# itself); everything else — upward includes and same-rank
# cross-module includes — is a layering back-edge finding. The ranks
# mirror the library link graph in src/*/CMakeLists.txt.
# --------------------------------------------------------------------

MODULE_RANK: dict[str, int] = {
    "util": 0,
    "check": 1,
    "obs": 2,
    "trace": 2,
    "bpu": 3,
    "cache": 3,
    "prefetch": 4,
    "core": 5,
    "sim": 6,
    "tools": 7,
    "bench": 7,
    "tests": 7,
    "examples": 7,
}


@dataclass(frozen=True)
class IncludeException:
    """One justified upward include edge: @p file may include headers
    of @p target_module despite the ranks. Stale entries (file gone,
    or the file no longer includes that module) are findings."""

    file: str
    target_module: str
    why: str


#: The three checker translation units in src/check are *integration*
#: code: they aggregate every storage-bearing module to certify the
#: paper budgets (budget/certify link against fdip_core by design)
#: and to re-verify whole-frontend structure each tick (invariants.h,
#: header-only, consumed solely by fdip_core). They keep their home in
#: src/check but carry explicit, per-edge layering exceptions instead
#: of silently re-ranking the whole module.
INCLUDE_EXCEPTIONS: list[IncludeException] = [
    IncludeException(
        "src/check/invariants.h", "bpu",
        "whole-frontend structural checker reads BTB/RAS state"),
    IncludeException(
        "src/check/invariants.h", "cache",
        "whole-frontend structural checker reads cache state"),
    IncludeException(
        "src/check/invariants.h", "core",
        "whole-frontend structural checker walks the FTQ"),
    IncludeException(
        "src/check/budget.h", "core",
        "iso-storage accounting sums every structure in CoreConfig"),
    IncludeException(
        "src/check/budget.h", "bpu",
        "budget items decompose BTB/TAGE/RAS storage schemas"),
    IncludeException(
        "src/check/budget.cc", "bpu",
        "implementation of the budget.h accounting"),
    IncludeException(
        "src/check/budget.cc", "cache",
        "budget items decompose cache tag/data/LRU schemas"),
    IncludeException(
        "src/check/budget.cc", "prefetch",
        "budget items charge prefetcher metadata via InstPrefetcher"),
]


def module_of(relpath: str) -> str | None:
    """Module name of a repo-relative posix path, or None."""
    parts = relpath.split("/")
    if parts[0] == "src" and len(parts) > 1:
        return parts[1] if parts[1] in MODULE_RANK else None
    return parts[0] if parts[0] in MODULE_RANK else None


# --------------------------------------------------------------------
# Index records produced by the frontends.
# --------------------------------------------------------------------


@dataclass
class FunctionInfo:
    """One function *definition*."""

    qname: str              #: fully qualified (ns::Class::name)
    name: str               #: unqualified name
    file: str               #: repo-relative posix path
    line: int               #: 1-based line of the definition
    body_start: int = 0     #: offset of the opening brace in the
    body_end: int = 0       #: stripped text; end is exclusive
    class_qname: str | None = None  #: enclosing class, if a method
    is_hot: bool = False    #: definition carries FDIP_HOT_PATH
    is_virtual: bool = False
    is_final: bool = False
    #: [[noreturn]] on the definition: the cold failure path, excluded
    #: from the closure (executed at most once per process)
    is_noreturn: bool = False
    #: parameter name -> (class name of its type, dynamic) for
    #: receiver-type inference inside the body
    params: dict[str, tuple[str, bool]] = field(default_factory=dict)


@dataclass
class MethodDecl:
    """Per-class method facts (declarations and definitions)."""

    name: str
    is_virtual: bool = False
    is_final: bool = False


@dataclass
class ClassInfo:
    """One class/struct definition."""

    qname: str
    name: str               #: unqualified name
    file: str
    line: int
    bases: list[str] = field(default_factory=list)  #: unqualified
    is_final: bool = False
    methods: dict[str, MethodDecl] = field(default_factory=dict)
    #: member variable name -> (class name of its type, dynamic) where
    #: dynamic means the member is held by pointer/reference/smart
    #: pointer, i.e. calls through it may dispatch virtually.
    members: dict[str, tuple[str, bool]] = field(default_factory=dict)


@dataclass
class CallSite:
    """One call expression inside a function body or hot region."""

    caller: str             #: qname of the enclosing function, or
    #: "region:<file>:<name>" for hot-region spans
    file: str
    line: int
    pos: int                #: offset of the callee name in the text
    callee: str             #: unqualified callee name
    qualifier: str | None = None   #: explicit A::B qualifier text
    #: receiver expression token ('this', a member/param/local name)
    #: for the textual frontend; None when absent or unresolvable
    receiver: str | None = None
    receiver_class: str | None = None  #: static class of the receiver
    #: receiver held by pointer/ref (virtual dispatch possible);
    #: False for by-value receivers and implicit this-calls
    dynamic: bool = False
    #: exact callee qname when the frontend resolved the reference
    #: itself (clang does; the textual frontend leaves this None and
    #: the analysis resolves structurally)
    resolved_qname: str | None = None
    #: the frontend proved this site dispatches virtually
    is_virtual_call: bool = False


@dataclass
class Include:
    """One `#include "module/header.h"` edge."""

    file: str
    line: int
    target: str             #: the quoted include path


@dataclass
class HotRegion:
    """One FDIP_HOT_REGION span."""

    file: str
    name: str
    start: int
    end: int


@dataclass
class FileIndex:
    """Everything a frontend extracted from one source file."""

    path: str               #: repo-relative posix path
    text: str               #: comment/string/preprocessor-stripped
    #: source, same length as the raw file (offsets are shared)
    functions: list[FunctionInfo] = field(default_factory=list)
    classes: list[ClassInfo] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    includes: list[Include] = field(default_factory=list)
    regions: list[HotRegion] = field(default_factory=list)
    #: (line, message) parse-level contract breaks (unclosed regions)
    problems: list[tuple[int, str]] = field(default_factory=list)
    #: names *declared* [[noreturn]] in this file (the definition may
    #: legally omit the attribute, e.g. log.h declares / log.cc defines)
    noreturn_decls: set[str] = field(default_factory=set)


@dataclass
class ProgramIndex:
    """Merged view over every indexed file."""

    files: dict[str, FileIndex] = field(default_factory=dict)
    backend: str = "builtin"

    def add(self, fi: FileIndex) -> None:
        self.files[fi.path] = fi

    # -- lookup tables (built lazily by analysis) ---------------------

    def all_functions(self) -> list[FunctionInfo]:
        return [f for fi in self.files.values() for f in fi.functions]

    def all_classes(self) -> list[ClassInfo]:
        return [c for fi in self.files.values() for c in fi.classes]

    def all_calls(self) -> list[CallSite]:
        return [c for fi in self.files.values() for c in fi.calls]

    def all_includes(self) -> list[Include]:
        return [i for fi in self.files.values() for i in fi.includes]

    def all_regions(self) -> list[HotRegion]:
        return [r for fi in self.files.values() for r in fi.regions]


# --------------------------------------------------------------------
# Findings and the exact-site allowlist.
# --------------------------------------------------------------------

#: Finding rule identifiers (also the JSON `rule` values).
RULE_UNANNOTATED = "unannotated-reachable"
RULE_BANNED_OP = "banned-op"
RULE_VIRTUAL = "virtual-call"
RULE_LAYERING = "layering"
RULE_STRUCTURE = "structure"       #: parse-level contract breaks
RULE_STALE_ALLOW = "stale-allowlist"


@dataclass(frozen=True)
class Finding:
    rule: str
    file: str
    line: int
    symbol: str             #: stable site key the allowlist matches
    message: str
    chain: tuple[str, ...] = ()    #: hot root -> ... -> offender

    def render(self) -> str:
        loc = f"{self.file}:{self.line}" if self.line else self.file
        text = f"{loc}: [{self.rule}] {self.message}"
        if self.chain:
            text += f" (via {' -> '.join(self.chain)})"
        return text


@dataclass(frozen=True)
class AllowEntry:
    """Suppresses findings with matching (rule, file, symbol). An
    entry that suppresses nothing is itself a staleness finding, so
    the escape hatch cannot outlive the code it excused."""

    rule: str
    file: str
    symbol: str
    why: str


#: Head allowlist. Every entry needs a written justification here and
#: in docs/ANALYSIS.md section 8.
ALLOWLIST: list[AllowEntry] = [
    # The prefetcher hooks are the simulator's single designed
    # polymorphic point: the frontend dispatches through
    # `InstPrefetcher &` so one binary hosts all nine designs. Every
    # concrete prefetcher is `final` and every override is at least as
    # noexcept as the base (tests/core_hotpath_contract_test.cc pins
    # both), so the cost is exactly one well-predicted indirect branch
    # per hook, accepted since PR 6.
    AllowEntry(RULE_VIRTUAL, "src/core/frontend.cc",
               "fdip::InstPrefetcher::onBranch",
               "designed dispatch point; all overrides final"),
    AllowEntry(RULE_VIRTUAL, "src/core/frontend.cc",
               "fdip::InstPrefetcher::onFillComplete",
               "designed dispatch point; all overrides final"),
    AllowEntry(RULE_VIRTUAL, "src/core/frontend.cc",
               "fdip::InstPrefetcher::onDemandLookup",
               "designed dispatch point; all overrides final"),
    # FlatMap grows by amortized doubling. The growth slot is the one
    # deliberately cold function reachable from hot code: it runs only
    # while a map is still filling (warmup), and
    # tests/core_hotpath_test.cc proves Core::run performs zero
    # steady-state allocations across every config x prefetcher. It
    # stays un-annotated on purpose — annotating it would declare the
    # allocation itself hot.
    AllowEntry(RULE_UNANNOTATED, "src/util/flat_map.h",
               "fdip::FlatMap::grow",
               "amortized growth slot; cold after warmup by "
               "construction (interposer test pins steady state)"),
    AllowEntry(RULE_BANNED_OP, "src/util/flat_map.h",
               "fdip::FlatMap::grow/make-smart",
               "the single amortized reallocation; zero steady-state "
               "allocations proven by tests/core_hotpath_test.cc"),
]
