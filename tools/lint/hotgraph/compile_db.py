"""compile_commands.json loader.

The clang frontend parses exactly the translation units the build
compiles, with the build's own flags — so the analyzed program is the
shipped program, not a guess. This module finds and normalizes the
database; the builtin frontend uses it only to cross-check file
coverage (it indexes the tree directly).
"""

from __future__ import annotations

import json
import shlex
from dataclasses import dataclass
from pathlib import Path

#: Build directories probed, in order, when --compile-db is not given.
DEFAULT_BUILD_DIRS = (
    "build", "build-compile-commands", "build-tsa", "build-ci",
)


@dataclass(frozen=True)
class CompileCommand:
    file: Path              #: absolute, resolved source path
    directory: Path
    args: list[str]         #: full argv (compiler included)


def find_compile_db(root: Path, explicit: str | None = None) -> Path | None:
    """Path to compile_commands.json, or None when no build exports
    one. @p explicit may name the file or its directory."""
    if explicit:
        p = Path(explicit)
        if p.is_dir():
            p = p / "compile_commands.json"
        return p if p.is_file() else None
    for sub in DEFAULT_BUILD_DIRS:
        p = root / sub / "compile_commands.json"
        if p.is_file():
            return p
    return None


def load_compile_db(db_path: Path, root: Path) -> list[CompileCommand]:
    """The database entries whose sources live under @p root/src.
    Entries for tests/bench/tools are dropped: the closure analysis
    covers the simulator, and harness TUs would only add noise."""
    entries = json.loads(db_path.read_text())
    out: list[CompileCommand] = []
    src_root = (root / "src").resolve()
    for e in entries:
        directory = Path(e["directory"])
        file = Path(e["file"])
        if not file.is_absolute():
            file = directory / file
        file = file.resolve()
        if src_root not in file.parents:
            continue
        if "arguments" in e:
            args = list(e["arguments"])
        else:
            args = shlex.split(e["command"])
        out.append(CompileCommand(file=file, directory=directory,
                                  args=args))
    return out


def clang_args(cmd: CompileCommand) -> list[str]:
    """The flags libclang needs from a database entry: includes,
    defines, standard — with the compiler name, -c/-o pairs, and
    warning noise removed."""
    keep: list[str] = []
    it = iter(cmd.args[1:])
    for a in it:
        if a in ("-c", "-o", "-MF", "-MT", "-MQ"):
            next(it, None)
            continue
        if a in ("-MD", "-MMD", "-MP") or a.endswith(".cc") \
                or a.endswith(".cpp") or a.endswith(".o"):
            continue
        if a.startswith("-W") and not a.startswith("-Wl,"):
            continue
        keep.append(a)
    return keep
