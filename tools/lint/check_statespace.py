#!/usr/bin/env python3
"""Whole-program architectural-state auditor.

PR 4's StorageSchemas make the paper's iso-storage budgets exact, and
PR 2's determinism contract makes runs bit-identical — but both were
conventions enforced per structure by hand-written tests. This lint
turns them into whole-program invariants over the hotgraph
ProgramIndex (tools/lint/hotgraph/): every data member of every
audited class must carry an FDIP_STATE_{ARCH,MICRO,HOST}
classification (src/util/state.h), and three rule families run over
the resulting member census:

  ghost state      FDIP_STATE_ARCH claims must match declared schema
                   fields exactly, in both directions — deleting a
                   schema field, adding an unaccounted member, or
                   keeping arch state in a schema-less class all fire
  reset coverage   arch/micro scalars must be initialized by NSDMI,
                   constructor, or the reset() call-graph closure
  host/arch taint  FDIP_STATE_HOST members must never be touched on
                   the architectural hot-path closure outside
                   obs/trace modules

The census is cross-checked against the budget-certificate golden
(field names and bit totals, which check_certify_test ties to
storageBits()), emitted as a `state-audit-v1` JSON report, and
optionally diffed against a golden census so state-space growth is
always a reviewed diff. Exceptions live in
hotgraph/statespace.py::STATE_ALLOWLIST, each with a written
justification; an entry that suppresses nothing is itself a finding.
docs/ANALYSIS.md section 9 documents the contract.

Exit status: 0 when clean, 1 with findings listed on stderr, 2 when
the requested frontend is unavailable.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lintlib import REPO, make_parser, report  # noqa: E402
from check_hotgraph import build_index  # noqa: E402
from hotgraph.statespace import StateAudit  # noqa: E402

CERTIFICATE = "tests/data/budget_certificate.golden.json"


def load_certificate(root: Path, arg: str | None) -> dict | None:
    path = Path(arg) if arg else root / CERTIFICATE
    if not path.is_file():
        return None
    return json.loads(path.read_text())


def main() -> int:
    ap = make_parser(__doc__)
    ap.add_argument("--frontend", choices=("auto", "builtin", "clang"),
                    default="builtin",
                    help="source indexer (default: builtin)")
    ap.add_argument("--compile-db", default=None,
                    help="compile_commands.json (or its directory) for "
                         "the clang frontend")
    ap.add_argument("--libclang", default=None,
                    help="explicit libclang shared-library path")
    ap.add_argument("--json", default=None, metavar="PATH",
                    help="write the state-audit-v1 JSON report here")
    ap.add_argument("--census-golden", default=None, metavar="PATH",
                    help="diff the member census against this golden")
    ap.add_argument("--update-census", default=None, metavar="PATH",
                    help="write the member census golden and exit")
    ap.add_argument("--certificate", default=None, metavar="PATH",
                    help="budget-certificate golden for the bits "
                         f"cross-check (default: <root>/{CERTIFICATE})")
    ap.add_argument("--require-cert", default="", metavar="QNAMES",
                    help="comma-separated class qnames that must "
                         "cross-check against the certificate")
    ap.add_argument("--bare", action="store_true",
                    help="ignore the repo allowlist and certificate "
                         "(fixture self-tests)")
    args = ap.parse_args()

    root = args.root.resolve()
    prog = build_index(root, args.frontend, args.compile_db,
                       args.libclang)
    if prog is None:
        return 2

    cert = None if args.bare else load_certificate(root,
                                                   args.certificate)
    audit = (StateAudit(prog, root, allowlist=[], certificate=None)
             if args.bare else StateAudit(prog, root,
                                          certificate=cert))
    findings = audit.run()
    problems = [f.render() for f in findings]

    if args.update_census:
        Path(args.update_census).write_text(
            json.dumps(audit.census(), indent=2, sort_keys=True)
            + "\n")
        print(f"check_statespace: census written to "
              f"{args.update_census} "
              f"({len(audit.classes)} classes)")
    if args.json:
        Path(args.json).write_text(
            json.dumps(audit.to_json(), indent=2, sort_keys=True)
            + "\n")
    if args.census_golden:
        golden_path = Path(args.census_golden)
        if not golden_path.is_file():
            problems.append(f"census golden {golden_path} is missing "
                            "(regenerate with --update-census)")
        else:
            golden = json.loads(golden_path.read_text())
            problems += census_diff(golden, audit.census())
    for qname in (q for q in args.require_cert.split(",") if q):
        ac = audit.classes.get(qname)
        if ac is None or ac.certificate_bits is None:
            problems.append(
                f"{qname}: census was not cross-checked against the "
                "budget certificate (class missing, schema-less, or "
                "absent from the certificate map)")
        else:
            print(f"check_statespace: {qname} census == "
                  f"{ac.certificate_structure} certificate "
                  f"({ac.certificate_bits} bits == storageBits())")

    if not problems:
        print(f"check_statespace: {len(audit.classes)} classes, "
              f"{sum(len(c.members) for c in audit.classes.values())} "
              f"members audited clean "
              f"({audit.prog.backend} frontend)")
    return report("check_statespace", problems)


def census_diff(golden: dict, current: dict) -> list[str]:
    """Human-readable census drift (state-space growth must be a
    reviewed diff, not a silent change)."""
    problems: list[str] = []
    for qname in sorted(set(golden) | set(current)):
        if qname not in current:
            problems.append(f"census: class {qname} vanished "
                            "(golden lists it)")
        elif qname not in golden:
            problems.append(f"census: new audited class {qname} — "
                            "review and regenerate the golden "
                            "(--update-census)")
        elif golden[qname] != current[qname]:
            before = len(problems)
            gm = golden[qname].get("members", {})
            cm = current[qname].get("members", {})
            for name in sorted(set(gm) | set(cm)):
                if name not in cm:
                    problems.append(f"census: {qname}::{name} "
                                    "vanished")
                elif name not in gm:
                    problems.append(f"census: new member "
                                    f"{qname}::{name} "
                                    f"({cm[name].get('kind')})")
                elif gm[name] != cm[name]:
                    problems.append(
                        f"census: {qname}::{name} changed "
                        f"{gm[name]} -> {cm[name]}")
            if golden[qname].get("schema") != \
                    current[qname].get("schema"):
                problems.append(f"census: schema of {qname} changed")
            if len(problems) == before:
                problems.append(f"census: {qname} drifted from the "
                                "golden (regenerate with "
                                "--update-census after review)")
    return problems


if __name__ == "__main__":
    sys.exit(main())
