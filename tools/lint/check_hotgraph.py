#!/usr/bin/env python3
"""Semantic hot-path verifier: whole-call-graph closure analysis.

check_hotpath.py enforces the tick-loop discipline *inside* annotated
bodies with regexes; a FDIP_HOT_PATH function calling an unannotated
helper that allocates, throws, locks, or dispatches virtually escapes
it entirely. This lint closes that hole: it indexes the C++ sources,
builds the static call graph rooted at every FDIP_HOT_PATH definition
and FDIP_HOT_REGION span, computes the transitive closure, and
reports

  - reachable functions whose definition lacks FDIP_HOT_PATH,
  - banned operations (check_hotpath's exact rules) anywhere in the
    closure,
  - virtual call sites whose static receiver type is not sealed
    (devirtualization holes), and
  - module-layering back-edges over the include graph.

Two interchangeable frontends produce the same neutral index:

  --frontend=builtin   the structural indexer in hotgraph/textual.py
                       (stdlib only, always available — the default)
  --frontend=clang     libclang over the build's own
                       compile_commands.json (exact; the CI hotgraph
                       job runs it on clang-18)
  --frontend=auto      clang when clang.cindex imports, else builtin

Exceptions live in hotgraph/model.py (ALLOWLIST for call-graph rules,
INCLUDE_EXCEPTIONS for layering edges), each with a written
justification; an entry that suppresses nothing is itself a finding.
docs/ANALYSIS.md section 8 documents the contract.

Exit status: 0 when clean, 1 with findings listed on stderr, 2 when
the requested frontend is unavailable.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lintlib import REPO, make_parser, report  # noqa: E402
from hotgraph.analysis import Analysis, human_table  # noqa: E402
from hotgraph import textual  # noqa: E402
from hotgraph.compile_db import find_compile_db  # noqa: E402


def build_index(root: Path, frontend: str, compile_db: str | None,
                libclang: str | None):
    """ProgramIndex for <root> via the requested frontend, or None
    with a message on stderr when the frontend is unavailable."""
    if frontend in ("clang", "auto"):
        try:
            from hotgraph import clang_frontend
            db = find_compile_db(root, compile_db)
            return clang_frontend.index_tree(root, db, libclang)
        except ImportError as e:
            if frontend == "clang":
                print(f"check_hotgraph: clang frontend unavailable: {e}",
                      file=sys.stderr)
                return None
        except Exception as e:  # noqa: BLE001 — degrade, don't crash
            if frontend == "clang":
                print(f"check_hotgraph: clang frontend failed: {e}",
                      file=sys.stderr)
                return None
            print(f"check_hotgraph: clang frontend failed ({e}); "
                  "falling back to builtin", file=sys.stderr)
    return textual.index_tree(root)


def main() -> int:
    ap = make_parser(__doc__)
    ap.add_argument("--frontend", choices=("auto", "builtin", "clang"),
                    default="builtin",
                    help="source indexer (default: builtin)")
    ap.add_argument("--compile-db", default=None,
                    help="compile_commands.json (or its directory) for "
                         "the clang frontend")
    ap.add_argument("--libclang", default=None,
                    help="explicit libclang shared-library path")
    ap.add_argument("--json", default=None, metavar="PATH",
                    help="write the hot-callgraph-v1 JSON report here")
    ap.add_argument("--table", action="store_true",
                    help="print the per-module coverage table")
    ap.add_argument("--bare", action="store_true",
                    help="ignore the repo allowlist and include "
                         "exceptions (fixture self-tests)")
    args = ap.parse_args()

    prog = build_index(args.root.resolve(), args.frontend,
                       args.compile_db, args.libclang)
    if prog is None:
        return 2

    analysis = (Analysis(prog, allowlist=[], include_exceptions=[])
                if args.bare else Analysis(prog))
    findings = analysis.run()

    if args.json:
        Path(args.json).write_text(
            json.dumps(analysis.to_json(), indent=2) + "\n")
    if args.table:
        print(human_table(analysis))

    return report("check_hotgraph", [f.render() for f in findings])


if __name__ == "__main__":
    sys.exit(main())
