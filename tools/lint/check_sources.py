#!/usr/bin/env python3
"""Source-level lint for the simulator (no external dependencies).

Rules enforced over src/ (and, where noted, tests/):

  1. no-libc-rand     rand()/srand() are banned; all randomness must go
                      through util/rng.h so runs are reproducible.
  2. no-raw-new       raw `new` is banned outside util/rng.h-style
                      allowlists; use std::make_unique / containers.
  3. no-c-cast        C-style casts that can silently narrow are
                      banned; use static_cast and friends.
  4. header-hygiene   every header must have a FDIP_..._H_ include
                      guard matching its path.
  5. self-contained   every header in src/ must compile on its own
                      (a generated TU per header, g++ -fsyntax-only).

The lint runs against the repository by default; --root points it at
any tree with the same src/ layout, which is how the fixture suite in
tools/lint/tests/ exercises both the clean and the dirty paths.

Exit status: 0 when clean, 1 with findings listed on stderr.
"""

from __future__ import annotations

import re
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lintlib import (REPO, make_parser, rel, report, source_files,
                     strip_comments_and_strings)

SRC = REPO / "src"

# Files allowed to use primitives the rest of the tree must not.
RAND_ALLOWLIST = {"src/util/rng.h"}
NEW_ALLOWLIST: set[str] = set()

RE_LIBC_RAND = re.compile(r"(?<![\w:.])s?rand\s*\(")
RE_RAW_NEW = re.compile(r"(?<![\w_])new\s+[A-Za-z_:][\w:<>, ]*[({[]")
RE_C_CAST = re.compile(
    r"(?<![\w_>)])\(\s*(?:unsigned\s+)?"
    r"(?:std::)?(?:uint8_t|uint16_t|uint32_t|int8_t|int16_t|int32_t|"
    r"short|char)\s*\)\s*[\w(*&]"
)


def expected_guard(path: Path, root: Path) -> str:
    parts = path.relative_to(root / "src").parts
    return "FDIP_" + "_".join(p.upper().replace(".", "_").replace("-", "_")
                              for p in parts) + "_"


def lint_content(findings: list[str], root: Path) -> None:
    for path in source_files(root):
        name = rel(path, root)
        text = strip_comments_and_strings(path.read_text())
        for lineno, line in enumerate(text.splitlines(), 1):
            if name not in RAND_ALLOWLIST and RE_LIBC_RAND.search(line):
                findings.append(
                    f"{name}:{lineno}: libc rand()/srand() is banned; "
                    f"use util/rng.h (deterministic, seedable)")
            if name not in NEW_ALLOWLIST and RE_RAW_NEW.search(line):
                findings.append(
                    f"{name}:{lineno}: raw `new` is banned; use "
                    f"std::make_unique or a container")
            if RE_C_CAST.search(line):
                findings.append(
                    f"{name}:{lineno}: C-style narrowing cast; use "
                    f"static_cast")


def lint_guards(findings: list[str], root: Path) -> None:
    for path in sorted((root / "src").rglob("*.h")):
        text = path.read_text()
        guard = expected_guard(path, root)
        if f"#ifndef {guard}" not in text or f"#define {guard}" not in text:
            findings.append(
                f"{rel(path, root)}: missing or misnamed include guard "
                f"(expected {guard})")


def lint_self_contained(findings: list[str], root: Path, jobs: int) -> None:
    src = root / "src"
    headers = sorted(src.rglob("*.h"))
    with tempfile.TemporaryDirectory() as tmp:
        procs: list[tuple[Path, subprocess.Popen]] = []

        def drain(limit: int) -> None:
            while len(procs) > limit:
                hdr, proc = procs.pop(0)
                _, err = proc.communicate()
                if proc.returncode != 0:
                    tail = "\n    ".join(
                        err.decode(errors="replace").splitlines()[:6])
                    findings.append(
                        f"{rel(hdr, root)}: header is not self-contained:\n"
                        f"    {tail}")

        for idx, hdr in enumerate(headers):
            tu = Path(tmp) / f"tu_{idx}.cc"
            tu.write_text(
                f'#include "{rel(hdr, root)[len("src/"):]}"\n')
            cmd = ["g++", "-std=c++20", "-fsyntax-only",
                   f"-I{src}", str(tu)]
            procs.append(
                (hdr, subprocess.Popen(cmd, stdout=subprocess.PIPE,
                                       stderr=subprocess.PIPE)))
            drain(jobs)
        drain(0)


def collect_findings(root: Path = REPO, jobs: int = 8,
                     skip_syntax: bool = False) -> list[str]:
    """Runs every pass over <root>/src and returns the findings."""
    findings: list[str] = []
    lint_content(findings, root)
    lint_guards(findings, root)
    if not skip_syntax:
        lint_self_contained(findings, root, max(1, jobs))
    return findings


def main() -> int:
    ap = make_parser(__doc__)
    ap.add_argument("--skip-syntax", action="store_true",
                    help="skip the (slower) self-contained-header pass")
    ap.add_argument("-j", "--jobs", type=int, default=8,
                    help="parallel compiler invocations (default 8)")
    args = ap.parse_args()

    findings = collect_findings(args.root.resolve(), args.jobs,
                                args.skip_syntax)
    return report("check_sources", findings)


if __name__ == "__main__":
    sys.exit(main())
