#!/usr/bin/env python3
"""Single entry point for the repo's lint suite.

Runs the seven tree lints in one invocation with a combined report:

  sources       check_sources.py      header hygiene + content bans
  determinism   check_determinism.py  wallclock/rand/getenv bans
  concurrency   check_concurrency.py  ambient-state + threading bans
  hotpath       check_hotpath.py      banned ops inside annotated code
  hotgraph      check_hotgraph.py     call-graph closure + layering
  statespace    check_statespace.py   state census + schema/reset/taint
  trace         check_trace.py        only when --trace names a file

Each lint keeps its own CLI (they all speak the shared --root /
exit-code contract from lintlib.py); this runner execs them as
subprocesses so one crashing lint cannot take the others down, then
exits 0 only when every selected lint exited 0. CI's lint job and
local pre-push hooks call this instead of five separate commands.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent

sys.path.insert(0, str(HERE))
from lintlib import REPO  # noqa: E402

#: name -> script + extra-arg builder. Order is cheap-first so a
#: broken tree fails fast; sources (which compiles every header) last.
LINTS = ("determinism", "concurrency", "hotpath", "hotgraph",
         "statespace", "trace", "sources")


def lint_argv(name: str, args: argparse.Namespace) -> list[str] | None:
    """argv for one lint, or None when it is not applicable."""
    root = ["--root", str(args.root)]
    if name == "determinism":
        return [str(HERE / "check_determinism.py"), *root]
    if name == "concurrency":
        return [str(HERE / "check_concurrency.py"), *root]
    if name == "hotpath":
        return [str(HERE / "check_hotpath.py"), *root]
    if name == "hotgraph":
        argv = [str(HERE / "check_hotgraph.py"), *root,
                "--frontend", args.hotgraph_frontend]
        if args.hotgraph_json:
            argv += ["--json", args.hotgraph_json]
        return argv
    if name == "statespace":
        argv = [str(HERE / "check_statespace.py"), *root,
                "--frontend", args.hotgraph_frontend,
                "--census-golden",
                str(args.root / "tests/data/state_census.golden.json"),
                "--require-cert", "fdip::Btb,fdip::Tage,fdip::Cache"]
        if args.statespace_json:
            argv += ["--json", args.statespace_json]
        return argv
    if name == "trace":
        if not args.trace:
            return None
        return [str(HERE / "check_trace.py"), args.trace]
    if name == "sources":
        return [str(HERE / "check_sources.py"), *root,
                "-j", str(args.jobs)]
    raise ValueError(name)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=Path, default=REPO,
                    help="tree to lint (default: the repository)")
    ap.add_argument("-j", "--jobs", type=int, default=8,
                    help="parallel compiles for the sources lint")
    ap.add_argument("--only", default="",
                    help="comma-separated lint names to run "
                         f"(subset of {','.join(LINTS)})")
    ap.add_argument("--skip", default="",
                    help="comma-separated lint names to skip")
    ap.add_argument("--trace", default=None,
                    help="trace JSON to validate with check_trace")
    ap.add_argument("--hotgraph-frontend", default="builtin",
                    choices=("auto", "builtin", "clang"),
                    help="frontend for check_hotgraph "
                         "(default: builtin)")
    ap.add_argument("--hotgraph-json", default=None, metavar="PATH",
                    help="write check_hotgraph's JSON report here")
    ap.add_argument("--statespace-json", default=None, metavar="PATH",
                    help="write check_statespace's JSON report here")
    args = ap.parse_args()

    only = {s for s in args.only.split(",") if s}
    skip = {s for s in args.skip.split(",") if s}
    for name in (only | skip) - set(LINTS):
        ap.error(f"unknown lint {name!r} (have: {', '.join(LINTS)})")

    selected = [n for n in LINTS
                if (not only or n in only) and n not in skip]
    statuses: dict[str, int] = {}
    for name in selected:
        argv = lint_argv(name, args)
        if argv is None:
            continue
        print(f"== {name} ==", flush=True)
        statuses[name] = subprocess.run(
            [sys.executable, *argv]).returncode

    failed = {n: rc for n, rc in statuses.items() if rc != 0}
    print(f"run_lints: {len(statuses) - len(failed)}/{len(statuses)} "
          "clean" + (f"; failed: " + ", ".join(
              f"{n} (exit {rc})" for n, rc in failed.items())
              if failed else ""))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
