#!/usr/bin/env python3
"""Hot-path lint: the tick loop must not allocate, throw, or block.

src/util/hotpath.h marks the per-tick call graph two ways:

  FDIP_HOT_PATH       on a function definition - the whole body is hot.
  FDIP_HOT_REGION_BEGIN(name) / FDIP_HOT_REGION_END(name)
                      around a span inside an otherwise-cold function
                      (e.g. the tick loop inside Core::run).

This lint parses those annotations out of the stripped source text and
bans, inside every hot function body and hot region:

  1. heap allocation    `new`, make_unique/make_shared, and growing
                        std-container calls (push_back, emplace*,
                        insert, resize, reserve, assign). The repo's
                        fixed-capacity types (FixedVector, FlatMap,
                        CircularQueue) use camelCase members precisely
                        so steady-state mutation does not collide with
                        these bans.
  2. std::string        construction and formatting (std::string,
                        std::to_string, stringstreams) - every one
                        allocates.
  3. std::function      type-erased callables allocate on capture;
                        hot callbacks use direct calls or refs bound
                        at setup time.
  4. throw              hot code reports invariant violations through
                        FDIP_CHECK / fdip_panic (which the macro layer
                        owns), never ad-hoc throws.
  5. iostream/printf    formatting and I/O (std::cout/cerr/clog,
                        std::format, printf-family).
  6. lock acquisition   std::mutex/lock_guard/unique_lock/scoped_lock
                        and .lock() calls - the tick loop is
                        single-threaded by design; blocking in it is a
                        structural bug.

A FDIP_HOT_PATH token must annotate a *definition*: annotating a bare
declaration is itself a finding, because the lint (and the reader)
would otherwise believe a body is covered when it is not.

Files with a justified exception live in HOT_ALLOWLIST with a written
rationale (docs/ANALYSIS.md section 7 has the procedure); an
allowlisted path that no longer exists is a finding, so the escape
hatch cannot outlive the file it excused.

Runtime ground truth for ban 1 is tests/core_hotpath_test.cc, which
interposes a counting operator new/delete and proves Core::run does
zero steady-state heap allocations; this lint is the layer that names
the offending line before anyone runs a binary.

Exit status: 0 when clean, 1 with findings listed on stderr.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lintlib import (REPO, blank_preprocessor_lines, line_of, make_parser,
                     rel, report, source_files, stale_allowlist_findings,
                     strip_comments_and_strings)

# Exact-path exceptions to every hot-path ban. Each entry needs a
# written justification here and in docs/ANALYSIS.md section 7.
# (Currently empty: the whole annotated tick path complies.)
HOT_ALLOWLIST: set[str] = set()

# (pattern, message) applied to stripped code inside hot spans.
BAN_RULES: list[tuple[re.Pattern[str], str]] = [
    (re.compile(r"\bnew\b"),
     "heap allocation (`new`) is banned on the hot path"),
    (re.compile(r"\bmake_(?:unique|shared)\s*<"),
     "heap allocation (make_unique/make_shared) is banned on the "
     "hot path"),
    (re.compile(r"(?:\.|->)(?:push_back|emplace_back|emplace_front|"
                r"emplace|push_front|insert|resize|reserve|assign)"
                r"\s*\("),
     "growing std-container call is banned on the hot path; use the "
     "fixed-capacity types (FixedVector/FlatMap/CircularQueue)"),
    (re.compile(r"\bstd::(?:string|to_string|[io]?stringstream)\b"),
     "std::string construction is banned on the hot path"),
    (re.compile(r"\bstd::function\b"),
     "std::function is banned on the hot path; bind callables at "
     "setup time"),
    (re.compile(r"\bthrow\b"),
     "`throw` is banned on the hot path; report via FDIP_CHECK or "
     "fdip_panic"),
    (re.compile(r"\bstd::(?:cout|cerr|clog|format)\b|"
                r"(?<![\w:])(?:printf|fprintf|sprintf|snprintf|puts|"
                r"fputs)\s*\("),
     "iostream/printf formatting is banned on the hot path"),
    (re.compile(r"\bstd::(?:mutex|lock_guard|unique_lock|scoped_lock|"
                r"condition_variable)\b|(?:\.|->)lock\s*\("),
     "lock acquisition is banned on the hot path (the tick loop is "
     "single-threaded)"),
]

HOT_PATH_TOKEN = re.compile(r"\bFDIP_HOT_PATH\b")
REGION_BEGIN = re.compile(r"\bFDIP_HOT_REGION_BEGIN\s*\(\s*(\w+)\s*\)")
REGION_END = re.compile(r"\bFDIP_HOT_REGION_END\s*\(\s*(\w+)\s*\)")


def match_brace_span(text: str, open_pos: int) -> int | None:
    """End offset (exclusive) of the brace block opening at @p open_pos.

    @p text must already be stripped of comments and strings, so every
    brace is structural. Returns None if the block never closes.
    """
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return None


def hot_function_spans(name: str, text: str,
                       findings: list[str]) -> list[tuple[int, int]]:
    """(start, end) body spans of FDIP_HOT_PATH functions in @p text."""
    spans: list[tuple[int, int]] = []
    for tok in HOT_PATH_TOKEN.finditer(text):
        lineno = line_of(text, tok.start())
        brace = text.find("{", tok.end())
        semi = text.find(";", tok.end())
        if brace < 0 or (0 <= semi < brace):
            findings.append(
                f"{name}:{lineno}: FDIP_HOT_PATH annotates a "
                "declaration; annotate the definition so the lint can "
                "check the body")
            continue
        end = match_brace_span(text, brace)
        if end is None:
            findings.append(
                f"{name}:{lineno}: unbalanced braces after "
                "FDIP_HOT_PATH (cannot find end of function body)")
            continue
        spans.append((brace, end))
    return spans


def hot_region_spans(name: str, text: str,
                     findings: list[str]) -> list[tuple[int, int]]:
    """(start, end) spans between region BEGIN/END markers."""
    marks = sorted(
        [(m.start(), m.end(), "begin", m.group(1))
         for m in REGION_BEGIN.finditer(text)] +
        [(m.start(), m.end(), "end", m.group(1))
         for m in REGION_END.finditer(text)])
    spans: list[tuple[int, int]] = []
    stack: list[tuple[int, str]] = []  # (end offset of BEGIN, name)
    for start, end, kind, region in marks:
        lineno = line_of(text, start)
        if kind == "begin":
            stack.append((end, region))
        elif not stack:
            findings.append(
                f"{name}:{lineno}: FDIP_HOT_REGION_END({region}) "
                "without a matching BEGIN")
        else:
            begin_end, begin_name = stack.pop()
            if begin_name != region:
                findings.append(
                    f"{name}:{lineno}: FDIP_HOT_REGION_END({region}) "
                    f"closes FDIP_HOT_REGION_BEGIN({begin_name})")
            spans.append((begin_end, start))
    for begin_end, region in stack:
        findings.append(
            f"{name}:{line_of(text, begin_end)}: "
            f"FDIP_HOT_REGION_BEGIN({region}) is never closed")
    return spans


def collect_findings(root: Path = REPO,
                     hot_allowlist: set[str] | None = None) -> list[str]:
    """Runs the lint over <root>/src and returns the findings."""
    allow = HOT_ALLOWLIST if hot_allowlist is None else hot_allowlist

    findings: list[str] = []
    for path in source_files(root):
        name = rel(path, root)
        if name in allow:
            continue
        text = blank_preprocessor_lines(
            strip_comments_and_strings(path.read_text()))
        spans = (hot_function_spans(name, text, findings) +
                 hot_region_spans(name, text, findings))
        for start, end in spans:
            for pattern, message in BAN_RULES:
                for m in pattern.finditer(text, start, end):
                    findings.append(
                        f"{name}:{line_of(text, m.start())}: {message}")
    findings.sort()
    findings.extend(stale_allowlist_findings(root, allow))
    return findings


def main() -> int:
    args = make_parser(__doc__).parse_args()
    return report("check_hotpath", collect_findings(args.root.resolve()))


if __name__ == "__main__":
    sys.exit(main())
