#!/usr/bin/env python3
"""Concurrency lint: worker-path code owns no ambient shared state.

The parallel experiment engine's contract (docs/ANALYSIS.md §6) is
that every run is an independent unit of work: all synchronization
flows through the capability-annotated wrappers in src/util/sync.h so
clang's -Wthread-safety analysis can see it, and nothing under src/
quietly shares state behind the workers' backs. This lint enforces
the textual half of that contract over all of src/:

  1. raw-primitives    std::mutex / std::lock_guard / std::unique_lock
                       / std::atomic / std::condition_variable /
                       semaphores / latches / barriers / call_once /
                       pthread_* (and their headers) are banned outside
                       src/util/sync.h. The wrappers carry the
                       thread-safety annotations; a raw primitive is
                       invisible to the capability analysis.
  2. no-static-state   mutable `static` variables (namespace-scope,
                       function-local, or class-static) and
                       `thread_local` are banned: ambient state shared
                       across runs breaks the per-run ownership model.
                       const/constexpr statics are fine.
  3. no-global-state   mutable variable definitions at namespace scope
                       (including anonymous namespaces) are banned for
                       the same reason, `static` keyword or not.

Exact-path allowlists (same style as check_determinism.py) name the
justified exceptions; the lint fails if an allowlisted file
disappears, so the escape hatch cannot silently widen.

The lint runs against the repository by default; --root (plus the
allowlist parameters of collect_findings) points it at any tree with
the same src/ layout, which is how the fixture suite in
tools/lint/tests/ exercises it.

Exit status: 0 when clean, 1 with findings listed on stderr.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lintlib import (REPO, blank_preprocessor_lines, line_of, make_parser,
                     rel, report, source_files, stale_allowlist_findings,
                     strip_comments_and_strings)

# The one place raw primitives may appear: the annotated wrappers.
PRIMITIVE_ALLOWLIST = {"src/util/sync.h"}

# Static mutable state with a written justification: the log
# serialization mutex (process-wide by design — it serializes stderr/
# stdout, which are process-wide resources).
STATIC_STATE_ALLOWLIST = {"src/util/log.cc"}

# thread_local with a written justification: the invariant-scope stack
# is deliberately thread-confined diagnostics context — each worker
# owns its own scope path and nothing crosses threads.
THREAD_LOCAL_ALLOWLIST = {"src/util/invariant.h"}

RAW_PRIMITIVE_RULES: list[tuple[re.Pattern[str], str]] = [
    (re.compile(r"std::(?:recursive_|timed_|recursive_timed_|"
                r"shared_|shared_timed_)?mutex\b"),
     "raw std mutexes are banned; use fdip::Mutex (util/sync.h)"),
    (re.compile(r"std::(?:lock_guard|unique_lock|scoped_lock|"
                r"shared_lock)\b"),
     "raw std lock guards are banned; use fdip::MutexLock "
     "(util/sync.h)"),
    (re.compile(r"std::atomic"),
     "raw std::atomic is banned; use fdip::Atomic (util/sync.h)"),
    (re.compile(r"std::condition_variable"),
     "std::condition_variable is banned; build on util/sync.h"),
    (re.compile(r"std::(?:counting_semaphore|binary_semaphore|latch|"
                r"barrier)\b"),
     "raw std synchronization primitives are banned; build on "
     "util/sync.h"),
    (re.compile(r"std::(?:call_once|once_flag)\b"),
     "std::call_once is hidden synchronization; build on util/sync.h"),
    (re.compile(r"\bpthread_\w+"),
     "pthreads are banned; use std::thread + util/sync.h"),
    (re.compile(r"#\s*include\s*<(?:mutex|atomic|condition_variable|"
                r"shared_mutex|semaphore|latch|barrier)>"),
     "concurrency headers are banned outside util/sync.h"),
]

# Keywords that mark a namespace-scope statement as not-a-variable.
NON_DECL_KEYWORDS = frozenset({
    "using", "typedef", "extern", "friend", "template", "struct",
    "class", "enum", "concept", "namespace", "operator", "requires",
    "static_assert",
})

IMMUTABLE_KEYWORDS = frozenset({"const", "constexpr", "consteval"})

RE_WORD = re.compile(r"[A-Za-z_]\w*")
RE_STATIC = re.compile(r"\bstatic\b")
RE_THREAD_LOCAL = re.compile(r"\bthread_local\b")


def statement_head(text: str, start: int) -> str:
    """The statement text from @p start up to the first ';' or '{'."""
    end = len(text)
    for ch in (";", "{"):
        pos = text.find(ch, start)
        if pos != -1:
            end = min(end, pos)
    return text[start:end]


def is_function_like(stmt: str) -> bool:
    """True when the head reads as a function declaration/definition:
    a '(' appears before any '=' (a variable initializer)."""
    paren = stmt.find("(")
    eq = stmt.find("=")
    return paren != -1 and (eq == -1 or paren < eq)


def words(stmt: str) -> set[str]:
    return set(RE_WORD.findall(stmt))


def is_mutable_state_decl(stmt: str) -> bool:
    """True when a statement head declares a mutable variable."""
    body = stmt.strip()
    if not body or not re.match(r"[A-Za-z_:\[]", body):
        return False
    w = words(body)
    if w & NON_DECL_KEYWORDS:
        return False
    if w & IMMUTABLE_KEYWORDS:
        return False
    if is_function_like(body):
        return False
    # A declaration needs at least a type and a name.
    return len(RE_WORD.findall(body)) >= 2


def lint_static_state(findings: list[str], name: str, text: str) -> None:
    """Rule 2: mutable `static` at any scope."""
    for m in RE_STATIC.finditer(text):
        head = statement_head(text, m.start())
        if is_function_like(head):
            continue
        if words(head) & IMMUTABLE_KEYWORDS:
            continue
        findings.append(
            f"{name}:{line_of(text, m.start())}: mutable static state "
            f"is ambient shared state; plumb per-run state explicitly")


def lint_namespace_state(findings: list[str], name: str,
                         text: str) -> None:
    """Rule 3: mutable variable definitions at namespace scope.

    Walks the brace structure: a '{' opens a namespace block when the
    pending statement contains the `namespace` keyword, anything else
    (function bodies, classes, initializers) is opaque. Statements
    ending in ';' while every enclosing block is a namespace are
    candidate declarations.
    """
    stack: list[bool] = []  # True = namespace block
    stmt_start = 0
    for i, ch in enumerate(text):
        if ch == "{":
            pending = text[stmt_start:i]
            at_ns_scope = all(stack)
            is_ns = "namespace" in words(pending)
            if (at_ns_scope and not is_ns
                    and is_mutable_state_decl(pending)
                    and "static" not in words(pending)):
                # Braced initializer of a namespace-scope variable
                # (`Foo bar{...};`). Statics are rule 2's finding.
                findings.append(
                    f"{name}:{line_of(text, stmt_start)}: mutable "
                    f"namespace-scope state is ambient shared state; "
                    f"plumb per-run state explicitly")
            stack.append(is_ns)
            stmt_start = i + 1
        elif ch == "}":
            if stack:
                stack.pop()
            stmt_start = i + 1
        elif ch == ";":
            stmt = text[stmt_start:i]
            if (all(stack) and "static" not in words(stmt)
                    and is_mutable_state_decl(stmt)):
                findings.append(
                    f"{name}:{line_of(text, stmt_start)}: mutable "
                    f"namespace-scope state is ambient shared state; "
                    f"plumb per-run state explicitly")
            stmt_start = i + 1
    return


def collect_findings(root: Path = REPO,
                     primitive_allowlist: set[str] | None = None,
                     static_allowlist: set[str] | None = None,
                     thread_local_allowlist: set[str] | None = None
                     ) -> list[str]:
    """Runs the lint over <root>/src and returns the findings."""
    primitives = (PRIMITIVE_ALLOWLIST if primitive_allowlist is None
                  else primitive_allowlist)
    statics = (STATIC_STATE_ALLOWLIST if static_allowlist is None
               else static_allowlist)
    tls = (THREAD_LOCAL_ALLOWLIST if thread_local_allowlist is None
           else thread_local_allowlist)

    findings: list[str] = []
    for path in source_files(root):
        name = rel(path, root)
        stripped = strip_comments_and_strings(path.read_text())
        # The statement-level passes must not see #-directives (a macro
        # body is not a declaration); the primitive scan must, so the
        # header-include ban can fire.
        code = blank_preprocessor_lines(stripped)

        if name not in primitives:
            for lineno, line in enumerate(stripped.splitlines(), 1):
                for pattern, message in RAW_PRIMITIVE_RULES:
                    if pattern.search(line):
                        findings.append(f"{name}:{lineno}: {message}")

        if name not in statics:
            lint_static_state(findings, name, code)
            lint_namespace_state(findings, name, code)
        if name not in tls:
            for m in RE_THREAD_LOCAL.finditer(code):
                findings.append(
                    f"{name}:{line_of(code, m.start())}: thread_local "
                    f"is ambient per-thread state; plumb per-run state "
                    f"explicitly")

    findings.extend(stale_allowlist_findings(root, primitives, statics,
                                             tls))
    return findings


def main() -> int:
    args = make_parser(__doc__).parse_args()
    return report("check_concurrency",
                  collect_findings(args.root.resolve()))


if __name__ == "__main__":
    sys.exit(main())
