#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file produced by the simulator.

Checks, in order:
  1. The file parses as JSON and has a top-level "traceEvents" list.
  2. Every event carries the mandatory fields for its phase, with a
     phase drawn from the set the simulator emits ("i" instant, "b"/"e"
     async span, "C" counter, "M" metadata).
  3. Async begin/end events pair up per (name, id) with non-negative
     span durations and no double-begun or double-ended spans. Spans
     still open at the end of the file are allowed — the simulation
     ends with fills legitimately in flight — but are reported.
  4. Timestamps never go backwards: the writer streams events in
     simulated-cycle order, so a regression means interleaved writers
     (a determinism bug) or a corrupted file.
  5. Optional: --require asserts that specific event names are present,
     so CI catches a refactor that silently stops emitting a site.

Exit status 0 when the trace is valid, 1 otherwise (2 for usage/IO
errors), printing every problem found rather than the first.

Usage:
  check_trace.py TRACE.json [--require name,name,...] [--min-events N]
"""

import argparse
import json
import sys

ALLOWED_PHASES = {"i", "b", "e", "C", "M"}

# Fields every non-metadata event must carry. Metadata ("M") events
# name lanes before the clock starts, so they have no timestamp.
REQUIRED_FIELDS = {"ph", "name", "pid", "tid"}


def check_trace(path, require_names, min_events):
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return ["%s: cannot parse: %s" % (path, e)]

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["%s: top level must be an object with 'traceEvents'" % path]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["%s: 'traceEvents' must be a list" % path]

    open_spans = {}
    closed_spans = 0
    last_ts = None
    seen_names = set()

    for i, ev in enumerate(events):
        where = "event %d" % i
        if not isinstance(ev, dict):
            problems.append("%s: not an object" % where)
            continue
        missing = REQUIRED_FIELDS - set(ev)
        if missing:
            problems.append("%s: missing %s" % (where, sorted(missing)))
            continue
        ph = ev["ph"]
        seen_names.add(ev["name"])
        if ph not in ALLOWED_PHASES:
            problems.append("%s: unexpected phase %r" % (where, ph))
            continue
        if ph == "M":
            continue

        if "ts" not in ev:
            problems.append("%s: %r event has no 'ts'" % (where, ph))
            continue
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append("%s: bad timestamp %r" % (where, ts))
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(
                "%s: timestamp went backwards (%s -> %s); the writer "
                "streams in cycle order" % (where, last_ts, ts))
        last_ts = ts

        if ph in ("b", "e"):
            if "id" not in ev:
                problems.append("%s: async %r event has no 'id'" %
                                (where, ph))
                continue
            key = (ev["name"], ev["id"])
            if ph == "b":
                if key in open_spans:
                    problems.append("%s: span %r begun twice" %
                                    (where, key))
                open_spans[key] = ts
            else:
                if key not in open_spans:
                    problems.append("%s: end without begin for %r" %
                                    (where, key))
                    continue
                if ts < open_spans.pop(key):
                    problems.append("%s: span %r has negative duration" %
                                    (where, key))
                closed_spans += 1

    if len(events) < min_events:
        problems.append("only %d events (expected >= %d)" %
                        (len(events), min_events))
    for name in require_names:
        if name not in seen_names:
            problems.append("required event name %r never emitted" % name)

    if not problems:
        print("%s: OK (%d events, %d async spans closed, %d still in "
              "flight, %d distinct names)" %
              (path, len(events), closed_spans, len(open_spans),
               len(seen_names)))
    return problems


def main():
    ap = argparse.ArgumentParser(
        description="Validate a simulator Chrome trace-event file.")
    ap.add_argument("trace", help="trace JSON file to check")
    ap.add_argument("--require", default="",
                    help="comma-separated event names that must appear")
    ap.add_argument("--min-events", type=int, default=1,
                    help="minimum number of events (default 1)")
    args = ap.parse_args()

    require = [n for n in args.require.split(",") if n]
    problems = check_trace(args.trace, require, args.min_events)
    for p in problems:
        print("FAIL %s" % p, file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
