// Ghost-state fixture, all three flavours: a member with no
// FDIP_STATE_* classification at all, an FDIP_STATE_ARCH claim
// naming a field the schema never declares, and arch state kept in a
// class that declares no StorageSchema (invisible to the budget).
#ifndef FDIP_FIXTURE_STATESPACE_GHOST_H_
#define FDIP_FIXTURE_STATESPACE_GHOST_H_

#include <string>

#ifndef FDIP_STATE_ARCH
#define FDIP_STATE_ARCH(...)
#define FDIP_STATE_MICRO
#define FDIP_STATE_HOST
#endif

namespace fdip
{

struct StorageSchema
{
    StorageSchema &add(const std::string &, unsigned, unsigned = 1)
    {
        return *this;
    }
};

class Ghosty
{
  public:
    StorageSchema storageSchema() const
    {
        StorageSchema s;
        s.add("valid", 1, 8);
        return s;
    }

  private:
    // 'lru' is not in the schema: ghost state.
    FDIP_STATE_ARCH(valid, lru) unsigned table_[8] = {};
    unsigned stray_ = 0; ///< No classification at all.
};

class Naked
{
  private:
    // Arch state in a schema-less class: unaccounted storage.
    FDIP_STATE_ARCH(bits) unsigned raw_ = 0;
};

} // namespace fdip

#endif // FDIP_FIXTURE_STATESPACE_GHOST_H_
