// Staleness fixture: a perfectly clean audited class. Self-tests run
// the audit over this tree with an allowlist entry that matches
// nothing and assert the entry itself becomes a finding.
#ifndef FDIP_FIXTURE_STATESPACE_CALM_H_
#define FDIP_FIXTURE_STATESPACE_CALM_H_

#ifndef FDIP_STATE_ARCH
#define FDIP_STATE_ARCH(...)
#define FDIP_STATE_MICRO
#define FDIP_STATE_HOST
#endif

namespace fdip
{

class Calm
{
  private:
    FDIP_STATE_MICRO unsigned level_ = 0;
};

} // namespace fdip

#endif // FDIP_FIXTURE_STATESPACE_CALM_H_
