// Clean state-space fixture: every member classified, the schema and
// the FDIP_STATE_ARCH claims match in both directions (including a
// dynamic `fold...` prefix claim), scalars are covered by NSDMI, the
// constructor init list, or the reset() call-graph closure, the
// `sub` delegation points at an audited class, and the lone host
// member is never touched by hot code. The macro fallbacks keep the
// file compilable as plain C++; the textual frontend never sees
// preprocessor lines.
#ifndef FDIP_FIXTURE_STATESPACE_TINY_H_
#define FDIP_FIXTURE_STATESPACE_TINY_H_

#include <string>

#ifndef FDIP_HOT_PATH
#define FDIP_HOT_PATH __attribute__((hot))
#endif
#ifndef FDIP_STATE_ARCH
#define FDIP_STATE_ARCH(...)
#define FDIP_STATE_MICRO
#define FDIP_STATE_HOST
#endif

namespace fdip
{

struct StorageSchema
{
    StorageSchema &add(const std::string &, unsigned, unsigned = 1)
    {
        return *this;
    }
};

class Tiny
{
  public:
    Tiny() : sets_(4) {}

    StorageSchema storageSchema() const
    {
        StorageSchema s;
        s.add("valid", 1, 16)
            .add("tag", 9, 16)
            .add("fold" + std::to_string(sets_), 7);
        return s;
    }

    FDIP_HOT_PATH unsigned probe(unsigned i)
    {
        hits_ += 1;
        return table_[i & 15u] + fold_;
    }

    void reset() { zero(); }

  private:
    // Reset coverage through the closure, not a direct reset() body.
    void zero() { head_ = 0; }

    FDIP_STATE_ARCH(valid, tag) unsigned table_[16] = {};
    FDIP_STATE_ARCH(fold...) unsigned fold_ = 0;
    FDIP_STATE_MICRO unsigned sets_; ///< Constructor init list.
    FDIP_STATE_MICRO unsigned head_; ///< reset() closure.
    FDIP_STATE_MICRO unsigned long hits_ = 0;
    FDIP_STATE_HOST double wallSeconds_ = 0.0; ///< Cold-only telemetry.
};

class Outer
{
  public:
    FDIP_HOT_PATH unsigned poke(unsigned i) { return inner_.probe(i); }

  private:
    FDIP_STATE_ARCH(sub) Tiny inner_;
};

} // namespace fdip

#endif // FDIP_FIXTURE_STATESPACE_TINY_H_
