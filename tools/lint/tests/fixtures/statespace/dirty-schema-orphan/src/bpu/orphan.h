// Schema-orphan fixture: the schema charges a field ('lru') that no
// FDIP_STATE_ARCH member claims — accounting without state.
#ifndef FDIP_FIXTURE_STATESPACE_ORPHAN_H_
#define FDIP_FIXTURE_STATESPACE_ORPHAN_H_

#include <string>

#ifndef FDIP_STATE_ARCH
#define FDIP_STATE_ARCH(...)
#define FDIP_STATE_MICRO
#define FDIP_STATE_HOST
#endif

namespace fdip
{

struct StorageSchema
{
    StorageSchema &add(const std::string &, unsigned, unsigned = 1)
    {
        return *this;
    }
};

class Orphan
{
  public:
    StorageSchema storageSchema() const
    {
        StorageSchema s;
        s.add("valid", 1, 8).add("lru", 2, 8);
        return s;
    }

  private:
    FDIP_STATE_ARCH(valid) unsigned table_[8] = {};
};

} // namespace fdip

#endif // FDIP_FIXTURE_STATESPACE_ORPHAN_H_
