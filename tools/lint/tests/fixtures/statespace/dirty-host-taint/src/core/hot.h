// Host-taint fixture: a FDIP_STATE_HOST member read and written
// inside a FDIP_HOT_PATH function in a non-obs module — host
// telemetry leaking into architectural code.
#ifndef FDIP_FIXTURE_STATESPACE_HOT_H_
#define FDIP_FIXTURE_STATESPACE_HOT_H_

#ifndef FDIP_HOT_PATH
#define FDIP_HOT_PATH __attribute__((hot))
#endif
#ifndef FDIP_STATE_ARCH
#define FDIP_STATE_ARCH(...)
#define FDIP_STATE_MICRO
#define FDIP_STATE_HOST
#endif

namespace fdip
{

class Stamper
{
  public:
    FDIP_HOT_PATH unsigned long tick()
    {
        lastNs_ += 1;
        return lastNs_;
    }

  private:
    FDIP_STATE_HOST unsigned long lastNs_ = 0;
};

} // namespace fdip

#endif // FDIP_FIXTURE_STATESPACE_HOT_H_
