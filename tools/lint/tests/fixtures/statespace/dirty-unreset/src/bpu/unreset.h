// Reset-coverage fixture: pos_ has no NSDMI, no constructor
// init-list entry, and no assignment anywhere in the
// constructor/reset() closure — stale state across runs. ok_ is the
// control: identical declaration, but reset() covers it.
#ifndef FDIP_FIXTURE_STATESPACE_UNRESET_H_
#define FDIP_FIXTURE_STATESPACE_UNRESET_H_

#ifndef FDIP_STATE_ARCH
#define FDIP_STATE_ARCH(...)
#define FDIP_STATE_MICRO
#define FDIP_STATE_HOST
#endif

namespace fdip
{

class Unreset
{
  public:
    Unreset() {}

    void reset() { ok_ = 0; }

  private:
    FDIP_STATE_MICRO unsigned ok_;
    FDIP_STATE_MICRO unsigned pos_;
};

} // namespace fdip

#endif // FDIP_FIXTURE_STATESPACE_UNRESET_H_
