// Target of the seeded upward include from src/obs/probe.h.
#ifndef FDIP_CORE_ENGINE_H_
#define FDIP_CORE_ENGINE_H_

namespace fdip
{

struct Engine {
    unsigned ticks = 0;
};

} // namespace fdip

#endif // FDIP_CORE_ENGINE_H_
