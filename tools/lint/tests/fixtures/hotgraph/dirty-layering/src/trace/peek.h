// Seeded violation: trace and obs are both rank 2 — a same-rank
// cross-module include is a back-edge too (the DAG keeps sibling
// modules independent).
#ifndef FDIP_TRACE_PEEK_H_
#define FDIP_TRACE_PEEK_H_

#include "obs/probe.h"

namespace fdip
{

struct Peek {
    Probe probe;
};

} // namespace fdip

#endif // FDIP_TRACE_PEEK_H_
