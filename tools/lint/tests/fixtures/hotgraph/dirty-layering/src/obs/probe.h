// Seeded violation: obs (rank 2) includes upward into core (rank 5).
#ifndef FDIP_OBS_PROBE_H_
#define FDIP_OBS_PROBE_H_

#include "core/engine.h"

namespace fdip
{

struct Probe {
    Engine *engine = nullptr;
};

} // namespace fdip

#endif // FDIP_OBS_PROBE_H_
