// Seeded violation: a FDIP_HOT_PATH function calls an *unannotated*
// helper that allocates. check_hotpath.py alone cannot see this (the
// banned operations sit in a body without the annotation); the
// closure analysis must report the helper as unannotated-reachable
// AND surface its heap allocation and growing-container calls.
#ifndef FDIP_UTIL_TABLE_H_
#define FDIP_UTIL_TABLE_H_

#include <vector>

#ifndef FDIP_HOT_PATH
#define FDIP_HOT_PATH __attribute__((hot))
#endif

namespace fdip
{

class Table
{
  public:
    FDIP_HOT_PATH void record(unsigned v) { append(v); }

  private:
    void append(unsigned v)
    {
        slots_.push_back(v);
        scratch_ = new unsigned[8];
        scratch_[0] = v;
    }

    std::vector<unsigned> slots_;
    unsigned *scratch_ = nullptr;
};

} // namespace fdip

#endif // FDIP_UTIL_TABLE_H_
