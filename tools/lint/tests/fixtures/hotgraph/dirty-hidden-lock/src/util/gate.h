// Seeded violation two calls deep: hot enter() -> hot stage() ->
// cold guard() which takes a std::lock_guard. The analysis must walk
// the full chain and report both the missing annotation on guard()
// and the lock acquisition, with the discovery chain attached.
#ifndef FDIP_UTIL_GATE_H_
#define FDIP_UTIL_GATE_H_

#include <mutex>

#ifndef FDIP_HOT_PATH
#define FDIP_HOT_PATH __attribute__((hot))
#endif

namespace fdip
{

class Gate
{
  public:
    FDIP_HOT_PATH void enter() { stage(); }

  private:
    FDIP_HOT_PATH void stage() { guard(); }

    void guard()
    {
        std::lock_guard<std::mutex> hold(m_);
        ++depth_;
    }

    std::mutex m_;
    unsigned depth_ = 0;
};

} // namespace fdip

#endif // FDIP_UTIL_GATE_H_
