// Deliberately clean: the self-test runs this tree with allowlist
// entries and include exceptions that match nothing, asserting the
// staleness guard turns each unused escape hatch into a finding.
#ifndef FDIP_UTIL_CALM_H_
#define FDIP_UTIL_CALM_H_

#ifndef FDIP_HOT_PATH
#define FDIP_HOT_PATH __attribute__((hot))
#endif

namespace fdip
{

FDIP_HOT_PATH inline unsigned
twice(unsigned v)
{
    return v * 2u;
}

} // namespace fdip

#endif // FDIP_UTIL_CALM_H_
