// Clean hot-path closure: every reachable function carries
// FDIP_HOT_PATH, the single virtual dispatch is sealed (the concrete
// sink is final), and no banned operation appears anywhere in the
// closure. The macro fallbacks below keep the file compilable as
// plain C++ for the clang frontend; the textual frontend never sees
// preprocessor lines.
#ifndef FDIP_UTIL_RING_H_
#define FDIP_UTIL_RING_H_

#ifndef FDIP_HOT_PATH
#define FDIP_HOT_PATH __attribute__((hot))
#define FDIP_HOT_REGION_BEGIN(name) static_assert(true)
#define FDIP_HOT_REGION_END(name) static_assert(true)
#endif

namespace fdip
{

class Sink
{
  public:
    virtual ~Sink() = default;
    virtual void accept(unsigned v) = 0;
};

class CountingSink final : public Sink
{
  public:
    FDIP_HOT_PATH void accept(unsigned v) override { total_ += v; }

  private:
    unsigned total_ = 0;
};

FDIP_HOT_PATH inline unsigned
mix(unsigned v)
{
    return v * 2654435761u;
}

FDIP_HOT_PATH inline void
drain(CountingSink &sink, unsigned v)
{
    sink.accept(mix(v));
}

// A cold function whose marked span joins the closure: the region's
// calls resolve into annotated code only.
inline void
pump(CountingSink &sink)
{
    FDIP_HOT_REGION_BEGIN(pump_loop);
    for (unsigned i = 0; i < 4u; ++i) {
        drain(sink, i);
    }
    FDIP_HOT_REGION_END(pump_loop);
}

} // namespace fdip

#endif // FDIP_UTIL_RING_H_
