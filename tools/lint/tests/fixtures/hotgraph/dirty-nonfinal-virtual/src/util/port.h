// Seeded violation: a hot function dispatches through a base
// reference whose subtree is not sealed — QueuePort overrides push()
// without `final`, so the compiler cannot devirtualize the site.
// The override itself is annotated, isolating the expected findings
// to exactly one virtual-call report.
#ifndef FDIP_UTIL_PORT_H_
#define FDIP_UTIL_PORT_H_

#ifndef FDIP_HOT_PATH
#define FDIP_HOT_PATH __attribute__((hot))
#endif

namespace fdip
{

class Port
{
  public:
    virtual ~Port() = default;
    virtual void push(unsigned v) = 0;
};

class QueuePort : public Port
{
  public:
    FDIP_HOT_PATH void push(unsigned v) override { last_ = v; }

  private:
    unsigned last_ = 0;
};

FDIP_HOT_PATH inline void
forward(Port &port, unsigned v)
{
    port.push(v);
}

} // namespace fdip

#endif // FDIP_UTIL_PORT_H_
