// Clean hot-path fixture: annotated code that obeys every ban, plus
// banned-looking constructs OUTSIDE the hot spans that must NOT fire
// (false-positive regression for check_hotpath).

#include "util/good.h"

namespace fdip
{

// A hot function using only the fixed-capacity idiom (camelCase
// mutators are the repo's own preallocated types, not std growers).
FDIP_HOT_PATH void
Widget::tick(int now)
{
    ring_.pushBack(now);
    if (ring_.full())
        ring_.popBack();
    map_.put(now, now + 1);
    FDIP_CHECK(now >= 0, "string literals are stripped: push_back new");
}

// A mostly-cold function with a hot region inside: the bans apply
// only between BEGIN and END.
void
Widget::run()
{
    values_.reserve(64); // cold setup: allowed
    FDIP_HOT_REGION_BEGIN(tick_loop);
    for (int i = 0; i < 64; ++i)
        tick(i);
    FDIP_HOT_REGION_END(tick_loop);
    values_.push_back(summary()); // cold teardown: allowed
}

// An annotated declaration is a finding; a cold declaration is not.
void coldHelper();

} // namespace fdip
