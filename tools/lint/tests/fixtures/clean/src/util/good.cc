/**
 * @file
 * Clean fixture TU: file-scope constructs the lints must tolerate.
 */

#include "util/good.h"

#include <algorithm>
#include <cstdint>

namespace fixture
{
namespace
{

/// Anonymous-namespace constants are immutable — always fine.
constexpr int kTableSize = 8;
const int kDerived = kTableSize * 2;

/// File-local helper *functions* (static linkage) are not state.
static int
doubleIt(int v)
{
    return v * 2;
}

} // namespace

int
useHelpers(int v)
{
    // Mutable *locals* are per-call, not ambient state.
    int total = 0;
    for (int i = 0; i < kDerived; ++i)
        total += doubleIt(v);
    return std::max(total, kAnswer);
}

} // namespace fixture
