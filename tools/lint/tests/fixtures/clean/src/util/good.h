/**
 * @file
 * Clean fixture header: exercises every pattern the lints must NOT
 * flag. A false positive on any construct below is a lint regression.
 */

#ifndef FDIP_UTIL_GOOD_H_
#define FDIP_UTIL_GOOD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fixture
{

/// constexpr namespace-scope state is immutable — always fine.
inline constexpr int kAnswer = 42;
inline constexpr double kRatio = 0.5;

/// Type aliases are not variable declarations.
using CycleCount = std::uint64_t;
typedef std::vector<int> IntVec;

/// Enums brace-open at namespace scope without being state.
enum class Kind : std::uint8_t { kNone, kSome };

struct Config {
    int ways = 4;
    CycleCount latency{3};

    /// Static member *functions* are fine; only static data is state.
    static Config defaults() { return Config{}; }
};

/// A class whose members look like state but live per-instance.
class Counter
{
  public:
    void bump() { value_ += 1; }
    [[nodiscard]] CycleCount value() const { return value_; }

  private:
    CycleCount value_ = 0;
};

/// Free function with a const local static (immutable: allowed).
inline const std::string &
kindName(Kind k)
{
    static const std::string names[] = {"none", "some"};
    return names[static_cast<std::uint8_t>(k)];
}

/// Mentions of "mutex" or "atomic" in identifiers are not primitives.
inline int
atomicityScore(int mutexCount)
{
    return mutexCount * 2;
}

} // namespace fixture

#endif // FDIP_UTIL_GOOD_H_
