/**
 * @file
 * Dirty fixture header: include guard does not match the path (the
 * expected guard is FDIP_UTIL_BAD_GUARD_H_).
 */

#ifndef FIXTURE_WRONG_GUARD_H
#define FIXTURE_WRONG_GUARD_H

namespace fixture
{
inline constexpr int kGuarded = 1;
} // namespace fixture

#endif // FIXTURE_WRONG_GUARD_H
