/**
 * @file
 * Dirty fixture TU for check_sources + check_determinism: every
 * construct below must produce exactly one finding from the matching
 * rule. Never compiled — only linted.
 */

#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture
{

void
breakDeterminism()
{
    srand(42);                        // libc srand (sources + determinism)
    int r = rand();                   // libc rand (sources + determinism)
    std::random_device entropy;       // nondeterministic entropy source
    long now = time(nullptr);         // wall-clock time()
    long ticks = clock();             // wall-clock clock()
    auto t0 = std::chrono::steady_clock::now();   // chrono host clock
    const char *env = getenv("FDIP_FIXTURE");     // ambient env config
    (void)r; (void)now; (void)ticks; (void)t0; (void)env;
}

void
breakSources()
{
    int *leak = new int(7);           // raw new
    short narrow = (short)*leak;      // C-style narrowing cast
    (void)narrow;
}

} // namespace fixture
