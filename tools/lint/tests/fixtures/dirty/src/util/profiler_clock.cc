// Models the tick-profiler pattern (src/obs/tick_profiler.cc): a
// single std::chrono host-clock read in an observability-only
// translation unit. The determinism lint must flag it when the file
// is not allowlisted and stay silent when it is — run_lint_tests.py
// exercises both directions.

#include <chrono>
#include <cstdint>

namespace fdip
{

std::uint64_t
profilerNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace fdip
