/**
 * @file
 * Dirty fixture TU for check_concurrency: raw primitives, ambient
 * static state, and namespace-scope globals. Never compiled — only
 * linted.
 */

#include <atomic>
#include <mutex>
#include <vector>

namespace fixture
{

std::mutex g_raw_mutex;               // raw mutex + namespace-scope state
std::atomic<int> g_raw_atomic{0};     // raw atomic
int g_call_count = 0;                 // plain namespace-scope mutable state
std::vector<int> g_shared_pool{1, 2}; // brace-initialized global

namespace
{
static int s_hidden_count = 0;        // anonymous-namespace static state
} // namespace

void
breakConcurrency()
{
    std::lock_guard<std::mutex> lock(g_raw_mutex);   // raw lock guard
    static int calls = 0;                            // function-local static
    thread_local int perThread = 0;                  // thread_local state
    std::condition_variable_any *cv = nullptr;       // condition variable
    pthread_mutex_lock(nullptr);                     // pthreads
    (void)calls; (void)perThread; (void)cv;
}

} // namespace fixture
