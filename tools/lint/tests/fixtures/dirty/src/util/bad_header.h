/**
 * @file
 * Dirty fixture header: guard is correct but the header is not
 * self-contained — UndeclaredType is never defined and nothing is
 * included, so the per-header syntax TU fails to compile.
 */

#ifndef FDIP_UTIL_BAD_HEADER_H_
#define FDIP_UTIL_BAD_HEADER_H_

namespace fixture
{

inline UndeclaredType
makeOne()
{
    return UndeclaredType{};
}

} // namespace fixture

#endif // FDIP_UTIL_BAD_HEADER_H_
