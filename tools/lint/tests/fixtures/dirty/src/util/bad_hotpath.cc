// Dirty hot-path fixture: one planted violation per check_hotpath
// ban, inside annotated spans, so the self-test can assert each rule
// fires (false-negative regression).

#include "util/bad_header.h"

namespace fdip
{

// Heap growth + raw new + make_unique in a hot function.
FDIP_HOT_PATH void
Gadget::tick(int now)
{
    values_.push_back(now);             // growing std-container
    auto *leak = new int(now);          // raw new
    auto owned = std::make_unique<int>(now); // make_unique
    (void)leak;
    (void)owned;
}

// Exceptions, strings, type-erased callables.
FDIP_HOT_PATH int
Gadget::classify(int v)
{
    if (v < 0)
        throw v;                        // throw
    std::string label = "hot";          // std::string construction
    std::function<int(int)> f;          // std::function
    (void)label;
    return f ? f(v) : v;
}

// I/O and locking inside a hot region; clean before BEGIN and after
// END.
void
Gadget::run()
{
    setup();
    FDIP_HOT_REGION_BEGIN(main_loop);
    printf("tick\n");                   // printf formatting
    mu_.lock();                         // lock acquisition
    scratch_.push_back(0);              // growing std-container
    FDIP_HOT_REGION_END(main_loop);
    teardown();
}

// Mismatched region names: a finding (and the span still scans).
void
Gadget::mislabeled()
{
    FDIP_HOT_REGION_BEGIN(alpha);
    FDIP_HOT_REGION_END(beta);
}

// Annotating a declaration hides the body from the lint: a finding.
FDIP_HOT_PATH void hiddenBody(int x);

// A dangling END with no BEGIN: a finding.
void
Gadget::broken()
{
    FDIP_HOT_REGION_END(never_opened);
}

} // namespace fdip
