#!/usr/bin/env python3
"""Self-tests for the lint suite (stdlib only, run by ctest + CI).

A lint that silently stops firing is worse than no lint: the tree
drifts while CI stays green. This suite runs all seven lint scripts
(check_sources, check_determinism, check_concurrency, check_hotpath,
check_hotgraph, check_statespace, check_trace) against known-good and
known-bad fixture trees under tools/lint/tests/fixtures/ and asserts
both directions:

  - the clean tree produces zero findings (false-positive regression),
  - every deliberately planted violation in the dirty tree is found
    (false-negative regression), rule by rule,
  - the allowlist-existence guard fires for stale allowlist entries,
  - the CLI entry points return the right exit codes.

Run directly (`python3 run_lint_tests.py`) or via ctest
(`ctest -R lint_selftests`).
"""

from __future__ import annotations

import subprocess
import sys
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
LINT_DIR = HERE.parent
FIXTURES = HERE / "fixtures"
CLEAN = FIXTURES / "clean"
DIRTY = FIXTURES / "dirty"
TRACES = FIXTURES / "traces"

sys.path.insert(0, str(LINT_DIR))
import check_concurrency  # noqa: E402
import check_determinism  # noqa: E402
import check_hotpath  # noqa: E402
import check_sources  # noqa: E402
import check_trace  # noqa: E402
from hotgraph import textual as hg_textual  # noqa: E402
from hotgraph.analysis import Analysis  # noqa: E402
from hotgraph.model import (AllowEntry, IncludeException,  # noqa: E402
                            RULE_STALE_ALLOW, RULE_UNANNOTATED,
                            RULE_VIRTUAL)
from hotgraph.statespace import (StateAudit,  # noqa: E402
                                 RULE_HOST_TAINT)

HOTGRAPH = FIXTURES / "hotgraph"
STATESPACE = FIXTURES / "statespace"

NO_ALLOW: set[str] = set()


def hotgraph_findings(tree: str, allowlist=(), include_exceptions=()):
    """Rendered hotgraph findings for fixtures/hotgraph/<tree>,
    with the repo allowlists replaced by the given ones."""
    prog = hg_textual.index_tree(HOTGRAPH / tree)
    analysis = Analysis(prog, allowlist=list(allowlist),
                        include_exceptions=list(include_exceptions))
    return [f.render() for f in analysis.run()]


def statespace_audit(tree: str, allowlist=()):
    """A completed StateAudit over fixtures/statespace/<tree>, with
    the repo allowlist and certificate replaced by the given ones."""
    root = STATESPACE / tree
    prog = hg_textual.index_tree(root)
    audit = StateAudit(prog, root, allowlist=list(allowlist),
                       certificate=None)
    audit.run()
    return audit


def statespace_findings(tree: str, allowlist=()):
    return [f.render()
            for f in statespace_audit(tree, allowlist).findings]


class LintAssertions(unittest.TestCase):
    def assertFinding(self, findings, where, needle, count=None):
        """Asserts a finding for file @p where whose text has @p needle."""
        hits = [f for f in findings
                if f.startswith(where) and needle in f]
        if count is None:
            self.assertTrue(
                hits, f"no finding for {where} matching {needle!r} in:\n" +
                "\n".join(findings))
        else:
            self.assertEqual(
                len(hits), count,
                f"expected {count} finding(s) for {where} matching "
                f"{needle!r}, got {len(hits)} in:\n" + "\n".join(findings))


class CleanTreeIsClean(LintAssertions):
    """False-positive regression: zero findings on the clean tree."""

    def test_check_sources(self):
        self.assertEqual(check_sources.collect_findings(CLEAN), [])

    def test_check_determinism(self):
        self.assertEqual(
            check_determinism.collect_findings(
                CLEAN, rng_allowlist=NO_ALLOW,
                wallclock_allowlist=NO_ALLOW, getenv_allowlist=NO_ALLOW),
            [])

    def test_check_concurrency(self):
        self.assertEqual(
            check_concurrency.collect_findings(
                CLEAN, primitive_allowlist=NO_ALLOW,
                static_allowlist=NO_ALLOW,
                thread_local_allowlist=NO_ALLOW),
            [])

    def test_check_hotpath(self):
        # good_hotpath.cc keeps banned-looking tokens outside the hot
        # spans (cold reserve/push_back, string-literal mentions); none
        # may fire.
        self.assertEqual(
            check_hotpath.collect_findings(CLEAN, hot_allowlist=NO_ALLOW),
            [])


class DirtyTreeIsCaught(LintAssertions):
    """False-negative regression: every planted violation is found."""

    @classmethod
    def setUpClass(cls):
        cls.sources = check_sources.collect_findings(DIRTY)
        cls.determinism = check_determinism.collect_findings(
            DIRTY, rng_allowlist=NO_ALLOW, wallclock_allowlist=NO_ALLOW,
            getenv_allowlist=NO_ALLOW)
        cls.concurrency = check_concurrency.collect_findings(
            DIRTY, primitive_allowlist=NO_ALLOW,
            static_allowlist=NO_ALLOW, thread_local_allowlist=NO_ALLOW)
        cls.hotpath = check_hotpath.collect_findings(
            DIRTY, hot_allowlist=NO_ALLOW)

    # --- check_sources rules -----------------------------------------
    def test_libc_rand(self):
        self.assertFinding(self.sources, "src/util/bad_content.cc",
                           "rand()/srand() is banned", count=2)

    def test_raw_new(self):
        self.assertFinding(self.sources, "src/util/bad_content.cc",
                           "raw `new` is banned", count=1)

    def test_c_cast(self):
        self.assertFinding(self.sources, "src/util/bad_content.cc",
                           "C-style narrowing cast", count=1)

    def test_include_guard(self):
        self.assertFinding(self.sources, "src/util/bad_guard.h",
                           "expected FDIP_UTIL_BAD_GUARD_H_", count=1)

    def test_self_contained(self):
        self.assertFinding(self.sources, "src/util/bad_header.h",
                           "not self-contained")

    # --- check_determinism rules -------------------------------------
    def test_det_rand(self):
        self.assertFinding(self.determinism, "src/util/bad_content.cc",
                           "rand()/srand() is banned", count=2)

    def test_random_device(self):
        self.assertFinding(self.determinism, "src/util/bad_content.cc",
                           "random_device", count=1)

    def test_wallclock_time(self):
        self.assertFinding(self.determinism, "src/util/bad_content.cc",
                           "time() is banned", count=1)

    def test_wallclock_clock(self):
        self.assertFinding(self.determinism, "src/util/bad_content.cc",
                           "clock() is banned", count=1)

    def test_chrono_clock(self):
        self.assertFinding(self.determinism, "src/util/bad_content.cc",
                           "chrono host clocks", count=1)

    def test_getenv(self):
        self.assertFinding(self.determinism, "src/util/bad_content.cc",
                           "getenv() is banned", count=1)

    def test_profiler_clock_site_is_caught_when_not_allowlisted(self):
        # The tick-profiler pattern (one chrono read in an
        # observability TU) is still a violation unless the file is
        # explicitly wallclock-allowlisted.
        self.assertFinding(self.determinism,
                           "src/util/profiler_clock.cc",
                           "chrono host clocks", count=1)

    # --- check_concurrency rules -------------------------------------
    def test_raw_mutex(self):
        self.assertFinding(self.concurrency, "src/util/bad_sync.cc",
                           "raw std mutexes are banned")

    def test_raw_lock_guard(self):
        self.assertFinding(self.concurrency, "src/util/bad_sync.cc",
                           "raw std lock guards are banned", count=1)

    def test_raw_atomic(self):
        self.assertFinding(self.concurrency, "src/util/bad_sync.cc",
                           "raw std::atomic is banned", count=1)

    def test_condition_variable(self):
        self.assertFinding(self.concurrency, "src/util/bad_sync.cc",
                           "condition_variable is banned", count=1)

    def test_pthreads(self):
        self.assertFinding(self.concurrency, "src/util/bad_sync.cc",
                           "pthreads are banned", count=1)

    def test_banned_includes(self):
        self.assertFinding(self.concurrency, "src/util/bad_sync.cc",
                           "concurrency headers are banned", count=2)

    def test_static_state(self):
        # s_hidden_count (anonymous namespace) + calls (function-local).
        self.assertFinding(self.concurrency, "src/util/bad_sync.cc",
                           "mutable static state", count=2)

    def test_namespace_state(self):
        # g_raw_mutex, g_raw_atomic, g_call_count, g_shared_pool.
        self.assertFinding(self.concurrency, "src/util/bad_sync.cc",
                           "mutable namespace-scope state", count=4)

    def test_thread_local(self):
        self.assertFinding(self.concurrency, "src/util/bad_sync.cc",
                           "thread_local is ambient", count=1)

    # --- check_hotpath rules -----------------------------------------
    def test_hot_raw_new(self):
        self.assertFinding(self.hotpath, "src/util/bad_hotpath.cc",
                           "heap allocation (`new`)", count=1)

    def test_hot_make_unique(self):
        self.assertFinding(self.hotpath, "src/util/bad_hotpath.cc",
                           "make_unique/make_shared", count=1)

    def test_hot_growing_container(self):
        # One push_back in a hot function, one inside a hot region.
        self.assertFinding(self.hotpath, "src/util/bad_hotpath.cc",
                           "growing std-container", count=2)

    def test_hot_string(self):
        self.assertFinding(self.hotpath, "src/util/bad_hotpath.cc",
                           "std::string construction", count=1)

    def test_hot_function_callable(self):
        self.assertFinding(self.hotpath, "src/util/bad_hotpath.cc",
                           "std::function is banned", count=1)

    def test_hot_throw(self):
        self.assertFinding(self.hotpath, "src/util/bad_hotpath.cc",
                           "`throw` is banned", count=1)

    def test_hot_printf(self):
        self.assertFinding(self.hotpath, "src/util/bad_hotpath.cc",
                           "iostream/printf formatting", count=1)

    def test_hot_lock(self):
        self.assertFinding(self.hotpath, "src/util/bad_hotpath.cc",
                           "lock acquisition", count=1)

    def test_hot_annotated_declaration(self):
        self.assertFinding(self.hotpath, "src/util/bad_hotpath.cc",
                           "annotates a declaration", count=1)

    def test_hot_region_end_without_begin(self):
        self.assertFinding(self.hotpath, "src/util/bad_hotpath.cc",
                           "without a matching BEGIN", count=1)

    def test_hot_region_name_mismatch(self):
        self.assertFinding(
            self.hotpath, "src/util/bad_hotpath.cc",
            "FDIP_HOT_REGION_END(beta) closes "
            "FDIP_HOT_REGION_BEGIN(alpha)", count=1)


class AllowlistGuards(LintAssertions):
    """A stale allowlist entry is itself a finding."""

    def test_determinism_stale_entry(self):
        findings = check_determinism.collect_findings(
            CLEAN, rng_allowlist={"src/util/missing_rng.h"},
            wallclock_allowlist=NO_ALLOW, getenv_allowlist=NO_ALLOW)
        self.assertFinding(findings, "src/util/missing_rng.h",
                           "allowlisted file does not exist", count=1)

    def test_concurrency_stale_entry(self):
        findings = check_concurrency.collect_findings(
            CLEAN, primitive_allowlist={"src/util/missing_sync.h"},
            static_allowlist=NO_ALLOW, thread_local_allowlist=NO_ALLOW)
        self.assertFinding(findings, "src/util/missing_sync.h",
                           "allowlisted file does not exist", count=1)

    def test_allowlisted_violation_is_silent(self):
        findings = check_concurrency.collect_findings(
            DIRTY, primitive_allowlist={"src/util/bad_sync.cc"},
            static_allowlist={"src/util/bad_sync.cc"},
            thread_local_allowlist={"src/util/bad_sync.cc"})
        self.assertEqual(
            [f for f in findings if f.startswith("src/util/bad_sync.cc")],
            [])

    def test_wallclock_allowlisted_clock_site_is_silent(self):
        # Allowlisting the profiler-pattern file silences exactly its
        # clock finding (the real entry is src/obs/tick_profiler.cc).
        findings = check_determinism.collect_findings(
            DIRTY, rng_allowlist=NO_ALLOW,
            wallclock_allowlist={"src/util/profiler_clock.cc"},
            getenv_allowlist=NO_ALLOW)
        self.assertEqual(
            [f for f in findings
             if f.startswith("src/util/profiler_clock.cc")],
            [])

    def test_repo_allowlist_covers_tick_profiler(self):
        # The production allowlist must keep the profiler's single
        # clock site; dropping it would fail the repo lint run.
        self.assertIn("src/obs/tick_profiler.cc",
                      check_determinism.WALLCLOCK_ALLOWLIST)

    def test_hotpath_stale_entry(self):
        findings = check_hotpath.collect_findings(
            CLEAN, hot_allowlist={"src/util/missing_hot.cc"})
        self.assertFinding(findings, "src/util/missing_hot.cc",
                           "allowlisted file does not exist", count=1)

    def test_hotpath_allowlisted_violation_is_silent(self):
        findings = check_hotpath.collect_findings(
            DIRTY, hot_allowlist={"src/util/bad_hotpath.cc"})
        self.assertEqual(
            [f for f in findings
             if f.startswith("src/util/bad_hotpath.cc")],
            [])


class HotgraphClosure(LintAssertions):
    """check_hotgraph's closure walk: each seeded violation class in
    fixtures/hotgraph/dirty-* is caught, and the clean tree (annotated
    closure, sealed dispatch, region use) stays silent."""

    def test_clean_tree_is_clean(self):
        self.assertEqual(hotgraph_findings("clean"), [])

    def test_transitive_alloc_unannotated_helper(self):
        findings = hotgraph_findings("dirty-transitive-alloc")
        self.assertFinding(findings, "src/util/table.h",
                           "fdip::Table::append is reachable", count=1)

    def test_transitive_alloc_banned_ops_in_callee(self):
        findings = hotgraph_findings("dirty-transitive-alloc")
        self.assertFinding(findings, "src/util/table.h",
                           "growing std-container", count=1)
        self.assertFinding(findings, "src/util/table.h",
                           "heap allocation (`new`)", count=1)

    def test_transitive_alloc_reports_discovery_chain(self):
        findings = hotgraph_findings("dirty-transitive-alloc")
        self.assertFinding(
            findings, "src/util/table.h",
            "via fdip::Table::record -> fdip::Table::append")

    def test_hidden_lock_two_calls_deep(self):
        findings = hotgraph_findings("dirty-hidden-lock")
        self.assertFinding(findings, "src/util/gate.h",
                           "fdip::Gate::guard is reachable", count=1)
        # std::lock_guard and the std::mutex template argument both
        # match the lock rule on the same line.
        self.assertFinding(findings, "src/util/gate.h",
                           "lock acquisition", count=2)

    def test_nonfinal_virtual_dispatch(self):
        findings = hotgraph_findings("dirty-nonfinal-virtual")
        self.assertFinding(findings, "src/util/port.h",
                           "fdip::Port::push may dispatch virtually",
                           count=1)
        # The annotated override itself is fine: exactly one finding.
        self.assertEqual(len(findings), 1, "\n".join(findings))

    def test_layering_upward_include(self):
        findings = hotgraph_findings("dirty-layering")
        self.assertFinding(findings, "src/obs/probe.h",
                           "upward include", count=1)

    def test_layering_same_rank_include(self):
        findings = hotgraph_findings("dirty-layering")
        self.assertFinding(findings, "src/trace/peek.h",
                           "same-rank cross-module include", count=1)

    def test_stale_allow_entry_is_a_finding(self):
        findings = hotgraph_findings(
            "dirty-stale-allowlist",
            allowlist=[AllowEntry(RULE_UNANNOTATED, "src/util/calm.h",
                                  "fdip::gone", "obsolete")])
        self.assertFinding(findings, "src/util/calm.h",
                           "suppressed nothing", count=1)

    def test_stale_include_exception_is_a_finding(self):
        findings = hotgraph_findings(
            "dirty-stale-allowlist",
            include_exceptions=[IncludeException(
                "src/util/calm.h", "core", "obsolete")])
        self.assertFinding(findings, "src/util/calm.h",
                           "matched no include edge", count=1)

    def test_allowlisted_virtual_site_is_silent(self):
        findings = hotgraph_findings(
            "dirty-nonfinal-virtual",
            allowlist=[AllowEntry(RULE_VIRTUAL, "src/util/port.h",
                                  "fdip::Port::push", "fixture")])
        self.assertEqual(
            [f for f in findings if RULE_VIRTUAL in f], [])
        # ...and a *used* entry must not trip the staleness guard.
        self.assertEqual(
            [f for f in findings if RULE_STALE_ALLOW in f], [])

    def test_json_report_schema(self):
        prog = hg_textual.index_tree(HOTGRAPH / "dirty-transitive-alloc")
        analysis = Analysis(prog, allowlist=[], include_exceptions=[])
        analysis.run()
        doc = analysis.to_json()
        self.assertEqual(doc["schema"], "hot-callgraph-v1")
        self.assertEqual(doc["backend"], "builtin")
        self.assertEqual(doc["findings"], len(doc["findingList"]))
        self.assertGreater(doc["hotRoots"], 0)
        self.assertGreaterEqual(doc["reachable"], doc["hotRoots"])


class StateSpaceAudit(LintAssertions):
    """check_statespace's three rule families over the statespace
    fixture trees, both directions (clean tree silent, every planted
    violation found), plus allowlist staleness and the JSON report."""

    def test_clean_tree_is_clean(self):
        self.assertEqual(statespace_findings("clean"), [])

    def test_ghost_claim_of_undeclared_field(self):
        findings = statespace_findings("dirty-ghost-member")
        self.assertFinding(findings, "src/bpu/ghost.h",
                           "claims schema field 'lru'", count=1)

    def test_unclassified_member(self):
        findings = statespace_findings("dirty-ghost-member")
        self.assertFinding(findings, "src/bpu/ghost.h",
                           "fdip::Ghosty::stray_ carries no "
                           "FDIP_STATE_*", count=1)

    def test_arch_state_in_schemaless_class(self):
        findings = statespace_findings("dirty-ghost-member")
        self.assertFinding(findings, "src/bpu/ghost.h",
                           "fdip::Naked declares no StorageSchema",
                           count=1)
        # Exactly the three planted ghost-family violations.
        self.assertEqual(len(findings), 3, "\n".join(findings))

    def test_schema_orphan(self):
        findings = statespace_findings("dirty-schema-orphan")
        self.assertFinding(findings, "src/bpu/orphan.h",
                           "schema field 'lru' of fdip::Orphan",
                           count=1)
        self.assertEqual(len(findings), 1, "\n".join(findings))

    def test_unreset_scalar(self):
        findings = statespace_findings("dirty-unreset")
        self.assertFinding(findings, "src/bpu/unreset.h",
                           "fdip::Unreset::pos_ is FDIP_STATE_MICRO",
                           count=1)
        # ok_ (covered by reset()) must stay silent.
        self.assertEqual(len(findings), 1, "\n".join(findings))

    def test_host_taint_on_hot_closure(self):
        findings = statespace_findings("dirty-host-taint")
        self.assertFinding(findings, "src/core/hot.h",
                           "touches FDIP_STATE_HOST member "
                           "fdip::Stamper::lastNs_", count=1)
        self.assertEqual(len(findings), 1, "\n".join(findings))

    def test_host_taint_allowlisted_is_silent(self):
        findings = statespace_findings(
            "dirty-host-taint",
            allowlist=[AllowEntry(RULE_HOST_TAINT, "src/core/hot.h",
                                  "fdip::Stamper::lastNs_",
                                  "fixture")])
        # The taint is suppressed, and the *used* entry must not trip
        # the staleness guard.
        self.assertEqual(findings, [])

    def test_stale_allow_entry_is_a_finding(self):
        findings = statespace_findings(
            "dirty-stale-allowlist",
            allowlist=[AllowEntry(RULE_HOST_TAINT, "src/bpu/calm.h",
                                  "fdip::Calm::gone_", "obsolete")])
        self.assertFinding(findings, "src/bpu/calm.h",
                           "suppressed nothing", count=1)

    def test_json_report_schema(self):
        audit = statespace_audit("clean")
        doc = audit.to_json()
        self.assertEqual(doc["schema"], "state-audit-v1")
        self.assertEqual(doc["backend"], "builtin")
        self.assertEqual(doc["findings"], len(doc["findingList"]))
        self.assertEqual(doc["auditedClasses"], 2)
        kinds = doc["membersByKind"]
        self.assertEqual(doc["members"],
                         sum(kinds[k] for k in kinds))
        self.assertEqual(kinds["unclassified"], 0)

    def test_census_shape(self):
        census = statespace_audit("clean").census()
        tiny = census["fdip::Tiny"]
        self.assertEqual(
            [f["field"] for f in tiny["schema"]],
            ["valid", "tag", "fold"])
        self.assertTrue(
            [f for f in tiny["schema"] if f["dynamic"]])
        self.assertEqual(tiny["members"]["wallSeconds_"]["kind"],
                         "host")
        self.assertEqual(
            census["fdip::Outer"]["members"]["inner_"]["fields"],
            ["sub"])


class TraceChecker(LintAssertions):
    def test_good_trace(self):
        problems = check_trace.check_trace(
            str(TRACES / "good_trace.json"),
            ["sim_start", "l2_fill"], 3)
        self.assertEqual(problems, [])

    def test_good_trace_missing_required_name(self):
        problems = check_trace.check_trace(
            str(TRACES / "good_trace.json"), ["never_emitted"], 1)
        self.assertTrue(any("never_emitted" in p for p in problems))

    def test_bad_trace(self):
        problems = check_trace.check_trace(
            str(TRACES / "bad_trace.json"), [], 1)
        text = "\n".join(problems)
        self.assertIn("unexpected phase 'x'", text)
        self.assertIn("timestamp went backwards", text)
        self.assertIn("end without begin", text)
        self.assertIn("'b' event has no 'ts'", text)
        self.assertIn("missing ['ph']", text)
        self.assertEqual(len(problems), 5, text)

    def test_unparseable_trace(self):
        problems = check_trace.check_trace(
            str(TRACES / "no_such_trace.json"), [], 1)
        self.assertTrue(any("cannot parse" in p for p in problems))


class CliExitCodes(LintAssertions):
    """The scripts' CLI entry points report findings via exit status."""

    @staticmethod
    def run_script(script, *argv):
        return subprocess.run(
            [sys.executable, str(LINT_DIR / script), *argv],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE).returncode

    def test_check_sources_cli(self):
        self.assertEqual(
            self.run_script("check_sources.py", "--root", str(CLEAN)), 0)
        self.assertEqual(
            self.run_script("check_sources.py", "--root", str(DIRTY)), 1)

    def test_check_determinism_cli(self):
        # Default allowlists point at repo files absent from the
        # fixture trees, so the existence guard (correctly) fails both.
        self.assertEqual(
            self.run_script("check_determinism.py", "--root", str(DIRTY)),
            1)

    def test_check_concurrency_cli(self):
        self.assertEqual(
            self.run_script("check_concurrency.py", "--root", str(DIRTY)),
            1)

    def test_check_hotpath_cli(self):
        # check_hotpath's default allowlist is empty, so both fixture
        # trees run under production settings.
        self.assertEqual(
            self.run_script("check_hotpath.py", "--root", str(CLEAN)), 0)
        self.assertEqual(
            self.run_script("check_hotpath.py", "--root", str(DIRTY)), 1)

    def test_check_hotgraph_cli(self):
        # --bare replaces the repo allowlist (whose entries name repo
        # files, so they would all be stale on a fixture tree).
        self.assertEqual(
            self.run_script("check_hotgraph.py", "--bare",
                            "--root", str(HOTGRAPH / "clean")), 0)
        self.assertEqual(
            self.run_script("check_hotgraph.py", "--bare", "--root",
                            str(HOTGRAPH / "dirty-transitive-alloc")), 1)

    def test_check_hotgraph_cli_staleness_without_bare(self):
        # Without --bare the production allowlist applies; on a
        # fixture tree every entry is unused, so the staleness guard
        # itself must fail the run.
        self.assertEqual(
            self.run_script("check_hotgraph.py",
                            "--root", str(HOTGRAPH / "clean")), 1)

    def test_check_hotgraph_cli_unavailable_frontend(self):
        # Exit 2 distinguishes "frontend missing" from findings; only
        # meaningful where clang.cindex is actually absent.
        try:
            import clang.cindex  # noqa: F401
            self.skipTest("clang.cindex installed; frontend available")
        except ImportError:
            pass
        self.assertEqual(
            self.run_script("check_hotgraph.py", "--frontend=clang",
                            "--bare",
                            "--root", str(HOTGRAPH / "clean")), 2)

    def test_check_statespace_cli(self):
        # --bare replaces the repo allowlist and certificate (whose
        # entries/classes name repo files, stale on a fixture tree).
        self.assertEqual(
            self.run_script("check_statespace.py", "--bare",
                            "--root", str(STATESPACE / "clean")), 0)
        self.assertEqual(
            self.run_script("check_statespace.py", "--bare", "--root",
                            str(STATESPACE / "dirty-ghost-member")), 1)

    def test_check_statespace_cli_staleness_without_bare(self):
        # Without --bare the production allowlist applies; on a
        # fixture tree every entry is unused, so the staleness guard
        # itself must fail the run.
        self.assertEqual(
            self.run_script("check_statespace.py",
                            "--root", str(STATESPACE / "clean")), 1)

    def test_check_statespace_cli_census_roundtrip(self):
        import tempfile
        with tempfile.TemporaryDirectory() as td:
            golden = str(Path(td) / "census.json")
            self.assertEqual(
                self.run_script("check_statespace.py", "--bare",
                                "--root", str(STATESPACE / "clean"),
                                "--update-census", golden), 0)
            # Same tree vs. its own census: clean.
            self.assertEqual(
                self.run_script("check_statespace.py", "--bare",
                                "--root", str(STATESPACE / "clean"),
                                "--census-golden", golden), 0)
            # Drifted census (a member vanishes): the diff must fail.
            import json
            doc = json.loads(Path(golden).read_text())
            del doc["fdip::Tiny"]["members"]["hits_"]
            Path(golden).write_text(json.dumps(doc))
            self.assertEqual(
                self.run_script("check_statespace.py", "--bare",
                                "--root", str(STATESPACE / "clean"),
                                "--census-golden", golden), 1)

    def test_check_statespace_cli_unavailable_frontend(self):
        try:
            import clang.cindex  # noqa: F401
            self.skipTest("clang.cindex installed; frontend available")
        except ImportError:
            pass
        self.assertEqual(
            self.run_script("check_statespace.py", "--frontend=clang",
                            "--bare",
                            "--root", str(STATESPACE / "clean")), 2)

    def test_check_trace_cli(self):
        self.assertEqual(
            self.run_script("check_trace.py",
                            str(TRACES / "good_trace.json")), 0)
        self.assertEqual(
            self.run_script("check_trace.py",
                            str(TRACES / "bad_trace.json")), 1)


if __name__ == "__main__":
    unittest.main(verbosity=2)
