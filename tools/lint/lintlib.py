#!/usr/bin/env python3
"""Shared machinery for the tree lints (stdlib only).

Every check_*.py lint that walks the C++ tree shares the same
skeleton: find the sources under <root>/src, strip comments and
string literals so regexes see only code, verify that exact-path
allowlists have not gone stale, and report findings through an
identical CLI contract (--root to point at a fixture tree, exit 0
when clean, exit 1 with findings on stderr). This module is that
skeleton, factored out once so a new lint is a consumer of the
machinery rather than a copy of it.

Consumers: check_sources.py, check_determinism.py,
check_concurrency.py, check_hotpath.py (and run_lint_tests.py via
those).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

#: Repository root (tools/lint/lintlib.py -> two parents up).
REPO = Path(__file__).resolve().parents[2]


def rel(path: Path, root: Path = REPO) -> str:
    """Posix-style path of @p path relative to @p root."""
    return path.relative_to(root).as_posix()


def source_files(root: Path) -> list[Path]:
    """All lintable C++ files under <root>/src, headers first."""
    src = root / "src"
    return sorted(src.rglob("*.h")) + sorted(src.rglob("*.cc"))


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line count."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            out.append(" ")
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def blank_preprocessor_lines(text: str) -> str:
    """Blanks #-directives (incl. continuations), keeping line count."""
    out: list[str] = []
    in_directive = False
    for line in text.split("\n"):
        stripped = line.lstrip()
        if in_directive or stripped.startswith("#"):
            in_directive = stripped.endswith("\\")
            out.append("")
        else:
            in_directive = False
            out.append(line)
    return "\n".join(out)


def line_of(text: str, pos: int) -> int:
    """1-based line number of character offset @p pos in @p text."""
    return text.count("\n", 0, pos) + 1


def stale_allowlist_findings(root: Path, *allowlists: set[str]
                             ) -> list[str]:
    """One finding per allowlisted path that no longer exists.

    A stale allowlist silently widens the escape hatch: a file can be
    renamed past its exception and carry the exception's name to a new
    file later. Every lint with an allowlist runs this guard.
    """
    listed: set[str] = set()
    for allowlist in allowlists:
        listed |= allowlist
    return [f"{name}: allowlisted file does not exist"
            for name in sorted(listed) if not (root / name).is_file()]


def make_parser(doc: str | None) -> argparse.ArgumentParser:
    """Argument parser with the standard --root option."""
    ap = argparse.ArgumentParser(description=doc)
    ap.add_argument("--root", type=Path, default=REPO,
                    help="tree to lint (default: the repository)")
    return ap


def report(lint_name: str, findings: list[str]) -> int:
    """Prints findings per the shared CLI contract; returns exit code."""
    if findings:
        print(f"{lint_name}: {len(findings)} finding(s)", file=sys.stderr)
        for f in findings:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"{lint_name}: clean")
    return 0
