#!/usr/bin/env python3
"""Trend and validity checker for BENCH_*.json summaries.

The bench binaries (bench/bench_common.h, writeBenchJson) emit one
machine-readable summary per figure: configuration labels, geomean
IPC, host throughput, and — since schema v2 — the merged host
tick-phase breakdown sampled by the self-profiler
(src/obs/tick_profiler.h). This tool consumes any number of those
files:

  bench_trend.py BENCH_a.json [BENCH_b.json ...]
      Print a per-file table: throughput plus the phase shares, so a
      ranked "where does the host time go" answer is one command away,
      and two runs of the same bench can be diffed by eye.

  bench_trend.py --check BENCH_a.json [...]
      Validate instead of display; used by CI on freshly produced
      artifacts. A file passes when:
        - schemaVersion, when present, is 2;
        - bench name, results, and hostInstrsPerSecond are present;
        - every result has a non-empty label and a finite geomeanIpc;
        - hostInstrsPerSecond > 0;
        - hostPhaseBreakdown, when present, covers exactly the known
          phases with fractions in [0, 1] summing to 1 (+/- 1e-3), and
          sampledTicks/interval are consistent (> 0).

Exit status: 0 pass, 1 validation failure, 2 bad invocation.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

# Reporting-order phase names; mirrors kTickPhaseName in
# src/obs/tick_profiler.h (the check below fails on drift).
PHASES = ("frontend", "bpu", "icache", "prefetcher", "backend", "obs")

SCHEMA_VERSION = 2
FRACTION_TOLERANCE = 1e-3


def load(path: Path) -> dict:
    try:
        with path.open() as f:
            return json.load(f)
    except OSError as e:
        sys.exit(f"bench_trend: cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"bench_trend: {path} is not valid JSON: {e}")


def validate(path: Path, bench: dict) -> list[str]:
    """Returns the list of problems with one bench summary."""
    problems: list[str] = []

    schema = bench.get("schemaVersion")
    if schema is not None and schema != SCHEMA_VERSION:
        problems.append(f"schemaVersion is {schema}, expected "
                        f"{SCHEMA_VERSION}")

    for key in ("bench", "hostInstrsPerSecond", "results"):
        if key not in bench:
            problems.append(f"missing '{key}'")
    if problems:
        return problems

    if not isinstance(bench["results"], list) or not bench["results"]:
        problems.append("'results' is empty")
    else:
        for i, r in enumerate(bench["results"]):
            if not r.get("label"):
                problems.append(f"results[{i}] has no label")
            ipc = r.get("geomeanIpc")
            if (not isinstance(ipc, (int, float))
                    or not math.isfinite(ipc) or ipc <= 0):
                problems.append(
                    f"results[{i}] ('{r.get('label')}') geomeanIpc "
                    f"{ipc!r} is not a positive finite number")

    tput = bench["hostInstrsPerSecond"]
    if (not isinstance(tput, (int, float)) or not math.isfinite(tput)
            or tput <= 0):
        problems.append(f"hostInstrsPerSecond {tput!r} is not positive")

    hpb = bench.get("hostPhaseBreakdown")
    if hpb is not None:
        problems.extend(validate_phases(hpb))
    return problems


def validate_phases(hpb: dict) -> list[str]:
    problems: list[str] = []
    phases = hpb.get("phases")
    if not isinstance(phases, dict):
        return ["hostPhaseBreakdown has no 'phases' object"]
    got = tuple(sorted(phases))
    want = tuple(sorted(PHASES))
    if got != want:
        problems.append(
            f"phase set {got} != expected {want} (kTickPhaseName in "
            "src/obs/tick_profiler.h changed without updating this "
            "tool?)")
    total = 0.0
    for name, frac in phases.items():
        if (not isinstance(frac, (int, float))
                or not math.isfinite(frac) or not 0.0 <= frac <= 1.0):
            problems.append(f"phase '{name}' fraction {frac!r} is not "
                            "in [0, 1]")
        else:
            total += frac
    if abs(total - 1.0) > FRACTION_TOLERANCE:
        problems.append(f"phase fractions sum to {total:.6f}, not 1.0 "
                        f"(tolerance {FRACTION_TOLERANCE})")
    for key in ("interval", "sampledTicks", "totalTicks"):
        v = hpb.get(key)
        if not isinstance(v, int) or v <= 0:
            problems.append(f"hostPhaseBreakdown.{key} {v!r} is not a "
                            "positive integer")
    if (isinstance(hpb.get("sampledTicks"), int)
            and isinstance(hpb.get("totalTicks"), int)
            and hpb["sampledTicks"] > hpb["totalTicks"]):
        problems.append("sampledTicks exceeds totalTicks")
    return problems


def show(path: Path, bench: dict) -> None:
    name = bench.get("bench", path.stem)
    tput = bench.get("hostInstrsPerSecond", 0.0)
    nres = len(bench.get("results", []))
    line = f"{name}: {tput:,.0f} instrs/s, {nres} configs"
    hpb = bench.get("hostPhaseBreakdown")
    if hpb and isinstance(hpb.get("phases"), dict):
        phases = hpb["phases"]
        ranked = sorted(phases.items(), key=lambda kv: -kv[1])
        shares = ", ".join(f"{k} {v:.1%}" for k, v in ranked)
        line += (f"\n  host phases (every {hpb.get('interval')} ticks, "
                 f"{hpb.get('sampledTicks')} sampled): {shares}")
    print(line)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_json", nargs="+", type=Path,
                    help="BENCH_*.json files to inspect")
    ap.add_argument("--check", action="store_true",
                    help="validate instead of display (CI mode)")
    args = ap.parse_args()

    failures = 0
    for path in args.bench_json:
        bench = load(path)
        if args.check:
            problems = validate(path, bench)
            if problems:
                failures += 1
                print(f"bench_trend: {path}: FAIL", file=sys.stderr)
                for p in problems:
                    print(f"  {p}", file=sys.stderr)
            else:
                print(f"bench_trend: {path}: OK")
        else:
            show(path, bench)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
