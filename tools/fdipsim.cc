/**
 * @file
 * The fdipsim command-line driver: run any frontend configuration over
 * the synthetic suite, a single workload class, or an imported
 * ChampSim trace, with optional JSON/CSV reports.
 *
 * Run `fdipsim --help` for the full flag list.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/certify.h"
#include "prefetch/factory.h"
#include "sim/campaign_presets.h"
#include "sim/campaign_store.h"
#include "sim/experiment.h"
#include "sim/parallel.h"
#include "sim/report.h"
#include "trace/champsim.h"
#include "util/log.h"
#include "util/table.h"

namespace
{

using namespace fdip;

struct Options
{
    std::string workload = "suite-small";
    std::uint64_t seed = 1;
    std::size_t insts = 1000000;
    double warmupFrac = 0.2;
    std::string prefetcher = "none";
    std::string champsimTrace;
    std::string jsonPath;
    std::string csvPath;
    std::string heartbeatJsonlPath;
    std::string dumpStatsPath;
    bool compareBaseline = false;
    CoreConfig cfg = paperBaselineConfig();

    // Campaign mode (see sim/campaign_store.h).
    std::string campaign;
    std::string spoolDir;
    unsigned jobs = 0;
    bool resume = false;
    bool merge = false;
};

void
usage()
{
    std::printf(
        "usage: fdipsim [options]\n"
        "\n"
        "workload selection:\n"
        "  --workload W       srv | clt | spec | suite-small | suite\n"
        "  --seed N           workload seed (default 1)\n"
        "  --insts N          dynamic instructions per trace (1e6)\n"
        "  --warmup-frac F    warmup fraction (0.2)\n"
        "  --champsim-trace P import a ChampSim trace instead\n"
        "\n"
        "frontend configuration:\n"
        "  --ftq N            FTQ entries (24; 2 disables FDP)\n"
        "  --btb N            BTB entries (8192)\n"
        "  --scheme S         thr|ghr0|ghr1|ghr2|ghr3|ideal (thr)\n"
        "  --pfc on|off       post-fetch correction (on)\n"
        "  --dirpred P        tage9|tage18|tage36|gshare|perceptron|"
        "perfect\n"
        "  --prefetcher P     none|nl1|fnl+mma|d-jolt|eip-27|eip-128|"
        "rdip|sn4l+dis|sn4l+dis+btb\n"
        "  --two-level-btb    enable the L1/L2 BTB hierarchy\n"
        "  --loop-predictor   enable the loop-exit predictor\n"
        "  --prefetch-buffer  prefetch into a side buffer (original "
        "FDP)\n"
        "  --perfect-icache   every L1I access hits\n"
        "  --perfect-prefetch instantaneous prefetching (with traffic)\n"
        "  --perfect-btb      oracle branch detection\n"
        "\n"
        "campaign mode (sharded, resumable, content-addressed; see\n"
        "docs/CAMPAIGN.md — env: FDIP_SPOOL, FDIP_JOBS):\n"
        "  --campaign NAME    drain a named campaign through a spool:\n"
        "                     prefetchers | ftq | history |\n"
        "                     stall_accounting | smoke\n"
        "  --spool DIR        spool directory (default: $FDIP_SPOOL)\n"
        "  --resume           reclaim claims left by dead local workers\n"
        "  --merge            assemble + verify the report from spool\n"
        "                     records only (no simulation); exit 1 if\n"
        "                     any manifest entry lacks a record\n"
        "  --jobs N           worker threads for --campaign (FDIP_JOBS)\n"
        "  Campaign workloads come from --workload suite|suite-small,\n"
        "  --insts, and --warmup-frac; reports from --json/--csv.\n"
        "\n"
        "output:\n"
        "  --compare-baseline also run the no-FDP baseline\n"
        "  --json PATH        write a JSON report\n"
        "  --csv PATH         write a CSV report\n"
        "  --certify          print the iso-storage budget certificate\n"
        "                     (JSON) and exit; status 1 if over budget\n"
        "\n"
        "observability (env: FDIP_HEARTBEAT, FDIP_TRACE, "
        "FDIP_PROFILE):\n"
        "  --heartbeat N      sample telemetry every N committed "
        "instructions\n"
        "  --profile N        sample host tick-phase timings every N "
        "ticks and print the phase breakdown (host telemetry only; "
        "architecturally invisible)\n"
        "  --heartbeat-jsonl P write heartbeat samples as JSON Lines\n"
        "  --trace PATH       write a Chrome trace-event file "
        "(chrome://tracing, Perfetto); used verbatim for a single "
        "run, label/workload woven in otherwise\n"
        "  --dump-stats PATH  write the full stat-registry snapshot "
        "per run\n");
}

HistoryScheme
parseScheme(const std::string &s)
{
    if (s == "thr")
        return HistoryScheme::kThr;
    if (s == "ghr0")
        return HistoryScheme::kGhr0;
    if (s == "ghr1")
        return HistoryScheme::kGhr1;
    if (s == "ghr2")
        return HistoryScheme::kGhr2;
    if (s == "ghr3")
        return HistoryScheme::kGhr3;
    if (s == "ideal")
        return HistoryScheme::kIdeal;
    fdip_fatal("unknown history scheme '%s'", s.c_str());
}

void
parseDirPred(const std::string &s, CoreConfig &cfg)
{
    if (s == "tage9" || s == "tage18" || s == "tage36") {
        cfg.bpu.direction = DirectionPredictorKind::kTage;
        cfg.bpu.tageKilobytes =
            static_cast<unsigned>(std::atoi(s.c_str() + 4));
    } else if (s == "gshare") {
        cfg.bpu.direction = DirectionPredictorKind::kGshare;
    } else if (s == "perceptron") {
        cfg.bpu.direction = DirectionPredictorKind::kPerceptron;
    } else if (s == "perfect") {
        cfg.bpu.direction = DirectionPredictorKind::kPerfect;
    } else {
        fdip_fatal("unknown direction predictor '%s'", s.c_str());
    }
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fdip_fatal("flag %s needs a value", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else if (a == "--certify") {
            // Pure static analysis: no workload is run, so act
            // immediately like --help does.
            std::fputs(budgetCertificateJson().c_str(), stdout);
            std::exit(budgetCertificateOk() ? 0 : 1);
        } else if (a == "--workload") {
            opt.workload = need(i);
        } else if (a == "--seed") {
            opt.seed = std::strtoull(need(i), nullptr, 10);
        } else if (a == "--insts") {
            opt.insts = std::strtoull(need(i), nullptr, 10);
        } else if (a == "--warmup-frac") {
            opt.warmupFrac = std::atof(need(i));
        } else if (a == "--champsim-trace") {
            opt.champsimTrace = need(i);
        } else if (a == "--ftq") {
            opt.cfg.ftqEntries =
                static_cast<unsigned>(std::atoi(need(i)));
        } else if (a == "--btb") {
            opt.cfg.bpu.btb.numEntries =
                static_cast<unsigned>(std::atoi(need(i)));
        } else if (a == "--scheme") {
            opt.cfg.historyScheme = parseScheme(need(i));
        } else if (a == "--pfc") {
            opt.cfg.pfcEnabled = std::strcmp(need(i), "off") != 0;
        } else if (a == "--dirpred") {
            parseDirPred(need(i), opt.cfg);
        } else if (a == "--prefetcher") {
            opt.prefetcher = need(i);
        } else if (a == "--two-level-btb") {
            opt.cfg.bpu.btbHierarchy.enabled = true;
        } else if (a == "--loop-predictor") {
            opt.cfg.bpu.useLoopPredictor = true;
        } else if (a == "--prefetch-buffer") {
            opt.cfg.usePrefetchBuffer = true;
        } else if (a == "--perfect-icache") {
            opt.cfg.perfectICache = true;
        } else if (a == "--perfect-prefetch") {
            opt.cfg.perfectPrefetch = true;
        } else if (a == "--perfect-btb") {
            opt.cfg.bpu.perfectBtb = true;
        } else if (a == "--campaign") {
            opt.campaign = need(i);
        } else if (a == "--spool") {
            opt.spoolDir = need(i);
        } else if (a == "--resume") {
            opt.resume = true;
        } else if (a == "--merge") {
            opt.merge = true;
        } else if (a == "--jobs") {
            opt.jobs = static_cast<unsigned>(
                std::strtoul(need(i), nullptr, 10));
        } else if (a == "--compare-baseline") {
            opt.compareBaseline = true;
        } else if (a == "--json") {
            opt.jsonPath = need(i);
        } else if (a == "--csv") {
            opt.csvPath = need(i);
        } else if (a == "--heartbeat") {
            opt.cfg.obs.heartbeatInterval =
                std::strtoull(need(i), nullptr, 10);
        } else if (a == "--profile") {
            opt.cfg.obs.profileInterval =
                std::strtoull(need(i), nullptr, 10);
        } else if (a == "--heartbeat-jsonl") {
            opt.heartbeatJsonlPath = need(i);
        } else if (a == "--trace") {
            opt.cfg.obs.tracePath = need(i);
        } else if (a == "--dump-stats") {
            opt.dumpStatsPath = need(i);
            opt.cfg.obs.collectStats = true;
        } else {
            usage();
            fdip_fatal("unknown flag '%s'", a.c_str());
        }
    }
    return opt;
}

std::vector<SuiteEntry>
buildInputs(const Options &opt)
{
    std::vector<SuiteEntry> suite;
    if (!opt.champsimTrace.empty()) {
        SuiteEntry e;
        e.name = opt.champsimTrace;
        if (!readChampSimTrace(opt.champsimTrace, opt.insts, e.trace))
            fdip_fatal("cannot import '%s'", opt.champsimTrace.c_str());
        suite.push_back(std::move(e));
        return suite;
    }
    if (opt.workload == "suite" || opt.workload == "suite-small")
        return buildStandardSuite(opt.insts,
                                  opt.workload == "suite-small");

    WorkloadSpec spec =
        opt.workload == "clt"
            ? clientSpec("clt", opt.seed)
            : opt.workload == "spec" ? specCpuSpec("spec", opt.seed)
                                     : serverSpec("srv", opt.seed);
    if (opt.workload != "srv" && opt.workload != "clt" &&
        opt.workload != "spec") {
        fdip_fatal("unknown workload '%s'", opt.workload.c_str());
    }
    auto wl = std::make_shared<Workload>(buildWorkload(spec));
    SuiteEntry e;
    e.name = opt.workload;
    e.trace = generateTrace(wl, opt.insts);
    suite.push_back(std::move(e));
    return suite;
}

/**
 * `fdipsim --campaign`: drains (or, with --merge, assembles) a named
 * campaign through the content-addressed spool. Exit status 0 only
 * when every manifest entry ended with a verified record.
 */
int
campaignMain(const Options &opt)
{
    if (opt.workload != "suite" && opt.workload != "suite-small") {
        fdip_fatal("--campaign needs --workload suite|suite-small, "
                   "not '%s'",
                   opt.workload.c_str());
    }
    const std::vector<CampaignEntry> entries =
        buildCampaignEntries(opt.campaign);
    const std::vector<SuiteEntry> suite =
        buildStandardSuite(opt.insts, opt.workload == "suite-small");
    const std::string spool =
        opt.spoolDir.empty() ? spoolFromEnv() : opt.spoolDir;

    SpoolSummary summary;
    std::vector<SuiteResult> results;
    std::string merge_error;
    if (opt.merge) {
        mergeCampaignSpool(entries, suite, spool, opt.warmupFrac,
                           &results, &summary, &merge_error);
    } else {
        SpoolOptions options;
        options.spoolDir = spool;
        options.warmupFraction = opt.warmupFrac;
        options.jobs = opt.jobs;
        options.reclaimDeadClaims = opt.resume;
        results = runCampaignSpooled(entries, suite, options, &summary);
    }

    std::printf("campaign '%s': %zu runs, %zu simulated, %zu cached, "
                "%zu claimed elsewhere, %zu reclaimed, %zu quarantined, "
                "%s\n",
                opt.campaign.c_str(), summary.totalRuns,
                summary.simulated, summary.cacheHits,
                summary.claimedElsewhere, summary.reclaimed,
                summary.quarantined,
                summary.complete ? "complete" : "incomplete");
    if (!summary.complete) {
        std::fprintf(stderr, "campaign: incomplete%s%s\n",
                     merge_error.empty() ? "" : ": ",
                     merge_error.c_str());
        return 1;
    }

    if (!opt.jsonPath.empty() &&
        !writeSuiteResultsJson(opt.jsonPath, results)) {
        fdip_fatal("cannot write %s", opt.jsonPath.c_str());
    }
    if (!opt.csvPath.empty() &&
        !writeSuiteResultsCsv(opt.csvPath, results)) {
        fdip_fatal("cannot write %s", opt.csvPath.c_str());
    }
    // Cache-hit runs carry only counters (no heartbeats, no registry
    // snapshot); writeStatDumpsJson synthesizes the core.* dump from
    // SimStats, so a fully-cached campaign still yields a complete
    // per-run stats file.
    if (!opt.heartbeatJsonlPath.empty() &&
        !writeHeartbeatsJsonl(opt.heartbeatJsonlPath, results)) {
        fdip_fatal("cannot write %s", opt.heartbeatJsonlPath.c_str());
    }
    if (!opt.dumpStatsPath.empty() &&
        !writeStatDumpsJson(opt.dumpStatsPath, results)) {
        fdip_fatal("cannot write %s", opt.dumpStatsPath.c_str());
    }
    return 0;
}

/** Prints the merged host tick-phase breakdown of @p results. */
void
printHostProfile(const std::vector<SuiteResult> &results)
{
    TickProfile merged;
    for (const SuiteResult &r : results)
        for (const RunResult &run : r.runs)
            merged.merge(run.hostPhases);
    if (merged.sampledTicks == 0)
        return;
    std::printf("\nhost tick-phase profile (every %llu ticks, "
                "%llu of %llu sampled):\n",
                static_cast<unsigned long long>(merged.interval),
                static_cast<unsigned long long>(merged.sampledTicks),
                static_cast<unsigned long long>(merged.totalTicks));
    TextTable t({"phase", "share", "ns/sampled-tick"});
    for (std::size_t i = 0; i < kTickPhaseCount; ++i) {
        const auto phase = static_cast<TickPhase>(i);
        t.addRow({kTickPhaseName[i],
                  TextTable::num(100.0 * merged.fraction(phase), 1) +
                      "%",
                  TextTable::num(
                      static_cast<double>(merged.exclusiveNs(phase)) /
                          static_cast<double>(merged.sampledTicks),
                      1)});
    }
    t.print();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);
    if (!opt.campaign.empty() || opt.merge)
        return campaignMain(opt);
    const auto suite = buildInputs(opt);

    // With one run there is nothing to clobber, so honor the trace
    // path verbatim; campaigns get label/workload woven in.
    opt.cfg.obs.traceExactPath =
        suite.size() == 1 && !opt.compareBaseline;

    std::vector<SuiteResult> results;
    results.push_back(runSuite(
        "config", opt.cfg, suite,
        [&](const Trace &) { return makePrefetcher(opt.prefetcher); },
        opt.warmupFrac));
    if (opt.compareBaseline) {
        CoreConfig base = noFdpConfig();
        base.obs = opt.cfg.obs;
        results.push_back(runSuite("baseline", base, suite,
                                   noPrefetcher(), opt.warmupFrac));
    }

    TextTable t({"result", "workload", "IPC", "MPKI", "starv/KI",
                 "tags/KI"});
    for (const auto &r : results) {
        for (const auto &run : r.runs) {
            t.addRow({r.label, run.workload,
                      TextTable::num(run.stats.ipc(), 3),
                      TextTable::num(run.stats.branchMpki()),
                      TextTable::num(run.stats.starvationPerKi(), 1),
                      TextTable::num(run.stats.tagAccessesPerKi(), 1)});
        }
    }
    t.print();
    printHostProfile(results);
    std::printf("\ngeomean IPC: %.3f\n", results[0].geomeanIpc());
    if (opt.compareBaseline) {
        std::printf("speedup over no-FDP baseline: %+.1f%%\n",
                    100.0 * (results[0].speedupOver(results[1]) - 1.0));
    }

    if (!opt.jsonPath.empty() &&
        !writeSuiteResultsJson(opt.jsonPath, results)) {
        fdip_fatal("cannot write %s", opt.jsonPath.c_str());
    }
    if (!opt.csvPath.empty() &&
        !writeSuiteResultsCsv(opt.csvPath, results)) {
        fdip_fatal("cannot write %s", opt.csvPath.c_str());
    }
    if (!opt.heartbeatJsonlPath.empty() &&
        !writeHeartbeatsJsonl(opt.heartbeatJsonlPath, results)) {
        fdip_fatal("cannot write %s", opt.heartbeatJsonlPath.c_str());
    }
    if (!opt.dumpStatsPath.empty() &&
        !writeStatDumpsJson(opt.dumpStatsPath, results)) {
        fdip_fatal("cannot write %s", opt.dumpStatsPath.c_str());
    }
    return 0;
}
