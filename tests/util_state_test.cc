/** @file Unit tests for util/state.h.
 *
 * The FDIP_STATE_* annotations are a contract for the static auditor
 * (tools/lint/check_statespace.py), not code: they must expand to
 * nothing on every compiler, leaving layout, size, and initialization
 * of annotated classes untouched. These tests pin that — an annotated
 * struct is byte-identical to its unannotated twin — and check the
 * annotated SimStats still honors its own layout static_asserts by
 * merely compiling.
 */

#include "util/state.h"

#include <cstdint>
#include <type_traits>

#include <gtest/gtest.h>

#include "core/sim_stats.h"

namespace fdip
{
namespace
{

struct Plain
{
    std::uint64_t table = 0;
    std::uint32_t top = 0;
    bool armed = false;
    double wall = 0.0;
};

struct Annotated
{
    FDIP_STATE_ARCH(table) std::uint64_t table = 0;
    FDIP_STATE_ARCH(top_ptr)
    std::uint32_t top = 0;
    FDIP_STATE_MICRO bool armed = false;
    FDIP_STATE_HOST double wall = 0.0;
};

TEST(State, MacrosCompileAway)
{
    // Identical layout: the annotations contribute no bytes, no
    // alignment, no members.
    static_assert(sizeof(Annotated) == sizeof(Plain));
    static_assert(alignof(Annotated) == alignof(Plain));
    static_assert(offsetof(Annotated, table) == offsetof(Plain, table));
    static_assert(offsetof(Annotated, top) == offsetof(Plain, top));
    static_assert(offsetof(Annotated, armed) == offsetof(Plain, armed));
    static_assert(offsetof(Annotated, wall) == offsetof(Plain, wall));
    static_assert(std::is_trivially_copyable_v<Annotated>);

    Annotated a;
    EXPECT_EQ(a.table, 0u);
    EXPECT_EQ(a.top, 0u);
    EXPECT_FALSE(a.armed);
    EXPECT_EQ(a.wall, 0.0);
}

TEST(State, AnnotatedSimStatsKeepsItsLayoutContract)
{
    // SimStats carries FDIP_STATE_MICRO on all 38 architectural
    // counters and FDIP_STATE_HOST on hostWallSeconds; its own
    // static_asserts (tuple arity, sizeof layout) still hold, and the
    // architectural tuple still excludes host telemetry.
    SimStats s;
    s.hostWallSeconds = 42.0;
    SimStats t;
    EXPECT_TRUE(s.architecturalState() == t.architecturalState());
    EXPECT_EQ(std::tuple_size_v<decltype(s.architecturalState())>,
              SimStats::kArchitecturalCounters);
}

} // namespace
} // namespace fdip
