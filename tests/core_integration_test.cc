/** @file Whole-core integration tests: direction-of-effect invariants
 *  from the paper, run on reduced workloads. */

#include "core/core.h"

#include <gtest/gtest.h>

#include "prefetch/factory.h"
#include "trace/suite.h"

namespace fdip
{
namespace
{

/** A reduced server-like trace shared across tests. */
const Trace &
sharedTrace()
{
    static const Trace trace = [] {
        WorkloadSpec s = serverSpec("itest", 404);
        s.numFunctions = 120;
        s.numRootFunctions = 16;
        auto wl = std::make_shared<Workload>(buildWorkload(s));
        return generateTrace(wl, 120000);
    }();
    return trace;
}

SimStats
run(CoreConfig cfg, const char *prefetcher = "none",
    const Trace &trace = sharedTrace())
{
    cfg.applyHistoryScheme();
    Core core(cfg, trace, makePrefetcher(prefetcher));
    return core.run(trace.size() / 5);
}

TEST(CoreIntegration, CommitsExactlyTheTrace)
{
    const SimStats s = run(paperBaselineConfig());
    // The warmup boundary is detected at commit granularity, so the
    // measured window can be short by up to a commit group.
    const std::uint64_t expected =
        sharedTrace().size() - sharedTrace().size() / 5;
    EXPECT_LE(s.committedInsts, expected);
    EXPECT_GE(s.committedInsts,
              expected - paperBaselineConfig().commitWidth);
    EXPECT_GT(s.cycles, 0u);
    EXPECT_GT(s.ipc(), 0.1);
    EXPECT_LT(s.ipc(), 6.0);
}

TEST(CoreIntegration, DeterministicAcrossRuns)
{
    const SimStats a = run(paperBaselineConfig());
    const SimStats b = run(paperBaselineConfig());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.l1iDemandMisses, b.l1iDemandMisses);
    EXPECT_EQ(a.pfcFires, b.pfcFires);
}

TEST(CoreIntegration, FdpBeatsNoFdp)
{
    const SimStats no_fdp = run(noFdpConfig());
    const SimStats fdp = run(paperBaselineConfig());
    EXPECT_GT(fdp.ipc(), no_fdp.ipc() * 1.05)
        << "run-ahead must pay off on a frontend-bound workload";
    EXPECT_LT(fdp.starvationPerKi(), no_fdp.starvationPerKi());
}

TEST(CoreIntegration, PerfectICacheIsUpperBoundOnFetch)
{
    CoreConfig perfect = paperBaselineConfig();
    perfect.perfectICache = true;
    const SimStats p = run(perfect);
    const SimStats real = run(paperBaselineConfig());
    EXPECT_GE(p.ipc(), real.ipc() * 0.99);
    EXPECT_EQ(p.l1iDemandMisses, 0u);
}

TEST(CoreIntegration, PerfectPrefetchHelpsNoFdp)
{
    CoreConfig cfg = noFdpConfig();
    cfg.perfectPrefetch = true;
    const SimStats p = run(cfg);
    const SimStats base = run(noFdpConfig());
    EXPECT_GT(p.ipc(), base.ipc() * 1.05);
}

TEST(CoreIntegration, PfcReducesMispredictsWithSmallBtb)
{
    CoreConfig on = paperBaselineConfig();
    on.bpu.btb.numEntries = 1024;
    CoreConfig off = on;
    off.pfcEnabled = false;
    const SimStats s_on = run(on);
    const SimStats s_off = run(off);
    EXPECT_GT(s_on.pfcFires, 0u);
    EXPECT_LT(s_on.mispredicts, s_off.mispredicts)
        << "PFC must convert BTB-miss flushes into early re-steers";
    EXPECT_GT(s_on.ipc(), s_off.ipc());
}

TEST(CoreIntegration, PerfectBtbRemovesBtbMissFlushes)
{
    CoreConfig cfg = paperBaselineConfig();
    cfg.bpu.perfectBtb = true;
    const SimStats s = run(cfg);
    EXPECT_EQ(s.mispredictsBtbMissTaken, 0u);
    EXPECT_EQ(s.pfcFires, 0u);
}

TEST(CoreIntegration, ThrBeatsGhr2)
{
    CoreConfig thr = paperBaselineConfig();
    thr.historyScheme = HistoryScheme::kThr;
    CoreConfig ghr2 = paperBaselineConfig();
    ghr2.historyScheme = HistoryScheme::kGhr2;
    const SimStats s_thr = run(thr);
    const SimStats s_ghr2 = run(ghr2);
    EXPECT_EQ(s_thr.ghrFixups, 0u);
    EXPECT_GT(s_ghr2.ghrFixups, 0u)
        << "GHR2 must pay fixup flushes for BTB-miss not-taken branches";
    EXPECT_GT(s_thr.ipc(), s_ghr2.ipc());
}

TEST(CoreIntegration, IdealHistoryIsCompetitive)
{
    CoreConfig ideal = paperBaselineConfig();
    ideal.historyScheme = HistoryScheme::kIdeal;
    const SimStats s_ideal = run(ideal);
    const SimStats s_thr = run(paperBaselineConfig());
    // Paper VI-C: THR performs like the idealized history.
    EXPECT_NEAR(s_thr.ipc() / s_ideal.ipc(), 1.0, 0.05);
}

TEST(CoreIntegration, BiggerFtqNeverMuchWorse)
{
    CoreConfig small = paperBaselineConfig();
    small.ftqEntries = 4;
    CoreConfig big = paperBaselineConfig();
    big.ftqEntries = 24;
    const SimStats s_small = run(small);
    const SimStats s_big = run(big);
    EXPECT_GT(s_big.ipc(), s_small.ipc() * 0.98);
}

TEST(CoreIntegration, PrefetcherReducesDemandMisses)
{
    const SimStats base = run(noFdpConfig());
    const SimStats pf = run(noFdpConfig(), "fnl+mma");
    EXPECT_LT(pf.l1iDemandMisses, base.l1iDemandMisses);
    EXPECT_GT(pf.prefetchesIssued, 0u);
    EXPECT_GT(pf.ipc(), base.ipc());
}

TEST(CoreIntegration, PrefetchTagAccessesAreCounted)
{
    const SimStats base = run(paperBaselineConfig());
    const SimStats pf = run(paperBaselineConfig(), "eip-27");
    EXPECT_GT(pf.l1iTagAccesses, base.l1iTagAccesses)
        << "prefetch probes must show up in the tag-access count";
}

TEST(CoreIntegration, MispredictCausesAreClassified)
{
    const SimStats s = run(paperBaselineConfig());
    EXPECT_EQ(s.mispredicts,
              s.mispredictsCondDir + s.mispredictsBtbMissTaken +
                  s.mispredictsTarget + s.mispredictsPfcMisfire);
    EXPECT_GT(s.mispredictsCondDir, 0u);
}

TEST(CoreIntegration, MissClassificationCoversDemandMisses)
{
    const SimStats s = run(noFdpConfig());
    const std::uint64_t classified = s.missFullyExposed +
                                     s.missPartiallyExposed +
                                     s.missCovered;
    EXPECT_GT(classified, 0u);
}

TEST(CoreIntegration, WrongPathActivityExists)
{
    const SimStats s = run(paperBaselineConfig());
    EXPECT_GT(s.wrongPathDelivered, 0u)
        << "run-ahead must speculate past mispredicted branches";
}

TEST(CoreIntegration, GshareWorseThanTage)
{
    CoreConfig gshare = paperBaselineConfig();
    gshare.bpu.direction = DirectionPredictorKind::kGshare;
    const SimStats s_g = run(gshare);
    const SimStats s_t = run(paperBaselineConfig());
    EXPECT_GT(s_g.branchMpki(), s_t.branchMpki());
}

TEST(CoreIntegration, PerfectDirectionRemovesCondMispredicts)
{
    CoreConfig cfg = paperBaselineConfig();
    cfg.bpu.direction = DirectionPredictorKind::kPerfect;
    const SimStats s = run(cfg);
    EXPECT_EQ(s.mispredictsCondDir, 0u);
}

TEST(CoreIntegration, WarmupShrinksMeasuredWindow)
{
    CoreConfig cfg = paperBaselineConfig();
    cfg.applyHistoryScheme();
    Core a(cfg, sharedTrace(), makePrefetcher("none"));
    const SimStats with_warmup = a.run(sharedTrace().size() / 2);
    const std::uint64_t expected =
        sharedTrace().size() - sharedTrace().size() / 2;
    EXPECT_LE(with_warmup.committedInsts, expected);
    EXPECT_GE(with_warmup.committedInsts, expected - cfg.commitWidth);
}

} // namespace
} // namespace fdip
