/** @file Tests for the instruction prefetchers. */

#include "prefetch/prefetcher.h"

#include <gtest/gtest.h>

#include "prefetch/djolt.h"
#include "prefetch/eip.h"
#include "prefetch/factory.h"
#include "prefetch/fnl_mma.h"
#include "prefetch/next_line.h"
#include "prefetch/rdip.h"
#include "prefetch/sn4l_dis.h"

namespace fdip
{
namespace
{

constexpr Addr kL = kCacheLineBytes;

std::vector<Addr>
drain(InstPrefetcher &p)
{
    std::vector<Addr> out;
    for (Addr a = p.popPrefetch(); a != kNoAddr; a = p.popPrefetch())
        out.push_back(a);
    return out;
}

TEST(NullPrefetcher, NeverPrefetches)
{
    NullPrefetcher p;
    p.onDemandLookup(0x1000, false, 0);
    EXPECT_EQ(p.popPrefetch(), kNoAddr);
    EXPECT_EQ(p.storageBits(), 0u);
}

TEST(NextLine, PrefetchesOnMissOnly)
{
    NextLinePrefetcher p(1);
    p.onDemandLookup(0x1000, true, 0);
    EXPECT_EQ(p.popPrefetch(), kNoAddr);
    p.onDemandLookup(0x1000, false, 0);
    EXPECT_EQ(p.popPrefetch(), 0x1000 + kL);
    EXPECT_EQ(p.popPrefetch(), kNoAddr);
}

TEST(NextLine, DegreeN)
{
    NextLinePrefetcher p(3);
    p.onDemandLookup(0x2000, false, 0);
    const auto out = drain(p);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 0x2000 + kL);
    EXPECT_EQ(out[2], 0x2000 + 3 * kL);
}

TEST(PrefetchQueue, Deduplicates)
{
    NextLinePrefetcher p(1);
    p.onDemandLookup(0x1000, false, 0);
    p.onDemandLookup(0x1000, false, 1);
    EXPECT_EQ(drain(p).size(), 1u);
}

TEST(FnlMma, LearnsSequentialStream)
{
    FnlMmaPrefetcher p;
    // Train: a sequential stream of lines.
    for (int rep = 0; rep < 4; ++rep) {
        for (Addr l = 0; l < 16; ++l)
            p.onDemandLookup(0x10000 + l * kL, true, l);
        drain(p);
    }
    // Now a fresh access to the stream head prefetches ahead.
    p.onDemandLookup(0x10000, true, 1000);
    const auto out = drain(p);
    EXPECT_FALSE(out.empty());
    EXPECT_EQ(out[0], 0x10000 + kL);
}

TEST(FnlMma, MmaJumpsAcrossMisses)
{
    FnlMmaPrefetcher p;
    // A repeating discontiguous miss sequence.
    const Addr seq[] = {0x10000, 0x30000, 0x50000, 0x70000,
                        0x90000, 0xb0000};
    for (int rep = 0; rep < 6; ++rep) {
        for (Addr a : seq)
            p.onDemandLookup(a, false, 0);
        drain(p);
    }
    // A miss on seq[0] should prefetch a line ~mmaDistance ahead.
    p.onDemandLookup(seq[0], false, 0);
    const auto out = drain(p);
    bool found_ahead = false;
    for (Addr a : out) {
        if (a == seq[4])
            found_ahead = true;
    }
    EXPECT_TRUE(found_ahead);
}

TEST(Djolt, TrainsOnCallPathRecurrence)
{
    DjoltPrefetcher p;
    // Simulate: calls A,B then misses X,Y; recurrence of calls A,B
    // should prefetch X and Y.
    auto run_path = [&p](bool observe) {
        p.onBranch(0x100, InstClass::kCallDirect, 0x1000, true);
        p.onBranch(0x200, InstClass::kCallDirect, 0x2000, true);
        if (!observe) {
            p.onDemandLookup(0x8000, false, 0);
            p.onDemandLookup(0x9000, false, 0);
        }
        return drain(p);
    };
    run_path(false); // Train.
    run_path(false);
    const auto out = run_path(true);
    bool has_x = false;
    bool has_y = false;
    for (Addr a : out) {
        has_x = has_x || a == 0x8000;
        has_y = has_y || a == 0x9000;
    }
    EXPECT_TRUE(has_x);
    EXPECT_TRUE(has_y);
}

TEST(Djolt, IgnoresNonCallBranches)
{
    DjoltPrefetcher p;
    p.onBranch(0x100, InstClass::kCondDirect, 0x200, true);
    p.onBranch(0x300, InstClass::kReturn, 0x400, true);
    EXPECT_EQ(drain(p).size(), 0u);
}

TEST(Eip, EntanglesSourceWithDestination)
{
    EipPrefetcher p(EipConfig::sized128KB());
    // Access S at t=0 (recorded), miss D at t=100 -> entangle S->D.
    p.onDemandLookup(0x10000, true, 0);
    p.onDemandLookup(0x20000, false, 100);
    drain(p);
    // Re-access S: D must be prefetched.
    p.onDemandLookup(0x10000, true, 200);
    const auto out = drain(p);
    bool has_d = false;
    for (Addr a : out)
        has_d = has_d || a == 0x20000;
    EXPECT_TRUE(has_d);
}

TEST(Eip, NextLineOnMiss)
{
    EipPrefetcher p(EipConfig::sized27KB(), "EIP-27KB");
    p.onDemandLookup(0x30000, false, 0);
    const auto out = drain(p);
    bool has_next = false;
    for (Addr a : out)
        has_next = has_next || a == 0x30000 + kL;
    EXPECT_TRUE(has_next);
    EXPECT_STREQ(p.name(), "EIP-27KB");
}

TEST(Eip, BudgetsDiffer)
{
    EipPrefetcher big(EipConfig::sized128KB());
    EipPrefetcher small(EipConfig::sized27KB());
    EXPECT_GT(big.storageBits(), 3 * small.storageBits());
    // ~128KB and ~27KB within slack.
    EXPECT_NEAR(static_cast<double>(big.storageBits()) / 8 / 1024, 128,
                16);
    EXPECT_NEAR(static_cast<double>(small.storageBits()) / 8 / 1024, 27,
                6);
}

TEST(Sn4l, LearnsUsefulDistances)
{
    Sn4lDisConfig cfg;
    cfg.btbPrefetch = false;
    Sn4lDisPrefetcher p(cfg);
    // Access pattern L, L+2 repeatedly: distance 2 stays useful, and
    // the initial optimistic bits for other distances stay until decay
    // (no decay modeled -> all four fire initially).
    p.onDemandLookup(0x10000, true, 0);
    const auto first = drain(p);
    EXPECT_FALSE(first.empty());
}

TEST(Sn4l, DisRecordsDiscontinuity)
{
    Sn4lDisConfig cfg;
    cfg.btbPrefetch = false;
    Sn4lDisPrefetcher p(cfg);
    // Misses at A then far-away B create a discontinuity A->B.
    p.onDemandLookup(0x10000, false, 0);
    p.onDemandLookup(0x80000, false, 10);
    drain(p);
    // Re-access A: B must be prefetched.
    p.onDemandLookup(0x10000, false, 100);
    const auto out = drain(p);
    bool has_b = false;
    for (Addr a : out)
        has_b = has_b || a == 0x80000;
    EXPECT_TRUE(has_b);
}

TEST(Factory, KnownNames)
{
    for (const char *n : {"none", "nl1", "fnl+mma", "d-jolt", "eip-128",
                          "eip-27", "rdip", "sn4l+dis",
                          "sn4l+dis+btb"}) {
        auto p = makePrefetcher(n);
        ASSERT_NE(p, nullptr) << n;
        EXPECT_NE(p->name(), nullptr);
    }
}

TEST(Factory, UnknownNameIsFatal)
{
    EXPECT_DEATH({ makePrefetcher("bogus"); }, "unknown prefetcher");
}

TEST(PrefetchQueue, BoundedDepth)
{
    NextLinePrefetcher p(200); // Degree beyond the queue bound.
    p.onDemandLookup(0, false, 0);
    EXPECT_LE(p.pendingPrefetches(), 64u);
}

} // namespace
} // namespace fdip

namespace fdip
{
namespace
{

TEST(Rdip, TrainsOnContextRecurrence)
{
    RdipPrefetcher p;
    // Context A (after calling f): misses X, Y; returning and
    // re-calling f must prefetch X and Y.
    auto enter_and_miss = [&p](bool observe) {
        p.onBranch(0x100, InstClass::kCallDirect, 0x1000, true);
        std::vector<Addr> out;
        for (Addr a = p.popPrefetch(); a != kNoAddr; a = p.popPrefetch())
            out.push_back(a);
        if (!observe) {
            p.onDemandLookup(0x8000, false, 0);
            p.onDemandLookup(0x9000, false, 0);
        }
        p.onBranch(0x1010, InstClass::kReturn, 0x104, true);
        for (Addr a = p.popPrefetch(); a != kNoAddr; a = p.popPrefetch())
            out.push_back(a);
        return out;
    };
    enter_and_miss(false);
    enter_and_miss(false);
    const auto out = enter_and_miss(true);
    bool has_x = false;
    bool has_y = false;
    for (Addr a : out) {
        has_x = has_x || a == 0x8000;
        has_y = has_y || a == 0x9000;
    }
    EXPECT_TRUE(has_x);
    EXPECT_TRUE(has_y);
}

TEST(Rdip, IgnoresConditionals)
{
    RdipPrefetcher p;
    p.onBranch(0x100, InstClass::kCondDirect, 0x200, true);
    EXPECT_EQ(p.popPrefetch(), kNoAddr);
}

} // namespace
} // namespace fdip
