/** @file
 * Ownership contracts of the observability layer, enforced by the
 * type system rather than header comments: a StatRegistry and a
 * TraceWriter are each pinned to one run and one owner, so copying
 * and moving must not compile. These static assertions are the pinned
 * test the header comments point at — deleting the deleted members
 * fails here, not in a code review.
 */

#include <type_traits>

#include <gtest/gtest.h>

#include "obs/stat_registry.h"
#include "obs/trace_events.h"

namespace fdip
{
namespace
{

// A StatRegistry holds getters capturing raw component pointers;
// copying or moving it would alias live-component references across
// owners and outlive-the-run bugs would stop being type errors.
static_assert(!std::is_copy_constructible_v<StatRegistry>,
              "StatRegistry is one-per-run: copying must not compile");
static_assert(!std::is_copy_assignable_v<StatRegistry>,
              "StatRegistry is one-per-run: copy-assign must not compile");
static_assert(!std::is_move_constructible_v<StatRegistry>,
              "StatRegistry is pinned to its owner: moving must not "
              "compile");
static_assert(!std::is_move_assignable_v<StatRegistry>,
              "StatRegistry is pinned to its owner: move-assign must "
              "not compile");

// A TraceWriter is borrowed by Tracer handles as a raw pointer; a
// move would leave those handles dangling mid-run.
static_assert(!std::is_copy_constructible_v<TraceWriter>,
              "TraceWriter is one-per-run: copying must not compile");
static_assert(!std::is_copy_assignable_v<TraceWriter>,
              "TraceWriter is one-per-run: copy-assign must not compile");
static_assert(!std::is_move_constructible_v<TraceWriter>,
              "TraceWriter is borrowed by Tracers: moving must not "
              "compile");
static_assert(!std::is_move_assignable_v<TraceWriter>,
              "TraceWriter is borrowed by Tracers: move-assign must "
              "not compile");

// The Tracer *handle* stays freely copyable: it borrows, never owns,
// so handing it to a component duplicates no resource.
static_assert(std::is_copy_constructible_v<Tracer> &&
                  std::is_copy_assignable_v<Tracer>,
              "Tracer is a borrowed handle and must stay copyable");

// The snapshot a registry materializes is plain data and must remain
// freely copyable — that is what may outlive the run.
static_assert(std::is_copy_constructible_v<StatSample> &&
                  std::is_move_constructible_v<StatSample>,
              "StatSample is plain data and must stay copyable");

TEST(ObsOwnership, RegistryQueriesAreConst)
{
    // The whole observation surface is usable through a const
    // reference: observation code holding `const StatRegistry &`
    // can read everything and register nothing.
    StatRegistry reg;
    reg.addCounter("a.b", []() { return std::uint64_t{3}; });
    const StatRegistry &view = reg;
    EXPECT_TRUE(view.contains("a.b"));
    EXPECT_EQ(view.counterValue("a.b"), 3u);
    EXPECT_EQ(view.snapshot().size(), 1u);
    EXPECT_EQ(view.names().size(), 1u);
}

} // namespace
} // namespace fdip
