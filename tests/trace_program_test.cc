/** @file Unit tests for trace/program.h and trace/inst.h. */

#include "trace/program.h"

#include <gtest/gtest.h>

namespace fdip
{
namespace
{

TEST(InstClass, Predicates)
{
    EXPECT_FALSE(isBranch(InstClass::kAlu));
    EXPECT_FALSE(isBranch(InstClass::kLoad));
    EXPECT_TRUE(isBranch(InstClass::kCondDirect));
    EXPECT_TRUE(isConditional(InstClass::kCondDirect));
    EXPECT_FALSE(isConditional(InstClass::kJumpDirect));
    EXPECT_TRUE(isUnconditional(InstClass::kReturn));
    EXPECT_TRUE(isDirect(InstClass::kCallDirect));
    EXPECT_FALSE(isDirect(InstClass::kCallIndirect));
    EXPECT_TRUE(isIndirect(InstClass::kJumpIndirect));
    EXPECT_TRUE(isCall(InstClass::kCallIndirect));
    EXPECT_FALSE(isCall(InstClass::kReturn));
    EXPECT_TRUE(isReturn(InstClass::kReturn));
}

TEST(InstClass, NamesAreDistinct)
{
    EXPECT_STREQ(instClassName(InstClass::kAlu), "alu");
    EXPECT_STREQ(instClassName(InstClass::kReturn), "ret");
    EXPECT_STRNE(instClassName(InstClass::kCondDirect),
                 instClassName(InstClass::kJumpDirect));
}

TEST(ProgramImage, PcIndexRoundTrip)
{
    ProgramImage img(0x400000);
    for (int i = 0; i < 100; ++i) {
        StaticInst s;
        s.cls = InstClass::kAlu;
        img.append(s);
    }
    for (std::uint32_t i = 0; i < 100; ++i) {
        const Addr pc = img.pcOf(i);
        EXPECT_TRUE(img.contains(pc));
        EXPECT_EQ(img.indexOf(pc), i);
    }
}

TEST(ProgramImage, ContainsBoundaries)
{
    ProgramImage img(0x400000);
    StaticInst s;
    img.append(s);
    img.append(s);
    EXPECT_TRUE(img.contains(0x400000));
    EXPECT_TRUE(img.contains(0x400004));
    EXPECT_FALSE(img.contains(0x400008));
    EXPECT_FALSE(img.contains(0x3ffffc));
    EXPECT_FALSE(img.contains(0x400001)); // Misaligned.
}

TEST(ProgramImage, OutOfImageFetchIsFiller)
{
    ProgramImage img(0x400000);
    StaticInst s;
    s.cls = InstClass::kReturn;
    img.append(s);
    const StaticInst &filler = img.instAt(0x500000);
    EXPECT_EQ(filler.cls, InstClass::kAlu);
    EXPECT_EQ(img.instAt(0x400000).cls, InstClass::kReturn);
}

TEST(ProgramImage, FunctionAccounting)
{
    ProgramImage img;
    StaticInst s;
    for (int i = 0; i < 10; ++i)
        img.append(s);
    img.addFunction(0, 4);
    img.addFunction(4, 6);
    ASSERT_EQ(img.functions().size(), 2u);
    EXPECT_EQ(img.functions()[1].firstIndex, 4u);
    EXPECT_EQ(img.functions()[1].numInsts, 6u);
}

TEST(ProgramImage, BranchCounting)
{
    ProgramImage img;
    StaticInst alu;
    StaticInst br;
    br.cls = InstClass::kCondDirect;
    br.behavior = BranchBehavior::kBiased;
    br.param = 500;
    StaticInst never;
    never.cls = InstClass::kCondDirect;
    never.behavior = BranchBehavior::kBiased;
    never.param = 2;
    img.append(alu);
    img.append(br);
    img.append(never);
    EXPECT_EQ(img.numBranches(), 2u);
    // The almost-never-taken branch is not "likely taken".
    EXPECT_EQ(img.numLikelyTakenBranches(), 1u);
}

TEST(ProgramImage, FootprintBytes)
{
    ProgramImage img;
    StaticInst s;
    for (int i = 0; i < 8; ++i)
        img.append(s);
    EXPECT_EQ(img.footprintBytes(), 8 * kInstBytes);
}

} // namespace
} // namespace fdip
