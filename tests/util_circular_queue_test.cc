/** @file Unit and property tests for util/circular_queue.h. */

#include "util/circular_queue.h"

#include <deque>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fdip
{
namespace
{

TEST(CircularQueue, StartsEmpty)
{
    CircularQueue<int> q(4);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.full());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.capacity(), 4u);
}

TEST(CircularQueue, FifoOrder)
{
    CircularQueue<int> q(4);
    q.pushBack(1);
    q.pushBack(2);
    q.pushBack(3);
    EXPECT_EQ(q.front(), 1);
    q.popFront();
    EXPECT_EQ(q.front(), 2);
    q.pushBack(4);
    q.pushBack(5);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.back(), 5);
}

TEST(CircularQueue, WrapsAround)
{
    CircularQueue<int> q(3);
    for (int round = 0; round < 10; ++round) {
        q.pushBack(round);
        EXPECT_EQ(q.front(), round);
        q.popFront();
    }
    EXPECT_TRUE(q.empty());
}

TEST(CircularQueue, RandomAccessFromHead)
{
    CircularQueue<int> q(5);
    q.pushBack(10);
    q.pushBack(20);
    q.popFront();
    q.pushBack(30);
    q.pushBack(40);
    EXPECT_EQ(q.at(0), 20);
    EXPECT_EQ(q.at(1), 30);
    EXPECT_EQ(q.at(2), 40);
}

TEST(CircularQueue, TruncateDropsTail)
{
    CircularQueue<int> q(8);
    for (int i = 0; i < 6; ++i)
        q.pushBack(i);
    q.truncate(2);
    EXPECT_EQ(q.size(), 4u);
    EXPECT_EQ(q.back(), 3);
    EXPECT_EQ(q.front(), 0);
}

TEST(CircularQueue, ResizeToKeepsOldest)
{
    CircularQueue<int> q(8);
    for (int i = 0; i < 6; ++i)
        q.pushBack(i);
    q.resizeTo(2);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.at(0), 0);
    EXPECT_EQ(q.at(1), 1);
}

TEST(CircularQueue, ClearResets)
{
    CircularQueue<int> q(4);
    q.pushBack(1);
    q.pushBack(2);
    q.clear();
    EXPECT_TRUE(q.empty());
    q.pushBack(9);
    EXPECT_EQ(q.front(), 9);
}

/** Property: behaves exactly like std::deque under random ops. */
class QueueModelCheck : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(QueueModelCheck, MatchesDeque)
{
    const unsigned cap = GetParam();
    CircularQueue<int> q(cap);
    std::deque<int> model;
    Rng rng(cap * 7919);
    int next = 0;

    for (int step = 0; step < 20000; ++step) {
        const unsigned op = static_cast<unsigned>(rng.below(4));
        if (op == 0 && !q.full()) {
            q.pushBack(next);
            model.push_back(next);
            ++next;
        } else if (op == 1 && !q.empty()) {
            EXPECT_EQ(q.front(), model.front());
            q.popFront();
            model.pop_front();
        } else if (op == 2 && !q.empty()) {
            const std::size_t keep = rng.below(q.size() + 1);
            q.resizeTo(keep);
            model.resize(keep);
        } else if (op == 3 && !q.empty()) {
            const std::size_t i = rng.below(q.size());
            EXPECT_EQ(q.at(i), model[i]);
        }
        ASSERT_EQ(q.size(), model.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Capacities, QueueModelCheck,
                         ::testing::Values(1, 2, 3, 8, 24, 64));

} // namespace
} // namespace fdip
