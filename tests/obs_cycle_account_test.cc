/**
 * @file
 * Cycle-accounting contract tests: the top-down fetch-slot buckets
 * (src/obs/cycle_account.h) are one-hot with a fixed precedence, and
 * over any real run — every factory prefetcher, FDP on or off — they
 * conserve cycles exactly: the eight buckets sum to the post-warmup
 * cycle count, the six starved-slot buckets sum to starvationCycles,
 * and every heartbeat interval's bucket deltas sum to its dCycles.
 * (Core::run FDIP_CHECKs the two laws every tick; this test re-proves
 * them end-to-end through the public API and pins the classifier's
 * precedence order against accidental reordering.)
 */

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/core.h"
#include "core/cycle_stats.h"
#include "obs/stat_registry.h"
#include "prefetch/factory.h"
#include "trace/suite.h"

namespace fdip
{
namespace
{

/** Every name prefetch/factory.cc accepts. */
const char *const kAllPrefetchers[] = {
    "none",   "nl1",  "fnl+mma",  "d-jolt",       "eip-128",
    "eip-27", "rdip", "sn4l+dis", "sn4l+dis+btb",
};

Trace
testTrace(std::uint64_t seed = 909, std::size_t insts = 40000)
{
    WorkloadSpec s = serverSpec("cycacct", seed);
    s.numFunctions = 72;
    auto wl = std::make_shared<Workload>(buildWorkload(s));
    return generateTrace(wl, insts);
}

// --- classifier unit tests --------------------------------------------

TEST(ClassifyCycle, UnstarvedCyclesSplitOnBackpressure)
{
    CycleSignals sig;
    sig.starved = false;
    EXPECT_EQ(classifyCycle(sig), CycleBucket::kBaseCommitted);
    sig.dispatchBlocked = true;
    EXPECT_EQ(classifyCycle(sig), CycleBucket::kBackendBackpressure);
    // Fetch-side signals are irrelevant while decode is fed: the
    // frontend kept up regardless of what it was doing internally.
    sig.flushRestart = true;
    sig.l1iWait = true;
    EXPECT_EQ(classifyCycle(sig), CycleBucket::kBackendBackpressure);
}

TEST(ClassifyCycle, StarvedPrecedenceIsFixed)
{
    // All signals raised: precedence resolves flush-restart first,
    // then BTB-miss wrong path, L1I wait, ITLB wait, redirect shadow.
    CycleSignals sig;
    sig.starved = true;
    sig.flushRestart = true;
    sig.btbMissWrongPath = true;
    sig.l1iWait = true;
    sig.itlbWait = true;
    sig.redirectShadow = true;
    EXPECT_EQ(classifyCycle(sig), CycleBucket::kRecoveryFlushRestart);
    sig.flushRestart = false;
    EXPECT_EQ(classifyCycle(sig), CycleBucket::kFetchFtqEmptyBtbMiss);
    sig.btbMissWrongPath = false;
    EXPECT_EQ(classifyCycle(sig), CycleBucket::kFetchL1iMiss);
    sig.l1iWait = false;
    EXPECT_EQ(classifyCycle(sig), CycleBucket::kFetchItlbMiss);
    sig.itlbWait = false;
    EXPECT_EQ(classifyCycle(sig), CycleBucket::kFetchFtqEmptyRedirect);
    sig.redirectShadow = false;
    EXPECT_EQ(classifyCycle(sig), CycleBucket::kFetchPipeline);
}

TEST(ClassifyCycle, EverySignalCombinationYieldsExactlyOneBucket)
{
    // One-hot by exhaustion: all 2^7 signal combinations classify, and
    // chargeCycle() moves exactly one counter by exactly one.
    for (unsigned bits = 0; bits < (1u << 7); ++bits) {
        CycleSignals sig;
        sig.starved = (bits & 1u) != 0;
        sig.dispatchBlocked = (bits & 2u) != 0;
        sig.flushRestart = (bits & 4u) != 0;
        sig.btbMissWrongPath = (bits & 8u) != 0;
        sig.itlbWait = (bits & 16u) != 0;
        sig.l1iWait = (bits & 32u) != 0;
        sig.redirectShadow = (bits & 64u) != 0;
        const CycleBucket bucket = classifyCycle(sig);
        ASSERT_LT(static_cast<std::size_t>(bucket), kCycleBucketCount);
        SimStats s;
        chargeCycle(s, bucket);
        EXPECT_EQ(s.cycleBucketSum(), 1u) << "bits=" << bits;
        EXPECT_EQ(cycleBucket(s, bucket), 1u) << "bits=" << bits;
    }
}

TEST(CycleBucketTables, FieldAndNameTablesFollowEnumOrder)
{
    // kCycleBucketField[i] must address the bucket the enum value i
    // names — the heartbeat deltas, CSV columns, and campaign records
    // all index through it.
    for (std::size_t i = 0; i < kCycleBucketCount; ++i) {
        SimStats s;
        s.*kCycleBucketField[i] = 7;
        EXPECT_EQ(cycleBucket(s, static_cast<CycleBucket>(i)), 7u)
            << "field table out of order at " << kCycleBucketName[i];
        EXPECT_EQ(s.cycleBucketSum(), 7u);
    }
}

// --- end-to-end conservation ------------------------------------------

/** Runs (cfg, prefetcher) with warmup + heartbeats and asserts the
 *  conservation laws on the final stats and every heartbeat. */
void
expectConservation(CoreConfig cfg, const Trace &trace,
                   const std::string &prefetcher, const char *what)
{
    cfg.applyHistoryScheme();
    cfg.obs.heartbeatInterval = 2000;
    Core core(cfg, trace, makePrefetcher(prefetcher));
    const SimStats s = core.run(trace.size() / 5);

    EXPECT_GT(s.committedInsts, 0u) << what;
    EXPECT_EQ(s.cycleBucketSum(), s.cycles)
        << what << ": buckets do not cover every post-warmup cycle";
    EXPECT_EQ(s.stallCycleSum(), s.starvationCycles)
        << what << ": stall buckets disagree with starvationCycles";

    ASSERT_FALSE(core.heartbeats().empty()) << what;
    for (std::size_t i = 0; i < core.heartbeats().size(); ++i) {
        const HeartbeatSample &hb = core.heartbeats()[i];
        std::uint64_t dsum = 0;
        for (std::size_t b = 0; b < kCycleBucketCount; ++b)
            dsum += hb.cycleBuckets[b];
        EXPECT_EQ(dsum, hb.dCycles)
            << what << ": heartbeat " << i
            << " bucket deltas do not sum to dCycles";
    }
}

TEST(CycleAccounting, ConservesCyclesForEveryPrefetcher)
{
    const Trace trace = testTrace();
    for (const char *pf : kAllPrefetchers)
        expectConservation(paperBaselineConfig(), trace, pf, pf);
}

TEST(CycleAccounting, ConservesCyclesWithoutFdp)
{
    const Trace trace = testTrace();
    expectConservation(noFdpConfig(), trace, "none", "no-FDP");
    expectConservation(noFdpConfig(), trace, "eip-27", "no-FDP+eip27");
}

TEST(CycleAccounting, ConservesCyclesInPerfectModes)
{
    const Trace trace = testTrace();
    CoreConfig perfect_ic = paperBaselineConfig();
    perfect_ic.perfectICache = true;
    expectConservation(perfect_ic, trace, "none", "perfect I-cache");
    CoreConfig perfect_btb = paperBaselineConfig();
    perfect_btb.bpu.perfectBtb = true;
    expectConservation(perfect_btb, trace, "none", "perfect BTB");
}

// --- registry surface -------------------------------------------------

TEST(CycleAccounting, RegistryExposesBucketsAndFractions)
{
    const Trace trace = testTrace(5151, 30000);
    CoreConfig cfg = paperBaselineConfig();
    cfg.applyHistoryScheme();
    Core core(cfg, trace, makePrefetcher("none"));
    const SimStats s = core.run(trace.size() / 5);

    StatRegistry reg;
    core.registerStats(reg);
    double frac_sum = 0.0;
    std::uint64_t bucket_sum = 0;
    for (std::size_t b = 0; b < kCycleBucketCount; ++b) {
        const std::string name =
            std::string("core.cycles.") + kCycleBucketName[b];
        ASSERT_TRUE(reg.contains(name)) << name << " not registered";
        EXPECT_EQ(reg.counterValue(name),
                  cycleBucket(s, static_cast<CycleBucket>(b)));
        bucket_sum += reg.counterValue(name);
        ASSERT_TRUE(reg.contains(name + ".frac"))
            << name << ".frac not registered";
        frac_sum += reg.value(name + ".frac");
    }
    EXPECT_EQ(bucket_sum, s.cycles);
    EXPECT_NEAR(frac_sum, 1.0, 1e-9)
        << "bucket fractions do not partition the run";
}

} // namespace
} // namespace fdip
