/**
 * @file
 * Crash/fault-injection tests for the spooled campaign service: a
 * campaign killed mid-flight (missing tail records, a torn record, a
 * stale claim, an orphaned temp file) must resume to a merged result
 * byte-identical to one uninterrupted serial run; a finished campaign
 * must re-run with zero simulations; corrupt spool data must be
 * quarantined and recomputed, never trusted and never fatal; and a
 * claim owned by a live process must never be stolen.
 */

#include "sim/campaign_store.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include <unistd.h>

#include <gtest/gtest.h>

#include "sim/report.h"
#include "util/atomic_file.h"
#include "util/sync.h"

namespace fdip
{
namespace
{

std::string
tempDir()
{
    std::string tmpl = ::testing::TempDir() + "resumeXXXXXX";
    char *raw = ::mkdtemp(tmpl.data());
    EXPECT_NE(raw, nullptr);
    return tmpl;
}

/** 2 configs x 2 tiny workloads: a 4-run campaign. */
struct TinyCampaign
{
    std::vector<SuiteEntry> suite;
    std::vector<CampaignEntry> entries;

    TinyCampaign()
    {
        for (std::uint64_t seed : {21ull, 22ull}) {
            auto wl = std::make_shared<Workload>(
                buildWorkload(specCpuSpec("r", seed)));
            SuiteEntry e;
            e.name = "r-" + std::to_string(seed);
            e.trace = generateTrace(wl, 12000);
            suite.push_back(std::move(e));
        }
        entries.push_back(
            CampaignEntry{"fdp", paperBaselineConfig(), noPrefetcher(), {}});
        entries.push_back(
            CampaignEntry{"nofdp", noFdpConfig(), noPrefetcher(), {}});
    }
};

void
expectArchEqual(const std::vector<SuiteResult> &a,
                const std::vector<SuiteResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t c = 0; c < a.size(); ++c) {
        EXPECT_EQ(a[c].label, b[c].label);
        ASSERT_EQ(a[c].runs.size(), b[c].runs.size());
        for (std::size_t w = 0; w < a[c].runs.size(); ++w) {
            EXPECT_EQ(a[c].runs[w].workload, b[c].runs[w].workload);
            EXPECT_TRUE(a[c].runs[w].stats.architecturallyEqual(
                b[c].runs[w].stats))
                << a[c].label << " x " << a[c].runs[w].workload;
        }
    }
}

/** Reads a whole file; fails the test if missing. */
std::string
slurp(const std::string &path)
{
    std::string out;
    std::string err;
    EXPECT_TRUE(readFileToString(path, &out, &err)) << path << ": " << err;
    return out;
}

/** Writes raw bytes non-atomically (to fabricate torn/corrupt files). */
void
writeRaw(const std::string &path, const std::string &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
              bytes.size());
    std::fclose(f);
}

TEST(CampaignResume, SpooledColdRunMatchesSerialGolden)
{
    const TinyCampaign tc;
    const auto golden =
        runCampaign(tc.entries, tc.suite, 0.2, /*jobs=*/1);

    SpoolOptions options;
    options.spoolDir = tempDir();
    options.jobs = 4;
    SpoolSummary summary;
    const auto spooled =
        runCampaignSpooled(tc.entries, tc.suite, options, &summary);

    EXPECT_TRUE(summary.complete);
    EXPECT_EQ(summary.totalRuns, 4u);
    EXPECT_EQ(summary.simulated, 4u);
    EXPECT_EQ(summary.cacheHits, 0u);
    EXPECT_EQ(summary.quarantined, 0u);
    expectArchEqual(golden, spooled);

    // The spool now holds one verified record per run and no claims.
    const auto names = listDirectory(options.spoolDir);
    EXPECT_EQ(names.size(), 4u);
    for (const auto &n : names)
        EXPECT_NE(n.find(".json"), std::string::npos) << n;
}

TEST(CampaignResume, FinishedCampaignRerunSimulatesNothing)
{
    const TinyCampaign tc;
    SpoolOptions options;
    options.spoolDir = tempDir();
    runCampaignSpooled(tc.entries, tc.suite, options);

    // Interposer-style run counter: any actual simulation trips it.
    Atomic<std::size_t> simulations{0};
    options.jobs = 4;
    options.onSimulate = [&](std::size_t, std::size_t) {
        simulations.fetchAdd(1, std::memory_order_relaxed);
    };
    SpoolSummary summary;
    const auto rerun =
        runCampaignSpooled(tc.entries, tc.suite, options, &summary);

    EXPECT_EQ(simulations.load(std::memory_order_relaxed), 0u)
        << "a finished campaign must re-simulate nothing";
    EXPECT_EQ(summary.simulated, 0u);
    EXPECT_EQ(summary.cacheHits, 4u);
    EXPECT_TRUE(summary.complete);
    expectArchEqual(runCampaign(tc.entries, tc.suite, 0.2, 1), rerun);
}

TEST(CampaignResume, KilledCampaignResumesToByteIdenticalReport)
{
    const TinyCampaign tc;
    const std::string spool = tempDir();

    // The uninterrupted serial reference, reported to JSON and CSV.
    const auto golden =
        runCampaign(tc.entries, tc.suite, 0.2, /*jobs=*/1);
    const std::string golden_json = spool + "/../golden.json";
    const std::string golden_csv = spool + "/../golden.csv";
    ASSERT_TRUE(writeSuiteResultsJson(golden_json, golden));
    ASSERT_TRUE(writeSuiteResultsCsv(golden_csv, golden));

    // Complete the campaign once, then fabricate a mid-campaign kill:
    SpoolOptions options;
    options.spoolDir = spool;
    ASSERT_TRUE([&] {
        SpoolSummary s;
        runCampaignSpooled(tc.entries, tc.suite, options, &s);
        return s.complete;
    }());
    const auto manifest = buildManifest(tc.entries, tc.suite, 0.2);
    ASSERT_EQ(manifest.size(), 4u);
    //  - one run never finished (its record is missing, and the dead
    //    worker's claim file is still in place),
    ASSERT_TRUE(removeFile(spool + "/" + manifest[1].hash + ".json"));
    writeRaw(spool + "/" + manifest[1].hash + ".claim",
             "fdip-claim-v1\npid=999999999\nhost=" + [] {
                 char h[256] = {0};
                 ::gethostname(h, sizeof(h) - 1);
                 return std::string(h);
             }() + "\n");
    //  - the tail record is torn mid-line (as if the filesystem lost
    //    the tail of a non-atomic writer),
    const std::string tail = spool + "/" + manifest[3].hash + ".json";
    const std::string full = slurp(tail);
    writeRaw(tail, full.substr(0, full.size() / 2));
    //  - and an orphaned atomic-write temp file survived the kill.
    writeRaw(spool + "/" + manifest[2].hash + ".json.tmp.999999999",
             "partial");

    // Resume: reclaim the dead claim, quarantine the torn record,
    // recompute exactly the missing tail.
    Atomic<std::size_t> simulations{0};
    options.reclaimDeadClaims = true;
    options.onSimulate = [&](std::size_t, std::size_t) {
        simulations.fetchAdd(1, std::memory_order_relaxed);
    };
    SpoolSummary summary;
    const auto resumed =
        runCampaignSpooled(tc.entries, tc.suite, options, &summary);

    EXPECT_TRUE(summary.complete);
    EXPECT_EQ(summary.reclaimed, 1u);
    EXPECT_EQ(summary.quarantined, 1u);
    EXPECT_EQ(summary.simulated, 2u) << "only the lost runs recompute";
    EXPECT_EQ(simulations.load(std::memory_order_relaxed), 2u);
    EXPECT_EQ(summary.cacheHits, 2u);
    EXPECT_FALSE(
        fileExists(spool + "/" + manifest[2].hash + ".json.tmp.999999999"))
        << "orphaned temp files are removed on resume";

    // The resumed, merged result is byte-identical to the golden run,
    // through both report writers.
    expectArchEqual(golden, resumed);
    const std::string resumed_json = spool + "/../resumed.json";
    const std::string resumed_csv = spool + "/../resumed.csv";
    ASSERT_TRUE(writeSuiteResultsJson(resumed_json, resumed));
    ASSERT_TRUE(writeSuiteResultsCsv(resumed_csv, resumed));
    EXPECT_EQ(slurp(golden_json), slurp(resumed_json));
    EXPECT_EQ(slurp(golden_csv), slurp(resumed_csv));

    // And a further merge-only pass reproduces the same bytes again.
    std::vector<SuiteResult> merged;
    SpoolSummary merge_summary;
    std::string merge_error;
    ASSERT_TRUE(mergeCampaignSpool(tc.entries, tc.suite, spool, 0.2,
                                   &merged, &merge_summary, &merge_error))
        << merge_error;
    const std::string merged_json = spool + "/../merged.json";
    ASSERT_TRUE(writeSuiteResultsJson(merged_json, merged));
    EXPECT_EQ(slurp(golden_json), slurp(merged_json));
}

TEST(CampaignResume, CorruptRecordsAreQuarantinedAndRecomputed)
{
    const TinyCampaign tc;
    const std::string spool = tempDir();
    SpoolOptions options;
    options.spoolDir = spool;
    runCampaignSpooled(tc.entries, tc.suite, options);
    const auto manifest = buildManifest(tc.entries, tc.suite, 0.2);

    // Four distinct corruptions, one per record:
    //  [0] flipped checksum digit,
    const std::string p0 = spool + "/" + manifest[0].hash + ".json";
    std::string r0 = slurp(p0);
    const std::size_t cs = r0.find("\"statsChecksum\": \"");
    ASSERT_NE(cs, std::string::npos);
    const std::size_t digit = cs + std::string("\"statsChecksum\": \"").size();
    r0[digit] = r0[digit] == '0' ? '1' : '0';
    writeRaw(p0, r0);
    //  [1] unknown (future) record version,
    const std::string p1 = spool + "/" + manifest[1].hash + ".json";
    std::string r1 = slurp(p1);
    const std::string vkey = "\"fdipCampaignRecord\": " +
                             std::to_string(kCampaignRecordVersion);
    const std::size_t vp = r1.find(vkey);
    ASSERT_NE(vp, std::string::npos);
    r1.replace(vp, vkey.size(), "\"fdipCampaignRecord\": 999");
    writeRaw(p1, r1);
    //  [2] a valid record filed under the wrong key (duplicate),
    const std::string p3 = spool + "/" + manifest[3].hash + ".json";
    writeRaw(spool + "/" + manifest[2].hash + ".json", slurp(p3));
    //  [3] truncated to one byte.
    writeRaw(p3, "{");

    Atomic<std::size_t> simulations{0};
    options.onSimulate = [&](std::size_t, std::size_t) {
        simulations.fetchAdd(1, std::memory_order_relaxed);
    };
    SpoolSummary summary;
    const auto recovered =
        runCampaignSpooled(tc.entries, tc.suite, options, &summary);

    EXPECT_TRUE(summary.complete);
    EXPECT_EQ(summary.quarantined, 4u);
    EXPECT_EQ(summary.simulated, 4u)
        << "nothing corrupt may be served from cache";
    EXPECT_EQ(simulations.load(std::memory_order_relaxed), 4u);
    EXPECT_EQ(summary.cacheHits, 0u);
    expectArchEqual(runCampaign(tc.entries, tc.suite, 0.2, 1),
                    recovered);

    // Quarantined copies are kept for postmortem.
    std::size_t quarantined_files = 0;
    for (const auto &n : listDirectory(spool)) {
        if (n.size() > 12 &&
            n.compare(n.size() - 12, 12, ".quarantined") == 0)
            ++quarantined_files;
    }
    EXPECT_EQ(quarantined_files, 4u);
}

TEST(CampaignResume, LiveClaimIsNeverStolenEvenOnResume)
{
    const TinyCampaign tc;
    const std::string spool = tempDir();
    const auto manifest = buildManifest(tc.entries, tc.suite, 0.2);

    // A claim owned by a *live* process: this one.
    char host[256] = {0};
    ::gethostname(host, sizeof(host) - 1);
    writeRaw(spool + "/" + manifest[0].hash + ".claim",
             "fdip-claim-v1\npid=" +
                 std::to_string(static_cast<long>(::getpid())) +
                 "\nhost=" + host + "\n");

    SpoolOptions options;
    options.spoolDir = spool;
    options.reclaimDeadClaims = true;
    SpoolSummary summary;
    runCampaignSpooled(tc.entries, tc.suite, options, &summary);

    EXPECT_FALSE(summary.complete)
        << "the claimed run belongs to the (live) claimant";
    EXPECT_EQ(summary.reclaimed, 0u);
    EXPECT_EQ(summary.simulated, 3u);
    EXPECT_EQ(summary.claimedElsewhere, 1u);
    EXPECT_TRUE(fileExists(spool + "/" + manifest[0].hash + ".claim"));
}

TEST(CampaignResume, DeadClaimBlocksWithoutResumeFlag)
{
    const TinyCampaign tc;
    const std::string spool = tempDir();
    const auto manifest = buildManifest(tc.entries, tc.suite, 0.2);

    char host[256] = {0};
    ::gethostname(host, sizeof(host) - 1);
    writeRaw(spool + "/" + manifest[2].hash + ".claim",
             "fdip-claim-v1\npid=999999999\nhost=" + std::string(host) +
                 "\n");

    // Without --resume the claim is honored (it could be a live remote
    // worker); the drain completes everything else and reports
    // incomplete.
    SpoolOptions options;
    options.spoolDir = spool;
    SpoolSummary summary;
    runCampaignSpooled(tc.entries, tc.suite, options, &summary);
    EXPECT_FALSE(summary.complete);
    EXPECT_EQ(summary.claimedElsewhere, 1u);
    EXPECT_EQ(summary.reclaimed, 0u);

    // With --resume the dead claim is reaped and the campaign
    // completes.
    options.reclaimDeadClaims = true;
    SpoolSummary resumed;
    const auto results =
        runCampaignSpooled(tc.entries, tc.suite, options, &resumed);
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.reclaimed, 1u);
    EXPECT_EQ(resumed.simulated, 1u);
    EXPECT_EQ(resumed.cacheHits, 3u);
    expectArchEqual(runCampaign(tc.entries, tc.suite, 0.2, 1), results);
}

TEST(CampaignMerge, MergeFailsClearlyWhenRecordsAreMissing)
{
    const TinyCampaign tc;
    const std::string spool = tempDir();
    SpoolOptions options;
    options.spoolDir = spool;
    runCampaignSpooled(tc.entries, tc.suite, options);
    const auto manifest = buildManifest(tc.entries, tc.suite, 0.2);
    ASSERT_TRUE(removeFile(spool + "/" + manifest[2].hash + ".json"));

    std::vector<SuiteResult> merged;
    SpoolSummary summary;
    std::string error;
    EXPECT_FALSE(mergeCampaignSpool(tc.entries, tc.suite, spool, 0.2,
                                    &merged, &summary, &error));
    EXPECT_FALSE(summary.complete);
    EXPECT_EQ(summary.cacheHits, 3u);
    EXPECT_NE(error.find(manifest[2].hash), std::string::npos)
        << "error must name the missing hash: " << error;
}

TEST(CampaignMerge, WarmupFractionIsPartOfTheAddress)
{
    // A spool filled at warmup 0.2 must not satisfy a 0.3 campaign:
    // same configs, same workloads, different experiment.
    const TinyCampaign tc;
    const std::string spool = tempDir();
    SpoolOptions options;
    options.spoolDir = spool;
    options.warmupFraction = 0.2;
    runCampaignSpooled(tc.entries, tc.suite, options);

    std::vector<SuiteResult> merged;
    SpoolSummary summary;
    std::string error;
    EXPECT_FALSE(mergeCampaignSpool(tc.entries, tc.suite, spool, 0.3,
                                    &merged, &summary, &error));
    EXPECT_EQ(summary.cacheHits, 0u);
}

} // namespace
} // namespace fdip
