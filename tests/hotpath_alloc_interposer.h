/**
 * @file
 * Counting global operator new/delete interposer.
 *
 * Include this header in EXACTLY ONE test translation unit per binary:
 * it defines the program-wide replacement allocation functions
 * ([new.delete.single]), which makes every heap allocation in the
 * process tick a counter. tests/core_hotpath_test.cc uses it as the
 * runtime ground truth for the hot-path discipline: a snapshot of the
 * counter before and after steady-state Core::run must not move.
 *
 * The replacements forward to std::malloc/std::free and are
 * deliberately not inline (replacement allocation functions must not
 * be). Counters are plain integers: the simulator's tick loop is
 * single-threaded by design (the concurrency audit enforces it), and
 * the gtest main thread is the only allocator during a measurement
 * window.
 */

#ifndef FDIP_TESTS_HOTPATH_ALLOC_INTERPOSER_H_
#define FDIP_TESTS_HOTPATH_ALLOC_INTERPOSER_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace fdip
{
namespace test
{

inline std::uint64_t g_alloc_calls = 0;
inline std::uint64_t g_alloc_bytes = 0;
inline std::uint64_t g_dealloc_calls = 0;

/** Allocations performed since process start. */
inline std::uint64_t
allocCalls()
{
    return g_alloc_calls;
}

/** Bytes requested since process start. */
inline std::uint64_t
allocBytes()
{
    return g_alloc_bytes;
}

/** Deallocations performed since process start. */
inline std::uint64_t
deallocCalls()
{
    return g_dealloc_calls;
}

namespace alloc_detail
{

inline void *
countedAlloc(std::size_t n)
{
    ++g_alloc_calls;
    g_alloc_bytes += n;
    return std::malloc(n == 0 ? 1 : n);
}

inline void *
countedAlignedAlloc(std::size_t n, std::size_t align)
{
    ++g_alloc_calls;
    g_alloc_bytes += n;
    void *p = nullptr;
    if (posix_memalign(&p, align < sizeof(void *) ? sizeof(void *) : align,
                       n == 0 ? 1 : n) != 0)
        return nullptr;
    return p;
}

// GCC pairs a visible `new` expression with the std::free it inlines
// from here and reports -Wmismatched-new-delete; routing delete to
// free IS the interposition, so the warning is a false positive.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
inline void
countedFree(void *p)
{
    if (p != nullptr)
        ++g_dealloc_calls;
    std::free(p);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

} // namespace alloc_detail
} // namespace test
} // namespace fdip

// ---- Replacement allocation functions (single-TU; see file comment).

void *
operator new(std::size_t n)
{
    void *p = fdip::test::alloc_detail::countedAlloc(n);
    if (p == nullptr)
        throw std::bad_alloc{};
    return p;
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    return fdip::test::alloc_detail::countedAlloc(n);
}

void *
operator new[](std::size_t n, const std::nothrow_t &) noexcept
{
    return fdip::test::alloc_detail::countedAlloc(n);
}

void *
operator new(std::size_t n, std::align_val_t align)
{
    void *p = fdip::test::alloc_detail::countedAlignedAlloc(
        n, static_cast<std::size_t>(align));
    if (p == nullptr)
        throw std::bad_alloc{};
    return p;
}

void *
operator new[](std::size_t n, std::align_val_t align)
{
    return operator new(n, align);
}

void *
operator new(std::size_t n, std::align_val_t align,
             const std::nothrow_t &) noexcept
{
    return fdip::test::alloc_detail::countedAlignedAlloc(
        n, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t n, std::align_val_t align,
               const std::nothrow_t &) noexcept
{
    return fdip::test::alloc_detail::countedAlignedAlloc(
        n, static_cast<std::size_t>(align));
}

void
operator delete(void *p) noexcept
{
    fdip::test::alloc_detail::countedFree(p);
}

void
operator delete[](void *p) noexcept
{
    fdip::test::alloc_detail::countedFree(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    fdip::test::alloc_detail::countedFree(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    fdip::test::alloc_detail::countedFree(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    fdip::test::alloc_detail::countedFree(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    fdip::test::alloc_detail::countedFree(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    fdip::test::alloc_detail::countedFree(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    fdip::test::alloc_detail::countedFree(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    fdip::test::alloc_detail::countedFree(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    fdip::test::alloc_detail::countedFree(p);
}

#endif // FDIP_TESTS_HOTPATH_ALLOC_INTERPOSER_H_
