/** @file Unit and property tests for util/rng.h. */

#include "util/rng.h"

#include <set>

#include <gtest/gtest.h>

namespace fdip
{
namespace
{

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng r(9);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t v = r.range(3, 7);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 7u);
        saw_lo = saw_lo || v == 3;
        saw_hi = saw_hi || v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChancePermilleExtremes)
{
    Rng r(13);
    for (int i = 0; i < 200; ++i) {
        EXPECT_FALSE(r.chancePermille(0));
        EXPECT_TRUE(r.chancePermille(1000));
    }
}

TEST(Rng, ChancePermilleApproximatesProbability)
{
    Rng r(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (r.chancePermille(250))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(19);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NoShortCycles)
{
    Rng r(23);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i)
        seen.insert(r.next());
    EXPECT_EQ(seen.size(), 10000u);
}

/** Property sweep: below() is unbiased enough across bounds. */
class RngBoundSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngBoundSweep, RoughlyUniform)
{
    const std::uint64_t bound = GetParam();
    Rng r(bound * 31 + 1);
    std::vector<int> buckets(bound, 0);
    const int per = 2000;
    for (std::uint64_t i = 0; i < bound * per; ++i)
        ++buckets[r.below(bound)];
    for (std::uint64_t b = 0; b < bound; ++b) {
        EXPECT_GT(buckets[b], per / 2) << "bucket " << b;
        EXPECT_LT(buckets[b], per * 2) << "bucket " << b;
    }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(2, 3, 5, 8, 13, 100));

} // namespace
} // namespace fdip
