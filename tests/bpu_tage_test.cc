/** @file Behavioural tests for the TAGE direction predictor. */

#include "bpu/tage.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fdip
{
namespace
{

struct TageHarness
{
    // Direction history so single-branch microtests have observable
    // context (under THR a lone branch's iterations all hash alike;
    // real code interleaves other taken branches).
    BranchHistory hist{HistoryPolicy::kDirectionHistory};
    Tage tage;

    explicit TageHarness(unsigned kb = 18)
        : tage(TageConfig::sized(kb), hist)
    {
    }

    bool
    step(Addr pc, bool taken)
    {
        TagePrediction meta;
        const bool pred = tage.predict(pc, meta);
        tage.update(pc, taken, meta);
        hist.pushBranch(pc, pc ^ 0x40, taken);
        return pred;
    }
};

TEST(Tage, LearnsAlwaysTaken)
{
    TageHarness h;
    int wrong = 0;
    for (int i = 0; i < 1000; ++i) {
        if (h.step(0x1000, true) != true && i > 10)
            ++wrong;
    }
    EXPECT_LE(wrong, 2);
}

TEST(Tage, LearnsAlwaysNotTaken)
{
    TageHarness h;
    int wrong = 0;
    for (int i = 0; i < 1000; ++i) {
        if (h.step(0x2000, false) != false && i > 10)
            ++wrong;
    }
    EXPECT_LE(wrong, 2);
}

TEST(Tage, LearnsAlternatingPattern)
{
    // T/NT alternation is trivially captured with 1 bit of history.
    TageHarness h;
    int wrong = 0;
    for (int i = 0; i < 4000; ++i) {
        const bool taken = (i % 2) == 0;
        if (h.step(0x3000, taken) != taken && i > 500)
            ++wrong;
    }
    EXPECT_LT(wrong, 50);
}

TEST(Tage, LearnsLoopExit)
{
    // Taken 7 times then not-taken, repeating: the longer-history
    // tables must capture the exit.
    TageHarness h;
    int wrong = 0;
    int total = 0;
    for (int rep = 0; rep < 600; ++rep) {
        for (int i = 0; i < 8; ++i) {
            const bool taken = i < 7;
            const bool pred = h.step(0x4000, taken);
            if (rep > 100) {
                ++total;
                if (pred != taken)
                    ++wrong;
            }
        }
    }
    EXPECT_LT(static_cast<double>(wrong) / total, 0.05);
}

TEST(Tage, LearnsHistoryCorrelatedBranch)
{
    // Branch B's outcome equals branch A's most recent direction.
    TageHarness h;
    Rng rng(5);
    int wrong = 0;
    int total = 0;
    for (int i = 0; i < 6000; ++i) {
        const bool a_taken = (rng.next() & 1) != 0;
        h.step(0x5000, a_taken);
        const bool pred = h.step(0x6000, a_taken);
        if (i > 1500) {
            ++total;
            if (pred != a_taken)
                ++wrong;
        }
    }
    EXPECT_LT(static_cast<double>(wrong) / total, 0.08);
}

TEST(Tage, RandomBranchGetsBiasRate)
{
    // A p=0.9 random branch cannot be predicted much better than 90%,
    // but must not be much worse either.
    TageHarness h;
    Rng rng(7);
    int wrong = 0;
    int total = 0;
    for (int i = 0; i < 8000; ++i) {
        const bool taken = rng.below(10) != 0; // p(taken)=0.9
        const bool pred = h.step(0x7000, taken);
        if (i > 1000) {
            ++total;
            if (pred != taken)
                ++wrong;
        }
    }
    const double rate = static_cast<double>(wrong) / total;
    EXPECT_LT(rate, 0.18);
}

TEST(Tage, SizesScaleStorage)
{
    BranchHistory h9(HistoryPolicy::kTargetHistory);
    BranchHistory h18(HistoryPolicy::kTargetHistory);
    BranchHistory h36(HistoryPolicy::kTargetHistory);
    Tage t9(TageConfig::sized(9), h9);
    Tage t18(TageConfig::sized(18), h18);
    Tage t36(TageConfig::sized(36), h36);
    EXPECT_LT(t9.storageBits(), t18.storageBits());
    EXPECT_LT(t18.storageBits(), t36.storageBits());
    EXPECT_NEAR(static_cast<double>(t36.storageBits()) /
                    static_cast<double>(t18.storageBits()),
                2.0, 0.2);
}

TEST(Tage, RejectsUnknownSize)
{
    EXPECT_DEATH({ TageConfig::sized(17); }, "unsupported TAGE size");
}

TEST(Tage, HistoryLengthsAreGeometric)
{
    BranchHistory hist(HistoryPolicy::kTargetHistory);
    Tage t(TageConfig::sized(18), hist);
    const TageConfig &cfg = t.config();
    EXPECT_EQ(t.historyLength(0), cfg.minHistory);
    EXPECT_EQ(t.historyLength(cfg.numTables - 1), cfg.maxHistory);
    for (unsigned i = 1; i < cfg.numTables; ++i)
        EXPECT_GT(t.historyLength(i), t.historyLength(i - 1));
}

TEST(Tage, DistinctBranchesDoNotDestructivelyAlias)
{
    // Two opposite-biased branches must both be predictable.
    TageHarness h;
    int wrong = 0;
    for (int i = 0; i < 3000; ++i) {
        if (h.step(0x8000, true) != true && i > 100)
            ++wrong;
        if (h.step(0x9000, false) != false && i > 100)
            ++wrong;
    }
    EXPECT_LT(wrong, 60);
}

} // namespace
} // namespace fdip
