/** @file Invariant-checker tests: FTQ overflow, RAS underflow/restore
 *  bounds, illegal BTB/cache/core configurations, stats-conservation
 *  violations, scope paths, and the frontend's bounded prefetch
 *  tracking (eviction regression). */

#include "check/invariants.h"

#include <gtest/gtest.h>

#include "core/core.h"
#include "micro_program.h"
#include "prefetch/prefetcher.h"
#include "util/circular_queue.h"

namespace fdip
{
namespace
{

using test::MicroProgram;

/** Skips the test when FDIP_CHECK is compiled out (-DFDIP_CHECKS=OFF). */
#define REQUIRE_CHECKS_ENABLED()                                              \
    do {                                                                      \
        if (!kInvariantChecksEnabled)                                         \
            GTEST_SKIP() << "invariant checks compiled out";                  \
    } while (0)

/** A minimal well-formed FTQ entry (state set, offsets consistent). */
FtqEntry
validEntry(std::uint64_t seq)
{
    FtqEntry e;
    e.startAddr = 0x1000;
    e.termOffset = 7;
    e.state = FtqState::kPredicted;
    e.seq = seq;
    return e;
}

/** Pushes a fresh well-formed entry onto @p ftq.
 *
 *  Deliberately a named local + std::move, not
 *  `ftq.push(validEntry(seq))`: gcc 12.2 at -O2 mis-lowers the elided
 *  prvalue temporary through push(FtqEntry&&) in gtest TUs, dropping
 *  the `state` store of the first pushed entry (verified:
 *  -fno-elide-constructors or -O1/-O3 make it disappear; ASan and
 *  UBSan are clean; the named-local form — which is also what the
 *  product code uses — is always correct). */
void
pushValid(Ftq &ftq, std::uint64_t seq)
{
    FtqEntry e = validEntry(seq);
    ftq.push(std::move(e));
}

// ---------------------------------------------------------------------
// FDIP_CHECK machinery.
// ---------------------------------------------------------------------

TEST(Invariant, ViolationMessageCarriesScopePath)
{
    REQUIRE_CHECKS_ENABLED();
    InvariantScope outer("outer");
    InvariantScope inner("inner");
    EXPECT_EQ(InvariantScope::path(), "outer/inner");
    try {
        FDIP_CHECK(false, "value was %d", 42);
        FAIL() << "FDIP_CHECK(false) did not throw";
    } catch (const InvariantViolation &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("outer/inner"), std::string::npos) << msg;
        EXPECT_NE(msg.find("value was 42"), std::string::npos) << msg;
        EXPECT_NE(msg.find("false"), std::string::npos) << msg;
    }
}

TEST(Invariant, ScopeStackUnwindsAfterThrow)
{
    REQUIRE_CHECKS_ENABLED();
    EXPECT_EQ(InvariantScope::path(), "(global)");
    try {
        InvariantScope scope("doomed");
        FDIP_CHECK(false, "boom");
    } catch (const InvariantViolation &) {
    }
    EXPECT_EQ(InvariantScope::path(), "(global)");
}

TEST(Invariant, RequireIsActiveRegardlessOfBuild)
{
    // FDIP_REQUIRE guards construction-time legality even in
    // checks-off builds: an illegal structure can never be built.
    EXPECT_THROW(CircularQueue<int>(0), InvariantViolation);
}

// ---------------------------------------------------------------------
// Queue and FTQ occupancy.
// ---------------------------------------------------------------------

TEST(Invariant, CircularQueueMisuseIsCaught)
{
    REQUIRE_CHECKS_ENABLED();
    CircularQueue<int> q(2);
    EXPECT_THROW(q.popFront(), InvariantViolation);
    EXPECT_THROW(static_cast<void>(q.at(0)), InvariantViolation);
    q.pushBack(1);
    q.pushBack(2);
    EXPECT_THROW(q.pushBack(3), InvariantViolation);
    EXPECT_THROW(q.truncate(3), InvariantViolation);
    EXPECT_THROW(q.resizeTo(3), InvariantViolation);
}

TEST(Invariant, FtqOverflowIsCaught)
{
    REQUIRE_CHECKS_ENABLED();
    Ftq ftq(2);
    pushValid(ftq, 0);
    pushValid(ftq, 1);
    ASSERT_TRUE(ftq.full());
    EXPECT_THROW(pushValid(ftq, 2), InvariantViolation);
}

TEST(Invariant, FtqIntegrityCatchesMalformedEntries)
{
    REQUIRE_CHECKS_ENABLED();
    {
        Ftq ftq(4);
        pushValid(ftq, 0);
        pushValid(ftq, 1);
        EXPECT_NO_THROW(checkFtqIntegrity(ftq));
    }
    {
        // Non-monotone sequence numbers.
        Ftq ftq(4);
        pushValid(ftq, 5);
        pushValid(ftq, 3);
        EXPECT_THROW(checkFtqIntegrity(ftq), InvariantViolation);
    }
    {
        // Queued entry still in the invalid state.
        Ftq ftq(4);
        FtqEntry e = validEntry(0);
        e.state = FtqState::kInvalid;
        ftq.push(std::move(e));
        EXPECT_THROW(checkFtqIntegrity(ftq), InvariantViolation);
    }
    {
        // Terminating offset beyond the 8-instruction block.
        FtqEntry e = validEntry(0);
        e.termOffset = 8;
        EXPECT_THROW(checkFtqEntry(e), InvariantViolation);
    }
    {
        // Start past the terminating offset.
        FtqEntry e = validEntry(0);
        e.startAddr = 0x1000 + 5 * kInstBytes;
        e.termOffset = 2;
        EXPECT_THROW(checkFtqEntry(e), InvariantViolation);
    }
    {
        // Block events not strictly ordered by offset.
        FtqEntry e = validEntry(0);
        e.numEvents = 2;
        e.events[0].offset = 4;
        e.events[1].offset = 4;
        EXPECT_THROW(checkFtqEntry(e), InvariantViolation);
    }
}

// ---------------------------------------------------------------------
// RAS semantics.
// ---------------------------------------------------------------------

TEST(Invariant, RasUnderflowIsCountedNotFatalByDefault)
{
    // Hardware-faithful: wrong-path over-pops are legal and counted.
    Ras ras(4);
    ras.push(0x100);
    EXPECT_EQ(ras.pop(), 0x100u);
    ras.pop(); // Nothing live: an underflow, not an error.
    ras.pop();
    EXPECT_EQ(ras.underflows(), 2u);
    EXPECT_EQ(ras.liveEntries(), 0u);
}

TEST(Invariant, RasStrictModeRejectsUnderflow)
{
    REQUIRE_CHECKS_ENABLED();
    Ras ras(4);
    ras.setStrictUnderflow(true);
    ras.push(0x100);
    EXPECT_NO_THROW(ras.pop());
    EXPECT_THROW(ras.pop(), InvariantViolation);
    EXPECT_EQ(ras.underflows(), 0u);
}

TEST(Invariant, RasRestoreBoundsAreChecked)
{
    REQUIRE_CHECKS_ENABLED();
    Ras ras(4);
    RasSnapshot bad_index;
    bad_index.topIndex = 4; // One past the last slot.
    EXPECT_THROW(ras.restore(bad_index), InvariantViolation);
    EXPECT_THROW(checkRasSnapshot(bad_index, ras), InvariantViolation);

    RasSnapshot bad_live;
    bad_live.liveCount = 5; // More live entries than the RAS holds.
    EXPECT_THROW(ras.restore(bad_live), InvariantViolation);
    EXPECT_THROW(checkRasSnapshot(bad_live, ras), InvariantViolation);
}

TEST(Invariant, RasSnapshotsTrackLiveCount)
{
    Ras ras(4);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.snapshot().liveCount, 2u);
    EXPECT_EQ(ras.snapshotAfterPush(0x300).liveCount, 3u);
    EXPECT_EQ(ras.snapshotAfterPop().liveCount, 1u);

    // Restoring a snapshot rewinds the live count with the pointer.
    const RasSnapshot snap = ras.snapshot();
    ras.pop();
    ras.pop();
    ras.pop(); // Underflow on the wrong path...
    ras.restore(snap);
    EXPECT_EQ(ras.liveEntries(), 2u); // ...repaired by the checkpoint.
    EXPECT_EQ(ras.top(), 0x200u);
}

TEST(Invariant, RasConstructionRequiresDepth)
{
    EXPECT_THROW(Ras(0), InvariantViolation);
}

// ---------------------------------------------------------------------
// Configuration legality.
// ---------------------------------------------------------------------

TEST(Invariant, IllegalBtbConfigsAreRejected)
{
    REQUIRE_CHECKS_ENABLED();
    EXPECT_NO_THROW(checkBtbConfig(BtbConfig{}));
    {
        BtbConfig cfg; // 8192 entries not divisible by 5 ways.
        cfg.ways = 5;
        EXPECT_THROW(checkBtbConfig(cfg), InvariantViolation);
    }
    {
        BtbConfig cfg; // 96 sets: not a power of two.
        cfg.numEntries = 384;
        cfg.ways = 4;
        EXPECT_THROW(checkBtbConfig(cfg), InvariantViolation);
    }
    {
        BtbConfig cfg;
        cfg.ways = 0;
        EXPECT_THROW(checkBtbConfig(cfg), InvariantViolation);
    }
}

TEST(Invariant, IllegalCacheConfigsAreRejected)
{
    REQUIRE_CHECKS_ENABLED();
    EXPECT_NO_THROW(checkCacheConfig(CacheConfig{}));
    {
        CacheConfig cfg;
        cfg.lineBytes = 48; // Not a power of two.
        EXPECT_THROW(checkCacheConfig(cfg), InvariantViolation);
    }
    {
        CacheConfig cfg;
        cfg.sizeBytes = 96 * 1024; // 1536 lines / 8 ways = 192 sets.
        EXPECT_THROW(checkCacheConfig(cfg), InvariantViolation);
    }
}

TEST(Invariant, IllegalCoreConfigsAreRejected)
{
    REQUIRE_CHECKS_ENABLED();
    EXPECT_NO_THROW(checkCoreConfig(paperBaselineConfig()));
    EXPECT_NO_THROW(checkCoreConfig(noFdpConfig()));
    {
        CoreConfig cfg = paperBaselineConfig();
        cfg.ftqEntries = 1; // Below the 2-entry no-FDP floor.
        EXPECT_THROW(checkCoreConfig(cfg), InvariantViolation);
    }
    {
        CoreConfig cfg = paperBaselineConfig();
        cfg.fetchBandwidth = 0;
        EXPECT_THROW(checkCoreConfig(cfg), InvariantViolation);
    }
    {
        CoreConfig cfg = paperBaselineConfig();
        cfg.bpu.btb.ways = 3; // Illegal sub-config is reached too.
        EXPECT_THROW(checkCoreConfig(cfg), InvariantViolation);
    }
}

// ---------------------------------------------------------------------
// Statistics conservation.
// ---------------------------------------------------------------------

TEST(Invariant, StatsConservationViolationsAreCaught)
{
    REQUIRE_CHECKS_ENABLED();
    SimStats s;
    EXPECT_NO_THROW(checkSimStats(s));
    EXPECT_NO_THROW(checkSimStatsFinal(s));
    {
        SimStats bad = s;
        bad.mispredicts = 3; // No cause bucket accounts for these.
        EXPECT_THROW(checkSimStats(bad), InvariantViolation);
    }
    {
        SimStats bad = s;
        bad.pfcCorrect = 1; // An outcome without a fire.
        EXPECT_THROW(checkSimStats(bad), InvariantViolation);
    }
    {
        SimStats bad = s;
        bad.l1iDemandMisses = 1; // A miss without an access.
        EXPECT_THROW(checkSimStats(bad), InvariantViolation);
    }
    {
        SimStats bad = s;
        bad.prefetchesUseful = 1; // Useful but never issued.
        EXPECT_THROW(checkSimStatsFinal(bad), InvariantViolation);
    }
}

TEST(Invariant, CacheConservationHoldsAndViolationsThrow)
{
    REQUIRE_CHECKS_ENABLED();
    Cache cache(CacheConfig{});
    cache.access(0x1000);
    cache.fill(0x1000);
    cache.access(0x1000);
    EXPECT_NO_THROW(checkCacheConservation(cache));
    // There is no way to corrupt a Cache's counters through its public
    // interface — which is the point. Verify the checker itself via an
    // FTQ-independent identity instead: hits + misses == tagAccesses.
    EXPECT_EQ(cache.hits() + cache.misses(), cache.tagAccesses());
}

// ---------------------------------------------------------------------
// End-to-end: a full simulated run holds every tick-time invariant.
// ---------------------------------------------------------------------

TEST(Invariant, FullRunHoldsTickInvariants)
{
    // The frontend re-verifies FTQ integrity, cache conservation, and
    // stats conservation at every tick; a clean run is the proof.
    MicroProgram mp;
    const Addr top = mp.pcOfNext();
    for (unsigned i = 0; i < 63; ++i)
        mp.alu();
    mp.jump(top);
    const Trace t = mp.run(20000);

    CoreConfig cfg = paperBaselineConfig();
    cfg.applyHistoryScheme();
    Core core(cfg, t, std::make_unique<NullPrefetcher>());
    const SimStats s = core.run(0);
    EXPECT_EQ(s.committedInsts, 20000u);
    EXPECT_NO_THROW(checkSimStatsFinal(s));
}

TEST(Invariant, PrefetchTrackingStaysBoundedUnderThrash)
{
    // Regression: usefulness tracking entries must be dropped when
    // their line leaves the L1I. A code footprint twice the L1I
    // (64 KB vs 32 KB) previously grew the map one entry per distinct
    // line, forever.
    MicroProgram mp;
    const Addr top = mp.pcOfNext();
    for (unsigned i = 0; i < 16383; ++i)
        mp.alu();
    mp.jump(top);
    const Trace t = mp.run(40000); // Two-and-a-half laps.

    CoreConfig cfg = paperBaselineConfig();
    cfg.applyHistoryScheme();
    Core core(cfg, t, std::make_unique<NullPrefetcher>());
    core.run(0);

    const std::size_t l1i_lines =
        cfg.l1i.sizeBytes / cfg.l1i.lineBytes; // 512
    // Bounded by resident lines plus in-flight fills — not by the
    // 1024-line program footprint.
    EXPECT_LE(core.frontend().prefetchTrackingEntries(),
              l1i_lines + cfg.l1iMshrs);
}

} // namespace
} // namespace fdip
