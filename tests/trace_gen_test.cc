/** @file Semantic tests for the trace executor. */

#include "trace/trace_gen.h"

#include <map>

#include <gtest/gtest.h>

namespace fdip
{
namespace
{

std::shared_ptr<const Workload>
smallWorkload(std::uint64_t seed = 5)
{
    WorkloadSpec s = clientSpec("t", seed);
    s.numFunctions = 40;
    s.numRootFunctions = 8;
    s.rootRotationLength = 4;
    return std::make_shared<Workload>(buildWorkload(s));
}

TEST(TraceGen, ProducesRequestedLength)
{
    auto wl = smallWorkload();
    const Trace t = generateTrace(wl, 50000);
    EXPECT_EQ(t.size(), 50000u);
}

TEST(TraceGen, DeterministicPerWorkload)
{
    auto wl = smallWorkload();
    const Trace a = generateTrace(wl, 20000);
    const Trace b = generateTrace(wl, 20000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.insts[i].staticIndex, b.insts[i].staticIndex) << i;
        EXPECT_EQ(a.insts[i].taken, b.insts[i].taken) << i;
        EXPECT_EQ(a.insts[i].info, b.insts[i].info) << i;
    }
}

TEST(TraceGen, ControlFlowIsConsistent)
{
    // nextPcOf(i) must equal pcOf(i+1) for every instruction: the
    // trace is a connected path through the image.
    auto wl = smallWorkload();
    const Trace t = generateTrace(wl, 50000);
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        ASSERT_EQ(t.nextPcOf(i), t.pcOf(i + 1))
            << "discontinuity after dyn inst " << i;
    }
}

TEST(TraceGen, StartsAtDispatcher)
{
    auto wl = smallWorkload();
    const Trace t = generateTrace(wl, 100);
    EXPECT_EQ(t.pcOf(0), wl->entryPc);
}

TEST(TraceGen, BranchSemantics)
{
    auto wl = smallWorkload();
    const Trace t = generateTrace(wl, 50000);
    for (std::size_t i = 0; i < t.size(); ++i) {
        const StaticInst &s = t.staticOf(i);
        const DynInst &d = t.insts[i];
        if (isUnconditional(s.cls)) {
            EXPECT_EQ(d.taken, 1) << "uncond branch NT at " << i;
        }
        if (!isBranch(s.cls)) {
            EXPECT_EQ(d.taken, 0);
        }
        if (isBranch(s.cls) && isDirect(s.cls) && d.taken &&
            s.cls != InstClass::kCondDirect) {
            EXPECT_EQ(d.info, s.target);
        }
        if (s.cls == InstClass::kCondDirect && d.taken) {
            EXPECT_EQ(d.info, s.target);
        }
    }
}

TEST(TraceGen, CallsAndReturnsBalance)
{
    auto wl = smallWorkload();
    const Trace t = generateTrace(wl, 50000);
    long depth = 0;
    long max_depth = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const StaticInst &s = t.staticOf(i);
        if (isCall(s.cls))
            ++depth;
        if (isReturn(s.cls))
            --depth;
        max_depth = std::max(max_depth, depth);
        ASSERT_GE(depth, 0) << "return without call at " << i;
    }
    EXPECT_GT(max_depth, 1);
}

TEST(TraceGen, ReturnsGoToCallSites)
{
    auto wl = smallWorkload();
    const Trace t = generateTrace(wl, 50000);
    std::vector<Addr> stack;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const StaticInst &s = t.staticOf(i);
        if (isCall(s.cls))
            stack.push_back(t.pcOf(i) + kInstBytes);
        if (isReturn(s.cls)) {
            ASSERT_FALSE(stack.empty());
            EXPECT_EQ(t.insts[i].info, stack.back()) << i;
            stack.pop_back();
        }
    }
}

TEST(TraceGen, LoopBranchesIterate)
{
    // Every loop back-edge must be taken (param-1) times per entry:
    // check that at least one loop branch shows both outcomes.
    auto wl = smallWorkload();
    const Trace t = generateTrace(wl, 100000);
    std::map<std::uint32_t, std::pair<int, int>> outcomes;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const StaticInst &s = t.staticOf(i);
        if (s.behavior == BranchBehavior::kLoop) {
            auto &o = outcomes[t.insts[i].staticIndex];
            if (t.insts[i].taken)
                ++o.first;
            else
                ++o.second;
        }
    }
    ASSERT_FALSE(outcomes.empty());
    int both = 0;
    for (const auto &kv : outcomes) {
        if (kv.second.first > 0 && kv.second.second > 0)
            ++both;
    }
    EXPECT_GT(both, 0);
}

TEST(TraceGen, LoopTripCountsMatchParam)
{
    auto wl = smallWorkload();
    const Trace t = generateTrace(wl, 200000);
    // For each loop branch, consecutive takens between not-takens must
    // equal param - 1 once in steady state.
    std::map<std::uint32_t, int> runLength;
    std::map<std::uint32_t, std::vector<int>> runs;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const StaticInst &s = t.staticOf(i);
        if (s.behavior != BranchBehavior::kLoop)
            continue;
        const std::uint32_t idx = t.insts[i].staticIndex;
        if (t.insts[i].taken) {
            ++runLength[idx];
        } else {
            runs[idx].push_back(runLength[idx]);
            runLength[idx] = 0;
        }
    }
    int checked = 0;
    for (const auto &kv : runs) {
        const StaticInst &s = wl->image.inst(kv.first);
        // Interior runs (not truncated by trace start/end) must be
        // exactly param - 1 takens followed by the exit.
        for (std::size_t r = 1; r + 1 < kv.second.size(); ++r) {
            EXPECT_EQ(kv.second[r], s.param - 1)
                << "loop at " << kv.first;
            ++checked;
        }
    }
    EXPECT_GT(checked, 10);
}

TEST(TraceGen, MemoryAddressesPresent)
{
    auto wl = smallWorkload();
    const Trace t = generateTrace(wl, 20000);
    std::size_t mem = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        const StaticInst &s = t.staticOf(i);
        if (s.cls == InstClass::kLoad || s.cls == InstClass::kStore) {
            ++mem;
            EXPECT_NE(t.insts[i].info, kNoAddr) << i;
        }
    }
    EXPECT_GT(mem, t.size() / 10);
}

TEST(TraceGen, DispatcherRotates)
{
    auto wl = smallWorkload();
    const Trace t = generateTrace(wl, 100000);
    std::map<Addr, int> roots;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t.insts[i].staticIndex == wl->dispatchCallIndex)
            ++roots[t.insts[i].info];
    }
    EXPECT_GT(roots.size(), 2u) << "dispatcher never rotated roots";
}

} // namespace
} // namespace fdip
