/** @file Tests for the 16B-indexed BTB. */

#include "bpu/btb.h"

#include <gtest/gtest.h>

namespace fdip
{
namespace
{

BtbConfig
smallConfig(bool taken_only = true)
{
    BtbConfig cfg;
    cfg.numEntries = 64;
    cfg.ways = 4;
    cfg.allocateTakenOnly = taken_only;
    return cfg;
}

TEST(Btb, MissOnEmpty)
{
    Btb btb(smallConfig());
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    EXPECT_EQ(btb.lookups(), 1u);
    EXPECT_EQ(btb.hits(), 0u);
}

TEST(Btb, InsertThenHit)
{
    Btb btb(smallConfig());
    btb.install(0x1000, InstClass::kJumpDirect, 0x2000, true);
    const auto hit = btb.lookup(0x1000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->kind, InstClass::kJumpDirect);
    EXPECT_EQ(hit->target, 0x2000u);
}

TEST(Btb, TakenOnlyPolicySkipsNotTaken)
{
    Btb btb(smallConfig(true));
    btb.install(0x1000, InstClass::kCondDirect, 0x2000, false);
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    btb.install(0x1000, InstClass::kCondDirect, 0x2000, true);
    EXPECT_TRUE(btb.lookup(0x1000).has_value());
}

TEST(Btb, AllBranchPolicyAllocatesNotTaken)
{
    Btb btb(smallConfig(false));
    btb.install(0x1000, InstClass::kCondDirect, 0x2000, false);
    EXPECT_TRUE(btb.lookup(0x1000).has_value());
}

TEST(Btb, ExistingEntryRefreshesEvenWhenNotTaken)
{
    // Indirect branches update their last target on every resolve.
    Btb btb(smallConfig(true));
    btb.install(0x1000, InstClass::kJumpIndirect, 0x2000, true);
    btb.install(0x1000, InstClass::kJumpIndirect, 0x3000, true);
    const auto hit = btb.lookup(0x1000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->target, 0x3000u);
}

/** Collects @p n distinct branch PCs mapping to the same BTB set. */
std::vector<Addr>
sameSetPcs(const Btb &btb, unsigned n)
{
    std::vector<Addr> pcs;
    const std::uint32_t target_set = btb.setIndexOf(0x1000);
    for (Addr pc = 0x1000; pcs.size() < n; pc += 16) {
        if (btb.setIndexOf(pc) == target_set)
            pcs.push_back(pc);
    }
    return pcs;
}

TEST(Btb, PeekDoesNotTouchLru)
{
    Btb btb(smallConfig());
    const auto pcs = sameSetPcs(btb, 5);
    for (unsigned i = 0; i < 4; ++i)
        btb.install(pcs[i], InstClass::kJumpDirect, 0x9000, true);
    // Refresh entry 0 via lookup, then insert a 5th: victim must not
    // be entry 0.
    EXPECT_TRUE(btb.lookup(pcs[0]).has_value());
    btb.install(pcs[4], InstClass::kJumpDirect, 0x9000, true);
    EXPECT_TRUE(btb.peek(pcs[0]).has_value());
}

TEST(Btb, LruEvictsOldest)
{
    Btb btb(smallConfig());
    const auto pcs = sameSetPcs(btb, 5);
    for (unsigned i = 0; i < 5; ++i)
        btb.install(pcs[i], InstClass::kJumpDirect, 0x9000, true);
    // Entry 0 was the LRU victim.
    EXPECT_FALSE(btb.peek(pcs[0]).has_value());
    EXPECT_TRUE(btb.peek(pcs[4]).has_value());
    EXPECT_EQ(btb.evictions(), 1u);
}

TEST(Btb, SixteenByteIndexing)
{
    // Branches in the same 16B chunk share a set but are separate
    // entries.
    Btb btb(smallConfig());
    btb.install(0x1000, InstClass::kCondDirect, 0x2000, true);
    btb.install(0x1004, InstClass::kCondDirect, 0x3000, true);
    btb.install(0x1008, InstClass::kJumpDirect, 0x4000, true);
    EXPECT_EQ(btb.lookup(0x1000)->target, 0x2000u);
    EXPECT_EQ(btb.lookup(0x1004)->target, 0x3000u);
    EXPECT_EQ(btb.lookup(0x1008)->target, 0x4000u);
}

TEST(Btb, Invalidate)
{
    Btb btb(smallConfig());
    btb.install(0x1000, InstClass::kJumpDirect, 0x2000, true);
    btb.invalidate(0x1000);
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
}

TEST(Btb, StorageBytesFollowsPaperEstimate)
{
    BtbConfig cfg;
    cfg.numEntries = 8192;
    Btb btb(cfg);
    // Paper Section VI-D: ~7 bytes per branch.
    EXPECT_EQ(btb.storageBytes(), 8192u * 7);
}

TEST(Btb, RejectsBadGeometry)
{
    BtbConfig cfg;
    cfg.numEntries = 65;
    cfg.ways = 4;
    EXPECT_DEATH({ Btb b(cfg); }, "divisible");
}

/** Capacity sweep: a working set within capacity must be fully held. */
class BtbCapacity : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BtbCapacity, HoldsWorkingSetWithinCapacity)
{
    BtbConfig cfg;
    cfg.numEntries = GetParam();
    Btb btb(cfg);
    // Insert 1/2 capacity distinct branches spread over 16B chunks.
    const unsigned n = cfg.numEntries / 2;
    for (unsigned i = 0; i < n; ++i)
        btb.install(0x10000 + i * 16, InstClass::kJumpDirect, 0x9000,
                   true);
    unsigned hits = 0;
    for (unsigned i = 0; i < n; ++i)
        if (btb.peek(0x10000 + i * 16).has_value())
            ++hits;
    EXPECT_EQ(hits, n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BtbCapacity,
                         ::testing::Values(1024, 2048, 8192, 32768));

} // namespace
} // namespace fdip
