/** @file Tests for the experiment harness and suite aggregation. */

#include "sim/experiment.h"

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

namespace fdip
{
namespace
{

std::vector<SuiteEntry>
tinySuite()
{
    // Two reduced workloads to keep the harness tests quick.
    std::vector<SuiteEntry> suite;
    for (std::uint64_t seed : {9001ull, 9002ull}) {
        WorkloadSpec s = specCpuSpec("tiny", seed);
        s.numFunctions = 48;
        auto wl = std::make_shared<Workload>(buildWorkload(s));
        SuiteEntry e;
        e.name = "tiny-" + std::to_string(seed);
        e.trace = generateTrace(wl, 60000);
        suite.push_back(std::move(e));
    }
    return suite;
}

TEST(Experiment, RunsEveryWorkload)
{
    const auto suite = tinySuite();
    const SuiteResult r =
        runSuite("fdp", paperBaselineConfig(), suite, noPrefetcher());
    ASSERT_EQ(r.runs.size(), suite.size());
    EXPECT_EQ(r.runs[0].workload, "tiny-9001");
    for (const auto &run : r.runs)
        EXPECT_GT(run.stats.ipc(), 0.0);
}

TEST(Experiment, GeomeanIpcBetweenMinAndMax)
{
    const auto suite = tinySuite();
    const SuiteResult r =
        runSuite("fdp", paperBaselineConfig(), suite, noPrefetcher());
    const double g = r.geomeanIpc();
    double lo = 1e9;
    double hi = 0;
    for (const auto &run : r.runs) {
        lo = std::min(lo, run.stats.ipc());
        hi = std::max(hi, run.stats.ipc());
    }
    EXPECT_GE(g, lo);
    EXPECT_LE(g, hi);
}

TEST(Experiment, SpeedupOverSelfIsOne)
{
    const auto suite = tinySuite();
    const SuiteResult r =
        runSuite("fdp", paperBaselineConfig(), suite, noPrefetcher());
    EXPECT_NEAR(r.speedupOver(r), 1.0, 1e-12);
}

TEST(Experiment, SpeedupMatchesPerRunRatios)
{
    const auto suite = tinySuite();
    const SuiteResult a =
        runSuite("fdp", paperBaselineConfig(), suite, noPrefetcher());
    const SuiteResult b =
        runSuite("nofdp", noFdpConfig(), suite, noPrefetcher());
    const double s = a.speedupOver(b);
    double expected = 1.0;
    for (std::size_t i = 0; i < suite.size(); ++i)
        expected *= a.runs[i].stats.ipc() / b.runs[i].stats.ipc();
    expected = std::sqrt(expected);
    EXPECT_NEAR(s, expected, 1e-9);
}

TEST(Experiment, MismatchedSuitesAreFatal)
{
    const auto suite = tinySuite();
    SuiteResult a =
        runSuite("a", paperBaselineConfig(), suite, noPrefetcher());
    SuiteResult b = a;
    b.runs.pop_back();
    EXPECT_DEATH({ (void)a.speedupOver(b); }, "mismatched");
}

TEST(Experiment, HistorySchemeIsApplied)
{
    // runSuite must call applyHistoryScheme: a GHR2 config passed with
    // stale bpu fields still runs as GHR2 (fixups happen).
    const auto suite = tinySuite();
    CoreConfig cfg = paperBaselineConfig();
    cfg.historyScheme = HistoryScheme::kGhr2;
    const SuiteResult r = runSuite("ghr2", cfg, suite, noPrefetcher());
    std::uint64_t fixups = 0;
    for (const auto &run : r.runs)
        fixups += run.stats.ghrFixups;
    EXPECT_GT(fixups, 0u);
}

TEST(Experiment, EnvOverridesParseSafely)
{
    ::setenv("FDIP_SIM_INSTRS", "123456", 1);
    EXPECT_EQ(suiteInstsFromEnv(999), 123456u);
    ::setenv("FDIP_SIM_INSTRS", "garbage", 1);
    EXPECT_EQ(suiteInstsFromEnv(999), 999u);
    ::unsetenv("FDIP_SIM_INSTRS");
    EXPECT_EQ(suiteInstsFromEnv(999), 999u);

    ::setenv("FDIP_SUITE", "small", 1);
    EXPECT_TRUE(suiteSmallFromEnv());
    ::setenv("FDIP_SUITE", "full", 1);
    EXPECT_FALSE(suiteSmallFromEnv());
    ::unsetenv("FDIP_SUITE");
}

TEST(Experiment, MeanMetricsAggregate)
{
    const auto suite = tinySuite();
    const SuiteResult r =
        runSuite("fdp", paperBaselineConfig(), suite, noPrefetcher());
    EXPECT_GT(r.meanMpki(), 0.0);
    EXPECT_GT(r.meanTagAccessesPerKi(), 0.0);
    EXPECT_GE(r.meanStarvationPerKi(), 0.0);
}

} // namespace
} // namespace fdip
