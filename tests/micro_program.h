/**
 * @file
 * Test-only helper for building hand-crafted micro-programs and
 * scripted traces, so frontend mechanisms (PFC, GHR fixup, RAS repair,
 * divergence resolution) can be tested deterministically without the
 * random workload generator.
 */

#ifndef FDIP_TESTS_MICRO_PROGRAM_H_
#define FDIP_TESTS_MICRO_PROGRAM_H_

#include <functional>
#include <memory>
#include <vector>

#include "trace/trace_gen.h"
#include "trace/workload.h"
#include "util/log.h"

namespace fdip::test
{

/**
 * Builder for a tiny explicit program plus a scripted execution.
 */
class MicroProgram
{
  public:
    /** Decides a conditional branch's direction per (site, visit#). */
    using CondOracle = std::function<bool(std::uint32_t, std::uint64_t)>;
    /** Decides an indirect branch's target per (site, visit#). */
    using TargetOracle = std::function<Addr(std::uint32_t, std::uint64_t)>;

    MicroProgram()
    {
        wl_ = std::make_shared<Workload>();
        wl_->spec.name = "micro";
        wl_->dispatchCallIndex = 0xffffffffu;
        wl_->entryPc = wl_->image.baseAddr();
    }

    Addr pcOfNext() const { return wl_->image.pcOf(nextIndex()); }

    std::uint32_t
    nextIndex() const
    {
        return static_cast<std::uint32_t>(wl_->image.numInsts());
    }

    std::uint32_t
    alu()
    {
        StaticInst s;
        s.cls = InstClass::kAlu;
        return wl_->image.append(s);
    }

    std::uint32_t
    load()
    {
        StaticInst s;
        s.cls = InstClass::kLoad;
        return wl_->image.append(s);
    }

    std::uint32_t
    cond(Addr target)
    {
        StaticInst s;
        s.cls = InstClass::kCondDirect;
        s.behavior = BranchBehavior::kBiased; // Overridden by oracle.
        s.target = target;
        return wl_->image.append(s);
    }

    std::uint32_t
    jump(Addr target)
    {
        StaticInst s;
        s.cls = InstClass::kJumpDirect;
        s.target = target;
        return wl_->image.append(s);
    }

    std::uint32_t
    call(Addr target)
    {
        StaticInst s;
        s.cls = InstClass::kCallDirect;
        s.target = target;
        return wl_->image.append(s);
    }

    std::uint32_t
    indirectCall(std::vector<Addr> targets)
    {
        StaticInst s;
        s.cls = InstClass::kCallIndirect;
        const std::uint32_t idx = wl_->image.append(s);
        wl_->indirectTargets[idx] = std::move(targets);
        return idx;
    }

    std::uint32_t
    ret()
    {
        StaticInst s;
        s.cls = InstClass::kReturn;
        return wl_->image.append(s);
    }

    /** Address of instruction @p index. */
    Addr pc(std::uint32_t index) const { return wl_->image.pcOf(index); }

    /**
     * Executes the program from its base for @p n instructions,
     * scripting conditional directions with @p cond_oracle and
     * indirect targets with @p target_oracle (may be null when the
     * program has none).
     */
    Trace
    run(std::size_t n, CondOracle cond_oracle = nullptr,
        TargetOracle target_oracle = nullptr)
    {
        Trace t;
        t.workload = wl_;
        const ProgramImage &img = wl_->image;
        std::vector<std::uint64_t> visits(img.numInsts(), 0);
        std::vector<std::uint32_t> call_stack;
        std::uint32_t idx = 0;

        while (t.insts.size() < n) {
            if (idx >= img.numInsts())
                fdip_panic("micro program ran off the image at %u", idx);
            const StaticInst &s = img.inst(idx);
            DynInst d;
            d.staticIndex = idx;
            const std::uint64_t visit = visits[idx]++;
            std::uint32_t next = idx + 1;

            switch (s.cls) {
              case InstClass::kAlu:
                break;
              case InstClass::kLoad:
              case InstClass::kStore:
                d.info = 0x10000000 + idx * 64;
                break;
              case InstClass::kCondDirect: {
                const bool taken =
                    cond_oracle ? cond_oracle(idx, visit) : false;
                d.taken = taken ? 1 : 0;
                d.info = s.target;
                if (taken)
                    next = img.indexOf(s.target);
                break;
              }
              case InstClass::kJumpDirect:
              case InstClass::kCallDirect:
                d.taken = 1;
                d.info = s.target;
                if (s.cls == InstClass::kCallDirect)
                    call_stack.push_back(idx + 1);
                next = img.indexOf(s.target);
                break;
              case InstClass::kJumpIndirect:
              case InstClass::kCallIndirect: {
                if (!target_oracle)
                    fdip_panic("indirect at %u without target oracle",
                               idx);
                const Addr target = target_oracle(idx, visit);
                d.taken = 1;
                d.info = target;
                if (s.cls == InstClass::kCallIndirect)
                    call_stack.push_back(idx + 1);
                next = img.indexOf(target);
                break;
              }
              case InstClass::kReturn: {
                if (call_stack.empty())
                    fdip_panic("micro return with empty stack at %u",
                               idx);
                next = call_stack.back();
                call_stack.pop_back();
                d.taken = 1;
                d.info = img.pcOf(next);
                break;
              }
            }
            t.insts.push_back(d);
            idx = next;
        }
        return t;
    }

    Workload &workload() { return *wl_; }

  private:
    std::shared_ptr<Workload> wl_;
};

} // namespace fdip::test

#endif // FDIP_TESTS_MICRO_PROGRAM_H_
