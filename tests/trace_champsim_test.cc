/** @file Tests for the ChampSim trace-format interchange. */

#include "trace/champsim.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "trace/workload.h"

namespace fdip
{
namespace
{

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

Trace
synthTrace(std::size_t n = 40000)
{
    WorkloadSpec s = clientSpec("champ", 99);
    s.numFunctions = 50;
    auto wl = std::make_shared<Workload>(buildWorkload(s));
    return generateTrace(wl, n);
}

TEST(ChampSim, RecordLayoutIsStable)
{
    EXPECT_EQ(sizeof(ChampSimRecord), 64u);
    EXPECT_EQ(offsetof(ChampSimRecord, ip), 0u);
    EXPECT_EQ(offsetof(ChampSimRecord, isBranch), 8u);
    EXPECT_EQ(offsetof(ChampSimRecord, branchTaken), 9u);
    EXPECT_EQ(offsetof(ChampSimRecord, destRegisters), 10u);
    EXPECT_EQ(offsetof(ChampSimRecord, sourceRegisters), 12u);
    EXPECT_EQ(offsetof(ChampSimRecord, destinationMemory), 16u);
    EXPECT_EQ(offsetof(ChampSimRecord, sourceMemory), 32u);
}

TEST(ChampSim, ClassifierMatchesTaxonomy)
{
    ChampSimRecord r;
    r.isBranch = 1;

    // Conditional: reads FLAGS, writes IP.
    r.sourceRegisters[0] = kChampSimRegFlags;
    r.destRegisters[0] = kChampSimRegInstructionPointer;
    EXPECT_EQ(classifyChampSimBranch(r), ChampSimBranch::kConditional);

    // Direct jump: writes IP only.
    r = ChampSimRecord{};
    r.isBranch = 1;
    r.destRegisters[0] = kChampSimRegInstructionPointer;
    EXPECT_EQ(classifyChampSimBranch(r), ChampSimBranch::kDirectJump);

    // Indirect jump: reads a GPR, writes IP.
    r.sourceRegisters[0] = 3;
    EXPECT_EQ(classifyChampSimBranch(r), ChampSimBranch::kIndirectJump);

    // Direct call: reads/writes IP and SP.
    r = ChampSimRecord{};
    r.isBranch = 1;
    r.sourceRegisters[0] = kChampSimRegInstructionPointer;
    r.sourceRegisters[1] = kChampSimRegStackPointer;
    r.destRegisters[0] = kChampSimRegInstructionPointer;
    r.destRegisters[1] = kChampSimRegStackPointer;
    EXPECT_EQ(classifyChampSimBranch(r), ChampSimBranch::kDirectCall);

    // Indirect call: direct call + other source.
    r.sourceRegisters[2] = 3;
    EXPECT_EQ(classifyChampSimBranch(r), ChampSimBranch::kIndirectCall);

    // Return: reads SP (not IP), writes IP.
    r = ChampSimRecord{};
    r.isBranch = 1;
    r.sourceRegisters[0] = kChampSimRegStackPointer;
    r.destRegisters[0] = kChampSimRegInstructionPointer;
    r.destRegisters[1] = kChampSimRegStackPointer;
    EXPECT_EQ(classifyChampSimBranch(r), ChampSimBranch::kReturn);

    // Non-branch.
    r = ChampSimRecord{};
    EXPECT_EQ(classifyChampSimBranch(r), ChampSimBranch::kNotBranch);
}

TEST(ChampSim, ExportImportRoundTripPreservesStream)
{
    const Trace original = synthTrace();
    const std::string path = tempPath("roundtrip.champsim");
    ASSERT_TRUE(writeChampSimTrace(path, original));

    Trace imported;
    ASSERT_TRUE(readChampSimTrace(path, 0, imported));
    ASSERT_EQ(imported.size(), original.size());

    // The renormalized image must preserve instruction classes and
    // branch outcomes record by record.
    std::size_t class_mismatch = 0;
    for (std::size_t i = 0; i < original.size(); ++i) {
        if (imported.staticOf(i).cls != original.staticOf(i).cls)
            ++class_mismatch;
        EXPECT_EQ(imported.insts[i].taken != 0,
                  original.insts[i].taken != 0)
            << "at " << i;
    }
    // Classes are identical because our exporter encodes them exactly.
    EXPECT_EQ(class_mismatch, 0u);
    std::remove(path.c_str());
}

TEST(ChampSim, ImportedTraceIsControlFlowConsistent)
{
    const Trace original = synthTrace();
    const std::string path = tempPath("consistent.champsim");
    ASSERT_TRUE(writeChampSimTrace(path, original));
    Trace imported;
    ASSERT_TRUE(readChampSimTrace(path, 0, imported));
    for (std::size_t i = 0; i + 1 < imported.size(); ++i) {
        ASSERT_EQ(imported.nextPcOf(i), imported.pcOf(i + 1))
            << "discontinuity after record " << i;
    }
    std::remove(path.c_str());
}

TEST(ChampSim, ImportRespectsMaxInsts)
{
    const Trace original = synthTrace(5000);
    const std::string path = tempPath("capped.champsim");
    ASSERT_TRUE(writeChampSimTrace(path, original));
    Trace imported;
    ASSERT_TRUE(readChampSimTrace(path, 1234, imported));
    EXPECT_EQ(imported.size(), 1234u);
    std::remove(path.c_str());
}

TEST(ChampSim, ImportRejectsMissingOrEmpty)
{
    Trace imported;
    EXPECT_FALSE(readChampSimTrace("/nonexistent/x.trace", 0, imported));
    const std::string path = tempPath("empty.champsim");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fclose(f);
    EXPECT_FALSE(readChampSimTrace(path, 0, imported));
    std::remove(path.c_str());
}

TEST(ChampSim, MemoryAddressesSurviveRoundTrip)
{
    const Trace original = synthTrace(20000);
    const std::string path = tempPath("mem.champsim");
    ASSERT_TRUE(writeChampSimTrace(path, original));
    Trace imported;
    ASSERT_TRUE(readChampSimTrace(path, 0, imported));
    std::size_t checked = 0;
    for (std::size_t i = 0; i < original.size(); ++i) {
        const InstClass c = original.staticOf(i).cls;
        if ((c == InstClass::kLoad || c == InstClass::kStore) &&
            imported.staticOf(i).cls == c) {
            EXPECT_EQ(imported.insts[i].info, original.insts[i].info);
            ++checked;
        }
    }
    EXPECT_GT(checked, 1000u);
    std::remove(path.c_str());
}

} // namespace
} // namespace fdip
