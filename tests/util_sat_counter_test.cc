/** @file Unit tests for util/sat_counter.h. */

#include "util/sat_counter.h"

#include <gtest/gtest.h>

namespace fdip
{
namespace
{

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2, 0);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.taken());
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2, 3);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_FALSE(c.taken());
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, TakenThreshold)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.taken()); // 0
    c.increment();
    EXPECT_FALSE(c.taken()); // 1
    c.increment();
    EXPECT_TRUE(c.taken()); // 2
    c.increment();
    EXPECT_TRUE(c.taken()); // 3
}

TEST(SatCounter, WeakStates)
{
    SatCounter c(2, 1);
    EXPECT_TRUE(c.weak());
    c.increment();
    EXPECT_TRUE(c.weak()); // 2
    c.increment();
    EXPECT_FALSE(c.weak()); // 3
}

TEST(SatCounter, UpdateFollowsDirection)
{
    SatCounter c(3, 3);
    c.update(true);
    EXPECT_EQ(c.value(), 4u);
    c.update(false);
    c.update(false);
    EXPECT_EQ(c.value(), 2u);
}

TEST(SatCounter, ResetLandsWeak)
{
    SatCounter c(2, 0);
    c.reset(true);
    EXPECT_TRUE(c.taken());
    EXPECT_TRUE(c.weak());
    c.reset(false);
    EXPECT_FALSE(c.taken());
    EXPECT_TRUE(c.weak());
}

TEST(SignedSatCounter, SaturatesBothWays)
{
    SignedSatCounter c(3, 0);
    for (int i = 0; i < 20; ++i)
        c.update(true);
    EXPECT_EQ(c.value(), 3);
    for (int i = 0; i < 20; ++i)
        c.update(false);
    EXPECT_EQ(c.value(), -4);
    EXPECT_TRUE(c.saturated());
}

TEST(SignedSatCounter, TakenAtZero)
{
    SignedSatCounter c(3, 0);
    EXPECT_TRUE(c.taken());
    c.update(false);
    EXPECT_FALSE(c.taken()); // -1
}

TEST(SignedSatCounter, WeakStates)
{
    SignedSatCounter c(3, 0);
    EXPECT_TRUE(c.weak());
    c.update(false);
    EXPECT_TRUE(c.weak()); // -1
    c.update(false);
    EXPECT_FALSE(c.weak()); // -2
}

TEST(SignedSatCounter, ResetMatchesDirection)
{
    SignedSatCounter c(3, 3);
    c.reset(false);
    EXPECT_FALSE(c.taken());
    EXPECT_TRUE(c.weak());
    c.reset(true);
    EXPECT_TRUE(c.taken());
    EXPECT_TRUE(c.weak());
}

/** Width sweep: saturation bounds must match the bit width. */
class SatWidthSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SatWidthSweep, BoundsMatchWidth)
{
    const unsigned bits = GetParam();
    SatCounter c(bits, 0);
    for (int i = 0; i < 1 << (bits + 1); ++i)
        c.increment();
    EXPECT_EQ(c.value(), (1u << bits) - 1);
    EXPECT_EQ(c.maxValue(), (1u << bits) - 1);

    SignedSatCounter s(bits, 0);
    for (int i = 0; i < 1 << (bits + 1); ++i)
        s.update(true);
    EXPECT_EQ(s.value(), (1 << (bits - 1)) - 1);
    for (int i = 0; i < 1 << (bits + 1); ++i)
        s.update(false);
    EXPECT_EQ(s.value(), -(1 << (bits - 1)));
}

INSTANTIATE_TEST_SUITE_P(Widths, SatWidthSweep,
                         ::testing::Values(1, 2, 3, 4, 8));

} // namespace
} // namespace fdip
