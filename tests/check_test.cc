/** @file Budget-accounting tests: compile-time paper-budget pins,
 *  StaticBudgetCheck, BudgetReport verdicts, and the named-config
 *  storage reports (hardware-legality acceptance path). */

#include "check/budget.h"

#include <gtest/gtest.h>

#include "bpu/bpu.h"
#include "bpu/ras.h"
#include "cache/cache.h"
#include "core/ftq.h"
#include "prefetch/prefetcher.h"

namespace fdip
{
namespace
{

// ---------------------------------------------------------------------
// Compile-time accounting: the constants the paper's claims rest on.
// ---------------------------------------------------------------------

static_assert(ftqArchStorageBits(24) == 195 * 8,
              "Table III: 24-entry FTQ costs 195 bytes");
static_assert(btbStorageBits(8192, 7) == 56 * 1024 * 8,
              "Section VI-D: 8K x 7B BTB costs 56 KB");
static_assert(rasStorageBits(32) == 32 * 48 + 5,
              "Table IV: 32-deep RAS of 48-bit addresses + 5-bit top");

// A legal budget instantiates; the slack is exact.
static_assert(StaticBudgetCheck<ftqArchStorageBits(24),
                                kPaperFtqBudgetBits>::ok);
static_assert(StaticBudgetCheck<ftqArchStorageBits(24),
                                kPaperFtqBudgetBits>::slackBits == 0);
static_assert(StaticBudgetCheck<ftqArchStorageBits(2),
                                kPaperFtqBudgetBits>::slackBits ==
              kPaperFtqBudgetBits - 2 * 65);
// (An over-budget instantiation, e.g. StaticBudgetCheck<
//  ftqArchStorageBits(25), kPaperFtqBudgetBits>, fails to compile.)

TEST(Budget, ConstexprValuesMatchInstances)
{
    // The constexpr formulas and the structures' own storageBits()
    // methods must agree, or the compile-time gate drifts from the
    // simulated hardware.
    const Ftq ftq(24);
    EXPECT_EQ(ftq.storageBits(), ftqArchStorageBits(24));
    EXPECT_EQ(ftq.archStorageBytes(), 195u);

    const Btb btb(BtbConfig{});
    EXPECT_EQ(btb.storageBits(), btbStorageBits(BtbConfig{}));
    EXPECT_EQ(btb.storageBits(), kPaperBtbBudgetBits);

    const Ras ras(32);
    EXPECT_EQ(ras.storageBits(), rasStorageBits(32));
    EXPECT_EQ(ras.storageBits(), kPaperRasBudgetBits);

    // Non-power-of-two RAS depth needs a ceil-width pointer.
    const Ras ras12(12);
    EXPECT_EQ(ras12.storageBits(), 12u * 48 + 4);
}

TEST(Budget, CacheStorageCountsTagsAndValidBits)
{
    CacheConfig cfg;
    cfg.sizeBytes = 32 * 1024;
    cfg.ways = 8;
    cfg.lineBytes = 64;
    // 512 lines / 8 ways = 64 sets; 48-bit PAs with 6 offset + 6 set
    // bits leave 36 tag bits; LRU over 8 ways is a 3-bit rank per line:
    // 512 lines x (512 data + 36 tag + 1 valid + 3 lru).
    EXPECT_EQ(Cache::storageBitsFor(cfg), 512u * (512 + 36 + 1 + 3));
    const Cache cache(cfg);
    EXPECT_EQ(cache.storageBits(), Cache::storageBitsFor(cfg));
}

// ---------------------------------------------------------------------
// BudgetReport verdicts.
// ---------------------------------------------------------------------

TEST(Budget, ReportFlagsOnlyEnforcedOverruns)
{
    BudgetReport r("test");
    r.add("fits", 100, 200);
    r.add("informational", 1u << 30); // No limit: never a violation.
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.violations().empty());
    EXPECT_EQ(r.totalBits(), 100u + (1u << 30));

    r.add("overflows", 300, 200);
    EXPECT_FALSE(r.ok());
    ASSERT_EQ(r.violations().size(), 1u);
    EXPECT_EQ(r.violations()[0], "overflows");
}

TEST(Budget, ReportToStringCarriesVerdict)
{
    BudgetReport ok_report("fits");
    ok_report.add("FTQ", 100, 200);
    EXPECT_NE(ok_report.toString().find("OK"), std::string::npos);

    BudgetReport bad_report("overruns");
    bad_report.add("FTQ", 300, 200);
    EXPECT_NE(bad_report.toString().find("OVER BUDGET"),
              std::string::npos);
    EXPECT_NE(bad_report.toString().find("OVER"), std::string::npos);
}

TEST(Budget, StorageBudgetAccountant)
{
    StorageBudget budget("frontend");
    budget.add("FTQ", ftqArchStorageBits(24), kPaperFtqBudgetBits);
    budget.add("BTB", kPaperBtbBudgetBits, kPaperBtbBudgetBits);
    EXPECT_TRUE(budget.ok());
    EXPECT_EQ(budget.totalBits(),
              kPaperFtqBudgetBits + kPaperBtbBudgetBits);
    EXPECT_EQ(budget.report().items().size(), 2u);

    budget.add("rogue table", kPaperBtbBudgetBits + 1, kPaperBtbBudgetBits);
    EXPECT_FALSE(budget.ok());
}

// ---------------------------------------------------------------------
// Named-configuration legality (the acceptance criterion).
// ---------------------------------------------------------------------

TEST(Budget, PaperBaselineConfigIsWithinBudget)
{
    const BudgetReport r = coreStorageReport(paperBaselineConfig());
    EXPECT_TRUE(r.ok()) << r.toString();
}

TEST(Budget, NoFdpConfigIsWithinBudget)
{
    const BudgetReport r = coreStorageReport(noFdpConfig());
    EXPECT_TRUE(r.ok()) << r.toString();
}

TEST(Budget, CheckNamedConfigsPasses)
{
    const BudgetReport r = checkNamedConfigs();
    EXPECT_TRUE(r.ok()) << r.toString();
}

TEST(Budget, OversizedFtqIsRejected)
{
    CoreConfig cfg = paperBaselineConfig();
    cfg.ftqEntries = 25; // One entry past the Table III budget.
    const BudgetReport r = coreStorageReport(cfg);
    EXPECT_FALSE(r.ok());
    ASSERT_EQ(r.violations().size(), 1u);
    EXPECT_EQ(r.violations()[0], "FTQ(arch)");
}

TEST(Budget, OversizedBtbIsRejected)
{
    CoreConfig cfg = paperBaselineConfig();
    cfg.bpu.btb.numEntries = 16384; // 112 KB against the 56 KB budget.
    const BudgetReport r = coreStorageReport(cfg);
    EXPECT_FALSE(r.ok());
    ASSERT_EQ(r.violations().size(), 1u);
    EXPECT_EQ(r.violations()[0], "BTB");
}

TEST(Budget, OversizedRasIsRejected)
{
    CoreConfig cfg = paperBaselineConfig();
    cfg.bpu.rasDepth = 64;
    const BudgetReport r = coreStorageReport(cfg);
    EXPECT_FALSE(r.ok());
    ASSERT_EQ(r.violations().size(), 1u);
    EXPECT_EQ(r.violations()[0], "RAS");
}

TEST(Budget, CustomLimitsOverrideThePaperDefaults)
{
    CoreConfig cfg = paperBaselineConfig();
    cfg.ftqEntries = 48;
    EXPECT_FALSE(coreStorageReport(cfg).ok());

    StorageLimits generous;
    generous.ftqBits = ftqArchStorageBits(48);
    EXPECT_TRUE(coreStorageReport(cfg, generous).ok());
}

TEST(Budget, PrefetcherAccountedAgainstIpc1Budget)
{
    const NullPrefetcher none;
    const BudgetReport r =
        coreStorageReport(paperBaselineConfig(), none);
    EXPECT_TRUE(r.ok()) << r.toString();

    bool found = false;
    for (const auto &item : r.items()) {
        if (item.name == "prefetcher(none)") {
            found = true;
            EXPECT_EQ(item.bits, 0u);
            EXPECT_EQ(item.limitBits, kIpc1PrefetcherBudgetBits);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Budget, TwoLevelBtbChargesTheL1Filter)
{
    CoreConfig cfg = paperBaselineConfig();
    cfg.bpu.btbHierarchy.enabled = true;
    const BudgetReport r = coreStorageReport(cfg);
    bool found = false;
    for (const auto &item : r.items())
        found = found || item.name == "L1-BTB";
    EXPECT_TRUE(found);
}

} // namespace
} // namespace fdip
