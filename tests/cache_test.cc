/** @file Tests for the generic set-associative cache. */

#include "cache/cache.h"

#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fdip
{
namespace
{

CacheConfig
tiny(unsigned size_kb = 1, unsigned ways = 2,
     ReplacementPolicy repl = ReplacementPolicy::kLru)
{
    CacheConfig cfg;
    cfg.name = "tiny";
    cfg.sizeBytes = size_kb * 1024ull;
    cfg.ways = ways;
    cfg.replacement = repl;
    return cfg;
}

TEST(Cache, MissThenHit)
{
    Cache c(tiny());
    EXPECT_FALSE(c.probe(0x1000).has_value());
    c.fill(0x1000);
    EXPECT_TRUE(c.probe(0x1000).has_value());
    EXPECT_TRUE(c.probe(0x1020).has_value()); // Same 64B line.
    EXPECT_FALSE(c.probe(0x1040).has_value()); // Next line.
}

TEST(Cache, LineAlignment)
{
    Cache c(tiny());
    EXPECT_EQ(c.lineOf(0x1234), 0x1200u);
    EXPECT_EQ(c.lineOf(0x1240), 0x1240u);
}

TEST(Cache, StatsCount)
{
    Cache c(tiny());
    c.probe(0x1000);
    c.fill(0x1000);
    c.access(0x1000);
    EXPECT_EQ(c.tagAccesses(), 2u);
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
    c.resetStats();
    EXPECT_EQ(c.tagAccesses(), 0u);
}

TEST(Cache, LruEviction)
{
    // 1KB, 2-way, 64B lines -> 8 sets. Same set: stride 8*64 = 512B.
    Cache c(tiny());
    c.fill(0x0000);
    c.fill(0x0200);
    c.access(0x0000); // Refresh.
    c.fill(0x0400); // Evicts 0x0200.
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_FALSE(c.contains(0x0200));
    EXPECT_TRUE(c.contains(0x0400));
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(Cache, InsertReturnsVictim)
{
    Cache c(tiny());
    EXPECT_EQ(c.fill(0x0000), kNoAddr);
    EXPECT_EQ(c.fill(0x0200), kNoAddr);
    const Addr victim = c.fill(0x0400);
    EXPECT_EQ(victim, 0x0000u);
}

TEST(Cache, ReinsertIsRefreshNotEviction)
{
    Cache c(tiny());
    c.fill(0x0000);
    EXPECT_EQ(c.fill(0x0000), kNoAddr);
    EXPECT_EQ(c.evictions(), 0u);
}

TEST(Cache, WayReporting)
{
    Cache c(tiny());
    unsigned w0 = 99;
    unsigned w1 = 99;
    c.fill(0x0000, &w0);
    c.fill(0x0200, &w1);
    EXPECT_NE(w0, w1);
    EXPECT_LT(w0, 2u);
    EXPECT_LT(w1, 2u);
    const auto probe = c.probe(0x0000);
    ASSERT_TRUE(probe.has_value());
    EXPECT_EQ(*probe, w0);
}

TEST(Cache, InvalidateAndReset)
{
    Cache c(tiny());
    c.fill(0x1000);
    c.fill(0x2000);
    c.invalidate(0x1000);
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_TRUE(c.contains(0x2000));
    c.reset();
    EXPECT_FALSE(c.contains(0x2000));
}

TEST(Cache, RejectsBadGeometry)
{
    CacheConfig cfg;
    cfg.sizeBytes = 1000; // Not divisible into pow2 sets.
    cfg.ways = 3;
    EXPECT_DEATH({ Cache c(cfg); }, "");
}

/** Property: cache contents are always a subset of inserted lines and
 *  never exceed capacity, for several geometries and policies. */
struct GeomParam
{
    unsigned sizeKb;
    unsigned ways;
    ReplacementPolicy repl;
};

class CacheGeometry : public ::testing::TestWithParam<GeomParam>
{
};

TEST_P(CacheGeometry, InclusionAndCapacityInvariant)
{
    const GeomParam p = GetParam();
    Cache c(tiny(p.sizeKb, p.ways, p.repl));
    std::set<Addr> inserted;
    Rng rng(p.sizeKb * 1000 + p.ways);

    for (int i = 0; i < 20000; ++i) {
        const Addr line = rng.below(4096) * kCacheLineBytes;
        if (rng.below(2) == 0) {
            c.fill(line);
            inserted.insert(line);
        } else {
            const bool hit = c.access(line).has_value();
            if (hit) {
                EXPECT_TRUE(inserted.count(line)) << std::hex << line;
            }
        }
    }
    // Spot-check capacity: resident lines <= total lines.
    const std::uint64_t capacity_lines =
        p.sizeKb * 1024ull / kCacheLineBytes;
    std::uint64_t resident = 0;
    for (Addr line = 0; line < 4096 * kCacheLineBytes;
         line += kCacheLineBytes) {
        if (c.contains(line))
            ++resident;
    }
    EXPECT_LE(resident, capacity_lines);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(GeomParam{1, 2, ReplacementPolicy::kLru},
                      GeomParam{2, 4, ReplacementPolicy::kLru},
                      GeomParam{4, 8, ReplacementPolicy::kLru},
                      GeomParam{1, 2, ReplacementPolicy::kRandom},
                      GeomParam{4, 16, ReplacementPolicy::kRandom}));

} // namespace
} // namespace fdip
