/** @file Tests for the JSON/CSV experiment reports. */

#include "sim/report.h"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace fdip
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::vector<SuiteResult>
fakeResults()
{
    SuiteResult a;
    a.label = "fdp";
    RunResult r1;
    r1.workload = "srv-a";
    r1.stats.cycles = 1000;
    r1.stats.committedInsts = 1500;
    r1.stats.mispredicts = 9;
    RunResult r2;
    r2.workload = "clt-a";
    r2.stats.cycles = 2000;
    r2.stats.committedInsts = 2400;
    a.runs = {r1, r2};

    SuiteResult b = a;
    b.label = "no-fdp";
    b.runs[0].stats.cycles = 1400;
    return {a, b};
}

TEST(Report, JsonRoundStructure)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/report.json";
    ASSERT_TRUE(writeSuiteResultsJson(path, fakeResults()));
    const std::string body = slurp(path);
    EXPECT_NE(body.find("\"results\""), std::string::npos);
    EXPECT_NE(body.find("\"label\": \"fdp\""), std::string::npos);
    EXPECT_NE(body.find("\"workload\": \"srv-a\""), std::string::npos);
    EXPECT_NE(body.find("\"ipc\": 1.5"), std::string::npos);
    // Valid-ish JSON: balanced braces/brackets.
    EXPECT_EQ(std::count(body.begin(), body.end(), '{'),
              std::count(body.begin(), body.end(), '}'));
    EXPECT_EQ(std::count(body.begin(), body.end(), '['),
              std::count(body.begin(), body.end(), ']'));
    std::remove(path.c_str());
}

TEST(Report, CsvHasHeaderAndRows)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/report.csv";
    ASSERT_TRUE(writeSuiteResultsCsv(path, fakeResults()));
    const std::string body = slurp(path);
    EXPECT_EQ(body.find("label,workload,ipc"), 0u);
    // Header + 2 configs x 2 workloads.
    EXPECT_EQ(std::count(body.begin(), body.end(), '\n'), 5);
    EXPECT_NE(body.find("no-fdp,srv-a"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Report, CsvCarriesPrefetchQualityColumns)
{
    auto results = fakeResults();
    SimStats &s = results[0].runs[0].stats;
    s.prefetchesIssued = 200;
    s.prefetchesUseful = 150;
    s.prefetchesRedundant = 20;
    s.l1iDemandMisses = 50;

    const std::string path =
        std::string(::testing::TempDir()) + "/pfq.csv";
    ASSERT_TRUE(writeSuiteResultsCsv(path, results));
    const std::string body = slurp(path);
    EXPECT_NE(body.find(",prefetch_accuracy,prefetch_coverage,"
                        "prefetch_redundant_rate"),
              std::string::npos);
    // accuracy 150/200, coverage 150/200, redundant 20/200.
    EXPECT_NE(body.find("0.7500,0.7500,0.1000"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Report, JsonEmbedsHeartbeats)
{
    auto results = fakeResults();
    HeartbeatSample hb;
    hb.instrs = 500;
    hb.cycles = 800;
    hb.dInstrs = 500;
    hb.dCycles = 800;
    results[0].runs[0].heartbeats = {hb, hb};

    const std::string path =
        std::string(::testing::TempDir()) + "/hb.json";
    ASSERT_TRUE(writeSuiteResultsJson(path, results));
    const std::string body = slurp(path);
    EXPECT_NE(body.find("\"heartbeats\": ["), std::string::npos);
    EXPECT_NE(body.find("\"instrs\": 500"), std::string::npos);
    // Runs without samples omit the key entirely.
    EXPECT_EQ(body.find("\"heartbeats\": []"), std::string::npos);
    EXPECT_EQ(std::count(body.begin(), body.end(), '{'),
              std::count(body.begin(), body.end(), '}'));
    EXPECT_EQ(std::count(body.begin(), body.end(), '['),
              std::count(body.begin(), body.end(), ']'));
    std::remove(path.c_str());
}

TEST(Report, HeartbeatsJsonl)
{
    auto results = fakeResults();
    HeartbeatSample hb;
    hb.instrs = 123;
    results[0].runs[1].heartbeats = {hb};
    results[1].runs[0].heartbeats = {hb, hb};

    const std::string path =
        std::string(::testing::TempDir()) + "/hb.jsonl";
    ASSERT_TRUE(writeHeartbeatsJsonl(path, results));
    const std::string body = slurp(path);
    // One line per sample; runs without samples contribute nothing.
    EXPECT_EQ(std::count(body.begin(), body.end(), '\n'), 3);
    EXPECT_NE(body.find("\"label\": \"fdp\", \"workload\": \"clt-a\""),
              std::string::npos);
    EXPECT_NE(body.find("\"label\": \"no-fdp\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(Report, StatDumpsJson)
{
    auto results = fakeResults();
    StatSample counter;
    counter.name = "bpu.btb.hits";
    counter.kind = StatKind::kCounter;
    counter.intValue = 77;
    StatSample derived;
    derived.name = "core.ipc";
    derived.kind = StatKind::kDerived;
    derived.value = 1.25;
    results[0].runs[0].statDump = {counter, derived};

    const std::string path =
        std::string(::testing::TempDir()) + "/stats.json";
    ASSERT_TRUE(writeStatDumpsJson(path, results));
    const std::string body = slurp(path);
    EXPECT_NE(body.find("\"bpu.btb.hits\": 77"), std::string::npos);
    EXPECT_NE(body.find("\"core.ipc\": 1.25"), std::string::npos);
    EXPECT_EQ(std::count(body.begin(), body.end(), '{'),
              std::count(body.begin(), body.end(), '}'));
    std::remove(path.c_str());
}

TEST(Report, FailsOnBadPath)
{
    EXPECT_FALSE(writeSuiteResultsJson("/nonexistent/x.json", {}));
    EXPECT_FALSE(writeSuiteResultsCsv("/nonexistent/x.csv", {}));
}

TEST(Report, EscapesQuotes)
{
    SuiteResult r;
    r.label = "we\"ird";
    const std::string path =
        std::string(::testing::TempDir()) + "/esc.json";
    ASSERT_TRUE(writeSuiteResultsJson(path, {r}));
    const std::string body = slurp(path);
    EXPECT_NE(body.find("we\\\"ird"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace fdip
