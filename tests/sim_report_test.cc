/** @file Tests for the JSON/CSV experiment reports. */

#include "sim/report.h"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace fdip
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::vector<SuiteResult>
fakeResults()
{
    SuiteResult a;
    a.label = "fdp";
    RunResult r1;
    r1.workload = "srv-a";
    r1.stats.cycles = 1000;
    r1.stats.committedInsts = 1500;
    r1.stats.mispredicts = 9;
    RunResult r2;
    r2.workload = "clt-a";
    r2.stats.cycles = 2000;
    r2.stats.committedInsts = 2400;
    a.runs = {r1, r2};

    SuiteResult b = a;
    b.label = "no-fdp";
    b.runs[0].stats.cycles = 1400;
    return {a, b};
}

TEST(Report, JsonRoundStructure)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/report.json";
    ASSERT_TRUE(writeSuiteResultsJson(path, fakeResults()));
    const std::string body = slurp(path);
    EXPECT_NE(body.find("\"results\""), std::string::npos);
    EXPECT_NE(body.find("\"label\": \"fdp\""), std::string::npos);
    EXPECT_NE(body.find("\"workload\": \"srv-a\""), std::string::npos);
    EXPECT_NE(body.find("\"ipc\": 1.5"), std::string::npos);
    // Valid-ish JSON: balanced braces/brackets.
    EXPECT_EQ(std::count(body.begin(), body.end(), '{'),
              std::count(body.begin(), body.end(), '}'));
    EXPECT_EQ(std::count(body.begin(), body.end(), '['),
              std::count(body.begin(), body.end(), ']'));
    std::remove(path.c_str());
}

TEST(Report, CsvHasHeaderAndRows)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/report.csv";
    ASSERT_TRUE(writeSuiteResultsCsv(path, fakeResults()));
    const std::string body = slurp(path);
    EXPECT_EQ(body.find("label,workload,ipc"), 0u);
    // Header + 2 configs x 2 workloads.
    EXPECT_EQ(std::count(body.begin(), body.end(), '\n'), 5);
    EXPECT_NE(body.find("no-fdp,srv-a"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Report, FailsOnBadPath)
{
    EXPECT_FALSE(writeSuiteResultsJson("/nonexistent/x.json", {}));
    EXPECT_FALSE(writeSuiteResultsCsv("/nonexistent/x.csv", {}));
}

TEST(Report, EscapesQuotes)
{
    SuiteResult r;
    r.label = "we\"ird";
    const std::string path =
        std::string(::testing::TempDir()) + "/esc.json";
    ASSERT_TRUE(writeSuiteResultsJson(path, {r}));
    const std::string body = slurp(path);
    EXPECT_NE(body.find("we\\\"ird"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace fdip
