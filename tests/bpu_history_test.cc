/** @file Tests for the global history and its folded views. */

#include "bpu/history.h"

#include <gtest/gtest.h>

#include "util/bits.h"
#include "util/rng.h"

namespace fdip
{
namespace
{

TEST(History, PolicyNames)
{
    EXPECT_STREQ(historyPolicyName(HistoryPolicy::kTargetHistory), "THR");
    EXPECT_STREQ(historyPolicyName(HistoryPolicy::kDirectionHistory),
                 "GHR");
    EXPECT_STREQ(
        historyPolicyName(HistoryPolicy::kIdealDirectionHistory), "Ideal");
}

TEST(History, TargetPolicyIgnoresNotTaken)
{
    BranchHistory h(HistoryPolicy::kTargetHistory);
    const unsigned fold = h.registerFold(32, 10);
    const std::uint32_t before = h.folded(fold);
    h.pushBranch(0x1000, 0x2000, false);
    EXPECT_EQ(h.folded(fold), before);
    h.pushBranch(0x1000, 0x2000, true);
    EXPECT_NE(h.recentBits(), 0u);
}

TEST(History, DirectionPolicyRecordsBoth)
{
    BranchHistory h(HistoryPolicy::kDirectionHistory);
    h.pushBranch(0x1000, 0x2000, true);
    h.pushBranch(0x1000, 0x2000, false);
    h.pushBranch(0x1000, 0x2000, true);
    EXPECT_EQ(h.recentBits() & 0b111, 0b101u);
}

TEST(History, RecordsEventPredicate)
{
    BranchHistory thr(HistoryPolicy::kTargetHistory);
    EXPECT_TRUE(thr.recordsEvent(true));
    EXPECT_FALSE(thr.recordsEvent(false));
    BranchHistory ghr(HistoryPolicy::kDirectionHistory);
    EXPECT_TRUE(ghr.recordsEvent(true));
    EXPECT_TRUE(ghr.recordsEvent(false));
}

TEST(History, SnapshotRestoreExact)
{
    BranchHistory h(HistoryPolicy::kTargetHistory);
    const unsigned f1 = h.registerFold(64, 11);
    const unsigned f2 = h.registerFold(260, 9);
    Rng rng(3);
    for (int i = 0; i < 100; ++i)
        h.pushBranch(rng.next(), rng.next(), true);

    const HistorySnapshot snap = h.snapshot();
    const std::uint32_t v1 = h.folded(f1);
    const std::uint32_t v2 = h.folded(f2);
    const std::uint64_t recent = h.recentBits();

    for (int i = 0; i < 50; ++i)
        h.pushBranch(rng.next(), rng.next(), true);
    EXPECT_NE(h.folded(f1), v1); // Almost surely changed.

    h.restore(snap);
    EXPECT_EQ(h.folded(f1), v1);
    EXPECT_EQ(h.folded(f2), v2);
    EXPECT_EQ(h.recentBits(), recent);
}

TEST(History, RestoreThenReplayMatches)
{
    // Restoring and replaying the same events must land in the same
    // state as never having diverged (the repair-path invariant).
    BranchHistory h(HistoryPolicy::kTargetHistory);
    const unsigned f = h.registerFold(128, 12);
    Rng rng(17);
    for (int i = 0; i < 60; ++i)
        h.pushBranch(rng.next(), rng.next(), true);

    const HistorySnapshot snap = h.snapshot();
    const Addr pc1 = 0x1234, t1 = 0x5678;
    const Addr pc2 = 0x9abc, t2 = 0xdef0;
    h.pushBranch(pc1, t1, true);
    h.pushBranch(pc2, t2, true);
    const std::uint32_t expected = h.folded(f);
    const std::uint64_t expected_bits = h.recentBits();

    // Diverge: push garbage, then repair via restore + replay.
    for (int i = 0; i < 30; ++i)
        h.pushBranch(rng.next(), rng.next(), true);
    h.restore(snap);
    h.pushBranch(pc1, t1, true);
    h.pushBranch(pc2, t2, true);
    EXPECT_EQ(h.folded(f), expected);
    EXPECT_EQ(h.recentBits(), expected_bits);
}

TEST(History, FoldedMatchesFreshReplay)
{
    // Property: after any event sequence, the folded state equals that
    // of a fresh history fed the same events (no hidden state).
    Rng rng(29);
    for (int trial = 0; trial < 5; ++trial) {
        BranchHistory a(HistoryPolicy::kDirectionHistory);
        BranchHistory b(HistoryPolicy::kDirectionHistory);
        const unsigned fa = a.registerFold(100, 10);
        const unsigned fb = b.registerFold(100, 10);
        std::vector<std::pair<Addr, bool>> events;
        for (int i = 0; i < 500; ++i)
            events.push_back({rng.next(), (rng.next() & 1) != 0});
        for (const auto &e : events)
            a.pushBranch(e.first, e.first + 4, e.second);
        for (const auto &e : events)
            b.pushBranch(e.first, e.first + 4, e.second);
        EXPECT_EQ(a.folded(fa), b.folded(fb));
        EXPECT_EQ(a.recentBits(), b.recentBits());
    }
}

TEST(History, FoldedStaysInRange)
{
    BranchHistory h(HistoryPolicy::kTargetHistory);
    const unsigned f = h.registerFold(260, 9);
    Rng rng(31);
    for (int i = 0; i < 2000; ++i) {
        h.pushBranch(rng.next(), rng.next(), true);
        EXPECT_LE(h.folded(f), mask(9));
    }
}

TEST(History, OldEventsLeaveTheWindow)
{
    // Two histories that differ only in ancient events must converge
    // once the differing bits age out of every fold window.
    BranchHistory a(HistoryPolicy::kDirectionHistory);
    BranchHistory b(HistoryPolicy::kDirectionHistory);
    const unsigned fa = a.registerFold(32, 8);
    const unsigned fb = b.registerFold(32, 8);
    a.pushBranch(0x1111, 0, true); // Only in 'a'.
    Rng rng(37);
    for (int i = 0; i < 200; ++i) {
        const Addr pc = rng.next();
        const bool t = (rng.next() & 1) != 0;
        a.pushBranch(pc, pc + 4, t);
        b.pushBranch(pc, pc + 4, t);
    }
    EXPECT_EQ(a.folded(fa), b.folded(fb));
}

TEST(History, TooManyFoldsIsFatal)
{
    BranchHistory h(HistoryPolicy::kTargetHistory);
    for (std::size_t i = 0; i < HistorySnapshot::kMaxFolds; ++i)
        h.registerFold(16, 8);
    EXPECT_DEATH({ h.registerFold(16, 8); }, "folded history");
}

TEST(History, SnapshotIsCheap)
{
    // Snapshots must not allocate (fixed-size struct).
    static_assert(sizeof(HistorySnapshot) <=
                      32 + 4 * HistorySnapshot::kMaxFolds,
                  "snapshot grew unexpectedly");
    SUCCEED();
}

} // namespace
} // namespace fdip
