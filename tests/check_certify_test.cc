/** @file Budget-certificate tests: the JSON document parses, matches
 *  the checked-in golden byte-for-byte, and certifies the named
 *  configurations with exact (schema-backed) entries only. */

#include "check/certify.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "check/budget.h"

namespace fdip
{
namespace
{

bool
havePython()
{
    return std::system("python3 -c 'pass' >/dev/null 2>&1") == 0;
}

bool
pythonValidatesJson(const std::string &path)
{
    const std::string cmd =
        "python3 -c 'import json,sys; json.load(open(sys.argv[1]))' \"" +
        path + "\"";
    return std::system(cmd.c_str()) == 0;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(Certify, NamedConfigsAreWithinBudget)
{
    EXPECT_TRUE(budgetCertificateOk());
}

TEST(Certify, JsonIsDeterministicAndMentionsEveryKeyStructure)
{
    const std::string json = budgetCertificateJson();
    EXPECT_EQ(json, budgetCertificateJson());
    EXPECT_NE(json.find("\"fdip-budget-certificate-v1\""),
              std::string::npos);
    for (const char *name :
         {"paper-baseline", "no-fdp", "two-level-btb", "tage-9kb",
          "tage-36kb", "TAGE", "ITTAGE", "L1-BTB", "decode queue",
          "ITLB", "FTQ(arch)", "RAS", "history"}) {
        EXPECT_NE(json.find(std::string("\"") + name + "\""),
                  std::string::npos)
            << name;
    }
    // Replacement state appears as explicit fields, never folded away.
    EXPECT_NE(json.find("\"lru\""), std::string::npos);
}

TEST(Certify, WrittenFileIsValidJson)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/certificate.json";
    ASSERT_TRUE(writeBudgetCertificate(path));
    EXPECT_EQ(readFile(path), budgetCertificateJson());
    if (havePython()) {
        EXPECT_TRUE(pythonValidatesJson(path)) << path;
    }
}

TEST(Certify, MatchesTheCheckedInGolden)
{
    const std::string golden_path = std::string(FDIP_SOURCE_DIR) +
                                    "/tests/data/" +
                                    "budget_certificate.golden.json";
    const std::string golden = readFile(golden_path);
    ASSERT_FALSE(golden.empty()) << golden_path;
    // Byte-exact: a budget change must be an explicit golden update.
    EXPECT_EQ(budgetCertificateJson(), golden)
        << "regenerate with: fdipsim --certify > " << golden_path;
}

} // namespace
} // namespace fdip
