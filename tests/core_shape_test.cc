/** @file Frontend/backend shape-parameter tests on micro-programs:
 *  bandwidth, MSHRs, decode-queue backpressure, commit width. */

#include "core/core.h"

#include <gtest/gtest.h>

#include "micro_program.h"
#include "prefetch/prefetcher.h"

namespace fdip
{
namespace
{

using test::MicroProgram;

SimStats
runTrace(const Trace &trace, CoreConfig cfg)
{
    cfg.applyHistoryScheme();
    Core core(cfg, trace, std::make_unique<NullPrefetcher>());
    return core.run(0);
}

/** Straight-line code far larger than the L1I, looped. */
Trace
bigLoop(MicroProgram &mp, unsigned blocks, std::size_t n)
{
    for (unsigned b = 0; b + 1 < blocks; ++b) {
        for (int a = 0; a < 8; ++a)
            mp.alu();
    }
    for (int a = 0; a < 7; ++a)
        mp.alu();
    mp.jump(mp.workload().image.baseAddr());
    return mp.run(n);
}

/** Dense taken-branch chain: one jump per 4-instruction block. */
Trace
denseTakenChain(MicroProgram &mp, unsigned jumps, std::size_t n)
{
    for (unsigned j = 0; j < jumps; ++j) {
        for (int a = 0; a < 7; ++a)
            mp.alu();
        mp.jump(mp.workload().image.baseAddr() +
                ((j + 1) % jumps) * 8 * kInstBytes);
    }
    return mp.run(n);
}

TEST(Shape, MshrLimitSerializesFills)
{
    MicroProgram mp;
    const Trace t = bigLoop(mp, 4096, 50000); // 128KB of code.
    CoreConfig one = paperBaselineConfig();
    one.l1iMshrs = 1;
    CoreConfig many = paperBaselineConfig();
    many.l1iMshrs = 16;
    const SimStats s1 = runTrace(t, one);
    const SimStats s16 = runTrace(t, many);
    EXPECT_GT(s16.ipc(), s1.ipc() * 1.3)
        << "16 MSHRs must overlap misses a single MSHR serializes";
}

TEST(Shape, DecodeQueueBackpressureCompletes)
{
    MicroProgram mp;
    const Trace t = bigLoop(mp, 512, 40000);
    CoreConfig tiny = paperBaselineConfig();
    tiny.decodeQueueEntries = 8;
    const SimStats s_tiny = runTrace(t, tiny);
    const SimStats s_full = runTrace(t, paperBaselineConfig());
    EXPECT_EQ(s_tiny.committedInsts, 40000u);
    EXPECT_LE(s_tiny.ipc(), s_full.ipc() * 1.01);
}

TEST(Shape, PredictBandwidthMonotone)
{
    MicroProgram mp;
    const Trace t = bigLoop(mp, 2048, 50000);
    CoreConfig narrow = paperBaselineConfig();
    narrow.predictBandwidth = 4;
    CoreConfig wide = paperBaselineConfig();
    wide.predictBandwidth = 16;
    const SimStats sn = runTrace(t, narrow);
    const SimStats sw = runTrace(t, wide);
    EXPECT_GE(sw.ipc(), sn.ipc() * 0.99);
}

TEST(Shape, MultipleTakensPerCycleHelpDenseChains)
{
    // Every block ends taken: with 1 taken/cycle the prediction pipe
    // produces <= 8 insts/cycle; 2 takens/cycle doubles the runahead
    // build rate after flushes.
    MicroProgram mp;
    const Trace t = denseTakenChain(mp, 64, 40000);
    CoreConfig b1 = paperBaselineConfig();
    b1.predictBandwidth = 18;
    b1.maxTakenPerCycle = 1;
    CoreConfig b2 = b1;
    b2.maxTakenPerCycle = 2;
    const SimStats s1 = runTrace(t, b1);
    const SimStats s2 = runTrace(t, b2);
    EXPECT_GE(s2.ipc(), s1.ipc());
}

TEST(Shape, CommitWidthCapsIpc)
{
    MicroProgram mp;
    const Trace t = bigLoop(mp, 8, 30000); // Fits in the L1I: fast.
    CoreConfig w2 = paperBaselineConfig();
    w2.commitWidth = 2;
    const SimStats s = runTrace(t, w2);
    EXPECT_LE(s.ipc(), 2.0);
    EXPECT_GT(s.ipc(), 1.0);
}

TEST(Shape, FetchBandwidthCapsDelivery)
{
    MicroProgram mp;
    const Trace t = bigLoop(mp, 8, 30000);
    CoreConfig f2 = paperBaselineConfig();
    f2.fetchBandwidth = 2;
    const SimStats s2 = runTrace(t, f2);
    const SimStats s6 = runTrace(t, paperBaselineConfig());
    EXPECT_LE(s2.ipc(), 2.01);
    EXPECT_GT(s6.ipc(), s2.ipc());
}

TEST(Shape, DramOccupancyThrottlesColdStreams)
{
    MicroProgram mp;
    const Trace t = bigLoop(mp, 8192, 60000); // 256KB: misses L2 too.
    CoreConfig slow = paperBaselineConfig();
    slow.mem.dramOccupancy = 60;
    const SimStats s_slow = runTrace(t, slow);
    const SimStats s_fast = runTrace(t, paperBaselineConfig());
    EXPECT_GT(s_fast.ipc(), s_slow.ipc());
}

} // namespace
} // namespace fdip
