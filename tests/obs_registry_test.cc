/** @file Tests for the hierarchical statistics registry. */

#include "obs/stat_registry.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/core.h"
#include "prefetch/factory.h"

namespace fdip
{
namespace
{

TEST(StatRegistry, RegisterAndLookup)
{
    StatRegistry reg;
    std::uint64_t hits = 0;
    reg.addCounter("bpu.btb.hits", [&hits] { return hits; },
                   "BTB lookups that hit");
    reg.addDerived("bpu.btb.hit_rate", [&hits] {
        return static_cast<double>(hits) / 10.0;
    });

    EXPECT_TRUE(reg.contains("bpu.btb.hits"));
    EXPECT_FALSE(reg.contains("bpu.btb.misses"));
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.kindOf("bpu.btb.hits"), StatKind::kCounter);
    EXPECT_EQ(reg.kindOf("bpu.btb.hit_rate"), StatKind::kDerived);
    EXPECT_EQ(reg.description("bpu.btb.hits"), "BTB lookups that hit");

    // Getter-backed: reads see the live value, not a snapshot.
    EXPECT_EQ(reg.counterValue("bpu.btb.hits"), 0u);
    hits = 7;
    EXPECT_EQ(reg.counterValue("bpu.btb.hits"), 7u);
    EXPECT_DOUBLE_EQ(reg.value("bpu.btb.hit_rate"), 0.7);
}

TEST(StatRegistry, DuplicateNameIsFatal)
{
    StatRegistry reg;
    reg.addCounter("x.y", [] { return 0u; });
    EXPECT_EXIT({ reg.addCounter("x.y", [] { return 1u; }); },
                ::testing::ExitedWithCode(1), "x.y");
}

TEST(StatRegistry, UnknownNameIsFatal)
{
    StatRegistry reg;
    EXPECT_EXIT({ (void)reg.counterValue("nope"); },
                ::testing::ExitedWithCode(1), "nope");
    EXPECT_EXIT({ (void)reg.kindOf("nope"); },
                ::testing::ExitedWithCode(1), "nope");
}

TEST(StatRegistry, CounterValueOnDerivedIsFatal)
{
    StatRegistry reg;
    reg.addDerived("d", [] { return 1.0; });
    EXPECT_EXIT({ (void)reg.counterValue("d"); },
                ::testing::ExitedWithCode(1), "");
}

TEST(StatRegistry, PrefixQuery)
{
    StatRegistry reg;
    reg.addCounter("bpu.btb.hits", [] { return 0u; });
    reg.addCounter("bpu.btb.lookups", [] { return 0u; });
    reg.addCounter("bpu.btb2.hits", [] { return 0u; });
    reg.addCounter("frontend.ftq.size", [] { return 0u; });

    const auto names = reg.namesWithPrefix("bpu.btb");
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "bpu.btb.hits");
    EXPECT_EQ(names[1], "bpu.btb.lookups");
    EXPECT_EQ(reg.namesWithPrefix("frontend").size(), 1u);
    EXPECT_TRUE(reg.namesWithPrefix("nothing").empty());
    EXPECT_EQ(reg.names().size(), 4u);
}

TEST(StatRegistry, HistogramClampsAndAggregates)
{
    StatHistogram h(4, 10); // Buckets [0,10) [10,20) [20,30) [30,inf).
    h.add(0);
    h.add(9);
    h.add(10);
    h.add(35);
    h.add(1000); // Clamped into the last bucket.

    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 2u);
    EXPECT_DOUBLE_EQ(h.mean(), (0.0 + 9 + 10 + 35 + 1000) / 5.0);

    StatRegistry reg;
    reg.addHistogram("fe.lat", &h);
    EXPECT_EQ(reg.kindOf("fe.lat"), StatKind::kHistogram);
    EXPECT_DOUBLE_EQ(reg.value("fe.lat"), h.mean());

    // Snapshot flattens histograms into pseudo-entries.
    const auto snap = reg.snapshot();
    bool saw_count = false;
    for (const auto &s : snap) {
        if (s.name == "fe.lat.count") {
            saw_count = true;
            EXPECT_EQ(s.intValue, 5u);
        }
    }
    EXPECT_TRUE(saw_count);
}

TEST(StatRegistry, CoreRegistersFullHierarchy)
{
    WorkloadSpec spec = serverSpec("obs", 11);
    spec.numFunctions = 64;
    auto wl = std::make_shared<Workload>(buildWorkload(spec));
    const Trace trace = generateTrace(wl, 20000);

    CoreConfig cfg = paperBaselineConfig();
    cfg.applyHistoryScheme();
    Core core(cfg, trace, makePrefetcher("eip-27"));
    const SimStats stats = core.run(2000);

    StatRegistry reg;
    core.registerStats(reg);

    // Every subsystem shows up under its dotted prefix.
    for (const char *name :
         {"core.cycles", "core.committed_insts", "core.ipc",
          "frontend.ftq.capacity", "frontend.ftq.occupancy",
          "frontend.l1i.hits", "frontend.l1i.misses", "frontend.itlb.hits",
          "bpu.btb.hits", "bpu.btb.lookups", "bpu.ras.depth",
          "bpu.storage_bits", "mem.l2.hits", "mem.dram_accesses",
          "pf.EIP-27KB.storage_bits"}) {
        EXPECT_TRUE(reg.contains(name)) << name;
    }
    EXPECT_EQ(reg.kindOf("frontend.ftq.occupancy"), StatKind::kHistogram);

    // Registry reads agree with the returned SimStats.
    EXPECT_EQ(reg.counterValue("core.cycles"), stats.cycles);
    EXPECT_EQ(reg.counterValue("core.committed_insts"),
              stats.committedInsts);
    EXPECT_DOUBLE_EQ(reg.value("core.ipc"), stats.ipc());
    // The FTQ occupancy histogram saw every post-reset tick.
    EXPECT_GT(reg.value("frontend.ftq.occupancy"), 0.0);

    // Snapshot materializes everything.
    EXPECT_EQ(reg.snapshot().size(), reg.size() + 2 * 3); // 2 histograms.
}

TEST(StatRegistry, WriteJsonBalanced)
{
    StatRegistry reg;
    reg.addCounter("a.b", [] { return 42u; });
    reg.addDerived("a.c", [] { return 0.5; });
    const std::string path =
        std::string(::testing::TempDir()) + "/stats.json";
    ASSERT_TRUE(reg.writeJson(path));

    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string body;
    char buf[256];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        body.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());

    EXPECT_NE(body.find("\"a.b\": 42"), std::string::npos);
    EXPECT_EQ(std::count(body.begin(), body.end(), '{'),
              std::count(body.begin(), body.end(), '}'));
}

} // namespace
} // namespace fdip
