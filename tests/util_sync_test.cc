/** @file
 * Tests for the capability-annotated concurrency primitives. The
 * annotations themselves are checked by the clang `thread-safety`
 * build preset; here we pin the runtime semantics (the wrappers must
 * behave exactly like the std primitives they ban) and the ownership
 * surface (none of them may be copied or moved — a capability that
 * silently changed identity would void every annotation naming it).
 */

#include "util/sync.h"

#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

namespace fdip
{
namespace
{

static_assert(!std::is_copy_constructible_v<Mutex> &&
                  !std::is_copy_assignable_v<Mutex> &&
                  !std::is_move_constructible_v<Mutex> &&
                  !std::is_move_assignable_v<Mutex>,
              "a Mutex is a capability; its identity must be fixed");
static_assert(!std::is_copy_constructible_v<MutexLock> &&
                  !std::is_copy_assignable_v<MutexLock>,
              "MutexLock is a scoped capability; copying would double-"
              "release");
static_assert(!std::is_copy_constructible_v<Atomic<std::uint64_t>> &&
                  !std::is_move_constructible_v<Atomic<std::uint64_t>>,
              "Atomic shared state must be referenced, never copied");

TEST(Sync, MutexExcludes)
{
    Mutex m;
    m.lock();
    EXPECT_FALSE(m.tryLock());
    m.unlock();
    EXPECT_TRUE(m.tryLock());
    m.unlock();
}

TEST(Sync, AtomicLoadStoreExchange)
{
    Atomic<std::uint64_t> a{7};
    EXPECT_EQ(a.load(), 7u);
    a.store(9);
    EXPECT_EQ(a.load(std::memory_order_acquire), 9u);
    EXPECT_EQ(a.exchange(11), 9u);
    EXPECT_EQ(a.fetchAdd(4), 11u);
    EXPECT_EQ(a.load(), 15u);

    Atomic<bool> flag;
    EXPECT_FALSE(flag.load());
    flag.store(true, std::memory_order_release);
    EXPECT_TRUE(flag.load(std::memory_order_acquire));
}

/** The MutexLock + guarded-counter pattern used by the worker pool:
 *  N threads each add M increments; the total must be exact. */
TEST(Sync, MutexLockSerializesIncrements)
{
    constexpr unsigned kThreads = 4;
    constexpr unsigned kIncrements = 10000;

    Mutex mutex;
    std::uint64_t counter = 0; // guarded by `mutex` (runtime test only)

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&mutex, &counter]() {
            for (unsigned i = 0; i < kIncrements; ++i) {
                MutexLock lock(mutex);
                ++counter;
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(counter, std::uint64_t{kThreads} * kIncrements);
}

/** The lock-free claim protocol of the worker pool: a shared cursor
 *  must hand out every index exactly once. */
TEST(Sync, AtomicCursorClaimsEachIndexOnce)
{
    constexpr unsigned kThreads = 4;
    constexpr std::size_t kItems = 5000;

    Atomic<std::size_t> cursor;
    std::vector<std::uint8_t> claimed(kItems, 0);

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cursor, &claimed]() {
            for (;;) {
                const std::size_t i =
                    cursor.fetchAdd(1, std::memory_order_relaxed);
                if (i >= kItems)
                    return;
                ++claimed[i]; // exclusively owned once claimed
            }
        });
    }
    for (auto &th : threads)
        th.join();
    for (std::size_t i = 0; i < kItems; ++i)
        ASSERT_EQ(claimed[i], 1u) << "slot " << i;
}

} // namespace
} // namespace fdip
