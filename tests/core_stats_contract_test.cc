/** @file
 * Contract tests for SimStats: the documented architectural-counter
 * arity must match the std::tie tuple that determinism comparisons,
 * per-field registration, and the heartbeat deltas are all built on.
 * Adding a counter without updating kArchitecturalCounters (and the
 * registration/comparison sites) fails here at compile time.
 */

#include "core/sim_stats.h"

#include <string>
#include <tuple>
#include <type_traits>
#include <utility>

#include <gtest/gtest.h>

#include "bpu/bpu.h"
#include "bpu/btb.h"
#include "bpu/btb_hierarchy.h"
#include "bpu/ras.h"
#include "cache/cache.h"
#include "cache/hierarchy.h"
#include "core/core.h"
#include "core/frontend.h"
#include "core/ftq.h"
#include "obs/stat_registry.h"
#include "prefetch/prefetcher.h"

namespace fdip
{
namespace
{

// ---------------------------------------------------------------------
// Observation purity: every registerStats() path must take the
// component through a *const* reference, so registration (and the
// getters it captures) cannot mutate simulated state. A component
// whose registerStats loses its const qualifier stops satisfying
// these assertions and fails here at compile time.
// ---------------------------------------------------------------------

template <typename T>
inline constexpr bool kRegistersConst =
    std::is_invocable_v<decltype(&T::registerStats), const T &,
                        StatRegistry &, const std::string &>;

static_assert(kRegistersConst<Frontend>,
              "Frontend::registerStats must be const");
static_assert(kRegistersConst<Ftq>, "Ftq::registerStats must be const");
static_assert(kRegistersConst<Bpu>, "Bpu::registerStats must be const");
static_assert(kRegistersConst<Btb>, "Btb::registerStats must be const");
static_assert(kRegistersConst<BtbHierarchy>,
              "BtbHierarchy::registerStats must be const");
static_assert(kRegistersConst<Ras>, "Ras::registerStats must be const");
static_assert(kRegistersConst<Cache>,
              "Cache::registerStats must be const");
static_assert(kRegistersConst<MemoryHierarchy>,
              "MemoryHierarchy::registerStats must be const");
static_assert(kRegistersConst<InstPrefetcher>,
              "InstPrefetcher::registerStats must be const");
static_assert(
    std::is_invocable_v<decltype(&Core::registerStats), const Core &,
                        StatRegistry &>,
    "Core::registerStats must be const");

using ArchTuple =
    decltype(std::declval<const SimStats &>().architecturalState());

static_assert(std::tuple_size_v<ArchTuple> ==
                  SimStats::kArchitecturalCounters,
              "architecturalState() arity != kArchitecturalCounters");

// Every element of the tuple is a uint64 counter reference — no field
// can silently join as a different type and break bitwise comparison.
static_assert(
    std::is_same_v<std::tuple_element_t<0, ArchTuple>,
                   const std::uint64_t &>,
    "architecturalState() must expose const uint64 references");
static_assert(
    std::is_same_v<
        std::tuple_element_t<SimStats::kArchitecturalCounters - 1,
                             ArchTuple>,
        const std::uint64_t &>,
    "architecturalState() must expose const uint64 references");

TEST(SimStatsContract, ArityMatchesDocumentedConstant)
{
    EXPECT_EQ(std::tuple_size_v<ArchTuple>,
              SimStats::kArchitecturalCounters);
    // The struct is exactly the counters plus host wall-clock; a new
    // field that isn't wired into architecturalState() changes this.
    EXPECT_EQ(sizeof(SimStats),
              SimStats::kArchitecturalCounters * sizeof(std::uint64_t) +
                  sizeof(double));
}

TEST(SimStatsContract, EqualityTracksEveryCounter)
{
    SimStats a;
    a.cycles = 100;
    a.committedInsts = 250;
    SimStats b = a;
    EXPECT_TRUE(a.architecturallyEqual(b));

    // Host wall-clock is telemetry, not architecture.
    b.hostWallSeconds = 99.0;
    EXPECT_TRUE(a.architecturallyEqual(b));

    b.btbHits = 1;
    EXPECT_FALSE(a.architecturallyEqual(b));
}

TEST(SimStatsContract, DerivedPrefetchMetrics)
{
    SimStats s;
    EXPECT_DOUBLE_EQ(s.prefetchAccuracy(), 0.0);
    EXPECT_DOUBLE_EQ(s.prefetchCoverage(), 0.0);
    EXPECT_DOUBLE_EQ(s.prefetchRedundantRate(), 0.0);

    s.prefetchesIssued = 100;
    s.prefetchesUseful = 40;
    s.prefetchesRedundant = 25;
    s.l1iDemandMisses = 60;
    EXPECT_DOUBLE_EQ(s.prefetchAccuracy(), 0.4);
    EXPECT_DOUBLE_EQ(s.prefetchCoverage(), 0.4);
    EXPECT_DOUBLE_EQ(s.prefetchRedundantRate(), 0.25);
}

} // namespace
} // namespace fdip
