/** @file Unit and property tests for util/flat_map.h.
 *
 *  FlatMap replaces std::unordered_map on the tick path (in-flight
 *  fill tables, prefetch tracking) because put/erase must be
 *  allocation-free in steady state (docs/ANALYSIS.md §7). The churn
 *  test below exercises the backward-shift deletion against a
 *  reference map, which is where open-addressing bugs hide.
 */

#include "util/flat_map.h"

#include <cstdint>
#include <unordered_map>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fdip
{
namespace
{

TEST(FlatMap, StartsEmpty)
{
    FlatMap<std::uint64_t, int> m(16);
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.size(), 0u);
    EXPECT_GE(m.capacity(), 16u);
    EXPECT_EQ(m.find(42), nullptr);
    EXPECT_FALSE(m.contains(42));
}

TEST(FlatMap, PutFindOverwrite)
{
    FlatMap<std::uint64_t, int> m(8);
    m.put(1, 10);
    m.put(2, 20);
    ASSERT_NE(m.find(1), nullptr);
    EXPECT_EQ(*m.find(1), 10);
    EXPECT_EQ(*m.find(2), 20);
    EXPECT_EQ(m.size(), 2u);

    m.put(1, 11); // overwrite, not a second entry
    EXPECT_EQ(*m.find(1), 11);
    EXPECT_EQ(m.size(), 2u);
}

TEST(FlatMap, EraseReportsPresence)
{
    FlatMap<std::uint64_t, int> m(8);
    m.put(7, 70);
    EXPECT_FALSE(m.erase(8));
    EXPECT_TRUE(m.erase(7));
    EXPECT_FALSE(m.contains(7));
    EXPECT_TRUE(m.empty());
    EXPECT_FALSE(m.erase(7)); // already gone
}

TEST(FlatMap, ClearKeepsCapacity)
{
    FlatMap<std::uint64_t, int> m(8);
    for (std::uint64_t k = 0; k < 8; ++k)
        m.put(k, static_cast<int>(k));
    const std::size_t cap = m.capacity();
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.capacity(), cap);
    EXPECT_EQ(m.find(3), nullptr);
}

TEST(FlatMap, GrowthPreservesEntries)
{
    // Sized for 4 entries, then loaded with 64: every put beyond
    // capacity doubles the table, and no entry may be lost or
    // corrupted across rehashes.
    FlatMap<std::uint64_t, int> m(4);
    for (std::uint64_t k = 0; k < 64; ++k)
        m.put(k * 0x10001, static_cast<int>(k));
    EXPECT_EQ(m.size(), 64u);
    for (std::uint64_t k = 0; k < 64; ++k) {
        ASSERT_NE(m.find(k * 0x10001), nullptr) << k;
        EXPECT_EQ(*m.find(k * 0x10001), static_cast<int>(k));
    }
}

TEST(FlatMap, ConstFind)
{
    FlatMap<std::uint64_t, int> m(4);
    m.put(5, 50);
    const auto &cm = m;
    ASSERT_NE(cm.find(5), nullptr);
    EXPECT_EQ(*cm.find(5), 50);
    EXPECT_TRUE(cm.contains(5));
    EXPECT_EQ(cm.find(6), nullptr);
}

TEST(FlatMap, ChurnMatchesReferenceMap)
{
    // Backward-shift deletion property test: a small, collision-heavy
    // table under random put/erase churn must agree with
    // std::unordered_map at every step. A shift bug (moving an entry
    // whose home slot is not on the probe path, or leaving a hole that
    // breaks a chain) shows up as a lost or phantom key.
    FlatMap<std::uint64_t, int> m(8);
    std::unordered_map<std::uint64_t, int> ref;
    Rng rng(0xF1A7'0000'0000'0001ULL);

    for (int step = 0; step < 20000; ++step) {
        // Keys from a tiny universe so probe chains constantly overlap.
        const std::uint64_t key = rng.below(24);
        if (rng.below(100) < 60) {
            const int value = static_cast<int>(rng.below(1 << 20));
            m.put(key, value);
            ref[key] = value;
        } else {
            EXPECT_EQ(m.erase(key), ref.erase(key) == 1) << "step " << step;
        }
        ASSERT_EQ(m.size(), ref.size()) << "step " << step;
    }
    for (std::uint64_t key = 0; key < 24; ++key) {
        const auto it = ref.find(key);
        const int *got = m.find(key);
        if (it == ref.end()) {
            EXPECT_EQ(got, nullptr) << "key " << key;
        } else {
            ASSERT_NE(got, nullptr) << "key " << key;
            EXPECT_EQ(*got, it->second) << "key " << key;
        }
    }
}

} // namespace
} // namespace fdip
