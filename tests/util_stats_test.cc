/** @file Unit tests for util/stats.h and util/table.h. */

#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/table.h"

namespace fdip
{
namespace
{

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4);
    h.sample(0);
    h.sample(1);
    h.sample(1);
    h.sample(100); // Overflow bucket.
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.totalSamples(), 4u);
}

TEST(Histogram, Mean)
{
    Histogram h(16);
    h.sample(2);
    h.sample(4);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
    h.reset();
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(CounterRegistry, CreatesOnDemand)
{
    CounterRegistry reg;
    reg.counter("a").inc(3);
    reg.counter("a").inc(2);
    reg.counter("b").inc();
    EXPECT_EQ(reg.value("a"), 5u);
    EXPECT_EQ(reg.value("b"), 1u);
    EXPECT_EQ(reg.value("missing"), 0u);
    reg.reset();
    EXPECT_EQ(reg.value("a"), 0u);
}

TEST(Means, GeometricMean)
{
    EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
    EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geometricMean({1.0, 1.0, 1.0}), 1.0, 1e-12);
    EXPECT_NEAR(geometricMean({3.0}), 3.0, 1e-12);
}

TEST(Means, ArithmeticMean)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Means, GeomeanOfSpeedupsMatchesPaperConvention)
{
    // Speedups 1.1 and 1.3 -> geomean ~1.196, not 1.2.
    const double g = geometricMean({1.1, 1.3});
    EXPECT_NEAR(g, std::sqrt(1.1 * 1.3), 1e-12);
}

TEST(TextTable, FormatsNumbers)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
    EXPECT_EQ(TextTable::pct(0.41, 1), "41.0%");
}

TEST(TextTable, RendersRows)
{
    TextTable t({"a", "bb"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    // Render into a temp file and check content survives.
    std::FILE *f = std::tmpfile();
    ASSERT_NE(f, nullptr);
    t.print(f);
    long size = std::ftell(f);
    EXPECT_GT(size, 0);
    std::fclose(f);
}

} // namespace
} // namespace fdip
