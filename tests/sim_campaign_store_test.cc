/**
 * @file
 * Unit tests for the campaign store's building blocks: FNV-1a content
 * hashing, the spool record format (round-trip, checksum, version and
 * corruption detection), manifest digest sensitivity, and the
 * crash-safe file primitives of util/atomic_file.h.
 */

#include "sim/campaign_store.h"

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "util/atomic_file.h"
#include "util/fnv.h"

namespace fdip
{
namespace
{

/** A fresh, unique temp directory under gtest's TempDir. */
std::string
tempDir()
{
    std::string tmpl = ::testing::TempDir() + "campaignXXXXXX";
    char *raw = ::mkdtemp(tmpl.data());
    EXPECT_NE(raw, nullptr);
    return tmpl;
}

TEST(Fnv, MatchesPublishedVectors)
{
    // Published FNV-1a 64-bit test vectors.
    EXPECT_EQ(fnv1a64(""), kFnvOffsetBasis);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv, MixEqualsByteWiseLittleEndian)
{
    const std::uint64_t v = 0x0123456789abcdefull;
    std::uint64_t h = kFnvOffsetBasis;
    for (unsigned i = 0; i < 8; ++i)
        h = fnv1aByte(static_cast<std::uint8_t>(v >> (8 * i)), h);
    EXPECT_EQ(fnv1aMix(v, kFnvOffsetBasis), h);
}

TEST(Fnv, Hex16RoundTripsAndRejectsBadInput)
{
    for (std::uint64_t v : {0ull, 1ull, 0xdeadbeefcafef00dull,
                            ~0ull}) {
        const std::string hex = toHex16(v);
        EXPECT_EQ(hex.size(), 16u);
        std::uint64_t back = 0;
        ASSERT_TRUE(fromHex16(hex, &back)) << hex;
        EXPECT_EQ(back, v);
    }
    std::uint64_t sink = 0;
    EXPECT_FALSE(fromHex16("", &sink));
    EXPECT_FALSE(fromHex16("0123456789abcde", &sink));   // 15 chars.
    EXPECT_FALSE(fromHex16("0123456789abcdef0", &sink)); // 17 chars.
    EXPECT_FALSE(fromHex16("0123456789ABCDEF", &sink));  // Uppercase.
    EXPECT_FALSE(fromHex16("0123456789abcdeg", &sink));  // Non-hex.
}

/** A fully-populated record with distinctive counter values. */
CampaignRecord
sampleRecord()
{
    CampaignRecord r;
    r.hash = toHex16(0x1122334455667788ull);
    r.label = "FDP+EIP-27KB";
    r.workload = "srv-1";
    r.prefetcher = "eip-27";
    r.configDigestHex = toHex16(0x99aabbccddeeff00ull);
    std::uint64_t seed = 3;
    // Give every architectural counter a distinct nonzero value.
    for (std::uint64_t *p :
         {&r.stats.cycles, &r.stats.committedInsts, &r.stats.condBranches,
          &r.stats.takenBranches, &r.stats.indirectBranches,
          &r.stats.returns, &r.stats.mispredicts}) {
        *p = seed;
        seed = seed * 7 + 1;
    }
    r.stats.cycles = 123456789;
    r.stats.committedInsts = 1000000;
    r.stats.hostWallSeconds = 1.25;
    return r;
}

TEST(CampaignRecord, JsonRoundTripPreservesEverythingArchitectural)
{
    const CampaignRecord in = sampleRecord();
    const std::string line = campaignRecordJson(in);
    EXPECT_EQ(line.back(), '\n');
    EXPECT_EQ(line.find('\n'), line.size() - 1) << "must be one line";

    CampaignRecord out;
    std::string err;
    ASSERT_TRUE(parseCampaignRecord(line, &out, &err)) << err;
    EXPECT_EQ(out.hash, in.hash);
    EXPECT_EQ(out.label, in.label);
    EXPECT_EQ(out.workload, in.workload);
    EXPECT_EQ(out.prefetcher, in.prefetcher);
    EXPECT_EQ(out.configDigestHex, in.configDigestHex);
    EXPECT_TRUE(out.stats.architecturallyEqual(in.stats));
    EXPECT_EQ(architecturalChecksum(out.stats),
              architecturalChecksum(in.stats));
}

TEST(CampaignRecord, EscapedLabelRoundTrips)
{
    CampaignRecord in = sampleRecord();
    in.label = "odd \"label\" with \\ backslash";
    CampaignRecord out;
    std::string err;
    ASSERT_TRUE(parseCampaignRecord(campaignRecordJson(in), &out, &err))
        << err;
    EXPECT_EQ(out.label, in.label);
}

TEST(CampaignRecord, ChecksumExcludesHostTelemetry)
{
    CampaignRecord r = sampleRecord();
    const std::uint64_t before = architecturalChecksum(r.stats);
    r.stats.hostWallSeconds *= 17.0;
    EXPECT_EQ(architecturalChecksum(r.stats), before);
    r.stats.cycles += 1;
    EXPECT_NE(architecturalChecksum(r.stats), before);
}

TEST(CampaignRecord, TamperedCounterFailsChecksum)
{
    const std::string line = campaignRecordJson(sampleRecord());
    const std::string needle = "\"cycles\": 123456789";
    const std::size_t pos = line.find(needle);
    ASSERT_NE(pos, std::string::npos);
    std::string tampered = line;
    tampered.replace(pos, needle.size(), "\"cycles\": 123456788");

    CampaignRecord out;
    std::string err;
    EXPECT_FALSE(parseCampaignRecord(tampered, &out, &err));
    EXPECT_NE(err.find("checksum"), std::string::npos) << err;
}

TEST(CampaignRecord, TruncationAndGarbageAreRejectedNotFatal)
{
    const std::string line = campaignRecordJson(sampleRecord());
    CampaignRecord out;
    std::string err;
    // Every proper prefix must fail cleanly.
    for (std::size_t len : {0ul, 1ul, 10ul, line.size() / 2,
                            line.size() - 2}) {
        EXPECT_FALSE(
            parseCampaignRecord(line.substr(0, len), &out, &err))
            << "prefix length " << len;
    }
    EXPECT_FALSE(parseCampaignRecord(line + "trailing", &out, &err));
    EXPECT_FALSE(parseCampaignRecord("not json at all", &out, &err));
}

TEST(CampaignRecord, UnknownVersionIsRejectedWithClearReason)
{
    std::string line = campaignRecordJson(sampleRecord());
    const std::string v =
        "\"fdipCampaignRecord\": " + std::to_string(kCampaignRecordVersion);
    const std::size_t pos = line.find(v);
    ASSERT_NE(pos, std::string::npos);
    line.replace(pos, v.size(), "\"fdipCampaignRecord\": 999");

    CampaignRecord out;
    std::string err;
    EXPECT_FALSE(parseCampaignRecord(line, &out, &err));
    EXPECT_NE(err.find("version"), std::string::npos) << err;
}

/** Two distinct tiny workloads for manifest tests. */
std::vector<SuiteEntry>
twoWorkloads()
{
    std::vector<SuiteEntry> suite;
    for (std::uint64_t seed : {11ull, 12ull}) {
        auto wl = std::make_shared<Workload>(
            buildWorkload(specCpuSpec("m", seed)));
        SuiteEntry e;
        e.name = "m-" + std::to_string(seed);
        e.trace = generateTrace(wl, 5000);
        suite.push_back(std::move(e));
    }
    return suite;
}

TEST(Manifest, StableAcrossCallsAndOrderedByCampaign)
{
    const auto suite = twoWorkloads();
    std::vector<CampaignEntry> entries;
    entries.push_back(
        CampaignEntry{"a", paperBaselineConfig(), noPrefetcher(), {}});
    entries.push_back(CampaignEntry{"b", noFdpConfig(), noPrefetcher(), {}});

    const auto m1 = buildManifest(entries, suite, 0.2);
    const auto m2 = buildManifest(entries, suite, 0.2);
    ASSERT_EQ(m1.size(), 4u);
    for (std::size_t i = 0; i < m1.size(); ++i) {
        EXPECT_EQ(m1[i].hash, m2[i].hash);
        EXPECT_EQ(m1[i].entryIdx, i / suite.size());
        EXPECT_EQ(m1[i].workloadIdx, i % suite.size());
        std::uint64_t sink = 0;
        EXPECT_TRUE(fromHex16(m1[i].hash, &sink)) << m1[i].hash;
    }
    // All four (config, workload) pairs are distinct experiments.
    for (std::size_t i = 0; i < m1.size(); ++i)
        for (std::size_t j = i + 1; j < m1.size(); ++j)
            EXPECT_NE(m1[i].hash, m1[j].hash);
}

TEST(Manifest, HashIsSensitiveToEveryAddressedInput)
{
    const auto suite = twoWorkloads();
    std::vector<CampaignEntry> base;
    base.push_back(
        CampaignEntry{"a", paperBaselineConfig(), noPrefetcher(), {}});
    const std::string h0 = buildManifest(base, suite, 0.2)[0].hash;

    // Any architectural config knob changes the hash.
    {
        std::vector<CampaignEntry> mod = base;
        mod[0].cfg.ftqEntries += 1;
        EXPECT_NE(buildManifest(mod, suite, 0.2)[0].hash, h0);
    }
    {
        std::vector<CampaignEntry> mod = base;
        mod[0].cfg.bpu.btb.numEntries *= 2;
        EXPECT_NE(buildManifest(mod, suite, 0.2)[0].hash, h0);
    }
    // The prefetcher identity changes the hash; the display label
    // alone does not (an empty id falls back to the label, so give
    // both variants an explicit id to isolate the label).
    {
        std::vector<CampaignEntry> mod = base;
        mod[0].prefetcherId = "eip-27";
        EXPECT_NE(buildManifest(mod, suite, 0.2)[0].hash, h0);
    }
    {
        std::vector<CampaignEntry> a = base;
        std::vector<CampaignEntry> b = base;
        a[0].prefetcherId = "none";
        b[0].prefetcherId = "none";
        b[0].label = "renamed";
        EXPECT_EQ(buildManifest(a, suite, 0.2)[0].hash,
                  buildManifest(b, suite, 0.2)[0].hash);
    }
    // Warmup fraction is part of the experiment.
    EXPECT_NE(buildManifest(base, suite, 0.25)[0].hash, h0);
    // The workload (its trace content) is part of the experiment:
    // entry 0 x workload 0 vs entry 0 x workload 1.
    const auto m = buildManifest(base, suite, 0.2);
    EXPECT_NE(m[0].hash, m[1].hash);
}

TEST(Manifest, SeedAndLengthChangeTheTraceDigest)
{
    auto wlA = std::make_shared<Workload>(
        buildWorkload(specCpuSpec("m", 11)));
    auto wlB = std::make_shared<Workload>(
        buildWorkload(specCpuSpec("m", 12)));
    SuiteEntry a;
    a.name = "same-name";
    a.trace = generateTrace(wlA, 5000);
    SuiteEntry b;
    b.name = "same-name";
    b.trace = generateTrace(wlB, 5000);
    // Same name, different seed: content addressing must see through.
    EXPECT_NE(traceDigest(a), traceDigest(b));

    SuiteEntry longer;
    longer.name = "same-name";
    longer.trace = generateTrace(wlA, 6000);
    EXPECT_NE(traceDigest(a), traceDigest(longer));

    // And it is a pure content function: rebuilt identically, hashes
    // identically.
    SuiteEntry again;
    again.name = "same-name";
    auto wlA2 = std::make_shared<Workload>(
        buildWorkload(specCpuSpec("m", 11)));
    again.trace = generateTrace(wlA2, 5000);
    EXPECT_EQ(traceDigest(a), traceDigest(again));
}

TEST(AtomicFile, WriteReadRoundTrip)
{
    const std::string dir = tempDir();
    const std::string path = dir + "/file.txt";
    std::string err;
    ASSERT_TRUE(writeFileAtomic(path, "hello\n", &err)) << err;
    std::string back;
    ASSERT_TRUE(readFileToString(path, &back, &err)) << err;
    EXPECT_EQ(back, "hello\n");

    // Overwrite is atomic replacement, and no temp files survive.
    ASSERT_TRUE(writeFileAtomic(path, "second\n", &err)) << err;
    ASSERT_TRUE(readFileToString(path, &back, &err)) << err;
    EXPECT_EQ(back, "second\n");
    EXPECT_EQ(listDirectory(dir).size(), 1u);
}

TEST(AtomicFile, ExclusiveCreateAdmitsExactlyOneWinner)
{
    const std::string dir = tempDir();
    const std::string path = dir + "/claim";
    EXPECT_EQ(createFileExclusive(path, "one\n"),
              ExclusiveCreate::kCreated);
    EXPECT_EQ(createFileExclusive(path, "two\n"),
              ExclusiveCreate::kExists);
    std::string back;
    ASSERT_TRUE(readFileToString(path, &back));
    EXPECT_EQ(back, "one\n") << "loser must not clobber the claim";

    std::string err;
    EXPECT_EQ(createFileExclusive(dir + "/no/such/dir/claim", "x", &err),
              ExclusiveCreate::kError);
    EXPECT_FALSE(err.empty());
}

TEST(AtomicFile, EnsureDirectoryIsMkdirP)
{
    const std::string dir = tempDir();
    std::string err;
    ASSERT_TRUE(ensureDirectory(dir + "/a/b/c", &err)) << err;
    ASSERT_TRUE(ensureDirectory(dir + "/a/b/c", &err)) << err; // Idempotent.
    ASSERT_TRUE(writeFileAtomic(dir + "/a/b/c/f", "x\n", &err)) << err;

    // An existing regular file is not a directory.
    EXPECT_FALSE(ensureDirectory(dir + "/a/b/c/f", &err));
}

TEST(AtomicFile, ListRemoveAndExistSemantics)
{
    const std::string dir = tempDir();
    ASSERT_TRUE(writeFileAtomic(dir + "/b", "1"));
    ASSERT_TRUE(writeFileAtomic(dir + "/a", "2"));
    ASSERT_TRUE(ensureDirectory(dir + "/sub"));

    const auto names = listDirectory(dir);
    ASSERT_EQ(names.size(), 2u) << "directories are not listed";
    EXPECT_EQ(names[0], "a") << "sorted order";
    EXPECT_EQ(names[1], "b");

    EXPECT_TRUE(fileExists(dir + "/a"));
    EXPECT_FALSE(fileExists(dir + "/sub"));
    EXPECT_TRUE(removeFile(dir + "/a"));
    EXPECT_TRUE(removeFile(dir + "/a")) << "absent is success";
    EXPECT_FALSE(fileExists(dir + "/a"));
    EXPECT_TRUE(listDirectory(dir + "/nonexistent").empty());
}

} // namespace
} // namespace fdip
