/** @file Unit tests for util/bits.h. */

#include "util/bits.h"

#include <gtest/gtest.h>

namespace fdip
{
namespace
{

TEST(Bits, MaskBasics)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(63), 0x7fffffffffffffffULL);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
}

TEST(Bits, BitsExtract)
{
    EXPECT_EQ(bits(0xabcd, 0, 4), 0xdu);
    EXPECT_EQ(bits(0xabcd, 4, 4), 0xcu);
    EXPECT_EQ(bits(0xabcd, 8, 8), 0xabu);
    EXPECT_EQ(bits(0xffffffffffffffffULL, 32, 32), 0xffffffffu);
}

TEST(Bits, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ULL << 40));
    EXPECT_FALSE(isPowerOf2((1ULL << 40) + 1));
}

TEST(Bits, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1ULL << 48), 48u);
}

TEST(Bits, Alignment)
{
    EXPECT_EQ(alignDown(100, 32), 96u);
    EXPECT_EQ(alignDown(96, 32), 96u);
    EXPECT_EQ(alignUp(100, 32), 128u);
    EXPECT_EQ(alignUp(96, 32), 96u);
    EXPECT_EQ(alignDown(0x12345, 0x1000), 0x12000u);
}

TEST(Bits, Mix64Decorrelates)
{
    // Consecutive inputs must land far apart and never collide over a
    // modest range.
    std::uint64_t prev = mix64(0);
    for (std::uint64_t i = 1; i < 1000; ++i) {
        const std::uint64_t m = mix64(i);
        EXPECT_NE(m, prev);
        prev = m;
    }
}

TEST(Bits, Mix64IsDeterministic)
{
    EXPECT_EQ(mix64(0x1234), mix64(0x1234));
    EXPECT_NE(mix64(0x1234), mix64(0x1235));
}

TEST(Bits, FoldXorWidth)
{
    for (unsigned w = 1; w <= 32; ++w) {
        const std::uint64_t f = foldXor(0xdeadbeefcafebabeULL, w);
        EXPECT_LE(f, mask(w)) << "width " << w;
    }
}

TEST(Bits, FoldXorKnownValues)
{
    // Folding to 64 bits is the identity.
    EXPECT_EQ(foldXor(0x1234, 64), 0x1234u);
    // 8-bit fold of two bytes is their XOR.
    EXPECT_EQ(foldXor(0xab00 | 0xcd, 8), (0xabu ^ 0xcdu));
}

} // namespace
} // namespace fdip
