/** @file Tests for the Chrome trace-event backend. */

#include "obs/trace_events.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/core.h"
#include "obs/obs_config.h"
#include "prefetch/factory.h"
#include "sim/experiment.h"
#include "sim/parallel.h"

namespace fdip
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

bool
havePython()
{
    return std::system("python3 -c 'pass' >/dev/null 2>&1") == 0;
}

/** json.loads round-trip; callers skip when python3 is unavailable. */
bool
pythonValidatesJson(const std::string &path)
{
    const std::string cmd =
        "python3 -c 'import json,sys; json.load(open(sys.argv[1]))' \"" +
        path + "\" >/dev/null 2>&1";
    return std::system(cmd.c_str()) == 0;
}

Trace
tinyTrace(std::size_t insts = 20000)
{
    WorkloadSpec s = serverSpec("trc", 77);
    s.numFunctions = 64;
    auto wl = std::make_shared<Workload>(buildWorkload(s));
    return generateTrace(wl, insts);
}

TEST(TraceWriter, EmitsWellFormedDocument)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/writer.json";
    {
        TraceWriter w(path);
        ASSERT_TRUE(w.ok());
        w.threadName(kTraceTidFetch, "fetch");
        w.instant("pfc_fire", "pfc", kTraceTidFetch, 100,
                  {{"pc", 0x400100}, {"target", 0x400200}});
        w.asyncBegin("demand_fill", "mem", 0x1234, 150, {{"line", 0x40}});
        w.asyncEnd("demand_fill", "mem", 0x1234, 180);
        w.counter("ftq", 200, "occupancy", 17);
        // 4 lane-name metadata events from the constructor + 5 here.
        EXPECT_EQ(w.eventsWritten(), 9u);
    } // Destructor finishes the document.

    const std::string body = slurp(path);
    EXPECT_EQ(body.find("{\"displayTimeUnit\""), 0u);
    EXPECT_NE(body.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(body.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(body.find("\"ph\": \"b\""), std::string::npos);
    EXPECT_NE(body.find("\"ph\": \"e\""), std::string::npos);
    EXPECT_NE(body.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(body.find("\"name\": \"pfc_fire\""), std::string::npos);

    if (havePython()) {
        EXPECT_TRUE(pythonValidatesJson(path)) << path;
    }
    std::remove(path.c_str());
}

TEST(TraceWriter, BadPathReportsNotOk)
{
    TraceWriter w("/nonexistent/dir/trace.json");
    EXPECT_FALSE(w.ok());
    // Events are swallowed, not a crash.
    w.instant("x", "y", kTraceTidFetch, 0);
    EXPECT_EQ(w.eventsWritten(), 0u);
}

TEST(Tracing, FullRunProducesParseableTrace)
{
    if (!kTracingCompiledIn)
        GTEST_SKIP() << "built with FDIP_TRACING=OFF";
    const std::string path =
        std::string(::testing::TempDir()) + "/run_trace.json";

    SuiteEntry e;
    e.name = "trc";
    e.trace = tinyTrace();
    CoreConfig cfg = paperBaselineConfig();
    cfg.applyHistoryScheme();
    cfg.obs.tracePath = path;
    cfg.obs.traceExactPath = true;
    const RunResult run = runOne(
        cfg, e, [](const Trace &) { return makePrefetcher("nl1"); },
        /*warmup_fraction=*/0.1);
    EXPECT_GT(run.stats.committedInsts, 0u);

    const std::string body = slurp(path);
    // The frontend's life shows up: FTQ flow, flushes, fills.
    EXPECT_NE(body.find("ftq_enqueue"), std::string::npos);
    EXPECT_NE(body.find("ftq_dequeue"), std::string::npos);
    EXPECT_NE(body.find("pipeline_flush"), std::string::npos);
    EXPECT_NE(body.find("demand_fill"), std::string::npos);
    EXPECT_NE(body.find("prefetch_issue"), std::string::npos);

    if (!havePython())
        GTEST_SKIP() << "python3 unavailable; structural checks only";
    EXPECT_TRUE(pythonValidatesJson(path)) << path;
    std::remove(path.c_str());
}

TEST(Tracing, OnVersusOffIsBitIdenticalUnderParallelRuns)
{
    // The acceptance bar for the whole observability layer: attaching
    // a tracer (and heartbeats) to every run of a jobs=8 campaign must
    // not move a single architectural counter.
    std::vector<SuiteEntry> suite;
    for (int i = 0; i < 4; ++i) {
        SuiteEntry e;
        e.name = "trc-" + std::to_string(i);
        e.trace = tinyTrace(15000 + 1000 * static_cast<std::size_t>(i));
        suite.push_back(std::move(e));
    }

    CoreConfig plain = paperBaselineConfig();
    const SuiteResult off = runSuiteParallel(
        "off", plain, suite,
        [](const Trace &) { return makePrefetcher("nl1"); },
        /*warmup_fraction=*/0.1, /*jobs=*/8);

    CoreConfig traced = paperBaselineConfig();
    traced.obs.tracePath =
        std::string(::testing::TempDir()) + "/campaign.json";
    traced.obs.heartbeatInterval = 1000;
    const SuiteResult on = runSuiteParallel(
        "on", traced, suite,
        [](const Trace &) { return makePrefetcher("nl1"); },
        /*warmup_fraction=*/0.1, /*jobs=*/8);

    ASSERT_EQ(off.runs.size(), on.runs.size());
    for (std::size_t i = 0; i < off.runs.size(); ++i) {
        EXPECT_TRUE(
            off.runs[i].stats.architecturallyEqual(on.runs[i].stats))
            << "tracing/heartbeat perturbed run " << off.runs[i].workload;
        if (kTracingCompiledIn) {
            // Each run got its own woven trace file.
            const std::string path = tracePathForRun(
                [&] {
                    ObsConfig o = traced.obs;
                    o.traceLabel = "on";
                    return o;
                }(),
                on.runs[i].workload);
            std::FILE *f = std::fopen(path.c_str(), "r");
            EXPECT_NE(f, nullptr) << path;
            if (f != nullptr)
                std::fclose(f);
            std::remove(path.c_str());
        }
    }
    EXPECT_DOUBLE_EQ(off.geomeanIpc(), on.geomeanIpc());
}

} // namespace
} // namespace fdip
