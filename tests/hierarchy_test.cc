/** @file Tests for the memory hierarchy latency model. */

#include "cache/hierarchy.h"

#include <gtest/gtest.h>

namespace fdip
{
namespace
{

MemoryConfig
cfg()
{
    return MemoryConfig{};
}

TEST(Hierarchy, ColdInstFetchGoesToDram)
{
    MemoryHierarchy m(cfg());
    const FillResult r = m.fetchInstLine(0x10000, 100);
    EXPECT_EQ(r.level, HitLevel::kDram);
    EXPECT_GE(r.ready, 100 + cfg().dramLatency);
    EXPECT_EQ(m.dramAccesses(), 1u);
}

TEST(Hierarchy, RefetchHitsL2)
{
    MemoryHierarchy m(cfg());
    m.fetchInstLine(0x10000, 0);
    const FillResult r = m.fetchInstLine(0x10000, 100000);
    EXPECT_EQ(r.level, HitLevel::kL2);
    EXPECT_EQ(r.ready, 100000 + cfg().l2Latency);
}

TEST(Hierarchy, LatencyOrdering)
{
    const MemoryConfig c = cfg();
    EXPECT_LT(c.l1dLatency, c.l2Latency);
    EXPECT_LT(c.l2Latency, c.llcLatency);
    EXPECT_LT(c.llcLatency, c.dramLatency);
}

TEST(Hierarchy, InFlightInstFillsMerge)
{
    MemoryHierarchy m(cfg());
    const FillResult a = m.fetchInstLine(0x10000, 0);
    const FillResult b = m.fetchInstLine(0x10000, 5);
    EXPECT_EQ(b.ready, a.ready) << "second request must merge";
    EXPECT_EQ(m.instRequestsMerged(), 1u);
    EXPECT_EQ(m.dramAccesses(), 1u);
}

TEST(Hierarchy, DistinctLinesDoNotMerge)
{
    MemoryHierarchy m(cfg());
    m.fetchInstLine(0x10000, 0);
    m.fetchInstLine(0x20000, 0);
    EXPECT_EQ(m.instRequestsMerged(), 0u);
    EXPECT_EQ(m.dramAccesses(), 2u);
}

TEST(Hierarchy, DramBandwidthSerializes)
{
    MemoryHierarchy m(cfg());
    Cycle prev = 0;
    for (int i = 0; i < 8; ++i) {
        const FillResult r =
            m.fetchInstLine(0x100000 + i * 0x1000, 0);
        EXPECT_GE(r.ready, prev) << "DRAM channel must serialize";
        if (i > 0) {
            EXPECT_GE(r.ready, prev + cfg().dramOccupancy);
        }
        prev = r.ready;
    }
}

TEST(Hierarchy, DataAccessHitsL1dAfterFill)
{
    MemoryHierarchy m(cfg());
    const FillResult miss = m.dataAccess(0x5000, 0, false);
    EXPECT_GT(miss.ready, cfg().l1dLatency);
    // After the fill completes, the line is an L1D hit.
    const FillResult hit = m.dataAccess(0x5000, miss.ready + 1, false);
    EXPECT_EQ(hit.level, HitLevel::kL1);
    EXPECT_EQ(hit.ready, miss.ready + 1 + cfg().l1dLatency);
}

TEST(Hierarchy, StoresDoNotAllocateL1d)
{
    MemoryHierarchy m(cfg());
    m.dataAccess(0x6000, 0, true);
    EXPECT_FALSE(m.l1d().contains(0x6000));
}

TEST(Hierarchy, InstFillsWarmL2AndLlc)
{
    MemoryHierarchy m(cfg());
    m.fetchInstLine(0x7000, 0);
    EXPECT_TRUE(m.l2().contains(0x7000));
    EXPECT_TRUE(m.llc().contains(0x7000));
}

TEST(Hierarchy, L2EvictionFallsBackToLlc)
{
    MemoryConfig c = cfg();
    c.l2.sizeBytes = 4 * 1024; // Tiny L2 to force eviction.
    c.l2.ways = 2;
    MemoryHierarchy m(c);
    // Touch enough lines to roll the tiny L2 over.
    for (Addr a = 0; a < 64 * 1024; a += kCacheLineBytes)
        m.fetchInstLine(0x100000 + a, 0);
    // An early line is gone from L2 but still in the 2MB LLC.
    const FillResult r = m.fetchInstLine(0x100000, 1000000);
    EXPECT_EQ(r.level, HitLevel::kLlc);
}

TEST(Hierarchy, ResetStats)
{
    MemoryHierarchy m(cfg());
    m.fetchInstLine(0x1000, 0);
    m.resetStats();
    EXPECT_EQ(m.instRequests(), 0u);
    EXPECT_EQ(m.dramAccesses(), 0u);
}

} // namespace
} // namespace fdip
