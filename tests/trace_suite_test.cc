/** @file Tests for the standard workload suite builder. */

#include "trace/suite.h"

#include <set>

#include <gtest/gtest.h>

namespace fdip
{
namespace
{

TEST(Suite, SmallSuiteHasOnePerClass)
{
    const auto suite = buildStandardSuite(20000, /*small=*/true);
    ASSERT_EQ(suite.size(), 3u);
    EXPECT_EQ(suite[0].name, "srv-a");
    EXPECT_EQ(suite[1].name, "clt-a");
    EXPECT_EQ(suite[2].name, "spec-a");
}

TEST(Suite, FullSuiteHasThreePerClass)
{
    const auto suite = buildStandardSuite(20000, /*small=*/false);
    ASSERT_EQ(suite.size(), 9u);
    std::set<std::string> names;
    unsigned srv = 0;
    unsigned clt = 0;
    unsigned spec = 0;
    for (const auto &e : suite) {
        names.insert(e.name);
        if (e.name.rfind("srv", 0) == 0)
            ++srv;
        if (e.name.rfind("clt", 0) == 0)
            ++clt;
        if (e.name.rfind("spec", 0) == 0)
            ++spec;
    }
    EXPECT_EQ(names.size(), 9u) << "names must be distinct";
    EXPECT_EQ(srv, 3u);
    EXPECT_EQ(clt, 3u);
    EXPECT_EQ(spec, 3u);
}

TEST(Suite, TracesHaveRequestedLength)
{
    const auto suite = buildStandardSuite(12345, true);
    for (const auto &e : suite)
        EXPECT_EQ(e.trace.size(), 12345u) << e.name;
}

TEST(Suite, SuiteIsDeterministic)
{
    const auto a = buildStandardSuite(15000, true);
    const auto b = buildStandardSuite(15000, true);
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].trace.size(), b[i].trace.size());
        for (std::size_t j = 0; j < a[i].trace.size(); j += 997) {
            EXPECT_EQ(a[i].trace.insts[j].staticIndex,
                      b[i].trace.insts[j].staticIndex);
        }
    }
}

TEST(Suite, WorkloadsPressureTheL1I)
{
    // The paper's selection rule needs instruction footprints beyond
    // the 32KB L1I; check the static image at minimum.
    const auto suite = buildStandardSuite(20000, true);
    for (const auto &e : suite) {
        EXPECT_GT(e.trace.image().footprintBytes(), 64u * 1024)
            << e.name;
    }
}

} // namespace
} // namespace fdip
