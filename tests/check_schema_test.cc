/** @file Storage-schema contract tests: every storage-bearing
 *  structure's storageBits() must equal its StorageSchema sum, the
 *  named-config budget reports must carry exact schemas on every item,
 *  and the L1-BTB filter must be budgeted on its own line. */

#include "check/budget.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "bpu/bpu.h"
#include "bpu/gshare.h"
#include "bpu/loop_predictor.h"
#include "bpu/perceptron.h"
#include "cache/cache.h"
#include "core/core_config.h"
#include "core/ftq.h"

namespace fdip
{
namespace
{

// ---------------------------------------------------------------------
// storageBits() == storageSchema().totalBits() for every structure.
// A schema that disagrees with the accounted total would mean the
// certificate lies about the simulator.
// ---------------------------------------------------------------------

TEST(Schema, TageMatchesAllSizedVariants)
{
    for (unsigned kb : {9u, 18u, 36u}) {
        BranchHistory hist(HistoryPolicy::kDirectionHistory);
        const Tage tage(TageConfig::sized(kb), hist);
        const StorageSchema schema = tage.storageSchema();
        EXPECT_EQ(tage.storageBits(), schema.totalBits()) << kb;
        EXPECT_EQ(tage.storageBits(),
                  tageStorageBits(TageConfig::sized(kb)))
            << kb;
        EXPECT_EQ(schema.structure(), "TAGE");
    }
}

TEST(Schema, IttageMatches)
{
    BranchHistory hist(HistoryPolicy::kDirectionHistory);
    const Ittage ittage(IttageConfig{}, hist);
    EXPECT_EQ(ittage.storageBits(), ittage.storageSchema().totalBits());
    EXPECT_EQ(ittage.storageBits(), ittageStorageBits(IttageConfig{}));
}

TEST(Schema, BtbMatchesAndFieldsSumToSevenBytesPerEntry)
{
    const Btb btb(BtbConfig{});
    const StorageSchema schema = btb.storageSchema();
    EXPECT_EQ(btb.storageBits(), schema.totalBits());
    // The per-entry decomposition must reconstruct the nominal 7 B.
    std::uint64_t entry_bits = 0;
    for (const auto &f : schema.fields())
        entry_bits += f.widthBits;
    EXPECT_EQ(entry_bits, 7u * 8);
    // The L1 filter reuses the same schema under its own name.
    EXPECT_EQ(btb.storageSchema("L1-BTB").structure(), "L1-BTB");
}

TEST(Schema, RasMatchesAtSeveralDepths)
{
    for (unsigned depth : {12u, 32u}) {
        const Ras ras(depth);
        EXPECT_EQ(ras.storageBits(), ras.storageSchema().totalBits())
            << depth;
    }
}

TEST(Schema, HistoryFoldsMatchRegisteredWidths)
{
    // A Bpu registers the TAGE + ITTAGE folded views on its history;
    // the schema must sum exactly those widths (satellite: no more
    // longest-fold approximation).
    const Bpu bpu(paperBaselineConfig().bpu);
    const BranchHistory &hist = bpu.history();
    EXPECT_EQ(hist.storageBits(), hist.storageSchema().totalBits());
    // Baseline: 12 TAGE tables x (10b idx + 10b tag + 9b tag2) +
    // 6 ITTAGE tables x (9b idx + 9b tag + 8b tag2).
    EXPECT_EQ(hist.storageBits(), 12u * (10 + 10 + 9) + 6u * (9 + 9 + 8));
}

TEST(Schema, AlternateDirectionPredictorsMatch)
{
    const Gshare gshare;
    EXPECT_EQ(gshare.storageBits(), gshare.storageSchema().totalBits());
    const Perceptron perceptron;
    EXPECT_EQ(perceptron.storageBits(),
              perceptron.storageSchema().totalBits());
    const LoopPredictor loop{LoopPredictorConfig{}};
    EXPECT_EQ(loop.storageBits(), loop.storageSchema().totalBits());
}

TEST(Schema, FtqMatchesTableIii)
{
    const Ftq ftq(24);
    EXPECT_EQ(ftq.storageBits(), ftq.storageSchema().totalBits());
    EXPECT_EQ(ftq.storageBits(), ftqArchStorageBits(24));
}

TEST(Schema, CacheChargesReplacementState)
{
    CacheConfig lru{"L1I", 32 * 1024, 8, 64, ReplacementPolicy::kLru};
    EXPECT_EQ(Cache::storageBitsFor(lru),
              Cache::storageSchemaFor(lru).totalBits());

    CacheConfig rnd = lru;
    rnd.replacement = ReplacementPolicy::kRandom;
    const StorageSchema schema = Cache::storageSchemaFor(rnd);
    EXPECT_EQ(Cache::storageBitsFor(rnd), schema.totalBits());
    // Random replacement charges the 64-bit victim LFSR instead of
    // per-line LRU ranks.
    const auto &fields = schema.fields();
    EXPECT_TRUE(std::any_of(fields.begin(), fields.end(),
                            [](const SchemaField &f) {
                                return f.field == "victim_lfsr";
                            }));
    EXPECT_EQ(Cache::storageBitsFor(rnd),
              Cache::storageBitsFor(lru) - 512u * 3 + 64);
}

TEST(Schema, DecodeQueueAndItlbHelpersMatchTheirConstexprSums)
{
    EXPECT_EQ(decodeQueueStorageSchema(64).totalBits(),
              decodeQueueStorageBits(64));
    EXPECT_EQ(itlbStorageSchema(64).totalBits(), itlbStorageBits(64));
}

// ---------------------------------------------------------------------
// Budget reports: exact schemas everywhere, L1-BTB on its own line.
// ---------------------------------------------------------------------

TEST(Schema, EveryReportItemIsExact)
{
    for (const CoreConfig &cfg :
         {paperBaselineConfig(), noFdpConfig(), twoLevelBtbConfig()}) {
        const BudgetReport r = coreStorageReport(cfg);
        EXPECT_TRUE(r.ok());
        ASSERT_FALSE(r.items().empty());
        for (const BudgetItem &item : r.items()) {
            EXPECT_TRUE(item.exact()) << item.name;
            EXPECT_EQ(item.bits, item.schema.totalBits()) << item.name;
        }
    }
}

TEST(Schema, ReportCoversFrontendQueuesAndTranslation)
{
    const BudgetReport r = coreStorageReport(paperBaselineConfig());
    auto has = [&](const std::string &name) {
        return std::any_of(r.items().begin(), r.items().end(),
                           [&](const BudgetItem &i) {
                               return i.name == name;
                           });
    };
    EXPECT_TRUE(has("decode queue"));
    EXPECT_TRUE(has("ITLB"));
    EXPECT_TRUE(has("TAGE"));
    EXPECT_TRUE(has("ITTAGE"));
    EXPECT_TRUE(has("history"));
}

TEST(Schema, TwoLevelBtbChargesTheFilterSeparately)
{
    const BudgetReport r = coreStorageReport(twoLevelBtbConfig());
    const auto &items = r.items();
    const auto l1 = std::find_if(
        items.begin(), items.end(),
        [](const BudgetItem &i) { return i.name == "L1-BTB"; });
    ASSERT_NE(l1, items.end());
    EXPECT_EQ(l1->limitBits, kPaperL1BtbFilterBudgetBits);
    EXPECT_EQ(l1->bits, kPaperL1BtbFilterBudgetBits);
    EXPECT_TRUE(l1->exact());
}

TEST(Schema, OversizedL1FilterViolatesItsOwnBudgetLine)
{
    CoreConfig cfg = twoLevelBtbConfig();
    cfg.bpu.btbHierarchy.l1Entries = 4096; // 4x the 1K budget.
    const BudgetReport r = coreStorageReport(cfg);
    EXPECT_FALSE(r.ok());
    const auto v = r.violations();
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], "L1-BTB");
}

} // namespace
} // namespace fdip
