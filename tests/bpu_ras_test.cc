/** @file Tests for the return address stack. */

#include "bpu/ras.h"

#include <gtest/gtest.h>

namespace fdip
{
namespace
{

TEST(Ras, PushPopLifo)
{
    Ras ras(8);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, TopDoesNotPop)
{
    Ras ras(8);
    ras.push(0x100);
    EXPECT_EQ(ras.top(), 0x100u);
    EXPECT_EQ(ras.top(), 0x100u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, OverflowWrapsAndCorrupts)
{
    // A depth-4 RAS pushed 5 deep loses the oldest entry (realistic).
    Ras ras(4);
    for (Addr a = 1; a <= 5; ++a)
        ras.push(a * 0x100);
    EXPECT_EQ(ras.pop(), 0x500u);
    EXPECT_EQ(ras.pop(), 0x400u);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    // The oldest was overwritten by 0x500's slot wrap.
    EXPECT_NE(ras.pop(), 0x100u);
}

TEST(Ras, SnapshotRestoreRecoversTop)
{
    Ras ras(8);
    ras.push(0x100);
    ras.push(0x200);
    const RasSnapshot snap = ras.snapshot();
    ras.push(0x300);
    ras.pop();
    ras.pop(); // Speculative damage to the top.
    ras.restore(snap);
    EXPECT_EQ(ras.top(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, SnapshotAfterPushMatchesRealPush)
{
    Ras a(8);
    Ras b(8);
    a.push(0x100);
    b.push(0x100);
    const RasSnapshot predicted = a.snapshotAfterPush(0x200);
    b.push(0x200);
    const RasSnapshot actual = b.snapshot();
    EXPECT_EQ(predicted.topIndex, actual.topIndex);
    EXPECT_EQ(predicted.topValue, actual.topValue);
}

TEST(Ras, SnapshotAfterPopMatchesRealPop)
{
    Ras a(8);
    Ras b(8);
    for (Addr v : {0x100, 0x200, 0x300}) {
        a.push(v);
        b.push(v);
    }
    const RasSnapshot predicted = a.snapshotAfterPop();
    b.pop();
    const RasSnapshot actual = b.snapshot();
    EXPECT_EQ(predicted.topIndex, actual.topIndex);
    EXPECT_EQ(predicted.topValue, actual.topValue);
}

TEST(Ras, DeepCallChain)
{
    Ras ras(32);
    for (Addr d = 0; d < 20; ++d)
        ras.push(0x1000 + d * 4);
    for (Addr d = 20; d-- > 0;)
        EXPECT_EQ(ras.pop(), 0x1000 + d * 4);
}

TEST(Ras, DepthAccessor)
{
    Ras ras(16);
    EXPECT_EQ(ras.depth(), 16u);
}

} // namespace
} // namespace fdip
