/**
 * @file
 * Golden determinism tests for the parallel experiment engine: for any
 * worker count, per-run SimStats must be bit-identical to the serial
 * harness and results must come back in suite order. This is the
 * serial-equivalence test the determinism policy (docs/ANALYSIS.md)
 * requires of every experiment engine.
 */

#include "sim/parallel.h"

#include <cstdlib>
#include <stdexcept>

#include <gtest/gtest.h>

#include "prefetch/factory.h"

namespace fdip
{
namespace
{

std::vector<SuiteEntry>
tinySuite(std::size_t workloads = 3, std::size_t insts = 40000)
{
    std::vector<SuiteEntry> suite;
    for (std::size_t i = 0; i < workloads; ++i) {
        WorkloadSpec s = specCpuSpec("tiny", 9001 + i);
        s.numFunctions = 48;
        auto wl = std::make_shared<Workload>(buildWorkload(s));
        SuiteEntry e;
        e.name = "tiny-" + std::to_string(9001 + i);
        e.trace = generateTrace(wl, insts);
        suite.push_back(std::move(e));
    }
    return suite;
}

/** Asserts @p par is run-for-run bit-identical to @p serial. */
void
expectBitIdentical(const SuiteResult &serial, const SuiteResult &par)
{
    ASSERT_EQ(serial.runs.size(), par.runs.size());
    for (std::size_t i = 0; i < serial.runs.size(); ++i) {
        EXPECT_EQ(serial.runs[i].workload, par.runs[i].workload);
        EXPECT_TRUE(serial.runs[i].stats.architecturallyEqual(
            par.runs[i].stats))
            << "stats diverged on run " << i << " ("
            << serial.runs[i].workload << ")";
    }
    EXPECT_DOUBLE_EQ(serial.geomeanIpc(), par.geomeanIpc());
    EXPECT_DOUBLE_EQ(serial.meanMpki(), par.meanMpki());
}

TEST(Parallel, GoldenBitIdenticalToSerialAcrossConfigs)
{
    const auto suite = tinySuite();

    CoreConfig ghr2 = paperBaselineConfig();
    ghr2.historyScheme = HistoryScheme::kGhr2;

    const CoreConfig configs[] = {paperBaselineConfig(), noFdpConfig(),
                                  ghr2};
    for (const CoreConfig &cfg : configs) {
        const SuiteResult serial =
            runSuite("golden", cfg, suite, noPrefetcher());
        for (unsigned jobs : {1u, 2u, 8u}) {
            const SuiteResult par = runSuiteParallel(
                "golden", cfg, suite, noPrefetcher(), 0.2, jobs);
            EXPECT_EQ(par.label, "golden");
            expectBitIdentical(serial, par);
        }
    }
}

TEST(Parallel, GoldenBitIdenticalWithStatefulPrefetcher)
{
    const auto suite = tinySuite(2);
    const PrefetcherFactory eip = [](const Trace &) {
        return makePrefetcher("eip-27");
    };
    const SuiteResult serial =
        runSuite("eip", paperBaselineConfig(), suite, eip);
    for (unsigned jobs : {1u, 2u, 8u}) {
        expectBitIdentical(serial,
                           runSuiteParallel("eip", paperBaselineConfig(),
                                            suite, eip, 0.2, jobs));
    }
}

TEST(Parallel, GoldenBitIdenticalOnStandardSyntheticSuite)
{
    const auto suite = buildStandardSuite(20000, /*small=*/true);
    const SuiteResult serial =
        runSuite("std", paperBaselineConfig(), suite, noPrefetcher());
    expectBitIdentical(serial,
                       runSuiteParallel("std", paperBaselineConfig(),
                                        suite, noPrefetcher(), 0.2, 2));
}

TEST(Parallel, ResultsComeBackInSuiteOrder)
{
    const auto suite = tinySuite(5, 15000);
    const SuiteResult par = runSuiteParallel(
        "order", paperBaselineConfig(), suite, noPrefetcher(), 0.2, 8);
    ASSERT_EQ(par.runs.size(), suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(par.runs[i].workload, suite[i].name);
}

TEST(Parallel, EmptySuiteReturnsEmptyResult)
{
    const std::vector<SuiteEntry> empty;
    for (unsigned jobs : {1u, 8u}) {
        const SuiteResult par = runSuiteParallel(
            "empty", paperBaselineConfig(), empty, noPrefetcher(), 0.2,
            jobs);
        EXPECT_EQ(par.label, "empty");
        EXPECT_TRUE(par.runs.empty());
    }
}

TEST(Parallel, MoreJobsThanWorkStillExact)
{
    const auto suite = tinySuite(2, 15000);
    const SuiteResult serial =
        runSuite("tiny", paperBaselineConfig(), suite, noPrefetcher());
    expectBitIdentical(serial,
                       runSuiteParallel("tiny", paperBaselineConfig(),
                                        suite, noPrefetcher(), 0.2, 8));
}

TEST(Parallel, CampaignMatchesPerConfigSerialRuns)
{
    const auto suite = tinySuite(2, 20000);

    CoreConfig ghr3 = paperBaselineConfig();
    ghr3.historyScheme = HistoryScheme::kGhr3;

    Campaign c(suite);
    const std::size_t a = c.add("fdp", paperBaselineConfig(),
                                noPrefetcher());
    const std::size_t b = c.add("nofdp", noFdpConfig(), noPrefetcher());
    const std::size_t d = c.add("ghr3", ghr3, noPrefetcher());
    ASSERT_EQ(c.size(), 3u);

    const auto results = c.run(4);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[a].label, "fdp");
    EXPECT_EQ(results[b].label, "nofdp");
    EXPECT_EQ(results[d].label, "ghr3");

    expectBitIdentical(
        runSuite("fdp", paperBaselineConfig(), suite, noPrefetcher()),
        results[a]);
    expectBitIdentical(
        runSuite("nofdp", noFdpConfig(), suite, noPrefetcher()),
        results[b]);
    expectBitIdentical(runSuite("ghr3", ghr3, suite, noPrefetcher()),
                       results[d]);
}

TEST(Parallel, CampaignHonorsFdipJobsEnv)
{
    const auto suite = tinySuite(2, 15000);
    Campaign c(suite);
    c.add("fdp", paperBaselineConfig(), noPrefetcher());

    ::setenv("FDIP_JOBS", "2", 1);
    const auto par = c.run(/*jobs=*/0);
    ::unsetenv("FDIP_JOBS");

    expectBitIdentical(
        runSuite("fdp", paperBaselineConfig(), suite, noPrefetcher()),
        par[0]);
}

TEST(Parallel, WorkerExceptionPropagatesToCaller)
{
    const auto suite = tinySuite(3, 15000);
    const PrefetcherFactory boom =
        [](const Trace &) -> std::unique_ptr<InstPrefetcher> {
        throw std::runtime_error("boom");
    };
    for (unsigned jobs : {1u, 4u}) {
        EXPECT_THROW(runSuiteParallel("boom", paperBaselineConfig(),
                                      suite, boom, 0.2, jobs),
                     std::runtime_error);
    }
}

TEST(Parallel, HostTelemetryIsFilledButExcludedFromEquality)
{
    const auto suite = tinySuite(1, 15000);
    const SuiteResult r = runSuiteParallel(
        "tel", paperBaselineConfig(), suite, noPrefetcher(), 0.2, 1);
    ASSERT_EQ(r.runs.size(), 1u);
    EXPECT_GT(r.runs[0].stats.hostWallSeconds, 0.0);
    EXPECT_GT(r.runs[0].stats.hostInstrsPerSecond(), 0.0);

    SimStats a = r.runs[0].stats;
    SimStats b = a;
    b.hostWallSeconds = a.hostWallSeconds * 2 + 1;
    EXPECT_TRUE(a.architecturallyEqual(b));
    b.committedInsts += 1;
    EXPECT_FALSE(a.architecturallyEqual(b));
}

} // namespace
} // namespace fdip
