/** @file Deterministic frontend-mechanism tests on micro-programs:
 *  PFC cases 1 and 2, GHR fixups, RAS recovery, divergence
 *  resolution, ITLB behaviour, and FTQ runahead. */

#include "core/core.h"

#include <gtest/gtest.h>

#include "prefetch/prefetcher.h"
#include "micro_program.h"

namespace fdip
{
namespace
{

using test::MicroProgram;

SimStats
runTrace(const Trace &trace, CoreConfig cfg)
{
    cfg.applyHistoryScheme();
    Core core(cfg, trace, std::make_unique<NullPrefetcher>());
    return core.run(0);
}

/**
 * A loop of straight-line code: `n` ALU slots then a backward jump.
 */
Trace
straightLineLoop(MicroProgram &mp, unsigned body, std::size_t n)
{
    const Addr top = mp.pcOfNext();
    for (unsigned i = 0; i < body; ++i)
        mp.alu();
    mp.jump(top);
    return mp.run(n);
}

TEST(Frontend, StraightLineLoopCommitsEverything)
{
    MicroProgram mp;
    const Trace t = straightLineLoop(mp, 63, 20000);
    const SimStats s = runTrace(t, paperBaselineConfig());
    EXPECT_EQ(s.committedInsts, 20000u);
    EXPECT_GT(s.ipc(), 1.0);
}

TEST(Frontend, TinyLoopFitsInICache)
{
    MicroProgram mp;
    const Trace t = straightLineLoop(mp, 63, 20000);
    const SimStats s = runTrace(t, paperBaselineConfig());
    // 64 insts = 256B = 4 lines: after the cold misses, no more.
    EXPECT_LE(s.missFullyExposed + s.missPartiallyExposed +
                  s.missCovered,
              20u);
}

TEST(Frontend, BackwardJumpLearnsViaBtb)
{
    MicroProgram mp;
    const Trace t = straightLineLoop(mp, 30, 20000);
    const SimStats s = runTrace(t, paperBaselineConfig());
    // The single jump mispredicts only while the BTB is cold.
    EXPECT_LE(s.mispredicts, 3u);
}

TEST(Frontend, PfcCaseOne_UncondJumpBtbMiss)
{
    // Many distinct always-taken jumps cycling through a BTB far too
    // small to hold them: every encounter is a BTB-miss unconditional
    // branch — exactly PFC case 1.
    MicroProgram mp;
    const unsigned kJumps = 600;
    // Layout: jump j at slot 8*j jumps to slot 8*(j+1); last wraps.
    for (unsigned j = 0; j < kJumps; ++j) {
        for (int a = 0; a < 7; ++a)
            mp.alu();
        // Non-sequential target: falling through must be WRONG so a
        // BTB miss visibly diverges the stream.
        const Addr next_block =
            mp.workload().image.baseAddr() +
            ((j + 7) % kJumps) * 8 * kInstBytes;
        mp.jump(next_block);
    }
    const Trace t = mp.run(60000);

    CoreConfig on = paperBaselineConfig();
    on.bpu.btb.numEntries = 256; // Way below 600 jumps.
    CoreConfig off = on;
    off.pfcEnabled = false;

    const SimStats s_on = runTrace(t, on);
    const SimStats s_off = runTrace(t, off);

    EXPECT_GT(s_on.pfcFires, 1000u);
    EXPECT_GT(s_on.pfcCorrect, 1000u);
    EXPECT_EQ(s_on.pfcWrong, 0u) << "uncond PFC cannot misfire";
    EXPECT_LT(s_on.mispredicts, s_off.mispredicts / 2)
        << "PFC must convert most BTB-miss flushes";
    EXPECT_GT(s_on.ipc(), s_off.ipc());
}

TEST(Frontend, PfcCaseTwo_CondBtbMissTaken)
{
    // Distinct always-taken conditionals, BTB too small: once TAGE
    // learns taken, pre-decode re-steers (case 2).
    MicroProgram mp;
    const unsigned kBranches = 600;
    for (unsigned j = 0; j < kBranches; ++j) {
        for (int a = 0; a < 7; ++a)
            mp.alu();
        // Non-sequential target so BTB misses visibly diverge.
        const Addr next_block =
            mp.workload().image.baseAddr() +
            ((j + 7) % kBranches) * 8 * kInstBytes;
        mp.cond(next_block);
    }
    const Trace t = mp.run(
        80000, [](std::uint32_t, std::uint64_t) { return true; });

    CoreConfig on = paperBaselineConfig();
    on.bpu.btb.numEntries = 256;
    CoreConfig off = on;
    off.pfcEnabled = false;

    const SimStats s_on = runTrace(t, on);
    const SimStats s_off = runTrace(t, off);
    EXPECT_GT(s_on.pfcFires, 500u);
    EXPECT_LT(s_on.mispredicts, s_off.mispredicts)
        << "case-2 PFC must help always-taken BTB-miss conditionals";
}

TEST(Frontend, PfcDisabledForConditionalsWhenUncondOnly)
{
    MicroProgram mp;
    const unsigned kBranches = 600;
    for (unsigned j = 0; j < kBranches; ++j) {
        for (int a = 0; a < 7; ++a)
            mp.alu();
        // Non-sequential target so BTB misses visibly diverge.
        const Addr next_block =
            mp.workload().image.baseAddr() +
            ((j + 7) % kBranches) * 8 * kInstBytes;
        mp.cond(next_block);
    }
    const Trace t = mp.run(
        40000, [](std::uint32_t, std::uint64_t) { return true; });

    CoreConfig cfg = paperBaselineConfig();
    cfg.bpu.btb.numEntries = 256;
    cfg.pfcUnconditionalOnly = true;
    const SimStats s = runTrace(t, cfg);
    EXPECT_EQ(s.pfcFires, 0u)
        << "no unconditional branches here, so restricted PFC is idle";
}

TEST(Frontend, NeverTakenBranchesNeedNoPfc)
{
    // Never-taken conditionals stay out of the BTB (taken-only
    // allocation) and must not trigger PFC under an accurate TAGE.
    MicroProgram mp;
    const Addr top = mp.pcOfNext();
    for (int a = 0; a < 10; ++a)
        mp.alu();
    mp.cond(mp.workload().image.baseAddr()); // Never taken.
    for (int a = 0; a < 4; ++a)
        mp.alu();
    mp.jump(top);
    const Trace t = mp.run(
        30000, [](std::uint32_t, std::uint64_t) { return false; });

    const SimStats s = runTrace(t, paperBaselineConfig());
    EXPECT_LE(s.pfcWrong, 2u);
    EXPECT_LE(s.mispredicts, 4u);
}

TEST(Frontend, GhrFixupFiresForBtbMissNotTaken)
{
    // GHR2: never-taken branch is never allocated -> a fixup flush on
    // (nearly) every visit. GHR3 allocates it at the first fixup, so
    // only a handful of fixups happen.
    MicroProgram mp;
    const Addr top = mp.pcOfNext();
    for (int a = 0; a < 10; ++a)
        mp.alu();
    mp.cond(mp.workload().image.baseAddr());
    for (int a = 0; a < 4; ++a)
        mp.alu();
    mp.jump(top);
    const Trace t = mp.run(
        16000, [](std::uint32_t, std::uint64_t) { return false; });

    CoreConfig ghr2 = paperBaselineConfig();
    ghr2.historyScheme = HistoryScheme::kGhr2;
    ghr2.pfcEnabled = false;
    CoreConfig ghr3 = ghr2;
    ghr3.historyScheme = HistoryScheme::kGhr3;
    CoreConfig thr = ghr2;
    thr.historyScheme = HistoryScheme::kThr;

    const SimStats s2 = runTrace(t, ghr2);
    const SimStats s3 = runTrace(t, ghr3);
    const SimStats st = runTrace(t, thr);

    EXPECT_GT(s2.ghrFixups, 500u) << "GHR2 pays a flush per visit";
    EXPECT_LT(s3.ghrFixups, 20u) << "GHR3 allocates and stops flushing";
    EXPECT_EQ(st.ghrFixups, 0u) << "THR needs no fixups";
    EXPECT_GT(st.ipc(), s2.ipc());
}

TEST(Frontend, CallReturnPredictedByRas)
{
    // main loop calls one function; returns must be RAS-predicted.
    MicroProgram mp;
    // Function body at a known location after main.
    const Addr main_top = mp.pcOfNext();
    for (int a = 0; a < 6; ++a)
        mp.alu();
    const std::uint32_t call_idx = mp.call(0); // Patched below.
    mp.alu();
    mp.jump(main_top);
    // Callee.
    const Addr callee = mp.pcOfNext();
    for (int a = 0; a < 10; ++a)
        mp.alu();
    mp.ret();
    mp.workload().image.instMutable(call_idx).target = callee;

    const Trace t = mp.run(30000);
    const SimStats s = runTrace(t, paperBaselineConfig());
    EXPECT_LE(s.mispredictsTarget, 3u)
        << "returns must be predicted from the RAS after warmup";
    EXPECT_GT(s.returns, 1000u);
}

TEST(Frontend, BiasedBranchResolvesAtExecute)
{
    // A taken-1-in-8 branch in a loop: mispredictions happen; each is
    // resolved and the core recovers (commit count is exact).
    MicroProgram mp;
    const Addr top = mp.pcOfNext();
    for (int a = 0; a < 6; ++a)
        mp.alu();
    const std::uint32_t br = mp.cond(0); // Patched to skip 4 ALUs.
    for (int a = 0; a < 4; ++a)
        mp.alu();
    const Addr join = mp.pcOfNext();
    for (int a = 0; a < 4; ++a)
        mp.alu();
    mp.jump(top);
    mp.workload().image.instMutable(br).target = join;

    const Trace t = mp.run(40000, [](std::uint32_t, std::uint64_t v) {
        return v % 8 == 7;
    });
    const SimStats s = runTrace(t, paperBaselineConfig());
    EXPECT_EQ(s.committedInsts, 40000u);
    EXPECT_GT(s.mispredicts, 10u);
    EXPECT_GT(s.wrongPathDelivered, 100u);
}

TEST(Frontend, IndirectCallPredictedByIttage)
{
    // An indirect call alternating between two targets in a fixed
    // period-2 pattern: ITTAGE must learn it.
    MicroProgram mp;
    const Addr main_top = mp.pcOfNext();
    for (int a = 0; a < 6; ++a)
        mp.alu();
    const std::uint32_t icall = mp.indirectCall({});
    mp.alu();
    mp.jump(main_top);
    const Addr f1 = mp.pcOfNext();
    for (int a = 0; a < 6; ++a)
        mp.alu();
    mp.ret();
    const Addr f2 = mp.pcOfNext();
    for (int a = 0; a < 6; ++a)
        mp.alu();
    mp.ret();
    mp.workload().indirectTargets[icall] = {f1, f2};

    const Trace t = mp.run(
        40000, nullptr,
        [&](std::uint32_t, std::uint64_t v) { return v % 2 ? f2 : f1; });
    const SimStats s = runTrace(t, paperBaselineConfig());
    const double target_mpki =
        1000.0 * static_cast<double>(s.mispredictsTarget) /
        static_cast<double>(s.committedInsts);
    EXPECT_LT(target_mpki, 2.0);
}

TEST(Frontend, ItlbMissesOnLargeStrides)
{
    // Jump chain spanning many 4KB pages: the 64-entry ITLB must miss.
    MicroProgram mp;
    const unsigned kPages = 200;
    for (unsigned p = 0; p < kPages; ++p) {
        // 1024 insts per page; jump at the first slot of each page to
        // the next page's start.
        const Addr next = mp.workload().image.baseAddr() +
                          ((p + 1) % kPages) * 4096;
        mp.jump(next);
        for (int a = 0; a < 1023; ++a)
            mp.alu();
    }
    const Trace t = mp.run(30000);
    const SimStats s = runTrace(t, paperBaselineConfig());
    EXPECT_GT(s.itlbMisses, 20u);
}

TEST(Frontend, FtqDepthEnablesRunahead)
{
    // Code footprint >> L1I: deeper FTQ must reduce starvation.
    MicroProgram mp;
    const unsigned kBlocks = 4096; // 128KB of straight-line code.
    for (unsigned b = 0; b < kBlocks - 1; ++b) {
        for (int a = 0; a < 8; ++a)
            mp.alu();
    }
    for (int a = 0; a < 7; ++a)
        mp.alu();
    mp.jump(mp.workload().image.baseAddr());
    const Trace t = mp.run(60000);

    CoreConfig shallow = paperBaselineConfig();
    shallow.ftqEntries = 2;
    CoreConfig deep = paperBaselineConfig();
    deep.ftqEntries = 24;
    const SimStats s_shallow = runTrace(t, shallow);
    const SimStats s_deep = runTrace(t, deep);
    EXPECT_GT(s_deep.ipc(), s_shallow.ipc() * 1.2);
    EXPECT_LT(s_deep.starvationCycles, s_shallow.starvationCycles);
}

TEST(Frontend, PerfectICacheNeverMisses)
{
    MicroProgram mp;
    const Trace t = straightLineLoop(mp, 200, 20000);
    CoreConfig cfg = paperBaselineConfig();
    cfg.perfectICache = true;
    const SimStats s = runTrace(t, cfg);
    EXPECT_EQ(s.l1iDemandMisses, 0u);
}

} // namespace
} // namespace fdip
