/** @file Tests for the loop termination predictor. */

#include "bpu/loop_predictor.h"

#include <gtest/gtest.h>

namespace fdip
{
namespace
{

/** Runs @p reps loop instances of trip count @p trip through training,
 *  returning final-iteration mispredictions after warmup. */
int
runLoop(LoopPredictor &lp, Addr pc, unsigned trip, unsigned reps,
        unsigned warm_reps)
{
    int wrong = 0;
    for (unsigned r = 0; r < reps; ++r) {
        for (unsigned i = 0; i < trip; ++i) {
            const bool taken = i + 1 < trip;
            const LoopPrediction p = lp.predict(pc);
            if (r >= warm_reps && p.valid && p.taken != taken)
                ++wrong;
            lp.update(pc, taken);
        }
    }
    return wrong;
}

TEST(LoopPredictor, ColdIsInvalid)
{
    LoopPredictor lp((LoopPredictorConfig()));
    EXPECT_FALSE(lp.predict(0x1000).valid);
}

TEST(LoopPredictor, LearnsFixedTripCount)
{
    LoopPredictor lp((LoopPredictorConfig()));
    const int wrong = runLoop(lp, 0x1000, 10, 50, 6);
    EXPECT_EQ(wrong, 0);
    // After warmup the predictor must be confident.
    EXPECT_TRUE(lp.predict(0x1000).valid);
}

TEST(LoopPredictor, PredictsExitIteration)
{
    LoopPredictor lp((LoopPredictorConfig()));
    runLoop(lp, 0x1000, 5, 10, 10);
    // Fresh loop entry: predictions go T,T,T,T,NT.
    for (unsigned i = 0; i < 5; ++i) {
        const LoopPrediction p = lp.predict(0x1000);
        ASSERT_TRUE(p.valid);
        EXPECT_EQ(p.taken, i + 1 < 5) << "iteration " << i;
        lp.update(0x1000, i + 1 < 5);
    }
}

TEST(LoopPredictor, ChangingTripDropsConfidence)
{
    LoopPredictor lp((LoopPredictorConfig()));
    runLoop(lp, 0x1000, 8, 10, 10);
    ASSERT_TRUE(lp.predict(0x1000).valid);
    // Switch to trip 3: confidence must fall, then recover.
    runLoop(lp, 0x1000, 3, 1, 1);
    EXPECT_FALSE(lp.predict(0x1000).valid);
    runLoop(lp, 0x1000, 3, 10, 10);
    EXPECT_TRUE(lp.predict(0x1000).valid);
}

TEST(LoopPredictor, DoesNotAllocateOnTakenOnly)
{
    LoopPredictor lp((LoopPredictorConfig()));
    for (int i = 0; i < 100; ++i)
        lp.update(0x2000, true); // Never exits: not a finite loop.
    EXPECT_FALSE(lp.predict(0x2000).valid);
}

TEST(LoopPredictor, IndependentLoops)
{
    LoopPredictor lp((LoopPredictorConfig()));
    EXPECT_EQ(runLoop(lp, 0x1000, 4, 30, 8), 0);
    EXPECT_EQ(runLoop(lp, 0x3000, 9, 30, 8), 0);
    // Both remain learned.
    EXPECT_TRUE(lp.predict(0x1000).valid);
    EXPECT_TRUE(lp.predict(0x3000).valid);
}

TEST(LoopPredictor, StorageIsSmall)
{
    LoopPredictor lp((LoopPredictorConfig()));
    EXPECT_LT(lp.storageBits() / 8, 8u * 1024);
}

/** Trip-count sweep. */
class LoopTrips : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LoopTrips, LearnsEachTrip)
{
    LoopPredictor lp((LoopPredictorConfig()));
    EXPECT_EQ(runLoop(lp, 0x4000, GetParam(), 40, 8), 0)
        << "trip " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Trips, LoopTrips,
                         ::testing::Values(2, 3, 5, 17, 63, 200));

} // namespace
} // namespace fdip
