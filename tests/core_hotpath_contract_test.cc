/** @file Compile-time pins for the hot-path contract.
 *
 *  Two properties of the tick-path surface are load-bearing for
 *  steady-state throughput and are cheap to lose in a refactor:
 *
 *   1. Devirtualization: every concrete prefetcher is `final`, so the
 *      compiler may devirtualize the per-tick dispatch through
 *      InstPrefetcher once the concrete type is visible.
 *   2. The exception contract: hot functions are noexcept exactly when
 *      invariant checks are compiled out (FDIP_HOT_NOEXCEPT). With
 *      checks on, FDIP_CHECK throws InvariantViolation for tests to
 *      catch; with checks off (-DFDIP_CHECKS=OFF, the perf build) the
 *      same functions promise not to throw, which lets the compiler
 *      drop unwind paths from the tick loop.
 *
 *  static_asserts fail the BUILD, not a test run, so these cannot rot
 *  silently in a lab that only reads green checkmarks. The asserts
 *  are written against !kInvariantChecksEnabled so the same TU pins
 *  the contract under both build flavors.
 */

#include <gtest/gtest.h>

#include <type_traits>
#include <utility>

#include "cache/cache.h"
#include "cache/hierarchy.h"
#include "core/backend.h"
#include "core/core.h"
#include "core/frontend.h"
#include "core/ftq.h"
#include "prefetch/djolt.h"
#include "prefetch/eip.h"
#include "prefetch/fnl_mma.h"
#include "prefetch/next_line.h"
#include "prefetch/prefetcher.h"
#include "prefetch/rdip.h"
#include "prefetch/sn4l_dis.h"
#include "util/hotpath.h"

namespace fdip
{
namespace
{

// ---- 1. Devirtualization: concrete prefetchers are final. ----------

static_assert(std::is_final_v<NullPrefetcher>);
static_assert(std::is_final_v<NextLinePrefetcher>);
static_assert(std::is_final_v<DjoltPrefetcher>);
static_assert(std::is_final_v<EipPrefetcher>);
static_assert(std::is_final_v<FnlMmaPrefetcher>);
static_assert(std::is_final_v<RdipPrefetcher>);
static_assert(std::is_final_v<Sn4lDisPrefetcher>);

// The base stays polymorphic with a virtual destructor (factory
// ownership is through unique_ptr<InstPrefetcher>).
static_assert(std::has_virtual_destructor_v<InstPrefetcher>);
static_assert(!std::is_final_v<InstPrefetcher>);

// ---- 2. The exception contract. ------------------------------------

/** True exactly when hot functions promise noexcept (perf build). */
constexpr bool kHotNoexcept = !kInvariantChecksEnabled;

/** An lvalue of T for unevaluated contexts. Declared (never defined)
 *  and marked noexcept so the helper call cannot poison the
 *  noexcept() query it appears in. */
template <typename T> T &lv() noexcept;

// The queue side of the prefetcher API is unconditionally noexcept:
// it is a fixed ring with no checks in it at all.
static_assert(noexcept(lv<InstPrefetcher>().popPrefetch()));
static_assert(noexcept(
    std::as_const(lv<InstPrefetcher>()).pendingPrefetches()));

// Ftq: the FTQ surface the frontend touches every cycle.
static_assert(noexcept(lv<Ftq>().popHead()) == kHotNoexcept);
static_assert(noexcept(lv<Ftq>().at(0)) == kHotNoexcept);
static_assert(noexcept(lv<Ftq>().head()) == kHotNoexcept);
static_assert(noexcept(lv<Ftq>().truncateAfter(0)) == kHotNoexcept);
static_assert(noexcept(lv<Ftq>().push(std::declval<FtqEntry &&>())) ==
              kHotNoexcept);

// Cache: every per-cycle tag-array operation.
static_assert(noexcept(lv<Cache>().probe(0)) == kHotNoexcept);
static_assert(noexcept(lv<Cache>().access(0)) == kHotNoexcept);
static_assert(noexcept(lv<Cache>().touch(0)) == kHotNoexcept);
static_assert(noexcept(lv<Cache>().fill(0, nullptr)) == kHotNoexcept);
static_assert(noexcept(std::as_const(lv<Cache>()).contains(0)) ==
              kHotNoexcept);
static_assert(noexcept(lv<Cache>().invalidate(0)) == kHotNoexcept);
static_assert(noexcept(std::as_const(lv<Cache>()).lineOf(0)) ==
              kHotNoexcept);

// Memory hierarchy: the below-L1 walk.
static_assert(noexcept(lv<MemoryHierarchy>().fetchInstLine(0, 0)) ==
              kHotNoexcept);
static_assert(noexcept(lv<MemoryHierarchy>().dataAccess(0, 0, false)) ==
              kHotNoexcept);

// Core tick surface.
static_assert(noexcept(lv<Frontend>().tick(0)) == kHotNoexcept);
static_assert(noexcept(lv<Backend>().tick(0)) == kHotNoexcept);
static_assert(noexcept(std::as_const(lv<Backend>()).decodeQueueSpace())
              == kHotNoexcept);
static_assert(noexcept(lv<Backend>().flushYoungerThan(0)) ==
              kHotNoexcept);

// Prefetcher virtual surface: the base declares the contract; every
// override inherits the obligation (the compiler rejects a
// less-noexcept override, which is the point).
static_assert(noexcept(lv<InstPrefetcher>().onBranch(
                  0, InstClass::kAlu, 0, false)) == kHotNoexcept);
static_assert(noexcept(lv<InstPrefetcher>().onDemandLookup(
                  0, false, 0)) == kHotNoexcept);
static_assert(noexcept(lv<InstPrefetcher>().onFillComplete(
                  0, false, 0)) == kHotNoexcept);

// The macro itself: FDIP_HOT_NOEXCEPT must track the check flag, not
// a hard-coded true/false someone "simplified".
struct Probe
{
    void f() FDIP_HOT_NOEXCEPT {}
};
static_assert(noexcept(lv<Probe>().f()) == kHotNoexcept);

/** The contract above is entirely compile-time; this test exists so
 *  the binary reports a green line (and ctest has something to run). */
TEST(CoreHotpathContract, CompileTimePinsHold)
{
    SUCCEED();
}

} // namespace
} // namespace fdip
