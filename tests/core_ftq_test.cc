/** @file Tests for the FTQ and its Table III storage accounting. */

#include "core/ftq.h"

#include <gtest/gtest.h>

namespace fdip
{
namespace
{

TEST(FtqEntry, TableIIIFieldWidths)
{
    // 48b start address + 1b predicted-taken + 3b termination offset +
    // 3b I-cache way + 2b state + 8b direction hints = 65 bits.
    EXPECT_EQ(FtqEntry::kArchBitsPerEntry, 65u);
}

TEST(Ftq, PaperStorageIs195Bytes)
{
    // The paper's headline: a 24-entry FTQ costs 195 bytes (Table III).
    Ftq ftq(24);
    EXPECT_EQ(ftq.archStorageBytes(), 195u);
}

TEST(Ftq, TwoEntryVariantStorage)
{
    Ftq ftq(2);
    EXPECT_EQ(ftq.archStorageBytes(), (2u * 65 + 7) / 8);
}

TEST(FtqEntry, BlockGeometry)
{
    FtqEntry e;
    e.startAddr = 0x1008; // Offset 2 within the 32B block at 0x1000.
    EXPECT_EQ(e.blockBase(), 0x1000u);
    EXPECT_EQ(e.startOffset(), 2u);
    EXPECT_EQ(e.pcAt(5), 0x1014u);
    EXPECT_EQ(FtqEntry::offsetOf(0x101c), 7u);
}

TEST(FtqEntry, NumInstsFromOffsets)
{
    FtqEntry e;
    e.startAddr = 0x1008;
    e.termOffset = 6; // Fig. 5's example: start 2, end 6.
    EXPECT_EQ(e.numInsts(), 5u);
}

TEST(FtqEntry, DirectionHints)
{
    FtqEntry e;
    e.dirHints = 0b01000100;
    EXPECT_TRUE(e.hintAt(2));
    EXPECT_TRUE(e.hintAt(6));
    EXPECT_FALSE(e.hintAt(0));
    EXPECT_FALSE(e.hintAt(7));
}

TEST(Ftq, FifoAndTruncate)
{
    Ftq ftq(4);
    for (int i = 0; i < 3; ++i) {
        FtqEntry e;
        e.seq = static_cast<std::uint64_t>(i);
        ftq.push(std::move(e));
    }
    EXPECT_EQ(ftq.size(), 3u);
    EXPECT_EQ(ftq.head().seq, 0u);
    ftq.truncateAfter(1);
    EXPECT_EQ(ftq.size(), 1u);
    EXPECT_EQ(ftq.head().seq, 0u);
    ftq.popHead();
    EXPECT_TRUE(ftq.empty());
}

TEST(Ftq, StateEnumMatchesPaperEncoding)
{
    // Paper Section IV-A: 0 invalid, 1 predicted, 2 filling, 3 ready.
    EXPECT_EQ(static_cast<int>(FtqState::kInvalid), 0);
    EXPECT_EQ(static_cast<int>(FtqState::kPredicted), 1);
    EXPECT_EQ(static_cast<int>(FtqState::kFilling), 2);
    EXPECT_EQ(static_cast<int>(FtqState::kReady), 3);
}

/** FTQ size sweep used by Fig. 14. */
class FtqSizes : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FtqSizes, CapacityIsRespected)
{
    Ftq ftq(GetParam());
    for (unsigned i = 0; i < GetParam(); ++i) {
        EXPECT_FALSE(ftq.full());
        FtqEntry e;
        ftq.push(std::move(e));
    }
    EXPECT_TRUE(ftq.full());
}

INSTANTIATE_TEST_SUITE_P(Sweep, FtqSizes,
                         ::testing::Values(2, 4, 8, 12, 16, 24, 32));

} // namespace
} // namespace fdip
