/**
 * @file
 * Simulator-wide determinism tests: running the same (config, trace)
 * twice back-to-back in one process must produce bit-identical
 * SimStats. Any hidden global or static mutable state in predictors,
 * prefetchers, caches, or the trace machinery shows up here as a
 * first-run/second-run divergence — before parallel execution can
 * amplify it into a heisenbug.
 */

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/core.h"
#include "prefetch/factory.h"
#include "sim/experiment.h"

namespace fdip
{
namespace
{

Trace
tinyTrace(std::uint64_t seed = 4242, std::size_t insts = 30000)
{
    WorkloadSpec s = serverSpec("det", seed);
    s.numFunctions = 64;
    auto wl = std::make_shared<Workload>(buildWorkload(s));
    return generateTrace(wl, insts);
}

SimStats
runOnce(const CoreConfig &cfg, const Trace &trace,
        const std::string &prefetcher)
{
    Core core(cfg, trace, makePrefetcher(prefetcher));
    return core.run(/*warmup_insts=*/5000);
}

/** Runs (cfg, trace, prefetcher) twice and asserts identical stats. */
void
expectRepeatable(CoreConfig cfg, const Trace &trace,
                 const std::string &prefetcher, const char *what)
{
    cfg.applyHistoryScheme();
    const SimStats first = runOnce(cfg, trace, prefetcher);
    const SimStats second = runOnce(cfg, trace, prefetcher);
    EXPECT_GT(first.committedInsts, 0u) << what;
    EXPECT_TRUE(first.architecturallyEqual(second))
        << "back-to-back runs diverged for " << what
        << " — hidden global/static state reachable from Core::run";
}

TEST(Determinism, BaselineConfigsRepeatExactly)
{
    const Trace trace = tinyTrace();
    expectRepeatable(paperBaselineConfig(), trace, "none", "FDP baseline");
    expectRepeatable(noFdpConfig(), trace, "none", "no-FDP baseline");
}

TEST(Determinism, HistorySchemesRepeatExactly)
{
    const Trace trace = tinyTrace();
    for (HistoryScheme s :
         {HistoryScheme::kThr, HistoryScheme::kGhr0, HistoryScheme::kGhr1,
          HistoryScheme::kGhr2, HistoryScheme::kGhr3,
          HistoryScheme::kIdeal}) {
        CoreConfig cfg = paperBaselineConfig();
        cfg.historyScheme = s;
        expectRepeatable(cfg, trace, "none", historySchemeName(s));
    }
}

TEST(Determinism, EveryPrefetcherRepeatsExactly)
{
    const Trace trace = tinyTrace();
    for (const char *pf : {"none", "nl1", "fnl+mma", "d-jolt", "eip-27",
                           "eip-128", "rdip", "sn4l+dis", "sn4l+dis+btb"}) {
        expectRepeatable(paperBaselineConfig(), trace, pf, pf);
    }
}

TEST(Determinism, PerfectModesRepeatExactly)
{
    const Trace trace = tinyTrace();
    {
        CoreConfig cfg = paperBaselineConfig();
        cfg.perfectPrefetch = true;
        expectRepeatable(cfg, trace, "none", "perfect prefetch");
    }
    {
        CoreConfig cfg = paperBaselineConfig();
        cfg.bpu.perfectBtb = true;
        expectRepeatable(cfg, trace, "none", "perfect BTB");
    }
    {
        CoreConfig cfg = paperBaselineConfig();
        cfg.perfectICache = true;
        expectRepeatable(cfg, trace, "none", "perfect I-cache");
    }
    {
        CoreConfig cfg = paperBaselineConfig();
        cfg.usePrefetchBuffer = true;
        expectRepeatable(cfg, trace, "nl1", "prefetch buffer");
    }
}

/** The host tick-phase profiler reads the wall clock, so determinism
 *  rests entirely on it never feeding simulated state: profiling on
 *  (any interval) vs. off must be architecturally bit-identical, and
 *  a profiled run must actually have sampled (the comparison is not
 *  vacuous). */
TEST(Determinism, ProfilerOnVsOffIsArchitecturallyInvisible)
{
    const Trace trace = tinyTrace();
    for (const char *pf : {"none", "eip-27", "sn4l+dis+btb"}) {
        CoreConfig off = paperBaselineConfig();
        off.applyHistoryScheme();
        Core core_off(off, trace, makePrefetcher(pf));
        const SimStats s_off = core_off.run(/*warmup_insts=*/5000);

        CoreConfig on = off;
        on.obs.profileInterval = 7; // Odd, to hit varied tick phases.
        Core core_on(on, trace, makePrefetcher(pf));
        const SimStats s_on = core_on.run(/*warmup_insts=*/5000);

        EXPECT_GT(core_on.hostProfile().sampledTicks, 0u)
            << pf << ": profiler never sampled — comparison is vacuous";
        EXPECT_TRUE(s_off.architecturallyEqual(s_on))
            << pf << ": host profiling changed architectural results";
        EXPECT_EQ(core_off.hostProfile().sampledTicks, 0u)
            << pf << ": disabled profiler sampled anyway";
    }
}

TEST(Determinism, TraceIsNotMutatedByARun)
{
    const Trace trace = tinyTrace(777, 20000);
    const std::vector<DynInst> before = trace.insts;
    (void)runOnce(paperBaselineConfig(), trace, "eip-27");
    ASSERT_EQ(before.size(), trace.insts.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
        ASSERT_EQ(before[i].staticIndex, trace.insts[i].staticIndex)
            << "trace mutated at dynamic instruction " << i;
    }
}

TEST(Determinism, RunSuiteTwiceIsBitIdentical)
{
    std::vector<SuiteEntry> suite;
    SuiteEntry e;
    e.name = "det";
    e.trace = tinyTrace(31337, 25000);
    suite.push_back(std::move(e));

    const SuiteResult a =
        runSuite("x", paperBaselineConfig(), suite, noPrefetcher());
    const SuiteResult b =
        runSuite("x", paperBaselineConfig(), suite, noPrefetcher());
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i)
        EXPECT_TRUE(a.runs[i].stats.architecturallyEqual(b.runs[i].stats));
    EXPECT_DOUBLE_EQ(a.geomeanIpc(), b.geomeanIpc());
}

TEST(Determinism, TraceGenerationRepeatsExactly)
{
    const Trace a = tinyTrace(555, 15000);
    const Trace b = tinyTrace(555, 15000);
    ASSERT_EQ(a.insts.size(), b.insts.size());
    for (std::size_t i = 0; i < a.insts.size(); ++i)
        ASSERT_EQ(a.insts[i].staticIndex, b.insts[i].staticIndex);
}

} // namespace
} // namespace fdip
