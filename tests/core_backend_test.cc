/** @file Tests for the backend interval model. */

#include "core/backend.h"

#include <gtest/gtest.h>

namespace fdip
{
namespace
{

struct BackendHarness
{
    CoreConfig cfg;
    SimStats stats;
    MemoryHierarchy mem{MemoryConfig{}};
    Backend backend;

    BackendHarness() : backend(makeCfg(), mem, stats) {}

    const CoreConfig &
    makeCfg()
    {
        cfg.decodeQueueEntries = 16;
        cfg.robEntries = 32;
        cfg.commitWidth = 4;
        cfg.fetchBandwidth = 4;
        cfg.decodeLatency = 2;
        cfg.branchResolveLatency = 6;
        return cfg;
    }

    DeliveredInst
    inst(std::uint64_t seq, Cycle deliver, InstClass cls = InstClass::kAlu)
    {
        DeliveredInst d;
        d.seq = seq;
        d.deliverCycle = deliver;
        d.cls = cls;
        d.onCorrectPath = true;
        d.traceIdx = seq;
        return d;
    }

    void
    runTo(Cycle end)
    {
        for (Cycle c = 0; c <= end; ++c)
            backend.tick(c);
    }
};

TEST(Backend, CommitsAfterDecodeLatency)
{
    BackendHarness h;
    h.backend.deliver(h.inst(0, 0));
    h.backend.tick(0);
    h.backend.tick(1);
    EXPECT_EQ(h.backend.committed(), 0u);
    h.backend.tick(2); // Decode latency 2: dispatch at 2.
    h.backend.tick(3); // Exec latency 1: done at 3.
    EXPECT_EQ(h.backend.committed(), 1u);
}

TEST(Backend, CommitWidthLimits)
{
    BackendHarness h;
    for (std::uint64_t i = 0; i < 12; ++i)
        h.backend.deliver(h.inst(i, 0));
    h.runTo(20);
    EXPECT_EQ(h.backend.committed(), 12u);
    // With width 4 and 12 insts, commits span >= 3 cycles: check the
    // count is not reached too early.
    BackendHarness h2;
    for (std::uint64_t i = 0; i < 12; ++i)
        h2.backend.deliver(h2.inst(i, 0));
    for (Cycle c = 0; c <= 3; ++c)
        h2.backend.tick(c);
    EXPECT_LT(h2.backend.committed(), 12u);
}

TEST(Backend, WrongPathInstsDoNotCommitCount)
{
    BackendHarness h;
    DeliveredInst wrong = h.inst(0, 0);
    wrong.onCorrectPath = false;
    h.backend.deliver(wrong);
    h.backend.deliver(h.inst(1, 0));
    h.runTo(10);
    EXPECT_EQ(h.backend.committed(), 1u);
}

TEST(Backend, BranchStatsCountedAtDispatch)
{
    BackendHarness h;
    DeliveredInst br = h.inst(0, 0, InstClass::kCondDirect);
    br.taken = true;
    h.backend.deliver(br);
    DeliveredInst ret = h.inst(1, 0, InstClass::kReturn);
    ret.taken = true; // Returns always redirect.
    h.backend.deliver(ret);
    h.runTo(10);
    EXPECT_EQ(h.stats.condBranches, 1u);
    EXPECT_EQ(h.stats.takenBranches, 2u); // Cond taken + return.
    EXPECT_EQ(h.stats.returns, 1u);
}

TEST(Backend, ResolveCallbackFiresAtExecLatency)
{
    BackendHarness h;
    Cycle resolved_at = 0;
    std::uint64_t resolved_token = 0;
    h.backend.setResolveCallback(
        [&](std::uint64_t token, std::uint64_t, Cycle now) {
            resolved_token = token;
            resolved_at = now;
        });
    DeliveredInst br = h.inst(0, 0, InstClass::kCondDirect);
    br.resolveToken = 77;
    h.backend.deliver(br);
    h.runTo(20);
    EXPECT_EQ(resolved_token, 77u);
    // Dispatch at decodeLatency (2), resolve 6 cycles later.
    EXPECT_EQ(resolved_at, 2u + 6u);
}

TEST(Backend, FlushDropsYoungerOnly)
{
    BackendHarness h;
    for (std::uint64_t i = 0; i < 8; ++i)
        h.backend.deliver(h.inst(i, 0));
    h.backend.flushYoungerThan(3);
    h.runTo(20);
    EXPECT_EQ(h.backend.committed(), 4u); // Seq 0..3 survive.
}

TEST(Backend, FlushCancelsPendingResolve)
{
    BackendHarness h;
    bool resolved = false;
    h.backend.setResolveCallback(
        [&](std::uint64_t, std::uint64_t, Cycle) { resolved = true; });
    DeliveredInst br = h.inst(5, 0, InstClass::kCondDirect);
    br.resolveToken = 9;
    h.backend.deliver(br);
    h.backend.tick(0);
    h.backend.tick(1);
    h.backend.tick(2); // Dispatched; resolve pending at 8.
    h.backend.flushYoungerThan(4);
    h.runTo(20);
    EXPECT_FALSE(resolved);
}

TEST(Backend, StarvationCountsWhenQueueShallow)
{
    BackendHarness h;
    h.runTo(9); // Empty queue: every cycle starves.
    EXPECT_EQ(h.stats.starvationCycles, 10u);
}

TEST(Backend, NoStarvationWhenQueueDeep)
{
    BackendHarness h;
    // Keep >= fetchBandwidth insts queued but undispatchable (future
    // deliver cycle gates decode).
    for (std::uint64_t i = 0; i < 8; ++i)
        h.backend.deliver(h.inst(i, 100));
    const std::uint64_t before = h.stats.starvationCycles;
    h.backend.tick(0);
    EXPECT_EQ(h.stats.starvationCycles, before);
}

TEST(Backend, DecodeQueueSpaceTracksDeliveries)
{
    BackendHarness h;
    EXPECT_EQ(h.backend.decodeQueueSpace(), 16u);
    h.backend.deliver(h.inst(0, 0));
    EXPECT_EQ(h.backend.decodeQueueSpace(), 15u);
}

TEST(Backend, LoadLatencyDelaysCommit)
{
    BackendHarness h;
    DeliveredInst load = h.inst(0, 0, InstClass::kLoad);
    load.memAddr = 0x100000; // Cold: DRAM-latency load.
    h.backend.deliver(load);
    h.runTo(20);
    EXPECT_EQ(h.backend.committed(), 0u) << "DRAM load cannot commit yet";
    h.runTo(400);
    EXPECT_EQ(h.backend.committed(), 1u);
}

} // namespace
} // namespace fdip
