/** @file Round-trip tests for trace serialization. */

#include "trace/trace_io.h"

#include <unistd.h>

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "trace/trace_gen.h"
#include "trace/workload.h"

namespace fdip
{
namespace
{

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceIo, RoundTripEmpty)
{
    const std::string path = tempPath("empty.fdiptrace");
    std::vector<DynInst> in;
    ASSERT_TRUE(writeTraceFile(path, in));
    std::vector<DynInst> out;
    ASSERT_TRUE(readTraceFile(path, out));
    EXPECT_TRUE(out.empty());
    std::remove(path.c_str());
}

TEST(TraceIo, RoundTripContent)
{
    const std::string path = tempPath("content.fdiptrace");
    WorkloadSpec s = specCpuSpec("io", 77);
    s.numFunctions = 40;
    auto wl = std::make_shared<Workload>(buildWorkload(s));
    const Trace t = generateTrace(wl, 10000);

    ASSERT_TRUE(writeTraceFile(path, t.insts));
    std::vector<DynInst> out;
    ASSERT_TRUE(readTraceFile(path, out));
    ASSERT_EQ(out.size(), t.insts.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i].staticIndex, t.insts[i].staticIndex);
        EXPECT_EQ(out[i].taken, t.insts[i].taken);
        EXPECT_EQ(out[i].info, t.insts[i].info);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsMissingFile)
{
    std::vector<DynInst> out;
    EXPECT_FALSE(readTraceFile("/nonexistent/path/x.trace", out));
}

TEST(TraceIo, RejectsBadMagic)
{
    const std::string path = tempPath("bad.fdiptrace");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char garbage[32] = "not a trace file at all";
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
    std::vector<DynInst> out;
    EXPECT_FALSE(readTraceFile(path, out));
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsTruncatedBody)
{
    const std::string path = tempPath("trunc.fdiptrace");
    std::vector<DynInst> in(100);
    ASSERT_TRUE(writeTraceFile(path, in));
    // Truncate the file body.
    ASSERT_EQ(truncate(path.c_str(), 16 + 50 * sizeof(DynInst)), 0);
    std::vector<DynInst> out;
    EXPECT_FALSE(readTraceFile(path, out));
    std::remove(path.c_str());
}

} // namespace
} // namespace fdip
