/** @file Randomized-configuration robustness suite: the core must
 *  finish any trace and satisfy basic invariants across the whole
 *  configuration space (fuzz-style property tests). */

#include "core/core.h"

#include <gtest/gtest.h>

#include "prefetch/factory.h"
#include "trace/suite.h"
#include "util/rng.h"

namespace fdip
{
namespace
{

const Trace &
fuzzTrace()
{
    static const Trace t = [] {
        WorkloadSpec s = serverSpec("fuzz", 777);
        s.numFunctions = 100;
        s.numRootFunctions = 12;
        auto wl = std::make_shared<Workload>(buildWorkload(s));
        return generateTrace(wl, 60000);
    }();
    return t;
}

/** Draws a random-but-valid configuration. */
CoreConfig
randomConfig(Rng &rng)
{
    CoreConfig cfg = paperBaselineConfig();
    const unsigned ftqs[] = {2, 3, 4, 8, 12, 24, 32};
    cfg.ftqEntries = ftqs[rng.below(std::size(ftqs))];
    const unsigned btbs[] = {512, 1024, 2048, 8192, 32768};
    cfg.bpu.btb.numEntries = btbs[rng.below(std::size(btbs))];
    cfg.predictBandwidth = 4 + static_cast<unsigned>(rng.below(20));
    cfg.maxTakenPerCycle = 1 + static_cast<unsigned>(rng.below(2));
    cfg.fetchBandwidth = 2 + static_cast<unsigned>(rng.below(8));
    cfg.btbLatency = 1 + static_cast<unsigned>(rng.below(4));
    cfg.l1iHitLatency = 1 + static_cast<unsigned>(rng.below(4));
    cfg.pfcEnabled = rng.below(2) == 0;
    cfg.pfcUnconditionalOnly = rng.below(2) == 0;
    cfg.perfectPrefetch = rng.below(8) == 0;
    cfg.perfectICache = rng.below(8) == 0;
    cfg.usePrefetchBuffer = rng.below(4) == 0;
    cfg.bpu.useLoopPredictor = rng.below(4) == 0;
    cfg.bpu.btbHierarchy.enabled = rng.below(4) == 0;
    cfg.bpu.perfectBtb = rng.below(8) == 0;
    cfg.bpu.perfectIndirect = rng.below(8) == 0;

    const HistoryScheme schemes[] = {
        HistoryScheme::kThr,  HistoryScheme::kGhr0,
        HistoryScheme::kGhr1, HistoryScheme::kGhr2,
        HistoryScheme::kGhr3, HistoryScheme::kIdeal,
    };
    cfg.historyScheme = schemes[rng.below(std::size(schemes))];

    const DirectionPredictorKind kinds[] = {
        DirectionPredictorKind::kTage,
        DirectionPredictorKind::kGshare,
        DirectionPredictorKind::kPerceptron,
        DirectionPredictorKind::kPerfect,
    };
    cfg.bpu.direction = kinds[rng.below(std::size(kinds))];
    cfg.applyHistoryScheme();
    return cfg;
}

const char *
randomPrefetcher(Rng &rng)
{
    static const char *names[] = {
        "none",   "nl1",     "fnl+mma",  "d-jolt",       "eip-27",
        "eip-128", "rdip",   "sn4l+dis", "sn4l+dis+btb",
    };
    return names[rng.below(std::size(names))];
}

class RandomConfig : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomConfig, FinishesWithInvariantsIntact)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    const CoreConfig cfg = randomConfig(rng);
    const char *pf = randomPrefetcher(rng);

    Core core(cfg, fuzzTrace(), makePrefetcher(pf));
    const SimStats s = core.run(fuzzTrace().size() / 10);

    // Every instruction commits exactly once.
    const std::uint64_t expected =
        fuzzTrace().size() - fuzzTrace().size() / 10;
    EXPECT_LE(s.committedInsts, expected);
    EXPECT_GE(s.committedInsts, expected - cfg.commitWidth);

    // Sanity ranges.
    EXPECT_GT(s.ipc(), 0.05);
    EXPECT_LT(s.ipc(), static_cast<double>(cfg.commitWidth));
    EXPECT_EQ(s.mispredicts,
              s.mispredictsCondDir + s.mispredictsBtbMissTaken +
                  s.mispredictsTarget + s.mispredictsPfcMisfire);
    if (cfg.bpu.direction == DirectionPredictorKind::kPerfect) {
        EXPECT_EQ(s.mispredictsCondDir, 0u);
    }
    if (cfg.bpu.perfectBtb) {
        EXPECT_EQ(s.mispredictsBtbMissTaken, 0u);
    }
    if (cfg.perfectICache) {
        EXPECT_EQ(s.l1iDemandMisses, 0u);
    }
    if (!cfg.pfcEnabled) {
        EXPECT_EQ(s.pfcFires, 0u);
    }
    if (!cfg.ghrFixup()) {
        EXPECT_EQ(s.ghrFixups, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Draws, RandomConfig, ::testing::Range(0, 24));

} // namespace
} // namespace fdip
