/** @file End-to-end tests of the optional extensions through the full
 *  core: two-level BTB, loop predictor, prefetch buffer, perceptron,
 *  and ChampSim-imported traces. */

#include "core/core.h"

#include <cstdio>
#include <gtest/gtest.h>

#include "prefetch/factory.h"
#include "trace/champsim.h"
#include "trace/suite.h"

namespace fdip
{
namespace
{

const Trace &
sharedTrace()
{
    static const Trace trace = [] {
        WorkloadSpec s = serverSpec("ext", 515);
        s.numFunctions = 120;
        auto wl = std::make_shared<Workload>(buildWorkload(s));
        return generateTrace(wl, 120000);
    }();
    return trace;
}

SimStats
run(CoreConfig cfg, const char *pf = "none",
    const Trace &trace = sharedTrace())
{
    cfg.applyHistoryScheme();
    Core core(cfg, trace, makePrefetcher(pf));
    return core.run(trace.size() / 5);
}

TEST(Extensions, TwoLevelBtbRunsAndStaysClose)
{
    CoreConfig two = paperBaselineConfig();
    two.bpu.btbHierarchy.enabled = true;
    two.bpu.btbHierarchy.l1Entries = 1024;
    const SimStats s2 = run(two);
    const SimStats s1 = run(paperBaselineConfig());
    // The L1 filter plus bubble must cost only a few percent.
    EXPECT_GT(s2.ipc(), s1.ipc() * 0.90);
    EXPECT_EQ(s2.committedInsts, s1.committedInsts);
}

TEST(Extensions, TwoLevelBtbBubbleHurtsWithTinyL1)
{
    CoreConfig tiny = paperBaselineConfig();
    tiny.bpu.btbHierarchy.enabled = true;
    tiny.bpu.btbHierarchy.l1Entries = 64; // Thrashes: many L2 bubbles.
    tiny.bpu.btbHierarchy.l2ExtraLatency = 4;
    const SimStats s_tiny = run(tiny);
    const SimStats s_flat = run(paperBaselineConfig());
    EXPECT_LT(s_tiny.ipc(), s_flat.ipc());
}

TEST(Extensions, LoopPredictorDoesNotRegress)
{
    CoreConfig with = paperBaselineConfig();
    with.bpu.useLoopPredictor = true;
    const SimStats s_with = run(with);
    const SimStats s_without = run(paperBaselineConfig());
    // Loop-heavy synthetic code: the override must not blow up MPKI.
    EXPECT_LT(s_with.branchMpki(), s_without.branchMpki() * 1.15);
    EXPECT_GT(s_with.ipc(), s_without.ipc() * 0.95);
}

TEST(Extensions, PrefetchBufferIsolatesPollution)
{
    CoreConfig direct = noFdpConfig();
    CoreConfig buffered = noFdpConfig();
    buffered.usePrefetchBuffer = true;
    const SimStats sd = run(direct, "eip-27");
    const SimStats sb = run(buffered, "eip-27");
    // Both complete and perform in the same ballpark.
    EXPECT_EQ(sd.committedInsts, sb.committedInsts);
    EXPECT_GT(sb.ipc(), sd.ipc() * 0.85);
    EXPECT_GT(sb.prefetchesIssued, 0u);
}

TEST(Extensions, PerceptronRunsEndToEnd)
{
    CoreConfig cfg = paperBaselineConfig();
    cfg.bpu.direction = DirectionPredictorKind::kPerceptron;
    const SimStats s = run(cfg);
    EXPECT_GT(s.ipc(), 0.3);
    // Perceptron should beat gshare on these correlated workloads.
    CoreConfig gshare = paperBaselineConfig();
    gshare.bpu.direction = DirectionPredictorKind::kGshare;
    const SimStats sg = run(gshare);
    EXPECT_LT(s.branchMpki(), sg.branchMpki() * 1.5);
}

TEST(Extensions, ChampSimImportedTraceRunsOnCore)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/core.champsim";
    ASSERT_TRUE(writeChampSimTrace(path, sharedTrace()));
    Trace imported;
    ASSERT_TRUE(readChampSimTrace(path, 0, imported));

    const SimStats native = run(paperBaselineConfig());
    const SimStats replay =
        run(paperBaselineConfig(), "none", imported);
    EXPECT_EQ(replay.committedInsts, native.committedInsts);
    // Renormalization shifts absolute numbers but not the ballpark.
    EXPECT_GT(replay.ipc(), native.ipc() * 0.6);
    EXPECT_LT(replay.ipc(), native.ipc() * 1.6);
    std::remove(path.c_str());
}

TEST(Extensions, CalibrationGuardrail)
{
    // The headline reproduction: FDP speedup over the no-FDP baseline
    // must stay in the paper's neighbourhood (41% +- a wide band) on
    // this reduced workload. Catches accidental recalibration.
    const SimStats base = run(noFdpConfig());
    const SimStats fdp = run(paperBaselineConfig());
    const double speedup = fdp.ipc() / base.ipc() - 1.0;
    EXPECT_GT(speedup, 0.55 * 0.41);
    EXPECT_LT(speedup, 2.2 * 0.41);
}

} // namespace
} // namespace fdip
