/** @file Tests for the two-level BTB hierarchy extension. */

#include "bpu/btb_hierarchy.h"

#include <gtest/gtest.h>

namespace fdip
{
namespace
{

struct Harness
{
    BtbConfig mainCfg;
    Btb main;
    BtbHierarchy hier;

    explicit Harness(BtbHierarchyConfig hcfg = defaultCfg())
        : mainCfg(makeMain()), main(mainCfg), hier(hcfg, main)
    {
    }

    static BtbConfig
    makeMain()
    {
        BtbConfig c;
        c.numEntries = 8192;
        return c;
    }

    static BtbHierarchyConfig
    defaultCfg()
    {
        BtbHierarchyConfig c;
        c.enabled = true;
        c.l1Entries = 64;
        return c;
    }
};

TEST(BtbHierarchy, MissEverywhere)
{
    Harness h;
    EXPECT_FALSE(h.hier.lookup(0x1000).has_value());
}

TEST(BtbHierarchy, InsertHitsL1First)
{
    Harness h;
    h.hier.install(0x1000, InstClass::kJumpDirect, 0x2000, true);
    const auto hit = h.hier.lookup(0x1000);
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(hit->fromL2) << "fresh insert must land in the L1";
    EXPECT_EQ(hit->hit.target, 0x2000u);
}

TEST(BtbHierarchy, L2HitPromotes)
{
    Harness h;
    // Fill the 64-entry L1 far beyond capacity so early entries fall
    // out of L1 but stay in the 8K main BTB.
    for (unsigned i = 0; i < 2000; ++i) {
        h.hier.install(0x10000 + i * 16, InstClass::kJumpDirect, 0x9000,
                      true);
    }
    const auto first = h.hier.lookup(0x10000);
    ASSERT_TRUE(first.has_value());
    EXPECT_TRUE(first->fromL2) << "must be an L2 hit after L1 eviction";
    // Promotion: the second lookup is an L1 hit.
    const auto second = h.hier.lookup(0x10000);
    ASSERT_TRUE(second.has_value());
    EXPECT_FALSE(second->fromL2);
    EXPECT_GE(h.hier.l2Promotions(), 1u);
}

TEST(BtbHierarchy, TakenOnlyPolicyOfMainApplies)
{
    Harness h;
    h.hier.install(0x1000, InstClass::kCondDirect, 0x2000, false);
    EXPECT_FALSE(h.hier.lookup(0x1000).has_value())
        << "main BTB allocates taken-only by default";
}

TEST(BtbHierarchy, StatsAccumulate)
{
    Harness h;
    h.hier.install(0x1000, InstClass::kJumpDirect, 0x2000, true);
    h.hier.lookup(0x1000);
    h.hier.lookup(0x1000);
    EXPECT_EQ(h.hier.l1Hits(), 2u);
}

} // namespace
} // namespace fdip
