/** @file Tests for the perceptron direction predictor. */

#include "bpu/perceptron.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fdip
{
namespace
{

int
trainAndCount(Perceptron &p, Addr pc,
              const std::function<bool(int)> &pattern, int n, int warm)
{
    int wrong = 0;
    for (int i = 0; i < n; ++i) {
        const bool taken = pattern(i);
        if (p.predict(pc) != taken && i >= warm)
            ++wrong;
        p.update(pc, taken);
    }
    return wrong;
}

TEST(Perceptron, LearnsBias)
{
    Perceptron p;
    EXPECT_LE(trainAndCount(
                  p, 0x1000, [](int) { return true; }, 500, 50),
              1);
}

TEST(Perceptron, LearnsAlternation)
{
    Perceptron p;
    EXPECT_LE(trainAndCount(
                  p, 0x1000, [](int i) { return i % 2 == 0; }, 2000,
                  500),
              30);
}

TEST(Perceptron, LearnsLinearHistoryFunction)
{
    // Outcome = history bit 3 (a linearly separable function: the
    // perceptron's sweet spot).
    Perceptron p;
    Rng rng(5);
    std::vector<bool> hist;
    int wrong = 0;
    int total = 0;
    for (int i = 0; i < 4000; ++i) {
        const bool taken =
            hist.size() >= 4 ? hist[hist.size() - 4] : false;
        if (i > 1000) {
            ++total;
            if (p.predict(0x2000) != taken)
                ++wrong;
        }
        p.update(0x2000, taken);
        // Interleave a random branch to churn history.
        const bool r = (rng.next() & 1) != 0;
        p.update(0x3000, r);
        hist.push_back(taken);
        hist.push_back(r);
    }
    EXPECT_LT(static_cast<double>(wrong) / total, 0.05);
}

TEST(Perceptron, StorageMatchesConfig)
{
    PerceptronConfig cfg;
    Perceptron p(cfg);
    // Per row: bias + one weight per history bit; plus the private
    // history register the predictor indexes with.
    EXPECT_EQ(p.storageBits(),
              (std::uint64_t{1} << cfg.logEntries) *
                      (cfg.historyBits + 1) * cfg.weightBits +
                  cfg.historyBits);
}

TEST(Perceptron, WeightsSaturate)
{
    // Overtraining one direction must not overflow weights (predict
    // still works afterwards).
    Perceptron p;
    for (int i = 0; i < 100000; ++i)
        p.update(0x1000, true);
    EXPECT_TRUE(p.predict(0x1000));
    for (int i = 0; i < 600; ++i)
        p.update(0x1000, false);
    EXPECT_FALSE(p.predict(0x1000));
}

} // namespace
} // namespace fdip
