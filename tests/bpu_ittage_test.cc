/** @file Behavioural tests for the ITTAGE indirect target predictor. */

#include "bpu/ittage.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fdip
{
namespace
{

struct IttageHarness
{
    BranchHistory hist{HistoryPolicy::kTargetHistory};
    Ittage itt;

    IttageHarness() : itt(IttageConfig(), hist) {}

    Addr
    step(Addr pc, Addr actual)
    {
        IttagePrediction meta;
        const Addr pred = itt.predict(pc, meta);
        itt.update(pc, actual, meta);
        hist.pushBranch(pc, actual, true);
        return pred;
    }
};

TEST(Ittage, ColdPredictsNothing)
{
    IttageHarness h;
    IttagePrediction meta;
    EXPECT_EQ(h.itt.predict(0x1000, meta), kNoAddr);
}

TEST(Ittage, LearnsMonomorphicTarget)
{
    IttageHarness h;
    int wrong = 0;
    for (int i = 0; i < 500; ++i) {
        if (h.step(0x1000, 0x8000) != 0x8000 && i > 5)
            ++wrong;
    }
    EXPECT_LE(wrong, 2);
}

TEST(Ittage, TracksTargetChange)
{
    IttageHarness h;
    for (int i = 0; i < 200; ++i)
        h.step(0x1000, 0x8000);
    int wrong = 0;
    for (int i = 0; i < 200; ++i) {
        if (h.step(0x1000, 0x9000) != 0x9000 && i > 20)
            ++wrong;
    }
    EXPECT_LT(wrong, 10);
}

TEST(Ittage, LearnsHistoryCorrelatedTargets)
{
    // The indirect target alternates with a preceding branch's path.
    IttageHarness h;
    Rng rng(3);
    int wrong = 0;
    int total = 0;
    for (int i = 0; i < 6000; ++i) {
        const bool which = (rng.next() & 1) != 0;
        // A taken branch whose target encodes 'which' enters history.
        h.hist.pushBranch(0x500, which ? 0x600 : 0x700, true);
        const Addr actual = which ? 0x8000 : 0x9000;
        const Addr pred = h.step(0x1000, actual);
        if (i > 2000) {
            ++total;
            if (pred != actual)
                ++wrong;
        }
    }
    EXPECT_LT(static_cast<double>(wrong) / total, 0.10);
}

TEST(Ittage, MultipleSitesIndependent)
{
    IttageHarness h;
    int wrong = 0;
    for (int i = 0; i < 1000; ++i) {
        if (h.step(0x1000, 0x8000) != 0x8000 && i > 50)
            ++wrong;
        if (h.step(0x2000, 0x9000) != 0x9000 && i > 50)
            ++wrong;
        if (h.step(0x3000, 0xa000) != 0xa000 && i > 50)
            ++wrong;
    }
    EXPECT_LT(wrong, 30);
}

TEST(Ittage, StorageAccounting)
{
    BranchHistory hist(HistoryPolicy::kTargetHistory);
    IttageConfig cfg;
    Ittage itt(cfg, hist);
    EXPECT_GT(itt.storageBits(), 0u);
    // 6 tables x 512 entries x ~61b + base: on the order of 200K bits.
    EXPECT_LT(itt.storageBits(), 1000000u);
}

} // namespace
} // namespace fdip
