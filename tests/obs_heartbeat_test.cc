/** @file Tests for interval heartbeat telemetry. */

#include "obs/heartbeat.h"

#include <cstdlib>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/core.h"
#include "obs/obs_config.h"
#include "prefetch/factory.h"
#include "sim/experiment.h"

namespace fdip
{
namespace
{

Trace
tinyTrace(std::size_t insts, std::uint64_t seed = 909)
{
    WorkloadSpec s = serverSpec("hb", seed);
    s.numFunctions = 64;
    auto wl = std::make_shared<Workload>(buildWorkload(s));
    return generateTrace(wl, insts);
}

std::vector<HeartbeatSample>
runWithHeartbeat(const Trace &trace, std::uint64_t interval,
                 std::uint64_t warmup = 0)
{
    CoreConfig cfg = paperBaselineConfig();
    cfg.applyHistoryScheme();
    cfg.obs.heartbeatInterval = interval;
    Core core(cfg, trace, makePrefetcher("none"));
    (void)core.run(warmup);
    return core.heartbeats();
}

TEST(Heartbeat, DisabledRecordsNothing)
{
    const Trace trace = tinyTrace(10000);
    EXPECT_TRUE(runWithHeartbeat(trace, 0).empty());
}

TEST(Heartbeat, ExactlyOneIntervalYieldsOneSample)
{
    // With no warmup the post-warmup instruction count is exactly the
    // trace length, so interval == length must fire exactly once, on
    // the loop iteration that commits the final instruction.
    const Trace trace = tinyTrace(10000);
    const auto hbs = runWithHeartbeat(trace, trace.size());
    ASSERT_EQ(hbs.size(), 1u);
    EXPECT_EQ(hbs[0].instrs, trace.size());
    EXPECT_EQ(hbs[0].dInstrs, trace.size());
    EXPECT_GT(hbs[0].cycles, 0u);
    EXPECT_GT(hbs[0].ipc(), 0.0);
}

TEST(Heartbeat, OneInstructionShortYieldsNoSample)
{
    const Trace trace = tinyTrace(10000);
    EXPECT_TRUE(runWithHeartbeat(trace, trace.size() + 1).empty());
}

TEST(Heartbeat, RunShorterThanOneIntervalYieldsNoSample)
{
    const Trace trace = tinyTrace(5000);
    EXPECT_TRUE(runWithHeartbeat(trace, 1000000).empty());
}

TEST(Heartbeat, SeriesIsConsistent)
{
    const Trace trace = tinyTrace(30000);
    const std::uint64_t interval = 4000;
    const auto hbs = runWithHeartbeat(trace, interval);
    ASSERT_GE(hbs.size(), 6u);

    std::uint64_t sum_instrs = 0;
    std::uint64_t sum_cycles = 0;
    std::uint64_t prev_instrs = 0;
    for (const auto &s : hbs) {
        // Each sample crosses into a strictly later interval. (Commit
        // width means a sample can land a few instructions past the
        // multiple, so compare interval indices, not raw distances.)
        EXPECT_GT(s.instrs / interval, prev_instrs / interval);
        prev_instrs = s.instrs;
        sum_instrs += s.dInstrs;
        sum_cycles += s.dCycles;
        // Deltas re-derive the cumulative position.
        EXPECT_EQ(sum_instrs, s.instrs);
        EXPECT_EQ(sum_cycles, s.cycles);
        EXPECT_GT(s.dInstrs, 0u);
        EXPECT_GT(s.dCycles, 0u);
    }
}

TEST(Heartbeat, WarmupCommitsDoNotSample)
{
    // Warmup is 5000 of 12000 instructions; with interval 10000 the
    // post-warmup count (~7000) never reaches one interval.
    const Trace trace = tinyTrace(12000);
    EXPECT_TRUE(runWithHeartbeat(trace, 10000, 5000).empty());
}

TEST(Heartbeat, SamplingIsObservationOnly)
{
    const Trace trace = tinyTrace(20000);
    CoreConfig cfg = paperBaselineConfig();
    cfg.applyHistoryScheme();

    Core plain(cfg, trace, makePrefetcher("eip-27"));
    const SimStats without = plain.run(2000);

    cfg.obs.heartbeatInterval = 500;
    Core sampled(cfg, trace, makePrefetcher("eip-27"));
    const SimStats with = sampled.run(2000);

    EXPECT_TRUE(without.architecturallyEqual(with))
        << "heartbeat sampling perturbed simulated state";
    EXPECT_GT(sampled.heartbeats().size(), 10u);
}

TEST(Heartbeat, FlowsThroughRunSuite)
{
    std::vector<SuiteEntry> suite;
    SuiteEntry e;
    e.name = "hb";
    e.trace = tinyTrace(10000);
    suite.push_back(std::move(e));

    CoreConfig cfg = paperBaselineConfig();
    cfg.obs.heartbeatInterval = 2000;
    const SuiteResult r =
        runSuite("cfg", cfg, suite, noPrefetcher(), /*warmup=*/0.0);
    ASSERT_EQ(r.runs.size(), 1u);
    EXPECT_EQ(r.runs[0].heartbeats.size(), 5u);
}

TEST(Heartbeat, JsonHasStableSchema)
{
    HeartbeatSample s;
    s.instrs = 1000;
    s.cycles = 2000;
    s.dInstrs = 1000;
    s.dCycles = 2000;
    s.mispredicts = 10;
    std::string out;
    appendHeartbeatJson(out, s);
    EXPECT_NE(out.find("\"instrs\": 1000"), std::string::npos);
    EXPECT_NE(out.find("\"ipc\": 0.5"), std::string::npos);
    EXPECT_NE(out.find("\"mpki\": 10"), std::string::npos);
    EXPECT_EQ(out.front(), '{');
    EXPECT_EQ(out.back(), '}');
}

TEST(Heartbeat, EnvParsing)
{
    ::unsetenv("FDIP_HEARTBEAT");
    EXPECT_EQ(heartbeatIntervalFromEnv(), 0u);
    ::setenv("FDIP_HEARTBEAT", "25000", 1);
    EXPECT_EQ(heartbeatIntervalFromEnv(), 25000u);
    ::setenv("FDIP_HEARTBEAT", "bogus", 1);
    EXPECT_EQ(heartbeatIntervalFromEnv(), 0u);
    ::setenv("FDIP_HEARTBEAT", "-5", 1);
    EXPECT_EQ(heartbeatIntervalFromEnv(), 0u);
    ::unsetenv("FDIP_HEARTBEAT");
}

TEST(Heartbeat, ResolveObsEnvPrefersExplicitValues)
{
    ::setenv("FDIP_HEARTBEAT", "111", 1);
    ::setenv("FDIP_TRACE", "/tmp/env.json", 1);

    ObsConfig unset;
    const ObsConfig from_env = resolveObsEnv(unset);
    EXPECT_EQ(from_env.heartbeatInterval, 111u);
    EXPECT_EQ(from_env.tracePath, "/tmp/env.json");

    ObsConfig explicit_cfg;
    explicit_cfg.heartbeatInterval = 222;
    explicit_cfg.tracePath = "/tmp/cli.json";
    const ObsConfig kept = resolveObsEnv(explicit_cfg);
    EXPECT_EQ(kept.heartbeatInterval, 222u);
    EXPECT_EQ(kept.tracePath, "/tmp/cli.json");

    ::unsetenv("FDIP_HEARTBEAT");
    ::unsetenv("FDIP_TRACE");
}

TEST(Heartbeat, TracePathWeaving)
{
    ObsConfig obs;
    obs.tracePath = "out/run.json";
    obs.traceLabel = "FDP 8K";
    EXPECT_EQ(tracePathForRun(obs, "srv-a"), "out/run.FDP_8K.srv-a.json");

    obs.traceExactPath = true;
    EXPECT_EQ(tracePathForRun(obs, "srv-a"), "out/run.json");

    ObsConfig off;
    EXPECT_EQ(tracePathForRun(off, "srv-a"), "");
}

} // namespace
} // namespace fdip
