/**
 * @file
 * Environment-override handling for the bench/experiment layer:
 * FDIP_SIM_INSTRS, FDIP_SUITE, FDIP_JOBS, and FDIP_SPOOL. Invalid
 * values (0, garbage, negative, huge) must fall back to the default
 * with a warning — never crash, hang, or silently misconfigure a
 * campaign — and an unusable spool path must fail fast with a clear
 * message rather than quietly recomputing or crashing.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "sim/campaign_store.h"
#include "sim/experiment.h"
#include "sim/parallel.h"

namespace fdip
{
namespace
{

/** Restores the env vars to "unset" around each test. */
class EnvTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::unsetenv("FDIP_SIM_INSTRS");
        ::unsetenv("FDIP_SUITE");
        ::unsetenv("FDIP_JOBS");
        ::unsetenv("FDIP_SPOOL");
    }
    void
    TearDown() override
    {
        SetUp();
    }
};

TEST_F(EnvTest, JobsDefaultsToHardwareConcurrencyWhenUnset)
{
    EXPECT_GE(jobsFromEnv(), 1u);
    EXPECT_EQ(jobsFromEnv(5), 5u);
}

TEST_F(EnvTest, JobsParsesValidCounts)
{
    for (unsigned v : {1u, 2u, 8u, 64u, kMaxJobs}) {
        ::setenv("FDIP_JOBS", std::to_string(v).c_str(), 1);
        EXPECT_EQ(jobsFromEnv(7), v);
    }
}

TEST_F(EnvTest, JobsInvalidValuesFallBack)
{
    for (const char *bad : {"0", "garbage", "-2", "2x", " ", "1.5",
                            "99999999999999999999", "4097"}) {
        ::setenv("FDIP_JOBS", bad, 1);
        ::testing::internal::CaptureStderr();
        EXPECT_EQ(jobsFromEnv(7), 7u) << "FDIP_JOBS='" << bad << "'";
        const std::string warning =
            ::testing::internal::GetCapturedStderr();
        // The fallback must be loud, and the warning must name the
        // variable and the rejected value.
        EXPECT_NE(warning.find("FDIP_JOBS"), std::string::npos)
            << "no warning for FDIP_JOBS='" << bad << "'";
        EXPECT_NE(warning.find(bad), std::string::npos) << warning;
    }
    ::setenv("FDIP_JOBS", std::to_string(kMaxJobs + 1).c_str(), 1);
    EXPECT_EQ(jobsFromEnv(7), 7u);

    // The empty string means "unset": silent fallback, no warning.
    ::setenv("FDIP_JOBS", "", 1);
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(jobsFromEnv(7), 7u);
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(EnvTest, SimInstrsParsesValidCounts)
{
    ::setenv("FDIP_SIM_INSTRS", "123456", 1);
    EXPECT_EQ(suiteInstsFromEnv(999), 123456u);
    ::setenv("FDIP_SIM_INSTRS", "2000000", 1);
    EXPECT_EQ(suiteInstsFromEnv(999), 2000000u);
}

TEST_F(EnvTest, SimInstrsInvalidValuesFallBack)
{
    // 1000 is the documented floor: trace shorter than warmup is junk.
    for (const char *bad : {"garbage", "0", "-5", "1000", "12monkeys",
                            "99999999999999999999999"}) {
        ::setenv("FDIP_SIM_INSTRS", bad, 1);
        EXPECT_EQ(suiteInstsFromEnv(999), 999u)
            << "FDIP_SIM_INSTRS='" << bad << "'";
    }
    ::unsetenv("FDIP_SIM_INSTRS");
    EXPECT_EQ(suiteInstsFromEnv(999), 999u);
}

TEST_F(EnvTest, SuiteSelectionParses)
{
    EXPECT_FALSE(suiteSmallFromEnv());
    ::setenv("FDIP_SUITE", "small", 1);
    EXPECT_TRUE(suiteSmallFromEnv());
    ::setenv("FDIP_SUITE", "full", 1);
    EXPECT_FALSE(suiteSmallFromEnv());
    // Unrecognized values warn and fall back to the full suite.
    ::setenv("FDIP_SUITE", "SMALL", 1);
    EXPECT_FALSE(suiteSmallFromEnv());
    ::setenv("FDIP_SUITE", "tiny", 1);
    EXPECT_FALSE(suiteSmallFromEnv());
}

TEST_F(EnvTest, BenchSuiteHonorsInstrsAndSmall)
{
    ::setenv("FDIP_SIM_INSTRS", "2000", 1);
    ::setenv("FDIP_SUITE", "small", 1);
    const auto small = benchSuite(5000);
    ASSERT_EQ(small.size(), 3u);
    for (const auto &e : small)
        EXPECT_EQ(e.trace.size(), 2000u) << e.name;
    EXPECT_EQ(small[0].name, "srv-a");
    EXPECT_EQ(small[1].name, "clt-a");
    EXPECT_EQ(small[2].name, "spec-a");
}

TEST_F(EnvTest, BenchSuiteDefaultsToFullSuite)
{
    ::setenv("FDIP_SIM_INSTRS", "2000", 1);
    const auto full = benchSuite(5000);
    EXPECT_EQ(full.size(), 9u);
}

TEST_F(EnvTest, BenchSuiteInvalidInstrsUsesBenchDefault)
{
    ::setenv("FDIP_SIM_INSTRS", "nonsense", 1);
    ::setenv("FDIP_SUITE", "small", 1);
    const auto suite = benchSuite(2000);
    ASSERT_EQ(suite.size(), 3u);
    for (const auto &e : suite)
        EXPECT_EQ(e.trace.size(), 2000u) << e.name;
}

TEST_F(EnvTest, SpoolFromEnvReflectsTheVariable)
{
    EXPECT_EQ(spoolFromEnv(), "");
    ::setenv("FDIP_SPOOL", "/some/spool/dir", 1);
    EXPECT_EQ(spoolFromEnv(), "/some/spool/dir");
    ::unsetenv("FDIP_SPOOL");
    EXPECT_EQ(spoolFromEnv(), "");
}

// openSpool on an unusable path must exit(1) with a message naming
// the spool, not crash and not silently recompute. "/dev/null/..." is
// unusable for every user, root included (ENOTDIR), unlike
// permission-based fixtures.
TEST_F(EnvTest, OpenSpoolUnusablePathFailsWithClearMessage)
{
    EXPECT_EXIT(openSpool("/dev/null/spool"),
                ::testing::ExitedWithCode(1), "spool");
}

TEST_F(EnvTest, OpenSpoolEmptyPathFailsWithClearMessage)
{
    EXPECT_EXIT(openSpool(""), ::testing::ExitedWithCode(1),
                "no spool directory");
}

TEST_F(EnvTest, OpenSpoolUnwritableDirectoryFailsWithClearMessage)
{
    // A directory that exists but rejects writes: /proc is a kernel
    // filesystem, so even root cannot create files in it.
    EXPECT_EXIT(openSpool("/proc/fdip-spool"),
                ::testing::ExitedWithCode(1), "spool");
}

} // namespace
} // namespace fdip
