/** @file Tests for the assembled BPU wrapper: predictor selection,
 *  loop-predictor override, and the (optionally two-level) BTB path. */

#include "bpu/bpu.h"

#include <gtest/gtest.h>

namespace fdip
{
namespace
{

TEST(Bpu, TageIsDefault)
{
    Bpu bpu{BpuConfig{}};
    // Train an always-taken branch; the prediction must converge.
    for (int i = 0; i < 200; ++i) {
        const DirectionPrediction p = bpu.predictDirection(0x1000, true);
        bpu.updateDirection(0x1000, true, p);
        bpu.history().pushBranch(0x1000, 0x2000, true);
    }
    EXPECT_TRUE(bpu.predictDirection(0x1000, true).taken);
}

TEST(Bpu, PerfectKindEchoesOracle)
{
    BpuConfig cfg;
    cfg.direction = DirectionPredictorKind::kPerfect;
    Bpu bpu(cfg);
    EXPECT_TRUE(bpu.predictDirection(0x1000, true).taken);
    EXPECT_FALSE(bpu.predictDirection(0x1000, false).taken);
}

TEST(Bpu, GshareAndPerceptronInstantiate)
{
    for (auto kind : {DirectionPredictorKind::kGshare,
                      DirectionPredictorKind::kPerceptron}) {
        BpuConfig cfg;
        cfg.direction = kind;
        Bpu bpu(cfg);
        for (int i = 0; i < 500; ++i) {
            const DirectionPrediction p =
                bpu.predictDirection(0x3000, false);
            bpu.updateDirection(0x3000, false, p);
        }
        EXPECT_FALSE(bpu.predictDirection(0x3000, false).taken);
        EXPECT_GT(bpu.predictorStorageBits(), 0u);
    }
}

TEST(Bpu, LoopPredictorOverridesOnExit)
{
    BpuConfig cfg;
    cfg.useLoopPredictor = true;
    Bpu bpu(cfg);
    // Trip-count-6 loop, trained well past confidence.
    for (int rep = 0; rep < 20; ++rep) {
        for (int i = 0; i < 6; ++i) {
            const bool taken = i < 5;
            const DirectionPrediction p =
                bpu.predictDirection(0x4000, taken);
            bpu.updateDirection(0x4000, taken, p);
        }
    }
    // On a fresh instance, iteration 6 must be predicted not-taken
    // even though TAGE's counters lean taken.
    bool exit_predicted_not_taken = false;
    for (int i = 0; i < 6; ++i) {
        const bool taken = i < 5;
        const DirectionPrediction p = bpu.predictDirection(0x4000, taken);
        if (i == 5 && !p.taken)
            exit_predicted_not_taken = true;
        bpu.updateDirection(0x4000, taken, p);
    }
    EXPECT_TRUE(exit_predicted_not_taken);
}

TEST(Bpu, SingleLevelLookupNeverReportsL2)
{
    Bpu bpu{BpuConfig{}};
    bpu.insertBranch(0x1000, InstClass::kJumpDirect, 0x2000, true);
    const auto h = bpu.lookupBranch(0x1000);
    ASSERT_TRUE(h.has_value());
    EXPECT_FALSE(h->fromL2);
}

TEST(Bpu, TwoLevelLookupReportsL2AfterL1Eviction)
{
    BpuConfig cfg;
    cfg.btbHierarchy.enabled = true;
    cfg.btbHierarchy.l1Entries = 64;
    Bpu bpu(cfg);
    for (unsigned i = 0; i < 2000; ++i)
        bpu.insertBranch(0x10000 + i * 16, InstClass::kJumpDirect,
                         0x9000, true);
    const auto h = bpu.lookupBranch(0x10000);
    ASSERT_TRUE(h.has_value());
    EXPECT_TRUE(h->fromL2);
}

TEST(Bpu, IndirectPredictorTrains)
{
    Bpu bpu{BpuConfig{}};
    for (int i = 0; i < 300; ++i) {
        IttagePrediction meta;
        bpu.predictIndirect(0x5000, meta);
        bpu.updateIndirect(0x5000, 0x8000, meta);
        bpu.history().pushBranch(0x5000, 0x8000, true);
    }
    IttagePrediction meta;
    EXPECT_EQ(bpu.predictIndirect(0x5000, meta), 0x8000u);
}

} // namespace
} // namespace fdip
