/** @file Tests for the logging/error helpers. */

#include "util/log.h"

#include <gtest/gtest.h>

namespace fdip
{
namespace
{

TEST(Log, FormatBasics)
{
    EXPECT_EQ(log_detail::format("plain"), "plain");
    EXPECT_EQ(log_detail::format("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(log_detail::format("%s/%s", "a", "b"), "a/b");
    EXPECT_EQ(log_detail::format("%#x", 0x40), "0x40");
}

TEST(Log, FormatLongStrings)
{
    const std::string big(5000, 'x');
    const std::string out = log_detail::format("%s!", big.c_str());
    EXPECT_EQ(out.size(), 5001u);
    EXPECT_EQ(out.back(), '!');
}

TEST(Log, FatalExitsWithCodeOne)
{
    EXPECT_EXIT({ fdip_fatal("user error %d", 7); },
                ::testing::ExitedWithCode(1), "user error 7");
}

TEST(Log, PanicAborts)
{
    EXPECT_DEATH({ fdip_panic("bug %s", "here"); }, "bug here");
}

TEST(Log, WarnAndInformDoNotTerminate)
{
    fdip_warn("just a warning %d", 1);
    fdip_inform("status %s", "ok");
    SUCCEED();
}

} // namespace
} // namespace fdip
