/** @file Runtime ground truth for the hot-path allocation contract:
 *  steady-state Core::run performs ZERO heap allocations, for every
 *  named configuration x every factory prefetcher.
 *
 *  tools/lint/check_hotpath.py is the static half (it names the
 *  offending line); this test is the dynamic half (it catches what a
 *  regex cannot: allocation inside a callee, a std container growing
 *  past its preallocation, a library call that mallocs). The two
 *  layers fail independently, so a regression has to slip past both.
 *
 *  Method: tests/hotpath_alloc_interposer.h replaces the global
 *  operator new/delete with counting versions. A first throwaway run
 *  warms every process-lifetime lazy structure (the InvariantScope
 *  thread_local stack, libstdc++/gtest internals); each measured run
 *  then constructs its Core (construction may allocate freely),
 *  snapshots the counter, runs to completion, and asserts the counter
 *  did not move.
 */

#include "hotpath_alloc_interposer.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/core.h"
#include "prefetch/factory.h"
#include "trace/suite.h"

namespace fdip
{
namespace
{

/** Every name prefetch/factory.cc accepts. */
const char *const kAllPrefetchers[] = {
    "none",   "nl1",      "fnl+mma",      "d-jolt", "eip-128",
    "eip-27", "rdip",     "sn4l+dis",     "sn4l+dis+btb",
};

/** A reduced server-like trace shared across measurements. */
const Trace &
sharedTrace()
{
    static const Trace trace = [] {
        WorkloadSpec s = serverSpec("hotpath", 77);
        s.numFunctions = 90;
        s.numRootFunctions = 12;
        auto wl = std::make_shared<Workload>(buildWorkload(s));
        return generateTrace(wl, 60000);
    }();
    return trace;
}

/** Normalizes a config for measurement (heartbeats off: the series
 *  preallocation is charged to run() setup, which we measure around
 *  separately in HeartbeatSeriesAllocatesOnlyInSetup). */
CoreConfig
measured(CoreConfig cfg)
{
    cfg.applyHistoryScheme();
    cfg.obs.heartbeatInterval = 0;
    return cfg;
}

/** One full run to warm process-lifetime lazies before any counting. */
void
warmProcessOnce()
{
    static const bool warmed = [] {
        Core core(measured(paperBaselineConfig()), sharedTrace(),
                  makePrefetcher("none"));
        core.run(sharedTrace().size() / 5);
        return true;
    }();
    (void)warmed;
}

/** Heap allocations performed by core.run() itself. */
std::uint64_t
runAllocDelta(const CoreConfig &cfg, const char *prefetcher)
{
    warmProcessOnce();
    const Trace &trace = sharedTrace();
    Core core(cfg, trace, makePrefetcher(prefetcher));
    const std::uint64_t before = test::allocCalls();
    core.run(trace.size() / 5);
    return test::allocCalls() - before;
}

/** The interposer is actually interposed: a unique_ptr round-trip
 *  moves both counters. Guards against a build silently linking the
 *  default allocator, which would make every zero-assertion vacuous. */
TEST(HotpathInterposer, CountsAllocationAndDeallocation)
{
    const std::uint64_t a0 = test::allocCalls();
    const std::uint64_t d0 = test::deallocCalls();
    const std::uint64_t b0 = test::allocBytes();
    {
        auto p = std::make_unique<std::uint64_t>(42);
        ASSERT_EQ(*p, 42u);
    }
    EXPECT_GT(test::allocCalls(), a0);
    EXPECT_GT(test::deallocCalls(), d0);
    EXPECT_GE(test::allocBytes(), b0 + sizeof(std::uint64_t));
}

TEST(HotpathInterposer, CountsArrayAndNothrowForms)
{
    const std::uint64_t a0 = test::allocCalls();
    delete[] new int[8];
    void *p = operator new(16, std::nothrow);
    operator delete(p, std::nothrow);
    EXPECT_EQ(test::allocCalls(), a0 + 2);
}

/** The core claim: zero steady-state allocations for every named
 *  config x every factory prefetcher. A failure here means a per-tick
 *  structure lost its preallocation (or a new one was added without
 *  one) -- find the line with tools/lint/check_hotpath.py, or bisect
 *  with the byte counter. */
TEST(CoreHotpath, BaselineRunsWithoutHeapAllocation)
{
    const CoreConfig cfg = measured(paperBaselineConfig());
    for (const char *pf : kAllPrefetchers)
        EXPECT_EQ(runAllocDelta(cfg, pf), 0u)
            << "paperBaselineConfig x " << pf
            << " allocated during Core::run";
}

TEST(CoreHotpath, NoFdpRunsWithoutHeapAllocation)
{
    const CoreConfig cfg = measured(noFdpConfig());
    for (const char *pf : kAllPrefetchers)
        EXPECT_EQ(runAllocDelta(cfg, pf), 0u)
            << "noFdpConfig x " << pf << " allocated during Core::run";
}

TEST(CoreHotpath, TwoLevelBtbRunsWithoutHeapAllocation)
{
    const CoreConfig cfg = measured(twoLevelBtbConfig());
    for (const char *pf : kAllPrefetchers)
        EXPECT_EQ(runAllocDelta(cfg, pf), 0u)
            << "twoLevelBtbConfig x " << pf
            << " allocated during Core::run";
}

/** Feature knobs that change the tick path's shape stay alloc-free. */
TEST(CoreHotpath, FeatureVariantsRunWithoutHeapAllocation)
{
    CoreConfig buffer = paperBaselineConfig();
    buffer.usePrefetchBuffer = true;

    CoreConfig perfect_pf = paperBaselineConfig();
    perfect_pf.perfectPrefetch = true;

    CoreConfig perfect_ic = paperBaselineConfig();
    perfect_ic.perfectICache = true;

    CoreConfig ghr3 = paperBaselineConfig();
    ghr3.historyScheme = HistoryScheme::kGhr3;

    EXPECT_EQ(runAllocDelta(measured(buffer), "fnl+mma"), 0u)
        << "prefetch buffer path allocated";
    EXPECT_EQ(runAllocDelta(measured(perfect_pf), "fnl+mma"), 0u)
        << "perfect-prefetch path allocated";
    EXPECT_EQ(runAllocDelta(measured(perfect_ic), "none"), 0u)
        << "perfect-I-cache path allocated";
    EXPECT_EQ(runAllocDelta(measured(ghr3), "none"), 0u)
        << "GHR3 fixup path allocated";
}

/** The tick-phase profiler's per-tick work is fixed arrays plus a
 *  clock read on sampled ticks — with it armed (even at interval 1,
 *  every tick sampled), Core::run must still not allocate. */
TEST(CoreHotpath, ProfilerRunsWithoutHeapAllocation)
{
    for (std::uint64_t interval : {std::uint64_t{1}, std::uint64_t{64}}) {
        CoreConfig cfg = measured(paperBaselineConfig());
        cfg.obs.profileInterval = interval;
        EXPECT_EQ(runAllocDelta(cfg, "none"), 0u)
            << "profiler at interval " << interval
            << " allocated during Core::run";
    }
}

/** With heartbeats ON, run() may allocate only the preallocated
 *  sample series -- a bounded, O(1)-count setup cost outside the tick
 *  loop -- and the per-tick sampling itself must stay alloc-free.
 *  vector::resize allocates at most once here. */
TEST(CoreHotpath, HeartbeatSeriesAllocatesOnlyInSetup)
{
    warmProcessOnce();
    CoreConfig cfg = measured(paperBaselineConfig());
    cfg.obs.heartbeatInterval = 1000;
    const Trace &trace = sharedTrace();
    Core core(cfg, trace, makePrefetcher("none"));
    const std::uint64_t before = test::allocCalls();
    core.run(trace.size() / 5);
    const std::uint64_t delta = test::allocCalls() - before;
    EXPECT_LE(delta, 1u) << "heartbeat sampling allocated per-tick";
    EXPECT_GT(core.heartbeats().size(), 10u)
        << "heartbeat series was not actually recorded";
}

} // namespace
} // namespace fdip
