/** @file Structural tests for the synthetic workload generator. */

#include "trace/workload.h"

#include <gtest/gtest.h>

namespace fdip
{
namespace
{

/** Parameterized across the three workload families. */
class WorkloadFamily : public ::testing::TestWithParam<int>
{
  protected:
    WorkloadSpec
    spec() const
    {
        switch (GetParam()) {
          case 0: return serverSpec("srv", 11);
          case 1: return clientSpec("clt", 22);
          default: return specCpuSpec("spec", 33);
        }
    }
};

TEST_P(WorkloadFamily, DeterministicPerSeed)
{
    const Workload a = buildWorkload(spec());
    const Workload b = buildWorkload(spec());
    ASSERT_EQ(a.image.numInsts(), b.image.numInsts());
    for (std::uint32_t i = 0; i < a.image.numInsts(); ++i) {
        EXPECT_EQ(a.image.inst(i).cls, b.image.inst(i).cls) << i;
        EXPECT_EQ(a.image.inst(i).target, b.image.inst(i).target) << i;
    }
    EXPECT_EQ(a.entryPc, b.entryPc);
    EXPECT_EQ(a.rootSchedule, b.rootSchedule);
}

TEST_P(WorkloadFamily, DifferentSeedsDiffer)
{
    WorkloadSpec s1 = spec();
    WorkloadSpec s2 = spec();
    s2.seed += 1;
    const Workload a = buildWorkload(s1);
    const Workload b = buildWorkload(s2);
    // Sizes almost surely differ; at minimum some instruction differs.
    bool differ = a.image.numInsts() != b.image.numInsts();
    if (!differ) {
        for (std::uint32_t i = 0; i < a.image.numInsts(); ++i) {
            if (a.image.inst(i).cls != b.image.inst(i).cls ||
                a.image.inst(i).target != b.image.inst(i).target) {
                differ = true;
                break;
            }
        }
    }
    EXPECT_TRUE(differ);
}

TEST_P(WorkloadFamily, AllBranchTargetsInsideImage)
{
    const Workload wl = buildWorkload(spec());
    for (std::uint32_t i = 0; i < wl.image.numInsts(); ++i) {
        const StaticInst &s = wl.image.inst(i);
        if (isBranch(s.cls) && isDirect(s.cls)) {
            EXPECT_TRUE(wl.image.contains(s.target))
                << "inst " << i << " target " << std::hex << s.target;
        }
    }
}

TEST_P(WorkloadFamily, ConditionalBranchesHaveBehavior)
{
    const Workload wl = buildWorkload(spec());
    for (std::uint32_t i = 0; i < wl.image.numInsts(); ++i) {
        const StaticInst &s = wl.image.inst(i);
        if (isConditional(s.cls)) {
            EXPECT_NE(s.behavior, BranchBehavior::kNone) << i;
        }
    }
}

TEST_P(WorkloadFamily, CallGraphIsAcyclic)
{
    // Every call target (direct or indirect candidate) points to a
    // strictly later address: recursion is impossible by construction.
    const Workload wl = buildWorkload(spec());
    for (std::uint32_t i = 0; i < wl.image.numInsts(); ++i) {
        const StaticInst &s = wl.image.inst(i);
        if (s.cls == InstClass::kCallDirect) {
            EXPECT_GT(s.target, wl.image.pcOf(i)) << "call at " << i;
        }
    }
    for (const auto &kv : wl.indirectTargets) {
        if (kv.first == wl.dispatchCallIndex)
            continue;
        for (Addr t : kv.second)
            EXPECT_GT(t, wl.image.pcOf(kv.first));
    }
}

TEST_P(WorkloadFamily, IndirectSitesHaveTargets)
{
    const Workload wl = buildWorkload(spec());
    for (std::uint32_t i = 0; i < wl.image.numInsts(); ++i) {
        const StaticInst &s = wl.image.inst(i);
        if (isIndirect(s.cls)) {
            const auto it = wl.indirectTargets.find(i);
            ASSERT_NE(it, wl.indirectTargets.end()) << "site " << i;
            EXPECT_FALSE(it->second.empty());
            for (Addr t : it->second)
                EXPECT_TRUE(wl.image.contains(t));
        }
    }
}

TEST_P(WorkloadFamily, EveryFunctionEndsInReturn)
{
    const Workload wl = buildWorkload(spec());
    ASSERT_FALSE(wl.image.functions().empty());
    // Skip the dispatcher (function 0), which loops forever.
    for (std::size_t f = 1; f < wl.image.functions().size(); ++f) {
        const FunctionInfo &fi = wl.image.functions()[f];
        const StaticInst &last =
            wl.image.inst(fi.firstIndex + fi.numInsts - 1);
        EXPECT_EQ(last.cls, InstClass::kReturn) << "function " << f;
    }
}

TEST_P(WorkloadFamily, DispatcherSchedulePointsAtFunctionEntries)
{
    const Workload wl = buildWorkload(spec());
    ASSERT_FALSE(wl.rootSchedule.empty());
    for (const auto &phase : wl.rootSchedule) {
        ASSERT_FALSE(phase.empty());
        for (Addr root : phase) {
            bool is_entry = false;
            for (const auto &fi : wl.image.functions()) {
                if (wl.image.pcOf(fi.firstIndex) == root) {
                    is_entry = true;
                    break;
                }
            }
            EXPECT_TRUE(is_entry) << std::hex << root;
        }
    }
}

TEST_P(WorkloadFamily, FootprintExceedsL1I)
{
    // The paper's workload-selection rule needs instruction footprints
    // well beyond the 32KB L1I.
    const Workload wl = buildWorkload(spec());
    EXPECT_GT(wl.image.footprintBytes(), 64u * 1024);
}

INSTANTIATE_TEST_SUITE_P(Families, WorkloadFamily,
                         ::testing::Values(0, 1, 2));

TEST(Workload, RejectsTooFewFunctions)
{
    WorkloadSpec s = serverSpec("bad", 1);
    s.numFunctions = s.numRootFunctions; // Too few.
    EXPECT_DEATH({ buildWorkload(s); }, "too few functions");
}

} // namespace
} // namespace fdip
