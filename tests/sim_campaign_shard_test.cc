/**
 * @file
 * Multi-process sharding test: two real `fdipsim --campaign`
 * subprocesses drain one spool concurrently. Claims must be disjoint
 * (every run simulated exactly once across both processes), coverage
 * must be complete, and the merged report must be byte-identical to an
 * in-process golden run at jobs=8.
 *
 * The fdipsim binary path is injected by CMake as FDIP_FDIPSIM_PATH.
 */

#include "sim/campaign_store.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include <sys/wait.h>

#include <gtest/gtest.h>

#include "sim/campaign_presets.h"
#include "sim/report.h"
#include "util/atomic_file.h"

namespace fdip
{
namespace
{

constexpr std::size_t kInsts = 30000;

std::string
tempDir()
{
    std::string tmpl = ::testing::TempDir() + "shardXXXXXX";
    char *raw = ::mkdtemp(tmpl.data());
    EXPECT_NE(raw, nullptr);
    return tmpl;
}

std::string
slurp(const std::string &path)
{
    std::string out;
    std::string err;
    EXPECT_TRUE(readFileToString(path, &out, &err)) << path << ": " << err;
    return out;
}

/** One running fdipsim subprocess (stdout captured via popen). */
struct Worker
{
    std::FILE *pipe = nullptr;
    std::string output;
    int exitStatus = -1;

    void
    start(const std::string &args)
    {
        const std::string cmd = std::string(FDIP_FDIPSIM_PATH) + " " +
                                args + " 2>/dev/null";
        pipe = ::popen(cmd.c_str(), "r");
        ASSERT_NE(pipe, nullptr) << cmd;
    }

    void
    finish()
    {
        ASSERT_NE(pipe, nullptr);
        char buf[512];
        while (std::fgets(buf, sizeof(buf), pipe) != nullptr)
            output += buf;
        exitStatus = ::pclose(pipe);
        pipe = nullptr;
    }

    /** The "N simulated" count from the campaign summary line. */
    std::size_t
    simulated() const
    {
        const std::size_t comma = output.find(" runs, ");
        EXPECT_NE(comma, std::string::npos) << output;
        return static_cast<std::size_t>(
            std::atol(output.c_str() + comma + 7));
    }
};

TEST(CampaignShard, TwoProcessesDrainOneSpoolDisjointly)
{
    const std::string spool = tempDir();
    const std::string common =
        "--campaign smoke --workload suite-small --insts " +
        std::to_string(kInsts) + " --spool " + spool + " --jobs 2";

    // Launch both workers before reading either: they race on the
    // spool's claim files while running concurrently.
    Worker a;
    Worker b;
    a.start(common);
    b.start(common);
    a.finish();
    b.finish();

    // Either worker may observe in-flight claims of the other and
    // report incomplete (exit 1); crashing or any other status is a
    // failure.
    for (const Worker *w : {&a, &b}) {
        ASSERT_TRUE(WIFEXITED(w->exitStatus)) << w->output;
        EXPECT_LE(WEXITSTATUS(w->exitStatus), 1) << w->output;
        EXPECT_NE(w->output.find("campaign 'smoke'"), std::string::npos)
            << w->output;
    }

    // Disjoint claims, full coverage: the per-process simulation
    // counts sum to exactly the manifest size — nothing ran twice,
    // nothing was skipped.
    const auto entries = buildCampaignEntries("smoke");
    const auto suite = buildStandardSuite(kInsts, /*small=*/true);
    const std::size_t total = entries.size() * suite.size();
    EXPECT_EQ(a.simulated() + b.simulated(), total)
        << "A: " << a.output << "\nB: " << b.output;

    // The merged report equals the in-process jobs=8 golden, byte for
    // byte.
    std::vector<SuiteResult> merged;
    SpoolSummary summary;
    std::string error;
    ASSERT_TRUE(mergeCampaignSpool(entries, suite, spool, 0.2, &merged,
                                   &summary, &error))
        << error;
    EXPECT_TRUE(summary.complete);
    EXPECT_EQ(summary.cacheHits, total);

    const auto golden = runCampaign(entries, suite, 0.2, /*jobs=*/8);
    const std::string merged_json = spool + "/merged.json";
    const std::string golden_json = spool + "/golden.json";
    ASSERT_TRUE(writeSuiteResultsJson(merged_json, merged));
    ASSERT_TRUE(writeSuiteResultsJson(golden_json, golden));
    EXPECT_EQ(slurp(golden_json), slurp(merged_json));
}

TEST(CampaignPresets, StallAccountingGridMatchesTheBench)
{
    // The preset mirrors bench_stall_accounting's sweep: three
    // prefetcher identities x four BTB sizes, "<pf>@<entries>".
    const auto entries = buildCampaignEntries("stall_accounting");
    ASSERT_EQ(entries.size(), 12u);
    EXPECT_EQ(entries.front().label, "FDP@1024");
    EXPECT_EQ(entries.back().label, "FDP+EIP-27KB@8192");
    for (const CampaignEntry &e : entries) {
        const auto at = e.label.find('@');
        ASSERT_NE(at, std::string::npos) << e.label;
        EXPECT_EQ(e.cfg.bpu.btb.numEntries,
                  std::stoul(e.label.substr(at + 1)))
            << e.label;
        EXPECT_FALSE(e.prefetcherId.empty()) << e.label;
    }
    // ...and it is advertised.
    bool listed = false;
    for (const CampaignPreset &p : campaignPresets())
        listed = listed || std::string(p.name) == "stall_accounting";
    EXPECT_TRUE(listed);
}

TEST(CampaignShard, MergeFlagAssemblesWithoutSimulating)
{
    const std::string spool = tempDir();
    const std::string common =
        "--campaign smoke --workload suite-small --insts " +
        std::to_string(kInsts) + " --spool " + spool;

    // Drain once, then `--merge` must assemble with zero simulations.
    Worker drain;
    drain.start(common);
    drain.finish();
    ASSERT_TRUE(WIFEXITED(drain.exitStatus));
    ASSERT_EQ(WEXITSTATUS(drain.exitStatus), 0) << drain.output;

    const std::string report = spool + "/merge.json";
    Worker merge;
    merge.start(common + " --merge --json " + report);
    merge.finish();
    ASSERT_TRUE(WIFEXITED(merge.exitStatus));
    EXPECT_EQ(WEXITSTATUS(merge.exitStatus), 0) << merge.output;
    EXPECT_EQ(merge.simulated(), 0u) << merge.output;
    EXPECT_NE(merge.output.find("complete"), std::string::npos);
    EXPECT_TRUE(fileExists(report));

    // An emptied spool makes --merge fail loudly (exit 1).
    for (const auto &n : listDirectory(spool)) {
        if (n.size() > 5 && n.compare(n.size() - 5, 5, ".json") == 0 &&
            n.find("merge") == std::string::npos) {
            ASSERT_TRUE(removeFile(spool + "/" + n));
        }
    }
    Worker broken;
    broken.start(common + " --merge");
    broken.finish();
    ASSERT_TRUE(WIFEXITED(broken.exitStatus));
    EXPECT_EQ(WEXITSTATUS(broken.exitStatus), 1) << broken.output;
    EXPECT_NE(broken.output.find("incomplete"), std::string::npos)
        << broken.output;
}

} // namespace
} // namespace fdip
