/** @file Tests for the named configurations and Table V mapping. */

#include "core/core_config.h"

#include <gtest/gtest.h>

namespace fdip
{
namespace
{

TEST(CoreConfig, SchemeNamesMatchPaper)
{
    EXPECT_STREQ(historySchemeName(HistoryScheme::kThr), "THR");
    EXPECT_STREQ(historySchemeName(HistoryScheme::kGhr0), "GHR0");
    EXPECT_STREQ(historySchemeName(HistoryScheme::kGhr3), "GHR3");
    EXPECT_STREQ(historySchemeName(HistoryScheme::kIdeal), "Ideal");
}

TEST(CoreConfig, TableVMapping)
{
    struct Expect
    {
        HistoryScheme scheme;
        HistoryPolicy policy;
        bool takenOnly;
        bool fixup;
    };
    const Expect table[] = {
        {HistoryScheme::kThr, HistoryPolicy::kTargetHistory, true,
         false},
        {HistoryScheme::kGhr0, HistoryPolicy::kDirectionHistory, true,
         false},
        {HistoryScheme::kGhr1, HistoryPolicy::kDirectionHistory, false,
         false},
        {HistoryScheme::kGhr2, HistoryPolicy::kDirectionHistory, true,
         true},
        {HistoryScheme::kGhr3, HistoryPolicy::kDirectionHistory, false,
         true},
        {HistoryScheme::kIdeal, HistoryPolicy::kIdealDirectionHistory,
         true, false},
    };
    for (const Expect &e : table) {
        CoreConfig cfg;
        cfg.historyScheme = e.scheme;
        cfg.applyHistoryScheme();
        EXPECT_EQ(cfg.bpu.historyPolicy, e.policy)
            << historySchemeName(e.scheme);
        EXPECT_EQ(cfg.bpu.btb.allocateTakenOnly, e.takenOnly)
            << historySchemeName(e.scheme);
        EXPECT_EQ(cfg.ghrFixup(), e.fixup)
            << historySchemeName(e.scheme);
    }
}

TEST(CoreConfig, PaperBaselineMatchesTableIV)
{
    const CoreConfig cfg = paperBaselineConfig();
    EXPECT_EQ(cfg.ftqEntries, 24u);
    EXPECT_EQ(cfg.predictBandwidth, 12u);
    EXPECT_EQ(cfg.fetchBandwidth, 6u);
    EXPECT_EQ(cfg.maxTakenPerCycle, 1u);
    EXPECT_EQ(cfg.btbLatency, 2u);
    EXPECT_EQ(cfg.bpu.btb.numEntries, 8192u);
    EXPECT_EQ(cfg.bpu.tageKilobytes, 18u);
    EXPECT_TRUE(cfg.pfcEnabled);
    EXPECT_EQ(cfg.historyScheme, HistoryScheme::kThr);
    EXPECT_EQ(cfg.l1i.sizeBytes, 32u * 1024);
}

TEST(CoreConfig, NoFdpIsTwoEntryFtqOnly)
{
    const CoreConfig base = paperBaselineConfig();
    const CoreConfig no_fdp = noFdpConfig();
    EXPECT_EQ(no_fdp.ftqEntries, 2u);
    // Everything else stays identical (the paper disables FDP purely
    // by removing run-ahead capability).
    EXPECT_EQ(no_fdp.predictBandwidth, base.predictBandwidth);
    EXPECT_EQ(no_fdp.bpu.btb.numEntries, base.bpu.btb.numEntries);
    EXPECT_EQ(no_fdp.pfcEnabled, base.pfcEnabled);
}

TEST(CoreConfig, PredictionBandwidthIsTwiceFetch)
{
    // Paper Section V: prediction bandwidth is double the fetch
    // bandwidth to support run-ahead.
    const CoreConfig cfg = paperBaselineConfig();
    EXPECT_EQ(cfg.predictBandwidth, 2 * cfg.fetchBandwidth);
}

} // namespace
} // namespace fdip
