#include "obs/heartbeat.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "util/log.h"

namespace fdip
{

namespace
{

double
perKi(std::uint64_t events, std::uint64_t instrs)
{
    return instrs == 0 ? 0.0
                       : 1000.0 * static_cast<double>(events) /
                             static_cast<double>(instrs);
}

} // namespace

double
HeartbeatSample::ipc() const
{
    return dCycles == 0 ? 0.0
                        : static_cast<double>(dInstrs) /
                              static_cast<double>(dCycles);
}

double
HeartbeatSample::branchMpki() const
{
    return perKi(mispredicts, dInstrs);
}

double
HeartbeatSample::starvationPerKi() const
{
    return perKi(starvationCycles, dInstrs);
}

double
HeartbeatSample::l1iMpki() const
{
    return perKi(l1iDemandMisses, dInstrs);
}

void
appendHeartbeatJson(std::string &out, const HeartbeatSample &s)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"instrs\": %llu, \"cycles\": %llu, \"dInstrs\": %llu, "
        "\"dCycles\": %llu, \"ipc\": %.6f, \"mpki\": %.4f, "
        "\"starvationPerKi\": %.3f, \"l1iMpki\": %.4f, "
        "\"pfcFires\": %llu, \"prefetchesIssued\": %llu, "
        "\"prefetchesUseful\": %llu}",
        static_cast<unsigned long long>(s.instrs),
        static_cast<unsigned long long>(s.cycles),
        static_cast<unsigned long long>(s.dInstrs),
        static_cast<unsigned long long>(s.dCycles), s.ipc(),
        s.branchMpki(), s.starvationPerKi(), s.l1iMpki(),
        static_cast<unsigned long long>(s.pfcFires),
        static_cast<unsigned long long>(s.prefetchesIssued),
        static_cast<unsigned long long>(s.prefetchesUseful));
    out += buf;
    // The stall-attribution deltas ride every sample as a nested
    // object keyed by bucket leaf name (schema shared with the
    // report/CSV columns).
    out.back() = ',';
    out += " \"cycleBuckets\": {";
    for (std::size_t i = 0; i < kCycleBucketCount; ++i) {
        std::snprintf(buf, sizeof(buf), "%s\"%s\": %llu",
                      i == 0 ? "" : ", ", kCycleBucketName[i],
                      static_cast<unsigned long long>(s.cycleBuckets[i]));
        out += buf;
    }
    out += "}}";
}

std::uint64_t
heartbeatIntervalFromEnv()
{
    // Coordinating-thread opt-in, resolved before workers fork.
    const char *v = // NOLINT(concurrency-mt-unsafe)
        std::getenv("FDIP_HEARTBEAT");
    if (v == nullptr || *v == '\0')
        return 0;
    char *end = nullptr;
    errno = 0;
    const unsigned long long n = std::strtoull(v, &end, 10);
    if (errno != 0 || end == v || *end != '\0' || *v == '-' || n == 0) {
        fdip_warn("FDIP_HEARTBEAT='%s' is not a positive instruction "
                  "count; heartbeat disabled",
                  v);
        return 0;
    }
    return n;
}

} // namespace fdip
