/**
 * @file
 * Cycle-level event tracing in the Chrome trace-event (catapult) JSON
 * format, loadable in chrome://tracing and Perfetto. One TraceWriter
 * is scoped to one run; cycle numbers are written as microsecond
 * timestamps, so 1 us on the timeline = 1 simulated cycle.
 *
 * Overhead contract: emission sites go through the FDIP_TRACE_EVENT
 * macro on a Tracer. With the FDIP_TRACING build option OFF the macro
 * compiles to nothing; with it ON but no writer attached (the normal
 * case) each site costs one predictable branch. Tracing never touches
 * simulated state, so statistics are bit-identical with tracing on,
 * off, or compiled out — the determinism suite asserts this.
 */

#ifndef FDIP_OBS_TRACE_EVENTS_H_
#define FDIP_OBS_TRACE_EVENTS_H_

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <memory>
#include <string>

#include "util/hotpath.h"

/**
 * FDIP_ENABLE_TRACING is normally injected by the build system (the
 * FDIP_TRACING CMake option, default ON). Standalone inclusion keeps
 * the backend available.
 */
#ifndef FDIP_ENABLE_TRACING
#define FDIP_ENABLE_TRACING 1
#endif

namespace fdip
{

/** Compile-time view of the tracing configuration. */
inline constexpr bool kTracingCompiledIn = FDIP_ENABLE_TRACING != 0;

/** Simulated-thread lanes events are sorted into on the timeline. */
enum TraceTid : unsigned
{
    kTraceTidPredict = 1, ///< Prediction pipeline / FTQ.
    kTraceTidFetch = 2,   ///< Fetch pipeline / delivery.
    kTraceTidPrefetch = 3,///< Prefetch-queue drain.
    kTraceTidMemory = 4,  ///< Fills and miss lifetimes.
};

/**
 * Streams Chrome trace events to a JSON file. Not thread-safe: one
 * writer per run, used from that run's thread only. The destructor
 * (or close()) finishes the JSON document; a writer that failed to
 * open reports !ok() and swallows events.
 */
class TraceWriter
{
  public:
    /** One "args" key/value attached to an event. */
    struct Arg
    {
        const char *key;
        std::uint64_t value;
    };

    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    /** One writer per run, pinned to one owner: Tracer handles borrow
     *  raw pointers to it, so copying *and* moving are compile errors
     *  (pinned by tests/obs_ownership_test.cc). */
    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;
    TraceWriter(TraceWriter &&) = delete;
    TraceWriter &operator=(TraceWriter &&) = delete;

    [[nodiscard]] bool ok() const { return file_ != nullptr; }
    [[nodiscard]] const std::string &path() const { return path_; }
    [[nodiscard]] std::uint64_t eventsWritten() const { return events_; }

    /** Finishes the JSON document and closes the file. */
    void close();

    /** An instantaneous event (ph "i"). */
    void instant(const char *name, const char *category, unsigned tid,
                 std::uint64_t ts_cycles,
                 std::initializer_list<Arg> args = {});

    /** Begin/end of an async span (ph "b"/"e"); @p id pairs them. */
    void asyncBegin(const char *name, const char *category,
                    std::uint64_t id, std::uint64_t ts_cycles,
                    std::initializer_list<Arg> args = {});
    void asyncEnd(const char *name, const char *category,
                  std::uint64_t id, std::uint64_t ts_cycles);

    /** A counter track sample (ph "C"). */
    void counter(const char *name, std::uint64_t ts_cycles,
                 const char *series, std::uint64_t value);

    /** Names the lane @p tid on the timeline (metadata event). */
    void threadName(unsigned tid, const char *name);

  private:
    struct FileCloser
    {
        void operator()(std::FILE *f) const { std::fclose(f); }
    };

    void emit(char ph, const char *name, const char *category,
              unsigned tid, std::uint64_t ts_cycles, bool with_id,
              std::uint64_t id, std::initializer_list<Arg> args);

    std::string path_;
    std::unique_ptr<std::FILE, FileCloser> file_;
    std::uint64_t events_ = 0;
    bool first_ = true;
};

/**
 * The per-run tracing handle components emit through. Holds either
 * nothing (tracing disabled: every site is one branch) or a borrowed
 * TraceWriter. When tracing is compiled out the attach point remains
 * but on() is constexpr-false and FDIP_TRACE_EVENT vanishes.
 */
class Tracer
{
  public:
#if FDIP_ENABLE_TRACING
    [[nodiscard]] FDIP_HOT_PATH bool on() const { return sink_ != nullptr; }
    [[nodiscard]] FDIP_HOT_PATH TraceWriter *writer() const { return sink_; }
    void attach(TraceWriter *w) { sink_ = w; }

  private:
    TraceWriter *sink_ = nullptr;
#else
    [[nodiscard]] FDIP_HOT_PATH constexpr bool on() const { return false; }
    [[nodiscard]] FDIP_HOT_PATH constexpr TraceWriter *writer() const { return nullptr; }
    void attach(TraceWriter *) {}
#endif
};

} // namespace fdip

/**
 * Emission macro: FDIP_TRACE_EVENT(tracer, instant("pfc_fire", "pfc",
 * kTraceTidFetch, now, {{"pc", pc}})). Compiles to nothing when the
 * tracing backend is configured out.
 */
#if FDIP_ENABLE_TRACING
#define FDIP_TRACE_EVENT(tracer, ...)                                         \
    do {                                                                      \
        if ((tracer).on())                                                    \
            (tracer).writer()->__VA_ARGS__;                                   \
    } while (false)
#else
#define FDIP_TRACE_EVENT(tracer, ...)                                         \
    do {                                                                      \
    } while (false)
#endif

#endif // FDIP_OBS_TRACE_EVENTS_H_
