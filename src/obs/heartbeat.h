/**
 * @file
 * Interval heartbeat telemetry: every N committed (post-warmup)
 * instructions the core snapshots its statistics and records one
 * sample carrying both the cumulative position and the delta-derived
 * interval metrics (IPC, MPKI, starvation/KI, L1I MPKI, PFC fires).
 * The per-run time series is what phase plots, warmup-transient
 * analysis, and exposed-miss breakdowns are built from.
 *
 * Sampling never mutates simulated state, so runs are bit-identical
 * with the heartbeat on or off.
 */

#ifndef FDIP_OBS_HEARTBEAT_H_
#define FDIP_OBS_HEARTBEAT_H_

#include <cstdint>
#include <string>

#include "obs/cycle_account.h"

namespace fdip
{

/**
 * One heartbeat sample. `instrs`/`cycles` are cumulative since the end
 * of warmup; every other field describes only the interval since the
 * previous sample.
 */
struct HeartbeatSample
{
    /// @{ Cumulative position (post-warmup).
    std::uint64_t instrs = 0;
    std::uint64_t cycles = 0;
    /// @}

    /// @{ Interval deltas.
    std::uint64_t dInstrs = 0;
    std::uint64_t dCycles = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t starvationCycles = 0;
    std::uint64_t l1iDemandMisses = 0;
    std::uint64_t pfcFires = 0;
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t prefetchesUseful = 0;
    /** Cycle-accounting bucket deltas, CycleBucket order: where this
     *  interval's fetch slots went. Sums exactly to dCycles (the
     *  per-tick conservation law restricted to the interval). */
    std::uint64_t cycleBuckets[kCycleBucketCount] = {};
    /// @}

    /// @{ Interval-derived metrics.
    [[nodiscard]] double ipc() const;
    [[nodiscard]] double branchMpki() const;
    [[nodiscard]] double starvationPerKi() const;
    [[nodiscard]] double l1iMpki() const;
    /// @}
};

/**
 * Appends @p s to @p out as one JSON object (no trailing newline).
 * Shared by the suite-report embedding and the JSONL writer so both
 * emit the same schema.
 */
void appendHeartbeatJson(std::string &out, const HeartbeatSample &s);

/**
 * Heartbeat interval from the FDIP_HEARTBEAT environment variable:
 * committed instructions between samples. Unset/empty means disabled
 * (0); garbage, zero, or negative values warn and disable.
 */
std::uint64_t heartbeatIntervalFromEnv();

} // namespace fdip

#endif // FDIP_OBS_HEARTBEAT_H_
