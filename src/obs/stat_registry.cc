#include "obs/stat_registry.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/hotpath.h"
#include "util/log.h"

namespace fdip
{

// ---------------------------------------------------------------------
// StatHistogram.
// ---------------------------------------------------------------------

StatHistogram::StatHistogram(unsigned num_buckets,
                             std::uint64_t bucket_width)
    : buckets_(num_buckets, 0), bucketWidth_(bucket_width)
{
    if (num_buckets == 0 || bucket_width == 0)
        fdip_fatal("histogram needs >= 1 bucket of width >= 1 "
                   "(got %u x %llu)",
                   num_buckets,
                   static_cast<unsigned long long>(bucket_width));
}

FDIP_HOT_PATH void
StatHistogram::add(std::uint64_t value)
{
    // Width-1 histograms (e.g. the per-tick FTQ occupancy) sit on the
    // simulator's hot path; skip the 64-bit division for them.
    const std::uint64_t scaled =
        bucketWidth_ == 1 ? value : value / bucketWidth_;
    const std::uint64_t b =
        std::min<std::uint64_t>(scaled, buckets_.size() - 1);
    ++buckets_[static_cast<std::size_t>(b)];
    ++count_;
    sum_ += value;
    if (count_ == 1 || value < min_)
        min_ = value;
    if (value > max_)
        max_ = value;
}

double
StatHistogram::mean() const
{
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
}

void
StatHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = sum_ = min_ = max_ = 0;
}

// ---------------------------------------------------------------------
// StatRegistry.
// ---------------------------------------------------------------------

void
StatRegistry::insert(const std::string &name, Stat stat)
{
    if (name.empty())
        fdip_fatal("cannot register a stat with an empty name");
    const auto [it, inserted] = stats_.emplace(name, std::move(stat));
    (void)it;
    if (!inserted)
        fdip_fatal("duplicate stat name '%s'", name.c_str());
}

void
StatRegistry::addCounter(const std::string &name, CounterFn fn,
                         std::string description)
{
    Stat s;
    s.kind = StatKind::kCounter;
    s.counter = std::move(fn);
    s.description = std::move(description);
    insert(name, std::move(s));
}

void
StatRegistry::addDerived(const std::string &name, DerivedFn fn,
                         std::string description)
{
    Stat s;
    s.kind = StatKind::kDerived;
    s.derived = std::move(fn);
    s.description = std::move(description);
    insert(name, std::move(s));
}

void
StatRegistry::addHistogram(const std::string &name,
                           const StatHistogram *hist,
                           std::string description)
{
    if (hist == nullptr)
        fdip_fatal("stat '%s': null histogram", name.c_str());
    Stat s;
    s.kind = StatKind::kHistogram;
    s.hist = hist;
    s.description = std::move(description);
    insert(name, std::move(s));
}

bool
StatRegistry::contains(const std::string &name) const
{
    return stats_.find(name) != stats_.end();
}

const StatRegistry::Stat &
StatRegistry::find(const std::string &name) const
{
    const auto it = stats_.find(name);
    if (it == stats_.end())
        fdip_fatal("unknown stat '%s'", name.c_str());
    return it->second;
}

StatKind
StatRegistry::kindOf(const std::string &name) const
{
    return find(name).kind;
}

std::uint64_t
StatRegistry::counterValue(const std::string &name) const
{
    const Stat &s = find(name);
    if (s.kind != StatKind::kCounter)
        fdip_fatal("stat '%s' is not a counter", name.c_str());
    return s.counter();
}

double
StatRegistry::value(const std::string &name) const
{
    const Stat &s = find(name);
    switch (s.kind) {
      case StatKind::kCounter:
        return static_cast<double>(s.counter());
      case StatKind::kDerived:
        return s.derived();
      case StatKind::kHistogram:
        return s.hist->mean();
    }
    return 0.0;
}

const std::string &
StatRegistry::description(const std::string &name) const
{
    return find(name).description;
}

std::vector<std::string>
StatRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(stats_.size());
    for (const auto &[name, stat] : stats_) {
        (void)stat;
        out.push_back(name);
    }
    return out;
}

std::vector<std::string>
StatRegistry::namesWithPrefix(const std::string &prefix) const
{
    std::vector<std::string> out;
    for (const auto &[name, stat] : stats_) {
        (void)stat;
        if (name == prefix ||
            (name.size() > prefix.size() &&
             name.compare(0, prefix.size(), prefix) == 0 &&
             name[prefix.size()] == '.')) {
            out.push_back(name);
        }
    }
    return out;
}

std::vector<StatSample>
StatRegistry::snapshot() const
{
    std::vector<StatSample> out;
    out.reserve(stats_.size());
    for (const auto &[name, stat] : stats_) {
        switch (stat.kind) {
          case StatKind::kCounter: {
            StatSample s;
            s.name = name;
            s.kind = StatKind::kCounter;
            s.intValue = stat.counter();
            s.value = static_cast<double>(s.intValue);
            out.push_back(std::move(s));
            break;
          }
          case StatKind::kDerived: {
            StatSample s;
            s.name = name;
            s.kind = StatKind::kDerived;
            s.value = stat.derived();
            out.push_back(std::move(s));
            break;
          }
          case StatKind::kHistogram: {
            const StatHistogram &h = *stat.hist;
            const struct
            {
                const char *suffix;
                StatKind kind;
                std::uint64_t intValue;
                double value;
            } parts[] = {
                {".count", StatKind::kCounter, h.count(),
                 static_cast<double>(h.count())},
                {".min", StatKind::kCounter, h.min(),
                 static_cast<double>(h.min())},
                {".max", StatKind::kCounter, h.max(),
                 static_cast<double>(h.max())},
                {".mean", StatKind::kDerived, 0, h.mean()},
            };
            for (const auto &p : parts) {
                StatSample s;
                s.name = name + p.suffix;
                s.kind = p.kind;
                s.intValue = p.intValue;
                s.value = p.value;
                out.push_back(std::move(s));
            }
            break;
          }
        }
    }
    return out;
}

namespace
{

struct FileCloser
{
    void operator()(std::FILE *f) const { std::fclose(f); }
};

} // namespace

void
StatRegistry::writeJson(std::FILE *f) const
{
    std::fprintf(f, "{\n  \"stats\": {\n");
    const auto samples = snapshot();
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const StatSample &s = samples[i];
        if (s.kind == StatKind::kCounter) {
            std::fprintf(f, "    \"%s\": %llu", s.name.c_str(),
                         static_cast<unsigned long long>(s.intValue));
        } else {
            std::fprintf(f, "    \"%s\": %.6f", s.name.c_str(), s.value);
        }
        std::fprintf(f, "%s\n", i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
}

bool
StatRegistry::writeJson(const std::string &path) const
{
    std::unique_ptr<std::FILE, FileCloser> f(
        std::fopen(path.c_str(), "w"));
    if (!f)
        return false;
    writeJson(f.get());
    return true;
}

} // namespace fdip
