/**
 * @file
 * Per-run observability options, carried inside CoreConfig so they
 * flow through the serial and parallel experiment engines unchanged.
 * None of these affect simulated state: any combination produces
 * bit-identical SimStats.
 */

#ifndef FDIP_OBS_OBS_CONFIG_H_
#define FDIP_OBS_OBS_CONFIG_H_

#include <cstdint>
#include <string>

namespace fdip
{

/** Observability knobs for one run. */
struct ObsConfig
{
    /** Committed instructions between heartbeat samples; 0 = off. */
    std::uint64_t heartbeatInterval = 0;

    /** Ticks between host tick-phase profiler samples; 0 = off.
     *  Host telemetry only (obs/tick_profiler.h): never touches
     *  simulated state. */
    std::uint64_t profileInterval = 0;

    /**
     * Base path for the Chrome-trace file; empty = off. Unless
     * traceExactPath is set, the run's label/workload are woven into
     * the filename so campaign runs do not clobber each other.
     */
    std::string tracePath;

    /** Campaign label woven into trace filenames (set by the engine). */
    std::string traceLabel;

    /** Use tracePath verbatim (single-run drivers). */
    bool traceExactPath = false;

    /** Build a StatRegistry over the core after the run and keep its
     *  snapshot in the RunResult (for --dump-stats style reports). */
    bool collectStats = false;
};

/**
 * Fills unset fields from the environment: FDIP_HEARTBEAT (interval),
 * FDIP_PROFILE (tick-profiler sampling interval), and FDIP_TRACE
 * (trace path). Explicitly-set fields win. Called once per
 * suite/campaign on the coordinating thread, never from workers.
 */
ObsConfig resolveObsEnv(ObsConfig base);

/**
 * The trace path for one run: @p base with label/workload woven in
 * before the extension ("out.json" -> "out.FDP.srv-a.json"), path
 * separators in the parts replaced. Exact-path configs return @p base
 * unchanged.
 */
std::string tracePathForRun(const ObsConfig &obs,
                            const std::string &workload);

} // namespace fdip

#endif // FDIP_OBS_OBS_CONFIG_H_
