#include "obs/trace_events.h"

#include "util/log.h"

namespace fdip
{

TraceWriter::TraceWriter(const std::string &path)
    : path_(path), file_(std::fopen(path.c_str(), "w"))
{
    if (!file_) {
        fdip_warn("cannot open trace file '%s'; tracing disabled",
                  path.c_str());
        return;
    }
    std::fprintf(file_.get(),
                 "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [");
    threadName(kTraceTidPredict, "predict/FTQ");
    threadName(kTraceTidFetch, "fetch");
    threadName(kTraceTidPrefetch, "prefetch");
    threadName(kTraceTidMemory, "memory");
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::close()
{
    if (!file_)
        return;
    std::fprintf(file_.get(), "\n]}\n");
    file_.reset();
}

void
TraceWriter::emit(char ph, const char *name, const char *category,
                  unsigned tid, std::uint64_t ts_cycles, bool with_id,
                  std::uint64_t id, std::initializer_list<Arg> args)
{
    if (!file_)
        return;
    std::FILE *f = file_.get();
    std::fprintf(f, "%s\n{\"ph\": \"%c\", \"name\": \"%s\", ",
                 first_ ? "" : ",", ph, name);
    first_ = false;
    if (category != nullptr)
        std::fprintf(f, "\"cat\": \"%s\", ", category);
    if (with_id)
        std::fprintf(f, "\"id\": \"%llx\", ",
                     static_cast<unsigned long long>(id));
    std::fprintf(f, "\"pid\": 1, \"tid\": %u, \"ts\": %llu", tid,
                 static_cast<unsigned long long>(ts_cycles));
    if (args.size() > 0) {
        std::fprintf(f, ", \"args\": {");
        bool first_arg = true;
        for (const Arg &a : args) {
            std::fprintf(f, "%s\"%s\": %llu", first_arg ? "" : ", ",
                         a.key, static_cast<unsigned long long>(a.value));
            first_arg = false;
        }
        std::fprintf(f, "}");
    }
    std::fprintf(f, "}");
    ++events_;
}

void
TraceWriter::instant(const char *name, const char *category, unsigned tid,
                     std::uint64_t ts_cycles,
                     std::initializer_list<Arg> args)
{
    emit('i', name, category, tid, ts_cycles, false, 0, args);
}

void
TraceWriter::asyncBegin(const char *name, const char *category,
                        std::uint64_t id, std::uint64_t ts_cycles,
                        std::initializer_list<Arg> args)
{
    emit('b', name, category, kTraceTidMemory, ts_cycles, true, id, args);
}

void
TraceWriter::asyncEnd(const char *name, const char *category,
                      std::uint64_t id, std::uint64_t ts_cycles)
{
    emit('e', name, category, kTraceTidMemory, ts_cycles, true, id, {});
}

void
TraceWriter::counter(const char *name, std::uint64_t ts_cycles,
                     const char *series, std::uint64_t value)
{
    if (!file_)
        return;
    std::FILE *f = file_.get();
    std::fprintf(f,
                 "%s\n{\"ph\": \"C\", \"name\": \"%s\", \"pid\": 1, "
                 "\"tid\": %u, \"ts\": %llu, \"args\": {\"%s\": %llu}}",
                 first_ ? "" : ",", name, kTraceTidPredict,
                 static_cast<unsigned long long>(ts_cycles), series,
                 static_cast<unsigned long long>(value));
    first_ = false;
    ++events_;
}

void
TraceWriter::threadName(unsigned tid, const char *name)
{
    if (!file_)
        return;
    std::fprintf(file_.get(),
                 "%s\n{\"ph\": \"M\", \"name\": \"thread_name\", "
                 "\"pid\": 1, \"tid\": %u, "
                 "\"args\": {\"name\": \"%s\"}}",
                 first_ ? "" : ",", tid, name);
    first_ = false;
    ++events_;
}

} // namespace fdip
