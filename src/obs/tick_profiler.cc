#include "obs/tick_profiler.h"
#include "util/hotpath.h"

#include <chrono>

namespace fdip
{

// The simulator's single host-clock read outside experiment.cc's
// whole-run timer. Host telemetry only: the value never reaches
// SimStats or any model structure, so profiled and unprofiled runs
// stay architecturally bit-identical (the determinism lint allowlists
// exactly this file for wall-clock use).
FDIP_HOT_PATH std::uint64_t
TickProfiler::hostNowNs() noexcept
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace fdip
