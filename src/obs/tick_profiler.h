/**
 * @file
 * Host-side tick-phase self-profiler: attributes the simulator's own
 * wall-clock time to pipeline phases (predict, fetch/I-cache,
 * prefetch drain, backend, observability) so "make a run as fast as
 * the hardware allows" starts from a ranked target list instead of a
 * single instrs/s scalar.
 *
 * Design constraints, in order:
 *
 *  - **Architectural silence.** The profiler reads the host clock and
 *    nothing else; it never touches SimStats or any model structure.
 *    Profiling on vs. off is bit-identical architecturally
 *    (sim_determinism_test pins this).
 *  - **Hot-path compliance.** All per-tick methods are allocation-,
 *    lock- and I/O-free: fixed arrays, a branch when disarmed. The
 *    host clock is read only on *sampled* ticks (every `interval`
 *    ticks, CoreConfig::obs.profileInterval / FDIP_PROFILE), so the
 *    steady-state cost is one predictable branch per phase boundary.
 *  - **One clock site.** The only wall-clock read lives in
 *    tick_profiler.cc, allowlisted by the determinism lint the same
 *    way experiment.cc's throughput timer is.
 *
 * Core::run brackets the frontend/backend/observability sections;
 * Frontend::tick brackets its predict, I-cache, and prefetch-drain
 * sub-phases inside the frontend section. The frontend's *exclusive*
 * time (FTQ bookkeeping, invariant checks, tracing) is recovered at
 * reporting time by subtracting the nested phases.
 */

#ifndef FDIP_OBS_TICK_PROFILER_H_
#define FDIP_OBS_TICK_PROFILER_H_

#include <cstddef>
#include <cstdint>

#include "util/hotpath.h"
#include "util/state.h"

namespace fdip
{

/** Profiled phases of one simulator tick. */
enum class TickPhase : std::uint8_t
{
    kFrontend = 0, ///< Frontend::tick (includes the three below).
    kBpu,          ///< Predict pipeline (Frontend::predictCycle).
    kIcache,       ///< Fills + fetch (processFills/fetchCycle).
    kPrefetcher,   ///< Prefetch-queue drain.
    kBackend,      ///< Backend::tick.
    kObs,          ///< Heartbeat + cycle-accounting block in Core::run.
};

inline constexpr std::size_t kTickPhaseCount = 6;

/** Reporting-order names (frontend reported exclusive of nested). */
inline constexpr const char *kTickPhaseName[kTickPhaseCount] = {
    "frontend", "bpu", "icache", "prefetcher", "backend", "obs",
};

/** Accumulated result of one (or, after merge(), many) runs. */
struct TickProfile
{
    std::uint64_t phaseNs[kTickPhaseCount] = {};
    std::uint64_t sampledTicks = 0;
    std::uint64_t totalTicks = 0;
    std::uint64_t interval = 0; ///< 0: profiling was disabled.

    /** Frontend time minus its nested bpu/icache/prefetcher phases. */
    [[nodiscard]] std::uint64_t
    frontendExclusiveNs() const
    {
        const std::uint64_t nested =
            phaseNs[static_cast<std::size_t>(TickPhase::kBpu)] +
            phaseNs[static_cast<std::size_t>(TickPhase::kIcache)] +
            phaseNs[static_cast<std::size_t>(TickPhase::kPrefetcher)];
        const std::uint64_t total =
            phaseNs[static_cast<std::size_t>(TickPhase::kFrontend)];
        return total > nested ? total - nested : 0;
    }

    /** @p phase's time with kFrontend made exclusive (disjoint
     *  phases; the six values partition the sampled time). */
    [[nodiscard]] std::uint64_t
    exclusiveNs(TickPhase phase) const
    {
        return phase == TickPhase::kFrontend
                   ? frontendExclusiveNs()
                   : phaseNs[static_cast<std::size_t>(phase)];
    }

    /** Sum of the disjoint per-phase times. */
    [[nodiscard]] std::uint64_t
    totalExclusiveNs() const
    {
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < kTickPhaseCount; ++i)
            sum += exclusiveNs(static_cast<TickPhase>(i));
        return sum;
    }

    /** @p phase's fraction of the sampled time (sums to 1 across
     *  phases whenever any tick was sampled). */
    [[nodiscard]] double
    fraction(TickPhase phase) const
    {
        const std::uint64_t total = totalExclusiveNs();
        return total == 0 ? 0.0
                          : static_cast<double>(exclusiveNs(phase)) /
                                static_cast<double>(total);
    }

    /** Folds another run's profile into this one (bench aggregation
     *  across campaign runs; intervals are expected to match). */
    void
    merge(const TickProfile &o)
    {
        for (std::size_t i = 0; i < kTickPhaseCount; ++i)
            phaseNs[i] += o.phaseNs[i];
        sampledTicks += o.sampledTicks;
        totalTicks += o.totalTicks;
        if (interval == 0)
            interval = o.interval;
    }
};

/**
 * The per-core profiler. All methods are safe to call on every tick;
 * with interval 0 (disabled) or on non-sampled ticks they reduce to a
 * branch. Not thread-safe by design: each Core owns one, exactly like
 * its Tracer.
 */
class TickProfiler
{
  public:
    /** @p interval 0 disables sampling entirely. */
    explicit TickProfiler(std::uint64_t interval) : profile_{}
    {
        profile_.interval = interval;
    }

    /** Marks the start of tick @p tick; decides whether this tick is
     *  sampled. */
    FDIP_HOT_PATH void
    beginTick(std::uint64_t tick) noexcept
    {
        ++profile_.totalTicks;
        sampling_ =
            profile_.interval != 0 && tick % profile_.interval == 0;
        if (sampling_)
            ++profile_.sampledTicks;
    }

    /** Opens @p phase (no-op unless this tick is sampled). */
    FDIP_HOT_PATH void
    begin(TickPhase phase) noexcept
    {
        if (sampling_)
            startNs_[static_cast<std::size_t>(phase)] = hostNowNs();
    }

    /** Closes @p phase (no-op unless this tick is sampled). */
    FDIP_HOT_PATH void
    end(TickPhase phase) noexcept
    {
        if (sampling_) {
            const auto i = static_cast<std::size_t>(phase);
            profile_.phaseNs[i] += hostNowNs() - startNs_[i];
        }
    }

    [[nodiscard]] bool sampling() const noexcept { return sampling_; }
    [[nodiscard]] bool
    enabled() const noexcept
    {
        return profile_.interval != 0;
    }
    [[nodiscard]] const TickProfile &profile() const { return profile_; }

  private:
    /** Monotonic host clock in nanoseconds — the profiler's single
     *  wall-clock site, defined in tick_profiler.cc (determinism-lint
     *  allowlisted there; nothing it returns feeds simulated state). */
    static std::uint64_t hostNowNs() noexcept;

    FDIP_STATE_HOST TickProfile profile_;
    FDIP_STATE_HOST std::uint64_t startNs_[kTickPhaseCount] = {};
    FDIP_STATE_HOST bool sampling_ = false;
};

} // namespace fdip

#endif // FDIP_OBS_TICK_PROFILER_H_
