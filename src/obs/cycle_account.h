/**
 * @file
 * Top-down fetch-slot cycle accounting: every post-warmup cycle is
 * charged to exactly one leaf bucket, so the aggregate starvation
 * number the paper reports (decode queue fed below fetch bandwidth)
 * decomposes into *why* the slot was lost — the same breakdown
 * Asheim et al.'s "FDIP Revisited" and MANA's fetch-stall figures use
 * to argue where FDIP's remaining headroom lives.
 *
 * Charge policy (one-hot, fixed precedence; Core::run applies it once
 * per tick after the frontend and backend have both ticked):
 *
 *  1. Slot not starved (decode queue held >= fetch bandwidth):
 *       backend.backpressure  if a full ROB blocked dispatch, else
 *       base.committed        — the frontend kept the machine fed.
 *  2. Starved, redirect bubble active   -> recovery.flush_restart
 *  3. Starved, on a BTB-miss wrong path -> fetch.ftq_empty_btb_miss
 *  4. Starved, FTQ head awaiting a fill -> fetch.l1i_miss
 *  5. Starved, head awaiting the ITLB   -> fetch.itlb_miss
 *  6. Starved, inside a redirect's FTQ-refill shadow
 *                                       -> fetch.ftq_empty_redirect
 *  7. Starved, none of the above        -> fetch.pipeline
 *
 * Wrong-path attribution (step 3 before 4/5) is deliberate: while the
 * frontend runs down a path a BTB miss sent it on, any fill the head
 * waits for is pollution, and the root cause is the BTB, not the L1I.
 *
 * Two conservation laws bind the buckets (FDIP_CHECKed every tick in
 * Core::run and again structurally in checkSimStats): the six starved
 * buckets sum to SimStats::starvationCycles, and all eight sum to
 * SimStats::cycles. The warmup-boundary tick is counted in `cycles`
 * but its starvation increment is discarded by the stats reset, so
 * Core::run charges that single tick to base.committed by fiat —
 * keeping both laws exact without changing any pre-existing counter.
 *
 * The buckets are architectural counters (deterministic functions of
 * simulated state), so they ride campaign records and spool caches
 * like every other SimStats field.
 *
 * This header is the core-type-free half of the accounting: the
 * bucket taxonomy, the classifier, and the leaf names. The SimStats
 * field binding (which counter each bucket charges, the hot-path
 * increment, the `core.cycles.*` registration) lives in
 * core/cycle_stats.h so that obs — which sits below core in the
 * module layering — never includes upward.
 */

#ifndef FDIP_OBS_CYCLE_ACCOUNT_H_
#define FDIP_OBS_CYCLE_ACCOUNT_H_

#include <cstddef>
#include <cstdint>

#include "util/hotpath.h"

namespace fdip
{

/** The leaf buckets, in charge-table order. */
enum class CycleBucket : std::uint8_t
{
    kBaseCommitted = 0,
    kBackendBackpressure,
    kRecoveryFlushRestart,
    kFetchL1iMiss,
    kFetchItlbMiss,
    kFetchFtqEmptyBtbMiss,
    kFetchFtqEmptyRedirect,
    kFetchPipeline,
};

inline constexpr std::size_t kCycleBucketCount = 8;

/**
 * Everything the classifier consumes, sampled once per tick after
 * both pipeline halves ran. Frontend::cycleSignals() fills the fetch
 * side; Core::run adds the backend's starved/dispatch-blocked view.
 */
struct CycleSignals
{
    bool starved = false;        ///< Decode queue < fetch bandwidth.
    bool dispatchBlocked = false; ///< Full ROB refused a dispatch.
    bool flushRestart = false;   ///< Redirect bubble stalls predict.
    bool btbMissWrongPath = false; ///< Undetected taken branch diverged.
    bool itlbWait = false;       ///< FTQ head waiting on an ITLB refill.
    bool l1iWait = false;        ///< FTQ head waiting on an L1I fill.
    bool redirectShadow = false; ///< Within a redirect's refill window.
};

/** Maps one tick's signals to its unique bucket (precedence above). */
[[nodiscard]] FDIP_HOT_PATH constexpr CycleBucket
classifyCycle(const CycleSignals &sig) noexcept
{
    if (!sig.starved) {
        return sig.dispatchBlocked ? CycleBucket::kBackendBackpressure
                                   : CycleBucket::kBaseCommitted;
    }
    if (sig.flushRestart)
        return CycleBucket::kRecoveryFlushRestart;
    if (sig.btbMissWrongPath)
        return CycleBucket::kFetchFtqEmptyBtbMiss;
    if (sig.l1iWait)
        return CycleBucket::kFetchL1iMiss;
    if (sig.itlbWait)
        return CycleBucket::kFetchItlbMiss;
    if (sig.redirectShadow)
        return CycleBucket::kFetchFtqEmptyRedirect;
    return CycleBucket::kFetchPipeline;
}

/** Bucket leaf names, in CycleBucket order. The StatRegistry paths
 *  (and the stat-dump keys) are these prefixed with `core.cycles.`;
 *  heartbeats and report columns use them bare. */
inline constexpr const char *kCycleBucketName[kCycleBucketCount] = {
    "base.committed",
    "backend.backpressure",
    "recovery.flush_restart",
    "fetch.l1i_miss",
    "fetch.itlb_miss",
    "fetch.ftq_empty_btb_miss",
    "fetch.ftq_empty_redirect",
    "fetch.pipeline",
};

} // namespace fdip

#endif // FDIP_OBS_CYCLE_ACCOUNT_H_
