#include "obs/obs_config.h"

#include <cerrno>
#include <cstdlib>

#include "obs/heartbeat.h"
#include "util/log.h"

namespace fdip
{

namespace
{

/** FDIP_PROFILE: ticks between profiler samples; unset/empty = off,
 *  garbage warns and disables (same contract as FDIP_HEARTBEAT). */
std::uint64_t
profileIntervalFromEnv()
{
    // Coordinating-thread opt-in, resolved before workers fork.
    const char *v = // NOLINT(concurrency-mt-unsafe)
        std::getenv("FDIP_PROFILE");
    if (v == nullptr || *v == '\0')
        return 0;
    char *end = nullptr;
    errno = 0;
    const unsigned long long n = std::strtoull(v, &end, 10);
    if (errno != 0 || end == v || *end != '\0' || *v == '-' || n == 0) {
        fdip_warn("FDIP_PROFILE='%s' is not a positive tick interval; "
                  "profiling disabled",
                  v);
        return 0;
    }
    return n;
}

/** Makes @p s safe to embed in a filename. */
std::string
sanitizePathPart(const std::string &s)
{
    std::string out = s;
    for (char &c : out) {
        if (c == '/' || c == '\\' || c == ' ')
            c = '_';
    }
    return out;
}

} // namespace

ObsConfig
resolveObsEnv(ObsConfig base)
{
    if (base.heartbeatInterval == 0)
        base.heartbeatInterval = heartbeatIntervalFromEnv();
    if (base.profileInterval == 0)
        base.profileInterval = profileIntervalFromEnv();
    if (base.tracePath.empty()) {
        // Coordinating-thread opt-in, resolved before workers fork.
        const char *v = // NOLINT(concurrency-mt-unsafe)
            std::getenv("FDIP_TRACE");
        if (v != nullptr && *v != '\0')
            base.tracePath = v;
    }
    return base;
}

std::string
tracePathForRun(const ObsConfig &obs, const std::string &workload)
{
    if (obs.tracePath.empty() || obs.traceExactPath)
        return obs.tracePath;

    std::string infix;
    if (!obs.traceLabel.empty())
        infix += "." + sanitizePathPart(obs.traceLabel);
    if (!workload.empty())
        infix += "." + sanitizePathPart(workload);
    if (infix.empty())
        return obs.tracePath;

    const std::size_t slash = obs.tracePath.find_last_of('/');
    const std::size_t dot = obs.tracePath.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return obs.tracePath + infix;
    }
    return obs.tracePath.substr(0, dot) + infix +
           obs.tracePath.substr(dot);
}

} // namespace fdip
