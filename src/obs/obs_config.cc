#include "obs/obs_config.h"

#include <cstdlib>

#include "obs/heartbeat.h"

namespace fdip
{

namespace
{

/** Makes @p s safe to embed in a filename. */
std::string
sanitizePathPart(const std::string &s)
{
    std::string out = s;
    for (char &c : out) {
        if (c == '/' || c == '\\' || c == ' ')
            c = '_';
    }
    return out;
}

} // namespace

ObsConfig
resolveObsEnv(ObsConfig base)
{
    if (base.heartbeatInterval == 0)
        base.heartbeatInterval = heartbeatIntervalFromEnv();
    if (base.tracePath.empty()) {
        // Coordinating-thread opt-in, resolved before workers fork.
        const char *v = // NOLINT(concurrency-mt-unsafe)
            std::getenv("FDIP_TRACE");
        if (v != nullptr && *v != '\0')
            base.tracePath = v;
    }
    return base;
}

std::string
tracePathForRun(const ObsConfig &obs, const std::string &workload)
{
    if (obs.tracePath.empty() || obs.traceExactPath)
        return obs.tracePath;

    std::string infix;
    if (!obs.traceLabel.empty())
        infix += "." + sanitizePathPart(obs.traceLabel);
    if (!workload.empty())
        infix += "." + sanitizePathPart(workload);
    if (infix.empty())
        return obs.tracePath;

    const std::size_t slash = obs.tracePath.find_last_of('/');
    const std::size_t dot = obs.tracePath.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return obs.tracePath + infix;
    }
    return obs.tracePath.substr(0, dot) + infix +
           obs.tracePath.substr(dot);
}

} // namespace fdip
