/**
 * @file
 * The hierarchical statistics registry: every simulated component
 * registers named counters, derived formulas, and histograms under a
 * dotted path ("frontend.ftq.occupancy", "bpu.btb.hits"), so any run
 * can be inspected uniformly — dumped as JSON, queried by name, or
 * sliced by prefix — without per-component plumbing.
 *
 * Ownership and threading: a StatRegistry is scoped to one run (one
 * Core). Registered getters capture pointers into live components and
 * must not outlive them; snapshot() materializes plain values that
 * may. Runs executing in parallel each build their own registry, so no
 * synchronization is needed or provided. The type enforces the rule:
 * a registry is non-copyable and non-movable (copying would alias the
 * captured component pointers across owners), and the whole query
 * surface is `[[nodiscard]] const` — observation code can read
 * through a registry but cannot mutate simulated state with it.
 */

#ifndef FDIP_OBS_STAT_REGISTRY_H_
#define FDIP_OBS_STAT_REGISTRY_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/state.h"

namespace fdip
{

/** What a registered statistic is. */
enum class StatKind : std::uint8_t
{
    kCounter,   ///< Monotonic 64-bit event count.
    kDerived,   ///< Formula over other state (a double).
    kHistogram, ///< Bucketed distribution.
};

/**
 * A fixed-shape histogram: @p numBuckets linear buckets of
 * @p bucketWidth, with values past the last bucket clamped into it.
 * Tracks count/sum/min/max alongside the buckets so means and tails
 * survive the clamping.
 */
class StatHistogram
{
  public:
    StatHistogram(unsigned num_buckets, std::uint64_t bucket_width);

    void add(std::uint64_t value);

    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] std::uint64_t sum() const { return sum_; }
    /** Smallest recorded value (0 when empty). */
    [[nodiscard]] std::uint64_t min() const
    {
        return count_ == 0 ? 0 : min_;
    }
    [[nodiscard]] std::uint64_t max() const { return max_; }
    [[nodiscard]] double mean() const;

    [[nodiscard]] unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets_.size());
    }
    [[nodiscard]] std::uint64_t bucketWidth() const { return bucketWidth_; }
    [[nodiscard]] std::uint64_t bucketCount(unsigned i) const
    {
        return buckets_[i];
    }

    void reset();

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t bucketWidth_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/** One materialized statistic value (see StatRegistry::snapshot). */
struct StatSample
{
    std::string name;
    StatKind kind = StatKind::kCounter;
    std::uint64_t intValue = 0; ///< Valid for kCounter.
    double value = 0.0;         ///< Valid for every kind.
};

/**
 * The registry proper. Names are dotted component paths; registering
 * the same name twice is a configuration bug and fails fatally.
 */
class StatRegistry
{
  public:
    using CounterFn = std::function<std::uint64_t()>;
    using DerivedFn = std::function<double()>;

    StatRegistry() = default;

    /** One registry per run, owned by whoever built it: copying or
     *  moving would alias the captured component pointers across
     *  owners, so both are compile errors (pinned by
     *  tests/obs_ownership_test.cc). */
    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;
    StatRegistry(StatRegistry &&) = delete;
    StatRegistry &operator=(StatRegistry &&) = delete;

    /** Registers a counter getter under @p name. */
    void addCounter(const std::string &name, CounterFn fn,
                    std::string description = {});

    /** Registers a derived formula under @p name. */
    void addDerived(const std::string &name, DerivedFn fn,
                    std::string description = {});

    /** Registers a histogram (borrowed; must outlive the registry). */
    void addHistogram(const std::string &name, const StatHistogram *hist,
                      std::string description = {});

    [[nodiscard]] bool contains(const std::string &name) const;
    [[nodiscard]] std::size_t size() const { return stats_.size(); }

    /** Kind of a registered stat; fatal on an unknown name. */
    [[nodiscard]] StatKind kindOf(const std::string &name) const;

    /** Current value of the counter @p name; fatal when the name is
     *  unknown or not a counter. */
    [[nodiscard]] std::uint64_t counterValue(const std::string &name) const;

    /** Current value of any stat as a double (histograms: the mean);
     *  fatal on an unknown name. */
    [[nodiscard]] double value(const std::string &name) const;

    /** Description registered with @p name (empty if none). */
    [[nodiscard]] const std::string &
    description(const std::string &name) const;

    /** All registered names, sorted. */
    [[nodiscard]] std::vector<std::string> names() const;

    /** Registered names under @p prefix (sorted; "bpu.btb" matches
     *  "bpu.btb.hits" and "bpu.btb" itself but not "bpu.btb2.x"). */
    [[nodiscard]] std::vector<std::string>
    namesWithPrefix(const std::string &prefix) const;

    /**
     * Materializes every stat into plain values. Histograms flatten
     * into "<name>.count", "<name>.mean", "<name>.min", "<name>.max"
     * pseudo-entries so the result is a flat numeric table.
     */
    [[nodiscard]] std::vector<StatSample> snapshot() const;

    /** Writes the snapshot as one flat JSON object under {"stats":…}.
     *  @return false on I/O failure. */
    bool writeJson(const std::string &path) const;
    void writeJson(std::FILE *f) const;

  private:
    struct Stat
    {
        StatKind kind = StatKind::kCounter;
        CounterFn counter;
        DerivedFn derived;
        const StatHistogram *hist = nullptr;
        std::string description;
    };

    const Stat &find(const std::string &name) const;
    void insert(const std::string &name, Stat stat);

    std::map<std::string, Stat> stats_;
};

} // namespace fdip

#endif // FDIP_OBS_STAT_REGISTRY_H_
