#include "bpu/loop_predictor.h"

#include "util/bits.h"
#include "util/hotpath.h"

namespace fdip
{

LoopPredictor::LoopPredictor(const LoopPredictorConfig &cfg)
    : cfg_(cfg),
      entries_(std::size_t{cfg.ways} << cfg.logEntries)
{
}

FDIP_HOT_PATH std::uint32_t
LoopPredictor::indexOf(Addr pc) const
{
    const std::uint64_t h = (pc >> 2) ^ (pc >> (2 + cfg_.logEntries));
    return static_cast<std::uint32_t>(h & mask(cfg_.logEntries));
}

FDIP_HOT_PATH std::uint16_t
LoopPredictor::tagOf(Addr pc) const
{
    return static_cast<std::uint16_t>((pc >> (2 + cfg_.logEntries)) &
                                      mask(12));
}

FDIP_HOT_PATH const LoopPredictor::Entry *
LoopPredictor::find(Addr pc) const
{
    const Entry *row = &entries_[std::size_t{indexOf(pc)} * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (row[w].valid && row[w].tag == tagOf(pc))
            return &row[w];
    }
    return nullptr;
}

FDIP_HOT_PATH LoopPredictor::Entry *
LoopPredictor::find(Addr pc)
{
    return const_cast<Entry *>(
        static_cast<const LoopPredictor *>(this)->find(pc));
}

FDIP_HOT_PATH LoopPrediction
LoopPredictor::predict(Addr pc) const
{
    LoopPrediction p;
    const Entry *e = find(pc);
    if (e == nullptr || e->confidence < cfg_.confidenceMax ||
        e->tripCount == 0) {
        return p;
    }
    p.valid = true;
    // Taken until the iteration count reaches the confirmed trip.
    p.taken = e->currentCount + 1 < e->tripCount;
    return p;
}

FDIP_HOT_PATH void
LoopPredictor::update(Addr pc, bool taken)
{
    Entry *e = find(pc);
    if (e == nullptr) {
        // Allocate only when a loop exit (not-taken after takens) is
        // plausible; allocating on every branch would thrash.
        if (taken)
            return;
        Entry *row = &entries_[std::size_t{indexOf(pc)} * cfg_.ways];
        Entry *victim = &row[0];
        for (unsigned w = 0; w < cfg_.ways; ++w) {
            if (!row[w].valid) {
                victim = &row[w];
                break;
            }
            if (row[w].lru < victim->lru)
                victim = &row[w];
        }
        *victim = Entry{};
        victim->valid = true;
        victim->tag = tagOf(pc);
        victim->lru = ++lruClock_;
        return;
    }

    e->lru = ++lruClock_;
    if (taken) {
        if (e->currentCount < cfg_.maxTrip)
            ++e->currentCount;
        return;
    }

    // Loop exit: the streak (+1 for this execution) is the trip count.
    const std::uint16_t trip =
        static_cast<std::uint16_t>(e->currentCount + 1);
    if (trip == e->tripCount) {
        if (e->confidence < cfg_.confidenceMax)
            ++e->confidence;
    } else {
        e->tripCount = trip;
        e->confidence = e->confidence > 0 ? 1 : 0;
    }
    e->currentCount = 0;
}

std::uint64_t
LoopPredictor::storageBits() const
{
    return storageSchema().totalBits();
}

StorageSchema
LoopPredictor::storageSchema() const
{
    // Counter widths follow the config (12b trips for maxTrip = 4095,
    // 2b confidence for confidenceMax = 3); the tag is mask(12) in
    // tagOf(); per-entry LRU rank covers the ways of a set.
    const std::uint64_t n = entries_.size();
    const unsigned trip_bits = ceilLog2(std::uint64_t{cfg_.maxTrip} + 1);
    const unsigned conf_bits =
        ceilLog2(std::uint64_t{cfg_.confidenceMax} + 1);
    StorageSchema s("loop predictor");
    s.add("valid", 1, n)
        .add("tag", 12, n)
        .add("trip_count", trip_bits, n)
        .add("current_count", trip_bits, n)
        .add("confidence", conf_bits, n)
        .add("lru", ceilLog2(cfg_.ways), n);
    return s;
}

} // namespace fdip
