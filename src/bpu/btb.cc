#include "bpu/btb.h"

#include "util/bits.h"
#include "util/log.h"
#include "util/hotpath.h"

namespace fdip
{

Btb::Btb(const BtbConfig &cfg)
    : cfg_(cfg)
{
    if (cfg_.numEntries % cfg_.ways != 0)
        fdip_fatal("BTB entries %u not divisible by ways %u",
                   cfg_.numEntries, cfg_.ways);
    numSets_ = cfg_.numEntries / cfg_.ways;
    if (!isPowerOf2(numSets_))
        fdip_fatal("BTB set count %u must be a power of two", numSets_);
    entries_.assign(cfg_.numEntries, Entry{});
}

FDIP_HOT_PATH std::uint32_t
Btb::setOf(Addr pc) const
{
    // 16B-indexed: drop the low 4 bits so all branches in a 16B chunk
    // share a set; mix upper bits to spread large footprints.
    const std::uint64_t chunk = pc >> 4;
    return static_cast<std::uint32_t>(
        (chunk ^ (chunk >> floorLog2(numSets_))) & (numSets_ - 1));
}

FDIP_HOT_PATH Btb::Entry *
Btb::find(Addr pc)
{
    Entry *row = &entries_[std::size_t{setOf(pc)} * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (row[w].valid && row[w].pc == pc)
            return &row[w];
    }
    return nullptr;
}

FDIP_HOT_PATH const Btb::Entry *
Btb::find(Addr pc) const
{
    return const_cast<Btb *>(this)->find(pc);
}

FDIP_HOT_PATH std::optional<BtbHit>
Btb::lookup(Addr pc)
{
    ++lookups_;
    Entry *e = find(pc);
    if (e == nullptr)
        return std::nullopt;
    ++hits_;
    e->lru = ++lruClock_;
    return BtbHit{e->kind, e->target};
}

FDIP_HOT_PATH std::optional<BtbHit>
Btb::peek(Addr pc) const
{
    const Entry *e = find(pc);
    if (e == nullptr)
        return std::nullopt;
    return BtbHit{e->kind, e->target};
}

FDIP_HOT_PATH void
Btb::install(Addr pc, InstClass kind, Addr target, bool taken)
{
    Entry *e = find(pc);
    if (e != nullptr) {
        // Refresh: indirect branches update their last target.
        e->kind = kind;
        e->target = target;
        e->lru = ++lruClock_;
        return;
    }

    if (cfg_.allocateTakenOnly && !taken)
        return;

    Entry *row = &entries_[std::size_t{setOf(pc)} * cfg_.ways];
    Entry *victim = &row[0];
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (!row[w].valid) {
            victim = &row[w];
            break;
        }
        if (row[w].lru < victim->lru)
            victim = &row[w];
    }
    if (victim->valid)
        ++evictions_;
    ++allocations_;
    victim->valid = true;
    victim->pc = pc;
    victim->kind = kind;
    victim->target = target;
    victim->lru = ++lruClock_;
}

FDIP_HOT_PATH void
Btb::invalidate(Addr pc)
{
    Entry *e = find(pc);
    if (e != nullptr)
        e->valid = false;
}

StorageSchema
Btb::storageSchema(const std::string &structure) const
{
    const std::uint64_t entry_bits = btbEntryBits(cfg_);
    const std::uint64_t fixed =
        1 + kBtbKindBits + ceilLog2(cfg_.ways) + kBtbTargetBits;
    if (fixed > entry_bits)
        fdip_fatal("BTB bytesPerEntry %u too small for its fixed fields",
                   cfg_.bytesPerEntry);
    StorageSchema s(structure);
    s.add("valid", 1, cfg_.numEntries)
        .add("kind", kBtbKindBits, cfg_.numEntries)
        .add("lru", ceilLog2(cfg_.ways), cfg_.numEntries)
        .add("target", kBtbTargetBits, cfg_.numEntries)
        .add("tag", entry_bits - fixed, cfg_.numEntries);
    return s;
}

void
Btb::registerStats(StatRegistry &reg, const std::string &prefix) const
{
    reg.addCounter(prefix + ".lookups", [this] { return lookups_; });
    reg.addCounter(prefix + ".hits", [this] { return hits_; });
    reg.addCounter(prefix + ".allocations",
                   [this] { return allocations_; });
    reg.addCounter(prefix + ".evictions", [this] { return evictions_; });
    reg.addCounter(prefix + ".storage_bits",
                   [this] { return storageBits(); });
    reg.addDerived(prefix + ".hit_rate",
                   [this] {
                       return lookups_ == 0
                                  ? 0.0
                                  : static_cast<double>(hits_) /
                                        static_cast<double>(lookups_);
                   },
                   "hits / lookups");
}

} // namespace fdip
