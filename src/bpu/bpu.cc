#include "bpu/bpu.h"

#include "util/log.h"
#include "util/hotpath.h"

namespace fdip
{

namespace
{

unsigned
bitsPerEventFor(const BpuConfig &cfg)
{
    return cfg.historyPolicy == HistoryPolicy::kTargetHistory ? 2 : 1;
}

} // namespace

Bpu::Bpu(const BpuConfig &cfg)
    : cfg_(cfg),
      history_(cfg.historyPolicy, bitsPerEventFor(cfg)),
      ras_(cfg.rasDepth)
{
    if (cfg_.direction == DirectionPredictorKind::kTage) {
        tage_ = std::make_unique<Tage>(
            TageConfig::sized(cfg_.tageKilobytes), history_);
    } else if (cfg_.direction == DirectionPredictorKind::kGshare) {
        gshare_ = std::make_unique<Gshare>();
    } else if (cfg_.direction == DirectionPredictorKind::kPerceptron) {
        perceptron_ = std::make_unique<Perceptron>();
    }
    if (cfg_.useLoopPredictor)
        loop_ = std::make_unique<LoopPredictor>(cfg_.loopPredictor);
    ittage_ = std::make_unique<Ittage>(cfg_.ittage, history_);
    btb_ = std::make_unique<Btb>(cfg_.btb);
    if (cfg_.btbHierarchy.enabled)
        btbHier_ = std::make_unique<BtbHierarchy>(cfg_.btbHierarchy, *btb_);
}

FDIP_HOT_PATH std::optional<BtbLevelHit>
Bpu::lookupBranch(Addr pc)
{
    if (btbHier_)
        return btbHier_->lookup(pc);
    const auto h = btb_->lookup(pc);
    if (!h.has_value())
        return std::nullopt;
    return BtbLevelHit{*h, false};
}

FDIP_HOT_PATH void
Bpu::insertBranch(Addr pc, InstClass kind, Addr target, bool taken)
{
    if (btbHier_) {
        btbHier_->install(pc, kind, target, taken);
        return;
    }
    btb_->install(pc, kind, target, taken);
}

FDIP_HOT_PATH DirectionPrediction
Bpu::predictDirection(Addr pc, bool oracle_taken) const
{
    DirectionPrediction p;
    switch (cfg_.direction) {
      case DirectionPredictorKind::kTage:
        p.taken = tage_->predict(pc, p.tageMeta);
        break;
      case DirectionPredictorKind::kGshare:
        p.taken = gshare_->predict(pc);
        break;
      case DirectionPredictorKind::kPerceptron:
        p.taken = perceptron_->predict(pc);
        break;
      case DirectionPredictorKind::kPerfect:
        p.taken = oracle_taken;
        break;
    }
    if (loop_) {
        const LoopPrediction lp = loop_->predict(pc);
        if (lp.valid && lp.taken != p.taken) {
            p.taken = lp.taken;
            p.loopOverride = true;
        }
    }
    return p;
}

FDIP_HOT_PATH void
Bpu::updateDirection(Addr pc, bool taken, const DirectionPrediction &pred)
{
    switch (cfg_.direction) {
      case DirectionPredictorKind::kTage:
        tage_->update(pc, taken, pred.tageMeta);
        break;
      case DirectionPredictorKind::kGshare:
        gshare_->update(pc, taken);
        break;
      case DirectionPredictorKind::kPerceptron:
        perceptron_->update(pc, taken);
        break;
      case DirectionPredictorKind::kPerfect:
        break;
    }
    if (loop_)
        loop_->update(pc, taken);
}

FDIP_HOT_PATH Addr
Bpu::predictIndirect(Addr pc, IttagePrediction &meta) const
{
    return ittage_->predict(pc, meta);
}

FDIP_HOT_PATH void
Bpu::updateIndirect(Addr pc, Addr target, const IttagePrediction &meta)
{
    ittage_->update(pc, target, meta);
}

std::uint64_t
Bpu::predictorStorageBits() const
{
    return directionStorageBits() + indirectStorageBits();
}

std::uint64_t
Bpu::directionStorageBits() const
{
    std::uint64_t bits = 0;
    if (tage_)
        bits += tage_->storageBits();
    if (gshare_)
        bits += gshare_->storageBits();
    if (perceptron_)
        bits += perceptron_->storageBits();
    if (loop_)
        bits += loop_->storageBits();
    return bits;
}

std::uint64_t
Bpu::indirectStorageBits() const
{
    return ittage_->storageBits();
}

std::vector<StorageSchema>
Bpu::directionStorageSchemas() const
{
    std::vector<StorageSchema> schemas;
    if (tage_)
        schemas.push_back(tage_->storageSchema());
    if (gshare_)
        schemas.push_back(gshare_->storageSchema());
    if (perceptron_)
        schemas.push_back(perceptron_->storageSchema());
    if (loop_)
        schemas.push_back(loop_->storageSchema());
    return schemas;
}

StorageSchema
Bpu::indirectStorageSchema() const
{
    return ittage_->storageSchema();
}

std::uint64_t
Bpu::storageBits() const
{
    std::uint64_t bits = predictorStorageBits() + history_.storageBits() +
                         btb_->storageBits() + ras_.storageBits();
    if (btbHier_)
        bits += btbHier_->l1().storageBits();
    return bits;
}

void
Bpu::registerStats(StatRegistry &reg, const std::string &prefix) const
{
    btb_->registerStats(reg, prefix + ".btb");
    if (btbHier_)
        btbHier_->registerStats(reg, prefix + ".btb_hier");
    ras_.registerStats(reg, prefix + ".ras");
    reg.addCounter(prefix + ".storage_bits",
                   [this] { return storageBits(); },
                   "predictors + history + BTB hierarchy + RAS");
    reg.addCounter(prefix + ".direction_storage_bits",
                   [this] { return directionStorageBits(); });
    reg.addCounter(prefix + ".indirect_storage_bits",
                   [this] { return indirectStorageBits(); });
}

} // namespace fdip
