/**
 * @file
 * A TAGE conditional branch direction predictor (Seznec), operating on
 * the shared BranchHistory (so the history-management policies of the
 * paper directly affect its accuracy).
 */

#ifndef FDIP_BPU_TAGE_H_
#define FDIP_BPU_TAGE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "bpu/history.h"
#include "check/schema.h"
#include "util/bits.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/sat_counter.h"
#include "util/state.h"
#include "util/types.h"

namespace fdip
{

/** TAGE sizing parameters. */
struct TageConfig
{
    unsigned numTables = 12;     ///< Tagged tables.
    unsigned minHistory = 4;     ///< Shortest history (events).
    unsigned maxHistory = 260;   ///< Longest history (events), paper V.
    unsigned logEntries = 10;    ///< log2 entries per tagged table.
    unsigned tagBits = 10;       ///< Partial tag width.
    unsigned counterBits = 3;    ///< Prediction counter width.
    unsigned usefulBits = 2;     ///< Usefulness counter width.
    unsigned logBaseEntries = 13; ///< log2 bimodal entries.
    std::uint32_t usefulResetPeriod = 1 << 18; ///< Allocations per u-reset.

    /**
     * Paper-named variants (Fig. 12): 9KB, 18KB (baseline), 36KB.
     * constexpr so the budget layer can static_assert the exact storage
     * of each variant; other sizes are a runtime fatal error.
     */
    static constexpr TageConfig
    sized(unsigned kilobytes)
    {
        TageConfig cfg;
        switch (kilobytes) {
          case 9:
            cfg.logEntries = 9;
            cfg.logBaseEntries = 12;
            break;
          case 18:
            cfg.logEntries = 10;
            cfg.logBaseEntries = 13;
            break;
          case 36:
            cfg.logEntries = 11;
            cfg.logBaseEntries = 14;
            break;
          default:
            fdip_fatal("unsupported TAGE size %u KB (use 9/18/36)",
                       kilobytes);
        }
        return cfg;
    }
};

/** Width of the single "use alt on new alloc" counter. */
inline constexpr unsigned kTageUseAltOnNaBits = 4;
/** Allocation-tiebreak LFSR state (modeled by the 64-bit Rng). */
inline constexpr unsigned kTageAllocRngBits = 64;
/** Bimodal base counter width (construction uses SatCounter(2, 1)). */
inline constexpr unsigned kTageBaseCtrBits = 2;

/** Bits of one tagged-table entry under @p cfg. */
constexpr std::uint64_t
tageTaggedEntryBits(const TageConfig &cfg)
{
    return std::uint64_t{cfg.counterBits} + cfg.tagBits + cfg.usefulBits;
}

/**
 * Exact modeled storage of a Tage built from @p cfg: tagged tables,
 * bimodal base, and the mutable side state (use-alt counter, useful
 * reset tick, allocation LFSR). Single source of truth for
 * Tage::storageBits(), Tage::storageSchema(), and the compile-time
 * pins in check/budget.h.
 */
constexpr std::uint64_t
tageStorageBits(const TageConfig &cfg)
{
    return cfg.numTables * (std::uint64_t{1} << cfg.logEntries) *
               tageTaggedEntryBits(cfg) +
           (std::uint64_t{1} << cfg.logBaseEntries) * kTageBaseCtrBits +
           kTageUseAltOnNaBits + ceilLog2(cfg.usefulResetPeriod) +
           kTageAllocRngBits;
}

/**
 * Prediction metadata threaded from predict() to update() so training
 * uses exactly the indices/tags computed at prediction time.
 */
struct TagePrediction
{
    static constexpr unsigned kMaxTables = 16;

    bool taken = false;         ///< Final prediction.
    bool providerPred = false;  ///< Prediction of the provider component.
    bool altPred = false;       ///< Alternate (next-longest) prediction.
    int provider = -1;          ///< Provider table; -1 = bimodal base.
    int altProvider = -1;       ///< Alternate table; -1 = bimodal base.
    bool providerWeak = false;  ///< Provider counter in a weak state.
    bool usedAlt = false;       ///< Alt overrode a newly-allocated entry.
    std::uint32_t baseIndex = 0;
    std::array<std::uint32_t, kMaxTables> indices{};
    std::array<std::uint32_t, kMaxTables> tags{};
};

/**
 * The TAGE predictor.
 */
class Tage
{
  public:
    /**
     * @param cfg  sizing.
     * @param hist shared global history; folded views are registered on
     *             it here, so one Tage binds to one BranchHistory.
     */
    Tage(const TageConfig &cfg, BranchHistory &hist);

    /** Predicts the direction of the branch at @p pc. */
    bool predict(Addr pc, TagePrediction &meta) const;

    /** Trains with the resolved direction using prediction-time @p meta. */
    void update(Addr pc, bool taken, const TagePrediction &meta);

    /** Modeled storage in bits; equals storageSchema().totalBits(). */
    std::uint64_t storageBits() const;

    /** Exact per-field storage declaration. */
    StorageSchema storageSchema() const;

    const TageConfig &config() const { return cfg_; }

    /** History length (in events) of tagged table @p t. */
    unsigned historyLength(unsigned t) const { return histLens_[t]; }

  private:
    struct Entry
    {
        SignedSatCounter ctr;
        std::uint16_t tag = 0;
        SatCounter useful;

        Entry() : ctr(3, 0), useful(2, 0) {}
    };

    std::uint32_t tableIndex(Addr pc, unsigned t) const;
    std::uint16_t tableTag(Addr pc, unsigned t) const;

    FDIP_STATE_MICRO TageConfig cfg_;
    FDIP_STATE_MICRO BranchHistory &hist_;
    FDIP_STATE_MICRO std::vector<unsigned> histLens_; ///< Per-table lengths.
    FDIP_STATE_MICRO std::vector<unsigned> idxFold_;  ///< Fold ids: index.
    FDIP_STATE_MICRO std::vector<unsigned> tagFoldA_; ///< Fold ids: tag A.
    FDIP_STATE_MICRO std::vector<unsigned> tagFoldB_; ///< Fold ids: tag B.
    FDIP_STATE_ARCH(tagged.ctr, tagged.tag, tagged.useful)
    std::vector<std::vector<Entry>> tables_;
    FDIP_STATE_ARCH(base.ctr)
    std::vector<SatCounter> base_;         ///< Bimodal base predictor.
    FDIP_STATE_ARCH(use_alt_on_na)
    SignedSatCounter useAltOnNa_;          ///< "Use alt on new alloc".
    FDIP_STATE_ARCH(useful_reset_tick) std::uint32_t allocCount_ = 0;
    FDIP_STATE_ARCH(alloc_lfsr) Rng rng_;
};

} // namespace fdip

#endif // FDIP_BPU_TAGE_H_
