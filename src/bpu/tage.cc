#include "bpu/tage.h"

#include <cmath>

#include "util/bits.h"
#include "util/log.h"
#include "util/hotpath.h"

namespace fdip
{

Tage::Tage(const TageConfig &cfg, BranchHistory &hist)
    : cfg_(cfg),
      hist_(hist),
      useAltOnNa_(4, 0),
      rng_(0x7467652d726e67ULL) // Fixed seed: deterministic allocation.
{
    if (cfg_.numTables > TagePrediction::kMaxTables)
        fdip_fatal("TAGE numTables %u exceeds metadata capacity",
                   cfg_.numTables);

    // Geometric history lengths between minHistory and maxHistory.
    const double ratio =
        std::pow(static_cast<double>(cfg_.maxHistory) / cfg_.minHistory,
                 1.0 / (cfg_.numTables - 1));
    histLens_.resize(cfg_.numTables);
    double len = cfg_.minHistory;
    for (unsigned t = 0; t < cfg_.numTables; ++t) {
        histLens_[t] = std::max<unsigned>(
            static_cast<unsigned>(len + 0.5),
            t == 0 ? cfg_.minHistory : histLens_[t - 1] + 1);
        len *= ratio;
    }

    const unsigned bits_per_event = hist_.bitsPerEvent();
    for (unsigned t = 0; t < cfg_.numTables; ++t) {
        const unsigned hist_bits = histLens_[t] * bits_per_event;
        idxFold_.push_back(
            hist_.registerFold(hist_bits, cfg_.logEntries));
        tagFoldA_.push_back(hist_.registerFold(hist_bits, cfg_.tagBits));
        tagFoldB_.push_back(
            hist_.registerFold(hist_bits, cfg_.tagBits - 1));
    }

    tables_.assign(cfg_.numTables,
                   std::vector<Entry>(std::size_t{1} << cfg_.logEntries));
    base_.assign(std::size_t{1} << cfg_.logBaseEntries, SatCounter(2, 1));
}

FDIP_HOT_PATH std::uint32_t
Tage::tableIndex(Addr pc, unsigned t) const
{
    const std::uint64_t h = (pc >> 2) ^ (pc >> (2 + cfg_.logEntries)) ^
                            hist_.folded(idxFold_[t]) ^
                            (static_cast<std::uint64_t>(t) << 3);
    return static_cast<std::uint32_t>(h & mask(cfg_.logEntries));
}

FDIP_HOT_PATH std::uint16_t
Tage::tableTag(Addr pc, unsigned t) const
{
    const std::uint64_t h = (pc >> 2) ^ hist_.folded(tagFoldA_[t]) ^
                            (hist_.folded(tagFoldB_[t]) << 1);
    return static_cast<std::uint16_t>(h & mask(cfg_.tagBits));
}

FDIP_HOT_PATH bool
Tage::predict(Addr pc, TagePrediction &meta) const
{
    meta = TagePrediction{};
    meta.baseIndex = static_cast<std::uint32_t>(
        ((pc >> 2) ^ (pc >> (2 + cfg_.logBaseEntries))) &
        mask(cfg_.logBaseEntries));
    const bool base_pred = base_[meta.baseIndex].taken();

    // Find the two longest-history matching tables.
    int provider = -1;
    int alt = -1;
    for (unsigned t = 0; t < cfg_.numTables; ++t) {
        meta.indices[t] = tableIndex(pc, t);
        meta.tags[t] = tableTag(pc, t);
        if (tables_[t][meta.indices[t]].tag == meta.tags[t]) {
            alt = provider;
            provider = static_cast<int>(t);
        }
    }

    meta.provider = provider;
    meta.altProvider = alt;
    meta.altPred = alt >= 0
                       ? tables_[alt][meta.indices[alt]].ctr.taken()
                       : base_pred;
    if (provider >= 0) {
        const Entry &e = tables_[provider][meta.indices[provider]];
        meta.providerPred = e.ctr.taken();
        meta.providerWeak = e.ctr.weak();
        // Newly-allocated (weak ctr, low usefulness) entries may be less
        // reliable than the alternate prediction.
        const bool newly_allocated = e.ctr.weak() && e.useful.value() == 0;
        if (newly_allocated && useAltOnNa_.taken()) {
            meta.usedAlt = true;
            meta.taken = meta.altPred;
        } else {
            meta.taken = meta.providerPred;
        }
    } else {
        meta.providerPred = base_pred;
        meta.taken = base_pred;
    }
    return meta.taken;
}

FDIP_HOT_PATH void
Tage::update(Addr pc, bool taken, const TagePrediction &meta)
{
    (void)pc;
    const bool mispredicted = meta.taken != taken;

    if (meta.provider >= 0) {
        Entry &e = tables_[meta.provider][meta.indices[meta.provider]];

        // useAltOnNa bookkeeping: when the provider was newly allocated
        // and provider/alt disagree, learn which one to trust.
        const bool newly_allocated = e.ctr.weak() && e.useful.value() == 0;
        if (newly_allocated && meta.providerPred != meta.altPred)
            useAltOnNa_.update(meta.altPred == taken);

        e.ctr.update(taken);
        // Usefulness: provider was right where the alternate was wrong.
        if (meta.providerPred != meta.altPred) {
            if (meta.providerPred == taken)
                e.useful.increment();
            else
                e.useful.decrement();
        }
    } else {
        base_[meta.baseIndex].update(taken);
    }

    // Allocate a new entry on a misprediction, in a table with longer
    // history than the provider.
    if (mispredicted &&
        meta.provider < static_cast<int>(cfg_.numTables) - 1) {
        const unsigned start = static_cast<unsigned>(meta.provider + 1);
        // Randomized start avoids ping-pong allocation (Seznec).
        unsigned first = start;
        if (start + 1 < cfg_.numTables && (rng_.next() & 1))
            first = start + 1;

        bool allocated = false;
        for (unsigned t = first; t < cfg_.numTables; ++t) {
            Entry &e = tables_[t][meta.indices[t]];
            if (e.useful.value() == 0) {
                e.tag = static_cast<std::uint16_t>(meta.tags[t]);
                e.ctr.reset(taken);
                allocated = true;
                break;
            }
        }
        if (!allocated) {
            // All candidates useful: age them so future allocations win.
            for (unsigned t = start; t < cfg_.numTables; ++t)
                tables_[t][meta.indices[t]].useful.decrement();
        }

        // Periodic graceful reset of usefulness counters.
        if (++allocCount_ >= cfg_.usefulResetPeriod) {
            allocCount_ = 0;
            for (auto &table : tables_)
                for (auto &e : table)
                    e.useful.set(e.useful.value() >> 1);
        }
    }
}

std::uint64_t
Tage::storageBits() const
{
    return tageStorageBits(cfg_);
}

StorageSchema
Tage::storageSchema() const
{
    const std::uint64_t tagged =
        cfg_.numTables * (std::uint64_t{1} << cfg_.logEntries);
    StorageSchema s("TAGE");
    s.add("tagged.ctr", cfg_.counterBits, tagged)
        .add("tagged.tag", cfg_.tagBits, tagged)
        .add("tagged.useful", cfg_.usefulBits, tagged)
        .add("base.ctr", kTageBaseCtrBits,
             std::uint64_t{1} << cfg_.logBaseEntries)
        .add("use_alt_on_na", kTageUseAltOnNaBits)
        .add("useful_reset_tick", ceilLog2(cfg_.usefulResetPeriod))
        .add("alloc_lfsr", kTageAllocRngBits);
    return s;
}

} // namespace fdip
