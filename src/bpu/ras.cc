#include "bpu/ras.h"

namespace fdip
{

Ras::Ras(unsigned depth)
    : stack_(depth, kNoAddr)
{
}

void
Ras::push(Addr return_addr)
{
    topIndex_ = (topIndex_ + 1) % stack_.size();
    stack_[topIndex_] = return_addr;
}

Addr
Ras::pop()
{
    const Addr v = stack_[topIndex_];
    topIndex_ = (topIndex_ + static_cast<std::uint32_t>(stack_.size()) - 1) %
                stack_.size();
    return v;
}

Addr
Ras::top() const
{
    return stack_[topIndex_];
}

RasSnapshot
Ras::snapshot() const
{
    return RasSnapshot{topIndex_, stack_[topIndex_]};
}

RasSnapshot
Ras::snapshotAfterPush(Addr return_addr) const
{
    const auto idx =
        static_cast<std::uint32_t>((topIndex_ + 1) % stack_.size());
    return RasSnapshot{idx, return_addr};
}

RasSnapshot
Ras::snapshotAfterPop() const
{
    const auto idx = static_cast<std::uint32_t>(
        (topIndex_ + stack_.size() - 1) % stack_.size());
    return RasSnapshot{idx, stack_[idx]};
}

void
Ras::restore(const RasSnapshot &snap)
{
    topIndex_ = snap.topIndex;
    stack_[topIndex_] = snap.topValue;
}

} // namespace fdip
