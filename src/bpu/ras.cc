#include "bpu/ras.h"

#include "util/bits.h"
#include "util/hotpath.h"

namespace fdip
{

Ras::Ras(unsigned depth)
    : stack_(depth, kNoAddr)
{
    FDIP_REQUIRE(depth > 0, "a RAS needs at least one entry");
}

FDIP_HOT_PATH void
Ras::push(Addr return_addr)
{
    topIndex_ = (topIndex_ + 1) % stack_.size();
    stack_[topIndex_] = return_addr;
    if (live_ < stack_.size())
        ++live_;
}

FDIP_HOT_PATH Addr
Ras::pop()
{
    if (live_ == 0) {
        FDIP_CHECK(!strictUnderflow_,
                   "RAS underflow: pop with no live entries (depth %u)",
                   depth());
        ++underflows_;
    } else {
        --live_;
    }
    const Addr v = stack_[topIndex_];
    topIndex_ = (topIndex_ + static_cast<std::uint32_t>(stack_.size()) - 1) %
                stack_.size();
    return v;
}

FDIP_HOT_PATH Addr
Ras::top() const
{
    return stack_[topIndex_];
}

FDIP_HOT_PATH RasSnapshot
Ras::snapshot() const
{
    return RasSnapshot{topIndex_, stack_[topIndex_], live_};
}

FDIP_HOT_PATH RasSnapshot
Ras::snapshotAfterPush(Addr return_addr) const
{
    const auto idx =
        static_cast<std::uint32_t>((topIndex_ + 1) % stack_.size());
    const auto live = static_cast<std::uint32_t>(
        live_ < stack_.size() ? live_ + 1 : live_);
    return RasSnapshot{idx, return_addr, live};
}

FDIP_HOT_PATH RasSnapshot
Ras::snapshotAfterPop() const
{
    const auto idx = static_cast<std::uint32_t>(
        (topIndex_ + stack_.size() - 1) % stack_.size());
    return RasSnapshot{idx, stack_[idx], live_ > 0 ? live_ - 1 : 0};
}

FDIP_HOT_PATH void
Ras::restore(const RasSnapshot &snap)
{
    FDIP_CHECK(snap.topIndex < stack_.size(),
               "RAS restore to index %u beyond depth %u", snap.topIndex,
               depth());
    FDIP_CHECK(snap.liveCount <= stack_.size(),
               "RAS restore with %u live entries beyond depth %u",
               snap.liveCount, depth());
    topIndex_ = snap.topIndex;
    stack_[topIndex_] = snap.topValue;
    live_ = snap.liveCount;
}

std::uint64_t
Ras::storageBits() const
{
    return rasStorageBitsFor(depth());
}

StorageSchema
Ras::storageSchema() const
{
    StorageSchema s("RAS");
    s.add("entry", kSchemaAddrBits, depth())
        .add("top_ptr", ceilLog2(depth()));
    return s;
}

void
Ras::registerStats(StatRegistry &reg, const std::string &prefix) const
{
    reg.addCounter(prefix + ".underflows", [this] { return underflows_; },
                   "pops that found no live entry (wrong-path over-pops)");
    reg.addCounter(prefix + ".live_entries",
                   [this] { return std::uint64_t{live_}; });
    reg.addCounter(prefix + ".depth",
                   [this] { return std::uint64_t{depth()}; });
    reg.addCounter(prefix + ".storage_bits",
                   [this] { return storageBits(); });
}

} // namespace fdip
