/**
 * @file
 * Global branch history with pluggable management policy.
 *
 * This implements the paper's central history mechanisms (Section
 * III-A, Table V):
 *
 *  - THR  : taken-only branch *target* history. Only predicted-taken
 *           branches push events (a hash of PC and target), so BTB-miss
 *           not-taken branches cannot disturb the history.
 *  - GHR  : all-branch *direction* history. Every detected branch
 *           pushes its predicted direction. Whether BTB-miss not-taken
 *           branches are later fixed up (GHR2/3) or silently lost
 *           (GHR0/1) is decided by the frontend, not here.
 *  - Ideal: direction history updated by an oracle for every branch.
 *
 * The history is a bit ring-buffer plus a set of incrementally-folded
 * images (Seznec-style) registered by the TAGE/ITTAGE tables. The whole
 * speculative state can be snapshotted cheaply and restored on pipeline
 * flushes, PFC redirects, and GHR fixups.
 *
 * Note on Eq. (3): the paper folds the full-width target hash into the
 * shifted history. Like the public gem5/ChampSim FDIP implementations,
 * we push a fixed number of hash bits per taken branch instead, which
 * keeps the shift-register model (and incremental folding) exact.
 */

#ifndef FDIP_BPU_HISTORY_H_
#define FDIP_BPU_HISTORY_H_

#include <array>
#include <cstdint>
#include <vector>

#include "check/schema.h"
#include "util/hotpath.h"
#include "util/state.h"
#include "util/types.h"

namespace fdip
{

/** History management policy (paper Table V). */
enum class HistoryPolicy : std::uint8_t
{
    kTargetHistory, ///< THR: taken-only branch target history.
    kDirectionHistory, ///< GHR: all-(detected-)branch direction history.
    kIdealDirectionHistory, ///< Oracle direction history (no BTB needs).
};

/** Human-readable policy name. */
const char *historyPolicyName(HistoryPolicy p);

/**
 * A folded (compressed) image of the most recent @c origLen history
 * bits, XOR-folded down to @c compLen bits and maintained
 * incrementally as bits are pushed.
 */
struct FoldedHistory
{
    unsigned origLen = 0;  ///< Window length in history bits.
    unsigned compLen = 0;  ///< Folded width in bits.
    std::uint32_t comp = 0; ///< Current folded value.

    void
    update(unsigned new_bit, unsigned out_bit)
    {
        comp = (comp << 1) | new_bit;
        comp ^= static_cast<std::uint32_t>(out_bit) << (origLen % compLen);
        comp ^= comp >> compLen;
        comp &= (std::uint32_t{1} << compLen) - 1;
    }
};

/**
 * Snapshot of the speculative history state. Restoring one rewinds the
 * history to the snapshot point exactly. Fixed-size so per-block
 * snapshots never allocate.
 */
struct HistorySnapshot
{
    /** Maximum folded views (TAGE + ITTAGE need ~54). */
    static constexpr std::size_t kMaxFolds = 64;

    std::uint64_t headPos = 0;    ///< Bit-ring head position.
    std::uint64_t recentBits = 0; ///< Plain recent-bit register.
    std::uint8_t numFolds = 0;
    std::array<std::uint32_t, kMaxFolds> folds{};
};

/**
 * The global history register with registered folded views.
 */
class BranchHistory
{
  public:
    /**
     * @param policy        management policy.
     * @param bits_per_event history bits pushed per event (1 for
     *                      direction history, typically 2 for THR).
     */
    explicit BranchHistory(HistoryPolicy policy, unsigned bits_per_event = 0);

    HistoryPolicy policy() const { return policy_; }
    unsigned bitsPerEvent() const { return bitsPerEvent_; }

    /**
     * Registers a folded view over the last @p length_bits history bits
     * compressed to @p folded_bits. Returns a fold id for folded().
     */
    unsigned registerFold(unsigned length_bits, unsigned folded_bits);

    /** Current folded value of view @p fold_id. */
    FDIP_HOT_PATH std::uint32_t
    folded(unsigned fold_id) const
    {
        return folds_[fold_id].comp;
    }

    /** The last 64 raw history bits (newest in bit 0). */
    std::uint64_t recentBits() const { return recentBits_; }

    /**
     * Pushes one branch event.
     *
     * Under a direction policy this pushes 1 bit (@p taken). Under the
     * target policy, events are pushed only for taken branches and
     * consist of bitsPerEvent() bits hashed from @p pc and @p target.
     */
    void pushBranch(Addr pc, Addr target, bool taken);

    /** True if this policy records an event for this outcome. */
    bool
    recordsEvent(bool taken) const
    {
        return policy_ != HistoryPolicy::kTargetHistory || taken;
    }

    /** Captures the entire speculative state. */
    HistorySnapshot snapshot() const;

    /** Restores a snapshot taken earlier on this object. */
    void restore(const HistorySnapshot &snap);

    /** Total events pushed since construction (monotonic). */
    std::uint64_t numEvents() const { return numEvents_; }

    /** Number of registered folded views. */
    std::size_t numFolds() const { return folds_.size(); }

    /**
     * Modeled storage in bits: the exact sum of the registered folded
     * images' widths. The folds are the only history state the
     * predictors read at prediction time; the 4Kb ring and the plain
     * recent-bit register are simulator conveniences (the ring replays
     * out-bits that real hardware keeps inside each fold's shift
     * window) and are not charged. Equals storageSchema().totalBits().
     */
    std::uint64_t storageBits() const;

    /**
     * Exact per-field storage declaration: one field per distinct fold
     * width (in registration order), counting the folds of that width.
     */
    StorageSchema storageSchema() const;

  private:
    void pushBit(unsigned bit);

    FDIP_HOT_PATH unsigned
    bitAt(std::uint64_t pos) const
    {
        return (ring_[(pos / 64) % kRingWords] >> (pos % 64)) & 1;
    }

    /** Ring capacity in 64-bit words (4096 bits). */
    static constexpr std::size_t kRingWords = 64;

    FDIP_STATE_MICRO HistoryPolicy policy_;
    FDIP_STATE_MICRO unsigned bitsPerEvent_;
    FDIP_STATE_MICRO std::uint64_t headPos_ = 0; ///< Next bit position to write.
    FDIP_STATE_MICRO std::uint64_t recentBits_ = 0;
    FDIP_STATE_MICRO std::uint64_t numEvents_ = 0;
    FDIP_STATE_MICRO std::uint64_t ring_[kRingWords] = {};
    FDIP_STATE_ARCH(fold...) std::vector<FoldedHistory> folds_;
};

} // namespace fdip

#endif // FDIP_BPU_HISTORY_H_
