#include "bpu/gshare.h"

#include "util/bits.h"
#include "util/hotpath.h"

namespace fdip
{

Gshare::Gshare(unsigned log_entries, unsigned history_bits)
    : logEntries_(log_entries),
      historyBits_(history_bits),
      table_(std::size_t{1} << log_entries, SatCounter(2, 1))
{
}

FDIP_HOT_PATH std::uint32_t
Gshare::indexOf(Addr pc) const
{
    const std::uint64_t h =
        (pc >> 2) ^ (pc >> (2 + logEntries_)) ^
        (history_ & mask(historyBits_));
    return static_cast<std::uint32_t>(h & mask(logEntries_));
}

FDIP_HOT_PATH bool
Gshare::predict(Addr pc) const
{
    return table_[indexOf(pc)].taken();
}

FDIP_HOT_PATH void
Gshare::update(Addr pc, bool taken)
{
    table_[indexOf(pc)].update(taken);
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

std::uint64_t
Gshare::storageBits() const
{
    // Counter table plus the private direction-history register.
    return (std::uint64_t{1} << logEntries_) * 2 + historyBits_;
}

StorageSchema
Gshare::storageSchema() const
{
    StorageSchema s("gshare");
    s.add("ctr", 2, std::uint64_t{1} << logEntries_)
        .add("history", historyBits_);
    return s;
}

} // namespace fdip
