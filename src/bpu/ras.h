/**
 * @file
 * Return Address Stack with pointer/top checkpoint recovery.
 *
 * The speculative RAS is updated by the prediction pipeline; on a
 * flush the frontend restores the (pointer, top-entry) pair captured
 * with the redirecting instruction — the standard low-cost recovery
 * scheme. Deep wrong-path call/return weaves can still corrupt deeper
 * entries, which is faithful to real hardware.
 */

#ifndef FDIP_BPU_RAS_H_
#define FDIP_BPU_RAS_H_

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace fdip
{

/** Checkpoint of the RAS recovery state. */
struct RasSnapshot
{
    std::uint32_t topIndex = 0;
    Addr topValue = kNoAddr;
};

/**
 * A circular return address stack.
 */
class Ras
{
  public:
    explicit Ras(unsigned depth = 32);

    /** Pushes a return address (on predicted calls). */
    void push(Addr return_addr);

    /** Pops and returns the predicted return target. */
    Addr pop();

    /** The value a return would pop, without popping. */
    Addr top() const;

    /** Captures the recovery state. */
    RasSnapshot snapshot() const;

    /** The recovery state this RAS would have after push(@p addr),
     *  without mutating. */
    RasSnapshot snapshotAfterPush(Addr return_addr) const;

    /** The recovery state this RAS would have after pop(), without
     *  mutating. */
    RasSnapshot snapshotAfterPop() const;

    /** Restores pointer and top entry from @p snap. */
    void restore(const RasSnapshot &snap);

    unsigned depth() const
    {
        return static_cast<unsigned>(stack_.size());
    }

  private:
    std::vector<Addr> stack_;
    std::uint32_t topIndex_ = 0; ///< Index of the current top entry.
};

} // namespace fdip

#endif // FDIP_BPU_RAS_H_
