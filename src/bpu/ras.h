/**
 * @file
 * Return Address Stack with pointer/top checkpoint recovery.
 *
 * The speculative RAS is updated by the prediction pipeline; on a
 * flush the frontend restores the (pointer, top-entry) pair captured
 * with the redirecting instruction — the standard low-cost recovery
 * scheme. Deep wrong-path call/return weaves can still corrupt deeper
 * entries, which is faithful to real hardware.
 *
 * Underflow semantics: a circular RAS never traps on over-pop — a
 * wrong-path return happily pops garbage, exactly like hardware. The
 * RAS therefore *counts* underflows (pops with no live entry) rather
 * than forbidding them. Contexts where an underflow can only mean a
 * simulator bug (unit tests, structured replay) can opt into strict
 * mode, where the invariant checker rejects it.
 */

#ifndef FDIP_BPU_RAS_H_
#define FDIP_BPU_RAS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/hotpath.h"
#include "util/invariant.h"
#include "check/schema.h"
#include "obs/stat_registry.h"
#include "util/bits.h"
#include "util/state.h"
#include "util/types.h"

namespace fdip
{

/**
 * Exact RAS storage (paper Table IV: depth x 48-bit entries plus the
 * top-of-stack pointer). Single source of truth for Ras::storageBits()
 * and the compile-time pins in check/budget.h.
 */
constexpr std::uint64_t
rasStorageBitsFor(unsigned depth)
{
    return std::uint64_t{depth} * kSchemaAddrBits + ceilLog2(depth);
}

/**
 * Checkpoint of the RAS recovery state. topIndex/topValue model the
 * hardware checkpoint (Table IV); liveCount is simulator bookkeeping
 * for underflow detection and models no storage.
 */
struct RasSnapshot
{
    std::uint32_t topIndex = 0;
    Addr topValue = kNoAddr;
    std::uint32_t liveCount = 0;
};

/**
 * A circular return address stack.
 */
class Ras
{
  public:
    explicit Ras(unsigned depth = 32);

    /** Pushes a return address (on predicted calls). */
    void push(Addr return_addr);

    /** Pops and returns the predicted return target. */
    Addr pop();

    /** The value a return would pop, without popping. */
    Addr top() const;

    /** Captures the recovery state. */
    RasSnapshot snapshot() const;

    /** The recovery state this RAS would have after push(@p addr),
     *  without mutating. */
    RasSnapshot snapshotAfterPush(Addr return_addr) const;

    /** The recovery state this RAS would have after pop(), without
     *  mutating. */
    RasSnapshot snapshotAfterPop() const;

    /** Restores pointer and top entry from @p snap. */
    void restore(const RasSnapshot &snap);

    FDIP_HOT_PATH unsigned depth() const
    {
        return static_cast<unsigned>(stack_.size());
    }

    /** Entries pushed and not yet popped (saturates at depth()). */
    unsigned liveEntries() const { return live_; }

    /** Pops that found no live entry (wrong-path over-pops). */
    std::uint64_t underflows() const { return underflows_; }

    /**
     * In strict mode an underflowing pop() violates an invariant
     * (FDIP_CHECK) instead of being counted. Off by default: over-pop
     * is legal hardware behaviour on the wrong path.
     */
    void setStrictUnderflow(bool strict) { strictUnderflow_ = strict; }

    /** Modeled storage in bits: depth x 48-bit entries + top pointer. */
    std::uint64_t storageBits() const;

    /** Exact per-field storage declaration. */
    StorageSchema storageSchema() const;

    /** Registers RAS counters under @p prefix ("bpu.ras.underflows"). */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    FDIP_STATE_ARCH(entry) std::vector<Addr> stack_;
    FDIP_STATE_ARCH(top_ptr)
    std::uint32_t topIndex_ = 0; ///< Index of the current top entry.
    FDIP_STATE_MICRO std::uint32_t live_ = 0; ///< Live entries (sim bookkeeping).
    FDIP_STATE_MICRO std::uint64_t underflows_ = 0;
    FDIP_STATE_MICRO bool strictUnderflow_ = false;
};

} // namespace fdip

#endif // FDIP_BPU_RAS_H_
