/**
 * @file
 * The Branch Target Buffer.
 *
 * Matches the paper's Section IV-B: 16B-indexed (all branches in the
 * same 16-byte chunk map to the same set), set-associative with LRU,
 * and a configurable allocation policy (taken-only under THR, or
 * all-branch for the basic-block-style GHR1/GHR3 configurations).
 */

#ifndef FDIP_BPU_BTB_H_
#define FDIP_BPU_BTB_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/schema.h"
#include "obs/stat_registry.h"
#include "trace/inst.h"
#include "util/bits.h"
#include "util/hotpath.h"
#include "util/state.h"
#include "util/types.h"

namespace fdip
{

/** BTB sizing and policy. */
struct BtbConfig
{
    unsigned numEntries = 8192; ///< Total entries (paper default 8K).
    unsigned ways = 4;
    /** Allocate entries only for taken branches (THR-style). When
     *  false, not-taken conditional branches are allocated too. */
    bool allocateTakenOnly = true;
    /** Modeled bytes per entry (paper: ~7B per branch, Section VI-D). */
    unsigned bytesPerEntry = 7;
};

/** Branch-kind field width (InstClass has 5 branch kinds). */
inline constexpr unsigned kBtbKindBits = 3;
/** Compressed-target field width (paper VI-D: ~7B entries store
 *  partial tags and compressed targets, not full 48-bit pairs). */
inline constexpr unsigned kBtbTargetBits = 34;

/** Per-entry bits; the paper's bytes-per-entry label, exactly. */
constexpr std::uint64_t
btbEntryBits(const BtbConfig &cfg)
{
    return std::uint64_t{cfg.bytesPerEntry} * 8;
}

/**
 * Exact modeled BTB storage. Single source of truth for
 * Btb::storageBits() and the compile-time pins in check/budget.h.
 */
constexpr std::uint64_t
btbStorageBitsFor(const BtbConfig &cfg)
{
    return std::uint64_t{cfg.numEntries} * btbEntryBits(cfg);
}

/** A BTB hit. */
struct BtbHit
{
    InstClass kind = InstClass::kCondDirect;
    Addr target = kNoAddr; ///< Stale for indirects; ITTAGE overrides.
};

/**
 * Set-associative, 16B-indexed BTB.
 */
class Btb
{
  public:
    explicit Btb(const BtbConfig &cfg);

    /** Looks up the branch at @p pc, updating LRU on hit. */
    std::optional<BtbHit> lookup(Addr pc);

    /** Looks up without disturbing the replacement state. */
    std::optional<BtbHit> peek(Addr pc) const;

    /**
     * Installs or updates the branch at @p pc. @p taken is the resolved
     * direction (allocation may be skipped under taken-only policy);
     * existing entries always have their target refreshed.
     */
    void install(Addr pc, InstClass kind, Addr target, bool taken);

    /** Removes the entry for @p pc if present (testing/invalidation). */
    void invalidate(Addr pc);

    FDIP_HOT_PATH const BtbConfig &config() const { return cfg_; }

    /** The set the branch at @p pc maps to (16B-indexed; for tests). */
    std::uint32_t setIndexOf(Addr pc) const { return setOf(pc); }

    unsigned numSets() const { return numSets_; }

    /** Modeled storage in bytes. */
    std::uint64_t storageBytes() const
    {
        return std::uint64_t{cfg_.numEntries} * cfg_.bytesPerEntry;
    }

    /** Modeled storage in bits; equals storageSchema().totalBits(). */
    std::uint64_t storageBits() const { return btbStorageBitsFor(cfg_); }

    /**
     * Exact per-field storage declaration. The per-entry budget is
     * bytesPerEntry x 8 bits, decomposed as valid + kind + per-way LRU
     * rank + compressed target + partial tag (the tag takes whatever
     * the other fields leave; 16 bits at the paper's 7B/4-way point).
     * @p structure names the schema ("BTB" for the main level, the
     * hierarchy passes "L1-BTB" for its filter).
     */
    StorageSchema storageSchema(const std::string &structure = "BTB") const;

    /// @{ Statistics.
    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t allocations() const { return allocations_; }
    std::uint64_t evictions() const { return evictions_; }

    /** Registers BTB counters under @p prefix ("bpu.btb.hits", ...). */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;
    /// @}

  private:
    struct Entry
    {
        bool valid = false;
        Addr pc = kNoAddr;
        InstClass kind = InstClass::kCondDirect;
        Addr target = kNoAddr;
        std::uint64_t lru = 0;
    };

    std::uint32_t setOf(Addr pc) const;
    Entry *find(Addr pc);
    const Entry *find(Addr pc) const;

    FDIP_STATE_MICRO BtbConfig cfg_;
    FDIP_STATE_MICRO unsigned numSets_;
    FDIP_STATE_ARCH(valid, kind, lru, target, tag)
    std::vector<Entry> entries_; ///< sets x ways, row-major.
    FDIP_STATE_MICRO std::uint64_t lruClock_ = 0;

    FDIP_STATE_MICRO std::uint64_t lookups_ = 0;
    FDIP_STATE_MICRO std::uint64_t hits_ = 0;
    FDIP_STATE_MICRO std::uint64_t allocations_ = 0;
    FDIP_STATE_MICRO std::uint64_t evictions_ = 0;
};

} // namespace fdip

#endif // FDIP_BPU_BTB_H_
