/**
 * @file
 * An ITTAGE indirect branch target predictor (Seznec, CBP-3 style),
 * sharing the frontend BranchHistory like TAGE.
 */

#ifndef FDIP_BPU_ITTAGE_H_
#define FDIP_BPU_ITTAGE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "bpu/history.h"
#include "check/schema.h"
#include "util/rng.h"
#include "util/sat_counter.h"
#include "util/state.h"
#include "util/types.h"

namespace fdip
{

/** ITTAGE sizing parameters. */
struct IttageConfig
{
    unsigned numTables = 6;
    unsigned minHistory = 4;    ///< Events.
    unsigned maxHistory = 260;  ///< Events (paper: 260-bit like TAGE).
    unsigned logEntries = 9;    ///< log2 entries per tagged table.
    unsigned tagBits = 9;
    unsigned logBaseEntries = 11; ///< Last-target base table.
};

/** Confidence counter width (construction uses SatCounter(2, 0)). */
inline constexpr unsigned kIttageConfBits = 2;
/** Usefulness counter width (construction uses SatCounter(1, 0)). */
inline constexpr unsigned kIttageUsefulBits = 1;
/** Allocation-tiebreak LFSR state (modeled by the 64-bit Rng). */
inline constexpr unsigned kIttageAllocRngBits = 64;

/** Bits of one tagged-table entry: tag + valid + target + conf + u. */
constexpr std::uint64_t
ittageTaggedEntryBits(const IttageConfig &cfg)
{
    return std::uint64_t{cfg.tagBits} + 1 + kSchemaAddrBits +
           kIttageConfBits + kIttageUsefulBits;
}

/**
 * Exact modeled storage of an Ittage built from @p cfg. Single source
 * of truth for Ittage::storageBits(), Ittage::storageSchema(), and the
 * compile-time pin in check/budget.h.
 */
constexpr std::uint64_t
ittageStorageBits(const IttageConfig &cfg)
{
    return cfg.numTables * (std::uint64_t{1} << cfg.logEntries) *
               ittageTaggedEntryBits(cfg) +
           (std::uint64_t{1} << cfg.logBaseEntries) * kSchemaAddrBits +
           kIttageAllocRngBits;
}

/** Prediction metadata threaded to the update. */
struct IttagePrediction
{
    static constexpr unsigned kMaxTables = 8;

    Addr target = kNoAddr;     ///< Final predicted target.
    int provider = -1;         ///< -1 = base table.
    bool providerConfident = false;
    std::uint32_t baseIndex = 0;
    std::array<std::uint32_t, kMaxTables> indices{};
    std::array<std::uint32_t, kMaxTables> tags{};
};

/**
 * The ITTAGE predictor.
 */
class Ittage
{
  public:
    Ittage(const IttageConfig &cfg, BranchHistory &hist);

    /**
     * Predicts the target of the indirect branch at @p pc. Returns
     * kNoAddr if no component has any target yet.
     */
    Addr predict(Addr pc, IttagePrediction &meta) const;

    /** Trains with the resolved @p target. */
    void update(Addr pc, Addr target, const IttagePrediction &meta);

    /** Modeled storage in bits; equals storageSchema().totalBits(). */
    std::uint64_t storageBits() const;

    /** Exact per-field storage declaration. */
    StorageSchema storageSchema() const;

  private:
    struct Entry
    {
        std::uint16_t tag = 0;
        bool valid = false;
        Addr target = kNoAddr;
        SatCounter conf;
        SatCounter useful;

        Entry() : conf(2, 0), useful(1, 0) {}
    };

    std::uint32_t tableIndex(Addr pc, unsigned t) const;
    std::uint16_t tableTag(Addr pc, unsigned t) const;

    FDIP_STATE_MICRO IttageConfig cfg_;
    FDIP_STATE_MICRO BranchHistory &hist_;
    FDIP_STATE_MICRO std::vector<unsigned> histLens_;
    FDIP_STATE_MICRO std::vector<unsigned> idxFold_;
    FDIP_STATE_MICRO std::vector<unsigned> tagFoldA_;
    FDIP_STATE_MICRO std::vector<unsigned> tagFoldB_;
    FDIP_STATE_ARCH(tagged.tag, tagged.valid, tagged.target, tagged.conf,
                    tagged.useful)
    std::vector<std::vector<Entry>> tables_;
    FDIP_STATE_ARCH(base.target) std::vector<Addr> base_; ///< Last-target table.
    FDIP_STATE_ARCH(alloc_lfsr) Rng rng_;
};

} // namespace fdip

#endif // FDIP_BPU_ITTAGE_H_
