/**
 * @file
 * A loop termination predictor (paper Section II-A mentions loop
 * predictors as a standard modern-BPU component). Tracks per-branch
 * trip counts; once a stable count is confirmed, it overrides the
 * direction predictor on the final iteration — the one TAGE most often
 * gets wrong for long loops.
 */

#ifndef FDIP_BPU_LOOP_PREDICTOR_H_
#define FDIP_BPU_LOOP_PREDICTOR_H_

#include <cstdint>
#include <vector>

#include "check/schema.h"
#include "util/state.h"
#include "util/types.h"

namespace fdip
{

/** Loop predictor sizing. */
struct LoopPredictorConfig
{
    unsigned logEntries = 8;    ///< 256 entries.
    unsigned ways = 4;
    unsigned confidenceMax = 3; ///< Confirmations before overriding.
    unsigned maxTrip = 4095;    ///< 12-bit trip counters.
};

/** A loop prediction: valid only when the predictor is confident. */
struct LoopPrediction
{
    bool valid = false; ///< Confident hit: use `taken`.
    bool taken = true;
    std::uint32_t way = 0; ///< Metadata for update().
    std::uint32_t index = 0;
};

/**
 * The loop predictor.
 */
class LoopPredictor
{
  public:
    explicit LoopPredictor(const LoopPredictorConfig &cfg);

    /** Predicts the branch at @p pc (speculative iteration counting
     *  is intentionally not modeled; predictions read trained state). */
    LoopPrediction predict(Addr pc) const;

    /** Trains with the resolved direction. */
    void update(Addr pc, bool taken);

    /** Modeled storage in bits; equals storageSchema().totalBits(). */
    std::uint64_t storageBits() const;

    /** Exact per-field storage declaration. */
    StorageSchema storageSchema() const;

  private:
    struct Entry
    {
        bool valid = false;
        std::uint16_t tag = 0;
        std::uint16_t tripCount = 0;    ///< Confirmed taken-run length.
        std::uint16_t currentCount = 0; ///< Taken streak in progress.
        std::uint8_t confidence = 0;
        std::uint64_t lru = 0;
    };

    std::uint32_t indexOf(Addr pc) const;
    std::uint16_t tagOf(Addr pc) const;
    const Entry *find(Addr pc) const;
    Entry *find(Addr pc);

    FDIP_STATE_MICRO LoopPredictorConfig cfg_;
    FDIP_STATE_ARCH(valid, tag, trip_count, current_count, confidence, lru)
    std::vector<Entry> entries_;
    FDIP_STATE_MICRO std::uint64_t lruClock_ = 0;
};

} // namespace fdip

#endif // FDIP_BPU_LOOP_PREDICTOR_H_
