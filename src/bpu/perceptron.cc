#include "bpu/perceptron.h"

#include <cmath>
#include <cstdlib>

#include "util/bits.h"
#include "util/hotpath.h"

namespace fdip
{

Perceptron::Perceptron(const PerceptronConfig &cfg)
    : cfg_(cfg),
      // Optimal threshold from the perceptron paper: 1.93h + 14.
      threshold_(static_cast<int>(1.93 * cfg.historyBits + 14)),
      weightMax_((1 << (cfg.weightBits - 1)) - 1),
      weights_((std::size_t{1} << cfg.logEntries) *
                   (cfg.historyBits + 1),
               0)
{
}

FDIP_HOT_PATH std::uint32_t
Perceptron::rowOf(Addr pc) const
{
    const std::uint64_t h = (pc >> 2) ^ (pc >> (2 + cfg_.logEntries));
    return static_cast<std::uint32_t>(h & mask(cfg_.logEntries));
}

FDIP_HOT_PATH int
Perceptron::dot(Addr pc) const
{
    const std::int16_t *w =
        &weights_[std::size_t{rowOf(pc)} * (cfg_.historyBits + 1)];
    int sum = w[0]; // Bias.
    for (unsigned i = 0; i < cfg_.historyBits; ++i) {
        const bool bit = (history_ >> i) & 1;
        sum += bit ? w[i + 1] : -w[i + 1];
    }
    return sum;
}

FDIP_HOT_PATH bool
Perceptron::predict(Addr pc) const
{
    return dot(pc) >= 0;
}

FDIP_HOT_PATH void
Perceptron::update(Addr pc, bool taken)
{
    const int sum = dot(pc);
    const bool pred = sum >= 0;
    if (pred != taken || std::abs(sum) <= threshold_) {
        std::int16_t *w =
            &weights_[std::size_t{rowOf(pc)} * (cfg_.historyBits + 1)];
        const auto adjust = [this](std::int16_t &weight, bool up) {
            const int v = weight + (up ? 1 : -1);
            if (v <= weightMax_ && v >= -weightMax_ - 1)
                weight = static_cast<std::int16_t>(v);
        };
        adjust(w[0], taken);
        for (unsigned i = 0; i < cfg_.historyBits; ++i) {
            const bool bit = (history_ >> i) & 1;
            adjust(w[i + 1], bit == taken);
        }
    }
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

std::uint64_t
Perceptron::storageBits() const
{
    // Weight table (incl. bias column) plus the private history register.
    return weights_.size() * static_cast<unsigned>(cfg_.weightBits) +
           cfg_.historyBits;
}

StorageSchema
Perceptron::storageSchema() const
{
    const std::uint64_t rows = std::uint64_t{1} << cfg_.logEntries;
    const auto weight_bits = static_cast<unsigned>(cfg_.weightBits);
    StorageSchema s("perceptron");
    s.add("bias", weight_bits, rows)
        .add("weight", weight_bits, rows * cfg_.historyBits)
        .add("history", cfg_.historyBits);
    return s;
}

} // namespace fdip
