#include "bpu/ittage.h"

#include <cmath>

#include "util/bits.h"
#include "util/log.h"
#include "util/hotpath.h"

namespace fdip
{

Ittage::Ittage(const IttageConfig &cfg, BranchHistory &hist)
    : cfg_(cfg), hist_(hist), rng_(0x697474616765ULL)
{
    if (cfg_.numTables > IttagePrediction::kMaxTables)
        fdip_fatal("ITTAGE numTables %u exceeds metadata capacity",
                   cfg_.numTables);

    const double ratio =
        std::pow(static_cast<double>(cfg_.maxHistory) / cfg_.minHistory,
                 1.0 / (cfg_.numTables - 1));
    histLens_.resize(cfg_.numTables);
    double len = cfg_.minHistory;
    for (unsigned t = 0; t < cfg_.numTables; ++t) {
        histLens_[t] = std::max<unsigned>(
            static_cast<unsigned>(len + 0.5),
            t == 0 ? cfg_.minHistory : histLens_[t - 1] + 1);
        len *= ratio;
    }

    const unsigned bits_per_event = hist_.bitsPerEvent();
    for (unsigned t = 0; t < cfg_.numTables; ++t) {
        const unsigned hist_bits = histLens_[t] * bits_per_event;
        idxFold_.push_back(hist_.registerFold(hist_bits, cfg_.logEntries));
        tagFoldA_.push_back(hist_.registerFold(hist_bits, cfg_.tagBits));
        tagFoldB_.push_back(
            hist_.registerFold(hist_bits, cfg_.tagBits - 1));
    }

    tables_.assign(cfg_.numTables,
                   std::vector<Entry>(std::size_t{1} << cfg_.logEntries));
    base_.assign(std::size_t{1} << cfg_.logBaseEntries, kNoAddr);
}

FDIP_HOT_PATH std::uint32_t
Ittage::tableIndex(Addr pc, unsigned t) const
{
    const std::uint64_t h = (pc >> 2) ^ (pc >> (2 + cfg_.logEntries)) ^
                            hist_.folded(idxFold_[t]) ^
                            (static_cast<std::uint64_t>(t) * 0x51ed);
    return static_cast<std::uint32_t>(h & mask(cfg_.logEntries));
}

FDIP_HOT_PATH std::uint16_t
Ittage::tableTag(Addr pc, unsigned t) const
{
    const std::uint64_t h = (pc >> 2) ^ hist_.folded(tagFoldA_[t]) ^
                            (hist_.folded(tagFoldB_[t]) << 1);
    return static_cast<std::uint16_t>(h & mask(cfg_.tagBits));
}

FDIP_HOT_PATH Addr
Ittage::predict(Addr pc, IttagePrediction &meta) const
{
    meta = IttagePrediction{};
    meta.baseIndex = static_cast<std::uint32_t>(
        ((pc >> 2) ^ (pc >> (2 + cfg_.logBaseEntries))) &
        mask(cfg_.logBaseEntries));

    int provider = -1;
    for (unsigned t = 0; t < cfg_.numTables; ++t) {
        meta.indices[t] = tableIndex(pc, t);
        meta.tags[t] = tableTag(pc, t);
        const Entry &e = tables_[t][meta.indices[t]];
        if (e.valid && e.tag == meta.tags[t])
            provider = static_cast<int>(t);
    }

    meta.provider = provider;
    if (provider >= 0) {
        const Entry &e = tables_[provider][meta.indices[provider]];
        meta.providerConfident = e.conf.value() >= 1;
        if (meta.providerConfident) {
            meta.target = e.target;
            return meta.target;
        }
    }
    meta.target = base_[meta.baseIndex];
    return meta.target;
}

FDIP_HOT_PATH void
Ittage::update(Addr pc, Addr target, const IttagePrediction &meta)
{
    (void)pc;
    const bool mispredicted = meta.target != target;

    base_[meta.baseIndex] = target;

    if (meta.provider >= 0) {
        Entry &e = tables_[meta.provider][meta.indices[meta.provider]];
        if (e.target == target) {
            e.conf.increment();
            e.useful.increment();
        } else {
            if (e.conf.value() == 0)
                e.target = target;
            else
                e.conf.decrement();
        }
    }

    // Allocate on misprediction in a longer-history table.
    if (mispredicted &&
        meta.provider < static_cast<int>(cfg_.numTables) - 1) {
        const unsigned start = static_cast<unsigned>(meta.provider + 1);
        unsigned first = start;
        if (start + 1 < cfg_.numTables && (rng_.next() & 1))
            first = start + 1;
        for (unsigned t = first; t < cfg_.numTables; ++t) {
            Entry &e = tables_[t][meta.indices[t]];
            if (!e.valid || e.useful.value() == 0) {
                e.valid = true;
                e.tag = static_cast<std::uint16_t>(meta.tags[t]);
                e.target = target;
                e.conf.set(0);
                e.useful.set(0);
                break;
            }
            e.useful.decrement();
        }
    }
}

std::uint64_t
Ittage::storageBits() const
{
    return ittageStorageBits(cfg_);
}

StorageSchema
Ittage::storageSchema() const
{
    const std::uint64_t tagged =
        cfg_.numTables * (std::uint64_t{1} << cfg_.logEntries);
    StorageSchema s("ITTAGE");
    s.add("tagged.tag", cfg_.tagBits, tagged)
        .add("tagged.valid", 1, tagged)
        .add("tagged.target", kSchemaAddrBits, tagged)
        .add("tagged.conf", kIttageConfBits, tagged)
        .add("tagged.useful", kIttageUsefulBits, tagged)
        .add("base.target", kSchemaAddrBits,
             std::uint64_t{1} << cfg_.logBaseEntries)
        .add("alloc_lfsr", kIttageAllocRngBits);
    return s;
}

} // namespace fdip
