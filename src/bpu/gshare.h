/**
 * @file
 * A gshare direction predictor with its own idealized direction history,
 * matching the paper's Fig. 12 configuration ("Gshare (8KB) with a
 * 15-bit idealized branch direction history").
 */

#ifndef FDIP_BPU_GSHARE_H_
#define FDIP_BPU_GSHARE_H_

#include <cstdint>
#include <vector>

#include "check/schema.h"
#include "util/sat_counter.h"
#include "util/state.h"
#include "util/types.h"

namespace fdip
{

/**
 * Gshare: a 2-bit-counter table indexed by PC xor global direction
 * history. The history register is maintained with resolved outcomes
 * (idealized, as in the paper), so it is immune to the frontend's
 * history-management policy.
 */
class Gshare
{
  public:
    /** @param log_entries log2 table entries (15 -> 32K x 2b = 8KB).
     *  @param history_bits direction history length. */
    explicit Gshare(unsigned log_entries = 15, unsigned history_bits = 15);

    /** Predicts the direction of the branch at @p pc. */
    bool predict(Addr pc) const;

    /** Trains with the resolved direction and advances the history. */
    void update(Addr pc, bool taken);

    /** Modeled storage in bits; equals storageSchema().totalBits(). */
    std::uint64_t storageBits() const;

    /** Exact per-field storage declaration. */
    StorageSchema storageSchema() const;

  private:
    std::uint32_t indexOf(Addr pc) const;

    FDIP_STATE_MICRO unsigned logEntries_;
    FDIP_STATE_MICRO unsigned historyBits_;
    FDIP_STATE_ARCH(history) std::uint64_t history_ = 0;
    FDIP_STATE_ARCH(ctr) std::vector<SatCounter> table_;
};

} // namespace fdip

#endif // FDIP_BPU_GSHARE_H_
