/**
 * @file
 * A perceptron direction predictor (Jiménez & Lin, HPCA 2001; the
 * paper's reference [22]) as an additional academic baseline beside
 * gshare and TAGE. Like gshare, it keeps its own idealized direction
 * history so it is insulated from the frontend history policy.
 */

#ifndef FDIP_BPU_PERCEPTRON_H_
#define FDIP_BPU_PERCEPTRON_H_

#include <cstdint>
#include <vector>

#include "check/schema.h"
#include "util/state.h"
#include "util/types.h"

namespace fdip
{

/** Perceptron sizing. */
struct PerceptronConfig
{
    unsigned logEntries = 10;  ///< 1K perceptrons.
    unsigned historyBits = 32; ///< Weights per perceptron (+bias).
    int weightBits = 8;        ///< Weight width (clamped training).
};

/**
 * The perceptron predictor.
 */
class Perceptron
{
  public:
    explicit Perceptron(const PerceptronConfig &cfg = PerceptronConfig());

    /** Predicts the direction of the branch at @p pc. */
    bool predict(Addr pc) const;

    /** Trains with the resolved direction and shifts the history. */
    void update(Addr pc, bool taken);

    /** Modeled storage in bits; equals storageSchema().totalBits(). */
    std::uint64_t storageBits() const;

    /** Exact per-field storage declaration. */
    StorageSchema storageSchema() const;

  private:
    std::uint32_t rowOf(Addr pc) const;
    int dot(Addr pc) const;

    FDIP_STATE_MICRO PerceptronConfig cfg_;
    FDIP_STATE_MICRO int threshold_;
    FDIP_STATE_MICRO int weightMax_;
    FDIP_STATE_ARCH(bias, weight)
    std::vector<std::int16_t> weights_; ///< rows x (historyBits + 1).
    FDIP_STATE_ARCH(history) std::uint64_t history_ = 0;
};

} // namespace fdip

#endif // FDIP_BPU_PERCEPTRON_H_
