/**
 * @file
 * A two-level BTB hierarchy (paper Section II-A: "similar to the
 * multi-level cache hierarchy, the multi-level BTB hierarchy can be
 * implemented [25]-[28]").
 *
 * A small L1 BTB answers in the base prediction latency; on an L1 miss
 * that hits the large L2 BTB, the prediction pipeline takes an extra
 * bubble (the re-steer is late by l2ExtraLatency cycles) and the entry
 * is promoted into the L1. This is an optional extension over the
 * paper's single-level evaluation — see bench_ablation_btb_levels.
 */

#ifndef FDIP_BPU_BTB_HIERARCHY_H_
#define FDIP_BPU_BTB_HIERARCHY_H_

#include <optional>

#include "bpu/btb.h"
#include "util/state.h"

namespace fdip
{

/** Two-level BTB configuration. */
struct BtbHierarchyConfig
{
    bool enabled = false;        ///< Off: single-level main BTB only.
    unsigned l1Entries = 1024;   ///< Small zero-bubble L1 BTB.
    unsigned l1Ways = 4;
    unsigned l2ExtraLatency = 2; ///< Bubble on L1-miss/L2-hit takens.
};

/** Result of a hierarchical lookup. */
struct BtbLevelHit
{
    BtbHit hit;
    bool fromL2 = false; ///< True: pay the L2 re-steer bubble.
};

/**
 * The L1 BTB sitting in front of a main (L2) BTB. The main BTB is
 * owned elsewhere (the Bpu); this class owns only the L1 filter.
 */
class BtbHierarchy
{
  public:
    BtbHierarchy(const BtbHierarchyConfig &cfg, Btb &main_btb);

    /** Hierarchical lookup with L1 promotion on L2 hits. */
    std::optional<BtbLevelHit> lookup(Addr pc);

    /** Install into both levels (resolved-branch training path). */
    void install(Addr pc, InstClass kind, Addr target, bool taken);

    const BtbHierarchyConfig &config() const { return cfg_; }

    /** The L1 filter BTB (own budget line, separate from the main). */
    const Btb &l1() const { return l1_; }

    /// @{ Statistics.
    std::uint64_t l1Hits() const { return l1Hits_; }
    std::uint64_t l2Promotions() const { return l2Promotions_; }

    /** Registers L1-filter counters under @p prefix. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;
    /// @}

  private:
    FDIP_STATE_MICRO BtbHierarchyConfig cfg_;
    FDIP_STATE_ARCH(sub) Btb l1_;
    FDIP_STATE_MICRO Btb &main_; ///< Owned by the Bpu, not charged here.
    FDIP_STATE_MICRO std::uint64_t l1Hits_ = 0;
    FDIP_STATE_MICRO std::uint64_t l2Promotions_ = 0;
};

} // namespace fdip

#endif // FDIP_BPU_BTB_HIERARCHY_H_
