#include "bpu/history.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/bits.h"
#include "util/log.h"
#include "util/hotpath.h"

namespace fdip
{

const char *
historyPolicyName(HistoryPolicy p)
{
    switch (p) {
      case HistoryPolicy::kTargetHistory: return "THR";
      case HistoryPolicy::kDirectionHistory: return "GHR";
      case HistoryPolicy::kIdealDirectionHistory: return "Ideal";
    }
    return "?";
}

BranchHistory::BranchHistory(HistoryPolicy policy, unsigned bits_per_event)
    : policy_(policy), bitsPerEvent_(bits_per_event)
{
    if (bitsPerEvent_ == 0) {
        bitsPerEvent_ =
            policy_ == HistoryPolicy::kTargetHistory ? 2 : 1;
    }
    if (bitsPerEvent_ > 8)
        fdip_fatal("bits per history event must be <= 8");
}

unsigned
BranchHistory::registerFold(unsigned length_bits, unsigned folded_bits)
{
    if (folds_.size() >= HistorySnapshot::kMaxFolds)
        fdip_fatal("too many folded history views (max %zu)",
                   HistorySnapshot::kMaxFolds);
    if (length_bits + 512 > kRingWords * 64)
        fdip_fatal("history length %u exceeds ring capacity", length_bits);
    FoldedHistory f;
    f.origLen = length_bits;
    f.compLen = folded_bits;
    folds_.push_back(f);
    return static_cast<unsigned>(folds_.size() - 1);
}

FDIP_HOT_PATH void
BranchHistory::pushBit(unsigned bit)
{
    const std::uint64_t word = (headPos_ / 64) % kRingWords;
    const unsigned off = headPos_ % 64;
    ring_[word] = (ring_[word] & ~(std::uint64_t{1} << off)) |
                  (static_cast<std::uint64_t>(bit) << off);
    // Update folded views before advancing: the bit leaving each window
    // is the one origLen positions behind the new head.
    for (auto &f : folds_) {
        const unsigned out_bit =
            headPos_ >= f.origLen ? bitAt(headPos_ - f.origLen) : 0;
        f.update(bit, out_bit);
    }
    recentBits_ = (recentBits_ << 1) | bit;
    ++headPos_;
}

FDIP_HOT_PATH void
BranchHistory::pushBranch(Addr pc, Addr target, bool taken)
{
    ++numEvents_;
    if (policy_ == HistoryPolicy::kTargetHistory) {
        if (!taken)
            return; // Taken-only target history ignores not-taken.
        // Eq. (2): hash PC and target; push bitsPerEvent_ bits of it.
        const std::uint64_t h = mix64((pc >> 2) ^ (target >> 1));
        for (unsigned i = 0; i < bitsPerEvent_; ++i)
            pushBit((h >> i) & 1);
    } else {
        pushBit(taken ? 1 : 0);
    }
}

FDIP_HOT_PATH HistorySnapshot
BranchHistory::snapshot() const
{
    HistorySnapshot s;
    s.headPos = headPos_;
    s.recentBits = recentBits_;
    s.numFolds = static_cast<std::uint8_t>(folds_.size());
    for (std::size_t i = 0; i < folds_.size(); ++i)
        s.folds[i] = folds_[i].comp;
    return s;
}

FDIP_HOT_PATH void
BranchHistory::restore(const HistorySnapshot &snap)
{
    if (snap.numFolds != folds_.size())
        fdip_panic("history snapshot fold count mismatch");
    if (headPos_ - snap.headPos > (kRingWords * 64) / 2) {
        fdip_panic("history snapshot too old to restore (%llu bits behind)",
                   static_cast<unsigned long long>(headPos_ - snap.headPos));
    }
    headPos_ = snap.headPos;
    recentBits_ = snap.recentBits;
    for (std::size_t i = 0; i < folds_.size(); ++i)
        folds_[i].comp = snap.folds[i];
}

std::uint64_t
BranchHistory::storageBits() const
{
    std::uint64_t foldedBits = 0;
    for (const auto &f : folds_)
        foldedBits += f.compLen;
    return foldedBits;
}

StorageSchema
BranchHistory::storageSchema() const
{
    // Group registered folds by width, preserving first-seen order so
    // the certificate is deterministic for a given registration order.
    std::vector<std::pair<unsigned, std::uint64_t>> widths;
    for (const auto &f : folds_) {
        auto it = std::find_if(
            widths.begin(), widths.end(),
            [&](const auto &w) { return w.first == f.compLen; });
        if (it == widths.end())
            widths.emplace_back(f.compLen, 1);
        else
            ++it->second;
    }
    StorageSchema s("history");
    for (const auto &[width, count] : widths)
        s.add("fold[" + std::to_string(width) + "b]", width, count);
    return s;
}

} // namespace fdip
