/**
 * @file
 * The Branch Prediction Unit: bundles the global history, the direction
 * predictor (TAGE / gshare / perfect), the BTB, the ITTAGE indirect
 * predictor and the RAS behind one configuration, as in the paper's
 * Fig. 2. The prediction-pipeline *logic* (block scanning, FTQ
 * insertion) lives in core/; this module owns the structures.
 */

#ifndef FDIP_BPU_BPU_H_
#define FDIP_BPU_BPU_H_

#include <memory>
#include <vector>

#include "bpu/btb.h"
#include "bpu/btb_hierarchy.h"
#include "bpu/gshare.h"
#include "bpu/history.h"
#include "bpu/ittage.h"
#include "bpu/loop_predictor.h"
#include "bpu/perceptron.h"
#include "bpu/ras.h"
#include "bpu/tage.h"
#include "util/hotpath.h"
#include "util/state.h"
#include "util/types.h"

namespace fdip
{

/** Which conditional direction predictor to instantiate. */
enum class DirectionPredictorKind : std::uint8_t
{
    kTage,       ///< TAGE (baseline).
    kGshare,     ///< Gshare with idealized private history (Fig. 12).
    kPerceptron, ///< Perceptron [22] with idealized private history.
    kPerfect,    ///< Oracle direction prediction (Fig. 12).
};

/** Full BPU configuration. */
struct BpuConfig
{
    HistoryPolicy historyPolicy = HistoryPolicy::kTargetHistory;
    DirectionPredictorKind direction = DirectionPredictorKind::kTage;
    unsigned tageKilobytes = 18;
    unsigned directionHistoryBits = 280; ///< Ideal-GHR length (paper VI-C).
    BtbConfig btb;
    BtbHierarchyConfig btbHierarchy; ///< Optional two-level BTB.
    IttageConfig ittage;
    unsigned rasDepth = 32;
    bool useLoopPredictor = false; ///< Optional loop-exit override.
    LoopPredictorConfig loopPredictor;
    bool perfectBtb = false;      ///< Oracle branch detection + targets.
    bool perfectIndirect = false; ///< Oracle indirect targets.
};

/**
 * Direction prediction result with predictor-specific metadata.
 */
struct DirectionPrediction
{
    bool taken = false;
    TagePrediction tageMeta; ///< Valid when TAGE is the predictor.
    bool loopOverride = false; ///< The loop predictor overrode it.
};

/**
 * The assembled branch prediction unit.
 */
class Bpu
{
  public:
    explicit Bpu(const BpuConfig &cfg);

    const BpuConfig &config() const { return cfg_; }

    FDIP_HOT_PATH BranchHistory &history() { return history_; }
    FDIP_HOT_PATH const BranchHistory &history() const { return history_; }
    FDIP_HOT_PATH Btb &btb() { return *btb_; }
    FDIP_HOT_PATH const Btb &btb() const { return *btb_; }
    FDIP_HOT_PATH Ras &ras() { return ras_; }
    FDIP_HOT_PATH const Ras &ras() const { return ras_; }

    /** The two-level hierarchy, or nullptr when single-level. */
    const BtbHierarchy *btbHierarchy() const { return btbHier_.get(); }

    /**
     * Branch lookup through the (optionally two-level) BTB hierarchy.
     * fromL2 is true when the hit paid the L2 re-steer bubble.
     */
    std::optional<BtbLevelHit> lookupBranch(Addr pc);

    /** Resolved-branch BTB training through the hierarchy. */
    void insertBranch(Addr pc, InstClass kind, Addr target, bool taken);

    /**
     * Predicts the direction of the conditional branch at @p pc.
     * For the perfect predictor, @p oracle_taken is returned directly.
     */
    DirectionPrediction predictDirection(Addr pc, bool oracle_taken) const;

    /** Trains the direction predictor with the resolved outcome. */
    void updateDirection(Addr pc, bool taken,
                         const DirectionPrediction &pred);

    /** Predicts an indirect branch target (kNoAddr if unknown). */
    Addr predictIndirect(Addr pc, IttagePrediction &meta) const;

    /** Trains the indirect predictor. */
    void updateIndirect(Addr pc, Addr target,
                        const IttagePrediction &meta);

    /** Modeled predictor storage in bits (excluding the BTB). */
    std::uint64_t predictorStorageBits() const;

    /** Direction predictor (TAGE/gshare/perceptron + loop) bits only. */
    std::uint64_t directionStorageBits() const;

    /** ITTAGE indirect predictor bits only. */
    std::uint64_t indirectStorageBits() const;

    /** Schemas of the instantiated direction components (the active
     *  TAGE/gshare/perceptron, plus the loop predictor if enabled). */
    std::vector<StorageSchema> directionStorageSchemas() const;

    /** Exact per-field ITTAGE declaration. */
    StorageSchema indirectStorageSchema() const;

    /** Everything: predictors, history, BTB hierarchy, RAS. */
    std::uint64_t storageBits() const;

    /** Registers the BPU's stats tree under @p prefix: the BTB (and
     *  L1-BTB filter when configured), the RAS, and the modeled
     *  storage breakdown. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    FDIP_STATE_MICRO BpuConfig cfg_;
    FDIP_STATE_ARCH(sub) BranchHistory history_;
    FDIP_STATE_ARCH(sub) std::unique_ptr<Tage> tage_;
    FDIP_STATE_ARCH(sub) std::unique_ptr<Gshare> gshare_;
    FDIP_STATE_ARCH(sub) std::unique_ptr<Perceptron> perceptron_;
    FDIP_STATE_ARCH(sub) std::unique_ptr<LoopPredictor> loop_;
    FDIP_STATE_ARCH(sub) std::unique_ptr<Btb> btb_;
    FDIP_STATE_ARCH(sub) std::unique_ptr<BtbHierarchy> btbHier_;
    FDIP_STATE_ARCH(sub) std::unique_ptr<Ittage> ittage_;
    FDIP_STATE_ARCH(sub) Ras ras_;
};

} // namespace fdip

#endif // FDIP_BPU_BPU_H_
