#include "bpu/btb_hierarchy.h"
#include "util/hotpath.h"

namespace fdip
{

namespace
{

BtbConfig
l1Config(const BtbHierarchyConfig &cfg)
{
    BtbConfig c;
    c.numEntries = cfg.l1Entries;
    c.ways = cfg.l1Ways;
    // The L1 filter mirrors the main BTB's allocation policy decisions
    // implicitly: entries only arrive via promotion or insert().
    c.allocateTakenOnly = false;
    return c;
}

} // namespace

BtbHierarchy::BtbHierarchy(const BtbHierarchyConfig &cfg, Btb &main_btb)
    : cfg_(cfg), l1_(l1Config(cfg)), main_(main_btb)
{
}

FDIP_HOT_PATH std::optional<BtbLevelHit>
BtbHierarchy::lookup(Addr pc)
{
    if (const auto h1 = l1_.lookup(pc); h1.has_value()) {
        ++l1Hits_;
        // Keep the main BTB's LRU warm too (it is inclusive-ish).
        main_.lookup(pc);
        return BtbLevelHit{*h1, false};
    }
    if (const auto h2 = main_.lookup(pc); h2.has_value()) {
        ++l2Promotions_;
        l1_.install(pc, h2->kind, h2->target, true);
        return BtbLevelHit{*h2, true};
    }
    return std::nullopt;
}

FDIP_HOT_PATH void
BtbHierarchy::install(Addr pc, InstClass kind, Addr target, bool taken)
{
    main_.install(pc, kind, target, taken);
    if (taken || !main_.config().allocateTakenOnly)
        l1_.install(pc, kind, target, taken);
}

void
BtbHierarchy::registerStats(StatRegistry &reg,
                            const std::string &prefix) const
{
    reg.addCounter(prefix + ".l1_hits", [this] { return l1Hits_; },
                   "lookups answered by the zero-bubble L1 BTB");
    reg.addCounter(prefix + ".l2_promotions",
                   [this] { return l2Promotions_; },
                   "L1-miss/L2-hit promotions (paid the re-steer bubble)");
    l1_.registerStats(reg, prefix + ".l1");
}

} // namespace fdip
