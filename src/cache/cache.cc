#include "cache/cache.h"

#include "util/bits.h"
#include "util/log.h"
#include "util/hotpath.h"

namespace fdip
{

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg), rng_(0xcac4e + cfg.sizeBytes)
{
    if (!isPowerOf2(cfg_.lineBytes))
        fdip_fatal("%s: line size must be a power of two",
                   cfg_.name.c_str());
    const std::uint64_t lines = cfg_.sizeBytes / cfg_.lineBytes;
    if (lines % cfg_.ways != 0)
        fdip_fatal("%s: %llu lines not divisible by %u ways",
                   cfg_.name.c_str(),
                   static_cast<unsigned long long>(lines), cfg_.ways);
    numSets_ = static_cast<unsigned>(lines / cfg_.ways);
    if (!isPowerOf2(numSets_))
        fdip_fatal("%s: set count %u must be a power of two",
                   cfg_.name.c_str(), numSets_);
    lineShift_ = floorLog2(cfg_.lineBytes);
    lines_.assign(lines, Line{});
}

FDIP_HOT_PATH std::uint32_t
Cache::setOf(Addr addr) const
{
    return static_cast<std::uint32_t>((addr >> lineShift_) &
                                      (numSets_ - 1));
}

FDIP_HOT_PATH Cache::Line *
Cache::findLine(Addr addr)
{
    const Addr tag = addr >> lineShift_;
    Line *row = &lines_[std::size_t{setOf(addr)} * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (row[w].valid && row[w].tag == tag)
            return &row[w];
    }
    return nullptr;
}

FDIP_HOT_PATH const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

FDIP_HOT_PATH std::optional<unsigned>
Cache::probe(Addr addr) FDIP_HOT_NOEXCEPT
{
    ++tagAccesses_;
    const Line *l = findLine(addr);
    if (l == nullptr) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    const Line *row = &lines_[std::size_t{setOf(addr)} * cfg_.ways];
    return static_cast<unsigned>(l - row);
}

FDIP_HOT_PATH std::optional<unsigned>
Cache::access(Addr addr) FDIP_HOT_NOEXCEPT
{
    ++tagAccesses_;
    Line *l = findLine(addr);
    if (l == nullptr) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    l->lru = ++lruClock_;
    Line *row = &lines_[std::size_t{setOf(addr)} * cfg_.ways];
    return static_cast<unsigned>(l - row);
}

FDIP_HOT_PATH void
Cache::touch(Addr addr) FDIP_HOT_NOEXCEPT
{
    Line *l = findLine(addr);
    if (l != nullptr)
        l->lru = ++lruClock_;
}

FDIP_HOT_PATH Addr
Cache::fill(Addr addr, unsigned *way_out) FDIP_HOT_NOEXCEPT
{
    Line *existing = findLine(addr);
    if (existing != nullptr) {
        existing->lru = ++lruClock_;
        if (way_out != nullptr) {
            Line *row = &lines_[std::size_t{setOf(addr)} * cfg_.ways];
            *way_out = static_cast<unsigned>(existing - row);
        }
        return kNoAddr;
    }

    Line *row = &lines_[std::size_t{setOf(addr)} * cfg_.ways];
    Line *victim = nullptr;
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (!row[w].valid) {
            victim = &row[w];
            break;
        }
    }
    if (victim == nullptr) {
        if (cfg_.replacement == ReplacementPolicy::kRandom) {
            victim = &row[rng_.below(cfg_.ways)];
        } else {
            victim = &row[0];
            for (unsigned w = 1; w < cfg_.ways; ++w) {
                if (row[w].lru < victim->lru)
                    victim = &row[w];
            }
        }
    }

    Addr evicted = kNoAddr;
    if (victim->valid) {
        ++evictions_;
        evicted = (victim->tag << lineShift_);
    }
    victim->valid = true;
    victim->tag = addr >> lineShift_;
    victim->lru = ++lruClock_;
    if (way_out != nullptr)
        *way_out = static_cast<unsigned>(victim - row);
    return evicted;
}

FDIP_HOT_PATH bool
Cache::contains(Addr addr) const FDIP_HOT_NOEXCEPT
{
    return findLine(addr) != nullptr;
}

FDIP_HOT_PATH void
Cache::invalidate(Addr addr) FDIP_HOT_NOEXCEPT
{
    Line *l = findLine(addr);
    if (l != nullptr)
        l->valid = false;
}

void
Cache::reset()
{
    for (auto &l : lines_)
        l.valid = false;
}

std::uint64_t
Cache::storageBitsFor(const CacheConfig &cfg)
{
    return storageSchemaFor(cfg).totalBits();
}

StorageSchema
Cache::storageSchemaFor(const CacheConfig &cfg)
{
    const std::uint64_t lines = cfg.sizeBytes / cfg.lineBytes;
    const std::uint64_t sets = lines / cfg.ways;
    const unsigned offsetBits = floorLog2(cfg.lineBytes);
    const unsigned setBits = floorLog2(sets);
    const unsigned tagBits = kSchemaAddrBits - offsetBits - setBits;
    StorageSchema s(cfg.name);
    s.add("data", std::uint64_t{cfg.lineBytes} * 8, lines)
        .add("tag", tagBits, lines)
        .add("valid", 1, lines);
    if (cfg.replacement == ReplacementPolicy::kLru)
        s.add("lru", ceilLog2(cfg.ways), lines);
    else
        s.add("victim_lfsr", 64); // The replacement Rng's state.
    return s;
}

void
Cache::resetStats()
{
    tagAccesses_ = 0;
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
}

void
Cache::registerStats(StatRegistry &reg, const std::string &prefix) const
{
    reg.addCounter(prefix + ".tag_accesses",
                   [this] { return tagAccesses_; },
                   "tag-array probes (demand + prefetch)");
    reg.addCounter(prefix + ".hits", [this] { return hits_; });
    reg.addCounter(prefix + ".misses", [this] { return misses_; });
    reg.addCounter(prefix + ".evictions", [this] { return evictions_; });
    reg.addCounter(prefix + ".storage_bits",
                   [this] { return storageBits(); },
                   "modeled storage (data + tags + valid)");
    reg.addDerived(prefix + ".miss_rate",
                   [this] {
                       return tagAccesses_ == 0
                                  ? 0.0
                                  : static_cast<double>(misses_) /
                                        static_cast<double>(tagAccesses_);
                   },
                   "misses / tag accesses");
}

} // namespace fdip
