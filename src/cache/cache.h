/**
 * @file
 * A generic set-associative tag array used for the L1I, L1D, L2 and
 * LLC. The simulator is latency-based, so caches track tags and
 * replacement state only; data never moves.
 */

#ifndef FDIP_CACHE_CACHE_H_
#define FDIP_CACHE_CACHE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/schema.h"
#include "obs/stat_registry.h"
#include "util/hotpath.h"
#include "util/rng.h"
#include "util/state.h"
#include "util/types.h"

namespace fdip
{

/** Replacement policy selection. */
enum class ReplacementPolicy : std::uint8_t
{
    kLru,
    kRandom,
};

/** Cache geometry. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned ways = 8;
    unsigned lineBytes = kCacheLineBytes;
    ReplacementPolicy replacement = ReplacementPolicy::kLru;
};

/**
 * A set-associative tag array.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    FDIP_HOT_PATH const CacheConfig &config() const { return cfg_; }

    /** Line-aligns an address. */
    FDIP_HOT_PATH Addr
    lineOf(Addr addr) const FDIP_HOT_NOEXCEPT
    {
        return addr & ~static_cast<Addr>(cfg_.lineBytes - 1);
    }

    /**
     * Tag probe without replacement update (the FTQ's I-cache tag
     * lookup). Returns the hitting way, if any. Counted as a tag
     * access.
     */
    std::optional<unsigned> probe(Addr addr) FDIP_HOT_NOEXCEPT;

    /**
     * Full access: probe plus LRU touch on hit. Counted as a tag
     * access. Returns the hitting way, if any.
     */
    std::optional<unsigned> access(Addr addr) FDIP_HOT_NOEXCEPT;

    /** LRU touch of a known-resident line (no tag access counted). */
    void touch(Addr addr) FDIP_HOT_NOEXCEPT;

    /**
     * Fills the line for @p addr, evicting the replacement victim.
     * Returns the evicted line address (kNoAddr if the way was empty),
     * and the way filled via @p way_out when non-null.
     */
    Addr fill(Addr addr,
              unsigned *way_out = nullptr) FDIP_HOT_NOEXCEPT;

    /** True if the line is resident (no stats, no LRU update). */
    bool contains(Addr addr) const FDIP_HOT_NOEXCEPT;

    /** Removes the line if resident. */
    void invalidate(Addr addr) FDIP_HOT_NOEXCEPT;

    /** Removes everything (testing). */
    void reset();

    unsigned numSets() const { return numSets_; }

    /**
     * Modeled storage in bits for @p cfg: data plus a 48-bit-address
     * tag array (tag = addr bits above set+offset), valid bits, and
     * replacement state (a per-line LRU rank under kLru, the victim
     * LFSR under kRandom). Equals storageSchemaFor(cfg).totalBits().
     */
    static std::uint64_t storageBitsFor(const CacheConfig &cfg);

    /** Exact per-field storage declaration for @p cfg. */
    static StorageSchema storageSchemaFor(const CacheConfig &cfg);

    /** Modeled storage in bits of this instance. */
    std::uint64_t storageBits() const { return storageBitsFor(cfg_); }

    /** Exact per-field storage declaration of this instance. */
    StorageSchema storageSchema() const { return storageSchemaFor(cfg_); }

    /// @{ Statistics.
    FDIP_HOT_PATH std::uint64_t tagAccesses() const { return tagAccesses_; }
    FDIP_HOT_PATH std::uint64_t hits() const { return hits_; }
    FDIP_HOT_PATH std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    void resetStats();

    /** Registers this cache's counters under @p prefix (e.g.
     *  "frontend.l1i" -> "frontend.l1i.hits"). */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;
    /// @}

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lru = 0;
    };

    std::uint32_t setOf(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    FDIP_STATE_MICRO CacheConfig cfg_;
    FDIP_STATE_MICRO unsigned numSets_;
    FDIP_STATE_MICRO unsigned lineShift_;
    FDIP_STATE_ARCH(data, tag, valid, lru) std::vector<Line> lines_;
    FDIP_STATE_MICRO std::uint64_t lruClock_ = 0;
    FDIP_STATE_ARCH(victim_lfsr) Rng rng_;

    FDIP_STATE_MICRO std::uint64_t tagAccesses_ = 0;
    FDIP_STATE_MICRO std::uint64_t hits_ = 0;
    FDIP_STATE_MICRO std::uint64_t misses_ = 0;
    FDIP_STATE_MICRO std::uint64_t evictions_ = 0;
};

} // namespace fdip

#endif // FDIP_CACHE_CACHE_H_
