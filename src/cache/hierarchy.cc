#include "cache/hierarchy.h"

namespace fdip
{

MemoryHierarchy::MemoryHierarchy(const MemoryConfig &cfg)
    : cfg_(cfg), l1d_(cfg.l1d), l2_(cfg.l2), llc_(cfg.llc)
{
}

FillResult
MemoryHierarchy::walkBelowL1(Addr line, Cycle now)
{
    FillResult r;
    if (l2_.access(line)) {
        r.level = HitLevel::kL2;
        r.ready = now + cfg_.l2Latency;
        return r;
    }
    if (llc_.access(line)) {
        r.level = HitLevel::kLlc;
        r.ready = now + cfg_.llcLatency;
        l2_.insert(line);
        return r;
    }
    // DRAM: respect channel occupancy.
    ++dramAccesses_;
    const Cycle start = std::max(now, nextDramFree_);
    nextDramFree_ = start + cfg_.dramOccupancy;
    r.level = HitLevel::kDram;
    r.ready = start + cfg_.dramLatency;
    llc_.insert(line);
    l2_.insert(line);
    return r;
}

FillResult
MemoryHierarchy::fetchInstLine(Addr line_addr, Cycle now)
{
    ++instRequests_;
    const Addr line = l2_.lineOf(line_addr);

    auto it = inFlightInst_.find(line);
    if (it != inFlightInst_.end()) {
        if (it->second > now) {
            ++instMerged_;
            // Merged into an outstanding fill; level approximated as L2
            // (the merge point does not matter for timing).
            return FillResult{it->second, HitLevel::kL2};
        }
        inFlightInst_.erase(it);
    }

    const FillResult r = walkBelowL1(line, now);
    if (r.ready > now)
        inFlightInst_[line] = r.ready;
    return r;
}

FillResult
MemoryHierarchy::dataAccess(Addr addr, Cycle now, bool is_store)
{
    const Addr line = l1d_.lineOf(addr);
    if (l1d_.access(line)) {
        return FillResult{now + cfg_.l1dLatency, HitLevel::kL1};
    }

    auto it = inFlightData_.find(line);
    if (it != inFlightData_.end()) {
        if (it->second > now)
            return FillResult{it->second, HitLevel::kL2};
        inFlightData_.erase(it);
        // The earlier fill has completed; the line is now resident.
        l1d_.insert(line);
        return FillResult{now + cfg_.l1dLatency, HitLevel::kL1};
    }

    FillResult r = walkBelowL1(line, now);
    r.ready += cfg_.l1dLatency;
    if (!is_store) {
        // Loads allocate into the L1D (stores modeled write-through,
        // no-allocate, which keeps the I-side focus of the study).
        if (r.ready > now + cfg_.l1dLatency)
            inFlightData_[line] = r.ready;
        else
            l1d_.insert(line);
    }
    return r;
}

void
MemoryHierarchy::resetStats()
{
    instRequests_ = 0;
    instMerged_ = 0;
    dramAccesses_ = 0;
    l1d_.resetStats();
    l2_.resetStats();
    llc_.resetStats();
}

void
MemoryHierarchy::registerStats(StatRegistry &reg,
                               const std::string &prefix) const
{
    reg.addCounter(prefix + ".inst_requests",
                   [this] { return instRequests_; },
                   "instruction-line fetches below the L1I");
    reg.addCounter(prefix + ".inst_requests_merged",
                   [this] { return instMerged_; },
                   "fetches merged into an in-flight request");
    reg.addCounter(prefix + ".dram_accesses",
                   [this] { return dramAccesses_; });
    l1d_.registerStats(reg, prefix + ".l1d");
    l2_.registerStats(reg, prefix + ".l2");
    llc_.registerStats(reg, prefix + ".llc");
}

} // namespace fdip
