#include "cache/hierarchy.h"
#include "util/hotpath.h"

namespace fdip
{

namespace
{

/** Preallocation for the lazily-reaped in-flight maps: far above any
 *  real in-flight population (L1I MSHRs bound the I-side; the ROB
 *  bounds the D-side) so steady-state puts never allocate. */
constexpr std::size_t kInFlightMapEntries = 4096;

} // namespace

MemoryHierarchy::MemoryHierarchy(const MemoryConfig &cfg)
    : cfg_(cfg), l1d_(cfg.l1d), l2_(cfg.l2), llc_(cfg.llc),
      inFlightInst_(kInFlightMapEntries),
      inFlightData_(kInFlightMapEntries)
{
}

FDIP_HOT_PATH FillResult
MemoryHierarchy::walkBelowL1(Addr line, Cycle now) FDIP_HOT_NOEXCEPT
{
    FillResult r;
    if (l2_.access(line)) {
        r.level = HitLevel::kL2;
        r.ready = now + cfg_.l2Latency;
        return r;
    }
    if (llc_.access(line)) {
        r.level = HitLevel::kLlc;
        r.ready = now + cfg_.llcLatency;
        l2_.fill(line);
        return r;
    }
    // DRAM: respect channel occupancy.
    ++dramAccesses_;
    const Cycle start = std::max(now, nextDramFree_);
    nextDramFree_ = start + cfg_.dramOccupancy;
    r.level = HitLevel::kDram;
    r.ready = start + cfg_.dramLatency;
    llc_.fill(line);
    l2_.fill(line);
    return r;
}

FDIP_HOT_PATH FillResult
MemoryHierarchy::fetchInstLine(Addr line_addr,
                               Cycle now) FDIP_HOT_NOEXCEPT
{
    ++instRequests_;
    const Addr line = l2_.lineOf(line_addr);

    if (const Cycle *ready = inFlightInst_.find(line)) {
        if (*ready > now) {
            ++instMerged_;
            // Merged into an outstanding fill; level approximated as L2
            // (the merge point does not matter for timing).
            return FillResult{*ready, HitLevel::kL2};
        }
        inFlightInst_.erase(line);
    }

    const FillResult r = walkBelowL1(line, now);
    if (r.ready > now)
        inFlightInst_.put(line, r.ready);
    return r;
}

FDIP_HOT_PATH FillResult
MemoryHierarchy::dataAccess(Addr addr, Cycle now,
                            bool is_store) FDIP_HOT_NOEXCEPT
{
    const Addr line = l1d_.lineOf(addr);
    if (l1d_.access(line)) {
        return FillResult{now + cfg_.l1dLatency, HitLevel::kL1};
    }

    if (const Cycle *ready = inFlightData_.find(line)) {
        if (*ready > now)
            return FillResult{*ready, HitLevel::kL2};
        inFlightData_.erase(line);
        // The earlier fill has completed; the line is now resident.
        l1d_.fill(line);
        return FillResult{now + cfg_.l1dLatency, HitLevel::kL1};
    }

    FillResult r = walkBelowL1(line, now);
    r.ready += cfg_.l1dLatency;
    if (!is_store) {
        // Loads allocate into the L1D (stores modeled write-through,
        // no-allocate, which keeps the I-side focus of the study).
        if (r.ready > now + cfg_.l1dLatency)
            inFlightData_.put(line, r.ready);
        else
            l1d_.fill(line);
    }
    return r;
}

void
MemoryHierarchy::resetStats()
{
    instRequests_ = 0;
    instMerged_ = 0;
    dramAccesses_ = 0;
    l1d_.resetStats();
    l2_.resetStats();
    llc_.resetStats();
}

void
MemoryHierarchy::registerStats(StatRegistry &reg,
                               const std::string &prefix) const
{
    reg.addCounter(prefix + ".inst_requests",
                   [this] { return instRequests_; },
                   "instruction-line fetches below the L1I");
    reg.addCounter(prefix + ".inst_requests_merged",
                   [this] { return instMerged_; },
                   "fetches merged into an in-flight request");
    reg.addCounter(prefix + ".dram_accesses",
                   [this] { return dramAccesses_; });
    l1d_.registerStats(reg, prefix + ".l1d");
    l2_.registerStats(reg, prefix + ".l2");
    llc_.registerStats(reg, prefix + ".llc");
}

} // namespace fdip
