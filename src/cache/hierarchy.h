/**
 * @file
 * The memory hierarchy below the L1I: L1D, unified L2, LLC, and a DRAM
 * latency/bandwidth model. The L1I itself is owned by the fetch
 * pipeline (its tag array is architecturally visible to the FTQ state
 * machine); everything below it is latency-modeled here.
 */

#ifndef FDIP_CACHE_HIERARCHY_H_
#define FDIP_CACHE_HIERARCHY_H_

#include <cstdint>

#include "cache/cache.h"
#include "util/flat_map.h"
#include "util/hotpath.h"
#include "util/state.h"
#include "util/types.h"

namespace fdip
{

/** Where a request was satisfied. */
enum class HitLevel : std::uint8_t
{
    kL1,
    kL2,
    kLlc,
    kDram,
};

/** Hierarchy configuration (defaults follow the IPC-1 framework). */
struct MemoryConfig
{
    CacheConfig l1d{"L1D", 48 * 1024, 12, kCacheLineBytes,
                    ReplacementPolicy::kLru};
    CacheConfig l2{"L2", 512 * 1024, 8, kCacheLineBytes,
                   ReplacementPolicy::kLru};
    CacheConfig llc{"LLC", 2 * 1024 * 1024, 16, kCacheLineBytes,
                    ReplacementPolicy::kLru};

    unsigned l1dLatency = 5;   ///< Load-to-use on an L1D hit.
    unsigned l2Latency = 14;   ///< L1 miss, L2 hit.
    unsigned llcLatency = 40;  ///< L2 miss, LLC hit.
    unsigned dramLatency = 180;
    unsigned dramOccupancy = 6; ///< Channel occupancy per DRAM access.
};

/** Completion of a hierarchy request. */
struct FillResult
{
    Cycle ready = 0;
    HitLevel level = HitLevel::kL1;
};

/**
 * Latency-based model of L1D + L2 + LLC + DRAM with in-flight request
 * merging (MSHR-style) and a simple DRAM bandwidth constraint.
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const MemoryConfig &cfg);

    /**
     * Fetches an instruction line on behalf of an L1I miss (demand or
     * prefetch). Probes L2, then LLC, then DRAM; fills the probed
     * levels on the way back. Duplicate in-flight requests merge.
     */
    FillResult fetchInstLine(Addr line_addr,
                             Cycle now) FDIP_HOT_NOEXCEPT;

    /**
     * A data-side access from the backend. Probes the L1D first.
     */
    FillResult dataAccess(Addr addr, Cycle now,
                          bool is_store) FDIP_HOT_NOEXCEPT;

    /// @{ Component access for tests and stats.
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    Cache &llc() { return llc_; }
    /// @}

    /// @{ Statistics.
    std::uint64_t instRequests() const { return instRequests_; }
    std::uint64_t instRequestsMerged() const { return instMerged_; }
    std::uint64_t dramAccesses() const { return dramAccesses_; }
    void resetStats();

    /** Registers hierarchy counters (and the per-level caches) under
     *  @p prefix ("mem" -> "mem.dram_accesses", "mem.l2.hits", ...). */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;
    /// @}

  private:
    /** Walks L2 -> LLC -> DRAM and fills on the way back. */
    FillResult walkBelowL1(Addr line, Cycle now) FDIP_HOT_NOEXCEPT;

    FDIP_STATE_MICRO MemoryConfig cfg_;
    FDIP_STATE_ARCH(sub) Cache l1d_;
    FDIP_STATE_ARCH(sub) Cache l2_;
    FDIP_STATE_ARCH(sub) Cache llc_;

    /** In-flight instruction-line fills (line -> completion). Expired
     *  entries are reaped lazily on re-touch, so the maps can exceed
     *  the true in-flight count; the preallocation (see the ctor)
     *  covers that slack so steady-state puts never allocate. */
    FDIP_STATE_MICRO FlatMap<Addr, Cycle> inFlightInst_;
    /** In-flight data-line fills. */
    FDIP_STATE_MICRO FlatMap<Addr, Cycle> inFlightData_;

    FDIP_STATE_MICRO Cycle nextDramFree_ = 0;

    FDIP_STATE_MICRO std::uint64_t instRequests_ = 0;
    FDIP_STATE_MICRO std::uint64_t instMerged_ = 0;
    FDIP_STATE_MICRO std::uint64_t dramAccesses_ = 0;
};

} // namespace fdip

#endif // FDIP_CACHE_HIERARCHY_H_
