/**
 * @file
 * Fundamental scalar types used throughout fdipsim.
 */

#ifndef FDIP_UTIL_TYPES_H_
#define FDIP_UTIL_TYPES_H_

#include <cstdint>
#include <limits>

namespace fdip
{

/** A (virtual) memory address. The simulator models 48-bit VAs. */
using Addr = std::uint64_t;

/** A simulation cycle count. */
using Cycle = std::uint64_t;

/** A dynamic-instruction sequence number (position in the trace). */
using InstSeq = std::uint64_t;

/** Sentinel for "no cycle" / "not scheduled". */
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for "no address". */
inline constexpr Addr kNoAddr = std::numeric_limits<Addr>::max();

/** Fixed instruction size in bytes (the paper assumes 32-bit insts). */
inline constexpr unsigned kInstBytes = 4;

/** FTQ entries cover 32-byte aligned instruction blocks (8 insts). */
inline constexpr unsigned kFetchBlockBytes = 32;

/** Instructions per fetch block. */
inline constexpr unsigned kInstsPerBlock = kFetchBlockBytes / kInstBytes;

/** I-cache line size in bytes. */
inline constexpr unsigned kCacheLineBytes = 64;

} // namespace fdip

#endif // FDIP_UTIL_TYPES_H_
