/**
 * @file
 * The FDIP_CHECK invariant-checking layer.
 *
 * Simulator correctness is load-bearing for every reproduced figure:
 * a silently corrupted FTQ or RAS produces numbers, just wrong ones.
 * This header provides:
 *
 *  - FDIP_CHECK(cond, fmt, ...):   hot-path invariant assertion.
 *    Enabled when FDIP_ENABLE_CHECKS is 1 (the default build); compiled
 *    out entirely in release builds configured with -DFDIP_CHECKS=OFF.
 *    On failure it throws InvariantViolation (so tests can assert that
 *    illegal states are caught; an uncaught violation terminates).
 *
 *  - InvariantScope: an RAII marker naming the checking context.
 *    Violation messages carry the full scope path (e.g.
 *    "Frontend::tick/fetch"), which turns a bare failed expression
 *    into an actionable report.
 *
 * Everything here is header-only so that any module (including
 * fdip_util, which everything links against) can use FDIP_CHECK
 * without creating a library dependency cycle.
 */

#ifndef FDIP_UTIL_INVARIANT_H_
#define FDIP_UTIL_INVARIANT_H_

#include <stdexcept>
#include <string>
#include <vector>

#include "util/log.h"

/**
 * FDIP_ENABLE_CHECKS is normally injected by the build system (the
 * FDIP_CHECKS CMake option, default ON). Standalone inclusion falls
 * back to assert()-like semantics: on unless NDEBUG.
 */
#ifndef FDIP_ENABLE_CHECKS
#ifdef NDEBUG
#define FDIP_ENABLE_CHECKS 0
#else
#define FDIP_ENABLE_CHECKS 1
#endif
#endif

namespace fdip
{

/** Compile-time view of the check configuration (for if constexpr). */
inline constexpr bool kInvariantChecksEnabled = FDIP_ENABLE_CHECKS != 0;

/**
 * Thrown when an FDIP_CHECK fails. Derives from std::logic_error: a
 * violated invariant is a simulator bug or an illegal configuration,
 * never a recoverable runtime condition.
 */
class InvariantViolation : public std::logic_error
{
  public:
    explicit InvariantViolation(const std::string &msg)
        : std::logic_error(msg)
    {
    }
};

namespace check_detail
{

/** Thread-local stack of active InvariantScope names. */
inline std::vector<const char *> &
scopeStack()
{
    thread_local std::vector<const char *> stack;
    return stack;
}

/** "outer/inner" path of the active scopes ("(global)" when none). */
inline std::string
scopePath()
{
    const auto &stack = scopeStack();
    if (stack.empty())
        return "(global)";
    std::string path;
    for (const char *name : stack) {
        if (!path.empty())
            path += '/';
        path += name;
    }
    return path;
}

/** Builds the violation message and throws. */
[[noreturn]] inline void
checkFailed(const char *file, int line, const char *expr,
            const std::string &msg)
{
    throw InvariantViolation(log_detail::format(
        "%s:%d: invariant violated in %s: (%s) %s", file, line,
        scopePath().c_str(), expr, msg.c_str()));
}

} // namespace check_detail

/**
 * Names the enclosing checking context for the lifetime of the object.
 * A no-op (and zero-cost) when checks are compiled out.
 */
class InvariantScope
{
  public:
#if FDIP_ENABLE_CHECKS
    explicit InvariantScope(const char *name)
    {
        check_detail::scopeStack().push_back(name);
    }
    ~InvariantScope() { check_detail::scopeStack().pop_back(); }
#else
    explicit InvariantScope(const char *) {}
#endif
    InvariantScope(const InvariantScope &) = delete;
    InvariantScope &operator=(const InvariantScope &) = delete;

    /** The active scope path (for tests and diagnostics). */
    static std::string path() { return check_detail::scopePath(); }
};

} // namespace fdip

#if FDIP_ENABLE_CHECKS
/**
 * Asserts a simulator invariant. The message is printf-style.
 * Throws fdip::InvariantViolation on failure; compiled out when the
 * build disables checks (-DFDIP_CHECKS=OFF).
 */
#define FDIP_CHECK(cond, ...)                                                 \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::fdip::check_detail::checkFailed(                                \
                __FILE__, __LINE__, #cond,                                    \
                ::fdip::log_detail::format(__VA_ARGS__));                     \
        }                                                                     \
    } while (0)
#else
#define FDIP_CHECK(cond, ...) ((void)0)
#endif

/**
 * Always-on variant for construction-time legality (cheap, cold path):
 * active even when hot-path checks are compiled out, so an illegal
 * structure can never be built silently.
 */
#define FDIP_REQUIRE(cond, ...)                                               \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::fdip::check_detail::checkFailed(                                \
                __FILE__, __LINE__, #cond,                                    \
                ::fdip::log_detail::format(__VA_ARGS__));                     \
        }                                                                     \
    } while (0)

#endif // FDIP_UTIL_INVARIANT_H_
