#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/log.h"

namespace fdip
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size()) {
        fdip_fatal("table row width %zu != header width %zu", row.size(),
                   header_.size());
    }
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

void
TextTable::print(std::FILE *out) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            std::fprintf(out, "%s%*s", c == 0 ? "| " : " | ",
                         static_cast<int>(widths[c]), row[c].c_str());
        }
        std::fprintf(out, " |\n");
    };

    print_row(header_);
    for (std::size_t c = 0; c < header_.size(); ++c) {
        std::fprintf(out, "%s%s", c == 0 ? "|-" : "-|-",
                     std::string(widths[c], '-').c_str());
    }
    std::fprintf(out, "-|\n");
    for (const auto &row : rows_)
        print_row(row);
}

void
TextTable::printCsv(std::FILE *out) const
{
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            std::fprintf(out, "%s%s", c == 0 ? "" : ",", row[c].c_str());
        std::fprintf(out, "\n");
    };
    print_row(header_);
    for (const auto &row : rows_)
        print_row(row);
}

} // namespace fdip
