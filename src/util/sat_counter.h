/**
 * @file
 * Saturating counters, the workhorse of branch predictors.
 */

#ifndef FDIP_UTIL_SAT_COUNTER_H_
#define FDIP_UTIL_SAT_COUNTER_H_

#include <cassert>
#include <cstdint>

#include "util/hotpath.h"

namespace fdip
{

/**
 * An unsigned saturating counter with a runtime bit width.
 *
 * The most significant bit is conventionally the "predict taken" bit.
 */
class SatCounter
{
  public:
    /** @param num_bits counter width in bits (1..15).
     *  @param initial  initial counter value. */
    explicit SatCounter(unsigned num_bits = 2,
                        unsigned initial = 0) noexcept
        : value_(static_cast<std::uint16_t>(initial)),
          max_(static_cast<std::uint16_t>((1u << num_bits) - 1))
    {
        assert(num_bits >= 1 && num_bits <= 15);
        assert(initial <= max_);
    }

    /** Increments, saturating at the maximum. */
    FDIP_HOT_PATH void
    increment() noexcept
    {
        if (value_ < max_)
            ++value_;
    }

    /** Decrements, saturating at zero. */
    FDIP_HOT_PATH void
    decrement() noexcept
    {
        if (value_ > 0)
            --value_;
    }

    /** Moves toward taken (true) or not-taken (false). */
    void
    update(bool taken) noexcept
    {
        if (taken)
            increment();
        else
            decrement();
    }

    /** Predicted direction: MSB set. */
    [[nodiscard]] bool
    taken() const noexcept
    {
        return value_ > max_ / 2;
    }

    /** True at either saturation point (strongly biased). */
    [[nodiscard]] bool
    saturated() const noexcept
    {
        return value_ == 0 || value_ == max_;
    }

    /** True in one of the two weak states (around the midpoint). */
    [[nodiscard]] bool
    weak() const noexcept
    {
        return value_ == max_ / 2 || value_ == max_ / 2 + 1;
    }

    /** Raw counter value. */
    [[nodiscard]] unsigned value() const noexcept { return value_; }

    /** Maximum representable value. */
    [[nodiscard]] unsigned maxValue() const noexcept { return max_; }

    /** Forces the raw value (used by predictor allocation paths). */
    void
    set(unsigned v) noexcept
    {
        assert(v <= max_);
        value_ = static_cast<std::uint16_t>(v);
    }

    /** Resets toward the weak state matching @p taken. */
    void
    reset(bool taken) noexcept
    {
        value_ = static_cast<std::uint16_t>(taken ? max_ / 2 + 1 : max_ / 2);
    }

  private:
    std::uint16_t value_;
    std::uint16_t max_;
};

/**
 * A signed saturating counter in [-2^(n-1), 2^(n-1) - 1], as used by TAGE.
 */
class SignedSatCounter
{
  public:
    explicit SignedSatCounter(unsigned num_bits = 3,
                              int initial = 0) noexcept
        : value_(static_cast<std::int16_t>(initial)),
          min_(static_cast<std::int16_t>(-(1 << (num_bits - 1)))),
          max_(static_cast<std::int16_t>((1 << (num_bits - 1)) - 1))
    {
        assert(num_bits >= 1 && num_bits <= 15);
        assert(initial >= min_ && initial <= max_);
    }

    /** Moves toward taken (positive) or not-taken (negative). */
    FDIP_HOT_PATH void
    update(bool taken) noexcept
    {
        if (taken) {
            if (value_ < max_)
                ++value_;
        } else {
            if (value_ > min_)
                --value_;
        }
    }

    /** Predicted direction: value >= 0. */
    [[nodiscard]] FDIP_HOT_PATH bool taken() const noexcept { return value_ >= 0; }

    /** True in the two weakest states (0 and -1). */
    [[nodiscard]] bool
    weak() const noexcept
    {
        return value_ == 0 || value_ == -1;
    }

    /** True at either saturation point. */
    [[nodiscard]] bool
    saturated() const noexcept
    {
        return value_ == min_ || value_ == max_;
    }

    [[nodiscard]] int value() const noexcept { return value_; }

    void
    set(int v) noexcept
    {
        assert(v >= min_ && v <= max_);
        value_ = static_cast<std::int16_t>(v);
    }

    /** Resets to the weak state matching @p taken. */
    void reset(bool taken) noexcept { value_ = taken ? 0 : -1; }

  private:
    std::int16_t value_;
    std::int16_t min_;
    std::int16_t max_;
};

} // namespace fdip

#endif // FDIP_UTIL_SAT_COUNTER_H_
