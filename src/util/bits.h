/**
 * @file
 * Bit-manipulation helpers shared by predictors and caches.
 */

#ifndef FDIP_UTIL_BITS_H_
#define FDIP_UTIL_BITS_H_

#include <cassert>
#include <cstdint>

#include "util/hotpath.h"

namespace fdip
{

/** Returns a mask with the low @p n bits set (n in [0, 64]). */
FDIP_HOT_PATH constexpr std::uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/** Extracts bits [lo, lo+n) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned n)
{
    return (v >> lo) & mask(n);
}

/** True if @p v is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
FDIP_HOT_PATH constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v > 1) {
        v >>= 1;
        ++l;
    }
    return l;
}

/**
 * Bits needed to count @p v distinct states (ceil(log2(v))); the width
 * of an index or tick counter over v entries. ceilLog2(1) == 0.
 */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return floorLog2(v) + (isPowerOf2(v) ? 0u : 1u);
}

/** Rounds @p v down to a multiple of @p align (align must be a pow2). */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Rounds @p v up to a multiple of @p align (align must be a pow2). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/**
 * Mixes the bits of @p v. Used to decorrelate hash inputs in predictors.
 * This is the finalizer of SplitMix64.
 */
FDIP_HOT_PATH constexpr std::uint64_t
mix64(std::uint64_t v)
{
    v ^= v >> 30;
    v *= 0xbf58476d1ce4e5b9ULL;
    v ^= v >> 27;
    v *= 0x94d049bb133111ebULL;
    v ^= v >> 31;
    return v;
}

/** XOR-folds @p v down to @p out_bits bits. */
constexpr std::uint64_t
foldXor(std::uint64_t v, unsigned out_bits)
{
    assert(out_bits > 0 && out_bits <= 64);
    if (out_bits >= 64) // A 64-bit shift below would be UB.
        return v;
    std::uint64_t r = 0;
    while (v != 0) {
        r ^= v & mask(out_bits);
        v >>= out_bits;
    }
    return r;
}

} // namespace fdip

#endif // FDIP_UTIL_BITS_H_
