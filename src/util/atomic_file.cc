#include "util/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>

namespace fdip
{

namespace
{

void
setError(std::string *error, const std::string &what,
         const std::string &path)
{
    if (error != nullptr)
        *error = what + " '" + path + "': " + std::strerror(errno);
}

/** Parent directory of @p path ("." when the path has no slash). */
std::string
parentDir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

/** Writes all of @p contents to @p fd, EINTR-safe. */
bool
writeAll(int fd, const std::string &contents)
{
    std::size_t off = 0;
    while (off < contents.size()) {
        const ssize_t n =
            ::write(fd, contents.data() + off, contents.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** fsync with EINTR retry; EINVAL (fsync-less fs) is not fatal. */
bool
syncFd(int fd)
{
    while (::fsync(fd) != 0) {
        if (errno == EINTR)
            continue;
        return errno == EINVAL;
    }
    return true;
}

/** Opens @p dir and fsyncs it so a rename inside it is durable. */
void
syncDirectory(const std::string &dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return; // Durability is best-effort on exotic filesystems.
    (void)syncFd(fd);
    ::close(fd);
}

/** Writes + fsyncs + closes @p fd; false on any failure. */
bool
finishFd(int fd, const std::string &contents)
{
    const bool ok = writeAll(fd, contents) && syncFd(fd);
    if (::close(fd) != 0)
        return false;
    return ok;
}

} // namespace

bool
writeFileAtomic(const std::string &path, const std::string &contents,
                std::string *error)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        setError(error, "cannot create temp file", tmp);
        return false;
    }
    if (!finishFd(fd, contents)) {
        setError(error, "cannot write temp file", tmp);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        setError(error, "cannot publish", path);
        ::unlink(tmp.c_str());
        return false;
    }
    syncDirectory(parentDir(path));
    return true;
}

ExclusiveCreate
createFileExclusive(const std::string &path, const std::string &contents,
                    std::string *error)
{
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0) {
        if (errno == EEXIST)
            return ExclusiveCreate::kExists;
        setError(error, "cannot create", path);
        return ExclusiveCreate::kError;
    }
    if (!finishFd(fd, contents)) {
        setError(error, "cannot write", path);
        ::unlink(path.c_str());
        return ExclusiveCreate::kError;
    }
    syncDirectory(parentDir(path));
    return ExclusiveCreate::kCreated;
}

bool
readFileToString(const std::string &path, std::string *out,
                 std::string *error)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        setError(error, "cannot open", path);
        return false;
    }
    out->clear();
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setError(error, "cannot read", path);
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        out->append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return true;
}

bool
ensureDirectory(const std::string &path, std::string *error)
{
    if (path.empty()) {
        if (error != nullptr)
            *error = "empty directory path";
        return false;
    }
    // Walk the components, creating each missing prefix.
    std::size_t pos = 0;
    while (pos != std::string::npos) {
        pos = path.find('/', pos + 1);
        const std::string prefix =
            pos == std::string::npos ? path : path.substr(0, pos);
        if (prefix.empty() || prefix == "/" || prefix == ".")
            continue;
        if (::mkdir(prefix.c_str(), 0755) == 0 || errno == EEXIST)
            continue;
        setError(error, "cannot create directory", prefix);
        return false;
    }
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
        if (error != nullptr)
            *error = "'" + path + "' exists but is not a directory";
        return false;
    }
    return true;
}

bool
fileExists(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

bool
removeFile(const std::string &path)
{
    return ::unlink(path.c_str()) == 0 || errno == ENOENT;
}

bool
renameFile(const std::string &from, const std::string &to,
           std::string *error)
{
    if (::rename(from.c_str(), to.c_str()) != 0) {
        setError(error, "cannot rename", from);
        return false;
    }
    return true;
}

std::vector<std::string>
listDirectory(const std::string &dir)
{
    std::vector<std::string> names;
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr)
        return names;
    for (;;) {
        errno = 0;
        const struct dirent *e = ::readdir(d);
        if (e == nullptr)
            break;
        const std::string name = e->d_name;
        if (name == "." || name == "..")
            continue;
        const std::string full = dir + "/" + name;
        struct stat st{};
        if (::stat(full.c_str(), &st) == 0 && S_ISREG(st.st_mode))
            names.push_back(name);
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
}

} // namespace fdip
