/**
 * @file
 * Console table formatting for benchmark output. Benches print the same
 * rows/series the paper's figures report; this keeps the formatting in
 * one place.
 */

#ifndef FDIP_UTIL_TABLE_H_
#define FDIP_UTIL_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace fdip
{

/**
 * A simple right-aligned text table with a header row.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Appends a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience: formats a double with @p precision decimals. */
    static std::string num(double v, int precision = 2);

    /** Convenience: formats a percentage ("12.3%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Renders to @p out (defaults to stdout). */
    void print(std::FILE *out = stdout) const;

    /** Renders as comma-separated values. */
    void printCsv(std::FILE *out = stdout) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace fdip

#endif // FDIP_UTIL_TABLE_H_
