/**
 * @file
 * A fixed-capacity vector for tick-path sets with structural bounds.
 */

#ifndef FDIP_UTIL_FIXED_VECTOR_H_
#define FDIP_UTIL_FIXED_VECTOR_H_

#include <cstddef>
#include <memory>
#include <utility>

#include "util/hotpath.h"
#include "util/invariant.h"

namespace fdip
{

/**
 * Contiguous random-access container whose capacity is fixed at
 * construction — the modeled hardware bounds it (MSHR count, return
 * stack depth, in-flight resolve count), so growth is a simulator bug,
 * not a need. Unlike std::vector, pushBack never reallocates: it
 * FDIP_CHECKs against the structural capacity instead. This keeps the
 * per-tick hot path allocation-free (docs/ANALYSIS.md §7).
 *
 * Elements are default-constructed up front; pushBack assigns into
 * storage. Removal is either order-preserving (removeAt — for queues
 * whose drain order is architectural) or swap-with-last (removeSwap —
 * for unordered in-flight sets).
 */
template <typename T>
class FixedVector
{
  public:
    explicit FixedVector(std::size_t capacity)
        : capacity_(capacity), data_(std::make_unique<T[]>(capacity))
    {
        FDIP_REQUIRE(capacity > 0,
                     "a zero-capacity vector models no hardware");
    }

    [[nodiscard]] std::size_t capacity() const noexcept
    {
        return capacity_;
    }
    [[nodiscard]] FDIP_HOT_PATH std::size_t size() const noexcept { return size_; }
    [[nodiscard]] FDIP_HOT_PATH bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] FDIP_HOT_PATH bool full() const noexcept
    {
        return size_ == capacity_;
    }

    /** Appends an element. The vector must not be full. */
    FDIP_HOT_PATH void
    pushBack(const T &v)
    {
        FDIP_CHECK(!full(), "push onto a full vector (capacity %zu)",
                   capacity_);
        data_[size_++] = v;
    }

    /** Appends an element (move). The vector must not be full. */
    FDIP_HOT_PATH void
    pushBack(T &&v)
    {
        FDIP_CHECK(!full(), "push onto a full vector (capacity %zu)",
                   capacity_);
        data_[size_++] = std::move(v);
    }

    /** Removes the last element. The vector must not be empty. */
    FDIP_HOT_PATH void
    popBack()
    {
        FDIP_CHECK(!empty(), "pop from an empty vector");
        --size_;
    }

    /** Removes element @p i, preserving the order of the rest. */
    FDIP_HOT_PATH void
    removeAt(std::size_t i)
    {
        FDIP_CHECK(i < size_, "removeAt(%zu) out of bounds (size %zu)",
                   i, size_);
        for (std::size_t j = i + 1; j < size_; ++j)
            data_[j - 1] = std::move(data_[j]);
        --size_;
    }

    /** Removes element @p i by swapping the last element into it. */
    FDIP_HOT_PATH void
    removeSwap(std::size_t i)
    {
        FDIP_CHECK(i < size_, "removeSwap(%zu) out of bounds (size %zu)",
                   i, size_);
        data_[i] = std::move(data_[size_ - 1]);
        --size_;
    }

    /** Removes all elements. */
    void clear() noexcept { size_ = 0; }

    [[nodiscard]] T &
    operator[](std::size_t i)
    {
        FDIP_CHECK(i < size_, "index %zu out of bounds (size %zu)", i,
                   size_);
        return data_[i];
    }

    [[nodiscard]] const T &
    operator[](std::size_t i) const
    {
        FDIP_CHECK(i < size_, "index %zu out of bounds (size %zu)", i,
                   size_);
        return data_[i];
    }

    [[nodiscard]] T &front() { return (*this)[0]; }
    [[nodiscard]] const T &front() const { return (*this)[0]; }
    [[nodiscard]] T &back() { return (*this)[size_ - 1]; }
    [[nodiscard]] const T &back() const { return (*this)[size_ - 1]; }

    [[nodiscard]] T *begin() noexcept { return data_.get(); }
    [[nodiscard]] T *end() noexcept { return data_.get() + size_; }
    [[nodiscard]] const T *begin() const noexcept { return data_.get(); }
    [[nodiscard]] const T *end() const noexcept
    {
        return data_.get() + size_;
    }

  private:
    std::size_t capacity_;
    std::unique_ptr<T[]> data_;
    std::size_t size_ = 0;
};

} // namespace fdip

#endif // FDIP_UTIL_FIXED_VECTOR_H_
