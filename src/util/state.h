/**
 * @file
 * State-classification annotations for the architectural-state audit.
 *
 * Every data member of an audited class (one that declares a
 * StorageSchema, or that carries at least one of these annotations)
 * must state what kind of state it is:
 *
 *   FDIP_STATE_ARCH(fields...)  Modeled hardware storage, accounted
 *                               bit-for-bit by the class's
 *                               StorageSchema. The arguments name the
 *                               schema fields this member backs
 *                               (e.g. `valid, kind, lru`); an argument
 *                               ending in `...` is a prefix wildcard
 *                               for dynamically named fields (the
 *                               folded-history schema), and the single
 *                               argument `sub` delegates accounting to
 *                               the member's own class (which must be
 *                               audited itself).
 *   FDIP_STATE_MICRO            Simulation state: deterministic,
 *                               reset-covered, feeds architectural
 *                               results, but not schema-charged
 *                               storage (config copies, wiring
 *                               references, derived geometry, stat
 *                               counters).
 *   FDIP_STATE_HOST             Host-side telemetry (wall-clock
 *                               profiles, timing scratch). Never read
 *                               on the architectural hot path outside
 *                               obs/trace-ranked code; excluded from
 *                               the determinism contract.
 *
 * Like the hot-path and capability macros, these compile away to
 * nothing on every compiler: the structured text itself is the
 * contract, enforced by tools/lint/check_statespace.py over the
 * hotgraph program index (ghost-state/schema completeness, reset
 * coverage, host/arch taint separation). docs/ANALYSIS.md section 9
 * documents the taxonomy and the rules.
 */

#ifndef FDIP_UTIL_STATE_H_
#define FDIP_UTIL_STATE_H_

/** Schema-accounted modeled storage; args name the fields covered. */
#define FDIP_STATE_ARCH(...)

/** Deterministic simulation state outside the storage schemas. */
#define FDIP_STATE_MICRO

/** Host-side telemetry, excluded from architectural determinism. */
#define FDIP_STATE_HOST

#endif // FDIP_UTIL_STATE_H_
