/**
 * @file
 * Hot-path discipline annotations for the per-tick call graph.
 *
 * Every figure campaign in this reproduction is a loop over
 * `Core::run`, so per-run throughput is a first-class artifact — the
 * paper's own thesis is that FDIP survives in industry because its
 * costs are *enforced*, not asserted. These macros mark the code that
 * executes every simulated cycle (the tick loop and everything it
 * calls: frontend, FTQ, BPU predict/update, cache accesses, prefetcher
 * dispatch) so two enforcement layers can see the boundary:
 *
 *  - `tools/lint/check_hotpath.py` parses the annotations and bans
 *    heap allocation (`new`, `make_unique`/`make_shared`, growing
 *    std-container calls, `std::string` construction,
 *    `std::function`), `throw`, iostream/format, and lock acquisition
 *    inside annotated code. Exact-path allowlists name the justified
 *    exceptions and fail when stale.
 *  - `tests/core_hotpath_test.cc` interposes a counting
 *    `operator new`/`delete` and proves `Core::run` performs zero
 *    heap allocations end-to-end for every named config x prefetcher.
 *
 * The attribute half mirrors util/sync.h: clang sees
 * `__attribute__((hot))` (hotter inlining/layout thresholds); every
 * other compiler sees empty tokens, so annotated code stays portable
 * and zero-cost. The *contract* half is the structured text itself,
 * which the lint parses on any platform.
 *
 * Usage:
 *
 *   FDIP_HOT_PATH void tick(Cycle now);       // whole function is hot
 *
 *   void run() {
 *       coldSetup();
 *       FDIP_HOT_REGION_BEGIN(tick_loop);     // region inside a
 *       while (...) { ... }                   // mostly-cold function
 *       FDIP_HOT_REGION_END(tick_loop);
 *       coldTeardown();
 *   }
 *
 * To exempt a file, add it to an allowlist in check_hotpath.py with a
 * written justification (docs/ANALYSIS.md §7 has the procedure).
 */

#ifndef FDIP_UTIL_HOTPATH_H_
#define FDIP_UTIL_HOTPATH_H_

#include "util/invariant.h"

/**
 * Hot-function attribute spelling. Clang honors `hot` aggressively;
 * other compilers may warn on unknown attributes in this position, so
 * they see nothing — the lint contract is the portable half.
 */
#if defined(__clang__)
#define FDIP_HOT_ATTRIBUTE_ __attribute__((hot))
#else
#define FDIP_HOT_ATTRIBUTE_
#endif

/**
 * Marks the function definition that follows as tick-path code. Place
 * it at the start of the declaration, before the return type. The
 * lint applies the hot-path bans to the entire function body.
 */
#define FDIP_HOT_PATH FDIP_HOT_ATTRIBUTE_

/**
 * Opens a named hot region inside a function that is otherwise cold
 * (e.g. `Core::run`, whose warmup bookkeeping and final stat
 * derivation may allocate freely around the tick loop). The lint
 * applies the bans between BEGIN and the matching END; @p name must
 * match and exists purely for readability and lint diagnostics.
 */
#define FDIP_HOT_REGION_BEGIN(name) static_assert(true)

/** Closes the hot region opened by FDIP_HOT_REGION_BEGIN(@p name). */
#define FDIP_HOT_REGION_END(name) static_assert(true)

/**
 * The tick-path exception contract: hot functions are `noexcept`
 * whenever invariant checks are compiled out (-DFDIP_CHECKS=OFF, the
 * perf build). With checks on, FDIP_CHECK throws InvariantViolation
 * for the test suite to catch, so the same functions must remain
 * potentially-throwing. tests/core_hotpath_contract_test.cc pins this
 * with static_asserts that hold under both build flavors.
 */
#define FDIP_HOT_NOEXCEPT noexcept(!::fdip::kInvariantChecksEnabled)

#endif // FDIP_UTIL_HOTPATH_H_
