/**
 * @file
 * A fixed-capacity circular FIFO used for the FTQ, decode queue, and RAS.
 */

#ifndef FDIP_UTIL_CIRCULAR_QUEUE_H_
#define FDIP_UTIL_CIRCULAR_QUEUE_H_

#include <cstddef>
#include <vector>

#include "check/invariant.h"

namespace fdip
{

/**
 * Fixed-capacity FIFO with random access by position from the head.
 *
 * Unlike std::deque, the capacity is fixed at construction, matching the
 * hardware structures being modelled, and push/pop never allocate.
 */
template <typename T>
class CircularQueue
{
  public:
    explicit CircularQueue(std::size_t capacity)
        : buf_(capacity), head_(0), size_(0)
    {
        FDIP_REQUIRE(capacity > 0,
                     "a zero-capacity queue models no hardware");
    }

    std::size_t capacity() const { return buf_.size(); }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == buf_.size(); }

    /** Appends an element at the tail. The queue must not be full. */
    void
    pushBack(const T &v)
    {
        FDIP_CHECK(!full(), "push onto a full queue (capacity %zu)",
                   capacity());
        buf_[physIndex(size_)] = v;
        ++size_;
    }

    /** Appends an element at the tail (move). The queue must not be full. */
    void
    pushBack(T &&v)
    {
        FDIP_CHECK(!full(), "push onto a full queue (capacity %zu)",
                   capacity());
        buf_[physIndex(size_)] = std::move(v);
        ++size_;
    }

    /** Removes the head element. The queue must not be empty. */
    void
    popFront()
    {
        FDIP_CHECK(!empty(), "pop from an empty queue");
        head_ = (head_ + 1) % buf_.size();
        --size_;
    }

    /** Drops the newest @p n elements from the tail. */
    void
    truncate(std::size_t n)
    {
        FDIP_CHECK(n <= size_, "truncating %zu of %zu elements", n, size_);
        size_ -= n;
    }

    /** Keeps the oldest @p n elements, discarding everything younger. */
    void
    resizeTo(std::size_t n)
    {
        FDIP_CHECK(n <= size_, "resize to %zu of %zu elements", n, size_);
        size_ = n;
    }

    /** Removes all elements. */
    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

    /** Element @p i positions from the head (0 = oldest). */
    T &
    at(std::size_t i)
    {
        FDIP_CHECK(i < size_, "index %zu out of bounds (size %zu)", i,
                   size_);
        return buf_[physIndex(i)];
    }

    const T &
    at(std::size_t i) const
    {
        FDIP_CHECK(i < size_, "index %zu out of bounds (size %zu)", i,
                   size_);
        return buf_[physIndex(i)];
    }

    T &front() { return at(0); }
    const T &front() const { return at(0); }
    T &back() { return at(size_ - 1); }
    const T &back() const { return at(size_ - 1); }

  private:
    std::size_t
    physIndex(std::size_t logical) const
    {
        return (head_ + logical) % buf_.size();
    }

    std::vector<T> buf_;
    std::size_t head_;
    std::size_t size_;
};

} // namespace fdip

#endif // FDIP_UTIL_CIRCULAR_QUEUE_H_
