/**
 * @file
 * A fixed-capacity circular FIFO used for the FTQ, decode queue, and RAS.
 */

#ifndef FDIP_UTIL_CIRCULAR_QUEUE_H_
#define FDIP_UTIL_CIRCULAR_QUEUE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "util/invariant.h"
#include "util/hotpath.h"

namespace fdip
{

/**
 * Fixed-capacity FIFO with random access by position from the head.
 *
 * Unlike std::deque, the capacity is fixed at construction, matching the
 * hardware structures being modelled, and push/pop never allocate.
 */
template <typename T>
class CircularQueue
{
  public:
    explicit CircularQueue(std::size_t capacity)
        : buf_(capacity), head_(0), size_(0)
    {
        FDIP_REQUIRE(capacity > 0,
                     "a zero-capacity queue models no hardware");
    }

    [[nodiscard]] FDIP_HOT_PATH std::size_t capacity() const noexcept { return buf_.size(); }
    [[nodiscard]] FDIP_HOT_PATH std::size_t size() const noexcept { return size_; }
    [[nodiscard]] FDIP_HOT_PATH bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] FDIP_HOT_PATH bool full() const noexcept { return size_ == buf_.size(); }

    /** Appends an element at the tail. The queue must not be full. */
    FDIP_HOT_PATH void
    pushBack(const T &v) FDIP_HOT_NOEXCEPT
    {
        FDIP_CHECK(!full(), "push onto a full queue (capacity %zu)",
                   capacity());
        buf_[physIndex(size_)] = v;
        ++size_;
    }

    /** Appends an element at the tail (move). The queue must not be full. */
    FDIP_HOT_PATH void
    pushBack(T &&v) FDIP_HOT_NOEXCEPT
    {
        FDIP_CHECK(!full(), "push onto a full queue (capacity %zu)",
                   capacity());
        buf_[physIndex(size_)] = std::move(v);
        ++size_;
    }

    /** Removes the head element. The queue must not be empty. */
    FDIP_HOT_PATH void
    popFront() FDIP_HOT_NOEXCEPT
    {
        FDIP_CHECK(!empty(), "pop from an empty queue");
        head_ = (head_ + 1) % buf_.size();
        --size_;
    }

    /** Drops the newest @p n elements from the tail. */
    FDIP_HOT_PATH void
    truncate(std::size_t n) FDIP_HOT_NOEXCEPT
    {
        FDIP_CHECK(n <= size_, "truncating %zu of %zu elements", n, size_);
        size_ -= n;
    }

    /** Keeps the oldest @p n elements, discarding everything younger. */
    FDIP_HOT_PATH void
    resizeTo(std::size_t n) FDIP_HOT_NOEXCEPT
    {
        FDIP_CHECK(n <= size_, "resize to %zu of %zu elements", n, size_);
        size_ = n;
    }

    /** Removes all elements. */
    FDIP_HOT_PATH void
    clear() noexcept
    {
        head_ = 0;
        size_ = 0;
    }

    /** Element @p i positions from the head (0 = oldest). */
    [[nodiscard]] FDIP_HOT_PATH T &
    at(std::size_t i) FDIP_HOT_NOEXCEPT
    {
        FDIP_CHECK(i < size_, "index %zu out of bounds (size %zu)", i,
                   size_);
        return buf_[physIndex(i)];
    }

    [[nodiscard]] FDIP_HOT_PATH const T &
    at(std::size_t i) const FDIP_HOT_NOEXCEPT
    {
        FDIP_CHECK(i < size_, "index %zu out of bounds (size %zu)", i,
                   size_);
        return buf_[physIndex(i)];
    }

    [[nodiscard]] FDIP_HOT_PATH T &front() FDIP_HOT_NOEXCEPT { return at(0); }
    [[nodiscard]] FDIP_HOT_PATH const T &front() const FDIP_HOT_NOEXCEPT
    {
        return at(0);
    }
    [[nodiscard]] FDIP_HOT_PATH T &back() FDIP_HOT_NOEXCEPT { return at(size_ - 1); }
    [[nodiscard]] FDIP_HOT_PATH const T &back() const FDIP_HOT_NOEXCEPT
    {
        return at(size_ - 1);
    }

  private:
    [[nodiscard]] FDIP_HOT_PATH std::size_t
    physIndex(std::size_t logical) const noexcept
    {
        return (head_ + logical) % buf_.size();
    }

    std::vector<T> buf_;
    std::size_t head_;
    std::size_t size_;
};

} // namespace fdip

#endif // FDIP_UTIL_CIRCULAR_QUEUE_H_
