/**
 * @file
 * The simulator's only sanctioned concurrency primitives, annotated
 * for clang's `-Wthread-safety` capability analysis.
 *
 * The parallel experiment engine's contract (docs/ANALYSIS.md §4/§6)
 * is that workers share *no* mutable ambient state: each run owns its
 * Core, writes one preallocated result slot, and reads traces through
 * const views. The few places that genuinely synchronize — the log
 * serialization mutex and the pool's first-error capture — must do so
 * through the wrappers below so the capability analysis can prove
 * every guarded access holds the right lock at compile time.
 *
 * Raw `std::mutex` / `std::lock_guard` / `std::atomic` are banned
 * outside this header by `tools/lint/check_concurrency.py`; the
 * annotations compile away to nothing on non-clang compilers, so the
 * wrappers cost exactly what the raw primitives do.
 *
 * Build with the `thread-safety` CMake preset (clang,
 * `-Wthread-safety -Wthread-safety-beta -Werror`) to run the analysis
 * locally; CI runs it on every push.
 */

#ifndef FDIP_UTIL_SYNC_H_
#define FDIP_UTIL_SYNC_H_

#include <atomic>
#include <mutex>

/**
 * Thread-safety attribute spelling. Clang implements the capability
 * analysis; every other compiler sees empty tokens, so annotated code
 * stays portable and zero-cost.
 */
#if defined(__clang__)
#define FDIP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define FDIP_THREAD_ANNOTATION_(x)
#endif

/** Declares a class to be a lockable capability (e.g. "mutex"). */
#define FDIP_CAPABILITY(x) FDIP_THREAD_ANNOTATION_(capability(x))

/** Declares an RAII type that acquires/releases a capability. */
#define FDIP_SCOPED_CAPABILITY FDIP_THREAD_ANNOTATION_(scoped_lockable)

/** A member that may only be touched while holding @p x. */
#define FDIP_GUARDED_BY(x) FDIP_THREAD_ANNOTATION_(guarded_by(x))

/** A pointer whose *pointee* may only be touched while holding @p x. */
#define FDIP_PT_GUARDED_BY(x) FDIP_THREAD_ANNOTATION_(pt_guarded_by(x))

/** The caller must hold the named capabilities (exclusively). */
#define FDIP_REQUIRES(...)                                                    \
    FDIP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/** The caller must hold the named capabilities (shared). */
#define FDIP_REQUIRES_SHARED(...)                                             \
    FDIP_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/** The function acquires the named capabilities and does not release
 *  them before returning. */
#define FDIP_ACQUIRE(...)                                                     \
    FDIP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/** The function releases the named capabilities. */
#define FDIP_RELEASE(...)                                                     \
    FDIP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/** The function acquires the capability iff it returns @p ... (first
 *  argument is the success value). */
#define FDIP_TRY_ACQUIRE(...)                                                 \
    FDIP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/** The caller must *not* hold the named capabilities (deadlock gate). */
#define FDIP_EXCLUDES(...)                                                    \
    FDIP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/** The function returns a reference to the capability @p x. */
#define FDIP_RETURN_CAPABILITY(x)                                             \
    FDIP_THREAD_ANNOTATION_(lock_returned(x))

/** Escape hatch: disables the analysis for one function. Every use
 *  must carry a comment justifying why the analysis cannot see the
 *  invariant. */
#define FDIP_NO_THREAD_SAFETY_ANALYSIS                                        \
    FDIP_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace fdip
{

/**
 * A std::mutex carrying the "mutex" capability. Prefer MutexLock over
 * manual lock()/unlock() pairs; the manual methods exist for the rare
 * site whose critical section cannot be a lexical scope.
 */
class FDIP_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() FDIP_ACQUIRE() { m_.lock(); }
    void unlock() FDIP_RELEASE() { m_.unlock(); }
    [[nodiscard]] bool tryLock() FDIP_TRY_ACQUIRE(true)
    {
        return m_.try_lock();
    }

  private:
    std::mutex m_;
};

/**
 * RAII lock over a Mutex (the std::lock_guard of this codebase). The
 * scoped-capability annotation lets the analysis treat the guard's
 * lifetime as the critical section.
 */
class FDIP_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) FDIP_ACQUIRE(m) : m_(m) { m_.lock(); }
    ~MutexLock() FDIP_RELEASE() { m_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &m_;
};

/**
 * A deliberately narrow std::atomic wrapper: load/store/fetchAdd/
 * exchange with explicit memory orders. Keeping the surface small
 * keeps every lock-free protocol in the codebase reviewable — the
 * parallel engine needs exactly a work cursor and a failure flag, not
 * compare-exchange loops.
 */
template <typename T>
class Atomic
{
  public:
    constexpr Atomic() noexcept = default;
    constexpr explicit Atomic(T value) noexcept : v_(value) {}

    Atomic(const Atomic &) = delete;
    Atomic &operator=(const Atomic &) = delete;

    [[nodiscard]] T
    load(std::memory_order order = std::memory_order_seq_cst) const noexcept
    {
        return v_.load(order);
    }

    void
    store(T value,
          std::memory_order order = std::memory_order_seq_cst) noexcept
    {
        v_.store(value, order);
    }

    /** Atomic post-increment by @p delta; returns the prior value. */
    T
    fetchAdd(T delta,
             std::memory_order order = std::memory_order_seq_cst) noexcept
    {
        return v_.fetch_add(delta, order);
    }

    /** Atomically replaces the value; returns the prior value. */
    T
    exchange(T value,
             std::memory_order order = std::memory_order_seq_cst) noexcept
    {
        return v_.exchange(value, order);
    }

  private:
    std::atomic<T> v_{};
};

} // namespace fdip

#endif // FDIP_UTIL_SYNC_H_
