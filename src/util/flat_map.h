/**
 * @file
 * A preallocated open-addressing hash map for tick-path bookkeeping.
 */

#ifndef FDIP_UTIL_FLAT_MAP_H_
#define FDIP_UTIL_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/hotpath.h"
#include "util/invariant.h"

namespace fdip
{

/**
 * Open-addressing hash map (linear probing, backward-shift deletion)
 * whose slot array is allocated once, at construction, for an expected
 * entry count. std::unordered_map allocates a node per insertion —
 * unacceptable on the per-tick hot path, where the in-flight fill
 * tables and prefetch-tracking table are touched every cycle
 * (docs/ANALYSIS.md §7). FlatMap keeps those maps allocation-free in
 * steady state: `put` only allocates if the live entry count outgrows
 * the construction-time capacity, which the owners size to their
 * structural bounds (MSHR counts, cache line counts).
 *
 * Keys must be trivially copyable integers; the hash is a fixed
 * multiplicative mix (deterministic across platforms and runs — map
 * behavior can never depend on pointer values or a seeded hash).
 */
template <typename K, typename V>
class FlatMap
{
  public:
    /** Map sized to hold @p expected_entries without reallocating. */
    explicit FlatMap(std::size_t expected_entries)
        : slot_count_(slotCountFor(expected_entries)),
          slots_(std::make_unique<Slot[]>(slot_count_))
    {
    }

    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

    /** Slots before a put() must reallocate (2x the expected count). */
    [[nodiscard]] FDIP_HOT_PATH std::size_t capacity() const noexcept
    {
        return slot_count_ - slot_count_ / 4;
    }

    /** Pointer to the value for @p key, or nullptr when absent. */
    [[nodiscard]] FDIP_HOT_PATH V *
    find(K key) noexcept
    {
        for (std::size_t i = indexOf(key);; i = next(i)) {
            Slot &s = slots_[i];
            if (!s.used)
                return nullptr;
            if (s.key == key)
                return &s.value;
        }
    }

    [[nodiscard]] FDIP_HOT_PATH const V *
    find(K key) const noexcept
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    [[nodiscard]] bool contains(K key) const noexcept
    {
        return find(key) != nullptr;
    }

    /**
     * Inserts or overwrites the entry for @p key. Allocation-free
     * while the live entry count stays within capacity(); beyond it
     * the table doubles (correct, but a steady-state perf bug the
     * hot-path allocation test will catch).
     */
    FDIP_HOT_PATH void
    put(K key, V value)
    {
        if (size_ + 1 > capacity())
            grow();
        for (std::size_t i = indexOf(key);; i = next(i)) {
            Slot &s = slots_[i];
            if (!s.used) {
                s.used = true;
                s.key = key;
                s.value = value;
                ++size_;
                return;
            }
            if (s.key == key) {
                s.value = value;
                return;
            }
        }
    }

    /** Removes @p key's entry if present; true when one was removed. */
    FDIP_HOT_PATH bool
    erase(K key) noexcept
    {
        std::size_t i = indexOf(key);
        for (;; i = next(i)) {
            if (!slots_[i].used)
                return false;
            if (slots_[i].key == key)
                break;
        }
        // Backward-shift deletion: pull every displaced successor in
        // the probe chain up one slot so lookups never need tombstones.
        std::size_t hole = i;
        for (std::size_t j = next(i);; j = next(j)) {
            Slot &s = slots_[j];
            if (!s.used)
                break;
            const std::size_t home = indexOf(s.key);
            // s may move into the hole only if the hole lies on its
            // probe path (cyclically between home and current slot).
            const bool movable =
                (j > hole) ? (home <= hole || home > j)
                           : (home <= hole && home > j);
            if (movable) {
                slots_[hole] = s;
                hole = j;
            }
        }
        slots_[hole].used = false;
        --size_;
        return true;
    }

    /** Removes every entry (keeps the slot array). */
    void
    clear() noexcept
    {
        for (std::size_t i = 0; i < slot_count_; ++i)
            slots_[i].used = false;
        size_ = 0;
    }

  private:
    struct Slot
    {
        K key{};
        V value{};
        bool used = false;
    };

    static std::size_t
    slotCountFor(std::size_t expected_entries)
    {
        // Slot array is a power of two at least 2x the expected entry
        // count (load factor <= 0.75 at capacity, typically <= 0.5).
        std::size_t n = 8;
        while (n < expected_entries * 2)
            n *= 2;
        return n;
    }

    [[nodiscard]] FDIP_HOT_PATH std::size_t
    indexOf(K key) const noexcept
    {
        // Fibonacci multiplicative hash: deterministic and platform
        // independent, so map behavior can never perturb determinism.
        const auto mixed =
            static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ull;
        return static_cast<std::size_t>(mixed & (slot_count_ - 1));
    }

    [[nodiscard]] FDIP_HOT_PATH std::size_t next(std::size_t i) const noexcept
    {
        return (i + 1) & (slot_count_ - 1);
    }

    void
    grow()
    {
        const std::size_t old_count = slot_count_;
        auto old = std::move(slots_);
        slot_count_ = old_count * 2;
        slots_ = std::make_unique<Slot[]>(slot_count_);
        size_ = 0;
        for (std::size_t i = 0; i < old_count; ++i)
            if (old[i].used)
                put(old[i].key, old[i].value);
    }

    std::size_t slot_count_;
    std::unique_ptr<Slot[]> slots_;
    std::size_t size_ = 0;
};

} // namespace fdip

#endif // FDIP_UTIL_FLAT_MAP_H_
