/**
 * @file
 * Error and status reporting, following the gem5 fatal/panic convention.
 *
 * - panic():  an internal simulator bug; aborts.
 * - fatal():  a user error (bad configuration etc.); exits with code 1.
 * - warn():   something suspicious that does not stop simulation.
 * - inform(): plain status output.
 */

#ifndef FDIP_UTIL_LOG_H_
#define FDIP_UTIL_LOG_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace fdip
{

namespace log_detail
{

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace log_detail

} // namespace fdip

/** Aborts on an internal simulator bug. */
#define fdip_panic(...)                                                       \
    ::fdip::log_detail::panicImpl(__FILE__, __LINE__,                         \
                                  ::fdip::log_detail::format(__VA_ARGS__))

/** Exits on a user/configuration error. */
#define fdip_fatal(...)                                                       \
    ::fdip::log_detail::fatalImpl(__FILE__, __LINE__,                         \
                                  ::fdip::log_detail::format(__VA_ARGS__))

/** Warns without stopping simulation. */
#define fdip_warn(...)                                                        \
    ::fdip::log_detail::warnImpl(::fdip::log_detail::format(__VA_ARGS__))

/** Emits a status message. */
#define fdip_inform(...)                                                      \
    ::fdip::log_detail::informImpl(::fdip::log_detail::format(__VA_ARGS__))

#endif // FDIP_UTIL_LOG_H_
