#include "util/stats.h"

#include <cmath>

#include "util/log.h"

namespace fdip
{

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fdip_fatal("geometricMean requires positive values, got %f", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

} // namespace fdip
