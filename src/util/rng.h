/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * We use xoshiro256** seeded through SplitMix64. The generators are
 * deterministic across platforms so that a (workload, seed) pair always
 * produces the same trace.
 */

#ifndef FDIP_UTIL_RNG_H_
#define FDIP_UTIL_RNG_H_

#include <cassert>
#include <cstdint>

#include "util/hotpath.h"

namespace fdip
{

/**
 * A small, fast, deterministic PRNG (xoshiro256**).
 */
class Rng
{
  public:
    /** Constructs a generator from a 64-bit seed via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Returns the next 64 random bits. */
    FDIP_HOT_PATH std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    FDIP_HOT_PATH std::uint64_t
    below(std::uint64_t bound)
    {
        assert(bound != 0);
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t threshold = (-bound) % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        assert(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw: true with probability @p permille / 1000. */
    bool
    chancePermille(unsigned permille)
    {
        return below(1000) < permille;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    FDIP_HOT_PATH static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace fdip

#endif // FDIP_UTIL_RNG_H_
