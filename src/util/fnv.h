/**
 * @file
 * FNV-1a 64-bit hashing: the content-addressing primitive of the
 * campaign service. Every manifest entry (serialized config x workload
 * x seed x sim-instrs) and every result record's architectural-counter
 * checksum is an FNV-1a digest, so identical experiments hash to
 * identical keys on any host — no clocks, no pointers, no locale.
 *
 * FNV-1a is not cryptographic; it is used for content addressing and
 * corruption detection of trusted local spool files, where a fast,
 * dependency-free, fully deterministic 64-bit digest is exactly the
 * right tool.
 */

#ifndef FDIP_UTIL_FNV_H_
#define FDIP_UTIL_FNV_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace fdip
{

/** FNV-1a 64-bit offset basis. */
inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
/** FNV-1a 64-bit prime. */
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/** Folds one byte into an FNV-1a state. */
[[nodiscard]] constexpr std::uint64_t
fnv1aByte(std::uint8_t byte, std::uint64_t h) noexcept
{
    return (h ^ byte) * kFnvPrime;
}

/** FNV-1a over a byte sequence, continuing from @p h. */
[[nodiscard]] constexpr std::uint64_t
fnv1a64(std::string_view bytes, std::uint64_t h = kFnvOffsetBasis) noexcept
{
    for (char c : bytes)
        h = fnv1aByte(static_cast<std::uint8_t>(c), h);
    return h;
}

/** Folds a 64-bit value (little-endian byte order) into @p h. */
[[nodiscard]] constexpr std::uint64_t
fnv1aMix(std::uint64_t value, std::uint64_t h) noexcept
{
    for (unsigned i = 0; i < 8; ++i)
        h = fnv1aByte(static_cast<std::uint8_t>(value >> (8 * i)), h);
    return h;
}

/** FNV-1a over raw memory, continuing from @p h. */
[[nodiscard]] inline std::uint64_t
fnv1a64Bytes(const void *data, std::size_t size,
             std::uint64_t h = kFnvOffsetBasis) noexcept
{
    return fnv1a64(
        std::string_view(static_cast<const char *>(data), size), h);
}

/** @p value as a fixed-width 16-character lowercase hex string — the
 *  canonical spelling of every hash in the spool (filenames, record
 *  fields, checksums). */
[[nodiscard]] inline std::string
toHex16(std::uint64_t value)
{
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = kDigits[value & 0xf];
        value >>= 4;
    }
    return out;
}

/** Parses a 16-character lowercase hex string; false on any other
 *  input (wrong length, uppercase, non-hex). Strictness is deliberate:
 *  spool keys have exactly one valid spelling. */
[[nodiscard]] inline bool
fromHex16(std::string_view hex, std::uint64_t *value) noexcept
{
    if (hex.size() != 16)
        return false;
    std::uint64_t v = 0;
    for (char c : hex) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return false;
    }
    *value = v;
    return true;
}

} // namespace fdip

#endif // FDIP_UTIL_FNV_H_
