/**
 * @file
 * Crash-safe file primitives for the campaign spool: atomic
 * publication (temp file + fsync + rename), exclusive claim creation
 * (O_EXCL), and plain read/list/remove helpers.
 *
 * Contract
 * --------
 * - writeFileAtomic() guarantees readers observe either the complete
 *   previous state or the complete new contents, never a partial
 *   write — a process killed at any instant leaves only an orphaned
 *   `*.tmp.*` file, which spool recovery removes.
 * - createFileExclusive() is the multi-process claim primitive: of N
 *   racing processes exactly one observes kCreated; the rest observe
 *   kExists. This is POSIX O_CREAT|O_EXCL, which is atomic on local
 *   filesystems and on NFSv3+.
 *
 * All helpers are stateless free functions (no statics, no ambient
 * state — clean under tools/lint/check_concurrency.py) and are safe to
 * call concurrently from worker threads as long as each call targets a
 * distinct path, which is how the spool uses them (one file per
 * content hash).
 */

#ifndef FDIP_UTIL_ATOMIC_FILE_H_
#define FDIP_UTIL_ATOMIC_FILE_H_

#include <string>
#include <vector>

namespace fdip
{

/**
 * Writes @p contents to @p path atomically: the data lands in
 * `path.tmp.<pid>`, is fsync'd, and is renamed over @p path; the
 * parent directory is fsync'd so the rename itself survives a crash.
 *
 * @return true on success; on failure @p error (if non-null) receives
 *         a human-readable reason and any temp file is removed.
 */
bool writeFileAtomic(const std::string &path, const std::string &contents,
                     std::string *error = nullptr);

/** Outcome of an exclusive-create attempt. */
enum class ExclusiveCreate
{
    kCreated, ///< This call created the file (the claim is ours).
    kExists,  ///< Another process/thread holds the file already.
    kError,   ///< I/O failure (permissions, missing directory, ...).
};

/**
 * Creates @p path with O_CREAT|O_EXCL and writes @p contents (fsync'd).
 * Exactly one of N racing callers wins.
 */
ExclusiveCreate createFileExclusive(const std::string &path,
                                    const std::string &contents,
                                    std::string *error = nullptr);

/** Reads the whole file into @p out; false (with @p error) on failure. */
bool readFileToString(const std::string &path, std::string *out,
                      std::string *error = nullptr);

/**
 * Creates @p path and any missing parents (mkdir -p). Existing
 * directories are fine; an existing non-directory is an error.
 */
bool ensureDirectory(const std::string &path, std::string *error = nullptr);

/** True when @p path names an existing regular file. */
bool fileExists(const std::string &path);

/** Removes @p path; true when removed or already absent. */
bool removeFile(const std::string &path);

/** Renames @p from to @p to; false (with @p error) on failure. */
bool renameFile(const std::string &from, const std::string &to,
                std::string *error = nullptr);

/**
 * Names of the regular files directly inside @p dir, sorted
 * lexicographically (deterministic scan order regardless of the
 * filesystem's readdir order). Missing/unreadable directories return
 * an empty list.
 */
std::vector<std::string> listDirectory(const std::string &dir);

} // namespace fdip

#endif // FDIP_UTIL_ATOMIC_FILE_H_
