/**
 * @file
 * Lightweight statistics collection: named counters, histograms, and
 * aggregate math (geometric / arithmetic means) used by the experiment
 * harness.
 */

#ifndef FDIP_UTIL_STATS_H_
#define FDIP_UTIL_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fdip
{

/**
 * A scalar event counter.
 */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { value_ += n; }
    void set(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A fixed-bucket histogram over unsigned samples.
 */
class Histogram
{
  public:
    /** @param num_buckets number of buckets; samples >= num_buckets-1
     *                     land in the last (overflow) bucket. */
    explicit Histogram(std::size_t num_buckets = 16)
        : buckets_(num_buckets, 0)
    {
    }

    void
    sample(std::uint64_t v, std::uint64_t count = 1)
    {
        const std::size_t idx =
            v < buckets_.size() ? static_cast<std::size_t>(v)
                                : buckets_.size() - 1;
        buckets_[idx] += count;
        total_ += count;
        sum_ += v * count;
    }

    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t totalSamples() const { return total_; }

    /** Arithmetic mean of all samples (0 when empty). */
    double
    mean() const
    {
        return total_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(total_);
    }

    void
    reset()
    {
        for (auto &b : buckets_)
            b = 0;
        total_ = 0;
        sum_ = 0;
    }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
};

/**
 * A registry of named counters, so modules can export statistics without
 * hard-coding a schema. Lookup creates counters on demand. For the
 * simulator-wide hierarchical registry (getter-backed counters, derived
 * formulas, histograms) see obs/stat_registry.h; this class remains for
 * lightweight ad-hoc counting in tools and tests.
 */
class CounterRegistry
{
  public:
    /** Returns (creating if needed) the counter with the given name. */
    Counter &counter(const std::string &name) { return counters_[name]; }

    /** Read-only view of everything recorded so far. */
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

    /** Value of a named counter, 0 if never touched. */
    std::uint64_t
    value(const std::string &name) const
    {
        const auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second.value();
    }

    void
    reset()
    {
        for (auto &kv : counters_)
            kv.second.reset();
    }

  private:
    std::map<std::string, Counter> counters_;
};

/** Geometric mean of strictly positive values. Returns 0 on empty input. */
double geometricMean(const std::vector<double> &values);

/** Arithmetic mean. Returns 0 on empty input. */
double arithmeticMean(const std::vector<double> &values);

} // namespace fdip

#endif // FDIP_UTIL_STATS_H_
