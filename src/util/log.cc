#include "util/log.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace fdip
{
namespace log_detail
{

namespace
{

/**
 * Serializes log emission across threads. The logging functions are
 * the only process-global mutable state reachable from Core::run (the
 * simulator itself keeps all state per-Core), so this lock is what
 * keeps the parallel experiment engine's diagnostics readable: one
 * warn/inform line at a time, never interleaved mid-line.
 */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace log_detail
} // namespace fdip
