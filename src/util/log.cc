#include "util/log.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "util/sync.h"

namespace fdip
{
namespace log_detail
{

namespace
{

/**
 * Serializes log emission across threads. The logging functions are
 * the only process-global mutable state reachable from Core::run (the
 * simulator itself keeps all state per-Core), so this lock is what
 * keeps the parallel experiment engine's diagnostics readable: one
 * warn/inform line at a time, never interleaved mid-line.
 *
 * This is the one sanctioned static mutable object outside
 * util/sync.h; tools/lint/check_concurrency.py allowlists exactly
 * this file for it.
 */
static Mutex g_log_mutex;

} // namespace

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        MutexLock lock(g_log_mutex);
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        MutexLock lock(g_log_mutex);
        std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    // fatal() is a user/config error: the process is done, and losing
    // other threads' buffered output is acceptable by design.
    std::exit(1); // NOLINT(concurrency-mt-unsafe)
}

void
warnImpl(const std::string &msg)
{
    MutexLock lock(g_log_mutex);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    MutexLock lock(g_log_mutex);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace log_detail
} // namespace fdip
