#include "util/log.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace fdip
{
namespace log_detail
{

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace log_detail
} // namespace fdip
