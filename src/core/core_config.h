/**
 * @file
 * Whole-core configuration, defaulting to the paper's Table IV
 * parameters (Sunny-Cove-like core, IPC-1 memory hierarchy).
 */

#ifndef FDIP_CORE_CORE_CONFIG_H_
#define FDIP_CORE_CORE_CONFIG_H_

#include <string>

#include "bpu/bpu.h"
#include "cache/cache.h"
#include "cache/hierarchy.h"
#include "obs/obs_config.h"
#include "util/types.h"

namespace fdip
{

/** Named history-management configurations of Table V. */
enum class HistoryScheme : std::uint8_t
{
    kThr,   ///< Taken-only target history; taken-only BTB allocation.
    kGhr0,  ///< Direction history, no fixup, taken-only BTB allocation.
    kGhr1,  ///< Direction history, no fixup, all-branch BTB allocation.
    kGhr2,  ///< Direction history, fixup flushes, taken-only allocation.
    kGhr3,  ///< Direction history, fixup flushes, all-branch allocation.
    kIdeal, ///< Oracle direction history, no fixup cost (280-bit).
};

/** Display name matching the paper's Fig. 8 legend. */
const char *historySchemeName(HistoryScheme s);

/** Core configuration. */
struct CoreConfig
{
    /// @{ Decoupled-frontend shape (paper Table IV defaults).
    unsigned ftqEntries = 24;        ///< 24 x 8 insts; 2 disables FDP.
    unsigned predictBandwidth = 12;  ///< Insts scanned per cycle.
    unsigned maxTakenPerCycle = 1;   ///< Predicted-taken branches/cycle.
    unsigned fetchBandwidth = 6;     ///< Insts delivered to decode/cycle.
    unsigned btbLatency = 2;         ///< Prediction pipeline depth.
    unsigned fetchProbesPerCycle = 2; ///< FTQ entries probing ITLB+tags.
    /// @}

    /// @{ FDP features under evaluation.
    bool pfcEnabled = true;
    /** Restrict PFC to unconditional branches (the pre-existing scheme
     *  the paper extends; ablation). */
    bool pfcUnconditionalOnly = false;
    HistoryScheme historyScheme = HistoryScheme::kThr;
    /// @}

    /// @{ Backend (Sunny-Cove-like interval model).
    unsigned decodeQueueEntries = 64;
    unsigned decodeLatency = 4;
    unsigned commitWidth = 6;
    unsigned robEntries = 352;
    unsigned branchResolveLatency = 12; ///< Dispatch-to-execute depth.
    /// @}

    /// @{ Instruction-side memory.
    CacheConfig l1i{"L1I", 32 * 1024, 8, kCacheLineBytes,
                    ReplacementPolicy::kLru};
    /** I-cache access pipeline depth on a hit (tag + data + way mux).
     *  Exposed per-entry when the FTQ is too shallow to pipeline it —
     *  the latency-hiding effect of FDP run-ahead (paper VI-F). */
    unsigned l1iHitLatency = 2;
    unsigned l1iMshrs = 16;
    unsigned itlbEntries = 64;
    unsigned itlbMissPenalty = 20;
    MemoryConfig mem;
    /// @}

    /// @{ Branch prediction.
    BpuConfig bpu;
    /// @}

    /// @{ Prefetching modes.
    /** Perfect prefetching (paper [32]): fills are instantaneous but
     *  the request still goes to the memory subsystem for traffic. */
    bool perfectPrefetch = false;
    /** Perfect I-cache: every access hits (limit studies / workload
     *  selection criterion). */
    bool perfectICache = false;
    unsigned prefetchesPerCycle = 4; ///< Prefetch-queue drain rate.
    /** Deliver prefetches into a small fully-associative prefetch
     *  buffer probed in parallel with the L1I (the original FDP paper
     *  [8] did this) instead of filling the L1I directly. Buffer hits
     *  promote the line into the L1I. Avoids prefetch pollution at the
     *  cost of buffer capacity. */
    bool usePrefetchBuffer = false;
    unsigned prefetchBufferLines = 32;
    /// @}

    /// @{ Observability (heartbeat / tracing / stat collection). Never
    /// affects simulated state: bit-identical stats either way.
    ObsConfig obs;
    /// @}

    /**
     * Applies a HistoryScheme to the BPU config (history policy +
     * BTB allocation policy) and records whether fixup flushes are
     * performed. Call after editing historyScheme.
     */
    void applyHistoryScheme();

    /** True when the scheme performs pre-decode GHR fixup flushes. */
    bool ghrFixup() const;
};

/** The paper's baseline FDP configuration (Table IV). */
CoreConfig paperBaselineConfig();

/** Baseline with FDP disabled (2-entry / 16-instruction FTQ). */
CoreConfig noFdpConfig();

/** Baseline with the optional two-level BTB (1K-entry L1 filter). */
CoreConfig twoLevelBtbConfig();

/** ITLB geometry used by the frontend's timing model: @p entries
 *  fully-associative translations over 4KB pages. (The budget layer
 *  charges translation entries, not the 4KB modeling lines.) */
CacheConfig itlbCacheConfig(unsigned entries);

/** Prefetch-buffer geometry: @p lines fully-associative cache lines
 *  probed in parallel with the L1I (original-FDP style). */
CacheConfig prefetchBufferConfig(unsigned lines);

} // namespace fdip

#endif // FDIP_CORE_CORE_CONFIG_H_
