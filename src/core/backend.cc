#include "core/backend.h"

#include "util/log.h"
#include "util/hotpath.h"

namespace fdip
{

Backend::Backend(const CoreConfig &cfg, MemoryHierarchy &mem,
                 SimStats &stats)
    : cfg_(cfg),
      mem_(mem),
      stats_(stats),
      dq_(cfg.decodeQueueEntries),
      rob_(cfg.robEntries),
      pendingResolves_(cfg.robEntries)
{
}

FDIP_HOT_PATH std::size_t
Backend::decodeQueueSpace() const FDIP_HOT_NOEXCEPT
{
    return dq_.capacity() - dq_.size();
}

FDIP_HOT_PATH void
Backend::deliver(const DeliveredInst &inst) FDIP_HOT_NOEXCEPT
{
    if (dq_.full())
        fdip_panic("decode queue overflow at seq %llu",
                   static_cast<unsigned long long>(inst.seq));
    dq_.pushBack(inst);
}

FDIP_HOT_PATH void
Backend::tick(Cycle now) FDIP_HOT_NOEXCEPT
{
    // ---- Dispatch: in-order, up to commitWidth per cycle, gated by
    // decode latency and ROB space.
    dispatchBlocked_ = false;
    for (unsigned n = 0; n < cfg_.commitWidth; ++n) {
        if (dq_.empty() || rob_.full()) {
            // Back-pressure signal for the cycle accounting: decoded
            // work was waiting but the ROB refused it.
            dispatchBlocked_ = !dq_.empty() && rob_.full();
            break;
        }
        const DeliveredInst &d = dq_.front();
        if (d.deliverCycle + cfg_.decodeLatency > now)
            break;

        RobEntry e;
        e.seq = d.seq;
        e.onCorrectPath = d.onCorrectPath;
        e.resolveToken = d.resolveToken;

        // Committed-branch statistics (correct path only).
        if (d.onCorrectPath) {
            if (isConditional(d.cls))
                ++stats_.condBranches;
            if (isBranch(d.cls) && d.taken)
                ++stats_.takenBranches;
            if (isIndirect(d.cls))
                ++stats_.indirectBranches;
            if (isReturn(d.cls))
                ++stats_.returns;
        }

        // Execution-completion estimate.
        Cycle exec_lat = 1;
        if (d.cls == InstClass::kLoad) {
            if (d.onCorrectPath && d.memAddr != kNoAddr) {
                const FillResult r = mem_.dataAccess(d.memAddr, now, false);
                exec_lat = r.ready > now ? r.ready - now : 1;
            } else {
                exec_lat = 4; // Wrong-path loads: nominal L1 hit.
            }
        } else if (d.cls == InstClass::kStore) {
            if (d.onCorrectPath && d.memAddr != kNoAddr)
                mem_.dataAccess(d.memAddr, now, true);
            exec_lat = 1;
        } else if (isBranch(d.cls)) {
            // Branches resolve after the execution pipeline depth.
            exec_lat = cfg_.branchResolveLatency;
        }
        e.execDone = now + exec_lat;
        if (e.resolveToken != 0)
            pendingResolves_.pushBack({e.resolveToken, e.seq, e.execDone});
        rob_.pushBack(e);
        dq_.popFront();
    }

    // ---- Execute: fire divergence resolutions whose instruction has
    // completed.
    for (std::size_t i = 0; i < pendingResolves_.size();) {
        if (pendingResolves_[i].execDone <= now) {
            const PendingResolve pr = pendingResolves_[i];
            pendingResolves_.removeAt(i);
            if (resolveCb_)
                resolveCb_(pr.token, pr.seq, now);
        } else {
            ++i;
        }
    }

    // ---- Commit: in-order, up to commitWidth per cycle.
    for (unsigned n = 0; n < cfg_.commitWidth; ++n) {
        if (rob_.empty())
            break;
        RobEntry &e = rob_.front();
        if (e.execDone > now)
            break;
        if (e.onCorrectPath)
            ++committed_;
        lastCommitDone_ = e.execDone;
        rob_.popFront();
    }

    // ---- Starvation: decode queue holds fewer than decode-width
    // instructions (paper Section VI-D definition).
    if (dq_.size() < cfg_.fetchBandwidth)
        ++stats_.starvationCycles;
}

FDIP_HOT_PATH void
Backend::flushYoungerThan(std::uint64_t seq) FDIP_HOT_NOEXCEPT
{
    while (!dq_.empty() && dq_.back().seq > seq)
        dq_.truncate(1);
    while (!rob_.empty() && rob_.back().seq > seq)
        rob_.truncate(1);
    for (std::size_t i = 0; i < pendingResolves_.size();) {
        if (pendingResolves_[i].seq > seq)
            pendingResolves_.removeAt(i);
        else
            ++i;
    }
}

} // namespace fdip
