#include "core/frontend.h"

#include <algorithm>

#include "util/invariant.h"
#include "check/invariants.h"
#include "util/bits.h"
#include "util/log.h"
#include "util/hotpath.h"

namespace fdip
{

Frontend::Frontend(const CoreConfig &cfg, const Trace &trace, Bpu &bpu,
                   Backend &backend, MemoryHierarchy &mem,
                   InstPrefetcher &prefetcher, SimStats &stats)
    : cfg_(cfg),
      trace_(trace),
      image_(trace.image()),
      bpu_(bpu),
      backend_(backend),
      mem_(mem),
      prefetcher_(prefetcher),
      stats_(stats),
      ftq_(cfg.ftqEntries),
      l1i_(cfg.l1i),
      itlb_(itlbCacheConfig(cfg.itlbEntries)),
      fills_(cfg.l1iMshrs),
      ftqOccupancy_(cfg.ftqEntries + 1, 1),
      fillLatency_(64, 8),
      predPc_(trace.workload->entryPc),
      // Usefulness tracking is bounded by the lines that can carry the
      // "prefetched" mark: L1I residency + the optional prefetch buffer
      // + in-flight fills. Preallocate for that bound.
      linePrefetched_(cfg.l1i.sizeBytes / cfg.l1i.lineBytes +
                      cfg.prefetchBufferLines + cfg.l1iMshrs)
{
    if constexpr (kInvariantChecksEnabled)
        checkCoreConfig(cfg_);
    if (cfg_.usePrefetchBuffer) {
        prefetchBuffer_ = std::make_unique<Cache>(
            prefetchBufferConfig(cfg_.prefetchBufferLines));
    }
}

FDIP_HOT_PATH void
Frontend::tick(Cycle now) FDIP_HOT_NOEXCEPT
{
    // Exposure accounting (Fig. 14): when the decode queue is starved
    // while the head FTQ entry waits on a fill, that fill's miss is
    // (at least partially) exposed.
    if (!ftq_.empty() &&
        backend_.decodeQueueSize() < cfg_.fetchBandwidth) {
        const FtqEntry &h = ftq_.at(0);
        if (h.state == FtqState::kFilling) {
            for (auto &f : fills_) {
                if (f.line == h.lineAddr) {
                    f.starvedWhileBlocking = true;
                    break;
                }
            }
        }
    }

    if (profiler_ != nullptr)
        profiler_->begin(TickPhase::kIcache);
    processFills(now);
    fetchCycle(now);
    if (profiler_ != nullptr) {
        profiler_->end(TickPhase::kIcache);
        profiler_->begin(TickPhase::kPrefetcher);
    }
    drainPrefetchQueue(now);
    if (profiler_ != nullptr) {
        profiler_->end(TickPhase::kPrefetcher);
        profiler_->begin(TickPhase::kBpu);
    }
    predictCycle(now);
    if (profiler_ != nullptr)
        profiler_->end(TickPhase::kBpu);

    ftqOccupancy_.add(ftq_.size());
    if (tracer_.on() && ftq_.size() != lastTracedOccupancy_) {
        lastTracedOccupancy_ = ftq_.size();
        tracer_.writer()->counter("ftq", now, "occupancy",
                                  lastTracedOccupancy_);
    }

    if constexpr (kInvariantChecksEnabled)
        checkTickInvariants(now);
}

FDIP_HOT_PATH CycleSignals
Frontend::cycleSignals(Cycle now) const FDIP_HOT_NOEXCEPT
{
    CycleSignals sig;
    // A redirect bubble (flush restart, PFC/fixup re-steer, or an
    // L2-BTB re-steer) holds the predict stage; that is the classic
    // recovery shadow.
    sig.flushRestart = now < predStallUntil_;
    // An unresolved divergence whose cause was an undetected taken
    // branch: the frontend is running down a BTB-miss wrong path, so
    // any fetch stall until resolution is the BTB's fault.
    sig.btbMissWrongPath =
        pending_.has_value() && pending_->cause == kCauseBtbMissTaken;
    sig.itlbWait = now < itlbStallUntil_;
    sig.l1iWait =
        !ftq_.empty() && ftq_.at(0).state == FtqState::kFilling;
    sig.redirectShadow = now < redirectShadowUntil_;
    return sig;
}

void
Frontend::registerStats(StatRegistry &reg, const std::string &prefix) const
{
    ftq_.registerStats(reg, prefix + ".ftq");
    reg.addHistogram(prefix + ".ftq.occupancy", &ftqOccupancy_,
                     "FTQ occupancy sampled every cycle");
    reg.addHistogram(prefix + ".fill_latency", &fillLatency_,
                     "issue-to-fill latency of demand-touched L1I fills");
    l1i_.registerStats(reg, prefix + ".l1i");
    itlb_.registerStats(reg, prefix + ".itlb");
    if (prefetchBuffer_)
        prefetchBuffer_->registerStats(reg, prefix + ".pfb");
    reg.addCounter(prefix + ".prefetch_tracking_entries",
                   [this] {
                       return std::uint64_t{prefetchTrackingEntries()};
                   },
                   "lines tracked for usefulness accounting");
}

FDIP_HOT_PATH void
Frontend::checkTickInvariants(Cycle now)
{
    InvariantScope scope("Frontend::tick");
    FDIP_CHECK(now >= lastTickPlus1_,
               "tick at cycle %llu after cycle %llu (time ran backwards)",
               static_cast<unsigned long long>(now),
               static_cast<unsigned long long>(lastTickPlus1_ - 1));
    lastTickPlus1_ = now + 1;
    FDIP_CHECK(fills_.size() <= cfg_.l1iMshrs,
               "%zu in-flight fills exceed %u MSHRs", fills_.size(),
               cfg_.l1iMshrs);
    checkFtqIntegrity(ftq_);
    checkCacheConservation(l1i_);
    checkSimStats(stats_);
}

FDIP_HOT_PATH void
Frontend::forgetEvicted(Addr evicted_line)
{
    if (evicted_line != kNoAddr)
        linePrefetched_.erase(evicted_line);
}

// ---------------------------------------------------------------------
// Prediction pipeline.
// ---------------------------------------------------------------------

FDIP_HOT_PATH void
Frontend::pushHistoryEvent(Addr pc, Addr target, bool taken)
{
    bpu_.history().pushBranch(pc, target, taken);
}

FDIP_HOT_PATH void
Frontend::predictCycle(Cycle now)
{
    if (now < predStallUntil_)
        return;

    unsigned budget = cfg_.predictBandwidth;
    unsigned taken_budget = cfg_.maxTakenPerCycle;
    bool stop = false;

    while (budget > 0 && !stop) {
        if (ftq_.full())
            break;
        if (onCorrectPath_ && tracePos_ >= trace_.size())
            break; // Whole trace predicted; drain only.

        FtqEntry e;
        e.startAddr = predPc_;
        e.state = FtqState::kPredicted;
        e.readyAt = now + cfg_.btbLatency;
        e.seq = blockSeq_++;
        e.traceIdx = tracePos_;
        e.onCorrectPath = onCorrectPath_;
        e.histSnap = bpu_.history().snapshot();
        e.rasSnap = bpu_.ras().snapshot();
        e.lineAddr = l1i_.lineOf(e.startAddr);
        e.nextDeliverOffset = e.startOffset();

        std::uint8_t off = e.startOffset();
        for (;;) {
            const ScanResult r = scanInst(e, off, now);
            --budget;

            if (r.predTaken) {
                e.predictedTaken = true;
                e.termOffset = off;
                predPc_ = r.target;
                if (l2BtbBubble_ > 0) {
                    // The late L2-BTB re-steer ends the cycle and
                    // bubbles the prediction pipeline.
                    predStallUntil_ = now + l2BtbBubble_;
                    l2BtbBubble_ = 0;
                    stop = true;
                } else if (--taken_budget == 0) {
                    stop = true;
                }
                break;
            }
            if (onCorrectPath_ && tracePos_ >= trace_.size()) {
                e.termOffset = off;
                predPc_ = e.pcAt(off) + kInstBytes;
                stop = true;
                break;
            }
            if (off == kInstsPerBlock - 1) {
                e.termOffset = off;
                predPc_ = e.blockBase() + kFetchBlockBytes;
                break;
            }
            if (budget == 0) {
                e.termOffset = off;
                predPc_ = e.pcAt(off) + kInstBytes;
                stop = true;
                break;
            }
            ++off;
        }
        FDIP_TRACE_EVENT(tracer_,
                         instant("ftq_enqueue", "ftq", kTraceTidPredict,
                                 now,
                                 {{"addr", e.startAddr},
                                  {"seq", e.seq},
                                  {"insts", e.numInsts()}}));
        ftq_.push(std::move(e));
    }
}

FDIP_HOT_PATH Frontend::ScanResult
Frontend::scanInst(FtqEntry &entry, std::uint8_t offset, Cycle now)
{
    (void)now;
    const Addr pc = entry.pcAt(offset);
    const StaticInst &si = image_.instAt(pc);
    const bool have_oracle = onCorrectPath_;

    // Sanity: the correct-path stream must match the trace.
    if (have_oracle && trace_.pcOf(tracePos_) != pc) {
        fdip_panic("correct-path scan at %#llx but trace[%llu] is %#llx",
                   static_cast<unsigned long long>(pc),
                   static_cast<unsigned long long>(tracePos_),
                   static_cast<unsigned long long>(trace_.pcOf(tracePos_)));
    }

    // ---- BTB (or oracle branch detection under a perfect BTB).
    bool detected = false;
    bool from_l2_btb = false;
    BtbHit hit;
    if (cfg_.bpu.perfectBtb) {
        if (isBranch(si.cls)) {
            detected = true;
            hit.kind = si.cls;
            hit.target = si.target;
        }
    } else {
        const auto h = bpu_.lookupBranch(pc);
        if (h.has_value()) {
            detected = true;
            hit = h->hit;
            from_l2_btb = h->fromL2;
        }
    }
    if (detected)
        entry.detectedMask |= static_cast<std::uint8_t>(1u << offset);

    // Oracle outcome (correct path only).
    bool actual_taken = false;
    Addr actual_next = pc + kInstBytes;
    if (have_oracle) {
        const DynInst &d = trace_.insts[tracePos_];
        actual_taken = d.taken != 0;
        if (isBranch(si.cls) && actual_taken)
            actual_next = d.info;
    }

    // ---- RAS state before this instruction (for divergence repair).
    const RasSnapshot pre_ras = bpu_.ras().snapshot();

    // ---- Direction hint (EV8-style: hints exist for every slot; we
    // only compute them for real conditional branches — hints of
    // non-branches are never consulted).
    DirectionPrediction dir;
    bool hint;
    bool dir_predicted = false;
    if (isConditional(si.cls)) {
        dir = bpu_.predictDirection(pc, actual_taken);
        dir_predicted = true;
        hint = dir.taken;
    } else {
        hint = isBranch(si.cls);
    }
    if (hint)
        entry.dirHints |= static_cast<std::uint8_t>(1u << offset);

    // ---- Block-termination decision and target computation.
    ScanResult r;
    IttagePrediction itt_meta;
    bool used_ittage = false;
    if (detected) {
        r.predTaken = isConditional(hit.kind) ? hint : true;
        if (r.predTaken) {
            if (isIndirect(hit.kind)) {
                if (cfg_.bpu.perfectIndirect && have_oracle) {
                    r.target = actual_taken ? actual_next : pc + kInstBytes;
                } else {
                    const Addr t = bpu_.predictIndirect(pc, itt_meta);
                    used_ittage = true;
                    r.target = t != kNoAddr ? t : hit.target;
                }
            } else if (isReturn(hit.kind)) {
                r.target = bpu_.ras().pop();
                if (r.target == kNoAddr)
                    r.target = hit.target;
            } else {
                r.target = hit.target;
            }
            if (r.target == kNoAddr)
                r.target = pc + kInstBytes;
            if (isCall(hit.kind))
                bpu_.ras().push(pc + kInstBytes);
        }
    }

    // ---- Oracle bookkeeping: training (once per trace position) and
    // divergence detection.
    if (have_oracle) {
        const DynInst &d = trace_.insts[tracePos_];
        const bool first_visit = tracePos_ >= trainedUpTo_;
        if (first_visit) {
            trainedUpTo_ = tracePos_ + 1;
            if (dir_predicted)
                bpu_.updateDirection(pc, actual_taken, dir);
            if (isIndirect(si.cls)) {
                if (!used_ittage)
                    bpu_.predictIndirect(pc, itt_meta);
                bpu_.updateIndirect(pc, d.info, itt_meta);
            }
            if (isBranch(si.cls) && !cfg_.bpu.perfectBtb) {
                const Addr ins_target = actual_taken ? d.info : si.target;
                bpu_.insertBranch(pc, si.cls, ins_target, actual_taken);
            }
            if (isBranch(si.cls)) {
                prefetcher_.onBranch(pc, si.cls,
                                     actual_taken ? d.info : si.target,
                                     actual_taken);
            }
        }

        const Addr frontend_next =
            r.predTaken ? r.target : pc + kInstBytes;
        if (frontend_next != actual_next) {
            std::uint8_t cause;
            if (!detected) {
                cause = kCauseBtbMissTaken;
            } else if (isConditional(hit.kind) &&
                       r.predTaken != actual_taken) {
                cause = kCauseCondDir;
            } else {
                cause = kCauseTarget;
            }
            recordDivergence(entry, offset, pc, si, detected, cause,
                             pre_ras);
        } else {
            ++tracePos_;
        }
    }

    // ---- Modeled history update (per policy) + block event record.
    bool pushed = false;
    bool event_taken = r.predTaken;
    switch (bpu_.history().policy()) {
      case HistoryPolicy::kTargetHistory:
        if (detected && r.predTaken) {
            pushHistoryEvent(pc, r.target, true);
            pushed = true;
            event_taken = true;
        }
        break;
      case HistoryPolicy::kDirectionHistory:
        if (detected) {
            pushHistoryEvent(pc, r.target, r.predTaken);
            pushed = true;
        }
        break;
      case HistoryPolicy::kIdealDirectionHistory:
        if (have_oracle) {
            // Oracle detection: every actual branch updates history.
            if (isBranch(si.cls)) {
                pushHistoryEvent(pc, r.target, actual_taken);
                pushed = true;
                event_taken = actual_taken;
            }
        } else if (detected) {
            pushHistoryEvent(pc, r.target, r.predTaken);
            pushed = true;
        }
        break;
    }

    // A taken re-steer served from the L2 BTB arrives late: charge the
    // prediction pipeline the configured bubble (two-level extension).
    if (detected && r.predTaken && from_l2_btb &&
        cfg_.bpu.btbHierarchy.enabled) {
        l2BtbBubble_ = cfg_.bpu.btbHierarchy.l2ExtraLatency;
    }

    if (pushed || (detected && r.predTaken &&
                   (isCall(hit.kind) || isReturn(hit.kind)))) {
        BlockEvent ev;
        ev.pc = pc;
        ev.target = r.target;
        ev.offset = offset;
        ev.kind = detected ? hit.kind : si.cls;
        ev.taken = event_taken;
        ev.pushedHistory = pushed;
        entry.events[entry.numEvents++] = ev;
    }

    return r;
}

FDIP_HOT_PATH void
Frontend::recordDivergence(FtqEntry &entry, std::uint8_t offset, Addr pc,
                           const StaticInst &si, bool detected,
                           std::uint8_t cause,
                           const RasSnapshot &pre_ras_snap)
{
    (void)detected;
    (void)pre_ras_snap;
    const DynInst &d = trace_.insts[tracePos_];
    const bool actual_taken = d.taken != 0;

    PendingDivergence p;
    p.token = nextToken_++;
    p.traceIdx = tracePos_;
    p.correctNext = actual_taken ? d.info : pc + kInstBytes;
    p.cause = cause;

    // Repair context: the owning block's snapshots plus the event
    // prefix recorded so far (all strictly before this instruction),
    // plus the corrected event itself.
    p.blockHistSnap = entry.histSnap;
    p.blockRasSnap = entry.rasSnap;
    p.numPrefix = entry.numEvents;
    for (unsigned i = 0; i < entry.numEvents; ++i)
        p.prefix[i] = entry.events[i];

    const HistoryPolicy pol = bpu_.history().policy();
    p.corrected.pc = pc;
    p.corrected.target = actual_taken ? d.info : si.target;
    p.corrected.offset = offset;
    p.corrected.kind = si.cls;
    p.corrected.taken = actual_taken;
    p.corrected.pushedHistory =
        (pol == HistoryPolicy::kTargetHistory && actual_taken) ||
        (pol != HistoryPolicy::kTargetHistory && isBranch(si.cls));

    entry.divergeOffset = offset;
    onCorrectPath_ = false;
    pending_ = p;
}

// ---------------------------------------------------------------------
// Fetch pipeline.
// ---------------------------------------------------------------------

FDIP_HOT_PATH void
Frontend::processFills(Cycle now)
{
    for (std::size_t i = 0; i < fills_.size();) {
        InflightFill &f = fills_[i];
        if (f.ready > now) {
            ++i;
            continue;
        }
        unsigned way = 0;
        if (prefetchBuffer_ && f.isPrefetch && !f.demandTouched) {
            // Original-FDP mode: untouched prefetches land in the
            // side buffer and only enter the L1I on a demand hit.
            prefetchBuffer_->fill(f.line);
        } else {
            forgetEvicted(l1i_.fill(f.line, &way));
        }
        linePrefetched_.put(f.line, f.isPrefetch && !f.demandTouched);

        // Wake FTQ entries waiting on this line.
        for (std::size_t q = 0; q < ftq_.size(); ++q) {
            FtqEntry &e = ftq_.at(q);
            if (e.state == FtqState::kFilling && e.lineAddr == f.line) {
                e.state = FtqState::kReady;
                e.icacheWay = static_cast<std::uint8_t>(way);
                e.deliverableAt = now + 1; // Fill data forwards directly.
            }
        }

        // Exposure classification for demand-touched transactions
        // (paper Fig. 14): fully exposed when the request only started
        // at the FTQ head; partially exposed when starvation was
        // observed while the fill blocked the head; covered otherwise.
        if (f.demandTouched) {
            if (f.wasHeadStart) {
                ++stats_.missFullyExposed;
            } else if (f.starvedWhileBlocking) {
                ++stats_.missPartiallyExposed;
            } else {
                ++stats_.missCovered;
            }
        }

        if (f.demandTouched)
            fillLatency_.add(now - f.issued);
        FDIP_TRACE_EVENT(tracer_,
                         asyncEnd(f.isPrefetch ? "prefetch_fill"
                                               : "demand_fill",
                                  "mem", f.line, now));

        prefetcher_.onFillComplete(f.line, f.isPrefetch, now);
        fills_.removeSwap(i);
    }
}

FDIP_HOT_PATH void
Frontend::probeEntry(FtqEntry &entry, std::size_t pos, Cycle now)
{
    // ITLB first (4KB pages).
    const Addr page = entry.startAddr & ~static_cast<Addr>(4095);
    if (!itlb_.access(page).has_value()) {
        itlb_.fill(page);
        ++stats_.itlbMisses;
        entry.readyAt = now + cfg_.itlbMissPenalty;
        // Cycle-accounting signal: a head-blocking ITLB refill is a
        // distinct stall cause (observation-only; never read back).
        if (pos == 0 && entry.readyAt > itlbStallUntil_)
            itlbStallUntil_ = entry.readyAt;
        return;
    }

    // Perfect-prefetch mode: the line is always resident by the time
    // the demand probe happens, but the request still generates
    // traffic (paper [32]).
    if (cfg_.perfectPrefetch && !cfg_.perfectICache &&
        !l1i_.contains(entry.lineAddr)) {
        mem_.fetchInstLine(entry.lineAddr, now);
        forgetEvicted(l1i_.fill(entry.lineAddr));
    }

    // L1I tag probe.
    ++stats_.l1iDemandAccesses;
    ++stats_.l1iTagAccesses;
    if (cfg_.perfectICache) {
        entry.state = FtqState::kReady;
        entry.icacheWay = 0;
        entry.deliverableAt = now + cfg_.l1iHitLatency;
        return;
    }

    const auto way = l1i_.probe(entry.lineAddr);
    prefetcher_.onDemandLookup(entry.lineAddr, way.has_value(), now);
    if (way.has_value()) {
        if (bool *was_pf = linePrefetched_.find(entry.lineAddr);
            was_pf != nullptr && *was_pf) {
            ++stats_.prefetchesUseful;
            *was_pf = false;
        }
        l1i_.touch(entry.lineAddr);
        entry.state = FtqState::kReady;
        entry.icacheWay = static_cast<std::uint8_t>(*way);
        entry.deliverableAt = now + cfg_.l1iHitLatency;
        return;
    }

    // Prefetch-buffer probe (parallel with the L1I tags).
    if (prefetchBuffer_ && prefetchBuffer_->access(entry.lineAddr)) {
        prefetchBuffer_->invalidate(entry.lineAddr);
        forgetEvicted(l1i_.fill(entry.lineAddr));
        if (bool *was_pf = linePrefetched_.find(entry.lineAddr);
            was_pf != nullptr && *was_pf) {
            ++stats_.prefetchesUseful;
            *was_pf = false;
        }
        entry.state = FtqState::kReady;
        entry.icacheWay = 0;
        entry.deliverableAt = now + cfg_.l1iHitLatency;
        return;
    }

    ++stats_.l1iDemandMisses;

    // Merge with an in-flight fill if one covers this line.
    for (auto &f : fills_) {
        if (f.line == entry.lineAddr) {
            entry.state = FtqState::kFilling;
            if (!f.demandTouched) {
                f.demandTouched = true;
                f.wasHeadStart = pos == 0;
                FDIP_TRACE_EVENT(
                    tracer_,
                    instant("demand_merge", "mem", kTraceTidMemory, now,
                            {{"line", f.line},
                             {"into_prefetch", f.isPrefetch ? 1u : 0u}}));
            }
            return;
        }
    }

    // Allocate an MSHR and issue the fill.
    if (fills_.size() >= cfg_.l1iMshrs)
        return; // Retry next cycle (entry stays kPredicted).

    const FillResult r = mem_.fetchInstLine(entry.lineAddr, now);
    InflightFill f;
    f.line = entry.lineAddr;
    f.ready = r.ready;
    f.issued = now;
    f.isPrefetch = false;
    f.demandTouched = true;
    f.wasHeadStart = pos == 0;
    fills_.pushBack(f);
    entry.state = FtqState::kFilling;
    FDIP_TRACE_EVENT(tracer_,
                     asyncBegin("demand_fill", "mem", entry.lineAddr, now,
                                {{"line", entry.lineAddr},
                                 {"head_start", pos == 0 ? 1u : 0u}}));
}

FDIP_HOT_PATH void
Frontend::fetchCycle(Cycle now)
{
    // ---- I-cache fill stage: the two oldest translation-ready entries
    // probe the ITLB and L1I tags.
    unsigned probes = cfg_.fetchProbesPerCycle;
    for (std::size_t q = 0; q < ftq_.size() && probes > 0; ++q) {
        FtqEntry &e = ftq_.at(q);
        if (e.state == FtqState::kPredicted && e.readyAt <= now) {
            probeEntry(e, q, now);
            --probes;
        }
    }

    deliverFromHead(now);
}

FDIP_HOT_PATH void
Frontend::deliverFromHead(Cycle now)
{
    unsigned budget = cfg_.fetchBandwidth;
    while (budget > 0 && !ftq_.empty()) {
        FtqEntry &h = ftq_.at(0);
        if (h.state != FtqState::kReady || h.deliverableAt > now)
            break;

        if (!h.predecoded) {
            h.predecoded = true;
            predecodeEntry(h, now);
            // Even when PFC/fixup truncated the entry, the surviving
            // prefix still delivers this cycle.
        }

        while (budget > 0 && h.nextDeliverOffset <= h.termOffset) {
            if (backend_.decodeQueueSpace() == 0)
                return;
            const std::uint8_t off = h.nextDeliverOffset;
            const Addr pc = h.pcAt(off);
            const StaticInst &si = image_.instAt(pc);

            DeliveredInst d;
            d.seq = instSeq_++;
            d.cls = si.cls;
            d.deliverCycle = now;
            d.onCorrectPath = h.onCorrectPath && off <= h.divergeOffset;
            if (d.onCorrectPath) {
                d.traceIdx =
                    h.traceIdx + (off - h.startOffset());
                const DynInst &t = trace_.insts[d.traceIdx];
                d.taken = t.taken != 0;
                if (si.cls == InstClass::kLoad ||
                    si.cls == InstClass::kStore) {
                    d.memAddr = t.info;
                }
                if (pending_.has_value() && !pending_->delivered &&
                    pending_->traceIdx == d.traceIdx) {
                    d.resolveToken = pending_->token;
                    pending_->delivered = true;
                }
                ++stats_.deliveredInsts;
            } else {
                ++stats_.wrongPathDelivered;
            }
            backend_.deliver(d);
            ++h.nextDeliverOffset;
            --budget;
        }

        if (h.nextDeliverOffset > h.termOffset) {
            FDIP_TRACE_EVENT(tracer_,
                             instant("ftq_dequeue", "ftq", kTraceTidFetch,
                                     now,
                                     {{"addr", h.startAddr},
                                      {"seq", h.seq}}));
            ftq_.popHead();
        } else {
            break;
        }
    }
}

FDIP_HOT_PATH bool
Frontend::predecodeEntry(FtqEntry &entry, Cycle now)
{
    // Scan instructions before the block-termination offset — plus the
    // terminating slot itself when the block ended sequentially (a
    // branch there that the predictor missed also steers the next
    // block wrong). Any branch the prediction pipeline should have
    // ended the block at is a PFC/fixup candidate (paper Fig. 5).
    for (std::uint8_t o = entry.startOffset(); o <= entry.termOffset;
         ++o) {
        if (o == entry.termOffset && entry.predictedTaken)
            break; // Block correctly ends in a predicted-taken branch.
        const Addr pc = entry.pcAt(o);
        const StaticInst &si = image_.instAt(pc);
        if (!isBranch(si.cls))
            continue;
        const bool detected =
            (entry.detectedMask >> o) & 1;
        if (detected)
            continue; // The predictor saw it and chose fall-through.

        if (isUnconditional(si.cls)) {
            // PFC case 1: an undetected unconditional branch. The
            // pre-decoder can recover PC-relative and return targets;
            // register-indirect targets must wait for execution.
            if (cfg_.pfcEnabled &&
                (isDirect(si.cls) || isReturn(si.cls))) {
                triggerPfc(entry, o, si, now);
                return true;
            }
        } else {
            // Conditional, undetected.
            if (cfg_.pfcEnabled && !cfg_.pfcUnconditionalOnly &&
                entry.hintAt(o)) {
                // PFC case 2: direction predictor says taken.
                triggerPfc(entry, o, si, now);
                return true;
            }
            if (cfg_.ghrFixup() &&
                bpu_.history().policy() ==
                    HistoryPolicy::kDirectionHistory) {
                triggerGhrFixup(entry, o, now);
                return true;
            }
        }
    }
    return false;
}

FDIP_HOT_PATH void
Frontend::replayEvent(const BlockEvent &ev)
{
    if (ev.pushedHistory)
        pushHistoryEvent(ev.pc, ev.target, ev.taken);
    if (ev.taken && isCall(ev.kind))
        bpu_.ras().push(ev.pc + kInstBytes);
    else if (ev.taken && isReturn(ev.kind))
        bpu_.ras().pop();
}

FDIP_HOT_PATH void
Frontend::rewindToPrefix(const FtqEntry &entry, std::uint8_t offset)
{
    bpu_.history().restore(entry.histSnap);
    bpu_.ras().restore(entry.rasSnap);
    for (unsigned i = 0; i < entry.numEvents; ++i) {
        const BlockEvent &ev = entry.events[i];
        if (ev.offset >= offset)
            break;
        replayEvent(ev);
    }
}

FDIP_HOT_PATH void
Frontend::triggerPfc(FtqEntry &entry, std::uint8_t offset,
                     const StaticInst &si, Cycle now)
{
    ++stats_.pfcFires;
    const Addr pc = entry.pcAt(offset);

    // Rebuild speculative state to just before the PFC branch, then
    // apply the PFC belief: this branch is taken.
    rewindToPrefix(entry, offset);

    Addr target;
    if (isReturn(si.cls)) {
        target = bpu_.ras().pop();
        if (target == kNoAddr)
            target = pc + kInstBytes;
    } else {
        target = si.target;
    }
    if (isCall(si.cls))
        bpu_.ras().push(pc + kInstBytes);
    pushHistoryEvent(pc, target, true);

    FDIP_TRACE_EVENT(tracer_,
                     instant("pfc_fire", "pfc", kTraceTidFetch, now,
                             {{"pc", pc}, {"target", target}}));

    // Truncate this entry at the PFC branch and flush younger entries.
    entry.termOffset = offset;
    entry.predictedTaken = true;

    // Find this entry's position (it is the head during pre-decode).
    ftq_.truncateAfter(1);

    predPc_ = target;
    predStallUntil_ = now + 1;
    redirectShadowUntil_ = now + cfg_.btbLatency + 1;

    // Oracle accounting.
    const bool inst_correct =
        entry.onCorrectPath && offset <= entry.divergeOffset;
    if (inst_correct) {
        const InstSeq j = entry.traceIdx + (offset - entry.startOffset());
        const DynInst &d = trace_.insts[j];
        const bool actual_taken = d.taken != 0;
        const Addr actual_next =
            actual_taken ? d.info : pc + kInstBytes;
        if (pending_.has_value() && !pending_->delivered)
            pending_.reset();
        if (actual_taken && actual_next == target) {
            ++stats_.pfcCorrect;
            onCorrectPath_ = true;
            tracePos_ = j + 1;
            // The PFC branch itself resolved early: clear any stale
            // divergence bookkeeping on this entry.
            if (entry.divergeOffset == offset)
                entry.divergeOffset = 255;
        } else {
            ++stats_.pfcWrong;
            onCorrectPath_ = false;
            // The PFC mis-steered a branch whose fall-through (or a
            // different target) was correct: execute-time resolution.
            PendingDivergence p;
            p.token = nextToken_++;
            p.traceIdx = j;
            p.correctNext = actual_next;
            p.cause = kCausePfcMisfire;
            p.blockHistSnap = entry.histSnap;
            p.blockRasSnap = entry.rasSnap;
            p.numPrefix = 0;
            for (unsigned i = 0; i < entry.numEvents; ++i) {
                if (entry.events[i].offset >= offset)
                    break;
                p.prefix[p.numPrefix++] = entry.events[i];
            }
            const HistoryPolicy pol = bpu_.history().policy();
            p.corrected.pc = pc;
            p.corrected.target = actual_taken ? d.info : si.target;
            p.corrected.offset = offset;
            p.corrected.kind = si.cls;
            p.corrected.taken = actual_taken;
            p.corrected.pushedHistory =
                (pol == HistoryPolicy::kTargetHistory && actual_taken) ||
                pol != HistoryPolicy::kTargetHistory;
            entry.divergeOffset = offset;
            pending_ = p;
        }
    }
    // Wrong-path PFC: the redirect happened above; the pending
    // divergence (whose instruction is older and already delivered)
    // remains in force.

    // Record the PFC action as this entry's terminal event so later
    // repairs replay it correctly.
    BlockEvent ev;
    ev.pc = pc;
    ev.target = target;
    ev.offset = offset;
    ev.kind = si.cls;
    ev.taken = true;
    ev.pushedHistory = true;
    // Drop any recorded events at or beyond the truncation point.
    while (entry.numEvents > 0 &&
           entry.events[entry.numEvents - 1].offset >= offset) {
        --entry.numEvents;
    }
    entry.events[entry.numEvents++] = ev;
}

FDIP_HOT_PATH void
Frontend::triggerGhrFixup(FtqEntry &entry, std::uint8_t offset, Cycle now)
{
    ++stats_.ghrFixups;
    const Addr pc = entry.pcAt(offset);
    const StaticInst &si = image_.instAt(pc);
    const bool hint = entry.hintAt(offset);

    FDIP_TRACE_EVENT(tracer_,
                     instant("ghr_fixup", "pfc", kTraceTidFetch, now,
                             {{"pc", pc}, {"hint", hint ? 1u : 0u}}));

    // Restore to the prefix, add the missing branch's direction bit.
    rewindToPrefix(entry, offset);
    pushHistoryEvent(pc, si.target, hint);

    // Under all-branch allocation (GHR3 / basic-block-style BTBs), the
    // pre-decoder installs the newly discovered branch into the BTB.
    if (!cfg_.bpu.btb.allocateTakenOnly && !cfg_.bpu.perfectBtb)
        bpu_.btb().install(pc, si.cls, si.target, false);

    // Truncate: everything after the fixed branch is re-predicted with
    // the corrected history.
    entry.termOffset = offset;
    entry.predictedTaken = false;
    while (entry.numEvents > 0 &&
           entry.events[entry.numEvents - 1].offset > offset) {
        --entry.numEvents;
    }
    BlockEvent ev;
    ev.pc = pc;
    ev.target = si.target;
    ev.offset = offset;
    ev.kind = si.cls;
    ev.taken = hint;
    ev.pushedHistory = true;
    entry.events[entry.numEvents++] = ev;

    ftq_.truncateAfter(1);
    predPc_ = pc + kInstBytes;
    predStallUntil_ = now + 1;
    redirectShadowUntil_ = now + cfg_.btbLatency + 1;

    // Resume the correct path only when this instruction is strictly
    // before any divergence: a fixup branch *at* the divergence offset
    // is a BTB-miss branch that is actually taken — the sequential
    // resume stays wrong-path and the pending execute-time resolution
    // must remain in force.
    const bool inst_correct =
        entry.onCorrectPath && offset < entry.divergeOffset;
    if (inst_correct) {
        const InstSeq j = entry.traceIdx + (offset - entry.startOffset());
        if (pending_.has_value() && !pending_->delivered)
            pending_.reset();
        onCorrectPath_ = true;
        tracePos_ = j + 1;
    }
}

// ---------------------------------------------------------------------
// Divergence resolution (backend callback).
// ---------------------------------------------------------------------

FDIP_HOT_PATH void
Frontend::onResolve(std::uint64_t token, std::uint64_t seq, Cycle now)
{
    if (!pending_.has_value() || pending_->token != token)
        return; // Stale: the divergence was repaired earlier (PFC).

    const PendingDivergence p = *pending_;
    pending_.reset();

    ++stats_.mispredicts;
    switch (p.cause) {
      case kCauseCondDir: ++stats_.mispredictsCondDir; break;
      case kCauseBtbMissTaken: ++stats_.mispredictsBtbMissTaken; break;
      case kCauseTarget: ++stats_.mispredictsTarget; break;
      case kCausePfcMisfire: ++stats_.mispredictsPfcMisfire; break;
      default: break;
    }

    FDIP_TRACE_EVENT(tracer_,
                     instant("pipeline_flush", "flush", kTraceTidFetch,
                             now,
                             {{"cause", p.cause},
                              {"trace_idx", p.traceIdx},
                              {"redirect", p.correctNext}}));

    backend_.flushYoungerThan(seq);
    // In-flight fills are NOT cancelled: the lines still arrive and
    // install (realistic wrong-path pollution).
    ftq_.clear();

    // Rebuild the speculative state: block snapshot, event prefix,
    // then the corrected outcome of the diverging branch.
    bpu_.history().restore(p.blockHistSnap);
    bpu_.ras().restore(p.blockRasSnap);
    for (unsigned i = 0; i < p.numPrefix; ++i)
        replayEvent(p.prefix[i]);
    replayEvent(p.corrected);

    predPc_ = p.correctNext;
    tracePos_ = p.traceIdx + 1;
    onCorrectPath_ = true;
    predStallUntil_ = now + 1;
    redirectShadowUntil_ = now + cfg_.btbLatency + 1;
}

// ---------------------------------------------------------------------
// Prefetch queue drain.
// ---------------------------------------------------------------------

FDIP_HOT_PATH void
Frontend::drainPrefetchQueue(Cycle now)
{
    for (unsigned n = 0; n < cfg_.prefetchesPerCycle; ++n) {
        const Addr line = prefetcher_.popPrefetch();
        if (line == kNoAddr)
            return;
        ++stats_.prefetchesIssued;

        // Prefetches probe the I-cache tag array (paper Section VI-D).
        ++stats_.l1iTagAccesses;
        if (cfg_.perfectICache || l1i_.probe(line).has_value() ||
            (prefetchBuffer_ && prefetchBuffer_->contains(line))) {
            ++stats_.prefetchesRedundant;
            continue;
        }

        bool in_flight = false;
        for (const auto &f : fills_) {
            if (f.line == line) {
                in_flight = true;
                break;
            }
        }
        if (in_flight) {
            ++stats_.prefetchesRedundant;
            continue;
        }

        if (fills_.size() >= cfg_.l1iMshrs)
            return; // No MSHR: drop remaining prefetches this cycle.

        const FillResult r = mem_.fetchInstLine(line, now);
        InflightFill f;
        f.line = line;
        f.ready = r.ready;
        f.issued = now;
        f.isPrefetch = true;
        fills_.pushBack(f);
        FDIP_TRACE_EVENT(tracer_,
                         instant("prefetch_issue", "prefetch",
                                 kTraceTidPrefetch, now,
                                 {{"line", line}}));
        FDIP_TRACE_EVENT(tracer_,
                         asyncBegin("prefetch_fill", "mem", line, now,
                                    {{"line", line}}));
    }
}

} // namespace fdip
