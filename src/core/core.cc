#include "core/core.h"

#include "util/hotpath.h"
#include "util/log.h"

namespace fdip
{

Core::Core(const CoreConfig &cfg, const Trace &trace,
           std::unique_ptr<InstPrefetcher> prefetcher)
    : cfg_(cfg),
      trace_(trace),
      bpu_(cfg_.bpu),
      mem_(cfg_.mem),
      prefetcher_(std::move(prefetcher)),
      backend_(cfg_, mem_, stats_),
      frontend_(cfg_, trace_, bpu_, backend_, mem_, *prefetcher_, stats_),
      profiler_(cfg_.obs.profileInterval)
{
    backend_.setResolveCallback(
        [this](std::uint64_t token, std::uint64_t seq, Cycle now) {
            frontend_.onResolve(token, seq, now);
        });
    prefetcher_->bind(bpu_, trace_.image());
    if (profiler_.enabled())
        frontend_.attachProfiler(&profiler_);
}

SimStats
Core::run(std::uint64_t warmup_insts)
{
    const std::uint64_t total = trace_.size();
    if (warmup_insts >= total)
        fdip_fatal("warmup %llu >= trace length %llu",
                   static_cast<unsigned long long>(warmup_insts),
                   static_cast<unsigned long long>(total));

    Cycle now = 0;
    bool warm = warmup_insts == 0;
    Cycle warm_start_cycle = 0;

    // External counters snapshotted at the warmup boundary.
    std::uint64_t btb_lookups0 = 0;
    std::uint64_t btb_hits0 = 0;

    std::uint64_t last_commit = 0;
    Cycle last_progress = 0;

    // Heartbeat bookkeeping: a sample fires when the post-warmup commit
    // count crosses the next interval multiple. Deltas come from the
    // live stats_ fields (which the frontend/backend increment in
    // place); committedInsts/cycles are derived here because stats_
    // only materializes them at the end of the run.
    const std::uint64_t hb = cfg_.obs.heartbeatInterval;
    std::uint64_t next_hb = hb;
    SimStats hb_prev;
    std::uint64_t hb_prev_instrs = 0;
    std::uint64_t hb_prev_cycles = 0;
    // Preallocate the whole series (post-warmup commits can cross at
    // most total/hb interval multiples) and write by index: the tick
    // loop below is a hot region and must not allocate.
    heartbeats_.clear();
    std::size_t hb_count = 0;
    if (hb != 0)
        heartbeats_.resize(static_cast<std::size_t>(total / hb) + 2);

    FDIP_HOT_REGION_BEGIN(tick_loop);
    while (backend_.committed() < total) {
        profiler_.beginTick(now);
        profiler_.begin(TickPhase::kFrontend);
        frontend_.tick(now);
        profiler_.end(TickPhase::kFrontend);
        profiler_.begin(TickPhase::kBackend);
        backend_.tick(now);
        profiler_.end(TickPhase::kBackend);
        profiler_.begin(TickPhase::kObs);

        // The warmup-boundary tick: counted in cycles (and charged to
        // base.committed below — its starvation increment is discarded
        // with the rest of the reset, so any stall charge would break
        // the stall-sum conservation law).
        bool boundary_tick = false;
        if (!warm && backend_.committed() >= warmup_insts) {
            warm = true;
            boundary_tick = true;
            warm_start_cycle = now;
            const std::uint64_t kept_commits = backend_.committed();
            stats_ = SimStats{};
            // Re-bias commit counting: committedInsts is derived at the
            // end from backend_.committed() - kept_commits.
            warmup_insts = kept_commits;
            btb_lookups0 = bpu_.btb().lookups();
            btb_hits0 = bpu_.btb().hits();
        }

        if (warm) {
            // Top-down fetch-slot accounting: charge this cycle to its
            // unique leaf bucket. The starved gate re-evaluates exactly
            // the condition Backend::tick used for starvationCycles
            // (decode-queue occupancy is stable between the backend
            // tick and here), so the conservation laws below hold
            // tick-by-tick, not just at the end of the run.
            CycleBucket bucket = CycleBucket::kBaseCommitted;
            if (!boundary_tick) {
                CycleSignals sig = frontend_.cycleSignals(now);
                sig.starved =
                    backend_.decodeQueueSize() < cfg_.fetchBandwidth;
                sig.dispatchBlocked = backend_.dispatchBlocked();
                bucket = classifyCycle(sig);
            }
            chargeCycle(stats_, bucket);
            FDIP_CHECK(stats_.cycleBucketSum() ==
                           now - warm_start_cycle + 1,
                       "cycle buckets (%llu) != elapsed post-warmup "
                       "cycles (%llu)",
                       static_cast<unsigned long long>(
                           stats_.cycleBucketSum()),
                       static_cast<unsigned long long>(
                           now - warm_start_cycle + 1));
            FDIP_CHECK(stats_.stallCycleSum() == stats_.starvationCycles,
                       "stall buckets (%llu) != starvation cycles (%llu)",
                       static_cast<unsigned long long>(
                           stats_.stallCycleSum()),
                       static_cast<unsigned long long>(
                           stats_.starvationCycles));
        }

        if (hb != 0 && warm) {
            const std::uint64_t done = backend_.committed() - warmup_insts;
            if (done >= next_hb) {
                HeartbeatSample s;
                s.instrs = done;
                s.cycles = now - warm_start_cycle + 1;
                s.dInstrs = done - hb_prev_instrs;
                s.dCycles = s.cycles - hb_prev_cycles;
                s.mispredicts = stats_.mispredicts - hb_prev.mispredicts;
                s.starvationCycles =
                    stats_.starvationCycles - hb_prev.starvationCycles;
                s.l1iDemandMisses =
                    stats_.l1iDemandMisses - hb_prev.l1iDemandMisses;
                s.pfcFires = stats_.pfcFires - hb_prev.pfcFires;
                s.prefetchesIssued =
                    stats_.prefetchesIssued - hb_prev.prefetchesIssued;
                s.prefetchesUseful =
                    stats_.prefetchesUseful - hb_prev.prefetchesUseful;
                for (std::size_t b = 0; b < kCycleBucketCount; ++b) {
                    s.cycleBuckets[b] =
                        stats_.*kCycleBucketField[b] -
                        hb_prev.*kCycleBucketField[b];
                }
                FDIP_CHECK(hb_count < heartbeats_.size(),
                           "heartbeat series overflow at sample %zu",
                           hb_count);
                heartbeats_[hb_count++] = s;
                hb_prev = stats_;
                hb_prev_instrs = done;
                hb_prev_cycles = s.cycles;
                next_hb = done - done % hb + hb;
            }
        }

        if (backend_.committed() != last_commit) {
            last_commit = backend_.committed();
            last_progress = now;
        } else if (now - last_progress > 1000000) {
            fdip_panic("no commit progress for 1M cycles at cycle %llu "
                       "(committed %llu / %llu)",
                       static_cast<unsigned long long>(now),
                       static_cast<unsigned long long>(last_commit),
                       static_cast<unsigned long long>(total));
        }

        profiler_.end(TickPhase::kObs);
        ++now;
    }
    FDIP_HOT_REGION_END(tick_loop);

    heartbeats_.resize(hb_count);
    stats_.cycles = now - warm_start_cycle;
    stats_.committedInsts = backend_.committed() - warmup_insts;
    stats_.btbLookups = bpu_.btb().lookups() - btb_lookups0;
    stats_.btbHits = bpu_.btb().hits() - btb_hits0;
    return stats_;
}

void
registerCoreSimStats(StatRegistry &reg, const SimStats &s)
{
    const auto add = [&reg, &s](const char *name,
                                std::uint64_t SimStats::*field) {
        reg.addCounter(std::string("core.") + name,
                       [&s, field] { return s.*field; });
    };
    add("cycles", &SimStats::cycles);
    add("committed_insts", &SimStats::committedInsts);
    add("cond_branches", &SimStats::condBranches);
    add("taken_branches", &SimStats::takenBranches);
    add("indirect_branches", &SimStats::indirectBranches);
    add("returns", &SimStats::returns);
    add("mispredicts", &SimStats::mispredicts);
    add("mispredicts_cond_dir", &SimStats::mispredictsCondDir);
    add("mispredicts_btb_miss_taken", &SimStats::mispredictsBtbMissTaken);
    add("mispredicts_target", &SimStats::mispredictsTarget);
    add("mispredicts_pfc_misfire", &SimStats::mispredictsPfcMisfire);
    add("pfc_fires", &SimStats::pfcFires);
    add("pfc_correct", &SimStats::pfcCorrect);
    add("pfc_wrong", &SimStats::pfcWrong);
    add("ghr_fixups", &SimStats::ghrFixups);
    add("starvation_cycles", &SimStats::starvationCycles);
    add("delivered_insts", &SimStats::deliveredInsts);
    add("wrong_path_delivered", &SimStats::wrongPathDelivered);
    add("l1i_demand_accesses", &SimStats::l1iDemandAccesses);
    add("l1i_demand_misses", &SimStats::l1iDemandMisses);
    add("l1i_tag_accesses", &SimStats::l1iTagAccesses);
    add("prefetches_issued", &SimStats::prefetchesIssued);
    add("prefetches_redundant", &SimStats::prefetchesRedundant);
    add("prefetches_useful", &SimStats::prefetchesUseful);
    add("itlb_misses", &SimStats::itlbMisses);
    add("miss_fully_exposed", &SimStats::missFullyExposed);
    add("miss_partially_exposed", &SimStats::missPartiallyExposed);
    add("miss_covered", &SimStats::missCovered);
    add("btb_lookups", &SimStats::btbLookups);
    add("btb_hits", &SimStats::btbHits);
    registerCycleStats(reg, s); // core.cycles.* buckets + fractions.

    reg.addDerived("core.ipc", [&s] { return s.ipc(); });
    reg.addDerived("core.branch_mpki", [&s] { return s.branchMpki(); });
    reg.addDerived("core.starvation_per_ki",
                   [&s] { return s.starvationPerKi(); });
    reg.addDerived("core.tag_accesses_per_ki",
                   [&s] { return s.tagAccessesPerKi(); });
    reg.addDerived("core.l1i_mpki", [&s] { return s.l1iMpki(); });
    reg.addDerived("core.prefetch_accuracy",
                   [&s] { return s.prefetchAccuracy(); });
    reg.addDerived("core.prefetch_coverage",
                   [&s] { return s.prefetchCoverage(); });
    reg.addDerived("core.prefetch_redundant_rate",
                   [&s] { return s.prefetchRedundantRate(); });
}

void
Core::registerStats(StatRegistry &reg) const
{
    registerCoreSimStats(reg, stats_);
    frontend_.registerStats(reg, "frontend");
    bpu_.registerStats(reg, "bpu");
    mem_.registerStats(reg, "mem");
    prefetcher_->registerStats(reg,
                               std::string("pf.") + prefetcher_->name());
}

} // namespace fdip
