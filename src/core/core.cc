#include "core/core.h"

#include "util/log.h"

namespace fdip
{

Core::Core(const CoreConfig &cfg, const Trace &trace,
           std::unique_ptr<InstPrefetcher> prefetcher)
    : cfg_(cfg),
      trace_(trace),
      bpu_(cfg_.bpu),
      mem_(cfg_.mem),
      prefetcher_(std::move(prefetcher)),
      backend_(cfg_, mem_, stats_),
      frontend_(cfg_, trace_, bpu_, backend_, mem_, *prefetcher_, stats_)
{
    backend_.setResolveCallback(
        [this](std::uint64_t token, std::uint64_t seq, Cycle now) {
            frontend_.onResolve(token, seq, now);
        });
    prefetcher_->bind(bpu_, trace_.image());
}

SimStats
Core::run(std::uint64_t warmup_insts)
{
    const std::uint64_t total = trace_.size();
    if (warmup_insts >= total)
        fdip_fatal("warmup %llu >= trace length %llu",
                   static_cast<unsigned long long>(warmup_insts),
                   static_cast<unsigned long long>(total));

    Cycle now = 0;
    bool warm = warmup_insts == 0;
    Cycle warm_start_cycle = 0;

    // External counters snapshotted at the warmup boundary.
    std::uint64_t btb_lookups0 = 0;
    std::uint64_t btb_hits0 = 0;

    std::uint64_t last_commit = 0;
    Cycle last_progress = 0;

    while (backend_.committed() < total) {
        frontend_.tick(now);
        backend_.tick(now);

        if (!warm && backend_.committed() >= warmup_insts) {
            warm = true;
            warm_start_cycle = now;
            const std::uint64_t kept_commits = backend_.committed();
            stats_ = SimStats{};
            // Re-bias commit counting: committedInsts is derived at the
            // end from backend_.committed() - kept_commits.
            warmup_insts = kept_commits;
            btb_lookups0 = bpu_.btb().lookups();
            btb_hits0 = bpu_.btb().hits();
        }

        if (backend_.committed() != last_commit) {
            last_commit = backend_.committed();
            last_progress = now;
        } else if (now - last_progress > 1000000) {
            fdip_panic("no commit progress for 1M cycles at cycle %llu "
                       "(committed %llu / %llu)",
                       static_cast<unsigned long long>(now),
                       static_cast<unsigned long long>(last_commit),
                       static_cast<unsigned long long>(total));
        }

        ++now;
    }

    stats_.cycles = now - warm_start_cycle;
    stats_.committedInsts = backend_.committed() - warmup_insts;
    stats_.btbLookups = bpu_.btb().lookups() - btb_lookups0;
    stats_.btbHits = bpu_.btb().hits() - btb_hits0;
    return stats_;
}

} // namespace fdip
