/**
 * @file
 * Per-run simulation statistics, covering every metric the paper's
 * figures report (IPC, branch MPKI, starvation cycles/KI, I-cache tag
 * accesses/KI, exposed/covered miss classification, PFC and fixup
 * event counts).
 */

#ifndef FDIP_CORE_SIM_STATS_H_
#define FDIP_CORE_SIM_STATS_H_

#include <cstddef>
#include <cstdint>
#include <tuple>
#include <utility>

#include "util/hotpath.h"
#include "util/state.h"

namespace fdip
{

/** Statistics for one simulation run (collected post-warmup). */
struct SimStats
{
    /**
     * Number of architectural (determinism-relevant) counters. This is
     * the documented arity of architecturalState(): the static
     * assertions below force anyone adding a counter to update the
     * tuple, this constant, and (by reading this comment) the parallel
     * determinism contract together.
     */
    static constexpr std::size_t kArchitecturalCounters = 38;

    /// @{ Progress.
    FDIP_STATE_MICRO std::uint64_t cycles = 0;
    FDIP_STATE_MICRO std::uint64_t committedInsts = 0;
    /// @}

    /// @{ Branches (committed, correct path).
    FDIP_STATE_MICRO std::uint64_t condBranches = 0;
    FDIP_STATE_MICRO std::uint64_t takenBranches = 0;
    FDIP_STATE_MICRO std::uint64_t indirectBranches = 0;
    FDIP_STATE_MICRO std::uint64_t returns = 0;
    /// @}

    /// @{ Mispredictions = execute-time pipeline flushes, by cause.
    FDIP_STATE_MICRO std::uint64_t mispredicts = 0;
    FDIP_STATE_MICRO std::uint64_t mispredictsCondDir = 0;   ///< Direction wrong.
    FDIP_STATE_MICRO std::uint64_t mispredictsBtbMissTaken = 0; ///< Undetected taken br.
    FDIP_STATE_MICRO std::uint64_t mispredictsTarget = 0;    ///< Indirect/return target.
    FDIP_STATE_MICRO std::uint64_t mispredictsPfcMisfire = 0; ///< PFC re-steered wrongly.
    /// @}

    /// @{ PFC / history fixups.
    FDIP_STATE_MICRO std::uint64_t pfcFires = 0;
    FDIP_STATE_MICRO std::uint64_t pfcCorrect = 0;   ///< Redirect matched the oracle path.
    FDIP_STATE_MICRO std::uint64_t pfcWrong = 0;     ///< Misfire (became a mispredict).
    FDIP_STATE_MICRO std::uint64_t ghrFixups = 0;    ///< GHR2/3 pre-decode history flushes.
    /// @}

    /// @{ Frontend delivery.
    FDIP_STATE_MICRO std::uint64_t starvationCycles = 0; ///< Decode queue < decode width.
    FDIP_STATE_MICRO std::uint64_t deliveredInsts = 0;
    FDIP_STATE_MICRO std::uint64_t wrongPathDelivered = 0;
    /// @}

    /// @{ L1I behaviour.
    FDIP_STATE_MICRO std::uint64_t l1iDemandAccesses = 0;
    FDIP_STATE_MICRO std::uint64_t l1iDemandMisses = 0;
    FDIP_STATE_MICRO std::uint64_t l1iTagAccesses = 0; ///< Demand + prefetch probes.
    FDIP_STATE_MICRO std::uint64_t prefetchesIssued = 0;
    FDIP_STATE_MICRO std::uint64_t prefetchesRedundant = 0; ///< Probe hit: dropped.
    FDIP_STATE_MICRO std::uint64_t prefetchesUseful = 0;    ///< Later hit by demand.
    FDIP_STATE_MICRO std::uint64_t itlbMisses = 0;
    /// @}

    /// @{ Demand-miss exposure classification (paper Fig. 14).
    FDIP_STATE_MICRO std::uint64_t missFullyExposed = 0;   ///< Initiated at FTQ head.
    FDIP_STATE_MICRO std::uint64_t missPartiallyExposed = 0; ///< Starved before fill.
    FDIP_STATE_MICRO std::uint64_t missCovered = 0;        ///< Fill beat any starvation.
    /// @}

    /// @{ BTB.
    FDIP_STATE_MICRO std::uint64_t btbLookups = 0;
    FDIP_STATE_MICRO std::uint64_t btbHits = 0;
    /// @}

    /// @{ Top-down cycle accounting: every post-warmup cycle is
    /// charged to exactly one of these leaf buckets (one-hot, fixed
    /// precedence; see obs/cycle_account.h and docs/OBSERVABILITY.md).
    /// Invariants, FDIP_CHECKed every tick: the six starved-slot
    /// buckets sum to starvationCycles, and all eight sum to cycles.
    FDIP_STATE_MICRO std::uint64_t cyclesBaseCommitted = 0;      ///< Decode fed; no stall.
    FDIP_STATE_MICRO std::uint64_t cyclesBackendBackpressure = 0; ///< ROB full blocked dispatch.
    FDIP_STATE_MICRO std::uint64_t cyclesRecoveryFlushRestart = 0; ///< Post-flush predict restart.
    FDIP_STATE_MICRO std::uint64_t cyclesFetchL1iMiss = 0;       ///< Head waiting on a fill.
    FDIP_STATE_MICRO std::uint64_t cyclesFetchItlbMiss = 0;      ///< Head waiting on the ITLB.
    FDIP_STATE_MICRO std::uint64_t cyclesFetchFtqEmptyBtbMiss = 0; ///< BTB-miss wrong path.
    FDIP_STATE_MICRO std::uint64_t cyclesFetchFtqEmptyRedirect = 0; ///< Redirect refill shadow.
    FDIP_STATE_MICRO std::uint64_t cyclesFetchPipeline = 0;      ///< Residual fetch stall.
    /// @}

    /// @{ Host-side telemetry. Measured on the machine running the
    /// simulator, NOT part of the simulated architectural state: two
    /// runs of the same (config, trace) are the same experiment even
    /// when their wall-clock differs, so these fields are excluded
    /// from architecturallyEqual().
    FDIP_STATE_HOST
    double hostWallSeconds = 0.0; ///< Wall-clock time of Core::run().

    /** Simulated (committed) instructions per host wall-clock second. */
    [[nodiscard]] double
    hostInstrsPerSecond() const
    {
        return hostWallSeconds <= 0.0
                   ? 0.0
                   : static_cast<double>(committedInsts) / hostWallSeconds;
    }
    /// @}

    /** Every architectural counter, as one comparable/hashable tuple.
     *  Keep in sync when adding counters; host telemetry stays out. */
    [[nodiscard]] auto
    architecturalState() const
    {
        return std::tie(cycles, committedInsts, condBranches, takenBranches,
                        indirectBranches, returns, mispredicts,
                        mispredictsCondDir, mispredictsBtbMissTaken,
                        mispredictsTarget, mispredictsPfcMisfire, pfcFires,
                        pfcCorrect, pfcWrong, ghrFixups, starvationCycles,
                        deliveredInsts, wrongPathDelivered, l1iDemandAccesses,
                        l1iDemandMisses, l1iTagAccesses, prefetchesIssued,
                        prefetchesRedundant, prefetchesUseful, itlbMisses,
                        missFullyExposed, missPartiallyExposed, missCovered,
                        btbLookups, btbHits, cyclesBaseCommitted,
                        cyclesBackendBackpressure, cyclesRecoveryFlushRestart,
                        cyclesFetchL1iMiss, cyclesFetchItlbMiss,
                        cyclesFetchFtqEmptyBtbMiss, cyclesFetchFtqEmptyRedirect,
                        cyclesFetchPipeline);
    }

    /**
     * True when every architectural counter matches @p o bit for bit.
     * This is the determinism contract the parallel experiment engine
     * is tested against: serial and parallel execution must agree here
     * exactly, not approximately.
     */
    [[nodiscard]] bool
    architecturallyEqual(const SimStats &o) const
    {
        return architecturalState() == o.architecturalState();
    }

    /// @{ Derived metrics.
    [[nodiscard]] double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(committedInsts) /
                                 static_cast<double>(cycles);
    }

    /** Branch mispredictions per kilo-instruction. */
    [[nodiscard]] double
    branchMpki() const
    {
        return committedInsts == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(mispredicts) /
                         static_cast<double>(committedInsts);
    }

    /** Starvation cycles per kilo-instruction. */
    [[nodiscard]] double
    starvationPerKi() const
    {
        return committedInsts == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(starvationCycles) /
                         static_cast<double>(committedInsts);
    }

    /** L1I tag accesses per kilo-instruction. */
    [[nodiscard]] double
    tagAccessesPerKi() const
    {
        return committedInsts == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(l1iTagAccesses) /
                         static_cast<double>(committedInsts);
    }

    /** L1I demand misses per kilo-instruction. */
    [[nodiscard]] double
    l1iMpki() const
    {
        return committedInsts == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(l1iDemandMisses) /
                         static_cast<double>(committedInsts);
    }

    /** Fraction of issued prefetches later hit by a demand access. */
    [[nodiscard]] double
    prefetchAccuracy() const
    {
        return prefetchesIssued == 0
                   ? 0.0
                   : static_cast<double>(prefetchesUseful) /
                         static_cast<double>(prefetchesIssued);
    }

    /** Fraction of would-be demand misses the prefetcher covered:
     *  useful / (useful + remaining demand misses). */
    [[nodiscard]] double
    prefetchCoverage() const
    {
        const std::uint64_t base = prefetchesUseful + l1iDemandMisses;
        return base == 0 ? 0.0
                         : static_cast<double>(prefetchesUseful) /
                               static_cast<double>(base);
    }

    /** Fraction of issued prefetches dropped as already resident or
     *  in flight. */
    [[nodiscard]] double
    prefetchRedundantRate() const
    {
        return prefetchesIssued == 0
                   ? 0.0
                   : static_cast<double>(prefetchesRedundant) /
                         static_cast<double>(prefetchesIssued);
    }
    /// @}

    /// @{ Cycle-accounting sums (the conservation laws the per-tick
    /// FDIP_CHECK in Core::run and checkSimStats() both enforce).

    /** Sum of the six starved-slot buckets; must equal
     *  starvationCycles. */
    [[nodiscard]] FDIP_HOT_PATH std::uint64_t
    stallCycleSum() const
    {
        return cyclesRecoveryFlushRestart + cyclesFetchL1iMiss +
               cyclesFetchItlbMiss + cyclesFetchFtqEmptyBtbMiss +
               cyclesFetchFtqEmptyRedirect + cyclesFetchPipeline;
    }

    /** Sum of all eight leaf buckets; must equal cycles. */
    [[nodiscard]] FDIP_HOT_PATH std::uint64_t
    cycleBucketSum() const
    {
        return cyclesBaseCommitted + cyclesBackendBackpressure +
               stallCycleSum();
    }
    /// @}
};

static_assert(
    std::tuple_size_v<decltype(std::declval<const SimStats &>()
                                   .architecturalState())> ==
        SimStats::kArchitecturalCounters,
    "architecturalState() and kArchitecturalCounters disagree: a counter "
    "was added to one but not the other");

static_assert(sizeof(SimStats) == SimStats::kArchitecturalCounters *
                                          sizeof(std::uint64_t) +
                                      sizeof(double),
              "SimStats layout changed: update kArchitecturalCounters, "
              "architecturalState(), and this assertion together");

} // namespace fdip

#endif // FDIP_CORE_SIM_STATS_H_
