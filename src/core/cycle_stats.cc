#include "core/cycle_stats.h"

#include <string>

namespace fdip
{

void
registerCycleStats(StatRegistry &reg, const SimStats &s)
{
    for (std::size_t i = 0; i < kCycleBucketCount; ++i) {
        const auto field = kCycleBucketField[i];
        reg.addCounter(std::string("core.cycles.") + kCycleBucketName[i],
                       [&s, field] { return s.*field; });
    }
    // One derived fraction per bucket: share of all post-warmup
    // cycles. Analysis scripts get the stacked breakdown without
    // re-deriving the denominator (and the eight fractions sum to 1
    // by the per-tick conservation law).
    for (std::size_t i = 0; i < kCycleBucketCount; ++i) {
        const auto field = kCycleBucketField[i];
        reg.addDerived(std::string("core.cycles.") + kCycleBucketName[i] +
                           ".frac",
                       [&s, field] {
                           return s.cycles == 0
                                      ? 0.0
                                      : static_cast<double>(s.*field) /
                                            static_cast<double>(s.cycles);
                       });
    }
}

} // namespace fdip
