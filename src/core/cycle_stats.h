/**
 * @file
 * SimStats binding for the top-down cycle-accounting taxonomy.
 *
 * The taxonomy itself (bucket enum, charge precedence, classifier,
 * leaf names) lives in obs/cycle_account.h and is deliberately free
 * of core types, so the obs module never includes upward into core.
 * This header owns the other half: which SimStats counter each bucket
 * charges, the hot-path increment, and the StatRegistry registration
 * of the `core.cycles.*` counters and fractions.
 */

#ifndef FDIP_CORE_CYCLE_STATS_H_
#define FDIP_CORE_CYCLE_STATS_H_

#include <cstddef>
#include <cstdint>

#include "core/sim_stats.h"
#include "obs/cycle_account.h"
#include "obs/stat_registry.h"
#include "util/hotpath.h"

namespace fdip
{

/** Bucket -> SimStats field, in CycleBucket order. */
inline constexpr std::uint64_t SimStats::*
    kCycleBucketField[kCycleBucketCount] = {
        &SimStats::cyclesBaseCommitted,
        &SimStats::cyclesBackendBackpressure,
        &SimStats::cyclesRecoveryFlushRestart,
        &SimStats::cyclesFetchL1iMiss,
        &SimStats::cyclesFetchItlbMiss,
        &SimStats::cyclesFetchFtqEmptyBtbMiss,
        &SimStats::cyclesFetchFtqEmptyRedirect,
        &SimStats::cyclesFetchPipeline,
};

/** Charges one cycle to @p bucket. Hot path: one indexed increment. */
FDIP_HOT_PATH inline void
chargeCycle(SimStats &s, CycleBucket bucket) noexcept
{
    ++(s.*kCycleBucketField[static_cast<std::size_t>(bucket)]);
}

/** Value of @p bucket's counter in @p s. */
[[nodiscard]] inline std::uint64_t
cycleBucket(const SimStats &s, CycleBucket bucket) noexcept
{
    return s.*kCycleBucketField[static_cast<std::size_t>(bucket)];
}

/** Registers all eight bucket counters plus the derived starved-slot
 *  attribution fractions under `core.cycles.*`. */
void registerCycleStats(StatRegistry &reg, const SimStats &s);

} // namespace fdip

#endif // FDIP_CORE_CYCLE_STATS_H_
