/**
 * @file
 * The decoupled frontend: branch-prediction pipeline, FTQ, instruction
 * fetch pipeline with PFC, prefetch-queue drain, and all redirect /
 * repair machinery (paper Sections III and IV).
 *
 * Oracle convention: the frontend follows the committed trace. While
 * the predicted stream matches the trace ("on the correct path"),
 * predictions are checked against the trace at prediction time;
 * training happens there too (ChampSim-style immediate update). On a
 * divergence, the frontend keeps running down the *predicted* wrong
 * path — polluting the I-cache and FTQ realistically — until the
 * diverging instruction executes (backend callback) or PFC repairs the
 * stream early at pre-decode.
 */

#ifndef FDIP_CORE_FRONTEND_H_
#define FDIP_CORE_FRONTEND_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "bpu/bpu.h"
#include "cache/cache.h"
#include "cache/hierarchy.h"
#include "core/backend.h"
#include "core/core_config.h"
#include "core/ftq.h"
#include "core/sim_stats.h"
#include "obs/cycle_account.h"
#include "obs/stat_registry.h"
#include "obs/tick_profiler.h"
#include "obs/trace_events.h"
#include "prefetch/prefetcher.h"
#include "trace/trace_gen.h"
#include "util/fixed_vector.h"
#include "util/flat_map.h"
#include "util/hotpath.h"
#include "util/state.h"
#include "util/types.h"

namespace fdip
{

/**
 * The frontend pipeline complex.
 */
class Frontend
{
  public:
    Frontend(const CoreConfig &cfg, const Trace &trace, Bpu &bpu,
             Backend &backend, MemoryHierarchy &mem,
             InstPrefetcher &prefetcher, SimStats &stats);

    /** Advances the frontend one cycle (fills, fetch, predict). */
    void tick(Cycle now) FDIP_HOT_NOEXCEPT;

    /** Backend callback: a divergence-carrying instruction executed. */
    void onResolve(std::uint64_t token, std::uint64_t seq, Cycle now);

    /** Next trace index the correct path will predict. */
    InstSeq tracePos() const { return tracePos_; }

    const Ftq &ftq() const { return ftq_; }
    Cache &l1i() { return l1i_; }

    /** Lines tracked for prefetch-usefulness accounting. Stays bounded
     *  by the L1I/prefetch-buffer capacity (regression guard: entries
     *  are dropped on eviction). */
    std::size_t prefetchTrackingEntries() const
    {
        return linePrefetched_.size();
    }

    /** Attaches (or detaches, nullptr) the run's trace sink. */
    void attachTrace(TraceWriter *w) { tracer_.attach(w); }

    /** Attaches (or detaches, nullptr) the host tick-phase profiler;
     *  tick() then brackets its predict/I-cache/prefetch sub-phases. */
    void attachProfiler(TickProfiler *p) { profiler_ = p; }

    /** The fetch-side cycle-accounting signals as of the end of this
     *  tick (Core::run adds the backend's view and classifies). Pure
     *  read of frontend state — observation never mutates the model. */
    CycleSignals cycleSignals(Cycle now) const FDIP_HOT_NOEXCEPT;

    /** Registers the frontend's stats tree under @p prefix: the FTQ
     *  (plus its occupancy histogram), L1I, ITLB, optional prefetch
     *  buffer, and the demand-fill latency histogram. */
    void registerStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    /** Outcome of scanning one instruction in the predict stage. */
    struct ScanResult
    {
        bool predTaken = false;
        Addr target = kNoAddr;
    };

    /// @{ Cycle phases.
    void processFills(Cycle now);
    void fetchCycle(Cycle now);
    void predictCycle(Cycle now);
    void drainPrefetchQueue(Cycle now);
    /// @}

    /// @{ Prediction helpers.
    ScanResult scanInst(FtqEntry &entry, std::uint8_t offset, Cycle now);
    /** Records a prediction-time divergence at trace position
     *  tracePos_; computes the post-correction repair snapshots. */
    void recordDivergence(FtqEntry &entry, std::uint8_t offset, Addr pc,
                          const StaticInst &si, bool detected,
                          std::uint8_t cause,
                          const RasSnapshot &pre_ras_snap);
    /// @}

    /// @{ Fetch helpers.
    void probeEntry(FtqEntry &entry, std::size_t pos, Cycle now);
    void deliverFromHead(Cycle now);
    /** PFC / GHR-fixup scan; true if a redirect was triggered. */
    bool predecodeEntry(FtqEntry &entry, Cycle now);
    void triggerPfc(FtqEntry &entry, std::uint8_t offset,
                    const StaticInst &si, Cycle now);
    void triggerGhrFixup(FtqEntry &entry, std::uint8_t offset, Cycle now);
    /// @}

    /// @{ Repair machinery.
    /** Restores speculative history + RAS to just before the
     *  instruction at @p offset of @p entry (snapshot + replay). */
    void rewindToPrefix(const FtqEntry &entry, std::uint8_t offset);
    /** Replays one recorded block event onto the speculative state. */
    void replayEvent(const BlockEvent &ev);
    /** Pushes one (possibly corrected) branch event onto the
     *  speculative history per the active policy. */
    void pushHistoryEvent(Addr pc, Addr target, bool taken);
    /// @}

    /**
     * An execute-time divergence resolution record. Repair state is
     * rebuilt lazily at resolution: restore the owning block's
     * snapshots, replay the recorded event prefix, then apply the
     * corrected event. (Eager snapshots would go stale: the wrong path
     * overwrites ring bits behind them.)
     */
    struct PendingDivergence
    {
        std::uint64_t token = 0;
        InstSeq traceIdx = 0;
        Addr correctNext = kNoAddr;
        std::uint8_t cause = 0;
        HistorySnapshot blockHistSnap;
        RasSnapshot blockRasSnap;
        std::array<BlockEvent, kInstsPerBlock> prefix{};
        std::uint8_t numPrefix = 0;
        BlockEvent corrected; ///< The diverging branch's actual outcome.
        bool delivered = false; ///< Instruction handed to the backend.
    };

    /** Mispredict cause buckets. */
    static constexpr std::uint8_t kCauseCondDir = 0;
    static constexpr std::uint8_t kCauseBtbMissTaken = 1;
    static constexpr std::uint8_t kCauseTarget = 2;
    static constexpr std::uint8_t kCausePfcMisfire = 3;

    /** An in-flight L1I fill. */
    struct InflightFill
    {
        Addr line = kNoAddr;
        Cycle ready = 0;
        Cycle issued = 0; ///< Issue cycle (latency histogram / tracing).
        bool isPrefetch = false;
        bool demandTouched = false; ///< A demand probe needs this line.
        bool wasHeadStart = false;  ///< Demand touch happened at FTQ head.
        /** A starved cycle was observed while this fill blocked the
         *  FTQ head (the paper's exposure criterion). */
        bool starvedWhileBlocking = false;
    };

    /// @{ Wiring.
    FDIP_STATE_MICRO const CoreConfig &cfg_;
    FDIP_STATE_MICRO const Trace &trace_;
    FDIP_STATE_MICRO const ProgramImage &image_;
    FDIP_STATE_MICRO Bpu &bpu_;
    FDIP_STATE_MICRO Backend &backend_;
    FDIP_STATE_MICRO MemoryHierarchy &mem_;
    FDIP_STATE_MICRO InstPrefetcher &prefetcher_;
    FDIP_STATE_MICRO SimStats &stats_;
    /// @}

    /// @{ Structures.
    FDIP_STATE_ARCH(sub) Ftq ftq_;
    FDIP_STATE_ARCH(sub) Cache l1i_;
    FDIP_STATE_ARCH(sub) Cache itlb_;
    FDIP_STATE_ARCH(sub)
    std::unique_ptr<Cache> prefetchBuffer_; ///< Optional (original FDP).
    /** In-flight fills; capacity = the modeled MSHR count. */
    FDIP_STATE_MICRO FixedVector<InflightFill> fills_;
    /// @}

    /// @{ Observability. Histograms are sampled unconditionally (they
    /// are cheap and read-only); trace events go through tracer_ and
    /// cost one branch when no writer is attached.
    FDIP_STATE_MICRO Tracer tracer_;
    FDIP_STATE_MICRO StatHistogram ftqOccupancy_; ///< Per-tick occupancy.
    FDIP_STATE_MICRO StatHistogram fillLatency_;  ///< Fill latencies.
    FDIP_STATE_MICRO std::size_t lastTracedOccupancy_ =
        static_cast<std::size_t>(-1);
    FDIP_STATE_HOST TickProfiler *profiler_ = nullptr; ///< Core's sink.
    /// @}

    /// @{ Prediction stream state.
    FDIP_STATE_MICRO Addr predPc_;
    FDIP_STATE_MICRO InstSeq tracePos_ = 0;
    FDIP_STATE_MICRO InstSeq trainedUpTo_ = 0; ///< Train-once guard.
    FDIP_STATE_MICRO bool onCorrectPath_ = true;
    FDIP_STATE_MICRO std::uint64_t blockSeq_ = 0;
    FDIP_STATE_MICRO std::uint64_t instSeq_ = 0;
    FDIP_STATE_MICRO std::optional<PendingDivergence> pending_;
    FDIP_STATE_MICRO std::uint64_t nextToken_ = 1;
    FDIP_STATE_MICRO Cycle predStallUntil_ = 0; ///< Redirect bubble.
    FDIP_STATE_MICRO unsigned l2BtbBubble_ = 0; ///< L2-BTB re-steer bubble.
    /// @}

    /// @{ Cycle-accounting signal state (observation-only: consumed by
    /// cycleSignals(), never read back by the model).
    FDIP_STATE_MICRO Cycle itlbStallUntil_ = 0; ///< Head ITLB refill wait.
    FDIP_STATE_MICRO Cycle redirectShadowUntil_ = 0; ///< Post-redirect window.
    /// @}

    /** Whether the last fill of a line was a prefetch (usefulness).
     *  Entries are erased when the line leaves the L1I so the map stays
     *  bounded by the cache's line count; the ctor preallocates for
     *  that bound so steady-state puts never allocate. */
    FDIP_STATE_MICRO FlatMap<Addr, bool> linePrefetched_;

    /** Drops usefulness tracking for an evicted line (kNoAddr ok). */
    void forgetEvicted(Addr evicted_line);

    /** Structural invariants verified at the end of every tick();
     *  compiled out when invariant checks are disabled. */
    void checkTickInvariants(Cycle now);

    FDIP_STATE_MICRO Cycle lastTickPlus1_ = 0; ///< Monotone-tick watermark.
};

} // namespace fdip

#endif // FDIP_CORE_FRONTEND_H_
