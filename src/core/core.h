/**
 * @file
 * The top-level simulated core: BPU + decoupled frontend + memory
 * hierarchy + backend, driven over one trace.
 */

#ifndef FDIP_CORE_CORE_H_
#define FDIP_CORE_CORE_H_

#include <memory>
#include <vector>

#include "bpu/bpu.h"
#include "cache/hierarchy.h"
#include "core/backend.h"
#include "core/core_config.h"
#include "core/frontend.h"
#include "core/sim_stats.h"
#include "core/cycle_stats.h"
#include "obs/heartbeat.h"
#include "obs/stat_registry.h"
#include "obs/tick_profiler.h"
#include "obs/trace_events.h"
#include "prefetch/prefetcher.h"
#include "trace/trace_gen.h"
#include "util/state.h"

namespace fdip
{

/**
 * Registers the "core.*" slice of @p s: every raw SimStats counter,
 * the core.cycles.* accounting buckets, and the derived metrics. This
 * is the SimStats-only subtree of Core::registerStats, exposed as a
 * free function so reports can synthesize a stat dump from bare
 * SimStats (campaign-spool cache hits carry counters but no registry
 * snapshot). @p s must outlive any snapshot of @p reg.
 */
void registerCoreSimStats(StatRegistry &reg, const SimStats &s);

/**
 * One simulated core instance, bound to a trace.
 */
class Core
{
  public:
    /**
     * @param cfg        core configuration (copied).
     * @param trace      the committed-path trace to run (borrowed; must
     *                   outlive the core).
     * @param prefetcher the L1I prefetcher (owned).
     */
    Core(const CoreConfig &cfg, const Trace &trace,
         std::unique_ptr<InstPrefetcher> prefetcher);

    /**
     * Runs until every trace instruction has committed; the first
     * @p warmup_insts commits do not count toward the statistics.
     * Returns the post-warmup statistics.
     */
    SimStats run(std::uint64_t warmup_insts = 0);

    /** Statistics (valid during/after run()). */
    const SimStats &stats() const { return stats_; }

    const CoreConfig &config() const { return cfg_; }
    Bpu &bpu() { return bpu_; }
    Frontend &frontend() { return frontend_; }
    MemoryHierarchy &memory() { return mem_; }

    /**
     * Heartbeat time series recorded by run() when
     * cfg.obs.heartbeatInterval is non-zero: one sample each time the
     * post-warmup committed-instruction count crosses a multiple of the
     * interval (at most one per cycle — the commit width can step past
     * several multiples at once).
     */
    const std::vector<HeartbeatSample> &heartbeats() const
    {
        return heartbeats_;
    }

    /** Attaches (or detaches, nullptr) a Chrome-trace sink; events are
     *  emitted by the frontend while run() executes. */
    void attachTrace(TraceWriter *w) { frontend_.attachTrace(w); }

    /** Host tick-phase profile accumulated by run() when
     *  cfg.obs.profileInterval is non-zero (host telemetry only; see
     *  obs/tick_profiler.h). */
    const TickProfile &hostProfile() const { return profiler_.profile(); }

    /** Registers the whole core's stats tree: "core.*" (the SimStats
     *  counters and derived metrics), "frontend.*", "bpu.*", "mem.*",
     *  and "pf.<prefetcher>.*". */
    void registerStats(StatRegistry &reg) const;

  private:
    FDIP_STATE_MICRO CoreConfig cfg_;
    FDIP_STATE_MICRO const Trace &trace_;
    FDIP_STATE_MICRO SimStats stats_;
    FDIP_STATE_ARCH(sub) Bpu bpu_;
    FDIP_STATE_ARCH(sub) MemoryHierarchy mem_;
    FDIP_STATE_ARCH(sub) std::unique_ptr<InstPrefetcher> prefetcher_;
    FDIP_STATE_ARCH(sub) Backend backend_;
    FDIP_STATE_ARCH(sub) Frontend frontend_;
    FDIP_STATE_MICRO std::vector<HeartbeatSample> heartbeats_;
    FDIP_STATE_HOST TickProfiler profiler_; ///< Never touches stats_.
};

} // namespace fdip

#endif // FDIP_CORE_CORE_H_
