/**
 * @file
 * The top-level simulated core: BPU + decoupled frontend + memory
 * hierarchy + backend, driven over one trace.
 */

#ifndef FDIP_CORE_CORE_H_
#define FDIP_CORE_CORE_H_

#include <memory>

#include "bpu/bpu.h"
#include "cache/hierarchy.h"
#include "core/backend.h"
#include "core/core_config.h"
#include "core/frontend.h"
#include "core/sim_stats.h"
#include "prefetch/prefetcher.h"
#include "trace/trace_gen.h"

namespace fdip
{

/**
 * One simulated core instance, bound to a trace.
 */
class Core
{
  public:
    /**
     * @param cfg        core configuration (copied).
     * @param trace      the committed-path trace to run (borrowed; must
     *                   outlive the core).
     * @param prefetcher the L1I prefetcher (owned).
     */
    Core(const CoreConfig &cfg, const Trace &trace,
         std::unique_ptr<InstPrefetcher> prefetcher);

    /**
     * Runs until every trace instruction has committed; the first
     * @p warmup_insts commits do not count toward the statistics.
     * Returns the post-warmup statistics.
     */
    SimStats run(std::uint64_t warmup_insts = 0);

    /** Statistics (valid during/after run()). */
    const SimStats &stats() const { return stats_; }

    const CoreConfig &config() const { return cfg_; }
    Bpu &bpu() { return bpu_; }
    Frontend &frontend() { return frontend_; }
    MemoryHierarchy &memory() { return mem_; }

  private:
    CoreConfig cfg_;
    const Trace &trace_;
    SimStats stats_;
    Bpu bpu_;
    MemoryHierarchy mem_;
    std::unique_ptr<InstPrefetcher> prefetcher_;
    Backend backend_;
    Frontend frontend_;
};

} // namespace fdip

#endif // FDIP_CORE_CORE_H_
