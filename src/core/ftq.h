/**
 * @file
 * The Fetch Target Queue.
 *
 * Each entry covers one 32-byte-aligned instruction block and carries
 * exactly the architectural fields of the paper's Table III (65 bits,
 * 195 bytes for 24 entries). The entry additionally carries
 * simulator-side bookkeeping (snapshots for repair, oracle trace
 * positions, fill-tracking) that models no extra hardware.
 */

#ifndef FDIP_CORE_FTQ_H_
#define FDIP_CORE_FTQ_H_

#include <array>
#include <cstdint>
#include <string>

#include "bpu/history.h"
#include "bpu/ras.h"
#include "util/invariant.h"
#include "check/schema.h"
#include "obs/stat_registry.h"
#include "trace/inst.h"
#include "util/circular_queue.h"
#include "util/hotpath.h"
#include "util/state.h"
#include "util/types.h"

namespace fdip
{

/** FTQ entry state machine (paper Section IV-A). */
enum class FtqState : std::uint8_t
{
    kInvalid = 0,
    kPredicted = 1,  ///< Prediction done; ready for address translation.
    kFilling = 2,    ///< Translated; waiting for the I-cache fill.
    kReady = 3,      ///< Line resident; ready to feed the decode queue.
};

/**
 * One branch-history/RAS event recorded while predicting a block, kept
 * so redirects (mispredict resolution, PFC, GHR fixups) can replay the
 * block prefix exactly.
 */
struct BlockEvent
{
    Addr pc = kNoAddr;
    Addr target = kNoAddr;
    std::uint8_t offset = 0;  ///< Instruction offset within the block.
    InstClass kind = InstClass::kAlu;
    bool taken = false;
    bool pushedHistory = false; ///< Whether it pushed a history event.
};

/**
 * An FTQ entry: one 32B-aligned instruction block.
 */
struct FtqEntry
{
    /// @{ Architectural fields (Table III; 65 bits total).
    Addr startAddr = kNoAddr;     ///< 48-bit instruction start address.
    bool predictedTaken = false;  ///< Block ends in a predicted-taken br.
    std::uint8_t termOffset = 7;  ///< Offset of the last instruction.
    std::uint8_t icacheWay = 0;   ///< Way to fetch without a tag re-probe.
    FtqState state = FtqState::kInvalid; ///< 2-bit state.
    std::uint8_t dirHints = 0;    ///< 1 direction-hint bit per inst.
    /// @}

    /// @{ Prediction-time context for repair (models checkpointing).
    HistorySnapshot histSnap;     ///< History before this block.
    RasSnapshot rasSnap;          ///< RAS recovery state before block.
    std::array<BlockEvent, kInstsPerBlock> events{};
    std::uint8_t numEvents = 0;
    std::uint8_t detectedMask = 0; ///< BTB-hit bitmap (for GHR fixup).
    /// @}

    /// @{ Simulator bookkeeping.
    std::uint64_t seq = 0;        ///< Monotonic block sequence number.
    InstSeq traceIdx = 0;         ///< Trace index of first inst (correct path).
    bool onCorrectPath = false;
    Cycle readyAt = 0;            ///< When prediction-pipeline latency elapses.
    Addr lineAddr = kNoAddr;      ///< I-cache line covering the block.
    Cycle deliverableAt = 0;      ///< Data-array/pipe latency gate.
    std::uint8_t nextDeliverOffset = 0; ///< Next inst offset to deliver.
    bool predecoded = false;      ///< PFC/fixup scan done for this entry.
    /** Offset of the instruction where the predicted stream diverged
     *  from the trace (255 = none); later offsets are wrong-path. */
    std::uint8_t divergeOffset = 255;
    /// @}

    /** Offset of @p pc within this 32B block. */
    FDIP_HOT_PATH static std::uint8_t
    offsetOf(Addr pc)
    {
        return static_cast<std::uint8_t>((pc % kFetchBlockBytes) /
                                         kInstBytes);
    }

    /** 32B block base address. */
    FDIP_HOT_PATH Addr
    blockBase() const
    {
        return startAddr & ~static_cast<Addr>(kFetchBlockBytes - 1);
    }

    /** First instruction offset within the block. */
    FDIP_HOT_PATH std::uint8_t startOffset() const { return offsetOf(startAddr); }

    /** PC of the instruction at block @p offset. */
    FDIP_HOT_PATH Addr
    pcAt(std::uint8_t offset) const
    {
        return blockBase() + static_cast<Addr>(offset) * kInstBytes;
    }

    /** Direction hint of the instruction at @p offset. */
    FDIP_HOT_PATH bool
    hintAt(std::uint8_t offset) const
    {
        return ((dirHints >> offset) & 1) != 0;
    }

    /** Number of instructions this entry will deliver. */
    unsigned
    numInsts() const
    {
        return termOffset - startOffset() + 1;
    }

    /** Architectural storage of one entry in bits (Table III). */
    static constexpr unsigned kArchBitsPerEntry =
        48 + 1 + 3 + 3 + 2 + 8;
};

/**
 * The FTQ proper: a bounded FIFO of FtqEntry.
 */
class Ftq
{
  public:
    explicit Ftq(unsigned entries) : q_(entries) {}

    FDIP_HOT_PATH bool full() const { return q_.full(); }
    FDIP_HOT_PATH bool empty() const { return q_.empty(); }
    FDIP_HOT_PATH std::size_t size() const { return q_.size(); }
    FDIP_HOT_PATH std::size_t capacity() const { return q_.capacity(); }

    FDIP_HOT_PATH void
    push(FtqEntry &&e) FDIP_HOT_NOEXCEPT
    {
        FDIP_CHECK(!q_.full(),
                   "FTQ overflow: occupancy %zu at capacity %zu", q_.size(),
                   q_.capacity());
        q_.pushBack(std::move(e));
    }
    FDIP_HOT_PATH void popHead() FDIP_HOT_NOEXCEPT { q_.popFront(); }
    FDIP_HOT_PATH FtqEntry &at(std::size_t i) FDIP_HOT_NOEXCEPT
    {
        return q_.at(i);
    }
    FDIP_HOT_PATH const FtqEntry &at(std::size_t i) const
        FDIP_HOT_NOEXCEPT
    {
        return q_.at(i);
    }
    FDIP_HOT_PATH FtqEntry &head() FDIP_HOT_NOEXCEPT
    {
        return q_.front();
    }

    /** Discards every entry younger than position @p keep_count - 1. */
    FDIP_HOT_PATH void
    truncateAfter(std::size_t keep_count) FDIP_HOT_NOEXCEPT
    {
        q_.resizeTo(keep_count);
    }

    FDIP_HOT_PATH void clear() { q_.clear(); }

    /** Total architectural storage in bytes (Table III: 195B for 24). */
    std::uint64_t
    archStorageBytes() const
    {
        return (q_.capacity() * FtqEntry::kArchBitsPerEntry + 7) / 8;
    }

    /** Architectural storage in bits (budget-accounting interface). */
    std::uint64_t
    storageBits() const
    {
        return q_.capacity() * FtqEntry::kArchBitsPerEntry;
    }

    /** Exact per-field declaration of the Table III entry fields. */
    StorageSchema
    storageSchema() const
    {
        const std::uint64_t n = q_.capacity();
        StorageSchema s("FTQ");
        s.add("start_addr", kSchemaAddrBits, n)
            .add("predicted_taken", 1, n)
            .add("term_offset", 3, n)
            .add("icache_way", 3, n)
            .add("state", 2, n)
            .add("dir_hints", 8, n);
        return s;
    }

    /** Registers FTQ stats under @p prefix ("frontend.ftq.capacity");
     *  the occupancy *histogram* is sampled and registered by the
     *  owning Frontend. */
    void
    registerStats(StatRegistry &reg, const std::string &prefix) const
    {
        reg.addCounter(prefix + ".capacity",
                       [this] { return std::uint64_t{q_.capacity()}; },
                       "configured FTQ entries");
        reg.addCounter(prefix + ".size",
                       [this] { return std::uint64_t{q_.size()}; },
                       "current occupancy");
        reg.addCounter(prefix + ".storage_bits",
                       [this] { return storageBits(); },
                       "architectural storage (Table III)");
    }

  private:
    FDIP_STATE_ARCH(start_addr, predicted_taken, term_offset, icache_way,
                    state, dir_hints)
    CircularQueue<FtqEntry> q_;
};

} // namespace fdip

#endif // FDIP_CORE_FTQ_H_
