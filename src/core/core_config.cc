#include "core/core_config.h"
#include "util/hotpath.h"

namespace fdip
{

const char *
historySchemeName(HistoryScheme s)
{
    switch (s) {
      case HistoryScheme::kThr: return "THR";
      case HistoryScheme::kGhr0: return "GHR0";
      case HistoryScheme::kGhr1: return "GHR1";
      case HistoryScheme::kGhr2: return "GHR2";
      case HistoryScheme::kGhr3: return "GHR3";
      case HistoryScheme::kIdeal: return "Ideal";
    }
    return "?";
}

void
CoreConfig::applyHistoryScheme()
{
    switch (historyScheme) {
      case HistoryScheme::kThr:
        bpu.historyPolicy = HistoryPolicy::kTargetHistory;
        bpu.btb.allocateTakenOnly = true;
        break;
      case HistoryScheme::kGhr0:
        bpu.historyPolicy = HistoryPolicy::kDirectionHistory;
        bpu.btb.allocateTakenOnly = true;
        break;
      case HistoryScheme::kGhr1:
        bpu.historyPolicy = HistoryPolicy::kDirectionHistory;
        bpu.btb.allocateTakenOnly = false;
        break;
      case HistoryScheme::kGhr2:
        bpu.historyPolicy = HistoryPolicy::kDirectionHistory;
        bpu.btb.allocateTakenOnly = true;
        break;
      case HistoryScheme::kGhr3:
        bpu.historyPolicy = HistoryPolicy::kDirectionHistory;
        bpu.btb.allocateTakenOnly = false;
        break;
      case HistoryScheme::kIdeal:
        bpu.historyPolicy = HistoryPolicy::kIdealDirectionHistory;
        bpu.btb.allocateTakenOnly = true;
        break;
    }
}

FDIP_HOT_PATH bool
CoreConfig::ghrFixup() const
{
    return historyScheme == HistoryScheme::kGhr2 ||
           historyScheme == HistoryScheme::kGhr3;
}

CoreConfig
paperBaselineConfig()
{
    CoreConfig cfg;
    cfg.applyHistoryScheme();
    return cfg;
}

CoreConfig
noFdpConfig()
{
    CoreConfig cfg = paperBaselineConfig();
    cfg.ftqEntries = 2; // 16-instruction FTQ: no run-ahead capability.
    return cfg;
}

CoreConfig
twoLevelBtbConfig()
{
    CoreConfig cfg = paperBaselineConfig();
    cfg.bpu.btbHierarchy.enabled = true;
    return cfg;
}

CacheConfig
itlbCacheConfig(unsigned entries)
{
    CacheConfig cfg;
    cfg.name = "ITLB";
    cfg.lineBytes = 4096;
    cfg.ways = entries;
    cfg.sizeBytes = static_cast<std::uint64_t>(entries) * 4096;
    return cfg;
}

CacheConfig
prefetchBufferConfig(unsigned lines)
{
    CacheConfig cfg;
    cfg.name = "PFB";
    cfg.lineBytes = kCacheLineBytes;
    cfg.ways = lines; // Fully associative.
    cfg.sizeBytes = std::uint64_t{lines} * kCacheLineBytes;
    return cfg;
}

} // namespace fdip
