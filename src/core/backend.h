/**
 * @file
 * The backend interval model: decode queue -> in-order dispatch into a
 * ROB -> out-of-order-completion / in-order commit. Deliberately
 * simple — the paper's study is frontend-bound, and this model exposes
 * exactly the sensitivity that matters: how fast the frontend can feed
 * the decode queue, and how long branch resolution takes.
 */

#ifndef FDIP_CORE_BACKEND_H_
#define FDIP_CORE_BACKEND_H_

#include <cstdint>
#include <functional>

#include "cache/hierarchy.h"
#include "check/schema.h"
#include "core/core_config.h"
#include "core/sim_stats.h"
#include "trace/inst.h"
#include "util/circular_queue.h"
#include "util/fixed_vector.h"
#include "util/hotpath.h"
#include "util/state.h"
#include "util/types.h"

namespace fdip
{

/**
 * Architectural bits of one decode-queue entry: the fetched PC, the
 * instruction word awaiting decode, and the direction-hint bit the
 * frontend attaches (Section IV-A). The rest of DeliveredInst is
 * simulator bookkeeping (trace indices, delivery cycles) modeling no
 * hardware.
 */
inline constexpr unsigned kDecodeQueueEntryBits =
    kSchemaAddrBits + kInstBytes * 8 + 1;

/**
 * Exact modeled decode-queue storage. Single source of truth for the
 * budget line and the compile-time pin in check/budget.h.
 */
constexpr std::uint64_t
decodeQueueStorageBits(unsigned entries)
{
    return std::uint64_t{entries} * kDecodeQueueEntryBits;
}

/** Exact per-field decode-queue storage declaration. */
inline StorageSchema
decodeQueueStorageSchema(unsigned entries)
{
    StorageSchema s("decode queue");
    s.add("pc", kSchemaAddrBits, entries)
        .add("inst", kInstBytes * 8, entries)
        .add("dir_hint", 1, entries);
    return s;
}

/** One instruction delivered by the frontend to the decode queue. */
struct DeliveredInst
{
    std::uint64_t seq = 0;      ///< Global delivery sequence number.
    InstSeq traceIdx = 0;       ///< Valid only when onCorrectPath.
    bool onCorrectPath = false;
    bool taken = false;         ///< Actual direction (correct path).
    InstClass cls = InstClass::kAlu;
    Addr memAddr = kNoAddr;     ///< Loads/stores on the correct path.
    Cycle deliverCycle = 0;
    std::uint64_t resolveToken = 0; ///< Non-zero: resolves a divergence.
};

/**
 * The backend pipeline model.
 */
class Backend
{
  public:
    /** Called when a divergence-carrying instruction executes:
     *  (token, seq, cycle). */
    using ResolveCallback =
        std::function<void(std::uint64_t, std::uint64_t, Cycle)>;

    Backend(const CoreConfig &cfg, MemoryHierarchy &mem, SimStats &stats);

    /** Space left in the decode queue. */
    std::size_t decodeQueueSpace() const FDIP_HOT_NOEXCEPT;

    /** Enqueues a delivered instruction (frontend side). */
    void deliver(const DeliveredInst &inst) FDIP_HOT_NOEXCEPT;

    /** Advances the backend one cycle: dispatch, execute, commit. */
    void tick(Cycle now) FDIP_HOT_NOEXCEPT;

    /** Drops all queued/in-flight instructions younger than @p seq. */
    void flushYoungerThan(std::uint64_t seq) FDIP_HOT_NOEXCEPT;

    /** Registers the divergence-resolution callback. */
    void setResolveCallback(ResolveCallback cb) { resolveCb_ = std::move(cb); }

    /** Committed correct-path instructions so far (monotonic). */
    FDIP_HOT_PATH std::uint64_t committed() const { return committed_; }

    /** Current decode-queue occupancy. */
    FDIP_HOT_PATH std::size_t decodeQueueSize() const { return dq_.size(); }

    /** True when the last tick's dispatch stage stopped on a full ROB
     *  with decoded instructions still waiting (cycle-accounting
     *  back-pressure signal; see obs/cycle_account.h). */
    FDIP_HOT_PATH bool dispatchBlocked() const { return dispatchBlocked_; }

  private:
    struct RobEntry
    {
        std::uint64_t seq = 0;
        bool onCorrectPath = false;
        Cycle execDone = 0;
        std::uint64_t resolveToken = 0;
    };

    FDIP_STATE_MICRO const CoreConfig &cfg_;
    FDIP_STATE_MICRO MemoryHierarchy &mem_;
    FDIP_STATE_MICRO SimStats &stats_;
    FDIP_STATE_MICRO ResolveCallback resolveCb_;

    FDIP_STATE_ARCH(pc, inst, dir_hint) CircularQueue<DeliveredInst> dq_;
    FDIP_STATE_MICRO CircularQueue<RobEntry> rob_;
    FDIP_STATE_MICRO std::uint64_t committed_ = 0;
    FDIP_STATE_MICRO bool dispatchBlocked_ = false; ///< ROB back-pressure.
    FDIP_STATE_MICRO Cycle lastCommitDone_ = 0; ///< Last commit done time.

    /** In-flight divergence tokens awaiting execution (tiny; every
     *  carrier occupies a ROB entry, so robEntries bounds it). */
    struct PendingResolve
    {
        std::uint64_t token = 0;
        std::uint64_t seq = 0;
        Cycle execDone = 0;
    };
    FDIP_STATE_MICRO FixedVector<PendingResolve> pendingResolves_;
};

} // namespace fdip

#endif // FDIP_CORE_BACKEND_H_
