/**
 * @file
 * The synthetic program image: a contiguous array of fixed-size
 * instructions with function boundaries.
 *
 * The image plays the role of the text segment. The fetch pipeline's
 * pre-decoder reads it (that is what an I-cache line contains), the BTB
 * prefetcher decodes it on fills, and the trace executor runs it.
 */

#ifndef FDIP_TRACE_PROGRAM_H_
#define FDIP_TRACE_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "trace/inst.h"
#include "util/hotpath.h"
#include "util/types.h"

namespace fdip
{

/**
 * A function: a contiguous run of instructions ending in a return.
 */
struct FunctionInfo
{
    std::uint32_t firstIndex = 0; ///< Index of the entry instruction.
    std::uint32_t numInsts = 0;   ///< Size in instructions.
};

/**
 * A contiguous program image starting at a base address.
 */
class ProgramImage
{
  public:
    /** @param base text-segment base; must be fetch-block aligned. */
    explicit ProgramImage(Addr base = 0x400000);

    /** Text-segment base address. */
    Addr baseAddr() const { return base_; }

    /** Number of instructions in the image. */
    std::size_t numInsts() const { return insts_.size(); }

    /** Code footprint in bytes. */
    FDIP_HOT_PATH std::size_t footprintBytes() const { return insts_.size() * kInstBytes; }

    /** Address of instruction @p index. */
    Addr
    pcOf(std::uint32_t index) const
    {
        return base_ + static_cast<Addr>(index) * kInstBytes;
    }

    /** True if @p pc falls inside the image. */
    FDIP_HOT_PATH bool
    contains(Addr pc) const
    {
        return pc >= base_ && pc < base_ + footprintBytes() &&
               pc % kInstBytes == 0;
    }

    /** Index of the instruction at @p pc; pc must be contained. */
    FDIP_HOT_PATH std::uint32_t
    indexOf(Addr pc) const
    {
        return static_cast<std::uint32_t>((pc - base_) / kInstBytes);
    }

    /** Instruction at @p index. */
    const StaticInst &inst(std::uint32_t index) const
    {
        return insts_[index];
    }

    /**
     * Instruction at @p pc, or a synthetic non-branch filler when @p pc
     * lies outside the image (wrong-path fetch may run past the text
     * segment; real hardware would fetch whatever bytes are there).
     */
    const StaticInst &instAt(Addr pc) const;

    /** Mutable access for the builder. */
    StaticInst &instMutable(std::uint32_t index) { return insts_[index]; }

    /** Appends an instruction, returning its index. */
    std::uint32_t append(const StaticInst &inst);

    /** Registers a function spanning [first, first + count). */
    void addFunction(std::uint32_t first_index, std::uint32_t count);

    /** All registered functions. */
    const std::vector<FunctionInfo> &functions() const { return functions_; }

    /** Number of static branch instructions. */
    std::size_t numBranches() const;

    /** Number of static taken-capable branches that are not strongly
     *  biased not-taken (rough BTB footprint estimate). */
    std::size_t numLikelyTakenBranches() const;

  private:
    Addr base_;
    std::vector<StaticInst> insts_;
    std::vector<FunctionInfo> functions_;
    StaticInst filler_; ///< Returned for out-of-image PCs.
};

} // namespace fdip

#endif // FDIP_TRACE_PROGRAM_H_
