#include "trace/trace_gen.h"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "util/bits.h"
#include "util/log.h"
#include "util/rng.h"

namespace fdip
{

Addr
Trace::nextPcOf(std::size_t i) const
{
    const DynInst &d = insts[i];
    const StaticInst &s = image().inst(d.staticIndex);
    if (isBranch(s.cls) && d.taken)
        return d.info;
    return image().pcOf(d.staticIndex) + kInstBytes;
}

namespace
{

/** Base of the synthetic stack region. */
constexpr Addr kStackBase = 0x7ff000000000ULL;
/** Base of per-function global data. */
constexpr Addr kGlobalBase = 0x100000000ULL;
/** Base of per-function streaming regions. */
constexpr Addr kStreamBase = 0x200000000ULL;
/** Size of one function's streaming region. */
constexpr Addr kStreamRegion = 256 * 1024;

/**
 * Architectural execution of the synthetic program. Branch outcomes
 * follow each branch's BranchBehavior; correlated branches hash the
 * executor's own control-flow history, which is what makes them
 * learnable by the simulated history-based predictors.
 */
class Executor
{
  public:
    Executor(const Workload &wl, std::size_t num_insts)
        : wl_(wl),
          image_(wl.image),
          numInsts_(num_insts),
          loopCounters_(wl.image.numInsts(), 0),
          rng_(wl.spec.seed ^ 0xabcdef1234567890ULL)
    {
        pathRing_.fill(0);
    }

    std::vector<DynInst>
    run()
    {
        std::vector<DynInst> out;
        out.reserve(numInsts_);

        std::uint32_t idx = image_.indexOf(wl_.entryPc);
        callStack_.reserve(64);
        funcStack_.push_back(idx);

        while (out.size() < numInsts_) {
            const StaticInst &si = image_.inst(idx);
            DynInst d;
            d.staticIndex = idx;

            std::uint32_t next = idx + 1;
            switch (si.cls) {
              case InstClass::kAlu:
                break;
              case InstClass::kLoad:
              case InstClass::kStore:
                d.info = memAddress();
                break;
              case InstClass::kCondDirect: {
                const bool taken = decideDirection(idx, si);
                d.taken = taken ? 1 : 0;
                d.info = si.target;
                updateHistory(idx, si.target, taken);
                if (taken)
                    next = image_.indexOf(si.target);
                break;
              }
              case InstClass::kJumpDirect:
                d.taken = 1;
                d.info = si.target;
                updateHistory(idx, si.target, true);
                next = image_.indexOf(si.target);
                break;
              case InstClass::kCallDirect:
              case InstClass::kCallIndirect: {
                const Addr target = si.cls == InstClass::kCallDirect
                                        ? si.target
                                        : indirectTarget(idx, out.size());
                d.taken = 1;
                d.info = target;
                updateHistory(idx, target, true);
                callStack_.push_back(idx + 1);
                next = image_.indexOf(target);
                funcStack_.push_back(next);
                break;
              }
              case InstClass::kJumpIndirect: {
                const Addr target = indirectTarget(idx, out.size());
                d.taken = 1;
                d.info = target;
                updateHistory(idx, target, true);
                next = image_.indexOf(target);
                break;
              }
              case InstClass::kReturn: {
                if (callStack_.empty())
                    fdip_panic("return with empty call stack at inst %u",
                               idx);
                next = callStack_.back();
                callStack_.pop_back();
                funcStack_.pop_back();
                d.taken = 1;
                d.info = image_.pcOf(next);
                updateHistory(idx, d.info, true);
                break;
              }
            }

            out.push_back(d);
            idx = next;
        }
        return out;
    }

  private:
    /** Resolves a conditional branch direction from its behaviour. */
    bool
    decideDirection(std::uint32_t idx, const StaticInst &si)
    {
        switch (si.behavior) {
          case BranchBehavior::kBiased:
            return rng_.chancePermille(si.param);
          case BranchBehavior::kLoop: {
            std::uint32_t &c = loopCounters_[idx];
            if (c == 0)
                c = si.param;
            --c;
            return c > 0;
          }
          case BranchBehavior::kPathCorrelated:
            return (mix64(salt(idx) ^ pathHash(si.param)) & 1) != 0;
          case BranchBehavior::kDirCorrelated:
            return (mix64(salt(idx) ^
                          (dirHistory_ & mask(std::min<unsigned>(
                                             si.param, 63)))) &
                    1) != 0;
          case BranchBehavior::kNone:
            break;
        }
        fdip_panic("conditional branch %u without behaviour", idx);
    }

    /** Resolves an indirect branch target. */
    Addr
    indirectTarget(std::uint32_t idx, std::size_t emitted)
    {
        if (idx == wl_.dispatchCallIndex) {
            // Schedule-driven dispatch with phase drift.
            const auto &phases = wl_.rootSchedule;
            const std::size_t phase = std::min<std::size_t>(
                emitted * phases.size() / std::max<std::size_t>(numInsts_, 1),
                phases.size() - 1);
            const auto &rotation = phases[phase];
            return rotation[dispatchCount_++ % rotation.size()];
        }
        const auto it = wl_.indirectTargets.find(idx);
        if (it == wl_.indirectTargets.end() || it->second.empty())
            fdip_panic("indirect branch %u has no target set", idx);
        const auto &targets = it->second;
        const std::uint64_t sel = mix64(salt(idx) ^ pathHash(4));
        return targets[sel % targets.size()];
    }

    /** Synthesizes a load/store effective address with locality. */
    Addr
    memAddress()
    {
        const unsigned roll = static_cast<unsigned>(rng_.below(100));
        if (roll < 55) {
            // Stack-relative: near the current frame.
            const Addr sp =
                kStackBase - static_cast<Addr>(callStack_.size()) * 512;
            return sp + (rng_.below(32) * 8);
        }
        if (roll < 85) {
            // Per-function global region.
            const Addr base =
                kGlobalBase + static_cast<Addr>(funcStack_.back()) * 8192;
            return base + (rng_.below(256) * 8);
        }
        // Streaming access within the function's region.
        Addr &cursor = streamCursors_[funcStack_.back()];
        cursor = (cursor + 64) % kStreamRegion;
        return kStreamBase +
               static_cast<Addr>(funcStack_.back()) * kStreamRegion + cursor;
    }

    /** Per-branch hash salt. */
    static std::uint64_t
    salt(std::uint32_t idx)
    {
        return static_cast<std::uint64_t>(idx) * 0x9e3779b97f4a7c15ULL;
    }

    /** Folds the last @p depth taken-branch records into one hash. */
    std::uint64_t
    pathHash(unsigned depth) const
    {
        std::uint64_t h = 0;
        const unsigned d = std::min<unsigned>(depth, kPathRingSize);
        for (unsigned i = 0; i < d; ++i) {
            const std::uint64_t v =
                pathRing_[(pathPos_ + kPathRingSize - 1 - i) %
                          kPathRingSize];
            h ^= (v << (i % 23)) | (v >> (64 - (i % 23 + 1)));
        }
        return h;
    }

    /** Records a branch outcome into the executor-side histories. */
    void
    updateHistory(std::uint32_t idx, Addr target, bool taken)
    {
        dirHistory_ = (dirHistory_ << 1) | (taken ? 1 : 0);
        if (taken) {
            pathRing_[pathPos_] =
                mix64(image_.pcOf(idx) ^ (target << 1));
            pathPos_ = (pathPos_ + 1) % kPathRingSize;
        }
    }

    static constexpr unsigned kPathRingSize = 64;

    const Workload &wl_;
    const ProgramImage &image_;
    std::size_t numInsts_;

    std::vector<std::uint32_t> callStack_; ///< Return instruction indices.
    std::vector<std::uint32_t> funcStack_; ///< Current function entries.
    std::vector<std::uint32_t> loopCounters_;
    std::unordered_map<std::uint32_t, Addr> streamCursors_;

    std::array<std::uint64_t, kPathRingSize> pathRing_;
    unsigned pathPos_ = 0;
    std::uint64_t dirHistory_ = 0;
    std::uint64_t dispatchCount_ = 0;

    Rng rng_;
};

} // namespace

Trace
generateTrace(std::shared_ptr<const Workload> workload,
              std::size_t num_insts)
{
    Trace t;
    t.workload = std::move(workload);
    Executor exec(*t.workload, num_insts);
    t.insts = exec.run();
    return t;
}

} // namespace fdip
