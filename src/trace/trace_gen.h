/**
 * @file
 * Trace generation: executes a synthetic workload's program image and
 * records the committed dynamic instruction stream, which is the ground
 * truth the timing simulator replays.
 */

#ifndef FDIP_TRACE_TRACE_GEN_H_
#define FDIP_TRACE_TRACE_GEN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/inst.h"
#include "trace/workload.h"
#include "util/hotpath.h"

namespace fdip
{

/**
 * A committed-path trace over a program image.
 */
struct Trace
{
    /** The workload this trace was generated from. */
    std::shared_ptr<const Workload> workload;

    /** The committed dynamic instruction stream. */
    std::vector<DynInst> insts;

    /** Convenience accessors. */
    FDIP_HOT_PATH const ProgramImage &image() const { return workload->image; }
    FDIP_HOT_PATH std::size_t size() const { return insts.size(); }

    /** PC of dynamic instruction @p i. */
    FDIP_HOT_PATH Addr
    pcOf(std::size_t i) const
    {
        return image().pcOf(insts[i].staticIndex);
    }

    /** Static instruction of dynamic instruction @p i. */
    const StaticInst &
    staticOf(std::size_t i) const
    {
        return image().inst(insts[i].staticIndex);
    }

    /** PC the committed path continues at after dynamic inst @p i. */
    Addr nextPcOf(std::size_t i) const;
};

/**
 * Executes @p workload for @p num_insts dynamic instructions.
 *
 * Execution is fully deterministic given the workload (which embeds the
 * seed). Branch outcomes follow each branch's BranchBehavior; indirect
 * targets and the dispatcher follow the recorded schedules; loads and
 * stores receive synthetic effective addresses with stack/global/stream
 * locality.
 */
Trace generateTrace(std::shared_ptr<const Workload> workload,
                    std::size_t num_insts);

} // namespace fdip

#endif // FDIP_TRACE_TRACE_GEN_H_
